package mpsnap_test

import (
	"fmt"

	"mpsnap"
)

// The canonical usage: build a simulated cluster, run client scripts,
// check the history against the paper's conditions (A1)-(A4).
func Example() {
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 7})
	if err != nil {
		panic(err)
	}
	cluster.Client(0, func(c *mpsnap.Client) {
		_ = c.Update([]byte("hello"))
	})
	cluster.Client(1, func(c *mpsnap.Client) {
		_ = c.Sleep(10 * mpsnap.D) // let node 0's update land
		snap, _ := c.Scan()
		fmt.Printf("segment 0 = %s\n", snap[0])
	})
	if err := cluster.Run(); err != nil {
		panic(err)
	}
	fmt.Println("linearizable:", cluster.Check() == nil)
	// Output:
	// segment 0 = hello
	// linearizable: true
}

// SSO scans are local: they take zero virtual time and send no messages,
// at the price of sequential consistency instead of atomicity.
func Example_ssoFastScan() {
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{
		N: 3, F: 1, Seed: 7, Algorithm: mpsnap.SSOFast,
	})
	if err != nil {
		panic(err)
	}
	cluster.Client(0, func(c *mpsnap.Client) {
		_ = c.Update([]byte("x"))
		before := c.Now()
		_, _ = c.Scan()
		fmt.Printf("scan took %d ticks\n", c.Now()-before)
	})
	if err := cluster.Run(); err != nil {
		panic(err)
	}
	fmt.Println("sequentially consistent:", cluster.Check() == nil)
	// Output:
	// scan took 0 ticks
	// sequentially consistent: true
}

// Crashed nodes abort their pending operations with an error; the
// remaining majority keeps the object available.
func Example_crashTolerance() {
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{
		N: 5, F: 2, Seed: 3,
		Crashes: []mpsnap.CrashSpec{{Node: 4, At: mpsnap.D}},
	})
	if err != nil {
		panic(err)
	}
	cluster.Client(0, func(c *mpsnap.Client) {
		_ = c.Sleep(5 * mpsnap.D)
		err := c.Update([]byte("still-works"))
		fmt.Println("healthy node update error:", err)
	})
	if err := cluster.Run(); err != nil {
		panic(err)
	}
	fmt.Println("linearizable:", cluster.Check() == nil)
	// Output:
	// healthy node update error: <nil>
	// linearizable: true
}
