// Command asosim runs one simulated snapshot-object workload and reports
// the checked history.
//
// Usage:
//
//	asosim [flags]
//	asosim -scenario figure2
//
// Flags select the algorithm, cluster size, workload, delay model, and
// crash schedule; the tool prints per-operation latencies and the
// (A1)-(A4) checker verdict (or the sequential-consistency verdict for
// SSO algorithms).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"mpsnap"
	"mpsnap/internal/history"
	"mpsnap/internal/la"
	"mpsnap/internal/sim"
)

func main() {
	var (
		alg       = flag.String("alg", "eqaso", "algorithm: eqaso|byzaso|sso|sso-byz|delporte|storecollect|stacked|laaso")
		n         = flag.Int("n", 5, "number of nodes")
		f         = flag.Int("f", 2, "resilience bound")
		ops       = flag.Int("ops", 4, "operations per node")
		scanRatio = flag.Float64("scan-ratio", 0.5, "fraction of scans in the workload")
		seed      = flag.Int64("seed", 1, "simulation seed")
		crashes   = flag.Int("crashes", 0, "number of nodes to crash at random times")
		constant  = flag.Bool("constant-delay", false, "every message takes exactly D (default: uniform)")
		verbose   = flag.Bool("v", false, "print every operation")
		gantt     = flag.Bool("gantt", false, "draw the history as an ASCII space-time diagram")
		trace     = flag.Bool("trace", false, "print every message send/delivery and crash")
		dump      = flag.String("dump", "", "write the recorded history as JSON to this file")
		check     = flag.String("check", "", "skip simulation: load a history JSON file and check it")
		scenario  = flag.String("scenario", "", "run a canned scenario instead: figure2")
	)
	flag.Parse()

	if *scenario != "" {
		runScenario(*scenario)
		return
	}
	if *check != "" {
		checkFile(*check, *gantt)
		return
	}

	cfg := mpsnap.Config{N: *n, F: *f, Algorithm: mpsnap.Algorithm(*alg), Seed: *seed}
	if *constant {
		cfg.Delay = mpsnap.DelayConstant
	}
	rng := rand.New(rand.NewSource(*seed))
	for k := 0; k < *crashes; k++ {
		cfg.Crashes = append(cfg.Crashes, mpsnap.CrashSpec{
			Node: k,
			At:   mpsnap.Ticks(rng.Int63n(int64(20 * mpsnap.D))),
		})
	}
	cluster, err := mpsnap.NewSimCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *trace {
		cluster.Trace(func(line string) { fmt.Println(line) })
	}
	for i := 0; i < *n; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			rng := rand.New(rand.NewSource(*seed*1009 + int64(i)))
			for k := 1; k <= *ops; k++ {
				var err error
				if rng.Float64() < *scanRatio {
					start := c.Now()
					var snap [][]byte
					snap, err = c.Scan()
					if err == nil && *verbose {
						fmt.Printf("t=%7.2fD node %d SCAN -> %s (%.2fD)\n",
							float64(c.Now())/float64(mpsnap.D), i, renderSnap(snap),
							float64(c.Now()-start)/float64(mpsnap.D))
					}
				} else {
					v := fmt.Sprintf("v%d-%d", i, k)
					start := c.Now()
					err = c.Update([]byte(v))
					if err == nil && *verbose {
						fmt.Printf("t=%7.2fD node %d UPDATE(%s) (%.2fD)\n",
							float64(c.Now())/float64(mpsnap.D), i, v,
							float64(c.Now()-start)/float64(mpsnap.D))
					}
				}
				if err != nil {
					if *verbose {
						fmt.Printf("node %d stopped: %v\n", i, err)
					}
					return
				}
				_ = c.Sleep(mpsnap.Ticks(rng.Int63n(int64(3 * mpsnap.D))))
			}
		})
	}
	if err := cluster.Run(); err != nil {
		log.Fatalf("simulation: %v", err)
	}
	if *gantt {
		fmt.Println(cluster.RenderHistory(110))
	}
	if *dump != "" {
		fd, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.DumpHistory(fd); err != nil {
			log.Fatal(err)
		}
		if err := fd.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("history written to %s (re-check with: asosim -check %s)\n", *dump, *dump)
	}
	st := cluster.Stats()
	fmt.Printf("algorithm=%s n=%d f=%d crashes=%d seed=%d\n", *alg, *n, *f, *crashes, *seed)
	fmt.Printf("  %d operations, %d messages, %.1fD virtual time\n", st.Operations, st.Messages, st.VirtualTime)
	fmt.Printf("  latency: update worst %.2fD mean %.2fD | scan worst %.2fD mean %.2fD\n",
		st.WorstUpdateD, st.MeanUpdateD, st.WorstScanD, st.MeanScanD)
	if err := cluster.Check(); err != nil {
		fmt.Printf("  consistency: FAILED — %v\n", err)
		os.Exit(1)
	}
	kind := "linearizable (A1-A4)"
	if !mpsnap.Algorithm(*alg).Atomic() {
		kind = "sequentially consistent"
	}
	fmt.Printf("  consistency: %s ✓\n", kind)
}

func renderSnap(snap [][]byte) string {
	out := "["
	for i, s := range snap {
		if i > 0 {
			out += " "
		}
		if s == nil {
			out += "⊥"
		} else {
			out += string(s)
		}
	}
	return out + "]"
}

// checkFile loads a history JSON file and reports both consistency
// verdicts (useful for histories recorded from real deployments).
func checkFile(path string, gantt bool) {
	fd, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer fd.Close()
	h, err := history.LoadJSON(fd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d nodes, %d operations\n", path, h.N, len(h.Ops))
	if gantt {
		fmt.Println(history.RenderGantt(h, 110))
	}
	lin := h.CheckLinearizable()
	fmt.Printf("  linearizable (A1-A4):     %s\n", verdict(lin.OK, lin.Violations))
	sc := h.CheckSequentiallyConsistent()
	fmt.Printf("  sequentially consistent:  %s\n", verdict(sc.OK, sc.Violations))
	if !lin.OK && !sc.OK {
		os.Exit(1)
	}
}

func verdict(ok bool, violations []string) string {
	if ok {
		return "✓"
	}
	return fmt.Sprintf("✗ (%d violations; first: %s)", len(violations), violations[0])
}

func runScenario(name string) {
	switch name {
	case "figure2":
		runFigure2()
	default:
		log.Fatalf("unknown scenario %q (available: figure2)", name)
	}
}

// runFigure2 replays the paper's Figure 2 one-shot execution (also
// available as examples/figure2).
func runFigure2() {
	delays := sim.SlowLinks{
		Slow:      map[[2]int]bool{{0, 1}: true, {2, 1}: true, {1, 0}: true},
		SlowDelay: 800,
		FastDelay: 50,
	}
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 1, Delay: delays})
	objs := make([]*la.OneShot, 3)
	for i := 0; i < 3; i++ {
		objs[i] = la.NewOneShot(w.Runtime(i))
		w.SetHandler(i, objs[i])
	}
	scan := func(p *sim.Proc, node int, opname string) {
		inv := p.Now()
		snap, err := objs[node].Scan()
		if err != nil {
			log.Fatalf("%s: %v", opname, err)
		}
		fmt.Printf("%s: SCAN by node %d  [t=%4d..%4d] -> %s (waited %d ticks)\n",
			opname, node+1, inv, p.Now(), renderSnap(snap), p.Now()-inv)
	}
	update := func(p *sim.Proc, node int, val, opname string) {
		inv := p.Now()
		if err := objs[node].Update([]byte(val)); err != nil {
			log.Fatalf("%s: %v", opname, err)
		}
		fmt.Printf("%s: UPDATE(%s) by node %d  [t=%4d..%4d]\n", opname, val, node+1, inv, p.Now())
	}
	w.GoNode("node1", 0, func(p *sim.Proc) {
		update(p, 0, "u", "op2")
		_ = p.Sleep(150 - p.Now())
		scan(p, 0, "op4")
	})
	w.GoNode("node2", 1, func(p *sim.Proc) {
		_ = p.Sleep(200)
		update(p, 1, "w", "op5")
	})
	w.GoNode("node3", 2, func(p *sim.Proc) {
		scan(p, 2, "op1")
		update(p, 2, "v", "op3")
		_ = p.Sleep(260 - p.Now())
		scan(p, 2, "op6")
	})
	if err := w.Run(); err != nil {
		log.Fatal(err)
	}
}
