package main

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"mpsnap/internal/chaos"
	"mpsnap/internal/rt"
)

func TestParseChaosConfig(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
		check   func(t *testing.T, c chaosConfig)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, c chaosConfig) {
				if !reflect.DeepEqual(c.Backends, []string{"sim", "tcp"}) {
					t.Errorf("backends: %v", c.Backends)
				}
				if c.Chaos.N != 5 || c.Chaos.F != 2 || c.Chaos.Engine != "eqaso" || c.Chaos.Seed != 1 {
					t.Errorf("chaos cfg: %+v", c.Chaos)
				}
				// 5s at 10ms per D.
				if c.Chaos.Duration != 500*rt.TicksPerD {
					t.Errorf("duration: %d ticks", c.Chaos.Duration)
				}
				if c.Chaos.TraceDir != "" || c.Chaos.TraceAlways {
					t.Errorf("tracing should default off: %+v", c.Chaos)
				}
			},
		},
		{
			name: "trace flags and backend list",
			args: []string{"-backend", "sim,chan", "-trace-dir", "traces", "-trace-cap", "99", "-trace-always", "-seed", "13"},
			check: func(t *testing.T, c chaosConfig) {
				if !reflect.DeepEqual(c.Backends, []string{"sim", "chan"}) {
					t.Errorf("backends: %v", c.Backends)
				}
				want := chaos.Config{TraceDir: "traces", TraceCap: 99, TraceAlways: true}
				if c.Chaos.TraceDir != want.TraceDir || c.Chaos.TraceCap != want.TraceCap || !c.Chaos.TraceAlways {
					t.Errorf("trace cfg: %+v", c.Chaos)
				}
				if c.Chaos.Seed != 13 {
					t.Errorf("seed: %d", c.Chaos.Seed)
				}
			},
		},
		{
			name: "all expands",
			args: []string{"-backend", "all"},
			check: func(t *testing.T, c chaosConfig) {
				if !reflect.DeepEqual(c.Backends, []string{"sim", "chan", "tcp"}) {
					t.Errorf("backends: %v", c.Backends)
				}
			},
		},
		{
			name: "engine flag selects any registered engine",
			args: []string{"-engine", "acr"},
			check: func(t *testing.T, c chaosConfig) {
				if c.Chaos.Engine != "acr" {
					t.Errorf("engine: %q", c.Chaos.Engine)
				}
			},
		},
		{
			name: "alg alias still works, engine wins when both set",
			args: []string{"-alg", "sso", "-engine", "fastsnap"},
			check: func(t *testing.T, c chaosConfig) {
				if c.Chaos.Engine != "fastsnap" {
					t.Errorf("engine: %q, want fastsnap (-engine beats -alg)", c.Chaos.Engine)
				}
			},
		},
		{
			name: "shards forward the engine to the cluster config",
			args: []string{"-shards", "2", "-engine", "fastsnap"},
			check: func(t *testing.T, c chaosConfig) {
				if c.Cluster.Engine != "fastsnap" || c.Cluster.Shards != 2 {
					t.Errorf("cluster cfg: engine=%q shards=%d", c.Cluster.Engine, c.Cluster.Shards)
				}
			},
		},
		{name: "bad engine", args: []string{"-engine", "paxos"}, wantErr: "unknown engine"},
		{name: "bad backend", args: []string{"-backend", "carrier-pigeon"}, wantErr: "unknown backend"},
		{name: "empty backend", args: []string{"-backend", ","}, wantErr: "no backend selected"},
		{name: "bad flag", args: []string{"-nope"}, wantErr: "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseChaosConfig(tc.args, io.Discard)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err=%v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, c)
		})
	}
}

// TestTraceLine: the failure report's one-line trace pointer carries the
// dump path, the seed, and the schedule digest.
func TestTraceLine(t *testing.T) {
	rep := chaos.Report{
		TracePath:    "traces/chaos-eqaso-seed42-deadbeef.jsonl",
		ScheduleHash: "deadbeefdeadbeef",
		Schedule:     chaos.Schedule{Seed: 42},
	}
	got := traceLine(rep)
	for _, want := range []string{"traces/chaos-eqaso-seed42-deadbeef.jsonl", "seed=42", "schedule=deadbeefdeadbeef"} {
		if !strings.Contains(got, want) {
			t.Errorf("trace line %q missing %q", got, want)
		}
	}
	rep.TraceDropped = 7
	if got := traceLine(rep); !strings.Contains(got, "7 older events evicted") {
		t.Errorf("trace line %q missing eviction note", got)
	}
}
