package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"mpsnap/internal/chaos"
	"mpsnap/internal/cluster"
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

// chaosConfig is the parsed asochaos command line: the chaos.Config for
// every selected backend plus command-level options. When Cluster.Shards
// is positive the run dispatches to the sharded cluster runner instead,
// with the same seed, mix, and topology flags applied per shard.
type chaosConfig struct {
	Chaos     chaos.Config
	Cluster   cluster.RunConfig
	Backends  []string
	Duration  time.Duration
	ShowSched bool
	JSONOut   bool
	Dump      string
}

// parseChaosConfig parses and validates the asochaos command line. Usage
// and flag errors are written to out.
func parseChaosConfig(args []string, out io.Writer) (chaosConfig, error) {
	var (
		cfg     chaosConfig
		backend string
		alg     string
	)
	fs := flag.NewFlagSet("asochaos", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Int64Var(&cfg.Chaos.Seed, "seed", 1, "chaos seed: drives the fault schedule and the workload")
	fs.DurationVar(&cfg.Duration, "duration", 5*time.Second, "workload length (wall time on transports; 1 D per 10ms everywhere)")
	fs.StringVar(&backend, "backend", "both", "backend(s): sim|chan|tcp|both (sim+tcp)|all, or a comma list")
	fs.StringVar(&cfg.Chaos.Engine, "engine", "", "engine under test: "+engine.FlagHelp()+" (default eqaso)")
	fs.StringVar(&alg, "alg", "", "deprecated alias for -engine")
	fs.IntVar(&cfg.Chaos.N, "n", 5, "number of nodes")
	fs.IntVar(&cfg.Chaos.F, "f", 2, "resilience bound")
	fs.IntVar(&cfg.Chaos.Mix.Crashes, "crashes", 1, "crash events (clamped to f; every other one strikes mid-broadcast)")
	fs.IntVar(&cfg.Chaos.Mix.Partitions, "partitions", 2, "partition->heal episodes")
	fs.IntVar(&cfg.Chaos.Mix.DropWindows, "drops", 2, "per-link message-loss windows")
	fs.Float64Var(&cfg.Chaos.Mix.DropProb, "drop-prob", 0.25, "loss probability inside a drop window")
	fs.IntVar(&cfg.Chaos.Mix.SpikeWindows, "spikes", 2, "per-link delay-spike windows")
	fs.Float64Var(&cfg.Chaos.Mix.SpikeExtraD, "spike-extra", 3, "extra delay inside a spike window, in units of D")
	fs.IntVar(&cfg.Chaos.Mix.CorruptWindows, "corrupts", 0, "per-link wire-corruption windows (requires f > 0; undecodable mutants are dropped, decodable ones delivered only to byzaso)")
	fs.Float64Var(&cfg.Chaos.Mix.CorruptProb, "corrupt-prob", 0.2, "corruption probability inside a corrupt window")
	fs.IntVar(&cfg.Chaos.Mix.Restarts, "restarts", 0, "crash victims that later recover by WAL replay + rejoin (clamped to crashes; eqaso/sso on sim or chan)")
	fs.Float64Var(&cfg.Chaos.Mix.RestartDelayD, "restart-delay", 0, "crash-to-recovery delay in units of D (default 5, min 3)")
	fs.BoolVar(&cfg.Chaos.Churn, "churn", false, "churn mode: rolling crash→restart cycles (durable engines), membership flaps, lagging-node windows, bursty workload; replaces the fault mix and arms the streaming invariant monitor")
	fs.BoolVar(&cfg.Chaos.Monitor, "monitor", false, "arm the streaming invariant monitor outside churn mode (first violation dumps into -trace-dir)")
	var monWindowD float64
	fs.Float64Var(&monWindowD, "monitor-window", 0, "streaming monitor sliding window in units of D (default 100)")
	fs.Float64Var(&cfg.Chaos.ScanRatio, "scan-ratio", 0.5, "fraction of scans in the workload")
	fs.StringVar(&cfg.Chaos.TraceDir, "trace-dir", "", "dump a JSONL observability trace into this directory when the check fails (sim backend)")
	fs.IntVar(&cfg.Chaos.TraceCap, "trace-cap", 0, "trace ring capacity (default 8192)")
	fs.BoolVar(&cfg.Chaos.TraceAlways, "trace-always", false, "dump the trace even when the check passes")
	fs.IntVar(&cfg.Cluster.Shards, "shards", 0, "run this many independent shard clusters behind the routing layer instead of one object (atomic engines only; the mix applies per shard)")
	fs.IntVar(&cfg.Cluster.CrashShard, "shard-crash", -1, "with -shards: crash EVERY member of this shard at 40% of the run, restart from WALs at 55% (sim and chan)")
	fs.IntVar(&cfg.Cluster.PartitionShard, "shard-partition", -1, "with -shards: isolate this whole shard from the rest of the topology during [30%, 60%] of the run")
	fs.BoolVar(&cfg.ShowSched, "schedule", false, "print every fault event before running")
	fs.BoolVar(&cfg.JSONOut, "json", false, "emit one JSON report per backend on stdout")
	fs.StringVar(&cfg.Dump, "dump", "", "write each backend's history JSON to <prefix>-<backend>.json")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.Chaos.Duration = chaos.TicksOf(cfg.Duration)
	cfg.Chaos.MonitorWindow = rt.Ticks(monWindowD * float64(rt.TicksPerD))
	// -engine wins over the deprecated -alg alias; both empty means eqaso.
	if cfg.Chaos.Engine == "" {
		cfg.Chaos.Engine = alg
	}
	if cfg.Chaos.Engine == "" {
		cfg.Chaos.Engine = "eqaso"
	}
	if _, err := engine.Lookup(cfg.Chaos.Engine); err != nil {
		return cfg, err
	}
	var err error
	cfg.Backends, err = expandBackends(backend)
	if err != nil {
		return cfg, err
	}
	if cfg.Cluster.Shards > 0 {
		if cfg.Chaos.Mix.CorruptWindows > 0 {
			return cfg, fmt.Errorf("-corrupts is not supported with -shards")
		}
		if cfg.Chaos.Churn || cfg.Chaos.Monitor {
			return cfg, fmt.Errorf("-churn and -monitor are not supported with -shards (the cluster report has no single-object history)")
		}
		if cfg.Chaos.TraceDir != "" {
			return cfg, fmt.Errorf("-trace-dir is not supported with -shards")
		}
		if cfg.Dump != "" {
			return cfg, fmt.Errorf("-dump is not supported with -shards (the cluster report has no single-object history)")
		}
		cfg.Cluster.Seed = cfg.Chaos.Seed
		cfg.Cluster.Duration = cfg.Chaos.Duration
		cfg.Cluster.N = cfg.Chaos.N
		cfg.Cluster.F = cfg.Chaos.F
		cfg.Cluster.Mix = cfg.Chaos.Mix
		cfg.Cluster.ScanRatio = cfg.Chaos.ScanRatio
		cfg.Cluster.Engine = cfg.Chaos.Engine
	} else if cfg.Cluster.CrashShard >= 0 || cfg.Cluster.PartitionShard >= 0 {
		return cfg, fmt.Errorf("-shard-crash and -shard-partition require -shards")
	}
	return cfg, nil
}

func expandBackends(s string) ([]string, error) {
	var out []string
	for _, b := range strings.Split(s, ",") {
		switch strings.TrimSpace(b) {
		case "sim", "chan", "tcp":
			out = append(out, strings.TrimSpace(b))
		case "both":
			out = append(out, "sim", "tcp")
		case "all":
			out = append(out, "sim", "chan", "tcp")
		case "":
		default:
			return nil, fmt.Errorf("unknown backend %q (want sim|chan|tcp|both|all)", b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backend selected")
	}
	return out, nil
}
