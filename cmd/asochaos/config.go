package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"mpsnap/internal/chaos"
)

// chaosConfig is the parsed asochaos command line: the chaos.Config for
// every selected backend plus command-level options.
type chaosConfig struct {
	Chaos     chaos.Config
	Backends  []string
	Duration  time.Duration
	ShowSched bool
	JSONOut   bool
	Dump      string
}

// parseChaosConfig parses and validates the asochaos command line. Usage
// and flag errors are written to out.
func parseChaosConfig(args []string, out io.Writer) (chaosConfig, error) {
	var (
		cfg     chaosConfig
		backend string
	)
	fs := flag.NewFlagSet("asochaos", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Int64Var(&cfg.Chaos.Seed, "seed", 1, "chaos seed: drives the fault schedule and the workload")
	fs.DurationVar(&cfg.Duration, "duration", 5*time.Second, "workload length (wall time on transports; 1 D per 10ms everywhere)")
	fs.StringVar(&backend, "backend", "both", "backend(s): sim|chan|tcp|both (sim+tcp)|all, or a comma list")
	fs.StringVar(&cfg.Chaos.Alg, "alg", "eqaso", "object under test: eqaso|byzaso|sso")
	fs.IntVar(&cfg.Chaos.N, "n", 5, "number of nodes")
	fs.IntVar(&cfg.Chaos.F, "f", 2, "resilience bound")
	fs.IntVar(&cfg.Chaos.Mix.Crashes, "crashes", 1, "crash events (clamped to f; every other one strikes mid-broadcast)")
	fs.IntVar(&cfg.Chaos.Mix.Partitions, "partitions", 2, "partition->heal episodes")
	fs.IntVar(&cfg.Chaos.Mix.DropWindows, "drops", 2, "per-link message-loss windows")
	fs.Float64Var(&cfg.Chaos.Mix.DropProb, "drop-prob", 0.25, "loss probability inside a drop window")
	fs.IntVar(&cfg.Chaos.Mix.SpikeWindows, "spikes", 2, "per-link delay-spike windows")
	fs.Float64Var(&cfg.Chaos.Mix.SpikeExtraD, "spike-extra", 3, "extra delay inside a spike window, in units of D")
	fs.IntVar(&cfg.Chaos.Mix.CorruptWindows, "corrupts", 0, "per-link wire-corruption windows (requires f > 0; undecodable mutants are dropped, decodable ones delivered only to byzaso)")
	fs.Float64Var(&cfg.Chaos.Mix.CorruptProb, "corrupt-prob", 0.2, "corruption probability inside a corrupt window")
	fs.IntVar(&cfg.Chaos.Mix.Restarts, "restarts", 0, "crash victims that later recover by WAL replay + rejoin (clamped to crashes; eqaso/sso on sim or chan)")
	fs.Float64Var(&cfg.Chaos.Mix.RestartDelayD, "restart-delay", 0, "crash-to-recovery delay in units of D (default 5, min 3)")
	fs.Float64Var(&cfg.Chaos.ScanRatio, "scan-ratio", 0.5, "fraction of scans in the workload")
	fs.StringVar(&cfg.Chaos.TraceDir, "trace-dir", "", "dump a JSONL observability trace into this directory when the check fails (sim backend)")
	fs.IntVar(&cfg.Chaos.TraceCap, "trace-cap", 0, "trace ring capacity (default 8192)")
	fs.BoolVar(&cfg.Chaos.TraceAlways, "trace-always", false, "dump the trace even when the check passes")
	fs.BoolVar(&cfg.ShowSched, "schedule", false, "print every fault event before running")
	fs.BoolVar(&cfg.JSONOut, "json", false, "emit one JSON report per backend on stdout")
	fs.StringVar(&cfg.Dump, "dump", "", "write each backend's history JSON to <prefix>-<backend>.json")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.Chaos.Duration = chaos.TicksOf(cfg.Duration)
	var err error
	cfg.Backends, err = expandBackends(backend)
	if err != nil {
		return cfg, err
	}
	return cfg, nil
}

func expandBackends(s string) ([]string, error) {
	var out []string
	for _, b := range strings.Split(s, ",") {
		switch strings.TrimSpace(b) {
		case "sim", "chan", "tcp":
			out = append(out, strings.TrimSpace(b))
		case "both":
			out = append(out, "sim", "tcp")
		case "all":
			out = append(out, "sim", "chan", "tcp")
		case "":
		default:
			return nil, fmt.Errorf("unknown backend %q (want sim|chan|tcp|both|all)", b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backend selected")
	}
	return out, nil
}
