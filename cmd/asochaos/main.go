// Command asochaos runs a seeded chaos schedule — node crashes (including
// mid-broadcast), transient partitions with heal, per-link loss and delay
// spikes — against a snapshot object while concurrent clients issue
// UPDATE/SCAN operations, then checks the recorded history for
// linearizability (sequential consistency for SSO).
//
// Usage:
//
//	asochaos -seed 42 -duration 5s
//	asochaos -backend tcp -alg byzaso -n 7 -f 2 -json
//	asochaos -backend sim -trace-dir traces   # JSONL post-mortem on failure
//
// The same seed injects the same fault schedule on every backend; on the
// sim backend the entire run (history included) is byte-identical across
// repetitions, so a failing seed is a complete reproduction recipe. With
// -trace-dir a failing sim run additionally dumps its operation/phase and
// fault-injection events as JSONL — itself a deterministic function of the
// seed. Non-zero exit if any backend's consistency check fails.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mpsnap/internal/chaos"
)

func main() {
	cfg, err := parseChaosConfig(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	var reports []chaos.Report
	failed := false
	for _, be := range cfg.Backends {
		var res *chaos.Result
		var err error
		startWall := time.Now()
		if be == "sim" {
			res, err = chaos.RunSim(cfg.Chaos)
		} else {
			res, err = chaos.RunTransport(cfg.Chaos, be)
		}
		if err != nil {
			log.Fatalf("backend %s: %v", be, err)
		}
		rep := chaos.NewReport(be, cfg.Chaos.Alg, res)
		reports = append(reports, rep)
		if !rep.OK {
			failed = true
		}
		if cfg.Dump != "" {
			path := fmt.Sprintf("%s-%s.json", strings.TrimSuffix(cfg.Dump, ".json"), be)
			if err := writeHistory(path, res); err != nil {
				log.Fatal(err)
			}
		}
		if !cfg.JSONOut {
			printReport(rep, cfg, time.Since(startWall))
		}
	}

	if cfg.JSONOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			log.Fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printReport(rep chaos.Report, cfg chaosConfig, took time.Duration) {
	c := cfg.Chaos
	fmt.Printf("backend=%-4s alg=%s n=%d f=%d seed=%d duration=%s (%d ticks) schedule=%s\n",
		rep.Backend, rep.Alg, c.N, c.F, c.Seed, cfg.Duration, c.Duration, rep.ScheduleHash)
	mix := rep.Schedule.Mix
	fmt.Printf("  faults: %d crashes, %d partitions, %d drop windows (p=%.2f), %d spikes (+%gD), %d corrupt windows — %d events\n",
		mix.Crashes, mix.Partitions, mix.DropWindows, mix.DropProb, mix.SpikeWindows, mix.SpikeExtraD,
		mix.CorruptWindows, len(rep.Schedule.Events))
	if mix.Restarts > 0 {
		restarts := 0
		for _, ev := range rep.Schedule.Events {
			if ev.Kind == chaos.EvRestart {
				restarts++
			}
		}
		fmt.Printf("  recovery: %d of %d crash victims restart (WAL replay + rejoin)\n", restarts, mix.Crashes)
	}
	if cfg.ShowSched {
		for _, ev := range rep.Schedule.Events {
			fmt.Printf("    %s\n", ev)
		}
	}
	fmt.Printf("  ops=%d pending=%d", rep.Ops, rep.Pending)
	if rep.Stats != nil {
		fmt.Printf(" msgs=%d dropped=%d held=%d corrupt=%d",
			rep.Stats.MsgsTotal, rep.Stats.MsgsDrop, rep.Stats.MsgsHeld, rep.Stats.MsgsCorrupt)
	} else {
		fmt.Printf(" dropped=%d held=%d corrupt=%d", rep.NetDrops, rep.NetHeld, rep.NetCorrupt)
	}
	if rep.HistoryHash != "" {
		fmt.Printf(" history=%s", rep.HistoryHash)
	}
	fmt.Printf(" (%.1fs wall)\n", took.Seconds())
	for _, b := range rep.Blocked {
		fmt.Printf("  stuck: %s\n", b)
	}
	kind := "linearizable (A1-A4)"
	if rep.Alg == "sso" {
		kind = "sequentially consistent"
	}
	if rep.OK {
		fmt.Printf("  consistency: %s ✓\n", kind)
	} else {
		fmt.Printf("  consistency: FAILED — %d violations; first: %s\n", len(rep.Violations), rep.Violations[0])
		fmt.Printf("  reproduce: asochaos -backend %s -alg %s -n %d -f %d -seed %d -duration %s\n",
			rep.Backend, rep.Alg, c.N, c.F, c.Seed, cfg.Duration)
	}
	if rep.TracePath != "" {
		fmt.Println("  " + traceLine(rep))
	}
}

// traceLine is the one-line pointer from a report to its trace dump: the
// path plus everything needed to regenerate it (seed + schedule digest).
func traceLine(rep chaos.Report) string {
	s := fmt.Sprintf("trace: %s (seed=%d schedule=%s", rep.TracePath, rep.Schedule.Seed, rep.ScheduleHash)
	if rep.TraceDropped > 0 {
		s += fmt.Sprintf(", %d older events evicted", rep.TraceDropped)
	}
	return s + ")"
}

func writeHistory(path string, res *chaos.Result) error {
	if res.Hist == nil {
		return nil
	}
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Hist.DumpJSON(fd); err != nil {
		fd.Close()
		return err
	}
	if err := fd.Close(); err != nil {
		return err
	}
	fmt.Printf("  history written to %s (re-check with: asosim -check %s)\n", path, path)
	return nil
}
