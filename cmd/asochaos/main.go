// Command asochaos runs a seeded chaos schedule — node crashes (including
// mid-broadcast), transient partitions with heal, per-link loss and delay
// spikes — against a snapshot object while concurrent clients issue
// UPDATE/SCAN operations, then checks the recorded history for
// linearizability (sequential consistency for SSO).
//
// Usage:
//
//	asochaos -seed 42 -duration 5s
//	asochaos -backend tcp -alg byzaso -n 7 -f 2 -json
//
// The same seed injects the same fault schedule on every backend; on the
// sim backend the entire run (history included) is byte-identical across
// repetitions, so a failing seed is a complete reproduction recipe.
// Non-zero exit if any backend's consistency check fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mpsnap/internal/chaos"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "chaos seed: drives the fault schedule and the workload")
		duration  = flag.Duration("duration", 5*time.Second, "workload length (wall time on transports; 1 D per 10ms everywhere)")
		backend   = flag.String("backend", "both", "backend(s): sim|chan|tcp|both (sim+tcp)|all, or a comma list")
		alg       = flag.String("alg", "eqaso", "object under test: eqaso|byzaso|sso")
		n         = flag.Int("n", 5, "number of nodes")
		f         = flag.Int("f", 2, "resilience bound")
		crashes   = flag.Int("crashes", 1, "crash events (clamped to f; every other one strikes mid-broadcast)")
		parts     = flag.Int("partitions", 2, "partition->heal episodes")
		drops     = flag.Int("drops", 2, "per-link message-loss windows")
		dropProb  = flag.Float64("drop-prob", 0.25, "loss probability inside a drop window")
		spikes    = flag.Int("spikes", 2, "per-link delay-spike windows")
		spikeD    = flag.Float64("spike-extra", 3, "extra delay inside a spike window, in units of D")
		corrupts  = flag.Int("corrupts", 0, "per-link wire-corruption windows (requires f > 0; undecodable mutants are dropped, decodable ones delivered only to byzaso)")
		corrProb  = flag.Float64("corrupt-prob", 0.2, "corruption probability inside a corrupt window")
		scanRatio = flag.Float64("scan-ratio", 0.5, "fraction of scans in the workload")
		showSched = flag.Bool("schedule", false, "print every fault event before running")
		jsonOut   = flag.Bool("json", false, "emit one JSON report per backend on stdout")
		dump      = flag.String("dump", "", "write each backend's history JSON to <prefix>-<backend>.json")
	)
	flag.Parse()

	cfg := chaos.Config{
		N: *n, F: *f, Alg: *alg, Seed: *seed,
		Duration: chaos.TicksOf(*duration),
		Mix: chaos.Mix{
			Crashes: *crashes, Partitions: *parts,
			DropWindows: *drops, DropProb: *dropProb,
			SpikeWindows: *spikes, SpikeExtraD: *spikeD,
			CorruptWindows: *corrupts, CorruptProb: *corrProb,
		},
		ScanRatio: *scanRatio,
	}

	backends, err := expandBackends(*backend)
	if err != nil {
		log.Fatal(err)
	}

	var reports []chaos.Report
	failed := false
	for _, be := range backends {
		var res *chaos.Result
		var err error
		startWall := time.Now()
		if be == "sim" {
			res, err = chaos.RunSim(cfg)
		} else {
			res, err = chaos.RunTransport(cfg, be)
		}
		if err != nil {
			log.Fatalf("backend %s: %v", be, err)
		}
		rep := chaos.NewReport(be, *alg, res)
		reports = append(reports, rep)
		if !rep.OK {
			failed = true
		}
		if *dump != "" {
			path := fmt.Sprintf("%s-%s.json", strings.TrimSuffix(*dump, ".json"), be)
			if err := writeHistory(path, res); err != nil {
				log.Fatal(err)
			}
		}
		if !*jsonOut {
			printReport(rep, cfg, *duration, time.Since(startWall), *showSched)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			log.Fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func expandBackends(s string) ([]string, error) {
	var out []string
	for _, b := range strings.Split(s, ",") {
		switch strings.TrimSpace(b) {
		case "sim", "chan", "tcp":
			out = append(out, strings.TrimSpace(b))
		case "both":
			out = append(out, "sim", "tcp")
		case "all":
			out = append(out, "sim", "chan", "tcp")
		case "":
		default:
			return nil, fmt.Errorf("unknown backend %q (want sim|chan|tcp|both|all)", b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backend selected")
	}
	return out, nil
}

func printReport(rep chaos.Report, cfg chaos.Config, wall, took time.Duration, showSched bool) {
	fmt.Printf("backend=%-4s alg=%s n=%d f=%d seed=%d duration=%s (%d ticks) schedule=%s\n",
		rep.Backend, rep.Alg, cfg.N, cfg.F, cfg.Seed, wall, cfg.Duration, rep.ScheduleHash)
	mix := rep.Schedule.Mix
	fmt.Printf("  faults: %d crashes, %d partitions, %d drop windows (p=%.2f), %d spikes (+%gD), %d corrupt windows — %d events\n",
		mix.Crashes, mix.Partitions, mix.DropWindows, mix.DropProb, mix.SpikeWindows, mix.SpikeExtraD,
		mix.CorruptWindows, len(rep.Schedule.Events))
	if showSched {
		for _, ev := range rep.Schedule.Events {
			fmt.Printf("    %s\n", ev)
		}
	}
	fmt.Printf("  ops=%d pending=%d", rep.Ops, rep.Pending)
	if rep.Stats != nil {
		fmt.Printf(" msgs=%d dropped=%d held=%d corrupt=%d",
			rep.Stats.MsgsTotal, rep.Stats.MsgsDrop, rep.Stats.MsgsHeld, rep.Stats.MsgsCorrupt)
	} else {
		fmt.Printf(" dropped=%d held=%d corrupt=%d", rep.NetDrops, rep.NetHeld, rep.NetCorrupt)
	}
	if rep.HistoryHash != "" {
		fmt.Printf(" history=%s", rep.HistoryHash)
	}
	fmt.Printf(" (%.1fs wall)\n", took.Seconds())
	for _, b := range rep.Blocked {
		fmt.Printf("  stuck: %s\n", b)
	}
	kind := "linearizable (A1-A4)"
	if rep.Alg == "sso" {
		kind = "sequentially consistent"
	}
	if rep.OK {
		fmt.Printf("  consistency: %s ✓\n", kind)
	} else {
		fmt.Printf("  consistency: FAILED — %d violations; first: %s\n", len(rep.Violations), rep.Violations[0])
		fmt.Printf("  reproduce: asochaos -backend %s -alg %s -n %d -f %d -seed %d -duration %s\n",
			rep.Backend, rep.Alg, cfg.N, cfg.F, cfg.Seed, wall)
	}
}

func writeHistory(path string, res *chaos.Result) error {
	if res.Hist == nil {
		return nil
	}
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Hist.DumpJSON(fd); err != nil {
		fd.Close()
		return err
	}
	if err := fd.Close(); err != nil {
		return err
	}
	fmt.Printf("  history written to %s (re-check with: asosim -check %s)\n", path, path)
	return nil
}
