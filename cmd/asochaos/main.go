// Command asochaos runs a seeded chaos schedule — node crashes (including
// mid-broadcast), transient partitions with heal, per-link loss and delay
// spikes — against a snapshot object while concurrent clients issue
// UPDATE/SCAN operations, then checks the recorded history for
// linearizability (sequential consistency for SSO).
//
// Usage:
//
//	asochaos -seed 42 -duration 5s
//	asochaos -backend tcp -engine byzaso -n 7 -f 2 -json
//	asochaos -engine fastsnap -seed 1337   # any registered engine
//	asochaos -backend sim -trace-dir traces   # JSONL post-mortem on failure
//	asochaos -shards 4 -shard-crash 1         # sharded cluster, per-shard mix
//
// The same seed injects the same fault schedule on every backend; on the
// sim backend the entire run (history included) is byte-identical across
// repetitions, so a failing seed is a complete reproduction recipe. With
// -trace-dir a failing sim run additionally dumps its operation/phase and
// fault-injection events as JSONL — itself a deterministic function of the
// seed. Non-zero exit if any backend's consistency check fails.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mpsnap/internal/chaos"
	"mpsnap/internal/cluster"
	"mpsnap/internal/engine"
)

func main() {
	cfg, err := parseChaosConfig(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.Cluster.Shards > 0 {
		runClusterMode(cfg)
		return
	}

	var reports []chaos.Report
	failed := false
	for _, be := range cfg.Backends {
		var res *chaos.Result
		var err error
		startWall := time.Now()
		if be == "sim" {
			res, err = chaos.RunSim(cfg.Chaos)
		} else {
			res, err = chaos.RunTransport(cfg.Chaos, be)
		}
		if err != nil {
			log.Fatalf("backend %s: %v", be, err)
		}
		rep := chaos.NewReport(be, cfg.Chaos.Engine, res)
		reports = append(reports, rep)
		if !rep.OK {
			failed = true
		}
		if cfg.Dump != "" {
			path := fmt.Sprintf("%s-%s.json", strings.TrimSuffix(cfg.Dump, ".json"), be)
			if err := writeHistory(path, res); err != nil {
				log.Fatal(err)
			}
		}
		if !cfg.JSONOut {
			printReport(rep, cfg, time.Since(startWall))
		}
	}

	if cfg.JSONOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			log.Fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runClusterMode is the -shards dispatch: the same seed, mix, and
// topology flags, but applied per shard to N independent EQ-ASO clusters
// behind the routing layer, with validated cross-shard GlobalScans in
// place of the single-object linearizability check.
func runClusterMode(cfg chaosConfig) {
	type outcome struct {
		Backend string          `json:"backend"`
		Report  *cluster.Report `json:"report"`
		OK      bool            `json:"ok"`
	}
	var outs []outcome
	failed := false
	for _, be := range cfg.Backends {
		var rep *cluster.Report
		var err error
		startWall := time.Now()
		switch be {
		case "sim":
			rep, err = cluster.RunSim(cfg.Cluster)
		case "chan":
			rep, err = cluster.RunChan(cfg.Cluster)
		case "tcp":
			rep, err = cluster.RunTCP(cfg.Cluster)
		}
		if err != nil {
			log.Fatalf("backend %s: %v", be, err)
		}
		ok := rep.OK()
		outs = append(outs, outcome{Backend: be, Report: rep, OK: ok})
		if !ok {
			failed = true
		}
		if !cfg.JSONOut {
			r := cfg.Cluster
			fmt.Printf("backend=%-4s shards=%d n=%d f=%d seed=%d duration=%s (%d ticks)\n",
				be, r.Shards, r.N, r.F, r.Seed, cfg.Duration, r.Duration)
			fmt.Printf("  %v (%.1fs wall)\n", rep, time.Since(startWall).Seconds())
			for _, b := range rep.Blocked {
				fmt.Printf("  stuck: %s\n", b)
			}
			if ok {
				fmt.Printf("  cuts: consistent across shards (prefix closure, placement, marks) ✓\n")
			} else if len(rep.Violations) > 0 {
				fmt.Printf("  cuts: FAILED — %d violations; first: %s\n", len(rep.Violations), rep.Violations[0])
				fmt.Printf("  reproduce: asochaos -backend %s -shards %d -n %d -f %d -seed %d -duration %s\n",
					be, r.Shards, r.N, r.F, r.Seed, cfg.Duration)
			} else {
				fmt.Printf("  cuts: FAILED — no validated cut completed (availability, not consistency)\n")
			}
		}
	}
	if cfg.JSONOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outs); err != nil {
			log.Fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printReport(rep chaos.Report, cfg chaosConfig, took time.Duration) {
	c := cfg.Chaos
	fmt.Printf("backend=%-4s engine=%s n=%d f=%d seed=%d duration=%s (%d ticks) schedule=%s\n",
		rep.Backend, rep.Engine, c.N, c.F, c.Seed, cfg.Duration, c.Duration, rep.ScheduleHash)
	if rep.Schedule.Churn != nil {
		var cycles, flaps, lags int
		for _, ev := range rep.Schedule.Events {
			switch ev.Kind {
			case chaos.EvRestart:
				cycles++
			case chaos.EvPartition:
				flaps++
			case chaos.EvSpikeOn:
				lags++
			}
		}
		fmt.Printf("  churn: %d crash→restart cycles, %d membership flaps, %d lagging-link windows — %d events\n",
			cycles, flaps, lags, len(rep.Schedule.Events))
	} else {
		mix := rep.Schedule.Mix
		fmt.Printf("  faults: %d crashes, %d partitions, %d drop windows (p=%.2f), %d spikes (+%gD), %d corrupt windows — %d events\n",
			mix.Crashes, mix.Partitions, mix.DropWindows, mix.DropProb, mix.SpikeWindows, mix.SpikeExtraD,
			mix.CorruptWindows, len(rep.Schedule.Events))
		if mix.Restarts > 0 {
			restarts := 0
			for _, ev := range rep.Schedule.Events {
				if ev.Kind == chaos.EvRestart {
					restarts++
				}
			}
			fmt.Printf("  recovery: %d of %d crash victims restart (WAL replay + rejoin)\n", restarts, mix.Crashes)
		}
	}
	if cfg.ShowSched {
		for _, ev := range rep.Schedule.Events {
			fmt.Printf("    %s\n", ev)
		}
	}
	fmt.Printf("  ops=%d pending=%d", rep.Ops, rep.Pending)
	if rep.Stats != nil {
		fmt.Printf(" msgs=%d dropped=%d held=%d corrupt=%d",
			rep.Stats.MsgsTotal, rep.Stats.MsgsDrop, rep.Stats.MsgsHeld, rep.Stats.MsgsCorrupt)
	} else {
		fmt.Printf(" dropped=%d held=%d corrupt=%d", rep.NetDrops, rep.NetHeld, rep.NetCorrupt)
	}
	if rep.HistoryHash != "" {
		fmt.Printf(" history=%s", rep.HistoryHash)
	}
	fmt.Printf(" (%.1fs wall)\n", took.Seconds())
	for _, b := range rep.Blocked {
		fmt.Printf("  stuck: %s\n", b)
	}
	kind := "linearizable (A1-A4)"
	if in, err := engine.Lookup(rep.Engine); err == nil && in.Sequential {
		kind = "sequentially consistent"
	}
	if len(rep.Violations) == 0 {
		fmt.Printf("  consistency: %s ✓\n", kind)
	} else {
		fmt.Printf("  consistency: FAILED — %d violations; first: %s\n", len(rep.Violations), rep.Violations[0])
	}
	if rep.MonitorStats != nil {
		st := rep.MonitorStats
		if len(rep.MonitorViolations) == 0 {
			fmt.Printf("  monitor: clean — %d scans checked, %d updates, %d skipped, %d evicted\n",
				st.Scans, st.Updates, st.Skipped, st.Evicted)
		} else {
			fmt.Printf("  monitor: FAILED — %d violations; first: %s\n",
				len(rep.MonitorViolations), rep.MonitorViolations[0])
			if rep.MonitorPath != "" {
				fmt.Printf("  monitor dump: %s", rep.MonitorPath)
				if rep.MonitorTracePath != "" {
					fmt.Printf(" (+ trace %s)", rep.MonitorTracePath)
				}
				fmt.Println()
			}
		}
	}
	if !rep.OK {
		churn := ""
		if c.Churn {
			churn = " -churn"
		}
		fmt.Printf("  reproduce: asochaos -backend %s -engine %s%s -n %d -f %d -seed %d -duration %s\n",
			rep.Backend, rep.Engine, churn, c.N, c.F, c.Seed, cfg.Duration)
	}
	if rep.TracePath != "" {
		fmt.Println("  " + traceLine(rep))
	}
}

// traceLine is the one-line pointer from a report to its trace dump: the
// path plus everything needed to regenerate it (seed + schedule digest).
func traceLine(rep chaos.Report) string {
	s := fmt.Sprintf("trace: %s (seed=%d schedule=%s", rep.TracePath, rep.Schedule.Seed, rep.ScheduleHash)
	if rep.TraceDropped > 0 {
		s += fmt.Sprintf(", %d older events evicted", rep.TraceDropped)
	}
	return s + ")"
}

func writeHistory(path string, res *chaos.Result) error {
	if res.Hist == nil {
		return nil
	}
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Hist.DumpJSON(fd); err != nil {
		fd.Close()
		return err
	}
	if err := fd.Close(); err != nil {
		return err
	}
	fmt.Printf("  history written to %s (re-check with: asosim -check %s)\n", path, path)
	return nil
}
