// Command asocluster runs the multi-cluster sharded store under a seeded
// per-shard chaos schedule: Shards independent EQ-ASO clusters behind the
// consistent-hash routing layer, workload clients writing marked causal
// chains across shards, and one coordinator per shard taking GlobalScans
// — coordinated cross-shard cuts checked by the cut validator against the
// per-writer prefix-closure invariant.
//
// Usage:
//
//	asocluster -shards 4 -duration 2s
//	asocluster -backend chan -seed 42 -shard-crash 1
//	asocluster -backend sim,chan -shard-partition 0 -json
//
// On the sim backend the entire run is deterministic in the seed. The
// chan and tcp backends replay the same fault schedule on real goroutine
// scheduling and a TCP loopback mesh respectively (restarts — including
// -shard-crash, whose victims recover by WAL replay — are sim/chan only).
// Non-zero exit if any backend reports a cut violation or finishes
// without one validated cut.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"mpsnap/internal/cluster"
)

func main() {
	cfg, err := parseClusterConfig(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		Backend string          `json:"backend"`
		Report  *cluster.Report `json:"report"`
		OK      bool            `json:"ok"`
	}
	var outs []outcome
	failed := false
	for _, be := range cfg.Backends {
		var rep *cluster.Report
		var err error
		startWall := time.Now()
		run := cfg.Run
		switch be {
		case "sim":
			rep, err = cluster.RunSim(run)
		case "chan":
			rep, err = cluster.RunChan(run)
		case "tcp":
			if run.Mix.Restarts > 0 && !cfg.RestartsSet && run.CrashShard < 0 {
				// The default restart budget doesn't apply to tcp (a tcp
				// restart is a process restart); only an explicit
				// -restarts or -shard-crash should fail the backend.
				run.Mix.Restarts = 0
			}
			rep, err = cluster.RunTCP(run)
		}
		if err != nil {
			log.Fatalf("backend %s: %v", be, err)
		}
		ok := rep.OK()
		outs = append(outs, outcome{Backend: be, Report: rep, OK: ok})
		if !ok {
			failed = true
		}
		if !cfg.JSONOut {
			printReport(be, rep, cfg, time.Since(startWall))
		}
	}

	if cfg.JSONOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outs); err != nil {
			log.Fatal(err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func printReport(be string, rep *cluster.Report, cfg clusterConfig, took time.Duration) {
	r := cfg.Run
	fmt.Printf("backend=%-4s shards=%d n=%d f=%d seed=%d duration=%s (%d ticks)\n",
		be, r.Shards, r.N, r.F, r.Seed, cfg.Duration, r.Duration)
	mix := r.Mix
	fmt.Printf("  faults/shard: %d crashes (%d restart), %d partitions, %d drop windows (p=%.2f), %d spikes (+%gD)",
		mix.Crashes, mix.Restarts, mix.Partitions, mix.DropWindows, mix.DropProb, mix.SpikeWindows, mix.SpikeExtraD)
	if r.CrashShard >= 0 {
		fmt.Printf("; whole-shard crash+recover: %d", r.CrashShard)
	}
	if r.PartitionShard >= 0 {
		fmt.Printf("; whole-shard partition: %d", r.PartitionShard)
	}
	fmt.Println()
	fmt.Printf("  %v (%.1fs wall)\n", rep, took.Seconds())
	for _, b := range rep.Blocked {
		fmt.Printf("  stuck: %s\n", b)
	}
	if rep.OK() {
		fmt.Printf("  cuts: consistent across shards (prefix closure, placement, marks) ✓\n")
	} else if len(rep.Violations) > 0 {
		fmt.Printf("  cuts: FAILED — %d violations; first: %s\n", len(rep.Violations), rep.Violations[0])
		fmt.Printf("  reproduce: asocluster -backend %s -shards %d -n %d -f %d -seed %d -duration %s\n",
			be, r.Shards, r.N, r.F, r.Seed, cfg.Duration)
	} else {
		fmt.Printf("  cuts: FAILED — no validated cut completed (availability, not consistency)\n")
	}
}
