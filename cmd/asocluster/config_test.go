package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseClusterConfigDefaults(t *testing.T) {
	cfg, err := parseClusterConfig(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Backends; len(got) != 1 || got[0] != "sim" {
		t.Errorf("default backends = %v, want [sim]", got)
	}
	if cfg.Run.Shards != 2 || cfg.Run.N != 3 || cfg.Run.F != 1 {
		t.Errorf("default topology = %d×%d f=%d, want 2×3 f=1", cfg.Run.Shards, cfg.Run.N, cfg.Run.F)
	}
	if cfg.Run.CrashShard != -1 || cfg.Run.PartitionShard != -1 {
		t.Errorf("whole-shard faults default on: crash=%d partition=%d", cfg.Run.CrashShard, cfg.Run.PartitionShard)
	}
	if cfg.Run.Duration <= 0 || cfg.Run.GlobalScanEvery <= 0 {
		t.Errorf("durations not set: %d / %d", cfg.Run.Duration, cfg.Run.GlobalScanEvery)
	}
}

func TestParseClusterConfigBackends(t *testing.T) {
	cfg, err := parseClusterConfig([]string{"-backend", "all"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(cfg.Backends, ","); got != "sim,chan,tcp" {
		t.Errorf("all = %q", got)
	}
	cfg, err = parseClusterConfig([]string{"-backend", "chan,tcp"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(cfg.Backends, ","); got != "chan,tcp" {
		t.Errorf("list = %q", got)
	}
	if _, err := parseClusterConfig([]string{"-backend", "quic"}, io.Discard); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestParseClusterConfigRestartsSet(t *testing.T) {
	cfg, err := parseClusterConfig(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.RestartsSet {
		t.Error("RestartsSet true without an explicit -restarts")
	}
	if cfg.Run.Mix.Restarts != 1 {
		t.Errorf("default restarts = %d, want 1", cfg.Run.Mix.Restarts)
	}
	cfg, err = parseClusterConfig([]string{"-restarts", "1"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.RestartsSet {
		t.Error("RestartsSet false with an explicit -restarts")
	}
}

func TestParseClusterConfigFlags(t *testing.T) {
	cfg, err := parseClusterConfig([]string{
		"-shards", "4", "-n", "5", "-f", "2", "-seed", "9",
		"-shard-crash", "1", "-shard-partition", "3", "-scan-every", "100ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Run.Shards != 4 || cfg.Run.N != 5 || cfg.Run.F != 2 || cfg.Run.Seed != 9 {
		t.Errorf("topology flags not applied: %+v", cfg.Run)
	}
	if cfg.Run.CrashShard != 1 || cfg.Run.PartitionShard != 3 {
		t.Errorf("shard fault flags not applied: crash=%d partition=%d", cfg.Run.CrashShard, cfg.Run.PartitionShard)
	}
	// 100ms at 10ms per D = 10D.
	if got := cfg.Run.GlobalScanEvery.DUnits(); got != 10 {
		t.Errorf("scan-every = %.1fD, want 10D", got)
	}
}
