package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"mpsnap/internal/chaos"
	"mpsnap/internal/cluster"
	"mpsnap/internal/rt"
)

// clusterConfig is the parsed asocluster command line: the
// cluster.RunConfig for every selected backend plus command-level
// options.
type clusterConfig struct {
	Run      cluster.RunConfig
	Backends []string
	Duration time.Duration
	JSONOut  bool
	// RestartsSet records an explicit -restarts flag. The tcp backend
	// cannot restart an in-process node (a tcp restart is a process
	// restart), so the default restart budget is silently dropped for
	// tcp — but an explicit request must fail loudly, not quietly.
	RestartsSet bool
}

// parseClusterConfig parses and validates the asocluster command line.
// Usage and flag errors are written to out.
func parseClusterConfig(args []string, out io.Writer) (clusterConfig, error) {
	var (
		cfg      clusterConfig
		backend  string
		scanEach time.Duration
	)
	fs := flag.NewFlagSet("asocluster", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.Int64Var(&cfg.Run.Seed, "seed", 1, "seed: drives the per-shard fault schedules and the workload")
	fs.DurationVar(&cfg.Duration, "duration", 2*time.Second, "workload length (wall time on transports; 1 D per 10ms everywhere)")
	fs.StringVar(&backend, "backend", "sim", "backend(s): sim|chan|tcp|all, or a comma list")
	fs.IntVar(&cfg.Run.Shards, "shards", 2, "number of independent EQ-ASO shard clusters")
	fs.IntVar(&cfg.Run.N, "n", 3, "nodes per shard")
	fs.IntVar(&cfg.Run.F, "f", 1, "per-shard resilience bound (n > 2f)")
	fs.IntVar(&cfg.Run.VNodes, "vnodes", 0, "virtual nodes per shard on the placement ring (default cluster.DefaultVNodes)")
	fs.IntVar(&cfg.Run.Clients, "clients", 1, "workload threads per node")
	fs.Float64Var(&cfg.Run.ScanRatio, "scan-ratio", 0.2, "fraction of keyed scans in each client's workload")
	fs.IntVar(&cfg.Run.KeysPerClient, "keys", 8, "private key-pool size per writer")
	fs.DurationVar(&scanEach, "scan-every", 0, "period between each coordinator's validated GlobalScans (default 250ms = 25D)")
	fs.IntVar(&cfg.Run.Mix.Crashes, "crashes", 1, "per-shard crash events (clamped to f)")
	fs.IntVar(&cfg.Run.Mix.Partitions, "partitions", 1, "per-shard partition->heal episodes")
	fs.IntVar(&cfg.Run.Mix.DropWindows, "drops", 1, "per-shard per-link message-loss windows")
	fs.Float64Var(&cfg.Run.Mix.DropProb, "drop-prob", 0.25, "loss probability inside a drop window")
	fs.IntVar(&cfg.Run.Mix.SpikeWindows, "spikes", 1, "per-shard per-link delay-spike windows")
	fs.Float64Var(&cfg.Run.Mix.SpikeExtraD, "spike-extra", 3, "extra delay inside a spike window, in units of D")
	fs.IntVar(&cfg.Run.Mix.Restarts, "restarts", 1, "crash victims that later recover by WAL replay + rejoin (sim and chan)")
	fs.Float64Var(&cfg.Run.Mix.RestartDelayD, "restart-delay", 0, "crash-to-recovery delay in units of D (default 5, min 3)")
	fs.IntVar(&cfg.Run.CrashShard, "shard-crash", -1, "crash EVERY member of this shard at 40% of the run, restart from WALs at 55% (sim and chan)")
	fs.IntVar(&cfg.Run.PartitionShard, "shard-partition", -1, "isolate this whole shard from the rest of the topology during [30%, 60%] of the run")
	fs.BoolVar(&cfg.JSONOut, "json", false, "emit one JSON report per backend on stdout")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "restarts" {
			cfg.RestartsSet = true
		}
	})
	cfg.Run.Duration = chaos.TicksOf(cfg.Duration)
	if scanEach > 0 {
		cfg.Run.GlobalScanEvery = chaos.TicksOf(scanEach)
	} else {
		cfg.Run.GlobalScanEvery = 25 * rt.TicksPerD
	}
	var err error
	cfg.Backends, err = expandBackends(backend)
	return cfg, err
}

func expandBackends(s string) ([]string, error) {
	var out []string
	for _, b := range strings.Split(s, ",") {
		switch strings.TrimSpace(b) {
		case "sim", "chan", "tcp":
			out = append(out, strings.TrimSpace(b))
		case "all":
			out = append(out, "sim", "chan", "tcp")
		case "":
		default:
			return nil, fmt.Errorf("unknown backend %q (want sim|chan|tcp|all)", b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no backend selected")
	}
	return out, nil
}
