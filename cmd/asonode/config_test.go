package main

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpsnap/internal/obs"
	"mpsnap/internal/rt"
)

func TestParseNodeConfig(t *testing.T) {
	addrs := "-addrs=:7000,:7001,:7002,:7003,:7004"
	cases := []struct {
		name    string
		args    []string
		wantErr string
		check   func(t *testing.T, c nodeConfig)
	}{
		{
			name: "defaults",
			args: []string{addrs},
			check: func(t *testing.T, c nodeConfig) {
				if c.N() != 5 || c.F != 2 {
					t.Errorf("n=%d f=%d, want 5/2", c.N(), c.F)
				}
				if c.Engine != "eqaso" || c.D != 10*time.Millisecond {
					t.Errorf("engine=%q d=%v", c.Engine, c.D)
				}
				if c.HTTP != "" || c.TraceCap != 4096 {
					t.Errorf("http=%q traceCap=%d", c.HTTP, c.TraceCap)
				}
			},
		},
		{
			name: "byzaso default f via alg alias",
			args: []string{addrs, "-addrs=:1,:2,:3,:4,:5,:6,:7", "-alg", "byzaso"},
			check: func(t *testing.T, c nodeConfig) {
				if c.Engine != "byzaso" || c.F != 2 {
					t.Errorf("engine=%q f=%d, want byzaso/(7-1)/3=2", c.Engine, c.F)
				}
			},
		},
		{
			name: "engine flag selects any registered engine",
			args: []string{addrs, "-engine", "fastsnap"},
			check: func(t *testing.T, c nodeConfig) {
				if c.Engine != "fastsnap" || c.F != 2 {
					t.Errorf("engine=%q f=%d, want fastsnap/2", c.Engine, c.F)
				}
			},
		},
		{
			name: "engine wins over the alg alias",
			args: []string{addrs, "-engine", "acr", "-alg", "sso"},
			check: func(t *testing.T, c nodeConfig) {
				if c.Engine != "acr" {
					t.Errorf("engine=%q, want acr (-engine beats -alg)", c.Engine)
				}
			},
		},
		{
			name: "explicit flags",
			args: []string{addrs, "-id", "3", "-f", "1", "-http", ":9090", "-trace-cap", "64", "-d", "5ms"},
			check: func(t *testing.T, c nodeConfig) {
				if c.ID != 3 || c.F != 1 || c.HTTP != ":9090" || c.TraceCap != 64 || c.D != 5*time.Millisecond {
					t.Errorf("got %+v", c)
				}
			},
		},
		{name: "no addrs", args: nil, wantErr: "at least 3"},
		{name: "two addrs", args: []string{"-addrs=:1,:2"}, wantErr: "at least 3"},
		{name: "bad alg", args: []string{addrs, "-alg", "paxos"}, wantErr: "unknown engine"},
		{name: "bad engine", args: []string{addrs, "-engine", "raft"}, wantErr: "unknown engine"},
		{name: "id out of range", args: []string{addrs, "-id", "5"}, wantErr: "out of range"},
		{name: "f too big", args: []string{addrs, "-f", "2", "-addrs=:1,:2,:3"}, wantErr: "n > 2f"},
		{name: "byzaso f too big", args: []string{addrs, "-alg", "byzaso", "-f", "2"}, wantErr: "n > 3f"},
		{name: "wal needs durability", args: []string{addrs, "-engine", "fastsnap", "-wal", "x.wal"}, wantErr: "no WAL support"},
		{name: "bad trace cap", args: []string{addrs, "-trace-cap", "0"}, wantErr: "-trace-cap"},
		{name: "bad flag", args: []string{"-nope"}, wantErr: "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := parseNodeConfig(tc.args, io.Discard)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err=%v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, c)
		})
	}
}

// TestObsMux drives the /metrics and /debug/trace handlers directly.
func TestObsMux(t *testing.T) {
	metrics := obs.NewWallMetrics(10 * time.Millisecond)
	trace := obs.NewTrace(16)
	for _, o := range []rt.Observer{metrics, trace} {
		o.OnOp(rt.OpEvent{T: 5, Node: 0, ID: 1, Op: "update", Phase: rt.PhaseEnd, Dur: 2000})
		o.OnMsg(rt.MsgEvent{T: 5, Event: rt.MsgSend, Src: 0, Dst: 1, Kind: "value"})
	}
	mux := obsMux(metrics, trace)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "mpsnap_op_latency_us_count") {
		t.Errorf("/metrics missing latency count:\n%s", body)
	}
	if !strings.Contains(body, "mpsnap_messages_total") {
		t.Errorf("/metrics missing message counter:\n%s", body)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("/debug/trace: got %d lines, want 2:\n%s", len(lines), rec.Body.String())
	}
	if !strings.Contains(lines[0], `"op":"update"`) {
		t.Errorf("trace line missing op event: %s", lines[0])
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/ index: code %d body:\n%.200s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/heap?debug=1", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/heap: code %d", rec.Code)
	}
}
