package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"mpsnap/internal/engine"
	"mpsnap/internal/svc"
)

// nodeConfig is the parsed and validated command line of one asonode
// process.
type nodeConfig struct {
	ID    int
	Addrs []string
	F     int
	// Engine names the registered snapshot engine this node runs.
	Engine      string
	D           time.Duration
	DialTimeout time.Duration
	Clients     string
	MaxPending  int
	// HTTP, if non-empty, serves GET /metrics (Prometheus text format,
	// wall-clock µs latencies) and GET /debug/trace (recent events as
	// JSONL) on this address.
	HTTP string
	// TraceCap bounds the /debug/trace ring buffer.
	TraceCap int
	// WAL, if non-empty, persists the node's protocol state to this
	// file; if the file already holds a durable prefix the node recovers
	// from it and rejoins the cluster (durable engines only).
	WAL string
	// GC prunes the in-memory value log below the globally-vouched
	// checkpoint (requires WAL).
	GC bool
}

// N is the cluster size implied by the address list.
func (c nodeConfig) N() int { return len(c.Addrs) }

// parseNodeConfig parses the asonode command line. Usage and flag errors
// are written to out; validation errors are returned.
func parseNodeConfig(args []string, out io.Writer) (nodeConfig, error) {
	var cfg nodeConfig
	var addrs, alg string
	fs := flag.NewFlagSet("asonode", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.IntVar(&cfg.ID, "id", 0, "this node's index into -addrs")
	fs.StringVar(&addrs, "addrs", "", "comma-separated listen addresses of all nodes")
	fs.IntVar(&cfg.F, "f", 0, "resilience bound (default: (n-1)/2, or (n-1)/3 for Byzantine engines)")
	fs.StringVar(&cfg.Engine, "engine", "", "engine: "+engine.FlagHelp()+" (default eqaso)")
	fs.StringVar(&alg, "alg", "", "deprecated alias for -engine")
	fs.DurationVar(&cfg.D, "d", 10*time.Millisecond, "wall-clock duration treated as one D (reporting only)")
	fs.DurationVar(&cfg.DialTimeout, "dial-timeout", 10*time.Second, "total per-peer connection budget at startup")
	fs.StringVar(&cfg.Clients, "clients", "", "optional listen address for concurrent TCP client sessions")
	fs.IntVar(&cfg.MaxPending, "max-pending", svc.DefaultMaxPending, "service queue bound (backpressure blocks past it)")
	fs.StringVar(&cfg.HTTP, "http", "", "optional listen address for /metrics and /debug/trace")
	fs.IntVar(&cfg.TraceCap, "trace-cap", 4096, "event capacity of the /debug/trace ring buffer")
	fs.StringVar(&cfg.WAL, "wal", "", "write-ahead log file for crash-recovery; recovers and rejoins if it already has content (durable engines)")
	fs.BoolVar(&cfg.GC, "gc", false, "prune the value log below the globally-vouched checkpoint (requires -wal)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if addrs != "" {
		cfg.Addrs = strings.Split(addrs, ",")
	}
	if len(cfg.Addrs) < 3 {
		return cfg, fmt.Errorf("need -addrs with at least 3 comma-separated addresses")
	}
	// -engine wins over the deprecated -alg alias; both empty means eqaso.
	if cfg.Engine == "" {
		cfg.Engine = alg
	}
	if cfg.Engine == "" {
		cfg.Engine = "eqaso"
	}
	in, err := engine.Lookup(cfg.Engine)
	if err != nil {
		return cfg, err
	}
	if cfg.ID < 0 || cfg.ID >= cfg.N() {
		return cfg, fmt.Errorf("-id %d out of range for %d addresses", cfg.ID, cfg.N())
	}
	if cfg.F == 0 {
		if in.Byzantine {
			cfg.F = (cfg.N() - 1) / 3
		} else {
			cfg.F = (cfg.N() - 1) / 2
		}
	}
	if cfg.F < 0 {
		return cfg, fmt.Errorf("-f must be non-negative, got %d", cfg.F)
	}
	if err := in.Validate(cfg.N(), cfg.F); err != nil {
		return cfg, err
	}
	if cfg.D <= 0 {
		return cfg, fmt.Errorf("-d must be positive")
	}
	if cfg.TraceCap <= 0 {
		return cfg, fmt.Errorf("-trace-cap must be positive")
	}
	if cfg.WAL != "" && !in.Durable() {
		return cfg, fmt.Errorf("-wal needs a crash-recovery engine, and %q has no WAL support", cfg.Engine)
	}
	if cfg.GC && cfg.WAL == "" {
		return cfg, fmt.Errorf("-gc requires -wal (pruning is only safe below a durable checkpoint)")
	}
	return cfg, nil
}
