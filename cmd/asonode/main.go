// Command asonode runs one snapshot-object node over real TCP. Start one
// process per node with the same -addrs list, then drive any node through
// its stdin REPL:
//
//	# shell 1                                  # shell 2, 3 ...
//	asonode -id 0 -addrs :7000,:7001,:7002     asonode -id 1 -addrs ...
//
//	> update hello          write to the own segment
//	> scan                  atomic snapshot of all segments
//	> quit
//
// The transport relies on TCP's in-order delivery for the paper's FIFO
// channel assumption; the deployment is crash-stop (no reconnects).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mpsnap/internal/byzaso"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/rt"
	"mpsnap/internal/sso"
	"mpsnap/internal/transport"
)

type object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

func main() {
	var (
		id    = flag.Int("id", 0, "this node's index into -addrs")
		addrs = flag.String("addrs", "", "comma-separated listen addresses of all nodes")
		f     = flag.Int("f", 0, "resilience bound (default: (n-1)/2, or (n-1)/3 for byzaso)")
		alg   = flag.String("alg", "eqaso", "algorithm: eqaso|byzaso|sso")
		d     = flag.Duration("d", 10*time.Millisecond, "wall-clock duration treated as one D (reporting only)")
	)
	flag.Parse()
	list := strings.Split(*addrs, ",")
	if len(list) < 3 || *addrs == "" {
		log.Fatal("need -addrs with at least 3 comma-separated addresses")
	}
	n := len(list)
	if *f == 0 {
		if *alg == "byzaso" {
			*f = (n - 1) / 3
		} else {
			*f = (n - 1) / 2
		}
	}

	tn, err := transport.NewTCPNode(transport.TCPConfig{ID: *id, Addrs: list, F: *f, D: *d})
	if err != nil {
		log.Fatal(err)
	}
	defer tn.Close()

	var obj object
	var handler rt.Handler
	switch *alg {
	case "eqaso":
		nd := eqaso.New(tn.Runtime())
		obj, handler = nd, nd
	case "byzaso":
		nd := byzaso.New(tn.Runtime())
		obj, handler = nd, nd
	case "sso":
		nd := sso.New(tn.Runtime())
		obj, handler = nd, nd
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}
	tn.SetHandler(handler)

	fmt.Printf("node %d/%d up (%s, f=%d); commands: update <value> | scan | quit\n", *id, n, *alg, *f)
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "update", "u":
			if len(fields) < 2 {
				fmt.Println("usage: update <value>")
				continue
			}
			start := time.Now()
			if err := obj.Update([]byte(strings.Join(fields[1:], " "))); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("ok (%v)\n", time.Since(start).Round(time.Microsecond))
		case "scan", "s":
			start := time.Now()
			snap, err := obj.Scan()
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("snapshot (%v):\n", time.Since(start).Round(time.Microsecond))
			for seg, v := range snap {
				if v == nil {
					fmt.Printf("  [%d] ⊥\n", seg)
				} else {
					fmt.Printf("  [%d] %s\n", seg, v)
				}
			}
		case "quit", "q", "exit":
			return
		default:
			fmt.Println("commands: update <value> | scan | quit")
		}
	}
}
