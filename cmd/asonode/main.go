// Command asonode runs one snapshot-object node over real TCP. Start one
// process per node with the same -addrs list (peers may come up in any
// order — dialing retries with exponential backoff for -dial-timeout),
// then drive any node through its stdin REPL:
//
//	# shell 1                                  # shell 2, 3 ...
//	asonode -id 0 -addrs :7000,:7001,:7002     asonode -id 1 -addrs ...
//
//	> update hello          write to the own segment
//	> scan                  atomic snapshot of all segments
//	> stats                 service-layer counters
//	> quit
//
// All operations flow through the concurrent service layer (internal/svc):
// pending updates coalesce into one protocol update, concurrent scans
// share one protocol scan. With -clients ADDR the node also accepts any
// number of concurrent TCP client sessions speaking the same line
// protocol, all multiplexed onto this node's single protocol instance:
//
//	asonode -id 0 -addrs ... -clients :8000 &
//	nc localhost 8000
//
// The transport relies on TCP's in-order delivery for the paper's FIFO
// channel assumption; the deployment is crash-stop (no reconnects).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"mpsnap/internal/byzaso"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/rt"
	"mpsnap/internal/sso"
	"mpsnap/internal/svc"
	"mpsnap/internal/transport"
)

func main() {
	var (
		id          = flag.Int("id", 0, "this node's index into -addrs")
		addrs       = flag.String("addrs", "", "comma-separated listen addresses of all nodes")
		f           = flag.Int("f", 0, "resilience bound (default: (n-1)/2, or (n-1)/3 for byzaso)")
		alg         = flag.String("alg", "eqaso", "algorithm: eqaso|byzaso|sso")
		d           = flag.Duration("d", 10*time.Millisecond, "wall-clock duration treated as one D (reporting only)")
		dialTimeout = flag.Duration("dial-timeout", 10*time.Second, "total per-peer connection budget at startup")
		clients     = flag.String("clients", "", "optional listen address for concurrent TCP client sessions")
		maxPending  = flag.Int("max-pending", svc.DefaultMaxPending, "service queue bound (backpressure blocks past it)")
	)
	flag.Parse()
	list := strings.Split(*addrs, ",")
	if len(list) < 3 || *addrs == "" {
		log.Fatal("need -addrs with at least 3 comma-separated addresses")
	}
	n := len(list)
	if *f == 0 {
		if *alg == "byzaso" {
			*f = (n - 1) / 3
		} else {
			*f = (n - 1) / 2
		}
	}

	tn, err := transport.NewTCPNode(transport.TCPConfig{ID: *id, Addrs: list, F: *f, D: *d, DialTimeout: *dialTimeout})
	if err != nil {
		log.Fatal(err)
	}
	defer tn.Close()

	var obj svc.Object
	var handler rt.Handler
	switch *alg {
	case "eqaso":
		nd := eqaso.New(tn.Runtime())
		obj, handler = nd, nd
	case "byzaso":
		nd := byzaso.New(tn.Runtime())
		obj, handler = nd, nd
	case "sso":
		nd := sso.New(tn.Runtime())
		obj, handler = nd, nd
	default:
		log.Fatalf("unknown algorithm %q", *alg)
	}
	tn.SetHandler(handler)

	service := svc.New(tn.Runtime(), obj, svc.Options{
		Mode:       svc.ModeFor(*alg),
		MaxPending: *maxPending,
	})
	go func() {
		if err := service.Serve(); err != nil {
			log.Printf("service stopped: %v", err)
		}
	}()
	defer service.Close()

	if *clients != "" {
		ln, err := net.Listen("tcp", *clients)
		if err != nil {
			log.Fatalf("client listener: %v", err)
		}
		defer ln.Close()
		go acceptClients(ln, service)
		fmt.Printf("client sessions on %s\n", ln.Addr())
	}

	fmt.Printf("node %d/%d up (%s, f=%d, service mode %s); commands: update <value> | scan | stats | quit\n",
		*id, n, *alg, *f, svc.ModeFor(*alg))
	session(os.Stdin, os.Stdout, service, true)
}

// acceptClients serves each inbound connection as an independent client
// session; all sessions share the node's service (and thus its batches).
func acceptClients(ln net.Listener, s *svc.Service) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			defer conn.Close()
			fmt.Fprintln(conn, "commands: update <value> | scan | stats | quit")
			session(conn, conn, s, false)
		}()
	}
}

// session runs the line protocol until quit or EOF. The prompt is only
// printed on the interactive stdin session.
func session(in io.Reader, out io.Writer, s *svc.Service, prompt bool) {
	sc := bufio.NewScanner(in)
	for {
		if prompt {
			fmt.Fprint(out, "> ")
		}
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "update", "u":
			if len(fields) < 2 {
				fmt.Fprintln(out, "usage: update <value>")
				continue
			}
			start := time.Now()
			if err := s.Update([]byte(strings.Join(fields[1:], " "))); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "ok (%v)\n", time.Since(start).Round(time.Microsecond))
		case "scan", "s":
			start := time.Now()
			snap, err := s.Scan()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "snapshot (%v):\n", time.Since(start).Round(time.Microsecond))
			for seg, v := range snap {
				if v == nil {
					fmt.Fprintf(out, "  [%d] ⊥\n", seg)
				} else {
					fmt.Fprintf(out, "  [%d] %s\n", seg, v)
				}
			}
		case "stats":
			st := s.Stats()
			fmt.Fprintf(out, "updates=%d scans=%d protoUpdates=%d protoScans=%d maxBatch=%d rejected=%d queued=%d\n",
				st.Updates, st.Scans, st.ProtoUpdates, st.ProtoScans, st.MaxBatch, st.Rejected, s.QueueLen())
		case "quit", "q", "exit":
			return
		default:
			fmt.Fprintln(out, "commands: update <value> | scan | stats | quit")
		}
	}
}
