// Command asonode runs one snapshot-object node over real TCP. Start one
// process per node with the same -addrs list (peers may come up in any
// order — dialing retries with exponential backoff for -dial-timeout),
// then drive any node through its stdin REPL:
//
//	# shell 1                                  # shell 2, 3 ...
//	asonode -id 0 -addrs :7000,:7001,:7002     asonode -id 1 -addrs ...
//
//	> update hello          write to the own segment
//	> scan                  atomic snapshot of all segments
//	> stats                 service-layer counters
//	> quit
//
// All operations flow through the concurrent service layer (internal/svc):
// pending updates coalesce into one protocol update, concurrent scans
// share one protocol scan. With -clients ADDR the node also accepts any
// number of concurrent TCP client sessions speaking the same line
// protocol, all multiplexed onto this node's single protocol instance:
//
//	asonode -id 0 -addrs ... -clients :8000 &
//	nc localhost 8000
//
// With -http ADDR the node serves its observability surface: GET /metrics
// exports per-operation latency histograms (wall-clock µs) and message
// counters in Prometheus text format; GET /debug/trace streams the most
// recent operation/phase/message events as JSONL; /debug/pprof/ serves
// the standard Go profiling endpoints for profiling saturation runs.
//
// The transport relies on TCP's in-order delivery for the paper's FIFO
// channel assumption; the deployment is crash-stop (no reconnects).
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/obs"
	"mpsnap/internal/rt"
	"mpsnap/internal/svc"
	"mpsnap/internal/transport"
	"mpsnap/internal/wal"
)

// walBatch is the fsync batch for -wal: foreign values may ride a batch;
// the protocol's durability points force explicit syncs regardless.
const walBatch = 8

func main() {
	cfg, err := parseNodeConfig(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	// Observability: one Metrics (histograms in wall-clock µs, D = cfg.D)
	// plus one trace ring feed every event source — transport, protocol
	// node, service layer — and back the -http endpoints.
	var observer rt.Observer
	var metrics *obs.Metrics
	var trace *obs.Trace
	if cfg.HTTP != "" {
		metrics = obs.NewWallMetrics(cfg.D)
		trace = obs.NewTrace(cfg.TraceCap)
		observer = obs.Multi{metrics, trace}
	}

	tn, err := transport.NewTCPNode(transport.TCPConfig{
		ID: cfg.ID, Addrs: cfg.Addrs, F: cfg.F, D: cfg.D,
		DialTimeout: cfg.DialTimeout, Observer: observer,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tn.Close()

	// Crash-recovery: with -wal, replay the file's durable prefix (torn
	// tails are the normal shape of a crash) and rebuild the node from
	// it; new appends go to the same file, after the garbage tail replay
	// stopped at has been truncated away — appending behind it would make
	// every later record unreachable to the next replay, silently losing
	// durably-acted-on state on a second crash. AttachWAL/Recover must
	// happen before the handler is installed.
	var walW *wal.Writer
	var walSt *wal.State
	if cfg.WAL != "" {
		data, err := os.ReadFile(cfg.WAL)
		if err != nil && !os.IsNotExist(err) {
			log.Fatalf("wal: %v", err)
		}
		if len(data) > 0 {
			walSt = wal.Recover(data, cfg.N(), cfg.ID)
			if walSt.Intact < len(data) {
				if err := os.Truncate(cfg.WAL, int64(walSt.Intact)); err != nil {
					log.Fatalf("wal: truncate torn tail: %v", err)
				}
			}
			fmt.Printf("wal: replayed %d records from %s (frontier count=%d, tail: %v)\n",
				walSt.Records, cfg.WAL, walSt.Frontier.Count, walSt.TailErr)
		}
		f, err := os.OpenFile(cfg.WAL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		defer f.Close()
		walW = wal.NewWriter(f, walBatch)
	}

	// Registry construction: the capability interfaces replace the old
	// per-algorithm switch. Config validation already guaranteed -wal is
	// only set for durable engines.
	in := engine.MustLookup(cfg.Engine)
	var nd engine.Engine
	var rejoin func()
	if walSt != nil {
		nd = in.Recover(tn.Runtime(), walSt, walW, cfg.GC)
		rejoin = nd.(engine.Rejoiner).Rejoin
	} else {
		nd = in.New(tn.Runtime())
		if walW != nil {
			nd.(engine.Durable).AttachWAL(walW, cfg.GC)
		}
	}
	if observer != nil {
		if o, ok := nd.(engine.Observable); ok {
			o.SetObserver(observer)
		}
	}
	var obj svc.Object = nd
	tn.SetHandler(nd)
	if rejoin != nil {
		rejoin()
		fmt.Println("wal: rejoined the cluster from the recovered checkpoint")
	}

	service := svc.New(tn.Runtime(), obj, svc.Options{
		Mode:       svc.ModeFor(cfg.Engine),
		MaxPending: cfg.MaxPending,
		Observer:   observer,
	})
	go func() {
		if err := service.Serve(); err != nil {
			log.Printf("service stopped: %v", err)
		}
	}()
	defer service.Close()

	if cfg.HTTP != "" {
		ln, err := net.Listen("tcp", cfg.HTTP)
		if err != nil {
			log.Fatalf("http listener: %v", err)
		}
		defer ln.Close()
		go http.Serve(ln, obsMux(metrics, trace))
		fmt.Printf("metrics on http://%s/metrics, trace on http://%s/debug/trace, profiles on http://%s/debug/pprof/\n",
			ln.Addr(), ln.Addr(), ln.Addr())
	}

	if cfg.Clients != "" {
		ln, err := net.Listen("tcp", cfg.Clients)
		if err != nil {
			log.Fatalf("client listener: %v", err)
		}
		defer ln.Close()
		go acceptClients(ln, service)
		fmt.Printf("client sessions on %s\n", ln.Addr())
	}

	fmt.Printf("node %d/%d up (%s, f=%d, service mode %s); commands: update <value> | scan | stats | quit\n",
		cfg.ID, cfg.N(), cfg.Engine, cfg.F, svc.ModeFor(cfg.Engine))
	session(os.Stdin, os.Stdout, service, true)
}

// obsMux serves the node's observability endpoints, including the
// standard pprof surface so saturation runs (cmd/asoload against this
// node) can be profiled live:
//
//	go tool pprof http://HOST:PORT/debug/pprof/profile?seconds=10
//	go tool pprof http://HOST:PORT/debug/pprof/heap
func obsMux(metrics *obs.Metrics, trace *obs.Trace) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, metrics.Snapshot()); err != nil {
			log.Printf("/metrics: %v", err)
		}
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		if err := trace.WriteJSONL(w); err != nil {
			log.Printf("/debug/trace: %v", err)
		}
	})
	return mux
}

// acceptClients serves each inbound connection as an independent client
// session; all sessions share the node's service (and thus its batches).
func acceptClients(ln net.Listener, s *svc.Service) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func() {
			defer conn.Close()
			fmt.Fprintln(conn, "commands: update <value> | scan | stats | quit")
			session(conn, conn, s, false)
		}()
	}
}

// session runs the line protocol until quit or EOF. The prompt is only
// printed on the interactive stdin session.
func session(in io.Reader, out io.Writer, s *svc.Service, prompt bool) {
	sc := bufio.NewScanner(in)
	for {
		if prompt {
			fmt.Fprint(out, "> ")
		}
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "update", "u":
			if len(fields) < 2 {
				fmt.Fprintln(out, "usage: update <value>")
				continue
			}
			start := time.Now()
			if err := s.Update([]byte(strings.Join(fields[1:], " "))); err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "ok (%v)\n", time.Since(start).Round(time.Microsecond))
		case "scan", "s":
			start := time.Now()
			snap, err := s.Scan()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintf(out, "snapshot (%v):\n", time.Since(start).Round(time.Microsecond))
			for seg, v := range snap {
				if v == nil {
					fmt.Fprintf(out, "  [%d] ⊥\n", seg)
				} else {
					fmt.Fprintf(out, "  [%d] %s\n", seg, v)
				}
			}
		case "stats":
			st := s.Stats()
			fmt.Fprintf(out, "updates=%d scans=%d protoUpdates=%d protoScans=%d maxBatch=%d rejected=%d queued=%d\n",
				st.Updates, st.Scans, st.ProtoUpdates, st.ProtoScans, st.MaxBatch, st.Rejected, s.QueueLen())
		case "quit", "q", "exit":
			return
		default:
			fmt.Fprintln(out, "commands: update <value> | scan | stats | quit")
		}
	}
}
