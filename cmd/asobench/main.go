// Command asobench regenerates the paper's evaluation artifacts on the
// virtual-time simulator. Each experiment prints a table whose *shape*
// corresponds to the paper's complexity claims (latencies are measured in
// units of the maximum message delay D).
//
// Usage:
//
//	asobench                 # run everything
//	asobench -e table1       # one experiment: table1 sqrtk amortized
//	                         # failurefree byzantine sso lattice
//	asobench -e latency -json BENCH_latency.json
//	asobench -quick          # smaller parameters
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"mpsnap/internal/bench"
)

func main() {
	cfg, err := parseBenchConfig(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	seed := cfg.Seed

	type experiment struct {
		name string
		run  func() (string, error)
	}
	var (
		table1Ops = 6
		sqrtKs    = []int{0, 1, 2, 4, 8, 16, 25, 36, 50}
		amortK    = 16
		amortOps  = []int{1, 2, 4, 8, 16, 32}
		ffNs      = []int{4, 8, 16, 32}
		byzFs     = []int{1, 2, 4}
		latticeKs = []int{0, 1, 2, 4, 8, 16}
		table1N   = 16
		table1F   = 7
		table1K   = 4
		ssoN      = 9
		ssoOps    = 6
		tputNs    = []int{8, 16}
		tputCs    = []int{1, 4, 16, 64}
		tputOps   = 2
		latN      = 16
		latOps    = 6
		hpN       = 8
		hpWindow  = 128
		hpWindows = 16
		hpHs      = []int{1024, 4096, 16384, 65536}
		rcN       = 8
		rcWindow  = 128
		rcReps    = 3
		rcHs      = []int{1024, 4096, 16384, 65536}
		clShards  = []int{1, 2, 4, 8}
		clN       = 3
		clF       = 1
		clKeys    = 8
		clScans   = 5
		engN      = 7
		engOps    = 12
		wcEngines = []string{"eqaso", "acr", "fastsnap"}
		wcClients = []int{64, 256, 1024, 4096}
		wcN       = 4
		wcDur     = 2 * time.Second
		wcWarm    = 500 * time.Millisecond
		wcBakeoff = 1024
	)
	if cfg.Quick {
		engN, engOps = 5, 8
		table1Ops, table1N, table1F, table1K = 3, 7, 3, 2
		sqrtKs = []int{0, 2, 4, 8}
		amortK, amortOps = 8, []int{1, 2, 4, 8}
		ffNs = []int{4, 8, 16}
		byzFs = []int{1, 2}
		latticeKs = []int{0, 2, 4, 8}
		ssoN, ssoOps = 5, 3
		tputNs, tputCs = []int{8, 16}, []int{1, 16, 64}
		latN, latOps = 8, 3
		hpWindows, hpHs = 8, []int{1024, 4096, 16384}
		rcHs = []int{1024, 4096, 16384}
		clShards, clKeys, clScans = []int{1, 2, 4}, 6, 3
		// 256 clients is the smallest count where the mesh is saturated
		// enough for the tuned/legacy gap to clear the -check gate
		// reliably in a sub-second window.
		wcEngines, wcClients = []string{"fastsnap"}, []int{64, 256}
		wcDur, wcWarm, wcBakeoff = 700*time.Millisecond, 200*time.Millisecond, 256
	}

	experiments := []experiment{
		{"table1", func() (string, error) { return bench.Table1(table1N, table1F, table1K, table1Ops, seed) }},
		{"sqrtk", func() (string, error) { return bench.SqrtK(sqrtKs, 2, seed) }},
		{"amortized", func() (string, error) { return bench.Amortized(amortK, amortOps, seed) }},
		{"failurefree", func() (string, error) { return bench.FailureFree(ffNs, 2, seed) }},
		{"byzantine", func() (string, error) { return bench.Byzantine(byzFs, 3, seed) }},
		{"sso", func() (string, error) { return bench.SSOScan(ssoN, ssoOps, seed) }},
		{"lattice", func() (string, error) { return bench.Lattice(latticeKs, seed) }},
		{"messages", func() (string, error) { return bench.Messages(table1N, table1Ops, seed) }},
		{"latency", func() (string, error) {
			l, err := bench.RunLatency(latN, latOps, seed)
			if err != nil {
				return "", err
			}
			out := l.Render()
			if cfg.JSONPath != "" {
				blob, err := l.JSON()
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", cfg.JSONPath)
			}
			return out, nil
		}},
		{"throughput", func() (string, error) {
			out, points, err := bench.Throughput(tputNs, tputCs, tputOps, seed)
			if err != nil {
				return "", err
			}
			if cfg.JSONPath != "" {
				report := bench.ThroughputReport{Env: bench.CaptureEnv(), Points: points}
				if err := writeJSON(cfg.JSONPath, report); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", cfg.JSONPath)
			}
			return out, nil
		}},
		{"hotpath", func() (string, error) {
			h := bench.RunHotpath(hpN, hpWindow, hpWindows, hpHs)
			out := h.Render()
			if cfg.JSONPath != "" {
				blob, err := h.JSON()
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", cfg.JSONPath)
			}
			if cfg.Check {
				if err := h.Check(1.5); err != nil {
					return "", err
				}
				out += "check passed: log-engine allocations per window are flat in H\n"
			}
			return out, nil
		}},
		{"recovery", func() (string, error) {
			r := bench.RunRecovery(rcN, rcWindow, rcReps, rcHs)
			out := r.Render()
			if cfg.JSONPath != "" {
				blob, err := r.JSON()
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", cfg.JSONPath)
			}
			if cfg.Check {
				if err := r.Check(2.0); err != nil {
					return "", err
				}
				out += "check passed: GC-on recovered residency is flat in H\n"
			}
			return out, nil
		}},
		{"cluster", func() (string, error) {
			c, err := bench.RunCluster(clN, clF, clShards, clKeys, clScans, seed)
			if err != nil {
				return "", err
			}
			out := c.Render()
			if cfg.JSONPath != "" {
				blob, err := c.JSON()
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", cfg.JSONPath)
			}
			if cfg.Check {
				if err := c.Check(1.2); err != nil {
					return "", err
				}
				out += "check passed: shards=1 GlobalScan is within 1.2× of the svc scan baseline\n"
			}
			return out, nil
		}},
		{"engines", func() (string, error) {
			e, err := bench.RunEngines(engN, engOps, seed)
			if err != nil {
				return "", err
			}
			out := e.Render()
			if cfg.JSONPath != "" {
				blob, err := e.JSON()
				if err != nil {
					return "", err
				}
				if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", cfg.JSONPath)
			}
			if cfg.Check {
				if err := e.Check(); err != nil {
					return "", err
				}
				out += "check passed: fastsnap contention-free scan p50 is below eqaso's\n"
			}
			return out, nil
		}},
		{"wallclock", func() (string, error) {
			w, err := bench.RunWallclock(bench.WallclockConfig{
				Engines: wcEngines, Clients: wcClients, N: wcN,
				Duration: wcDur, Warmup: wcWarm, ScanPct: 10,
				Seed: seed, BakeoffClients: wcBakeoff,
			})
			if err != nil {
				return "", err
			}
			out := w.Render()
			if cfg.JSONPath != "" {
				if err := writeJSON(cfg.JSONPath, w); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", cfg.JSONPath)
			}
			if cfg.Check {
				if err := w.Check(1.5); err != nil {
					return "", err
				}
				out += "check passed: tuned transport reaches >= 1.5x legacy ops/s at the bake-off client count\n"
			}
			return out, nil
		}},
		{"codec", func() (string, error) {
			out, report, err := bench.Codec()
			if err != nil {
				return "", err
			}
			if cfg.JSONPath != "" {
				if err := writeJSON(cfg.JSONPath, report); err != nil {
					return "", err
				}
				out += fmt.Sprintf("report written to %s\n", cfg.JSONPath)
			}
			return out, nil
		}},
	}

	for _, e := range experiments {
		if cfg.Exp == "all" && (e.name == "codec" || e.name == "wallclock") {
			// codec needs the go toolchain (gob baseline); wallclock runs
			// real TCP meshes for wall-clock minutes. Both run explicitly.
			continue
		}
		if cfg.Exp != "all" && cfg.Exp != e.name {
			continue
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("━━━ %s (%.1fs) ━━━\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
}

func writeJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
