// Command asobench regenerates the paper's evaluation artifacts on the
// virtual-time simulator. Each experiment prints a table whose *shape*
// corresponds to the paper's complexity claims (latencies are measured in
// units of the maximum message delay D).
//
// Usage:
//
//	asobench                 # run everything
//	asobench -e table1       # one experiment: table1 sqrtk amortized
//	                         # failurefree byzantine sso lattice
//	asobench -quick          # smaller parameters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mpsnap/internal/bench"
)

func main() {
	var (
		exp      = flag.String("e", "all", "experiment: table1|sqrtk|amortized|failurefree|byzantine|sso|lattice|messages|throughput|codec|all")
		quick    = flag.Bool("quick", false, "smaller parameters (CI-sized)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		jsonPath = flag.String("json", "", "write the machine-readable points to this JSON file (throughput and codec experiments)")
	)
	flag.Parse()

	type experiment struct {
		name string
		run  func() (string, error)
	}
	var (
		table1Ops = 6
		sqrtKs    = []int{0, 1, 2, 4, 8, 16, 25, 36, 50}
		amortK    = 16
		amortOps  = []int{1, 2, 4, 8, 16, 32}
		ffNs      = []int{4, 8, 16, 32}
		byzFs     = []int{1, 2, 4}
		latticeKs = []int{0, 1, 2, 4, 8, 16}
		table1N   = 16
		table1F   = 7
		table1K   = 4
		ssoN      = 9
		ssoOps    = 6
		tputNs    = []int{8, 16}
		tputCs    = []int{1, 4, 16, 64}
		tputOps   = 2
	)
	if *quick {
		table1Ops, table1N, table1F, table1K = 3, 7, 3, 2
		sqrtKs = []int{0, 2, 4, 8}
		amortK, amortOps = 8, []int{1, 2, 4, 8}
		ffNs = []int{4, 8, 16}
		byzFs = []int{1, 2}
		latticeKs = []int{0, 2, 4, 8}
		ssoN, ssoOps = 5, 3
		tputNs, tputCs = []int{8, 16}, []int{1, 16, 64}
	}

	experiments := []experiment{
		{"table1", func() (string, error) { return bench.Table1(table1N, table1F, table1K, table1Ops, *seed) }},
		{"sqrtk", func() (string, error) { return bench.SqrtK(sqrtKs, 2, *seed) }},
		{"amortized", func() (string, error) { return bench.Amortized(amortK, amortOps, *seed) }},
		{"failurefree", func() (string, error) { return bench.FailureFree(ffNs, 2, *seed) }},
		{"byzantine", func() (string, error) { return bench.Byzantine(byzFs, 3, *seed) }},
		{"sso", func() (string, error) { return bench.SSOScan(ssoN, ssoOps, *seed) }},
		{"lattice", func() (string, error) { return bench.Lattice(latticeKs, *seed) }},
		{"messages", func() (string, error) { return bench.Messages(table1N, table1Ops, *seed) }},
		{"throughput", func() (string, error) {
			out, points, err := bench.Throughput(tputNs, tputCs, tputOps, *seed)
			if err != nil {
				return "", err
			}
			if *jsonPath != "" {
				if err := writeJSON(*jsonPath, points); err != nil {
					return "", err
				}
				out += fmt.Sprintf("points written to %s\n", *jsonPath)
			}
			return out, nil
		}},
		{"codec", func() (string, error) {
			out, report, err := bench.Codec()
			if err != nil {
				return "", err
			}
			if *jsonPath != "" {
				if err := writeJSON(*jsonPath, report); err != nil {
					return "", err
				}
				out += fmt.Sprintf("report written to %s\n", *jsonPath)
			}
			return out, nil
		}},
	}

	ran := 0
	for _, e := range experiments {
		if *exp == "all" && e.name == "codec" {
			continue // needs the go toolchain (gob baseline); run explicitly
		}
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran++
		start := time.Now()
		out, err := e.run()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("━━━ %s (%.1fs) ━━━\n%s\n", e.name, time.Since(start).Seconds(), out)
	}
	if ran == 0 {
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func writeJSON(path string, v any) error {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
