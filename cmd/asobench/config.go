package main

import (
	"flag"
	"fmt"
	"io"
)

// knownExperiments is the -e vocabulary, in run order.
var knownExperiments = []string{
	"table1", "sqrtk", "amortized", "failurefree", "byzantine",
	"sso", "lattice", "messages", "throughput", "codec", "latency",
	"hotpath", "recovery", "cluster", "engines", "wallclock",
}

// benchConfig is the parsed asobench command line.
type benchConfig struct {
	Exp      string
	Quick    bool
	Seed     int64
	JSONPath string
	Check    bool
}

// parseBenchConfig parses and validates the asobench command line. Usage
// and flag errors are written to out.
func parseBenchConfig(args []string, out io.Writer) (benchConfig, error) {
	var cfg benchConfig
	fs := flag.NewFlagSet("asobench", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.StringVar(&cfg.Exp, "e", "all",
		"experiment: table1|sqrtk|amortized|failurefree|byzantine|sso|lattice|messages|throughput|codec|latency|hotpath|recovery|cluster|engines|wallclock|all")
	fs.BoolVar(&cfg.Quick, "quick", false, "smaller parameters (CI-sized)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "simulation seed")
	fs.StringVar(&cfg.JSONPath, "json", "",
		"write the machine-readable points to this JSON file (throughput, codec, latency, hotpath, recovery, cluster, and engines experiments)")
	fs.BoolVar(&cfg.Check, "check", false,
		"fail when an experiment's acceptance criterion does not hold (hotpath: flat log-engine allocation growth; recovery: flat GC-on recovered residency; cluster: shards=1 GlobalScan within 1.2× of the svc scan baseline; engines: fastsnap contention-free scan p50 below eqaso's)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.Exp != "all" {
		ok := false
		for _, name := range knownExperiments {
			if cfg.Exp == name {
				ok = true
				break
			}
		}
		if !ok {
			return cfg, fmt.Errorf("unknown experiment %q (want all or one of %v)", cfg.Exp, knownExperiments)
		}
	}
	return cfg, nil
}
