package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseBenchConfig(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		want    benchConfig
		wantErr string
	}{
		{
			name: "defaults",
			args: nil,
			want: benchConfig{Exp: "all", Seed: 1},
		},
		{
			name: "latency with json",
			args: []string{"-e", "latency", "-json", "BENCH_latency.json", "-seed", "7", "-quick"},
			want: benchConfig{Exp: "latency", Quick: true, Seed: 7, JSONPath: "BENCH_latency.json"},
		},
		{name: "every known experiment parses", args: []string{"-e", "table1"}, want: benchConfig{Exp: "table1", Seed: 1}},
		{name: "unknown experiment", args: []string{"-e", "warp"}, wantErr: "unknown experiment"},
		{name: "bad flag", args: []string{"-nope"}, wantErr: "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseBenchConfig(tc.args, io.Discard)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err=%v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("got %+v want %+v", got, tc.want)
			}
		})
	}
	// The -e vocabulary itself: every listed name must validate.
	for _, name := range knownExperiments {
		if _, err := parseBenchConfig([]string{"-e", name}, io.Discard); err != nil {
			t.Errorf("known experiment %q rejected: %v", name, err)
		}
	}
}
