// Command asofuzz hammers the snapshot-object implementations with
// randomized configurations — cluster sizes, delay seeds, workload mixes,
// crash schedules — and checks every resulting history against the
// paper's conditions (A1)-(A4) (sequential consistency for SSO). It runs
// forever by default; any violation stops it with a nonzero exit and
// enough information to reproduce deterministically.
//
// Usage:
//
//	asofuzz                    # fuzz all algorithms until interrupted
//	asofuzz -count 100         # a bounded batch (CI)
//	asofuzz -alg eqaso -seed 7 # reproduce one case
//	asofuzz -wire -count 1000  # fuzz the wire codec layer instead
//
// With -wire, each run generates one message per registered codec and
// checks the encode→decode→re-encode round trip for byte equality, then
// feeds mutated frames to the decoder to prove it errors instead of
// panicking — the same properties as internal/wire's fuzz targets, but
// runnable as a long-haul soak without the go test fuzz driver.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"mpsnap"
	"mpsnap/internal/wire"
)

func main() {
	var (
		count    = flag.Int("count", 0, "number of runs (0 = until interrupted)")
		alg      = flag.String("alg", "", "restrict to one algorithm (default: rotate all)")
		seed     = flag.Int64("seed", 0, "starting seed (default: time-based)")
		wireMode = flag.Bool("wire", false, "fuzz the wire codec round trip instead of the protocols")
	)
	flag.Parse()

	if *wireMode {
		fuzzWire(*count, *seed)
		return
	}

	algs := mpsnap.Algorithms()
	if *alg != "" {
		algs = []mpsnap.Algorithm{mpsnap.Algorithm(*alg)}
	}
	base := *seed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	start := time.Now()
	for run := 0; *count == 0 || run < *count; run++ {
		s := base + int64(run)
		a := algs[run%len(algs)]
		if err := fuzzOne(a, s); err != nil {
			fmt.Fprintf(os.Stderr, "\nVIOLATION after %d runs (%.1fs):\n", run, time.Since(start).Seconds())
			fmt.Fprintf(os.Stderr, "  reproduce: asofuzz -alg %s -seed %d -count 1\n", a, s)
			fmt.Fprintf(os.Stderr, "  %v\n", err)
			os.Exit(1)
		}
		if run%50 == 49 {
			fmt.Printf("%6d runs ok (%.0f runs/s)\n", run+1, float64(run+1)/time.Since(start).Seconds())
		}
	}
	fmt.Printf("done: %d runs, 0 violations (%.1fs)\n", *count, time.Since(start).Seconds())
}

// fuzzWire soaks the codec layer: canonical round trips for generated
// messages of every registered type, then mutated frames that must decode
// to an error, never a panic.
func fuzzWire(count int, seed int64) {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	codecs := wire.Registered()
	start := time.Now()
	msgs := 0
	for run := 0; count == 0 || run < count; run++ {
		rng := rand.New(rand.NewSource(seed + int64(run)))
		for _, c := range codecs {
			msg := c.Gen(rng)
			if _, err := wire.Roundtrip(msg); err != nil {
				fmt.Fprintf(os.Stderr, "\nVIOLATION: tag %d (%T): %v\n", c.Tag, c.Proto, err)
				fmt.Fprintf(os.Stderr, "  reproduce: asofuzz -wire -seed %d -count 1\n", seed+int64(run))
				os.Exit(1)
			}
			frame, err := wire.MarshalFrame(msg, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\nVIOLATION: tag %d (%T): frame: %v\n", c.Tag, c.Proto, err)
				os.Exit(1)
			}
			// Mutate: a bit flip, a truncation, or garbage — the decoder
			// must return an error or a valid message, never panic.
			switch rng.Intn(3) {
			case 0:
				frame[rng.Intn(len(frame))] ^= 1 << uint(rng.Intn(8))
			case 1:
				frame = frame[:rng.Intn(len(frame))]
			case 2:
				rng.Read(frame)
			}
			_, _ = wire.UnmarshalFrame(frame, 0)
			msgs++
		}
		if run%500 == 499 {
			fmt.Printf("%6d runs ok, %d messages (%.0f msgs/s)\n",
				run+1, msgs, float64(msgs)/time.Since(start).Seconds())
		}
	}
	fmt.Printf("done: %d wire runs over %d codecs, %d messages, 0 violations (%.1fs)\n",
		count, len(codecs), msgs, time.Since(start).Seconds())
}

// fuzzOne executes one randomized checked run.
func fuzzOne(alg mpsnap.Algorithm, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(6)
	f := (n - 1) / 2
	if alg.RequiresNGreaterThan3F() {
		n = 4 + rng.Intn(6)
		f = (n - 1) / 3
	}
	if f == 0 {
		f = 1
		if n <= 2 {
			n = 3
		}
		if alg.RequiresNGreaterThan3F() && n <= 3 {
			n = 4
		}
	}
	cfg := mpsnap.Config{N: n, F: f, Algorithm: alg, Seed: seed}
	if rng.Intn(3) == 0 {
		cfg.Delay = mpsnap.DelayConstant
	}
	crashes := rng.Intn(f + 1)
	for v := 0; v < crashes; v++ {
		cfg.Crashes = append(cfg.Crashes, mpsnap.CrashSpec{
			Node: v,
			At:   mpsnap.Ticks(rng.Int63n(int64(30 * mpsnap.D))),
		})
	}
	cluster, err := mpsnap.NewSimCluster(cfg)
	if err != nil {
		return fmt.Errorf("config n=%d f=%d: %w", n, f, err)
	}
	opsPerNode := 1 + rng.Intn(5)
	scanRatio := rng.Float64()
	for i := 0; i < n; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			rng := rand.New(rand.NewSource(seed*2654435761 + int64(i)))
			for k := 1; k <= opsPerNode; k++ {
				var err error
				if rng.Float64() < scanRatio {
					_, err = c.Scan()
				} else {
					err = c.Update([]byte(fmt.Sprintf("v%d-%d", i, k)))
				}
				if err != nil {
					return // crashed node
				}
				_ = c.Sleep(mpsnap.Ticks(rng.Int63n(int64(4 * mpsnap.D))))
			}
		})
	}
	if err := cluster.Run(); err != nil {
		return fmt.Errorf("n=%d f=%d crashes=%d ops=%d: run: %w", n, f, crashes, opsPerNode, err)
	}
	if err := cluster.Check(); err != nil {
		return fmt.Errorf("n=%d f=%d crashes=%d ops=%d: %w", n, f, crashes, opsPerNode, err)
	}
	return nil
}
