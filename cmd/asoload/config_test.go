package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestParseLoadConfigDefaults(t *testing.T) {
	cfg, err := parseLoadConfig(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gen.Engine != "eqaso" || cfg.Gen.N != 4 || cfg.Gen.Clients != 64 {
		t.Errorf("defaults: engine=%q n=%d clients=%d", cfg.Gen.Engine, cfg.Gen.N, cfg.Gen.Clients)
	}
	if cfg.Gen.Duration != 2*time.Second || cfg.Gen.Warmup != 500*time.Millisecond {
		t.Errorf("defaults: duration=%v warmup=%v", cfg.Gen.Duration, cfg.Gen.Warmup)
	}
	if cfg.Gen.Legacy || cfg.Gen.Rate != 0 || cfg.Gen.ZipfS != 0 {
		t.Errorf("defaults: legacy=%v rate=%g zipf=%g", cfg.Gen.Legacy, cfg.Gen.Rate, cfg.Gen.ZipfS)
	}
	if cfg.Gen.Path() != "tuned" {
		t.Errorf("default path = %q, want tuned", cfg.Gen.Path())
	}
}

func TestParseLoadConfigFull(t *testing.T) {
	cfg, err := parseLoadConfig(strings.Fields(
		"-engine fastsnap -n 7 -f 3 -clients 1024 -duration 5s -warmup 1s "+
			"-scans 25 -keys 4096 -zipf 1.2 -rate 50000 -payload 64 -seed 9 "+
			"-d 2ms -max-pending 8192 -legacy -flush 50us -json out.json -quiet"), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Gen
	if g.Engine != "fastsnap" || g.N != 7 || g.F != 3 || g.Clients != 1024 {
		t.Errorf("parsed: engine=%q n=%d f=%d clients=%d", g.Engine, g.N, g.F, g.Clients)
	}
	if g.Duration != 5*time.Second || g.Warmup != time.Second || g.D != 2*time.Millisecond {
		t.Errorf("parsed: duration=%v warmup=%v d=%v", g.Duration, g.Warmup, g.D)
	}
	if g.ScanPct != 25 || g.Keys != 4096 || g.ZipfS != 1.2 || g.Rate != 50000 {
		t.Errorf("parsed: scans=%d keys=%d zipf=%g rate=%g", g.ScanPct, g.Keys, g.ZipfS, g.Rate)
	}
	if g.Payload != 64 || g.Seed != 9 || g.MaxPending != 8192 {
		t.Errorf("parsed: payload=%d seed=%d max-pending=%d", g.Payload, g.Seed, g.MaxPending)
	}
	if !g.Legacy || g.FlushDelay != 50*time.Microsecond {
		t.Errorf("parsed: legacy=%v flush=%v", g.Legacy, g.FlushDelay)
	}
	if g.Path() != "legacy" {
		t.Errorf("path = %q, want legacy", g.Path())
	}
	if cfg.JSONPath != "out.json" || !cfg.Quiet {
		t.Errorf("parsed: json=%q quiet=%v", cfg.JSONPath, cfg.Quiet)
	}
}

func TestParseLoadConfigRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "1"},                   // mesh too small
		{"-clients", "0"},             // no sessions
		{"-scans", "101"},             // mix out of range
		{"-scans", "-1"},              // mix out of range
		{"-keys", "0"},                // empty key space
		{"-zipf", "0.5"},              // exponent must be > 1
		{"-rate", "-1"},               // negative arrival rate
		{"-n", "5", "-f", "3"},        // f > (n-1)/2
		{"-bogus"},                    // unknown flag
		{"positional"},                // stray argument
		{"-duration", "not-a-number"}, // malformed duration
	} {
		if _, err := parseLoadConfig(args, io.Discard); err == nil {
			t.Errorf("parseLoadConfig(%v): want error, got nil", args)
		}
	}
}
