package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"mpsnap/internal/loadgen"
)

// loadConfig is the parsed asoload command line.
type loadConfig struct {
	Gen      loadgen.Config
	JSONPath string
	Quiet    bool
}

// parseLoadConfig parses and validates the asoload command line. Usage
// and flag errors are written to out.
func parseLoadConfig(args []string, out io.Writer) (loadConfig, error) {
	var cfg loadConfig
	fs := flag.NewFlagSet("asoload", flag.ContinueOnError)
	fs.SetOutput(out)
	fs.StringVar(&cfg.Gen.Engine, "engine", "eqaso", "engine to drive (any registered atomic or sequential engine)")
	fs.IntVar(&cfg.Gen.N, "n", 4, "mesh size (nodes)")
	fs.IntVar(&cfg.Gen.F, "f", 0, "resilience bound (0 = derive from n)")
	fs.IntVar(&cfg.Gen.Clients, "clients", 64, "concurrent client sessions")
	fs.DurationVar(&cfg.Gen.Duration, "duration", 2*time.Second, "recording window")
	fs.DurationVar(&cfg.Gen.Warmup, "warmup", 500*time.Millisecond, "warmup excluded from every reported number")
	fs.IntVar(&cfg.Gen.ScanPct, "scans", 10, "percentage of operations that are scans (0..100)")
	fs.IntVar(&cfg.Gen.Keys, "keys", 1024, "virtual key-space size (keys route to node key mod n)")
	fs.Float64Var(&cfg.Gen.ZipfS, "zipf", 0, "Zipf skew exponent for key choice (>1 skews; 0 = uniform)")
	fs.Float64Var(&cfg.Gen.Rate, "rate", 0, "open-loop arrival rate in ops/sec across all sessions (0 = closed loop)")
	fs.IntVar(&cfg.Gen.Payload, "payload", 16, "update payload bytes")
	fs.Int64Var(&cfg.Gen.Seed, "seed", 1, "workload seed")
	fs.DurationVar(&cfg.Gen.D, "d", 5*time.Millisecond, "transport delay bound D")
	fs.IntVar(&cfg.Gen.MaxPending, "max-pending", 0, "per-node service queue bound (0 = svc default)")
	fs.BoolVar(&cfg.Gen.Legacy, "legacy", false, "run the pre-optimization transport and service path")
	fs.DurationVar(&cfg.Gen.FlushDelay, "flush", 0, "outbound coalescing window (0 = transport default, negative = disabled)")
	fs.StringVar(&cfg.JSONPath, "json", "", "write the machine-readable result to this JSON file")
	fs.BoolVar(&cfg.Quiet, "quiet", false, "suppress the human-readable report")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if len(fs.Args()) != 0 {
		return cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.Gen.N < 2 {
		return cfg, fmt.Errorf("-n %d: need at least 2 nodes", cfg.Gen.N)
	}
	if cfg.Gen.Clients < 1 {
		return cfg, fmt.Errorf("-clients %d: need at least 1 session", cfg.Gen.Clients)
	}
	if cfg.Gen.ScanPct < 0 || cfg.Gen.ScanPct > 100 {
		return cfg, fmt.Errorf("-scans %d: want 0..100", cfg.Gen.ScanPct)
	}
	if cfg.Gen.Keys < 1 {
		return cfg, fmt.Errorf("-keys %d: need at least 1 key", cfg.Gen.Keys)
	}
	if cfg.Gen.ZipfS != 0 && cfg.Gen.ZipfS <= 1 {
		return cfg, fmt.Errorf("-zipf %g: Zipf exponent must be > 1 (or 0 for uniform)", cfg.Gen.ZipfS)
	}
	if cfg.Gen.Rate < 0 {
		return cfg, fmt.Errorf("-rate %g: must be >= 0", cfg.Gen.Rate)
	}
	if f := maxF(cfg.Gen.N); cfg.Gen.F > f {
		return cfg, fmt.Errorf("-f %d: crash resilience requires f <= (n-1)/2 = %d", cfg.Gen.F, f)
	}
	return cfg, nil
}

// maxF is the crash-model resilience ceiling for an n-node mesh.
func maxF(n int) int { return (n - 1) / 2 }
