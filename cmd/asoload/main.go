// Command asoload is the wall-clock load generator: it brings up an
// in-process TCP mesh (the exact transport cmd/asonode deploys, on
// loopback sockets), fronts every node with the svc batching layer, and
// drives it with thousands of concurrent client sessions in a closed or
// open loop, reporting ops/sec and client-visible latency percentiles.
//
// Usage:
//
//	asoload                                    # 4-node eqaso mesh, 64 closed-loop sessions, 2s
//	asoload -engine fastsnap -clients 1024     # saturate the fastsnap challenger
//	asoload -rate 50000 -zipf 1.2              # open loop at 50k ops/s with skewed keys
//	asoload -legacy -json legacy.json          # measure the pre-optimization stack
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/loadgen"
)

func main() {
	cfg, err := parseLoadConfig(os.Args[1:], os.Stderr)
	if err != nil {
		log.Fatal(err)
	}
	res, err := loadgen.Run(cfg.Gen)
	if err != nil {
		log.Fatal(err)
	}
	if !cfg.Quiet {
		fmt.Print(render(res))
	}
	if cfg.JSONPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(cfg.JSONPath, append(blob, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result written to %s\n", cfg.JSONPath)
	}
}

// render formats one run for humans.
func render(r loadgen.Result) string {
	out := fmt.Sprintf("engine=%s path=%s n=%d clients=%d: %.0f ops/s (%d ops in %.2fs, %d errors)\n",
		r.Engine, r.Path, r.N, r.Clients, r.OpsPerSec, r.Ops, r.Seconds, r.Errors)
	out += fmt.Sprintf("  update: n=%-8d p50=%-8.0f p90=%-8.0f p99=%-8.0f max=%.0f µs\n",
		r.Update.Count, r.Update.P50, r.Update.P90, r.Update.P99, r.Update.Max)
	out += fmt.Sprintf("  scan:   n=%-8d p50=%-8.0f p90=%-8.0f p99=%-8.0f max=%.0f µs\n",
		r.Scan.Count, r.Scan.P50, r.Scan.P90, r.Scan.P99, r.Scan.Max)
	amort := func(client, proto int64) float64 {
		if proto == 0 {
			return 0
		}
		return float64(client) / float64(proto)
	}
	out += fmt.Sprintf("  svc: %d updates / %d proto (%.1fx), %d scans / %d proto (%.1fx), max batch %d, window %d (+%d/-%d)\n",
		r.SvcUpdates, r.SvcProtoUpdates, amort(r.SvcUpdates, r.SvcProtoUpdates),
		r.SvcScans, r.SvcProtoScans, amort(r.SvcScans, r.SvcProtoScans),
		r.SvcMaxBatch, r.SvcWindow, r.SvcWindowGrows, r.SvcWindowShr)
	out += fmt.Sprintf("  alloc: %.0f allocs/op, %.0f B/op (whole process, recording window)\n",
		r.AllocsPerOp, r.BytesPerOp)
	return out
}
