// Command asoexplore runs the bounded-exhaustive schedule explorer (a
// stateless model checker) against a snapshot-object implementation: it
// enumerates every message-delivery order of the first -depth scheduling
// decisions of a canonical two-operation scenario (node 0 updates; after
// completion node 2 scans) and checks linearizability under each schedule.
//
// Usage:
//
//	asoexplore -alg eqaso -depth 6
//	asoexplore -alg fastsnap -depth 6         # any registered engine works
//	asoexplore -alg oneshot-sketch -depth 8   # finds the paper's Sec. III-C gap
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/explore"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/la"
	"mpsnap/internal/sim"
)

func main() {
	var (
		alg     = flag.String("alg", "eqaso", "object under exploration: any registered engine ("+engine.FlagHelp()+") or oneshot|oneshot-sketch")
		depth   = flag.Int("depth", 6, "scheduling decisions explored exhaustively")
		maxRuns = flag.Int("max-runs", 500000, "execution cap")
	)
	flag.Parse()

	mk, ok := factories()[*alg]
	if !ok {
		// Fall back to the engine registry: any registered engine can be
		// explored (the scenario checks linearizability, so sequentially
		// consistent engines are rejected).
		in, err := engine.Lookup(*alg)
		if err != nil {
			log.Fatalf("unknown algorithm %q (want a registered engine %s, or oneshot|oneshot-sketch)", *alg, engine.FlagHelp())
		}
		if in.Sequential {
			log.Fatalf("engine %q is sequentially consistent; the explorer's scenario checks linearizability", *alg)
		}
		mk = func(w *sim.World, i int) harness.Object {
			nd := in.New(w.Runtime(i))
			w.SetHandler(i, nd)
			return nd
		}
	}
	start := time.Now()
	res, err := explore.Run(explore.Options{Depth: *depth, MaxRuns: *maxRuns}, scenario(mk))
	elapsed := time.Since(start)
	var v *explore.Violation
	if errors.As(err, &v) {
		fmt.Printf("VIOLATION after %d schedules (%.2fs)\n", res.Runs, elapsed.Seconds())
		fmt.Printf("  schedule: %v\n", v.Schedule)
		fmt.Printf("  %v\n", v.Err)
		os.Exit(1)
	}
	if err != nil {
		log.Fatal(err)
	}
	status := "tree exhausted"
	if res.Truncated {
		status = "TRUNCATED by -max-runs"
	}
	fmt.Printf("%s: %d schedules verified at depth %d (%.2fs, %s) — no violations\n",
		*alg, res.Runs, *depth, elapsed.Seconds(), status)
}

func factories() map[string]func(w *sim.World, i int) harness.Object {
	return map[string]func(w *sim.World, i int) harness.Object{
		"oneshot": func(w *sim.World, i int) harness.Object {
			o := la.NewOneShotAtomic(w.Runtime(i))
			w.SetHandler(i, o)
			return o
		},
		"oneshot-sketch": func(w *sim.World, i int) harness.Object {
			o := la.NewOneShot(w.Runtime(i))
			w.SetHandler(i, o)
			return o
		},
	}
}

// scenario is the canonical update-then-scan scenario (see
// internal/explore's tests for the rationale, including the Sleep that
// separates the operations in real time).
func scenario(mk func(w *sim.World, i int) harness.Object) func(s sim.Sequencer) error {
	return func(s sim.Sequencer) error {
		const n, f = 3, 1
		w := sim.New(sim.Config{N: n, F: f, Seed: 1, Sequencer: s})
		objs := make([]harness.Object, n)
		for i := 0; i < n; i++ {
			objs[i] = mk(w, i)
		}
		rec := history.NewRecorder(n)
		var updDone bool
		w.GoNode("u0", 0, func(p *sim.Proc) {
			pend := rec.BeginUpdate(0, "a", w.Now())
			if err := objs[0].Update([]byte("a")); err != nil {
				return
			}
			pend.End(w.Now())
			updDone = true
		})
		w.GoNode("s2", 2, func(p *sim.Proc) {
			if err := p.WaitUntilGlobal("update done", func() bool { return updDone }); err != nil {
				return
			}
			if err := p.Sleep(1); err != nil {
				return
			}
			pend := rec.BeginScan(2, w.Now())
			snap, err := objs[2].Scan()
			if err != nil {
				return
			}
			pend.EndScan(harness.SnapStrings(snap), w.Now())
		})
		if err := w.Run(); err != nil {
			return fmt.Errorf("run: %w", err)
		}
		if rep := rec.History().CheckLinearizable(); !rep.OK {
			return fmt.Errorf("%s", rep.Violations[0])
		}
		return nil
	}
}
