package mpsnap

import (
	"fmt"
	"io"

	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/mux"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// D is one maximum-message-delay unit of virtual time.
const D = rt.TicksPerD

// Ticks is virtual time (D ticks per maximum message delay).
type Ticks = rt.Ticks

// DelayKind selects how per-message delays are drawn.
type DelayKind int

// Delay models.
const (
	// DelayUniform draws delays uniformly from (0, D] (the default).
	DelayUniform DelayKind = iota
	// DelayConstant delivers every message after exactly D — the
	// paper's extreme case for time-complexity analysis.
	DelayConstant
)

// CrashSpec schedules a crash: node Node fails at time At.
type CrashSpec struct {
	Node int
	At   Ticks
}

// ExtraObject declares an additional, independent snapshot object hosted
// on the same cluster (multiplexed over the same nodes and channels).
type ExtraObject struct {
	// Name identifies the object; retrieve it with Client.Extra(name).
	Name string
	// Algorithm selects its implementation; default EQASO.
	Algorithm Algorithm
}

// Config parameterizes a simulated cluster.
type Config struct {
	// N is the number of nodes; F the resilience bound (n > 2f, or
	// n > 3f for Byzantine algorithms).
	N, F int
	// Algorithm selects the implementation; default EQASO.
	Algorithm Algorithm
	// Seed makes the run reproducible.
	Seed int64
	// Delay selects the delay model.
	Delay DelayKind
	// Crashes schedules crash failures.
	Crashes []CrashSpec
	// Extra declares additional objects multiplexed over the same
	// cluster (e.g. a CRDT store next to a termination detector). Only
	// the primary object's operations enter the checked history.
	Extra []ExtraObject
}

// SimCluster is a simulated deployment of one snapshot object: spawn
// client scripts with Client, execute with Run, then inspect the checked
// history and statistics.
type SimCluster struct {
	cfg    Config
	inner  *harness.Cluster
	hist   *history.History
	extras []map[string]Object // per node, by extra-object name
}

// NewSimCluster builds a simulated cluster.
func NewSimCluster(cfg Config) (*SimCluster, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = EQASO
	}
	if cfg.N <= 0 || cfg.N <= 2*cfg.F {
		return nil, fmt.Errorf("mpsnap: need n > 2f > 0-resilient config, got n=%d f=%d", cfg.N, cfg.F)
	}
	if cfg.Algorithm.RequiresNGreaterThan3F() && cfg.N <= 3*cfg.F {
		return nil, fmt.Errorf("mpsnap: algorithm %q needs n > 3f, got n=%d f=%d", cfg.Algorithm, cfg.N, cfg.F)
	}
	for _, ex := range cfg.Extra {
		if ex.Name == "" {
			return nil, fmt.Errorf("mpsnap: extra object needs a name")
		}
		alg := ex.Algorithm
		if alg == "" {
			alg = EQASO
		}
		if alg.RequiresNGreaterThan3F() && cfg.N <= 3*cfg.F {
			return nil, fmt.Errorf("mpsnap: extra object %q (%s) needs n > 3f", ex.Name, alg)
		}
	}
	simCfg := sim.Config{N: cfg.N, F: cfg.F, Seed: cfg.Seed}
	if cfg.Delay == DelayConstant {
		simCfg.Delay = sim.Constant{Ticks: D}
	}
	var buildErr error
	extras := make([]map[string]Object, cfg.N)
	c := harness.Build(simCfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		if len(cfg.Extra) == 0 {
			h, obj, err := NewNode(cfg.Algorithm, r)
			if err != nil {
				buildErr = err
			}
			return h, obj
		}
		// Multi-object node: multiplex the primary plus every extra.
		m := mux.New(r)
		h, obj, err := NewNode(cfg.Algorithm, m.Channel("primary"))
		if err != nil {
			buildErr = err
			return m, obj
		}
		m.Bind("primary", h)
		byName := make(map[string]Object, len(cfg.Extra))
		for _, ex := range cfg.Extra {
			alg := ex.Algorithm
			if alg == "" {
				alg = EQASO
			}
			eh, eobj, err := NewNode(alg, m.Channel("x:"+ex.Name))
			if err != nil {
				buildErr = err
				return m, obj
			}
			m.Bind("x:"+ex.Name, eh)
			byName[ex.Name] = eobj
		}
		extras[r.ID()] = byName
		return m, obj
	})
	if buildErr != nil {
		return nil, buildErr
	}
	for _, cr := range cfg.Crashes {
		if cr.Node < 0 || cr.Node >= cfg.N {
			return nil, fmt.Errorf("mpsnap: crash spec for unknown node %d", cr.Node)
		}
		c.W.CrashAt(cr.Node, cr.At)
	}
	return &SimCluster{cfg: cfg, inner: c, extras: extras}, nil
}

// Client is a node's sequential client thread inside the simulation.
type Client struct {
	op      *harness.OpRunner
	cluster *SimCluster
}

// Extra returns the node's endpoint of the named extra object (declared
// in Config.Extra); nil if no such object exists. Like Raw, operations on
// it are not recorded in the checked history. Each extra object must
// still be driven by at most one operation at a time per node.
func (c *Client) Extra(name string) Object {
	byName := c.cluster.extras[c.op.Node()]
	if byName == nil {
		return nil
	}
	return byName[name]
}

// Node returns the client's node ID.
func (c *Client) Node() int { return c.op.Node() }

// Update writes payload into the node's segment. Payloads written by one
// node should be distinct if the history is to be checked afterwards (the
// paper's uniqueness assumption).
func (c *Client) Update(payload []byte) error {
	return c.op.UpdateValue(string(payload))
}

// Scan returns all segments; nil marks a never-written segment.
func (c *Client) Scan() ([][]byte, error) {
	snap, err := c.op.Scan()
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(snap))
	for i, s := range snap {
		if s != history.NoValue {
			out[i] = []byte(s)
		}
	}
	return out, nil
}

// Raw returns the node's unrecorded snapshot object. Operations through
// it do not enter the checked history — applications that encode
// non-unique payloads (CRDT states, logs) should use it.
func (c *Client) Raw() Object { return c.op.Object() }

// Sleep suspends the client for d ticks of virtual time.
func (c *Client) Sleep(d Ticks) error { return c.op.P.Sleep(d) }

// Now returns the current virtual time.
func (c *Client) Now() Ticks { return c.op.P.Now() }

// Client registers a client script for node; scripts run when Run is
// called. Operations on a crashed node return an error; scripts should
// stop on error.
func (s *SimCluster) Client(node int, script func(c *Client)) {
	s.inner.Client(node, func(o *harness.OpRunner) { script(&Client{op: o, cluster: s}) })
}

// Crash crashes a node at time t (may also be set up front via Config).
func (s *SimCluster) Crash(node int, t Ticks) { s.inner.W.CrashAt(node, t) }

// Run executes the simulation to quiescence. It may be called once.
func (s *SimCluster) Run() error {
	h, err := s.inner.Run()
	s.hist = h
	return err
}

// Check verifies the recorded history against the appropriate consistency
// condition: linearizability via the paper's tight conditions (A1)-(A4)
// for atomic algorithms, sequential consistency for the SSO variants. It
// returns nil when the history is consistent.
func (s *SimCluster) Check() error {
	if s.hist == nil {
		return fmt.Errorf("mpsnap: Check before Run")
	}
	var rep *history.Report
	if s.cfg.Algorithm.Atomic() {
		rep = s.hist.CheckLinearizable()
	} else {
		rep = s.hist.CheckSequentiallyConsistent()
	}
	if !rep.OK {
		return fmt.Errorf("mpsnap: history violates consistency (%d violations; first: %s)",
			len(rep.Violations), rep.Violations[0])
	}
	return nil
}

// Stats summarizes the run.
type Stats struct {
	// VirtualTime is the simulation end time in D units.
	VirtualTime float64
	// Messages is the total number of messages sent.
	Messages int64
	// Operations counts completed operations.
	Operations int
	// WorstUpdateD / WorstScanD are worst-case latencies in D units.
	WorstUpdateD, WorstScanD float64
	// MeanUpdateD / MeanScanD are mean latencies in D units.
	MeanUpdateD, MeanScanD float64
}

// DumpHistory writes the recorded history as JSON (valid after Run); load
// it back with the asosim tool's -check flag, or via internal/history's
// LoadJSON, to re-check or render it offline.
func (s *SimCluster) DumpHistory(w io.Writer) error {
	if s.hist == nil {
		return fmt.Errorf("mpsnap: DumpHistory before Run")
	}
	return s.hist.DumpJSON(w)
}

// RenderHistory draws the recorded operations as an ASCII space-time
// diagram in the style of the paper's Figure 1 (valid after Run). cols is
// the diagram width in characters.
func (s *SimCluster) RenderHistory(cols int) string {
	if s.hist == nil {
		return "(no history: Run first)"
	}
	return history.RenderGantt(s.hist, cols)
}

// Trace installs a message/crash observer on the simulator (install
// before Run). The callback receives one line per event.
func (s *SimCluster) Trace(fn func(line string)) {
	s.inner.W.SetTracer(func(ev sim.TraceEvent) {
		switch ev.Kind {
		case "crash":
			fn(fmt.Sprintf("t=%8.3fD CRASH node %d", ev.T.DUnits(), ev.Src))
		case "send":
			fn(fmt.Sprintf("t=%8.3fD %d→%d %s", ev.T.DUnits(), ev.Src, ev.Dst, ev.Msg))
		case "deliver":
			fn(fmt.Sprintf("t=%8.3fD %d⇒%d %s", ev.T.DUnits(), ev.Src, ev.Dst, ev.Msg))
		}
	})
}

// Stats returns run statistics (valid after Run).
func (s *SimCluster) Stats() Stats {
	ws := s.inner.W.Stats()
	out := Stats{
		VirtualTime: ws.Now.DUnits(),
		Messages:    ws.MsgsTotal,
	}
	if s.hist != nil {
		l := harness.Latencies(s.hist)
		out.Operations = l.Count
		out.WorstUpdateD, out.WorstScanD = l.WorstUpdate, l.WorstScan
		out.MeanUpdateD, out.MeanScanD = l.MeanUpdate, l.MeanScan
	}
	return out
}
