package detect_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/detect"
)

// TestTerminationDetected: a simple token computation — node 0 "sends"
// one unit of work to each peer, peers receive it, work, and go passive.
// The detector must eventually report termination.
func TestTerminationDetected(t *testing.T) {
	const n = 4
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth, maintained by the scripts in virtual time.
	var lastActivity mpsnap.Ticks
	var detectedAt mpsnap.Ticks = -1

	c.Client(0, func(cl *mpsnap.Client) {
		m := detect.New(cl.Raw(), 0)
		// Become active and send one message to each peer.
		if err := m.Publish(func(s *detect.Status) { s.Active = true; s.Sent = n - 1 }); err != nil {
			t.Errorf("publish: %v", err)
			return
		}
		_ = cl.Sleep(2 * mpsnap.D)
		if err := m.Publish(func(s *detect.Status) { s.Active = false }); err != nil {
			t.Errorf("publish: %v", err)
			return
		}
		if cl.Now() > lastActivity {
			lastActivity = cl.Now()
		}
		// Then poll for termination from the same (sequential) client
		// thread — nodes run at most one operation at a time.
		for k := 0; k < 60; k++ {
			done, err := m.CheckTermination()
			if err != nil {
				return
			}
			if done {
				detectedAt = cl.Now()
				return
			}
			_ = cl.Sleep(mpsnap.D)
		}
	})
	for i := 1; i < n; i++ {
		i := i
		c.Client(i, func(cl *mpsnap.Client) {
			m := detect.New(cl.Raw(), i)
			// "Receive" the work after a delivery-ish delay, compute,
			// then go passive.
			_ = cl.Sleep(mpsnap.Ticks(i) * mpsnap.D)
			if err := m.Publish(func(s *detect.Status) { s.Active = true; s.Received = 1 }); err != nil {
				return
			}
			_ = cl.Sleep(3 * mpsnap.D)
			if err := m.Publish(func(s *detect.Status) { s.Active = false }); err != nil {
				return
			}
			if cl.Now() > lastActivity {
				lastActivity = cl.Now()
			}
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if detectedAt < 0 {
		t.Fatal("termination never detected")
	}
	if detectedAt < lastActivity {
		t.Fatalf("false positive: detected at %d before last activity at %d", detectedAt, lastActivity)
	}
}

// TestNoFalsePositives: under randomized computations (random send/receive
// matching, random timing), any true report happens only after the final
// passive transition — soundness of single-scan detection on an atomic
// snapshot.
func TestNoFalsePositives(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: (n - 1) / 2, Seed: seed})
		if err != nil {
			return false
		}
		var lastActivity mpsnap.Ticks
		var firstDetect mpsnap.Ticks = -1
		sound := true

		// Each node i>0: activates, receives work[i] messages, sends
		// none, deactivates. Node 0 sends Σ work and stays the poller.
		work := make([]int64, n)
		var total int64
		for i := 1; i < n; i++ {
			work[i] = int64(rng.Intn(3) + 1)
			total += work[i]
		}
		for i := 1; i < n; i++ {
			i := i
			c.Client(i, func(cl *mpsnap.Client) {
				m := detect.New(cl.Raw(), i)
				_ = cl.Sleep(mpsnap.Ticks(rng.Intn(4000)))
				if err := m.Publish(func(s *detect.Status) { s.Active = true }); err != nil {
					return
				}
				for r := int64(0); r < work[i]; r++ {
					_ = cl.Sleep(mpsnap.Ticks(rng.Intn(2000)))
					if err := m.Publish(func(s *detect.Status) { s.Received++ }); err != nil {
						return
					}
				}
				_ = cl.Sleep(mpsnap.Ticks(rng.Intn(2000)))
				if err := m.Publish(func(s *detect.Status) { s.Active = false }); err != nil {
					return
				}
				if cl.Now() > lastActivity {
					lastActivity = cl.Now()
				}
			})
		}
		c.Client(0, func(cl *mpsnap.Client) {
			m := detect.New(cl.Raw(), 0)
			if err := m.Publish(func(s *detect.Status) { s.Active = true; s.Sent = total }); err != nil {
				return
			}
			if err := m.Publish(func(s *detect.Status) { s.Active = false }); err != nil {
				return
			}
			if cl.Now() > lastActivity {
				lastActivity = cl.Now()
			}
			for k := 0; k < 80; k++ {
				done, err := m.CheckTermination()
				if err != nil {
					return
				}
				if done {
					firstDetect = cl.Now()
					if firstDetect < lastActivity {
						sound = false
					}
					return
				}
				_ = cl.Sleep(mpsnap.D)
			}
		})
		if err := c.Run(); err != nil {
			return false
		}
		return sound && firstDetect >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCountersRejected(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		m := detect.New(cl.Raw(), 0)
		if err := m.Publish(func(s *detect.Status) { s.Sent = -1 }); err == nil {
			t.Error("negative counter must be rejected")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomStablePredicate(t *testing.T) {
	// Detect "global quiescence of senders": no node will ever send
	// again once Sent reaches its cap — modeled here as everyone passive.
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		m := detect.New(cl.Raw(), 0)
		if err := m.Publish(func(s *detect.Status) { s.Active = false; s.Sent = 2; s.Received = 2 }); err != nil {
			return
		}
		got, err := m.Check(func(sts []detect.Status) bool {
			for _, s := range sts {
				if s.Active {
					return false
				}
			}
			return true
		})
		if err != nil || !got {
			t.Errorf("custom predicate: got=%v err=%v", got, err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
