// Package detect implements stable-property detection over an atomic
// snapshot object — one of the paper's motivating applications ("ASO can
// be used for ... detecting stable properties to debug distributed
// programs", Section I).
//
// Each node continuously publishes its local state (active/passive flag
// and message counters of the monitored computation) into its snapshot
// segment. Because a SCAN of an atomic snapshot object is a *consistent*
// global state, a stable predicate (one that never reverts from true to
// false, like termination or deadlock) that holds in a scanned state holds
// forever after — a single scan replaces the double-collect dance of
// classical detection algorithms.
//
// The canonical instance is termination detection: the computation has
// terminated exactly when every node is passive and every sent message
// has been received.
package detect

import (
	"fmt"

	"mpsnap/internal/wire"
)

// Object is the snapshot object the monitor runs over (mpsnap.Object).
// It must be atomic: SSO scans are not consistent global states.
type Object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

// Status is one node's published state of the monitored computation.
type Status struct {
	// Active reports whether the node is still computing.
	Active bool
	// Sent and Received count the computation's messages at this node.
	Sent, Received int64
}

// Monitor is one node's handle: it publishes the local Status and
// evaluates global predicates.
type Monitor struct {
	obj Object
	id  int
	cur Status
}

// New binds node id's monitor to its snapshot object.
func New(obj Object, id int) *Monitor { return &Monitor{obj: obj, id: id} }

func encodeStatus(s Status) []byte {
	var b wire.Buffer
	b.PutBool(s.Active)
	b.PutVarint(s.Sent)
	b.PutVarint(s.Received)
	return b.Bytes()
}

func decodeStatus(b []byte) (Status, error) {
	d := wire.NewDecoder(b)
	s := Status{Active: d.Bool(), Sent: d.Varint(), Received: d.Varint()}
	return s, d.Err()
}

// Publish applies mut to the local status and publishes it (one UPDATE).
// Typical transitions: become active and count a receive; count sends;
// become passive.
func (m *Monitor) Publish(mut func(*Status)) error {
	mut(&m.cur)
	if m.cur.Sent < 0 || m.cur.Received < 0 {
		return fmt.Errorf("detect: negative counters %+v", m.cur)
	}
	return m.obj.Update(encodeStatus(m.cur))
}

// Local returns the local (published) status.
func (m *Monitor) Local() Status { return m.cur }

// Snapshot scans and decodes every node's status. Nodes that never
// published are zero-valued (passive, no traffic).
func (m *Monitor) Snapshot() ([]Status, error) {
	snap, err := m.obj.Scan()
	if err != nil {
		return nil, err
	}
	out := make([]Status, len(snap))
	for i, seg := range snap {
		if seg == nil {
			continue
		}
		st, err := decodeStatus(seg)
		if err != nil {
			return nil, fmt.Errorf("detect: segment %d: %w", i, err)
		}
		out[i] = st
	}
	// Own completed publishes are authoritative if the snapshot lags.
	if m.cur != (Status{}) {
		out[m.id] = m.cur
	}
	return out, nil
}

// Terminated is the classical termination predicate over a consistent
// state: everyone passive and no message in flight. It is stable: once
// true of the computation it stays true.
func Terminated(statuses []Status) bool {
	var sent, received int64
	for _, s := range statuses {
		if s.Active {
			return false
		}
		sent += s.Sent
		received += s.Received
	}
	return sent == received
}

// CheckTermination scans once and evaluates Terminated (one SCAN).
func (m *Monitor) CheckTermination() (bool, error) {
	return m.Check(Terminated)
}

// Check scans once and evaluates an arbitrary predicate over the
// consistent state. Soundness for detection requires pred to be stable.
func (m *Monitor) Check(pred func([]Status) bool) (bool, error) {
	statuses, err := m.Snapshot()
	if err != nil {
		return false, err
	}
	return pred(statuses), nil
}
