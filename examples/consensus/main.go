// Consensus and approximate agreement over one snapshot cluster: the two
// agreement problems the paper's introduction cites as classic ASO
// applications, running side by side on multiplexed objects. Exact binary
// consensus uses randomization (Ben-Or phases over segments); approximate
// agreement converges deterministically by midpoint halving, which atomic
// scans make sound.
//
// Run with: go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpsnap"
	"mpsnap/approx"
	"mpsnap/consensus"
)

func main() {
	const n, f = 5, 2
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{
		N: n, F: f, Seed: 12,
		Extra: []mpsnap.ExtraObject{{Name: "approx"}},
	})
	if err != nil {
		log.Fatal(err)
	}

	bits := []int{0, 1, 1, 0, 1}
	temps := []float64{18.2, 22.9, 19.5, 21.1, 20.4}

	for i := 0; i < n; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			// Binary consensus on the primary object.
			ccfg := consensus.Config{N: n, F: f, Rand: rand.New(rand.NewSource(int64(i) + 7))}
			decision, err := consensus.Propose(c.Raw(), ccfg, bits[i])
			if err != nil {
				log.Fatalf("node %d consensus: %v", i, err)
			}
			// Approximate agreement on the extra object.
			acfg := approx.Config{Lo: 0, Hi: 40, Epsilon: 0.25, N: n, F: f}
			temp, err := approx.Agree(c.Extra("approx"), acfg, temps[i])
			if err != nil {
				log.Fatalf("node %d approx: %v", i, err)
			}
			fmt.Printf("node %d: proposed bit %d → decided %d | input %.1f°C → agreed %.3f°C\n",
				i, bits[i], decision, temps[i], temp)
		})
	}
	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nall decisions identical (agreement) and all temperatures within ε=0.25")
	fmt.Println("— exact agreement needed randomization; approximate agreement did not.")
}
