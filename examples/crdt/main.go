// Linearizable CRDTs over snapshot objects: the same PN-counter and
// 2P-set run twice — over EQ-ASO (linearizable, scans pay O(√k·D)) and
// over SSO-Fast-Scan (sequentially consistent, scans are local and free).
// The printed message counts show the SSO reads costing zero messages.
//
// Run with: go run ./examples/crdt
package main

import (
	"fmt"
	"log"

	"mpsnap"
	"mpsnap/crdt"
)

func run(alg mpsnap.Algorithm) {
	const n, f = 4, 1
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Algorithm: alg, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			counter := crdt.NewPNCounter(c.Raw())
			set := crdt.NewTwoPhaseSet(c.Raw())
			_ = set
			// Everyone adds 10 and removes 3.
			if err := counter.Add(10); err != nil {
				return
			}
			if err := counter.Add(-3); err != nil {
				return
			}
			_ = c.Sleep(30 * mpsnap.D) // quiesce
			before := c.Now()
			v, err := counter.Value()
			if err != nil {
				return
			}
			readTime := c.Now() - before
			if i == 0 {
				fmt.Printf("  node 0 reads counter = %d (expected %d), read latency %.1fD\n",
					v, (10-3)*n, float64(readTime)/float64(mpsnap.D))
			}
		})
	}
	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Check(); err != nil {
		log.Fatal(err)
	}
	st := cluster.Stats()
	fmt.Printf("  consistency check ✓, %d messages total\n", st.Messages)
}

func main() {
	fmt.Println("PN-counter over EQ-ASO (atomic snapshot):")
	run(mpsnap.EQASO)
	fmt.Println("PN-counter over SSO-Fast-Scan (sequentially consistent, local reads):")
	run(mpsnap.SSOFast)
}
