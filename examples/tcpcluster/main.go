// A real-network deployment in one process: four EQ-ASO nodes talk over
// actual TCP loopback connections (the same transport cmd/asonode uses),
// with real wall-clock latencies and true parallelism. Shows that the
// algorithm code is transport-agnostic: this is the exact code path the
// simulator verifies, now on the kernel's sockets.
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/transport"
)

func main() {
	const n, f = 4, 1

	// Bind ephemeral ports first so the addresses are known to everyone.
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	fmt.Println("cluster addresses:")
	for i, a := range addrs {
		fmt.Printf("  node %d: %s\n", i, a)
	}

	// Bring up the full mesh (each node handshakes with every peer).
	nodes := make([]*transport.TCPNode, n)
	objs := make([]*eqaso.Node, n)
	var setup sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		setup.Add(1)
		go func() {
			defer setup.Done()
			tn, err := transport.NewTCPNode(transport.TCPConfig{
				ID: i, Addrs: addrs, F: f, D: 5 * time.Millisecond, Listener: listeners[i],
			})
			if err != nil {
				log.Fatalf("node %d: %v", i, err)
			}
			nodes[i] = tn
			objs[i] = eqaso.New(tn.Runtime())
			tn.SetHandler(objs[i])
		}()
	}
	setup.Wait()
	defer func() {
		for _, tn := range nodes {
			tn.Close()
		}
	}()

	// Concurrent clients on every node.
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			if err := objs[i].Update([]byte(fmt.Sprintf("from-node-%d", i))); err != nil {
				log.Fatalf("node %d update: %v", i, err)
			}
			fmt.Printf("node %d: update done in %v\n", i, time.Since(start).Round(time.Microsecond))
		}()
	}
	wg.Wait()

	start := time.Now()
	snap, err := objs[0].Scan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode 0's atomic snapshot (scan took %v):\n", time.Since(start).Round(time.Microsecond))
	for seg, v := range snap {
		fmt.Printf("  segment %d: %s\n", seg, v)
	}
}
