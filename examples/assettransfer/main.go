// Asset transfer ("cryptocurrency") over EQ-ASO — the application from
// Guerraoui et al. highlighted in the paper's abstract. Five accounts
// make random concurrent payments; overdrafts are rejected locally from
// an atomic snapshot; the final audit shows funds are conserved with no
// negative balances — all without consensus.
//
// Run with: go run ./examples/assettransfer
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"mpsnap"
	"mpsnap/assettransfer"
)

func main() {
	const n, f = 5, 2
	initial := []uint64{100, 100, 100, 100, 100}
	var total uint64
	for _, b := range initial {
		total += b
	}

	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < n; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			rng := rand.New(rand.NewSource(int64(i) + 1))
			ledger, err := assettransfer.New(c.Raw(), i, n, initial)
			if err != nil {
				log.Fatal(err)
			}
			for k := 0; k < 6; k++ {
				to := rng.Intn(n)
				amount := uint64(rng.Intn(60) + 1)
				err := ledger.Transfer(to, amount)
				switch {
				case errors.Is(err, assettransfer.ErrInsufficientFunds):
					fmt.Printf("account %d: transfer %3d -> %d REJECTED (insufficient funds)\n", i, amount, to)
				case err != nil:
					fmt.Printf("account %d stopped: %v\n", i, err)
					return
				default:
					fmt.Printf("account %d: transfer %3d -> %d ok\n", i, amount, to)
				}
				_ = c.Sleep(mpsnap.Ticks(rng.Intn(3000)))
			}
			// Quiesce, then audit.
			_ = c.Sleep(40 * mpsnap.D)
			if i == 0 {
				var sum uint64
				fmt.Println("\nfinal balances (audited from account 0's atomic snapshot):")
				for acct := 0; acct < n; acct++ {
					b, err := ledger.Balance(acct)
					if err != nil {
						log.Fatalf("audit: %v", err)
					}
					fmt.Printf("  account %d: %d\n", acct, b)
					sum += b
				}
				if sum != total {
					log.Fatalf("conservation violated: %d != %d", sum, total)
				}
				fmt.Printf("conservation holds: total %d ✓\n", sum)
			}
		})
	}

	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}
}
