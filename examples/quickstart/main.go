// Quickstart: a 5-node EQ-ASO cluster under the deterministic simulator.
// Every node updates its segment and scans the object; one node crashes
// mid-run; the recorded history is checked against the paper's tight
// linearizability conditions (A1)-(A4).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpsnap"
)

func main() {
	const n, f = 5, 2
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{
		N:         n,
		F:         f,
		Algorithm: mpsnap.EQASO,
		Seed:      42,
		// Node 4 crashes after 3 maximum-message-delays of virtual time.
		Crashes: []mpsnap.CrashSpec{{Node: 4, At: 3 * mpsnap.D}},
	})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < n; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			for round := 1; round <= 3; round++ {
				v := fmt.Sprintf("node%d-round%d", i, round)
				if err := c.Update([]byte(v)); err != nil {
					fmt.Printf("node %d stopped: %v\n", i, err)
					return
				}
				snap, err := c.Scan()
				if err != nil {
					fmt.Printf("node %d stopped: %v\n", i, err)
					return
				}
				if round == 3 && i == 0 {
					fmt.Printf("node 0's final snapshot (at t=%.1fD):\n", float64(c.Now())/float64(mpsnap.D))
					for seg, val := range snap {
						if val == nil {
							fmt.Printf("  segment %d: ⊥\n", seg)
						} else {
							fmt.Printf("  segment %d: %s\n", seg, val)
						}
					}
				}
				_ = c.Sleep(mpsnap.D)
			}
		})
	}

	if err := cluster.Run(); err != nil {
		log.Fatalf("simulation: %v", err)
	}
	if err := cluster.Check(); err != nil {
		log.Fatalf("linearizability: %v", err)
	}
	st := cluster.Stats()
	fmt.Printf("\nlinearizable ✓  (%d operations, %d messages, %.1fD virtual time)\n",
		st.Operations, st.Messages, st.VirtualTime)
	fmt.Printf("worst latency: update %.1fD, scan %.1fD\n", st.WorstUpdateD, st.WorstScanD)
}
