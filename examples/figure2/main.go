// Figure 2 of the paper, replayed: the one-shot ASO execution where op1
// and op4 return immediately from the EQ predicate while op6 must block
// for forwarded values (the figure's blue arrows). Node numbering follows
// the paper (1-based); link delays are scripted so the views match the
// figure exactly.
//
// Run with: go run ./examples/figure2
package main

import (
	"fmt"
	"log"

	"mpsnap/internal/la"
	"mpsnap/internal/sim"
)

func main() {
	const fast, slow = 50, 800
	delays := sim.SlowLinks{
		Slow: map[[2]int]bool{
			{0, 1}: true, // node1 → node2 slow (paper numbering)
			{2, 1}: true, // node3 → node2 slow
			{1, 0}: true, // node2 → node1 slow
		},
		SlowDelay: slow,
		FastDelay: fast,
	}
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 1, Delay: delays})
	objs := make([]*la.OneShot, 3)
	for i := 0; i < 3; i++ {
		objs[i] = la.NewOneShot(w.Runtime(i))
		w.SetHandler(i, objs[i])
	}

	scan := func(p *sim.Proc, node int, name string) {
		inv := p.Now()
		snap, err := objs[node].Scan()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		var view []string
		for _, seg := range snap {
			if seg != nil {
				view = append(view, string(seg))
			}
		}
		fmt.Printf("%s: SCAN by node %d  [t=%4d .. %4d]  returned %v (waited %d ticks)\n",
			name, node+1, inv, p.Now(), view, p.Now()-inv)
	}
	update := func(p *sim.Proc, node int, val, name string) {
		inv := p.Now()
		if err := objs[node].Update([]byte(val)); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%s: UPDATE(%s) by node %d  [t=%4d .. %4d]\n", name, val, node+1, inv, p.Now())
	}

	w.GoNode("node1", 0, func(p *sim.Proc) {
		update(p, 0, "u", "op2")
		_ = p.Sleep(150 - p.Now())
		scan(p, 0, "op4")
	})
	w.GoNode("node2", 1, func(p *sim.Proc) {
		_ = p.Sleep(200)
		update(p, 1, "w", "op5")
	})
	w.GoNode("node3", 2, func(p *sim.Proc) {
		scan(p, 2, "op1")
		update(p, 2, "v", "op3")
		_ = p.Sleep(260 - p.Now())
		scan(p, 2, "op6")
	})

	if err := w.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nas in the paper: op1 returns {} and op4 returns {u,v} immediately,")
	fmt.Println("while op6 blocks until a forwarded value (blue arrow) arrives, then")
	fmt.Println("returns {u,v,w} — the three bases form the chain {} ⊆ {u,v} ⊆ {u,v,w}.")
}
