// One-shot lattice agreement: seven nodes propose, two crash mid-protocol,
// and the survivors decide comparable sets. Runs both the paper's
// early-stopping EQ lattice agreement and the pull-based baseline, and
// prints the chain of decisions.
//
// Run with: go run ./examples/latticeagreement
package main

import (
	"fmt"
	"log"
	"sort"

	"mpsnap/internal/rt"
	"mpsnap/lattice"
)

func run(kind lattice.Kind) {
	const n, f = 7, 3
	proposals := make([][]byte, n)
	for i := range proposals {
		proposals[i] = []byte(fmt.Sprintf("x%d", i))
	}
	decisions, err := lattice.Run(lattice.Config{
		N: n, F: f, Kind: kind, Seed: 99, Proposals: proposals,
		CrashAt: map[int]rt.Ticks{5: 400, 6: 900},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Comparability means the decisions sort into a chain by size.
	sort.Slice(decisions, func(i, j int) bool { return len(decisions[i].Proposers) < len(decisions[j].Proposers) })
	for _, d := range decisions {
		fmt.Printf("  node %d decided %d proposals %v in %.1fD\n",
			d.Node, len(d.Proposers), d.Proposers, d.LatencyD)
	}
}

func main() {
	fmt.Println("early-stopping EQ lattice agreement (O(√k·D)):")
	run(lattice.EQ)
	fmt.Println("pull-based double-collect baseline (O(n·D)):")
	run(lattice.Round)
}
