// Stable-property detection over an atomic snapshot: node 0 fans work out
// to its peers and then detects global termination with single atomic
// scans — no double collects, no probes, no waves. One of the paper's
// motivating applications ("detecting stable properties to debug
// distributed programs").
//
// Run with: go run ./examples/termination
package main

import (
	"fmt"
	"log"

	"mpsnap"
	"mpsnap/detect"
)

func main() {
	const n = 5
	cluster, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: 2, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Node 0: coordinator. Sends one unit of work to each peer, goes
	// passive, then polls the termination predicate.
	cluster.Client(0, func(c *mpsnap.Client) {
		m := detect.New(c.Raw(), 0)
		if err := m.Publish(func(s *detect.Status) { s.Active = true; s.Sent = n - 1 }); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%5.1fD  node 0: dispatched %d work items, going passive\n",
			float64(c.Now())/float64(mpsnap.D), n-1)
		if err := m.Publish(func(s *detect.Status) { s.Active = false }); err != nil {
			log.Fatal(err)
		}
		for {
			done, err := m.CheckTermination()
			if err != nil {
				log.Fatal(err)
			}
			snap, _ := m.Snapshot()
			var act int
			var sent, recv int64
			for _, s := range snap {
				if s.Active {
					act++
				}
				sent += s.Sent
				recv += s.Received
			}
			fmt.Printf("t=%5.1fD  detector: %d active, %d sent, %d received → terminated=%v\n",
				float64(c.Now())/float64(mpsnap.D), act, sent, recv, done)
			if done {
				fmt.Println("\ntermination detected from a single atomic scan — sound because")
				fmt.Println("the scan is a consistent global state and termination is stable.")
				return
			}
			_ = c.Sleep(2 * mpsnap.D)
		}
	})

	// Peers: receive their work item after a delay, compute, go passive.
	for i := 1; i < n; i++ {
		i := i
		cluster.Client(i, func(c *mpsnap.Client) {
			m := detect.New(c.Raw(), i)
			_ = c.Sleep(mpsnap.Ticks(i) * 2 * mpsnap.D) // work arrives
			if err := m.Publish(func(s *detect.Status) { s.Active = true; s.Received = 1 }); err != nil {
				return
			}
			_ = c.Sleep(3 * mpsnap.D) // compute
			if err := m.Publish(func(s *detect.Status) { s.Active = false }); err != nil {
				return
			}
			fmt.Printf("t=%5.1fD  node %d: work done, passive\n", float64(c.Now())/float64(mpsnap.D), i)
		})
	}

	if err := cluster.Run(); err != nil {
		log.Fatal(err)
	}
}
