// Package mpsnap implements fault-tolerant snapshot objects for
// asynchronous message-passing systems, reproducing "Fault-tolerant
// Snapshot Objects in Message Passing Systems" (Garg, Kumar, Tseng, Zheng
// — IPDPS 2022).
//
// The atomic snapshot object (ASO) is partitioned into n segments, one per
// node: node i updates segment i and can atomically scan all segments. The
// package provides:
//
//   - EQ-ASO, the paper's crash-tolerant ASO based on equivalence quorums
//     (O(√k·D) worst-case, amortized O(D) operations, n > 2f);
//   - a Byzantine-tolerant ASO integrating Bracha reliable broadcast
//     (n > 3f);
//   - sequentially consistent snapshot objects (SSO) whose scans complete
//     locally with zero communication;
//   - the Table I baselines (Delporte et al. direct ASO, store-collect,
//     stacked registers, LA-transform);
//   - lattice agreement (early-stopping EQ-LA and a pull-based baseline);
//   - a deterministic virtual-time simulator with crash/Byzantine
//     adversaries, and a history checker for the paper's tight
//     linearizability conditions (A1)-(A4).
//
// # Quick start
//
//	cluster := mpsnap.NewSimCluster(mpsnap.Config{N: 5, F: 2, Algorithm: mpsnap.EQASO})
//	cluster.Client(0, func(c *mpsnap.Client) {
//		_ = c.Update([]byte("hello"))
//		snap, _ := c.Scan()
//		fmt.Println(snap)
//	})
//	_ = cluster.Run()
//
// Applications (linearizable CRDTs, asset transfer, update-query state
// machines) live in the crdt, assettransfer, and statemachine
// subpackages.
package mpsnap

import (
	"fmt"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
)

// Algorithm selects a snapshot object implementation.
type Algorithm string

// Available algorithms.
const (
	// EQASO is the paper's crash-tolerant atomic snapshot (Algorithm 1).
	EQASO Algorithm = "eqaso"
	// ByzASO is the Byzantine-tolerant atomic snapshot (requires n > 3f).
	ByzASO Algorithm = "byzaso"
	// SSOFast is the sequentially consistent snapshot with local scans.
	SSOFast Algorithm = "sso"
	// SSOByz is the Byzantine sequentially consistent snapshot (n > 3f).
	SSOByz Algorithm = "sso-byz"
	// Delporte is the direct baseline of reference [19]: O(D) update,
	// O(n·D) scan.
	Delporte Algorithm = "delporte"
	// StoreCollect is the store-collect baseline of reference [12].
	StoreCollect Algorithm = "storecollect"
	// Stacked is the ABD-register + shared-memory-snapshot stacking
	// construction the paper's introduction argues against.
	Stacked Algorithm = "stacked"
	// LAASO is the lattice-agreement-transform baseline ([41],[42]+[11]).
	LAASO Algorithm = "laaso"
	// ACR is the amortized constant-round atomic snapshot: scans hit a
	// committed-snapshot cache and complete in one collect round when no
	// update raced the previous commit (after arXiv 2008.11837).
	ACR Algorithm = "acr"
	// Fastsnap is the contention-adaptive atomic snapshot: scans take a
	// one-round fast path when a collect returns unanimously (after
	// arXiv 2408.02562).
	Fastsnap Algorithm = "fastsnap"
)

// Algorithms lists every available algorithm, in registry order.
func Algorithms() []Algorithm {
	names := engine.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// Atomic reports whether the algorithm implements a linearizable (atomic)
// snapshot; the SSO variants are sequentially consistent instead.
func (a Algorithm) Atomic() bool {
	in, err := engine.Lookup(string(a))
	return err == nil && !in.Sequential
}

// RequiresNGreaterThan3F reports whether the algorithm needs Byzantine
// resilience n > 3f (rather than crash resilience n > 2f).
func (a Algorithm) RequiresNGreaterThan3F() bool {
	in, err := engine.Lookup(string(a))
	return err == nil && in.Byzantine
}

// Object is a snapshot object client bound to one node: Update writes the
// node's own segment, Scan returns all n segments (nil = never written).
type Object = harness.Object

// ErrCrashed is the error operations and waits fail with when the local
// node has crashed. Client scripts match it with errors.Is to tell a
// scheduled crash aborting an operation from a real failure.
var ErrCrashed = rt.ErrCrashed

// NewNode constructs the chosen algorithm's node on a runtime. The
// returned value is both the node's message handler and its operation
// endpoint. Most users should use NewSimCluster or the transport helpers
// instead; NewNode is the extension point for custom runtimes.
func NewNode(alg Algorithm, r rt.Runtime) (rt.Handler, Object, error) {
	in, err := engine.Lookup(string(alg))
	if err != nil {
		return nil, nil, fmt.Errorf("mpsnap: unknown algorithm %q (available: %v)", alg, Algorithms())
	}
	if err := in.Validate(r.N(), r.F()); err != nil {
		return nil, nil, fmt.Errorf("mpsnap: %w", err)
	}
	nd := in.New(r)
	return nd, nd, nil
}
