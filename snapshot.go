// Package mpsnap implements fault-tolerant snapshot objects for
// asynchronous message-passing systems, reproducing "Fault-tolerant
// Snapshot Objects in Message Passing Systems" (Garg, Kumar, Tseng, Zheng
// — IPDPS 2022).
//
// The atomic snapshot object (ASO) is partitioned into n segments, one per
// node: node i updates segment i and can atomically scan all segments. The
// package provides:
//
//   - EQ-ASO, the paper's crash-tolerant ASO based on equivalence quorums
//     (O(√k·D) worst-case, amortized O(D) operations, n > 2f);
//   - a Byzantine-tolerant ASO integrating Bracha reliable broadcast
//     (n > 3f);
//   - sequentially consistent snapshot objects (SSO) whose scans complete
//     locally with zero communication;
//   - the Table I baselines (Delporte et al. direct ASO, store-collect,
//     stacked registers, LA-transform);
//   - lattice agreement (early-stopping EQ-LA and a pull-based baseline);
//   - a deterministic virtual-time simulator with crash/Byzantine
//     adversaries, and a history checker for the paper's tight
//     linearizability conditions (A1)-(A4).
//
// # Quick start
//
//	cluster := mpsnap.NewSimCluster(mpsnap.Config{N: 5, F: 2, Algorithm: mpsnap.EQASO})
//	cluster.Client(0, func(c *mpsnap.Client) {
//		_ = c.Update([]byte("hello"))
//		snap, _ := c.Scan()
//		fmt.Println(snap)
//	})
//	_ = cluster.Run()
//
// Applications (linearizable CRDTs, asset transfer, update-query state
// machines) live in the crdt, assettransfer, and statemachine
// subpackages.
package mpsnap

import (
	"fmt"

	"mpsnap/internal/baseline/delporte"
	"mpsnap/internal/baseline/laaso"
	"mpsnap/internal/baseline/stacked"
	"mpsnap/internal/baseline/storecollect"
	"mpsnap/internal/byzaso"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sso"
)

// Algorithm selects a snapshot object implementation.
type Algorithm string

// Available algorithms.
const (
	// EQASO is the paper's crash-tolerant atomic snapshot (Algorithm 1).
	EQASO Algorithm = "eqaso"
	// ByzASO is the Byzantine-tolerant atomic snapshot (requires n > 3f).
	ByzASO Algorithm = "byzaso"
	// SSOFast is the sequentially consistent snapshot with local scans.
	SSOFast Algorithm = "sso"
	// SSOByz is the Byzantine sequentially consistent snapshot (n > 3f).
	SSOByz Algorithm = "sso-byz"
	// Delporte is the direct baseline of reference [19]: O(D) update,
	// O(n·D) scan.
	Delporte Algorithm = "delporte"
	// StoreCollect is the store-collect baseline of reference [12].
	StoreCollect Algorithm = "storecollect"
	// Stacked is the ABD-register + shared-memory-snapshot stacking
	// construction the paper's introduction argues against.
	Stacked Algorithm = "stacked"
	// LAASO is the lattice-agreement-transform baseline ([41],[42]+[11]).
	LAASO Algorithm = "laaso"
)

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{EQASO, ByzASO, SSOFast, SSOByz, Delporte, StoreCollect, Stacked, LAASO}
}

// Atomic reports whether the algorithm implements a linearizable (atomic)
// snapshot; the SSO variants are sequentially consistent instead.
func (a Algorithm) Atomic() bool { return a != SSOFast && a != SSOByz }

// RequiresNGreaterThan3F reports whether the algorithm needs Byzantine
// resilience n > 3f (rather than crash resilience n > 2f).
func (a Algorithm) RequiresNGreaterThan3F() bool { return a == ByzASO || a == SSOByz }

// Object is a snapshot object client bound to one node: Update writes the
// node's own segment, Scan returns all n segments (nil = never written).
type Object = harness.Object

// NewNode constructs the chosen algorithm's node on a runtime. The
// returned value is both the node's message handler and its operation
// endpoint. Most users should use NewSimCluster or the transport helpers
// instead; NewNode is the extension point for custom runtimes.
func NewNode(alg Algorithm, r rt.Runtime) (rt.Handler, Object, error) {
	if r.N() <= 2*r.F() {
		return nil, nil, fmt.Errorf("mpsnap: need n > 2f, got n=%d f=%d", r.N(), r.F())
	}
	if a := alg; a.RequiresNGreaterThan3F() && r.N() <= 3*r.F() {
		return nil, nil, fmt.Errorf("mpsnap: algorithm %q needs n > 3f, got n=%d f=%d", alg, r.N(), r.F())
	}
	switch alg {
	case EQASO:
		nd := eqaso.New(r)
		return nd, nd, nil
	case ByzASO:
		nd := byzaso.New(r)
		return nd, nd, nil
	case SSOFast:
		nd := sso.New(r)
		return nd, nd, nil
	case SSOByz:
		nd := sso.NewByzantine(r)
		return nd, nd, nil
	case Delporte:
		nd := delporte.New(r)
		return nd, nd, nil
	case StoreCollect:
		nd := storecollect.New(r)
		return nd, nd, nil
	case Stacked:
		nd := stacked.New(r)
		return nd, nd, nil
	case LAASO:
		nd := laaso.New(r)
		return nd, nd, nil
	}
	return nil, nil, fmt.Errorf("mpsnap: unknown algorithm %q", alg)
}
