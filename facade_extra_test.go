package mpsnap_test

import (
	"bytes"
	"strings"
	"testing"

	"mpsnap"
)

func TestTraceAndRenderHistory(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{
		N: 3, F: 1, Seed: 6,
		Crashes: []mpsnap.CrashSpec{{Node: 2, At: 5 * mpsnap.D}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	c.Trace(func(line string) { lines = append(lines, line) })
	c.Client(0, func(cl *mpsnap.Client) {
		if err := cl.Update([]byte("hello")); err != nil {
			t.Errorf("update: %v", err)
			return
		}
		if _, err := cl.Scan(); err != nil {
			t.Errorf("scan: %v", err)
		}
	})
	if got := c.RenderHistory(80); !strings.Contains(got, "no history") {
		t.Fatalf("RenderHistory before Run should say so, got %q", got)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	var sends, delivers, crashes int
	for _, l := range lines {
		switch {
		case strings.Contains(l, "CRASH"):
			crashes++
		case strings.Contains(l, "→"):
			sends++
		case strings.Contains(l, "⇒"):
			delivers++
		}
	}
	if sends == 0 || delivers == 0 || crashes != 1 {
		t.Fatalf("trace: sends=%d delivers=%d crashes=%d", sends, delivers, crashes)
	}
	gantt := c.RenderHistory(100)
	if !strings.Contains(gantt, "U(hello)") || !strings.Contains(gantt, "node 0") {
		t.Fatalf("gantt missing content:\n%s", gantt)
	}
}

func TestDumpHistoryErrors(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.DumpHistory(&buf); err == nil {
		t.Fatal("DumpHistory before Run must error")
	}
	c.Client(0, func(cl *mpsnap.Client) { _ = cl.Update([]byte("x")) })
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.DumpHistory(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"type": "update"`) {
		t.Fatalf("dump missing op: %s", buf.String())
	}
}
