// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results). Each benchmark iteration executes one full simulated
// run; latencies are reported in units of the maximum message delay D via
// custom metrics (D/op-style numbers), since wall-clock ns/op measures
// only simulator speed.
//
// Run with: go test -bench=. -benchmem
package mpsnap_test

import (
	"fmt"
	"testing"

	"mpsnap/internal/bench"
	"mpsnap/internal/history"
)

// T1 — Table I: per-algorithm worst/amortized UPDATE and SCAN latency.
func BenchmarkTable1(b *testing.B) {
	for _, algo := range bench.TableAlgos() {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			f := 7
			if algo == bench.ByzASO {
				f = 5
			}
			var last bench.Result
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Config{
					Algo: algo, N: 16, F: f, OpsPerNode: 4, ScanRatio: 0.5,
					Seed: int64(i), Check: i == 0,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.WorstUpd, "worstUpd-D")
			b.ReportMetric(last.WorstScan, "worstScan-D")
			b.ReportMetric(last.MeanAll, "amort-D")
			b.ReportMetric(float64(last.Msgs), "msgs")
		})
	}
}

// F1 — Figure 1: base computation and the (A1)-(A4) checker on the
// paper's example history.
func BenchmarkFigure1Check(b *testing.B) {
	mk := func() *history.History {
		ops := []*history.Op{
			{ID: 1, Node: 0, Type: history.Update, Arg: "1", Inv: 0, Resp: 10},
			{ID: 2, Node: 1, Type: history.Update, Arg: "2", Inv: 15, Resp: 25},
			{ID: 3, Node: 2, Type: history.Update, Arg: "3", Inv: 5, Resp: 30},
			{ID: 4, Node: 1, Type: history.Scan, Snap: []string{"1", "2", "3"}, Inv: 30, Resp: 45},
			{ID: 6, Node: 0, Type: history.Update, Arg: "4", Inv: 35, Resp: 50},
			{ID: 5, Node: 2, Type: history.Scan, Snap: []string{"4", "2", "3"}, Inv: 55, Resp: 70},
		}
		return history.NewHistory(3, ops)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := mk()
		rep := h.CheckLinearizable()
		if !rep.OK {
			b.Fatalf("figure 1 must be linearizable: %v", rep.Violations)
		}
	}
}

// F2 — Figure 2: the scripted one-shot execution (op6 blocked on
// forwarded values). The latency assertions live in the unit test
// (internal/la.TestFigure2); here we measure the full scenario.
func BenchmarkFigure2Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
}

// E1 — O(√k·D) worst case: probe update latency under failure chains.
func BenchmarkSqrtKScaling(b *testing.B) {
	for _, k := range []int{0, 4, 16, 25} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var probe float64
			for i := 0; i < b.N; i++ {
				var err error
				probe, _, err = bench.SqrtKProbe(bench.EQASO, max(2*k+3, 5), k, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(probe, "probe-D")
		})
	}
}

// E2 — amortized O(D): mean latency flattens as operations grow past √k.
func BenchmarkAmortized(b *testing.B) {
	const k = 16
	for _, ops := range []int{1, 4, 16} {
		ops := ops
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Config{
					Algo: bench.EQASO, N: 2*k + 3, F: k + 1, OpsPerNode: ops,
					ScanRatio: 0.5, Seed: int64(i),
					Faults: bench.Faults{Crashes: k, Chains: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanAll
			}
			b.ReportMetric(mean, "amort-D")
		})
	}
}

// E3 — failure-free constant time, independent of n.
func BenchmarkFailureFree(b *testing.B) {
	for _, n := range []int{4, 16, 32} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Config{
					Algo: bench.EQASO, N: n, F: (n - 1) / 2, OpsPerNode: 2,
					ScanRatio: 0.5, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				worst = res.WorstUpd
				if res.WorstScan > worst {
					worst = res.WorstScan
				}
			}
			b.ReportMetric(worst, "worst-D")
		})
	}
}

// E4 — Byzantine ASO with silent cohorts (n = 3f+1).
func BenchmarkByzantine(b *testing.B) {
	for _, f := range []int{1, 2, 4} {
		f := f
		b.Run(fmt.Sprintf("f=%d", f), func(b *testing.B) {
			var worst, mean float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Config{
					Algo: bench.ByzASO, N: 3*f + 1, F: f, OpsPerNode: 2,
					ScanRatio: 0.5, Seed: int64(i),
					Faults: bench.Faults{Crashes: f},
				})
				if err != nil {
					b.Fatal(err)
				}
				worst = res.WorstUpd
				if res.WorstScan > worst {
					worst = res.WorstScan
				}
				mean = res.MeanAll
			}
			b.ReportMetric(worst, "worst-D")
			b.ReportMetric(mean, "amort-D")
		})
	}
}

// E5 — SSO fast scans: zero time, zero messages; updates match EQ-ASO.
func BenchmarkSSOScan(b *testing.B) {
	for _, algo := range []bench.Algo{bench.EQASO, bench.SSOFast} {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			var scan, upd float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Config{
					Algo: algo, N: 9, F: 4, OpsPerNode: 4, ScanRatio: 0.75,
					Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				scan, upd = res.WorstScan, res.WorstUpd
			}
			b.ReportMetric(scan, "worstScan-D")
			b.ReportMetric(upd, "worstUpd-D")
		})
	}
}

// E6 — early-stopping lattice agreement vs pull baseline under chains.
func BenchmarkLatticeAgreement(b *testing.B) {
	for _, k := range []int{0, 4, 16} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				var err error
				worst, err = bench.RunLAProbe(true, max(2*k+3, 5), k, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(worst, "eqla-worst-D")
		})
	}
}

// A1 — ablation: proactive forwarding (EQ) vs pull (double-collect style)
// lattice operations inside the same renewal framework.
func BenchmarkAblationForwarding(b *testing.B) {
	for _, algo := range []bench.Algo{bench.EQASO, bench.LAASO} {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Config{
					Algo: algo, N: 16, F: 7, OpsPerNode: 3, ScanRatio: 0.5,
					Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				worst = res.WorstUpd
				if res.WorstScan > worst {
					worst = res.WorstScan
				}
			}
			b.ReportMetric(worst, "worst-D")
		})
	}
}

// Engineering benchmark: raw end-to-end throughput of one simulated
// EQ-ASO operation pair (simulator + algorithm + recorder), n=16.
func BenchmarkSimulatedOpThroughput(b *testing.B) {
	var ops int
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(bench.Config{
			Algo: bench.EQASO, N: 16, F: 7, OpsPerNode: 2, ScanRatio: 0.5, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = res.Ops
	}
	b.ReportMetric(float64(ops), "ops/run")
}

// Engineering benchmark: the (A1)-(A4) checker on a 320-operation history.
func BenchmarkCheckerThroughput(b *testing.B) {
	res, err := bench.Run(bench.Config{
		Algo: bench.EQASO, N: 16, F: 7, OpsPerNode: 20, ScanRatio: 0.5, Seed: 1, Check: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	// The Run above included one check; time repeated checks directly by
	// rebuilding the same history via a fresh run per iteration.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(bench.Config{
			Algo: bench.EQASO, N: 16, F: 7, OpsPerNode: 20, ScanRatio: 0.5, Seed: 1, Check: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// A3 — ablation: direct message-passing implementation vs stacking a
// shared-memory snapshot over emulated registers.
func BenchmarkStacking(b *testing.B) {
	for _, algo := range []bench.Algo{bench.EQASO, bench.Stacked} {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				res, err := bench.Run(bench.Config{
					Algo: algo, N: 8, F: 3, OpsPerNode: 2, ScanRatio: 0.5,
					Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				worst = res.WorstUpd
				if res.WorstScan > worst {
					worst = res.WorstScan
				}
			}
			b.ReportMetric(worst, "worst-D")
		})
	}
}
