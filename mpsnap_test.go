package mpsnap_test

import (
	"strings"
	"testing"

	"mpsnap"
)

func TestAllAlgorithmsViaPublicAPI(t *testing.T) {
	for _, alg := range mpsnap.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			n, f := 5, 2
			if alg.RequiresNGreaterThan3F() {
				n, f = 7, 2
			}
			c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Algorithm: alg, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				i := i
				c.Client(i, func(cl *mpsnap.Client) {
					if cl.Node() != i {
						t.Errorf("node = %d, want %d", cl.Node(), i)
					}
					if err := cl.Update([]byte("a")); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					snap, err := cl.Scan()
					if err != nil {
						t.Errorf("scan: %v", err)
						return
					}
					if string(snap[i]) != "a" {
						t.Errorf("own segment = %q", snap[i])
					}
					if err := cl.Sleep(mpsnap.D); err != nil {
						t.Errorf("sleep: %v", err)
					}
					if err := cl.Update([]byte("b")); err != nil {
						t.Errorf("update: %v", err)
					}
				})
			}
			if err := c.Run(); err != nil {
				t.Fatal(err)
			}
			if err := c.Check(); err != nil {
				t.Fatal(err)
			}
			st := c.Stats()
			if st.Operations != 3*n || st.Messages == 0 || st.VirtualTime <= 0 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := mpsnap.NewSimCluster(mpsnap.Config{N: 4, F: 2}); err == nil {
		t.Fatal("n=4 f=2 must be rejected (need n > 2f)")
	}
	if _, err := mpsnap.NewSimCluster(mpsnap.Config{N: 6, F: 2, Algorithm: mpsnap.ByzASO}); err == nil {
		t.Fatal("n=6 f=2 must be rejected for Byzantine algorithms (need n > 3f)")
	}
	if _, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Algorithm: "nope"}); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatal("unknown algorithm must be rejected")
	}
	if _, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Crashes: []mpsnap.CrashSpec{{Node: 9}}}); err == nil {
		t.Fatal("out-of-range crash spec must be rejected")
	}
}

func TestCrashConfigAndErrors(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{
		N: 5, F: 2, Seed: 3,
		Crashes: []mpsnap.CrashSpec{{Node: 0, At: 2 * mpsnap.D}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	c.Client(0, func(cl *mpsnap.Client) {
		for k := 0; k < 100; k++ {
			if err := cl.Update([]byte{byte(k)}); err != nil {
				sawErr = true
				return
			}
		}
	})
	c.Client(1, func(cl *mpsnap.Client) {
		if err := cl.Update([]byte("ok")); err != nil {
			t.Errorf("healthy node: %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawErr {
		t.Fatal("crashed node's client should have seen an error")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmPredicates(t *testing.T) {
	if mpsnap.SSOFast.Atomic() || mpsnap.SSOByz.Atomic() {
		t.Fatal("SSO variants are not atomic")
	}
	if !mpsnap.EQASO.Atomic() || !mpsnap.ByzASO.Atomic() {
		t.Fatal("ASO variants are atomic")
	}
	if !mpsnap.ByzASO.RequiresNGreaterThan3F() || !mpsnap.SSOByz.RequiresNGreaterThan3F() {
		t.Fatal("Byzantine variants need n > 3f")
	}
	if mpsnap.EQASO.RequiresNGreaterThan3F() {
		t.Fatal("EQ-ASO needs only n > 2f")
	}
}

func TestCheckBeforeRun(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err == nil {
		t.Fatal("Check before Run must error")
	}
}

func TestDelayConstant(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Delay: mpsnap.DelayConstant, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		if err := cl.Update([]byte("x")); err != nil {
			t.Errorf("update: %v", err)
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// With every message taking exactly D, the update needs at least 2D.
	if st.WorstUpdateD < 2 {
		t.Fatalf("constant-D update took %.1fD, want ≥ 2D", st.WorstUpdateD)
	}
}
