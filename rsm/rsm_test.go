package rsm_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap"
	"mpsnap/rsm"
)

// runLog has every node append its commands concurrently, keep helping
// (Sync) until the expected total is committed, and returns each node's
// committed view (nil for crashed nodes). Crashed nodes fail at t=0, so
// they propose nothing and the expected total is well-defined.
func runLog(t *testing.T, seed int64, n int, cmdsPerNode int, crashes int) [][]rsm.Entry {
	return runLogAppenders(t, seed, n, n, cmdsPerNode, crashes)
}

// runLogAppenders is runLog with only the first `appenders` nodes
// proposing; the rest purely help.
func runLogAppenders(t *testing.T, seed int64, n, appenders, cmdsPerNode, crashes int) [][]rsm.Entry {
	t.Helper()
	f := (n - 1) / 2
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: n, F: f, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < crashes; v++ {
		c.Crash(n-1-v, 0)
	}
	liveAppenders := appenders
	if liveAppenders > n-crashes {
		liveAppenders = n - crashes
	}
	expected := liveAppenders * cmdsPerNode
	views := make([][]rsm.Entry, n)
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(cl *mpsnap.Client) {
			log, err := rsm.New(cl.Raw(), i, rsm.Config{
				N: n, F: f, Rand: rand.New(rand.NewSource(seed*977 + int64(i))),
			})
			if err != nil {
				t.Error(err)
				return
			}
			if i < appenders {
				for k := 1; k <= cmdsPerNode; k++ {
					cmd := []byte(fmt.Sprintf("c%d-%d", i, k))
					e, err := log.Append(cmd)
					if err != nil {
						return // crashed
					}
					if e.Node != i || e.Seq != k || !bytes.Equal(e.Cmd, cmd) {
						t.Errorf("node %d: append returned %+v for seq %d", i, e, k)
						return
					}
				}
			}
			// Keep helping until everything visible is committed.
			for round := 0; len(log.Committed()) < expected && round < 1000; round++ {
				if err := log.Sync(); err != nil {
					return
				}
				if len(log.Committed()) < expected {
					if err := cl.Sleep(mpsnap.D); err != nil {
						return
					}
				}
			}
			views[i] = log.Committed()
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return views
}

// checkLogs verifies total order (prefix property), per-node FIFO, and
// no duplication across all views.
func checkLogs(t *testing.T, views [][]rsm.Entry) {
	t.Helper()
	// Longest view is the reference; all others must be its prefixes.
	var ref []rsm.Entry
	for _, v := range views {
		if len(v) > len(ref) {
			ref = v
		}
	}
	if len(ref) == 0 {
		t.Fatal("no node committed anything")
	}
	for i, v := range views {
		for s := range v {
			a, b := v[s], ref[s]
			if a.Node != b.Node || a.Seq != b.Seq || !bytes.Equal(a.Cmd, b.Cmd) {
				t.Fatalf("total order violated at slot %d: node %d has %+v, reference %+v", s, i, a, b)
			}
		}
	}
	// Per-node FIFO + no duplication within the reference.
	nextSeq := map[int]int{}
	for s, e := range ref {
		if e.Slot != s {
			t.Fatalf("slot mismatch at %d: %+v", s, e)
		}
		nextSeq[e.Node]++
		if e.Seq != nextSeq[e.Node] {
			t.Fatalf("per-node FIFO violated: %+v (expected seq %d)", e, nextSeq[e.Node])
		}
	}
}

func TestSingleAppender(t *testing.T) {
	views := runLogAppenders(t, 1, 3, 1, 3, 0)
	checkLogs(t, views)
	for i, v := range views {
		if len(v) != 3 {
			t.Fatalf("node %d sees %d entries, want 3", i, len(v))
		}
		for s, e := range v {
			if e.Node != 0 || e.Seq != s+1 {
				t.Fatalf("node %d slot %d: %+v", i, s, e)
			}
		}
	}
}

func TestConcurrentAppendersTotalOrder(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		views := runLog(t, seed, 4, 2, 0)
		checkLogs(t, views)
		// All 8 commands must be committed in the reference view.
		var ref []rsm.Entry
		for _, v := range views {
			if len(v) > len(ref) {
				ref = v
			}
		}
		if len(ref) != 8 {
			t.Fatalf("seed %d: reference log has %d entries, want 8", seed, len(ref))
		}
	}
}

func TestTotalOrderUnderCrashes(t *testing.T) {
	views := runLog(t, 7, 5, 2, 1)
	checkLogs(t, views)
}

func TestTotalOrderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		views := runLog(t, seed, n, 1+rng.Intn(2), 0)
		checkLogs(t, views)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	c, err := mpsnap.NewSimCluster(mpsnap.Config{N: 3, F: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.Client(0, func(cl *mpsnap.Client) {
		if _, err := rsm.New(cl.Raw(), 0, rsm.Config{N: 4, F: 2, Rand: rand.New(rand.NewSource(1))}); err == nil {
			t.Error("n=4 f=2 must be rejected")
		}
		if _, err := rsm.New(cl.Raw(), 0, rsm.Config{N: 3, F: 1}); err == nil {
			t.Error("nil Rand must be rejected")
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}
