// Package rsm builds a totally ordered replicated log — general state
// machine replication — on top of an atomic snapshot object, combining
// the repository's pieces the way the paper's introduction sketches
// (linearizable replicated state machines, references [37] and [41], and
// wait-free constructions [5], [27]).
//
// Commutative-command replication needs no consensus (see package
// statemachine); a *totally ordered* log does. Each log slot is decided
// by randomized binary consensus sweeps over the snapshot: candidates
// (nodes) are considered in order, and a Ben-Or-style instance decides
// whether the candidate's next uncommitted proposal wins the slot. All
// consensus state — proposals, per-instance phase records, and decided
// slots — lives in the proposer's own snapshot segment, so the whole
// construction is a single snapshot object underneath.
//
// Safety (total order, no loss, no duplication, per-node FIFO) is
// deterministic; termination of Append holds with probability 1 (local
// coins), matching the FLP-imposed trade-off. Decisions are published in
// segments, so laggards adopt them instead of re-running consensus.
package rsm

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"mpsnap/internal/wire"
)

// Object is the atomic snapshot object the log runs over (mpsnap.Object;
// must be an ASO).
type Object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

// Config parameterizes a log replica.
type Config struct {
	// N nodes, resilience F (n > 2f).
	N, F int
	// Rand drives consensus coins; required.
	Rand *rand.Rand
	// MaxSweeps bounds candidate sweeps per slot (0 = 10000).
	MaxSweeps int
}

// Entry is one committed command.
type Entry struct {
	// Slot is the log index.
	Slot int
	// Node is the proposer; Seq its per-proposer sequence (1-based).
	Node, Seq int
	// Cmd is the command payload.
	Cmd []byte
}

// phaseRecord mirrors consensus: a report and a proposal per phase.
type phaseRecord struct {
	Report   int
	Proposal int // 0, 1, -1 (⊥), -2 unset
}

// segment is a node's full published state.
type segment struct {
	Proposals [][]byte                 // the node's commands, in append order
	Phases    map[string][]phaseRecord // consensus state per instance key
	Decisions map[int]int              // slot -> winning candidate (node id)
}

// encodeSegment serializes a segment deterministically: map entries are
// emitted in sorted key order, so equal segments encode to equal bytes.
func encodeSegment(s segment) []byte {
	var b wire.Buffer
	b.PutUvarint(uint64(len(s.Proposals)))
	for _, p := range s.Proposals {
		b.PutBytes(p)
	}
	keys := make([]string, 0, len(s.Phases))
	for k := range s.Phases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.PutUvarint(uint64(len(keys)))
	for _, k := range keys {
		b.PutString(k)
		recs := s.Phases[k]
		b.PutUvarint(uint64(len(recs)))
		for _, pr := range recs {
			b.PutVarint(int64(pr.Report))
			b.PutVarint(int64(pr.Proposal))
		}
	}
	slots := make([]int, 0, len(s.Decisions))
	for slot := range s.Decisions {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	b.PutUvarint(uint64(len(slots)))
	for _, slot := range slots {
		b.PutInt(slot)
		b.PutInt(s.Decisions[slot])
	}
	return b.Bytes()
}

func decodeSegment(b []byte) (segment, error) {
	d := wire.NewDecoder(b)
	s := segment{
		Phases:    make(map[string][]phaseRecord),
		Decisions: make(map[int]int),
	}
	for i, n := 0, d.Count(1); i < n; i++ {
		s.Proposals = append(s.Proposals, d.Bytes())
	}
	for i, n := 0, d.Count(2); i < n && d.Err() == nil; i++ {
		k := d.String()
		nr := d.Count(2)
		recs := make([]phaseRecord, 0, nr)
		for j := 0; j < nr; j++ {
			recs = append(recs, phaseRecord{Report: d.Int(), Proposal: d.Int()})
		}
		s.Phases[k] = recs
	}
	for i, n := 0, d.Count(2); i < n && d.Err() == nil; i++ {
		slot := d.Int()
		s.Decisions[slot] = d.Int()
	}
	return s, d.Err()
}

// Log is one node's replica handle.
type Log struct {
	obj Object
	id  int
	cfg Config

	seg       segment
	decisions map[int]int // local cache of slot -> candidate
	committed []Entry     // decided prefix
}

// New creates node id's replica.
func New(obj Object, id int, cfg Config) (*Log, error) {
	if cfg.N <= 2*cfg.F || cfg.N <= 0 {
		return nil, fmt.Errorf("rsm: need n > 2f, got n=%d f=%d", cfg.N, cfg.F)
	}
	if cfg.Rand == nil {
		return nil, errors.New("rsm: Config.Rand is required")
	}
	if cfg.MaxSweeps == 0 {
		cfg.MaxSweeps = 10000
	}
	return &Log{
		obj: obj,
		id:  id,
		cfg: cfg,
		seg: segment{
			Phases:    make(map[string][]phaseRecord),
			Decisions: make(map[int]int),
		},
		decisions: make(map[int]int),
	}, nil
}

func (l *Log) publish() error { return l.obj.Update(encodeSegment(l.seg)) }

// scan decodes all segments (nil for unwritten ones) and folds any newly
// visible decisions into the local cache.
func (l *Log) scan() ([]*segment, error) {
	snap, err := l.obj.Scan()
	if err != nil {
		return nil, err
	}
	segs := make([]*segment, len(snap))
	for i, raw := range snap {
		if raw == nil {
			continue
		}
		s, err := decodeSegment(raw)
		if err != nil {
			return nil, fmt.Errorf("rsm: segment %d: %w", i, err)
		}
		segs[i] = &s
		for slot, cand := range s.Decisions {
			l.decisions[slot] = cand
		}
	}
	if segs[l.id] == nil || len(segs[l.id].Proposals) < len(l.seg.Proposals) {
		segs[l.id] = &l.seg // own completed publishes are authoritative
	}
	return segs, nil
}

// Append submits cmd and blocks until it is committed, returning its log
// entry. At most one Append per node at a time (sequential nodes).
func (l *Log) Append(cmd []byte) (Entry, error) {
	l.seg.Proposals = append(l.seg.Proposals, append([]byte(nil), cmd...))
	mySeq := len(l.seg.Proposals) // 1-based
	if err := l.publish(); err != nil {
		return Entry{}, err
	}
	for {
		// Extend the committed prefix by one slot at a time until our
		// command lands.
		e, err := l.commitSlot(len(l.committed))
		if err != nil {
			return Entry{}, err
		}
		if e.Node == l.id && e.Seq == mySeq {
			return e, nil
		}
	}
}

// CatchUp extends the local committed prefix using published decisions
// only (no consensus driving); readers call it before Committed.
func (l *Log) CatchUp() error {
	segs, err := l.scan()
	if err != nil {
		return err
	}
	for {
		slot := len(l.committed)
		cand, ok := l.decisions[slot]
		if !ok {
			return nil
		}
		if _, err := l.applyChecked(slot, cand, segs); err != nil {
			return err
		}
	}
}

// Sync actively helps: it keeps committing slots until no visible
// proposal is left pending. Nodes that have finished their own appends
// must keep calling Sync while others are appending — consensus instances
// need n-f participants, so helping is what makes slow appenders' Appends
// terminate (the replicated-log analogue of the snapshot literature's
// helping mechanisms).
func (l *Log) Sync() error {
	for {
		if err := l.CatchUp(); err != nil {
			return err
		}
		segs, err := l.scan()
		if err != nil {
			return err
		}
		pending := false
		for c := range segs {
			if segs[c] != nil && len(segs[c].Proposals) > l.pendingIndex(c) {
				pending = true
				break
			}
		}
		if !pending {
			return nil
		}
		if _, err := l.commitSlot(len(l.committed)); err != nil {
			return err
		}
	}
}

// Committed returns the locally known committed prefix.
func (l *Log) Committed() []Entry { return append([]Entry(nil), l.committed...) }

// commitSlot decides slot (adopting a published decision if one exists)
// and appends it to the committed prefix.
func (l *Log) commitSlot(slot int) (Entry, error) {
	for sweep := 0; sweep < l.cfg.MaxSweeps; sweep++ {
		segs, err := l.scan()
		if err != nil {
			return Entry{}, err
		}
		if cand, ok := l.decisions[slot]; ok {
			return l.applyChecked(slot, cand, segs)
		}
		for cand := 0; cand < l.cfg.N; cand++ {
			input := 0
			if segs[cand] != nil && len(segs[cand].Proposals) > l.pendingIndex(cand) {
				input = 1
			}
			key := fmt.Sprintf("%d/%d/%d", slot, sweep, cand)
			win, err := l.binaryConsensus(key, input, slot)
			if err != nil {
				return Entry{}, err
			}
			if dec, ok := l.decisions[slot]; ok {
				// Someone published the slot's decision mid-sweep.
				segs, err := l.scan()
				if err != nil {
					return Entry{}, err
				}
				return l.applyChecked(slot, dec, segs)
			}
			if win == 1 {
				l.seg.Decisions[slot] = cand
				l.decisions[slot] = cand
				if err := l.publish(); err != nil {
					return Entry{}, err
				}
				segs, err := l.scan()
				if err != nil {
					return Entry{}, err
				}
				return l.applyChecked(slot, cand, segs)
			}
			// win == 0: next candidate.
			segs, err = l.scan()
			if err != nil {
				return Entry{}, err
			}
		}
		// Full sweep decided nothing; proposals have propagated further
		// by now — sweep again with fresh instances.
	}
	return Entry{}, errors.New("rsm: sweep budget exceeded")
}

// pendingIndex returns how many of cand's proposals are already committed
// in the local prefix (the index of its next pending proposal).
func (l *Log) pendingIndex(cand int) int {
	k := 0
	for _, e := range l.committed {
		if e.Node == cand {
			k++
		}
	}
	return k
}

func (l *Log) applyChecked(slot, cand int, segs []*segment) (Entry, error) {
	if segs[cand] == nil || len(segs[cand].Proposals) <= l.pendingIndex(cand) {
		// The winner's proposal must be visible: consensus validity
		// means someone saw it, and our scan follows the deciding scan
		// in the containment order... but our *local* scan may still
		// lag. Rescan until visible.
		for {
			var err error
			segs, err = l.scan()
			if err != nil {
				return Entry{}, err
			}
			if segs[cand] != nil && len(segs[cand].Proposals) > l.pendingIndex(cand) {
				break
			}
		}
	}
	return l.apply(slot, cand, segs), nil
}

func (l *Log) apply(slot, cand int, segs []*segment) Entry {
	idx := l.pendingIndex(cand)
	e := Entry{
		Slot: slot,
		Node: cand,
		Seq:  idx + 1,
		Cmd:  append([]byte(nil), segs[cand].Proposals[idx]...),
	}
	l.committed = append(l.committed, e)
	// The slot's consensus instances are settled; drop their phase
	// records so segments stay proportional to in-flight slots.
	prefix := fmt.Sprintf("%d/", slot)
	for key := range l.seg.Phases {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			delete(l.seg.Phases, key)
		}
	}
	return e
}

// binaryConsensus is Ben-Or over the embedded per-key phase records (the
// same protocol as package consensus, namespaced so unboundedly many
// instances share one snapshot object). A published slot decision acts as
// an early exit: callers check l.decisions after each call.
func (l *Log) binaryConsensus(key string, bit, slot int) (int, error) {
	pref := bit
	for phase := 0; ; phase++ {
		// Report step.
		l.seg.Phases[key] = append(l.seg.Phases[key], phaseRecord{Report: pref, Proposal: -2})
		if err := l.publish(); err != nil {
			return 0, err
		}
		reports, done, err := l.collect(key, phase, slot, func(pr phaseRecord) (int, bool) { return pr.Report, true })
		if err != nil {
			return 0, err
		}
		if done {
			return 0, nil // slot decided elsewhere; value unused
		}
		proposal := -1
		for v := 0; v <= 1; v++ {
			if reports[v] > l.cfg.N/2 {
				proposal = v
			}
		}
		// Proposal step.
		l.seg.Phases[key][phase].Proposal = proposal
		if err := l.publish(); err != nil {
			return 0, err
		}
		proposals, done, err := l.collect(key, phase, slot, func(pr phaseRecord) (int, bool) {
			if pr.Proposal == -2 {
				return 0, false
			}
			return pr.Proposal, true
		})
		if err != nil {
			return 0, err
		}
		if done {
			return 0, nil
		}
		switch {
		case proposals[0] >= l.cfg.F+1:
			return 0, nil
		case proposals[1] >= l.cfg.F+1:
			return 1, nil
		case proposals[0] > 0:
			pref = 0
		case proposals[1] > 0:
			pref = 1
		default:
			pref = l.cfg.Rand.Intn(2)
		}
	}
}

// collect scans until n-f phase entries for key are visible, or the slot's
// decision appears (done=true).
func (l *Log) collect(key string, phase, slot int, get func(phaseRecord) (int, bool)) ([2]int, bool, error) {
	for {
		segs, err := l.scan()
		if err != nil {
			return [2]int{}, false, err
		}
		if _, ok := l.decisions[slot]; ok {
			return [2]int{}, true, nil
		}
		var counts [2]int
		seen := 0
		for _, s := range segs {
			if s == nil {
				continue
			}
			recs := s.Phases[key]
			if phase >= len(recs) {
				continue
			}
			v, ok := get(recs[phase])
			if !ok {
				continue
			}
			seen++
			if v == 0 || v == 1 {
				counts[v]++
			}
		}
		if seen >= l.cfg.N-l.cfg.F {
			return counts, false, nil
		}
	}
}
