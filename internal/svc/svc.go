// Package svc is the concurrent snapshot service layer: it sits between
// many client threads and ONE protocol instance per node, which the
// paper's model (one sequential client thread per node, Section II-A)
// otherwise bakes into the public API.
//
// A Service owns a per-node request queue and a single worker thread that
// drives the underlying object. Concurrency is turned into amortization
// exactly the way the paper's O(D) amortized bound intends:
//
//   - UPDATE coalescing: all UPDATEs pending at the start of a worker
//     cycle commit through one protocol UPDATE (a true protocol batch via
//     BatchObject when the object supports it, otherwise last-value-wins);
//     every caller unblocks when the batch containing its value commits.
//   - SCAN sharing: all SCANs pending at the start of a cycle are answered
//     by one in-flight protocol SCAN. Only waiters that arrived before the
//     scan was issued may share its result — a later arrival must not
//     receive a snapshot whose linearization point could precede its own
//     invocation.
//
// Batching merges only operations that are concurrent in real time (they
// are all pending simultaneously), so linearizability is preserved: the
// members of an update batch are linearized consecutively at the batch's
// commit point, in arrival order, and a shared scan's linearization point
// lies inside every sharer's interval.
//
// Two serving modes cover the two consistency levels of the repository:
//
//   - ModeAtomic (linearizable objects): within a cycle the worker is free
//     to reorder — one batched UPDATE, then one shared SCAN. Reordering
//     concurrent operations is exactly what linearizability permits.
//   - ModeSequential (SSO): arrival order is preserved; the queue is
//     served as maximal runs of same-kind requests (each update run is one
//     protocol batch, each scan run shares one protocol scan). This keeps
//     the per-node program order that sequential consistency — and the
//     checker's (S2)/(S3) conditions — are defined over.
//
// The queue is bounded: when MaxPending requests are waiting, PolicyBlock
// (default) applies backpressure by blocking the caller until the worker
// drains, while PolicyReject fails fast with ErrOverloaded. Close drains:
// already-admitted requests are still served, new ones get ErrClosed, and
// Serve returns once the queue is empty.
package svc

import (
	"errors"
	"fmt"

	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

// Object is the client face of a snapshot object (same contract as
// harness.Object: EQ-ASO, SSO, Byz-ASO and all baselines implement it).
type Object interface {
	// Update writes payload to this node's segment.
	Update(payload []byte) error
	// Scan returns one entry per segment; nil marks ⊥.
	Scan() ([][]byte, error)
}

// BatchObject is an Object with a batch-friendly UPDATE entry point: all
// payloads commit with one protocol round sequence (EQ-ASO and the SSO
// expose this; see eqaso.UpdateBatch).
type BatchObject interface {
	Object
	// UpdateBatch writes the payloads, in order, as successive values of
	// this node's segment, amortizing one lattice renewal over the batch.
	UpdateBatch(payloads [][]byte) error
}

// Mode selects the worker's serving discipline.
type Mode int

// Serving modes.
const (
	// ModeAtomic reorders within a cycle (updates batch, scans share).
	// Sound for linearizable objects: all reordered ops are concurrent.
	ModeAtomic Mode = iota
	// ModeSequential preserves arrival order (maximal same-kind runs),
	// as required for the SSO's per-node sequential consistency.
	ModeSequential
)

// Policy selects the backpressure behaviour of a full queue.
type Policy int

// Backpressure policies.
const (
	// PolicyBlock parks the caller until the queue has room.
	PolicyBlock Policy = iota
	// PolicyReject fails fast with ErrOverloaded.
	PolicyReject
)

// DefaultMaxPending is the queue bound when Options.MaxPending is 0.
const DefaultMaxPending = 4096

// MinWindow is the floor of the adaptive drain window: small enough that
// a lightly loaded service stays near per-request latency, large enough
// that the window can halve a few times without collapsing batching
// entirely.
const MinWindow = 16

// ErrOverloaded is returned under PolicyReject when the queue is full.
var ErrOverloaded = errors.New("svc: queue full (overloaded)")

// ErrClosed is returned for requests arriving after Close.
var ErrClosed = errors.New("svc: service closed")

// Options parameterizes a Service.
type Options struct {
	// Mode is the serving discipline (default ModeAtomic). Use
	// ModeSequential for SSO-backed services.
	Mode Mode
	// MaxPending bounds the queue (default DefaultMaxPending).
	MaxPending int
	// Policy is the full-queue behaviour (default PolicyBlock).
	Policy Policy
	// Serialize disables coalescing and sharing: the worker serves one
	// request per protocol operation. This is the one-op-at-a-time
	// baseline the batched modes are benchmarked against.
	Serialize bool
	// Coalesce, if set, folds an update batch's payloads (in arrival
	// order) into the single payload committed for the batch; it takes
	// precedence over BatchObject. The sharded Store uses it to merge
	// per-key writes into one segment map.
	Coalesce func(payloads [][]byte) []byte
	// Observer, if set, receives "svc.update"/"svc.scan" operation
	// events: start at admission (the request's position in the serving
	// order is fixed), end when the worker resolves it. The measured
	// latency therefore includes queueing — the client-visible number —
	// whereas the underlying object's own observer (installed separately)
	// measures bare protocol latency. Must be concurrency-safe and
	// non-blocking.
	Observer rt.Observer
	// Window caps how many queued requests one worker cycle drains.
	// 0 means unbounded (every pending request is served each cycle,
	// the original behaviour) unless AdaptiveWindow is set. A bounded
	// window trades peak amortization for tail latency: requests behind
	// the cap wait a cycle instead of joining a huge batch whose commit
	// they would all share.
	Window int
	// AdaptiveWindow sizes the drain window from observed queue depth
	// instead of a fixed cap: starting from Window (or MinWindow when
	// Window is 0), the window doubles when a cycle drains a full window
	// with requests still queued (demand exceeds the cap) and halves when
	// a cycle drains everything with less than a quarter window of work
	// (the cap is slack). Bounds: [MinWindow, MaxPending]. Growth and
	// shrink counts are reported in Stats.
	AdaptiveWindow bool
	// DirectWait resolves Update/Scan waiters through a per-request
	// channel closed by the worker, instead of the runtime's
	// condition-variable wait. Under thousands of concurrent clients the
	// condvar broadcast wakes every waiter on every state change
	// (O(clients) wakeups per cycle); a closed channel wakes exactly the
	// requests being resolved. Only safe on real-time backends (ChanNet,
	// TCP): a raw channel receive on the virtual-time simulator would
	// block outside the runtime's accounting and deadlock virtual time.
	DirectWait bool
}

// Stats counts a service's activity.
type Stats struct {
	// Updates / Scans are admitted client operations.
	Updates, Scans int64
	// Rejected counts PolicyReject refusals.
	Rejected int64
	// ProtoUpdates / ProtoScans are protocol operations issued by the
	// worker; amortization is the ratio of client ops to protocol ops.
	ProtoUpdates, ProtoScans int64
	// MaxBatch is the largest update batch committed at once.
	MaxBatch int
	// Window is the current drain window (0 = unbounded).
	Window int
	// WindowGrows / WindowShrinks count adaptive window resizes.
	WindowGrows, WindowShrinks int64
}

type opKind int

const (
	opUpdate opKind = iota
	opScan
)

// request is one queued client operation; done/err/snap are written by the
// worker inside the node's atomicity domain and read by the blocked caller.
type request struct {
	kind    opKind
	payload []byte
	done    bool
	err     error
	snap    [][]byte
	// ch, under Options.DirectWait, is closed when the request resolves;
	// the awaiting client blocks on it instead of the node's condvar.
	ch chan struct{}
	// Observability: per-service op sequence number and admission time
	// (set under the atomicity domain when the observer is installed).
	id    int64
	start rt.Ticks
}

// Service is one node's concurrent front to one snapshot object. Clients
// call Update/Scan from any number of threads; exactly one dedicated
// thread must run Serve.
type Service struct {
	rtm  rt.Runtime
	obj  Object
	opts Options

	// Guarded by the node's atomicity domain (rtm.Atomic / handler lock).
	q       []*request
	closed  bool
	serving bool
	stopped bool // worker exited with an error; no one will drain q
	window  int  // current drain cap (0 = unbounded)
	stats   Stats
	nextOp  int64
}

// New creates the service for one node's object. The object's protocol
// handler must be registered with the runtime as usual; the service only
// occupies the node's (single) client thread via Serve.
func New(r rt.Runtime, obj Object, opts Options) *Service {
	if opts.MaxPending <= 0 {
		opts.MaxPending = DefaultMaxPending
	}
	window := opts.Window
	if opts.AdaptiveWindow {
		if window <= 0 {
			window = MinWindow
		}
		if window > opts.MaxPending {
			window = opts.MaxPending
		}
	} else if window < 0 {
		window = 0
	}
	s := &Service{rtm: r, obj: obj, opts: opts, window: window}
	s.stats.Window = window
	return s
}

// Stats returns a copy of the counters.
func (s *Service) Stats() Stats {
	var st Stats
	s.rtm.Atomic(func() { st = s.stats })
	return st
}

// QueueLen returns the current queue depth (for tests and monitoring).
func (s *Service) QueueLen() int {
	var n int
	s.rtm.Atomic(func() { n = len(s.q) })
	return n
}

// Close stops admission and lets Serve drain: already-queued requests are
// still served; subsequent Update/Scan calls fail with ErrClosed. Safe to
// call from any thread, more than once.
func (s *Service) Close() {
	s.rtm.Atomic(func() { s.closed = true })
}

// Update writes payload to this node's segment through the service,
// blocking until the batch containing it commits (or fails).
func (s *Service) Update(payload []byte) error {
	tk, err := s.UpdateAsync(payload)
	if err != nil {
		return err
	}
	return tk.Wait()
}

// Scan returns a snapshot through the service, blocking until a protocol
// scan issued after this call's admission completes. The returned slice is
// shared among the scan's waiters and must be treated as read-only.
func (s *Service) Scan() ([][]byte, error) {
	tk, err := s.ScanAsync()
	if err != nil {
		return nil, err
	}
	if err := tk.Wait(); err != nil {
		return nil, err
	}
	return tk.Snap(), nil
}

// Ticket is the handle to an operation that has been admitted (its place
// in the serving order is fixed) but not awaited yet.
type Ticket struct {
	s   *Service
	req *request
}

// Wait blocks until the operation commits or fails.
func (t *Ticket) Wait() error { return t.s.await(t.req) }

// Snap returns a scan ticket's snapshot after a successful Wait (nil for
// update tickets). Shared among the scan's waiters; treat as read-only.
func (t *Ticket) Snap() [][]byte { return t.req.snap }

// UpdateAsync admits an update and returns without waiting for it to
// commit; the ticket's Wait reports the outcome. This splits admission
// (which fixes the operation's position in the serving order) from
// completion, letting a client pipeline requests or overlap its own work
// with the batch's protocol rounds.
func (s *Service) UpdateAsync(payload []byte) (*Ticket, error) {
	req := &request{kind: opUpdate, payload: payload}
	if s.opts.DirectWait {
		req.ch = make(chan struct{})
	}
	if err := s.enqueue(req); err != nil {
		return nil, err
	}
	return &Ticket{s: s, req: req}, nil
}

// ScanAsync admits a scan and returns without waiting; after Wait the
// snapshot is available from Snap.
func (s *Service) ScanAsync() (*Ticket, error) {
	req := &request{kind: opScan}
	if s.opts.DirectWait {
		req.ch = make(chan struct{})
	}
	if err := s.enqueue(req); err != nil {
		return nil, err
	}
	return &Ticket{s: s, req: req}, nil
}

// enqueue admits the request, applying the backpressure policy.
func (s *Service) enqueue(req *request) error {
	if s.rtm.Crashed() {
		return rt.ErrCrashed
	}
	var verdict error
	admit := func() {
		switch {
		case s.stopped:
			// The worker exited with an error (node crash); nothing will
			// ever drain this queue again.
			verdict = rt.ErrCrashed
		case s.closed:
			verdict = ErrClosed
		case len(s.q) >= s.opts.MaxPending:
			// Only reachable under PolicyReject: PolicyBlock's wait
			// predicate holds the caller until there is room.
			s.stats.Rejected++
			verdict = ErrOverloaded
		default:
			if req.kind == opUpdate {
				s.stats.Updates++
			} else {
				s.stats.Scans++
			}
			if s.opts.Observer != nil {
				s.nextOp++
				req.id = s.nextOp
				req.start = s.rtm.Now()
				s.opts.Observer.OnOp(rt.OpEvent{
					T: req.start, Node: s.rtm.ID(), ID: req.id,
					Op: req.opName(), Phase: rt.PhaseStart,
				})
			}
			s.q = append(s.q, req)
		}
	}
	if s.opts.Policy == PolicyReject {
		s.rtm.Atomic(admit)
		return verdict
	}
	err := s.rtm.WaitUntilThen("svc: admission (backpressure)",
		func() bool { return s.stopped || s.closed || len(s.q) < s.opts.MaxPending },
		admit)
	if err != nil {
		return err
	}
	return verdict
}

// await blocks until the worker resolves the request.
func (s *Service) await(req *request) error {
	if req.ch != nil {
		// DirectWait: the worker closes the channel at resolution (or
		// failAll does if the worker dies), waking exactly this caller.
		// The close happens after the request's fields are finalized, so
		// the reads below are ordered by the channel.
		<-req.ch
		return req.err
	}
	err := s.rtm.WaitUntilThen("svc: await response",
		func() bool { return req.done },
		func() {})
	if err != nil {
		return err // node crashed while waiting
	}
	return req.err
}

// Serve runs the worker loop on the calling thread (the node's one client
// thread in the paper's model): it repeatedly drains the queue and serves
// it with batched protocol operations. It returns nil after Close once the
// queue is drained, or rt.ErrCrashed if the node crashes.
func (s *Service) Serve() error {
	s.rtm.Atomic(func() {
		if s.serving {
			panic("svc: Serve called twice")
		}
		s.serving = true
	})
	for {
		var batch []*request
		var closed bool
		err := s.rtm.WaitUntilThen("svc: worker idle",
			func() bool { return len(s.q) > 0 || s.closed },
			func() {
				batch = s.drainWindow()
				closed = s.closed
			})
		if err != nil {
			// The worker is the only thing that resolves requests; fail
			// everything still queued so DirectWait callers (who block on
			// per-request channels, not the runtime's crash-aware wait)
			// observe the crash instead of hanging forever.
			s.failAll(err)
			return err
		}
		if len(batch) == 0 {
			if closed {
				return nil
			}
			continue
		}
		s.serveCycle(batch)
	}
}

// drainWindow takes up to one window of requests off the queue and, under
// AdaptiveWindow, resizes the window from what it observed: a capped
// drain with work left behind means demand exceeds the window (double
// it); a full drain that used under a quarter of the window means the cap
// is slack (halve it). Must run inside the atomicity domain.
func (s *Service) drainWindow() []*request {
	batch := s.q
	if s.window > 0 && len(s.q) > s.window {
		batch = s.q[:s.window:s.window]
		s.q = s.q[s.window:]
	} else {
		s.q = nil
	}
	if s.opts.AdaptiveWindow {
		switch {
		case len(s.q) > 0 && s.window < s.opts.MaxPending:
			s.window *= 2
			if s.window > s.opts.MaxPending {
				s.window = s.opts.MaxPending
			}
			s.stats.WindowGrows++
		case len(s.q) == 0 && len(batch) < s.window/4 && s.window > MinWindow:
			s.window /= 2
			if s.window < MinWindow {
				s.window = MinWindow
			}
			s.stats.WindowShrinks++
		}
		s.stats.Window = s.window
	}
	return batch
}

// failAll resolves every queued request with err and stops admission.
// Called when Serve exits abnormally: without it, DirectWait callers
// would block forever on channels no worker will ever close.
func (s *Service) failAll(err error) {
	s.rtm.Atomic(func() {
		s.stopped = true
		for _, req := range s.q {
			req.err = err
			req.done = true
			s.observeEnd(req)
			if req.ch != nil {
				close(req.ch)
			}
		}
		s.q = nil
	})
}

// serveCycle serves one drained queue according to the configured mode.
func (s *Service) serveCycle(batch []*request) {
	switch {
	case s.opts.Serialize:
		for _, req := range batch {
			if req.kind == opUpdate {
				s.serveUpdates([]*request{req})
			} else {
				s.serveScans([]*request{req})
			}
		}
	case s.opts.Mode == ModeSequential:
		// Maximal same-kind runs, in arrival order.
		for i := 0; i < len(batch); {
			j := i
			for j < len(batch) && batch[j].kind == batch[i].kind {
				j++
			}
			if batch[i].kind == opUpdate {
				s.serveUpdates(batch[i:j])
			} else {
				s.serveScans(batch[i:j])
			}
			i = j
		}
	default: // ModeAtomic
		var ups, scans []*request
		for _, req := range batch {
			if req.kind == opUpdate {
				ups = append(ups, req)
			} else {
				scans = append(scans, req)
			}
		}
		if len(ups) > 0 {
			s.serveUpdates(ups)
		}
		if len(scans) > 0 {
			s.serveScans(scans)
		}
	}
}

// serveUpdates commits one update batch through one protocol UPDATE.
func (s *Service) serveUpdates(ups []*request) {
	payloads := make([][]byte, len(ups))
	for i, req := range ups {
		payloads[i] = req.payload
	}
	var err error
	switch {
	case s.opts.Coalesce != nil:
		err = s.obj.Update(s.opts.Coalesce(payloads))
	default:
		if b, ok := s.obj.(BatchObject); ok {
			err = b.UpdateBatch(payloads)
		} else {
			// Last-value-wins: the batch members are linearized
			// consecutively (arrival order) at the commit point; only the
			// last value is ever observable, as if each had been
			// immediately overwritten by its concurrent successor.
			err = s.obj.Update(payloads[len(payloads)-1])
		}
	}
	s.rtm.Atomic(func() {
		s.stats.ProtoUpdates++
		if len(ups) > s.stats.MaxBatch {
			s.stats.MaxBatch = len(ups)
		}
		for _, req := range ups {
			req.err = err
			req.done = true
			s.observeEnd(req)
			if req.ch != nil {
				close(req.ch)
			}
		}
	})
}

// serveScans answers a group of scan waiters with one shared protocol
// SCAN. Every waiter was admitted before the scan is issued, so the scan's
// linearization point lies inside each waiter's interval.
func (s *Service) serveScans(scans []*request) {
	snap, err := s.obj.Scan()
	s.rtm.Atomic(func() {
		s.stats.ProtoScans++
		for _, req := range scans {
			req.snap = snap
			req.err = err
			req.done = true
			s.observeEnd(req)
			if req.ch != nil {
				close(req.ch)
			}
		}
	})
}

// opName is the observer-facing operation name.
func (r *request) opName() string {
	if r.kind == opUpdate {
		return "svc.update"
	}
	return "svc.scan"
}

// observeEnd emits a request's end event (admission-to-resolution
// latency). Must run in the atomicity domain, like all request state.
func (s *Service) observeEnd(req *request) {
	if s.opts.Observer == nil {
		return
	}
	now := s.rtm.Now()
	s.opts.Observer.OnOp(rt.OpEvent{
		T: now, Node: s.rtm.ID(), ID: req.id, Op: req.opName(),
		Phase: rt.PhaseEnd, Dur: now - req.start, Err: req.err != nil,
	})
}

// ModeFor returns the serving mode appropriate for an engine name as used
// across the repository: sequentially-consistent engines (the SSO family)
// get ModeSequential, everything else ModeAtomic. The verdict comes from
// the engine registry when the engine is linked in; unregistered names
// fall back to the SSO naming convention so binaries that link no engines
// still resolve correctly.
func ModeFor(alg string) Mode {
	if in, err := engine.Lookup(alg); err == nil {
		if in.Sequential {
			return ModeSequential
		}
		return ModeAtomic
	}
	if alg == "sso" || alg == "sso-byz" {
		return ModeSequential
	}
	return ModeAtomic
}

// String implements fmt.Stringer for diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeAtomic:
		return "atomic"
	case ModeSequential:
		return "sequential"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}
