package svc_test

import (
	"errors"
	"fmt"
	"testing"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
)

// fixture is an n-node cluster with one svc.Service per node and a closer
// that drains the services once every client script has returned, so the
// simulation terminates instead of deadlocking on idle workers.
type fixture struct {
	c       *harness.Cluster
	svcs    []*svc.Service
	clients int
	done    int
}

func build(n, f int, seed int64, alg string, opts svc.Options) *fixture {
	fx := &fixture{}
	fx.c = harness.Build(sim.Config{N: n, F: f, Seed: seed}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := engine.MustLookup(alg).New(r)
		return nd, nd
	})
	fx.svcs = make([]*svc.Service, n)
	for i := 0; i < n; i++ {
		s := svc.New(fx.c.W.Runtime(i), fx.c.Objects[i], opts)
		fx.svcs[i] = s
		fx.c.W.GoNode(fmt.Sprintf("svc-%d", i), i, func(p *sim.Proc) { _ = s.Serve() })
	}
	fx.c.W.Go("svc-closer", func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("all clients done", func() bool { return fx.done == fx.clients })
		for _, s := range fx.svcs {
			s.Close()
		}
	})
	return fx
}

// client spawns a client thread through node's service; completion is
// tracked (even on error paths) so the closer knows when to drain.
func (fx *fixture) client(node int, script func(o *harness.OpRunner)) {
	fx.clients++
	fx.c.ClientOn(node, fx.svcs[node], func(o *harness.OpRunner) {
		defer func() { fx.done++ }()
		script(o)
	})
}

// TestUpdateCoalescing: many concurrent clients' updates commit through
// far fewer protocol updates, and the history stays linearizable.
func TestUpdateCoalescing(t *testing.T) {
	const n, f, clients, each = 4, 1, 8, 3
	fx := build(n, f, 11, "eqaso", svc.Options{})
	for k := 0; k < clients; k++ {
		fx.client(0, func(o *harness.OpRunner) {
			for j := 0; j < each; j++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		})
	}
	if _, err := fx.c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := fx.svcs[0].Stats()
	if st.Updates != clients*each {
		t.Fatalf("Updates = %d, want %d", st.Updates, clients*each)
	}
	if st.ProtoUpdates >= st.Updates {
		t.Errorf("no amortization: %d protocol updates for %d client updates", st.ProtoUpdates, st.Updates)
	}
	if st.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d, want ≥ 2", st.MaxBatch)
	}
}

// TestScanSharing: concurrent scans are answered by fewer protocol scans.
func TestScanSharing(t *testing.T) {
	const n, f, clients, each = 4, 1, 8, 3
	fx := build(n, f, 12, "eqaso", svc.Options{})
	for k := 0; k < clients; k++ {
		fx.client(0, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			for j := 0; j < each; j++ {
				if _, err := o.Scan(); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		})
	}
	if _, err := fx.c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := fx.svcs[0].Stats()
	if st.Scans != clients*each {
		t.Fatalf("Scans = %d, want %d", st.Scans, clients*each)
	}
	if st.ProtoScans >= st.Scans {
		t.Errorf("no sharing: %d protocol scans for %d client scans", st.ProtoScans, st.Scans)
	}
}

// TestSerializeBaseline: with Serialize the worker issues exactly one
// protocol operation per client operation (the benchmark baseline).
func TestSerializeBaseline(t *testing.T) {
	const n, f, clients = 4, 1, 4
	fx := build(n, f, 13, "eqaso", svc.Options{Serialize: true})
	for k := 0; k < clients; k++ {
		fx.client(0, func(o *harness.OpRunner) {
			for j := 0; j < 2; j++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
			if _, err := o.Scan(); err != nil {
				t.Errorf("scan: %v", err)
			}
		})
	}
	if _, err := fx.c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := fx.svcs[0].Stats()
	if st.ProtoUpdates != st.Updates || st.ProtoScans != st.Scans {
		t.Errorf("serialize must be 1:1, got %d/%d updates, %d/%d scans",
			st.ProtoUpdates, st.Updates, st.ProtoScans, st.Scans)
	}
	if st.MaxBatch > 1 {
		t.Errorf("MaxBatch = %d in serialize mode", st.MaxBatch)
	}
}

// TestRejectPolicyOverload: with a tiny queue and PolicyReject, the
// overflow client fails fast with ErrOverloaded while admitted ones
// commit. The worker's start is delayed so the admission order (and hence
// which client overflows) is deterministic.
func TestRejectPolicyOverload(t *testing.T) {
	const n, f = 3, 1
	c := harness.Build(sim.Config{N: n, F: f, Seed: 21}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := engine.MustLookup("eqaso").New(r)
		return nd, nd
	})
	s := svc.New(c.W.Runtime(0), c.Objects[0], svc.Options{MaxPending: 2, Policy: svc.PolicyReject})
	c.W.GoNode("svc-0", 0, func(p *sim.Proc) {
		_ = p.Sleep(5 * rt.TicksPerD) // let the queue fill first
		_ = s.Serve()
	})
	errs := make([]error, 3)
	done := 0
	for k := 0; k < 3; k++ {
		k := k
		c.ClientOn(0, s, func(o *harness.OpRunner) {
			defer func() { done++ }()
			_, errs[k] = o.Update()
		})
	}
	c.W.Go("svc-closer", func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("clients done", func() bool { return done == 3 })
		s.Close()
	})
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || errs[1] != nil {
		t.Errorf("admitted clients failed: %v, %v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], svc.ErrOverloaded) {
		t.Errorf("overflow client got %v, want ErrOverloaded", errs[2])
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Updates != 2 {
		t.Errorf("stats = %+v, want Rejected=1 Updates=2", st)
	}
	if rep := h.CheckLinearizable(); !rep.OK {
		t.Errorf("history not linearizable: %v", rep.Violations)
	}
}

// TestBlockPolicyBackpressure: with PolicyBlock a full queue parks callers
// instead of failing them; every operation eventually commits.
func TestBlockPolicyBackpressure(t *testing.T) {
	const n, f = 3, 1
	c := harness.Build(sim.Config{N: n, F: f, Seed: 22}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := engine.MustLookup("eqaso").New(r)
		return nd, nd
	})
	s := svc.New(c.W.Runtime(0), c.Objects[0], svc.Options{MaxPending: 1, Policy: svc.PolicyBlock})
	c.W.GoNode("svc-0", 0, func(p *sim.Proc) {
		_ = p.Sleep(5 * rt.TicksPerD)
		_ = s.Serve()
	})
	done := 0
	for k := 0; k < 3; k++ {
		c.ClientOn(0, s, func(o *harness.OpRunner) {
			defer func() { done++ }()
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
			}
		})
	}
	c.W.Go("svc-closer", func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("clients done", func() bool { return done == 3 })
		s.Close()
	})
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Updates != 3 || st.Rejected != 0 {
		t.Errorf("stats = %+v, want Updates=3 Rejected=0", st)
	}
	if rep := h.CheckLinearizable(); !rep.OK {
		t.Errorf("history not linearizable: %v", rep.Violations)
	}
}

// TestClosedRejectsNewRequests: after Close, new operations fail with
// ErrClosed and Serve returns nil (clean drain).
func TestClosedRejectsNewRequests(t *testing.T) {
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 23})
	nd := engine.MustLookup("eqaso").New(w.Runtime(0))
	w.SetHandler(0, nd)
	s := svc.New(w.Runtime(0), nd, svc.Options{})
	w.GoNode("svc-0", 0, func(p *sim.Proc) {
		if err := s.Serve(); err != nil {
			t.Errorf("Serve after close = %v, want nil", err)
		}
	})
	w.GoNode("cli", 0, func(p *sim.Proc) {
		s.Close()
		s.Close() // idempotent
		if err := s.Update([]byte("x")); !errors.Is(err, svc.ErrClosed) {
			t.Errorf("Update after close = %v, want ErrClosed", err)
		}
		if _, err := s.Scan(); !errors.Is(err, svc.ErrClosed) {
			t.Errorf("Scan after close = %v, want ErrClosed", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDrainsQueue: requests admitted before Close are still served.
func TestCloseDrainsQueue(t *testing.T) {
	const n, f = 3, 1
	c := harness.Build(sim.Config{N: n, F: f, Seed: 24}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := engine.MustLookup("eqaso").New(r)
		return nd, nd
	})
	s := svc.New(c.W.Runtime(0), c.Objects[0], svc.Options{})
	c.W.GoNode("svc-0", 0, func(p *sim.Proc) {
		_ = p.Sleep(5 * rt.TicksPerD) // queue fills, then Close lands, then we drain
		if err := s.Serve(); err != nil {
			t.Errorf("Serve = %v", err)
		}
	})
	for k := 0; k < 3; k++ {
		c.ClientOn(0, s, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Errorf("queued update after close: %v", err)
			}
		})
	}
	c.W.Go("early-closer", func(p *sim.Proc) {
		_ = p.Sleep(2 * rt.TicksPerD) // after admission, before the worker starts
		s.Close()
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Updates != 3 {
		t.Errorf("Updates = %d, want 3 (drained)", st.Updates)
	}
}

// TestCrashMidBatch: the node crashes while a coalesced batch is in
// flight; its waiting clients observe rt.ErrCrashed, their operations stay
// pending, and the overall history is still linearizable.
func TestCrashMidBatch(t *testing.T) {
	const n, f = 4, 1
	fx := build(n, f, 25, "eqaso", svc.Options{})
	fx.c.W.CrashAt(0, 3*rt.TicksPerD)
	crashed := 0
	for k := 0; k < 4; k++ {
		fx.client(0, func(o *harness.OpRunner) {
			for j := 0; j < 5; j++ {
				if _, err := o.Update(); err != nil {
					if errors.Is(err, rt.ErrCrashed) {
						crashed++
					}
					return
				}
			}
		})
	}
	// A surviving node keeps scanning so the post-crash world is observed.
	fx.client(1, func(o *harness.OpRunner) {
		for j := 0; j < 4; j++ {
			if _, err := o.Update(); err != nil {
				t.Errorf("survivor update: %v", err)
				return
			}
			if _, err := o.Scan(); err != nil {
				t.Errorf("survivor scan: %v", err)
				return
			}
		}
	})
	h, err := fx.c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if crashed == 0 {
		t.Error("no client observed the crash (batch not in flight at crash time?)")
	}
	if rep := h.CheckLinearizable(); !rep.OK {
		t.Errorf("history not linearizable: %v", rep.Violations)
	}
}

// TestSSOSequentialMode: concurrent clients through a ModeSequential
// service over the SSO still produce a sequentially consistent history,
// and updates still amortize.
func TestSSOSequentialMode(t *testing.T) {
	const n, f, clients = 4, 1, 4
	fx := build(n, f, 26, "sso", svc.Options{Mode: svc.ModeFor("sso")})
	for i := 0; i < n; i++ {
		for k := 0; k < clients; k++ {
			fx.client(i, func(o *harness.OpRunner) {
				for j := 0; j < 3; j++ {
					if _, err := o.Update(); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					if _, err := o.Scan(); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				}
			})
		}
	}
	h, err := fx.c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("history not sequentially consistent: %v", rep.Violations)
	}
	var proto, ops int64
	for _, s := range fx.svcs {
		st := s.Stats()
		proto += st.ProtoUpdates
		ops += st.Updates
	}
	if proto >= ops {
		t.Errorf("no amortization under ModeSequential: %d protocol updates for %d client updates", proto, ops)
	}
}

// TestModeFor maps algorithm names to serving modes.
func TestModeFor(t *testing.T) {
	if svc.ModeFor("sso") != svc.ModeSequential {
		t.Error("sso must serve sequentially")
	}
	if svc.ModeFor("eqaso") != svc.ModeAtomic || svc.ModeFor("byzaso") != svc.ModeAtomic {
		t.Error("linearizable objects serve atomically")
	}
	if svc.ModeAtomic.String() != "atomic" || svc.ModeSequential.String() != "sequential" {
		t.Error("mode names")
	}
}
