package svc_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/svc"
	"mpsnap/internal/transport"
)

// TestFixedWindowCapsBatches: a fixed drain window bounds the size of
// every committed batch, at the cost of more protocol operations.
func TestFixedWindowCapsBatches(t *testing.T) {
	const n, f, clients, each, window = 4, 1, 8, 3, 2
	fx := build(n, f, 13, "eqaso", svc.Options{Window: window})
	for k := 0; k < clients; k++ {
		fx.client(0, func(o *harness.OpRunner) {
			for j := 0; j < each; j++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		})
	}
	if _, err := fx.c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := fx.svcs[0].Stats()
	if st.MaxBatch > window {
		t.Errorf("MaxBatch = %d, want <= window %d", st.MaxBatch, window)
	}
	if st.Window != window {
		t.Errorf("Stats.Window = %d, want %d (fixed)", st.Window, window)
	}
	if st.WindowGrows != 0 || st.WindowShrinks != 0 {
		t.Errorf("fixed window resized: grows=%d shrinks=%d", st.WindowGrows, st.WindowShrinks)
	}
}

// TestAdaptiveWindowGrows: under sustained demand exceeding the window,
// the adaptive window grows (and stays within [MinWindow, MaxPending]),
// and the history stays linearizable.
func TestAdaptiveWindowGrows(t *testing.T) {
	const n, f, clients, each = 4, 1, 48, 2
	fx := build(n, f, 17, "eqaso", svc.Options{AdaptiveWindow: true})
	for k := 0; k < clients; k++ {
		fx.client(0, func(o *harness.OpRunner) {
			for j := 0; j < each; j++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		})
	}
	if _, err := fx.c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := fx.svcs[0].Stats()
	if st.WindowGrows == 0 {
		t.Errorf("WindowGrows = 0 with %d clients pressing a %d-wide initial window",
			clients, svc.MinWindow)
	}
	if st.Window < svc.MinWindow || st.Window > svc.DefaultMaxPending {
		t.Errorf("Window = %d, want within [%d, %d]", st.Window, svc.MinWindow, svc.DefaultMaxPending)
	}
	if st.ProtoUpdates >= st.Updates {
		t.Errorf("no amortization under adaptive window: %d proto for %d client updates",
			st.ProtoUpdates, st.Updates)
	}
}

// TestAdaptiveWindowShrinks exercises the resize logic directly on the
// drain path: bursts far above the window double it; sparse cycles far
// below a quarter window halve it back down to the floor.
func TestAdaptiveWindowShrinks(t *testing.T) {
	const n, f = 4, 1
	fx := build(n, f, 19, "eqaso", svc.Options{AdaptiveWindow: true})
	// Burst: far more concurrent updates than the initial window.
	const burst = 40
	for k := 0; k < burst; k++ {
		fx.client(0, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
			}
		})
	}
	// Trickle: sequential single updates drain one at a time, each cycle
	// far under a quarter of the grown window.
	fx.client(0, func(o *harness.OpRunner) {
		for j := 0; j < 12; j++ {
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	})
	if _, err := fx.c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := fx.svcs[0].Stats()
	if st.WindowGrows == 0 {
		t.Errorf("WindowGrows = 0 after a %d-client burst", burst)
	}
	if st.WindowShrinks == 0 {
		t.Errorf("WindowShrinks = 0 after a sequential trickle")
	}
	if st.Window < svc.MinWindow {
		t.Errorf("Window = %d fell below floor %d", st.Window, svc.MinWindow)
	}
}

// TestDirectWaitChan: channel-based completion on a real-time backend
// serves concurrent clients correctly (this is the loadgen configuration;
// run with -race in CI).
func TestDirectWaitChan(t *testing.T) {
	const n, f, clients, each = 4, 1, 8, 5
	net := transport.NewChanNet(transport.ChanConfig{N: n, F: f, D: time.Millisecond, Seed: 23})
	defer net.Close()
	services := make([]*svc.Service, n)
	var workers sync.WaitGroup
	for i := 0; i < n; i++ {
		r := net.Runtime(i)
		nd := engine.MustLookup("eqaso").New(r)
		net.SetHandler(i, nd)
		services[i] = svc.New(r, nd, svc.Options{DirectWait: true, AdaptiveWindow: true})
		workers.Add(1)
		go func(s *svc.Service) {
			defer workers.Done()
			if err := s.Serve(); err != nil {
				t.Errorf("Serve: %v", err)
			}
		}(services[i])
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		for c := 0; c < clients; c++ {
			i, c := i, c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < each; k++ {
					if err := services[i].Update([]byte(fmt.Sprintf("v%d.%d-%d", i, c, k))); err != nil {
						t.Errorf("update: %v", err)
						return
					}
					if _, err := services[i].Scan(); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	for _, s := range services {
		s.Close()
	}
	workers.Wait()
	st := services[0].Stats()
	if st.Updates != clients*each {
		t.Errorf("Updates = %d, want %d", st.Updates, clients*each)
	}
}

// TestDirectWaitCrashUnblocks: when the node crashes mid-load, every
// DirectWait caller must observe the crash instead of hanging on a
// channel no worker will ever close (the failAll drain).
func TestDirectWaitCrashUnblocks(t *testing.T) {
	const n, f, clients = 4, 1, 8
	net := transport.NewChanNet(transport.ChanConfig{N: n, F: f, D: time.Millisecond, Seed: 29})
	defer net.Close()
	services := make([]*svc.Service, n)
	var workers sync.WaitGroup
	for i := 0; i < n; i++ {
		r := net.Runtime(i)
		nd := engine.MustLookup("eqaso").New(r)
		net.SetHandler(i, nd)
		services[i] = svc.New(r, nd, svc.Options{DirectWait: true})
		workers.Add(1)
		go func(s *svc.Service) {
			defer workers.Done()
			_ = s.Serve() // exits with ErrCrashed after the crash below
		}(services[i])
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; ; k++ {
				err := services[0].Update([]byte(fmt.Sprintf("c%d", k)))
				if errors.Is(err, rt.ErrCrashed) {
					return // the expected outcome once the node dies
				}
				if err != nil {
					t.Errorf("unexpected update error: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the load reach steady state
	net.Crash(0)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("DirectWait callers hung after crash: failAll drain did not run")
	}
	for i := 1; i < n; i++ {
		services[i].Close()
	}
	services[0].Close()
	workers.Wait()
}
