// The keyed Store: sharding many keys over independent snapshot objects.
//
// A snapshot object gives every node one segment. A Store multiplies that:
// it runs Shards independent object instances over one cluster (via
// internal/mux channel isolation) and hashes each key to a shard. Each
// shard's segment holds a key→value map for the keys this node wrote to
// that shard, committed through the shard's Service with a map-merging
// Coalesce — so one protocol UPDATE commits every key written in a batch,
// not just the last one.
//
// The segment payload is encoded deterministically (records sorted by
// key): simulator runs must stay byte-identical per seed, which rules out
// Go's randomized map iteration reaching the wire.
package svc

import (
	"fmt"
	"hash/fnv"
	"sort"

	"mpsnap/internal/mux"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// DefaultShards is the shard count when StoreConfig.Shards is 0.
const DefaultShards = 4

// StoreConfig parameterizes one node's Store.
type StoreConfig struct {
	// Shards is the number of independent object instances (default
	// DefaultShards). Must match on every node.
	Shards int
	// Prefix namespaces the mux channels ("Prefix/0" … "Prefix/k-1";
	// default "store").
	Prefix string
	// Options configures each shard's Service. Options.Coalesce is
	// reserved by the Store (it installs the map-merging coalescer) and
	// must be nil.
	Options Options
	// NewObject builds one shard's protocol instance on a mux
	// sub-runtime, returning its message handler and client face. The
	// same constructor must be used on every node.
	NewObject func(r rt.Runtime) (rt.Handler, Object)
}

// shard is one object instance plus its service front and this node's
// cumulative key map for the shard (worker-thread-only state).
type shard struct {
	svc   *Service
	cum   map[string][]byte
	order []string // first-write key order, for deterministic encoding
}

// Store is one node's keyed, sharded snapshot store.
type Store struct {
	n      int
	shards []*shard
}

// Record is one key write inside a shard segment. The segment payload
// format (EncodeRecords/DecodeRecords) is shared with the cluster routing
// layer, which ships the same records across shard clusters.
type Record struct {
	K string
	V []byte
}

// record is the historical internal alias for Record.
type record = Record

// NewStore builds the store's shards on m, binding channel
// "Prefix/<shard>" for each. Call Serve on every shard service (see
// Services) from dedicated threads, then Update/Scan freely.
func NewStore(m *mux.Mux, cfg StoreConfig) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "store"
	}
	if cfg.Options.Coalesce != nil {
		return nil, fmt.Errorf("svc: StoreConfig.Options.Coalesce is reserved by the Store")
	}
	if cfg.NewObject == nil {
		return nil, fmt.Errorf("svc: StoreConfig.NewObject is required")
	}
	st := &Store{}
	for i := 0; i < cfg.Shards; i++ {
		name := fmt.Sprintf("%s/%d", cfg.Prefix, i)
		r := m.Channel(name)
		st.n = r.N()
		h, obj := cfg.NewObject(r)
		if err := m.BindErr(name, h); err != nil {
			return nil, err
		}
		sh := &shard{}
		opts := cfg.Options
		opts.Coalesce = sh.merge
		sh.svc = New(r, obj, opts)
		st.shards = append(st.shards, sh)
	}
	return st, nil
}

// merge folds a batch of key writes into the shard's cumulative key map
// and returns the full map as the committed segment payload. The map must
// be cumulative — a snapshot only keeps each writer's latest segment, so a
// key written in an earlier batch survives only by being re-committed here.
// Only the shard's worker thread calls merge, so the state needs no lock.
func (sh *shard) merge(payloads [][]byte) []byte {
	for _, p := range payloads {
		for _, rec := range decodeRecords(p) {
			if _, seen := sh.cum[rec.K]; !seen {
				sh.order = append(sh.order, rec.K)
			}
			if sh.cum == nil {
				sh.cum = make(map[string][]byte)
			}
			sh.cum[rec.K] = rec.V
		}
	}
	recs := make([]record, 0, len(sh.order))
	for _, k := range sh.order {
		recs = append(recs, record{K: k, V: sh.cum[k]})
	}
	return encodeRecords(recs)
}

// EncodeRecords serializes a record list deterministically (wire records
// in the given order; callers pass a deterministic order).
func EncodeRecords(recs []Record) []byte { return encodeRecords(recs) }

// DecodeRecords parses a segment payload; a corrupt payload (impossible
// through the Store API) is surfaced as an empty list.
func DecodeRecords(p []byte) []Record { return decodeRecords(p) }

// encodeRecords serializes a record list deterministically (wire records
// in the given order; callers pass a deterministic order).
func encodeRecords(recs []record) []byte {
	var b wire.Buffer
	b.PutUvarint(uint64(len(recs)))
	for _, rec := range recs {
		b.PutString(rec.K)
		b.PutBytes(rec.V)
	}
	return b.Bytes()
}

// decodeRecords parses a segment payload; a corrupt payload (impossible
// through the Store API) is surfaced as an empty list.
func decodeRecords(p []byte) []record {
	if len(p) == 0 {
		return nil
	}
	d := wire.NewDecoder(p)
	n := d.Count(2)
	recs := make([]record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, record{K: d.String(), V: d.Bytes()})
	}
	if d.Err() != nil {
		return nil
	}
	return recs
}

// ShardFor returns the shard index a key hashes to (fnv-1a, identical on
// every node).
func (s *Store) ShardFor(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Services returns the per-shard services, in shard order. The caller
// must run each one's Serve on a dedicated thread.
func (s *Store) Services() []*Service {
	out := make([]*Service, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.svc
	}
	return out
}

// Close stops admission on every shard (see Service.Close).
func (s *Store) Close() {
	for _, sh := range s.shards {
		sh.svc.Close()
	}
}

// Update writes key=val to this node's segment of the key's shard,
// blocking until the batch containing it commits.
func (s *Store) Update(key string, val []byte) error {
	payload := encodeRecords([]record{{K: key, V: val}})
	return s.shards[s.ShardFor(key)].svc.Update(payload)
}

// MergeKeys deterministically merges the key sets of several segment
// payloads: the union of every segment's record keys, sorted and
// deduplicated. Segments carry keys in each writer's first-write order, so
// a naive concatenation would depend on which writer committed first;
// sorting makes cross-segment enumeration order-stable across runs —
// cluster.GlobalScan relies on this for byte-identical cut dumps.
func MergeKeys(segments [][]byte) []string {
	var keys []string
	seen := make(map[string]bool)
	for _, seg := range segments {
		for _, rec := range decodeRecords(seg) {
			if !seen[rec.K] {
				seen[rec.K] = true
				keys = append(keys, rec.K)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// Keys snapshots every shard (one linearizable snapshot per shard) and
// returns all keys any node has ever written, in deterministic sorted
// order. Note the per-shard snapshots are taken independently: the key
// *set* is a union of per-shard linearizable views, not one atomic
// multi-shard cut (cluster.GlobalScan is the coordinated version).
func (s *Store) Keys() ([]string, error) {
	var all [][]byte
	for _, sh := range s.shards {
		snap, err := sh.svc.Scan()
		if err != nil {
			return nil, err
		}
		all = append(all, snap...)
	}
	return MergeKeys(all), nil
}

// KeyVals is one key's per-node value vector in a scan-all result.
type KeyVals struct {
	Key  string
	Vals [][]byte // one entry per node; nil = that node never wrote the key
}

// ScanAll snapshots every shard and returns the full keyed contents,
// sorted by key (deterministic across runs). Each key's value vector comes
// from its shard's one linearizable snapshot; like Keys, the combination
// across shards is a stitch, not a coordinated cut.
func (s *Store) ScanAll() ([]KeyVals, error) {
	snaps := make([][][]byte, len(s.shards))
	var all [][]byte
	for i, sh := range s.shards {
		snap, err := sh.svc.Scan()
		if err != nil {
			return nil, err
		}
		snaps[i] = snap
		all = append(all, snap...)
	}
	keys := MergeKeys(all)
	out := make([]KeyVals, 0, len(keys))
	for _, k := range keys {
		kv := KeyVals{Key: k, Vals: make([][]byte, s.n)}
		for node, seg := range snaps[s.ShardFor(k)] {
			for _, rec := range decodeRecords(seg) {
				if rec.K == k {
					kv.Vals[node] = rec.V
					break
				}
			}
		}
		out = append(out, kv)
	}
	return out, nil
}

// Scan snapshots the key's shard and returns each node's latest value for
// the key, one entry per node (nil = that node never wrote the key). The
// per-node values come from one linearizable snapshot of the shard.
func (s *Store) Scan(key string) ([][]byte, error) {
	snap, err := s.shards[s.ShardFor(key)].svc.Scan()
	if err != nil {
		return nil, err
	}
	out := make([][]byte, s.n)
	for node, seg := range snap {
		for _, rec := range decodeRecords(seg) {
			if rec.K == key {
				out[node] = rec.V
				break
			}
		}
	}
	return out, nil
}
