package svc_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/svc"
	"mpsnap/internal/transport"
)

// TestServiceOverChanTransport: the service layer runs over real
// goroutines and channels with genuine parallelism — concurrent clients
// per node, wall-clock delays — and histories stay consistent (run with
// -race in CI). The sim tests prove the batching logic; this proves the
// same code is thread-safe on a real runtime.
func TestServiceOverChanTransport(t *testing.T) {
	for _, alg := range []string{"eqaso", "sso"} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			const n, f, clients, each = 4, 1, 4, 3
			net := transport.NewChanNet(transport.ChanConfig{N: n, F: f, D: time.Millisecond, Seed: 17})
			defer net.Close()
			services := make([]*svc.Service, n)
			rts := make([]rt.Runtime, n)
			var workers sync.WaitGroup
			for i := 0; i < n; i++ {
				rts[i] = net.Runtime(i)
				nd := engine.MustLookup(alg).New(rts[i])
				var obj svc.Object = nd
				net.SetHandler(i, nd)
				services[i] = svc.New(rts[i], obj, svc.Options{Mode: svc.ModeFor(alg)})
				workers.Add(1)
				go func(s *svc.Service) {
					defer workers.Done()
					if err := s.Serve(); err != nil {
						t.Errorf("Serve: %v", err)
					}
				}(services[i])
			}
			// The recorder orders same-node updates by Begin call order, so
			// Begin and service admission must happen atomically per node
			// (otherwise goroutine preemption between them lets the batch
			// commit values in a different order than recorded). The async
			// API splits admission from completion exactly for this.
			rec := history.NewRecorder(n)
			admit := make([]sync.Mutex, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				for c := 0; c < clients; c++ {
					i, c := i, c
					wg.Add(1)
					go func() {
						defer wg.Done()
						for k := 1; k <= each; k++ {
							v := fmt.Sprintf("v%d.%d-%d", i, c, k)
							admit[i].Lock()
							p := rec.BeginUpdate(i, v, rts[i].Now())
							tk, err := services[i].UpdateAsync([]byte(v))
							admit[i].Unlock()
							if err == nil {
								err = tk.Wait()
							}
							if err != nil {
								t.Errorf("update: %v", err)
								return
							}
							p.End(rts[i].Now())
							admit[i].Lock()
							ps := rec.BeginScan(i, rts[i].Now())
							tk, err = services[i].ScanAsync()
							admit[i].Unlock()
							if err == nil {
								err = tk.Wait()
							}
							if err != nil {
								t.Errorf("scan: %v", err)
								return
							}
							ps.EndScan(harness.SnapStrings(tk.Snap()), rts[i].Now())
						}
					}()
				}
			}
			wg.Wait()
			for _, s := range services {
				s.Close()
			}
			workers.Wait()
			h := rec.History()
			if alg == "sso" {
				if rep := h.CheckSequentiallyConsistent(); !rep.OK {
					t.Fatalf("not sequentially consistent: %v", rep.Violations[0])
				}
				return
			}
			if rep := h.CheckLinearizable(); !rep.OK {
				t.Fatalf("not linearizable: %v", rep.Violations[0])
			}
		})
	}
}
