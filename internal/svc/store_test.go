package svc_test

import (
	"fmt"
	"testing"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/mux"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
)

// buildStores wires one Store per node over per-node muxes on a fresh
// world, spawning every shard worker. Returns the world and the stores.
func buildStores(n, f int, seed int64, shards int) (*sim.World, []*svc.Store) {
	w := sim.New(sim.Config{N: n, F: f, Seed: seed})
	stores := make([]*svc.Store, n)
	for i := 0; i < n; i++ {
		m := mux.New(w.Runtime(i))
		w.SetHandler(i, m)
		st, err := svc.NewStore(m, svc.StoreConfig{
			Shards: shards,
			NewObject: func(r rt.Runtime) (rt.Handler, svc.Object) {
				nd := engine.MustLookup("eqaso").New(r)
				return nd, nd
			},
		})
		if err != nil {
			panic(err)
		}
		stores[i] = st
		for j, s := range st.Services() {
			s := s
			w.GoNode(fmt.Sprintf("store-%d/%d", i, j), i, func(p *sim.Proc) { _ = s.Serve() })
		}
	}
	return w, stores
}

// TestStoreEndToEnd: keys written by different nodes are visible
// cluster-wide, values written in earlier batches survive later batches
// to the same shard (cumulative segments), and overwrites win.
func TestStoreEndToEnd(t *testing.T) {
	const n, f, shards = 3, 1, 2
	w, stores := buildStores(n, f, 31, shards)
	writersDone := 0
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 2; i++ {
		i := i
		w.GoNode(fmt.Sprintf("writer-%d", i), i, func(p *sim.Proc) {
			defer func() { writersDone++ }()
			// Sequential writes: every key lands in its own batch, so a
			// later batch to the same shard must not evict earlier keys.
			for _, k := range keys {
				if err := stores[i].Update(k, []byte(fmt.Sprintf("%s@%d", k, i))); err != nil {
					t.Errorf("update %s: %v", k, err)
					return
				}
			}
			// Overwrite one key; the new value must win.
			if err := stores[i].Update("alpha", []byte(fmt.Sprintf("alpha2@%d", i))); err != nil {
				t.Errorf("overwrite: %v", err)
			}
		})
	}
	w.GoNode("reader", 2, func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("writers done", func() bool { return writersDone == 2 })
		for _, k := range keys {
			vals, err := stores[2].Scan(k)
			if err != nil {
				t.Errorf("scan %s: %v", k, err)
				return
			}
			for i := 0; i < 2; i++ {
				want := fmt.Sprintf("%s@%d", k, i)
				if k == "alpha" {
					want = fmt.Sprintf("alpha2@%d", i)
				}
				if string(vals[i]) != want {
					t.Errorf("scan(%s)[%d] = %q, want %q", k, i, vals[i], want)
				}
			}
			if vals[2] != nil {
				t.Errorf("scan(%s)[2] = %q, want nil (node 2 never wrote)", k, vals[2])
			}
		}
		for _, st := range stores {
			st.Close()
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreShardRouting: the key hash is deterministic, identical across
// stores, and spreads keys over every shard.
func TestStoreShardRouting(t *testing.T) {
	w, stores := buildStores(2, 0, 32, 4)
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		sh := stores[0].ShardFor(k)
		if sh < 0 || sh >= stores[0].Shards() {
			t.Fatalf("ShardFor(%s) = %d out of range", k, sh)
		}
		if got := stores[1].ShardFor(k); got != sh {
			t.Fatalf("ShardFor(%s) differs across nodes: %d vs %d", k, sh, got)
		}
		seen[sh] = true
	}
	if len(seen) != 4 {
		t.Errorf("64 keys reached only shards %v, want all 4", seen)
	}
	for _, st := range stores {
		st.Close()
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConfigErrors: invalid configurations and duplicate channel
// prefixes are reported, not silently absorbed.
func TestStoreConfigErrors(t *testing.T) {
	w := sim.New(sim.Config{N: 1, F: 0, Seed: 33})
	m := mux.New(w.Runtime(0))
	mk := func(r rt.Runtime) (rt.Handler, svc.Object) {
		nd := engine.MustLookup("eqaso").New(r)
		return nd, nd
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{}); err == nil {
		t.Error("missing NewObject must error")
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{
		NewObject: mk,
		Options:   svc.Options{Coalesce: func(p [][]byte) []byte { return nil }},
	}); err == nil {
		t.Error("reserved Coalesce must error")
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{NewObject: mk}); err != nil {
		t.Fatalf("first store: %v", err)
	}
	// Same prefix again: the mux channel collision must surface as an
	// error (through BindErr), not a panic or a silent overwrite.
	if _, err := svc.NewStore(m, svc.StoreConfig{NewObject: mk}); err == nil {
		t.Error("duplicate prefix must error")
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{NewObject: mk, Prefix: "other"}); err != nil {
		t.Errorf("distinct prefix must succeed: %v", err)
	}
}

// TestMergeKeysDeterministic: MergeKeys yields the sorted, deduplicated
// union regardless of segment order or per-segment key order — the
// property cut dumps rely on for byte-identical output.
func TestMergeKeysDeterministic(t *testing.T) {
	seg := func(keys ...string) []byte {
		recs := make([]svc.Record, len(keys))
		for i, k := range keys {
			recs[i] = svc.Record{K: k, V: []byte("v-" + k)}
		}
		return svc.EncodeRecords(recs)
	}
	// Same key sets, different write orders and segment orders.
	a := [][]byte{seg("zeta", "alpha", "mu"), seg("beta", "alpha"), nil}
	b := [][]byte{nil, seg("alpha", "beta"), seg("mu", "zeta", "alpha")}
	want := []string{"alpha", "beta", "mu", "zeta"}
	for _, segs := range [][][]byte{a, b} {
		got := svc.MergeKeys(segs)
		if len(got) != len(want) {
			t.Fatalf("MergeKeys = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MergeKeys = %v, want %v", got, want)
			}
		}
	}
	if got := svc.MergeKeys(nil); len(got) != 0 {
		t.Errorf("MergeKeys(nil) = %v, want empty", got)
	}
}

// TestRecordsRoundTrip: the exported record codec round-trips, including
// the nil-vs-empty value edge the wire layer flattens.
func TestRecordsRoundTrip(t *testing.T) {
	in := []svc.Record{{K: "a", V: []byte("x")}, {K: "b", V: nil}, {K: "", V: []byte{}}}
	out := svc.DecodeRecords(svc.EncodeRecords(in))
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].K != in[i].K || string(out[i].V) != string(in[i].V) {
			t.Errorf("record %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	if got := svc.DecodeRecords([]byte{0xff, 0x01}); got != nil {
		t.Errorf("corrupt payload decoded to %v, want nil", got)
	}
}

// TestStoreKeysAndScanAll: Keys and ScanAll enumerate the full keyed
// contents across shards in sorted order, with per-node value vectors
// from the owning shard's snapshot; order is stable across repeated calls.
func TestStoreKeysAndScanAll(t *testing.T) {
	const n, f, shards = 3, 1, 4
	w, stores := buildStores(n, f, 34, shards)
	keys := []string{"zeta", "alpha", "mu", "beta", "omega", "kappa"}
	writersDone := 0
	for i := 0; i < 2; i++ {
		i := i
		w.GoNode(fmt.Sprintf("writer-%d", i), i, func(p *sim.Proc) {
			defer func() { writersDone++ }()
			// Writers insert in opposite orders so first-write segment
			// order differs between nodes; enumeration must not care.
			ks := keys
			if i == 1 {
				ks = make([]string, len(keys))
				for j, k := range keys {
					ks[len(keys)-1-j] = k
				}
			}
			for _, k := range ks {
				if err := stores[i].Update(k, []byte(fmt.Sprintf("%s@%d", k, i))); err != nil {
					t.Errorf("update %s: %v", k, err)
					return
				}
			}
		})
	}
	w.GoNode("reader", 2, func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("writers done", func() bool { return writersDone == 2 })
		got, err := stores[2].Keys()
		if err != nil {
			t.Errorf("Keys: %v", err)
			return
		}
		want := []string{"alpha", "beta", "kappa", "mu", "omega", "zeta"}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("Keys = %v, want %v", got, want)
		}
		all, err := stores[2].ScanAll()
		if err != nil {
			t.Errorf("ScanAll: %v", err)
			return
		}
		if len(all) != len(want) {
			t.Fatalf("ScanAll returned %d keys, want %d", len(all), len(want))
		}
		for i, kv := range all {
			if kv.Key != want[i] {
				t.Errorf("ScanAll[%d].Key = %q, want %q (sorted)", i, kv.Key, want[i])
			}
			for node := 0; node < 2; node++ {
				wantV := fmt.Sprintf("%s@%d", kv.Key, node)
				if string(kv.Vals[node]) != wantV {
					t.Errorf("ScanAll[%s].Vals[%d] = %q, want %q", kv.Key, node, kv.Vals[node], wantV)
				}
			}
			if kv.Vals[2] != nil {
				t.Errorf("ScanAll[%s].Vals[2] = %q, want nil", kv.Key, kv.Vals[2])
			}
		}
		again, err := stores[2].ScanAll()
		if err != nil {
			t.Errorf("ScanAll again: %v", err)
			return
		}
		if fmt.Sprint(all) != fmt.Sprint(again) {
			t.Errorf("ScanAll not order-stable across calls")
		}
		for _, st := range stores {
			st.Close()
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}
