package svc_test

import (
	"fmt"
	"testing"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/mux"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
)

// buildStores wires one Store per node over per-node muxes on a fresh
// world, spawning every shard worker. Returns the world and the stores.
func buildStores(n, f int, seed int64, shards int) (*sim.World, []*svc.Store) {
	w := sim.New(sim.Config{N: n, F: f, Seed: seed})
	stores := make([]*svc.Store, n)
	for i := 0; i < n; i++ {
		m := mux.New(w.Runtime(i))
		w.SetHandler(i, m)
		st, err := svc.NewStore(m, svc.StoreConfig{
			Shards: shards,
			NewObject: func(r rt.Runtime) (rt.Handler, svc.Object) {
				nd := eqaso.New(r)
				return nd, nd
			},
		})
		if err != nil {
			panic(err)
		}
		stores[i] = st
		for j, s := range st.Services() {
			s := s
			w.GoNode(fmt.Sprintf("store-%d/%d", i, j), i, func(p *sim.Proc) { _ = s.Serve() })
		}
	}
	return w, stores
}

// TestStoreEndToEnd: keys written by different nodes are visible
// cluster-wide, values written in earlier batches survive later batches
// to the same shard (cumulative segments), and overwrites win.
func TestStoreEndToEnd(t *testing.T) {
	const n, f, shards = 3, 1, 2
	w, stores := buildStores(n, f, 31, shards)
	writersDone := 0
	keys := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < 2; i++ {
		i := i
		w.GoNode(fmt.Sprintf("writer-%d", i), i, func(p *sim.Proc) {
			defer func() { writersDone++ }()
			// Sequential writes: every key lands in its own batch, so a
			// later batch to the same shard must not evict earlier keys.
			for _, k := range keys {
				if err := stores[i].Update(k, []byte(fmt.Sprintf("%s@%d", k, i))); err != nil {
					t.Errorf("update %s: %v", k, err)
					return
				}
			}
			// Overwrite one key; the new value must win.
			if err := stores[i].Update("alpha", []byte(fmt.Sprintf("alpha2@%d", i))); err != nil {
				t.Errorf("overwrite: %v", err)
			}
		})
	}
	w.GoNode("reader", 2, func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("writers done", func() bool { return writersDone == 2 })
		for _, k := range keys {
			vals, err := stores[2].Scan(k)
			if err != nil {
				t.Errorf("scan %s: %v", k, err)
				return
			}
			for i := 0; i < 2; i++ {
				want := fmt.Sprintf("%s@%d", k, i)
				if k == "alpha" {
					want = fmt.Sprintf("alpha2@%d", i)
				}
				if string(vals[i]) != want {
					t.Errorf("scan(%s)[%d] = %q, want %q", k, i, vals[i], want)
				}
			}
			if vals[2] != nil {
				t.Errorf("scan(%s)[2] = %q, want nil (node 2 never wrote)", k, vals[2])
			}
		}
		for _, st := range stores {
			st.Close()
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreShardRouting: the key hash is deterministic, identical across
// stores, and spreads keys over every shard.
func TestStoreShardRouting(t *testing.T) {
	w, stores := buildStores(2, 0, 32, 4)
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		sh := stores[0].ShardFor(k)
		if sh < 0 || sh >= stores[0].Shards() {
			t.Fatalf("ShardFor(%s) = %d out of range", k, sh)
		}
		if got := stores[1].ShardFor(k); got != sh {
			t.Fatalf("ShardFor(%s) differs across nodes: %d vs %d", k, sh, got)
		}
		seen[sh] = true
	}
	if len(seen) != 4 {
		t.Errorf("64 keys reached only shards %v, want all 4", seen)
	}
	for _, st := range stores {
		st.Close()
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConfigErrors: invalid configurations and duplicate channel
// prefixes are reported, not silently absorbed.
func TestStoreConfigErrors(t *testing.T) {
	w := sim.New(sim.Config{N: 1, F: 0, Seed: 33})
	m := mux.New(w.Runtime(0))
	mk := func(r rt.Runtime) (rt.Handler, svc.Object) {
		nd := eqaso.New(r)
		return nd, nd
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{}); err == nil {
		t.Error("missing NewObject must error")
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{
		NewObject: mk,
		Options:   svc.Options{Coalesce: func(p [][]byte) []byte { return nil }},
	}); err == nil {
		t.Error("reserved Coalesce must error")
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{NewObject: mk}); err != nil {
		t.Fatalf("first store: %v", err)
	}
	// Same prefix again: the mux channel collision must surface as an
	// error (through BindErr), not a panic or a silent overwrite.
	if _, err := svc.NewStore(m, svc.StoreConfig{NewObject: mk}); err == nil {
		t.Error("duplicate prefix must error")
	}
	if _, err := svc.NewStore(m, svc.StoreConfig{NewObject: mk, Prefix: "other"}); err != nil {
		t.Errorf("distinct prefix must succeed: %v", err)
	}
}
