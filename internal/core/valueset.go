package core

import (
	"math"
	"sort"
)

// MaxTag is a tag larger than any real tag; passing it as a bound means
// "no tag restriction" (the one-shot case of Section III-C).
const MaxTag Tag = math.MaxInt64

// ValueSet is a mutable set of values keyed by timestamp. V_i[j] in the
// paper is a ValueSet: the values node i has received from node j.
//
// The long-running algorithms (eqaso, byzaso) now keep their state in the
// history-independent ValueLog instead; ValueSet remains the reference
// implementation — O(H) scans, but obviously correct — used by the
// one-shot lattice-agreement packages, the baselines, and the
// differential/fuzz tests that check the log against it.
type ValueSet struct {
	m map[Timestamp][]byte
}

// NewValueSet returns an empty set.
func NewValueSet() *ValueSet { return &ValueSet{m: make(map[Timestamp][]byte)} }

// Add inserts v and reports whether it was new.
func (s *ValueSet) Add(v Value) bool {
	if _, ok := s.m[v.TS]; ok {
		return false
	}
	s.m[v.TS] = v.Payload
	return true
}

// Has reports membership by timestamp.
func (s *ValueSet) Has(ts Timestamp) bool {
	_, ok := s.m[ts]
	return ok
}

// Get returns the payload stored under ts.
func (s *ValueSet) Get(ts Timestamp) ([]byte, bool) {
	p, ok := s.m[ts]
	return p, ok
}

// Len returns the set size.
func (s *ValueSet) Len() int { return len(s.m) }

// CountLE counts values with tag ≤ r.
func (s *ValueSet) CountLE(r Tag) int {
	c := 0
	for ts := range s.m {
		if ts.Tag <= r {
			c++
		}
	}
	return c
}

// ViewLE returns an immutable snapshot of the values with tag ≤ r,
// sorted by timestamp. This realizes V[j]^{≤r}.
func (s *ValueSet) ViewLE(r Tag) View {
	out := make([]Value, 0, len(s.m))
	for ts, p := range s.m {
		if ts.Tag <= r {
			out = append(out, Value{TS: ts, Payload: p})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TS.Less(out[j].TS) })
	return ViewOf(out...)
}

// AllView returns a snapshot of the whole set.
func (s *ValueSet) AllView() View { return s.ViewLE(MaxTag) }

// EQ evaluates the predicate EQ(V^{≤r}, self) of Definition 6 from scratch:
// true iff at least quorum nodes j have V[j]^{≤r} = V[self]^{≤r}. Because
// every value received from any j is also added to V[self] (line 40 of
// Algorithm 1), V[j] ⊆ V[self] holds as an invariant maintained by the
// algorithms, so set equality reduces to cardinality equality.
func EQ(V []*ValueSet, self, quorum int, r Tag) (bool, View) {
	target := V[self].CountLE(r)
	matches := 0
	for _, vs := range V {
		if vs.CountLE(r) == target {
			matches++
		}
	}
	if matches >= quorum {
		return true, V[self].ViewLE(r)
	}
	return false, View{}
}

// EQTracker tracks the EQ(V^{≤r}, self) predicate incrementally during one
// lattice operation, so each incoming value costs O(1) and each predicate
// evaluation costs O(n) instead of rescanning every set.
type EQTracker struct {
	R       Tag
	self    int
	quorum  int
	cntSelf int
	cnt     []int
}

// NewEQTracker scans the current sets once and returns a tracker for
// EQ(V^{≤r}, self) with the given quorum size (n-f).
func NewEQTracker(V []*ValueSet, self int, r Tag, quorum int) *EQTracker {
	t := &EQTracker{R: r, self: self, quorum: quorum, cnt: make([]int, len(V))}
	t.cntSelf = V[self].CountLE(r)
	for j, vs := range V {
		t.cnt[j] = vs.CountLE(r)
	}
	return t
}

// OnAdd must be called after the handler inserts value v into V[j] (and
// V[self]); newToJ/newToSelf report whether each insertion was new.
func (t *EQTracker) OnAdd(j int, v Value, newToJ, newToSelf bool) {
	if v.TS.Tag > t.R {
		return
	}
	if newToJ {
		t.cnt[j]++
	}
	if j == t.self {
		if newToJ {
			t.cntSelf++
		}
		return
	}
	if newToSelf {
		t.cnt[t.self]++
		t.cntSelf++
	}
}

// Satisfied reports whether the equivalence quorum exists.
func (t *EQTracker) Satisfied() bool {
	matches := 0
	for _, c := range t.cnt {
		if c == t.cntSelf {
			matches++
		}
	}
	return matches >= t.quorum
}
