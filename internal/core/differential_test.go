package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// Differential harness: drive a ValueLog and the reference per-peer
// ValueSets (the map engine) through the same operation stream and check
// that every query agrees. The stream is decoded from bytes so the same
// harness serves the property test (random seeds) and the fuzz target.
//
// Payloads are a function of the timestamp, matching the protocol
// invariant that a timestamp names exactly one written value.

const diffNodes = 5

type diffState struct {
	log  *ValueLog
	sets []*ValueSet // sets[j] mirrors V[j]; self is node 0
	// GC bookkeeping: the oracle never prunes, so the harness remembers
	// which timestamps the log garbage-collected and the tag floor below
	// which the equivalence contract no longer applies.
	pruned map[Timestamp]bool
	floor  Tag
}

func newDiffState() *diffState {
	d := &diffState{
		log:    NewValueLog(diffNodes, 0),
		sets:   make([]*ValueSet, diffNodes),
		pruned: make(map[Timestamp]bool),
	}
	for j := range d.sets {
		d.sets[j] = NewValueSet()
	}
	return d
}

func diffValue(tag Tag, w int) Value {
	return Value{TS: Timestamp{Tag: tag, Writer: w}, Payload: []byte(fmt.Sprintf("p%d-%d", tag, w))}
}

// step decodes one operation from data[i:] and applies it to both
// engines, returning the number of bytes consumed (0 when exhausted).
func (d *diffState) step(data []byte, i int) int {
	if i+3 >= len(data) {
		return 0
	}
	op, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
	switch op % 8 {
	case 5:
		// Global vouch + GC: deliver the full retained view to every peer
		// in both engines — modelling the catch-up a real vouch round
		// implies (NoteVouch advances cursors only for values every node
		// provably holds) — then prune below the current frontier.
		all := d.log.AllView()
		for j := 1; j < diffNodes; j++ {
			all.Each(func(v Value) {
				d.log.Add(j, v)
				d.sets[j].Add(v)
			})
		}
		ck := d.log.Frontier()
		if idx := ck.Count - d.log.PrunedCount(); idx > 0 {
			for k := 0; k < idx; k++ {
				d.pruned[all.At(k).TS] = true
			}
			if !d.log.PruneTo(ck) {
				panic(fmt.Sprintf("PruneTo refused globally-vouched %+v", ck))
			}
			if ck.Tag > d.floor {
				d.floor = ck.Tag
			}
		}
	case 6:
		// Advance the frontier, as a good lattice operation would.
		d.log.AdvanceFrontier(Tag(1 + a%64))
	case 7:
		// Checkpoint round-trip: split a view at the frontier and
		// recompose it; the result must equal the original.
		ck := d.log.Frontier()
		view := d.log.ViewLE(Tag(1 + a%64))
		if delta, ok := d.log.DeltaAbove(view, ck); ok {
			if got, ok2 := d.log.ComposeAt(ck, delta); !ok2 || !got.Equal(view) {
				panic(fmt.Sprintf("compose(%+v) != original view %v", ck, view))
			}
		}
	default:
		// Value arrival from src: into V[src] and V[self], both engines.
		src := int(a) % diffNodes
		v := diffValue(Tag(1+b%64), int(c)%diffNodes)
		if v.TS.Tag <= d.floor && !d.log.Has(v.TS) {
			// A new value at or below a pruned checkpoint tag: the
			// protocol cannot produce one (new tags always exceed vouched
			// frontiers) and the log rejects it, so skip both engines.
			return 4
		}
		d.log.Add(src, v)
		d.sets[src].Add(v)
		d.sets[0].Add(v)
	}
	return 4
}

// retained filters the oracle's view down to the values the log still
// holds physically, so physical view comparisons stay meaningful after GC.
func (d *diffState) retained(mv View) View {
	if len(d.pruned) == 0 {
		return mv
	}
	var out []Value
	mv.Each(func(v Value) {
		if !d.pruned[v.TS] {
			out = append(out, v)
		}
	})
	return ViewOf(out...)
}

func (d *diffState) check(t *testing.T) {
	t.Helper()
	if got, want := d.log.SelfLen(), d.sets[0].Len(); got != want {
		t.Fatalf("SelfLen: log %d, map %d", got, want)
	}
	for j := 0; j < diffNodes; j++ {
		if got, want := d.log.Len(j), d.sets[j].Len(); got != want {
			t.Fatalf("Len(%d): log %d, map %d", j, got, want)
		}
		for _, r := range []Tag{0, 3, 17, 40, 64, MaxTag} {
			if r < d.floor {
				continue // below the pruned checkpoint: out of contract
			}
			if got, want := d.log.CountLE(j, r), d.sets[j].CountLE(r); got != want {
				t.Fatalf("CountLE(%d, %d): log %d, map %d", j, r, got, want)
			}
			lv, mv := d.log.PeerViewLE(j, r), d.sets[j].ViewLE(r)
			if !lv.Equal(d.retained(mv)) {
				t.Fatalf("PeerViewLE(%d, %d): log %v, map %v", j, r, lv, mv)
			}
			// Extraction must stay exact across GC: the pruned-prefix
			// summary stands in for the physically absent values.
			le, me := lv.Extract(diffNodes), mv.Extract(diffNodes)
			for w := range le {
				if !bytes.Equal(le[w], me[w]) {
					t.Fatalf("PeerViewLE(%d, %d).Extract[%d]: log %q, map %q", j, r, w, le[w], me[w])
				}
			}
		}
	}
	for _, r := range []Tag{0, 11, 32, 64, MaxTag} {
		if r < d.floor {
			continue
		}
		lv, mv := d.log.ViewLE(r), d.sets[0].ViewLE(r)
		if !lv.Equal(d.retained(mv)) {
			t.Fatalf("ViewLE(%d): log %v, map %v", r, lv, mv)
		}
		if got, want := lv.LogicalLen(), mv.Len(); got != want {
			t.Fatalf("ViewLE(%d).LogicalLen: log %d, map %d", r, got, want)
		}
		le, me := lv.Extract(diffNodes), mv.Extract(diffNodes)
		for w := range le {
			if !bytes.Equal(le[w], me[w]) {
				t.Fatalf("Extract(%d)[%d]: log %q, map %q", r, w, le[w], me[w])
			}
		}
		// EQ-tracker equivalence: both constructions must agree on the
		// predicate at every quorum size.
		for q := 1; q <= diffNodes; q++ {
			lt := NewEQTrackerFromLog(d.log, r, q)
			mt := NewEQTracker(d.sets, 0, r, q)
			if lt.Satisfied() != mt.Satisfied() {
				t.Fatalf("EQTracker(r=%d, q=%d): log %v, map %v", r, q, lt.Satisfied(), mt.Satisfied())
			}
		}
	}
	// Membership must agree on every timestamp either engine can hold;
	// garbage-collected timestamps must be physically gone from the log.
	for tag := Tag(1); tag <= 64; tag++ {
		for w := 0; w < diffNodes; w++ {
			ts := Timestamp{Tag: tag, Writer: w}
			lp, lok := d.log.Get(ts)
			if d.pruned[ts] {
				if lok {
					t.Fatalf("Get(%v): pruned value still physically present", ts)
				}
				continue
			}
			mp, mok := d.sets[0].Get(ts)
			if lok != mok || !bytes.Equal(lp, mp) {
				t.Fatalf("Get(%v): log (%q,%v), map (%q,%v)", ts, lp, lok, mp, mok)
			}
		}
	}
}

// run replays a whole byte stream, checking equivalence periodically and
// at the end.
func diffRun(t *testing.T, data []byte) {
	t.Helper()
	d := newDiffState()
	steps := 0
	for i := 0; ; steps++ {
		n := d.step(data, i)
		if n == 0 {
			break
		}
		i += n
		if steps%32 == 31 {
			d.check(t)
		}
	}
	d.check(t)
}

func TestValueLogDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 64+rng.Intn(2048))
		rng.Read(data)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { diffRun(t, data) })
	}
}

// TestValueLogDifferentialAdversarial replays hand-picked streams that
// exercise the structurally interesting paths: inserts below the frontier
// (copy-on-write), prefix demotions, and straggler absorption.
func TestValueLogDifferentialAdversarial(t *testing.T) {
	add := func(src, tag, w byte) []byte { return []byte{0, src, tag - 1, w} }
	freeze := func(tag byte) []byte { return []byte{6, tag - 1, 0, 0} }
	compose := func(tag byte) []byte { return []byte{7, tag - 1, 0, 0} }
	prune := []byte{5, 0, 0, 0}
	var stream []byte
	// Build a prefix, freeze it, then land older values under it.
	for tag := byte(10); tag <= 30; tag += 2 {
		stream = append(stream, add(1, tag, 1)...)
	}
	stream = append(stream, freeze(30)...)
	for tag := byte(9); tag >= 3; tag -= 2 {
		stream = append(stream, add(2, tag, 2)...) // COW inserts
	}
	stream = append(stream, compose(30)...)
	// Peer 1 receives the stragglers out of order, then the gap filler.
	stream = append(stream, add(1, 40, 3)...)
	stream = append(stream, add(1, 36, 4)...)
	stream = append(stream, add(1, 38, 0)...)
	stream = append(stream, freeze(40)...)
	stream = append(stream, compose(64)...)
	// Garbage-collect below the vouched frontier, keep writing above it,
	// freeze and prune again (cumulative pre-extract), then compose on the
	// pruned log.
	stream = append(stream, prune...)
	stream = append(stream, add(3, 50, 2)...)
	stream = append(stream, add(3, 44, 1)...)
	stream = append(stream, add(1, 47, 0)...)
	stream = append(stream, freeze(50)...)
	stream = append(stream, compose(64)...)
	stream = append(stream, prune...)
	stream = append(stream, add(2, 60, 4)...)
	stream = append(stream, compose(64)...)
	diffRun(t, stream)
}

// FuzzValueSetEquivalence feeds arbitrary operation streams through both
// engines; any query disagreement fails the run. This is the CI-bounded
// guard that the history-independent log stays observationally equal to
// the reference map implementation.
func FuzzValueSetEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 5, 2, 6, 10, 0, 0, 0, 2, 3, 1, 7, 63, 0, 0})
	// Truncation events: build, freeze, prune (5), keep writing, re-prune.
	f.Add([]byte{0, 1, 9, 1, 0, 2, 14, 2, 6, 20, 0, 0, 5, 0, 0, 0, 0, 3, 30, 3, 6, 40, 0, 0, 5, 0, 0, 0, 7, 63, 0, 0})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4; i++ {
		data := make([]byte, 128)
		rng.Read(data)
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			t.Skip("bounded input")
		}
		diffRun(t, data)
	})
}
