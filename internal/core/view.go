package core

import "sort"

// View is an immutable set of values, sorted by timestamp. Views are what
// good lattice operations return and what SCANs extract their vectors from
// (Definition 9).
//
// A View is stored as two sorted segments: base, a shared immutable prefix
// of a node's value log (never mutated in place once handed out — the log
// copies on write for below-frontier inserts), and tail, a small owned
// slice of values whose timestamps are all strictly greater than every
// timestamp in base. Views cut directly from a frozen log prefix are
// zero-copy: base aliases the log's backing array and tail is empty.
// Callers must treat both segments as read-only.
type View struct {
	base []Value
	tail []Value
	// ext, when set, caches the per-writer latest value over base, so
	// Extract only walks tail. It is published by the owning ValueLog
	// together with base and is immutable.
	ext *baseExtract
	// pre, when set, summarizes a garbage-collected log prefix that the
	// view logically includes but no longer holds physically: for each
	// writer, the latest pruned value. Every pruned timestamp sorts below
	// every value in base/tail. pruned counts the values the summary
	// stands for (the view's logical length is pruned + Len()).
	pre    *baseExtract
	pruned int
}

// baseExtract is the cached extract(base) of a frozen log prefix: for each
// writer, the largest tag (−1 = none) and its payload.
type baseExtract struct {
	tags []Tag
	pays [][]byte
}

// ViewOf builds a view from values already sorted by timestamp. The slice
// is retained, not copied.
func ViewOf(vals ...Value) View { return View{tail: vals} }

// Len returns the number of values the view holds physically. A view cut
// from a pruned log logically also includes the pruned prefix (see
// LogicalLen); Len, At, Each and the subset relations see only the
// physical values.
func (v View) Len() int { return len(v.base) + len(v.tail) }

// LogicalLen returns the number of values the view stands for, counting
// the garbage-collected prefix it summarizes. Two good views from logs
// with different prune points compare correctly by logical length where
// physical Len would mislead.
func (v View) LogicalLen() int { return v.pruned + v.Len() }

// Pruned returns the number of summarized (physically absent) values.
func (v View) Pruned() int { return v.pruned }

// At returns the i-th value in timestamp order.
func (v View) At(i int) Value {
	if i < len(v.base) {
		return v.base[i]
	}
	return v.tail[i-len(v.base)]
}

// Values returns the view's values as one sorted slice. When the view is a
// single segment the underlying array is returned without copying; treat
// the result as read-only.
func (v View) Values() []Value {
	switch {
	case len(v.tail) == 0:
		return v.base
	case len(v.base) == 0:
		return v.tail
	}
	out := make([]Value, 0, v.Len())
	out = append(out, v.base...)
	return append(out, v.tail...)
}

// Each calls fn for every value in timestamp order.
func (v View) Each(fn func(Value)) {
	for i := range v.base {
		fn(v.base[i])
	}
	for i := range v.tail {
		fn(v.tail[i])
	}
}

// Timestamps returns the view's timestamps, in order.
func (v View) Timestamps() []Timestamp {
	out := make([]Timestamp, 0, v.Len())
	for i := range v.base {
		out = append(out, v.base[i].TS)
	}
	for i := range v.tail {
		out = append(out, v.tail[i].TS)
	}
	return out
}

// searchSeg returns the position of the first value in seg whose timestamp
// is not less than ts.
func searchSeg(seg []Value, ts Timestamp) int {
	return sort.Search(len(seg), func(i int) bool { return !seg[i].TS.Less(ts) })
}

// Contains reports whether the view holds a value with timestamp ts.
func (v View) Contains(ts Timestamp) bool {
	seg := v.base
	if len(v.base) == 0 || v.base[len(v.base)-1].TS.Less(ts) {
		seg = v.tail
	}
	i := searchSeg(seg, ts)
	return i < len(seg) && seg[i].TS == ts
}

// Covers reports whether the view holds ts physically or its garbage-
// collected prefix held it. The pruned prefix is a timestamp-order prefix
// of the log, so for a value that exists, a latest-pruned tag for its
// writer at or above ts.Tag proves ts was inside the prefix (per-writer
// channels are FIFO: every earlier tag of that writer was delivered and
// sorted below). Callers must only pass timestamps of values actually
// written (the SSO passes its own just-written timestamps).
func (v View) Covers(ts Timestamp) bool {
	if v.Contains(ts) {
		return true
	}
	return v.pre != nil && ts.Writer >= 0 && ts.Writer < len(v.pre.tags) &&
		v.pre.tags[ts.Writer] >= ts.Tag
}

// sameBacking reports whether a and b alias the same backing array start,
// i.e. they are prefixes of the same frozen log array and therefore agree
// on their common prefix.
func sameBacking(a, b []Value) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// SubsetOf reports v ⊆ o (by timestamp). When both views cut their base
// from the same log array the shared prefix is skipped without comparing,
// making containment checks between sibling views O(tail).
func (v View) SubsetOf(o View) bool {
	if v.Len() > o.Len() {
		return false
	}
	start := 0
	if sameBacking(v.base, o.base) {
		start = len(v.base)
		if len(o.base) < start {
			start = len(o.base)
		}
	}
	i := start
	for k := start; k < v.Len(); k++ {
		ts := v.At(k).TS
		for i < o.Len() && o.At(i).TS.Less(ts) {
			i++
		}
		if i >= o.Len() || o.At(i).TS != ts {
			return false
		}
		i++
	}
	return true
}

// ComparableWith reports v ⊆ o or o ⊆ v — the comparability at the heart
// of Lemma 1 and Lemma 2.
func (v View) ComparableWith(o View) bool {
	return v.SubsetOf(o) || o.SubsetOf(v)
}

// Equal reports that v and o hold exactly the same timestamps.
func (v View) Equal(o View) bool {
	return v.Len() == o.Len() && v.SubsetOf(o)
}

// Extract implements the extract(S) procedure (lines 31–34 of Algorithm 1):
// for each node j, the payload with the largest tag among j's values in the
// view; nil marks ⊥ (no value). When the view carries a cached base
// extract (views cut from a frozen log prefix do), only the tail is
// walked, so SCAN extraction is O(n + |tail|) instead of O(H).
func (v View) Extract(n int) [][]byte {
	snap := make([][]byte, n)
	best := make([]Tag, n)
	for i := range best {
		best[i] = -1
	}
	start := 0
	switch {
	case v.ext != nil && len(v.ext.tags) <= n:
		// The base extract already folds in any pruned prefix (the master
		// extract is cumulative and never truncated), so pre is subsumed.
		copy(best, v.ext.tags)
		copy(snap, v.ext.pays)
		start = len(v.base)
	case v.pre != nil && len(v.pre.tags) <= n:
		copy(best, v.pre.tags)
		copy(snap, v.pre.pays)
	}
	for k := start; k < v.Len(); k++ {
		val := v.At(k)
		w := val.TS.Writer
		if w < 0 || w >= n {
			continue // defensive: ignore out-of-range writers
		}
		if val.TS.Tag > best[w] {
			best[w] = val.TS.Tag
			snap[w] = val.Payload
		}
	}
	return snap
}

// Standalone flattens the view into one that depends on no pruned-prefix
// summary: each writer's latest pruned value is materialized as a real
// value ahead of the retained ones (every pruned timestamp sorts below
// every retained one, so the result stays sorted). The materialized view
// approximates the original — intermediate pruned values are gone — but
// extracts identically, which is what wire-encoded full views and rejoin
// replies need.
func (v View) Standalone() View {
	if v.pre == nil || v.pruned == 0 {
		return v
	}
	var pv []Value
	for w, tag := range v.pre.tags {
		if tag >= 0 {
			pv = append(pv, Value{TS: Timestamp{Tag: tag, Writer: w}, Payload: v.pre.pays[w]})
		}
	}
	sort.Slice(pv, func(i, j int) bool { return pv[i].TS.Less(pv[j].TS) })
	out := make([]Value, 0, len(pv)+v.Len())
	out = append(out, pv...)
	v.Each(func(val Value) { out = append(out, val) })
	return ViewOf(out...)
}

func (v View) String() string {
	s := "{"
	first := true
	v.Each(func(val Value) {
		if !first {
			s += " "
		}
		first = false
		s += val.TS.String()
	})
	return s + "}"
}
