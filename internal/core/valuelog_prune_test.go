package core

import (
	"bytes"
	"testing"
)

// pruneFixture builds a 3-node log where every peer holds the full
// prefix (cursors advanced via NoteVouch), frozen through tag fr.
func pruneFixture(t *testing.T, tags []Tag, fr Tag) *ValueLog {
	t.Helper()
	l := NewValueLog(3, 0)
	for _, tag := range tags {
		v := diffValue(tag, int(tag)%3)
		l.Add(1, v)
		l.Add(2, v)
	}
	l.AdvanceFrontier(fr)
	ck := l.Frontier()
	for j := 1; j < 3; j++ {
		if !l.NoteVouch(j, ck) {
			t.Fatalf("NoteVouch(%d, %+v) refused", j, ck)
		}
	}
	return l
}

func TestPruneToBasic(t *testing.T) {
	l := pruneFixture(t, []Tag{2, 4, 6, 8, 10, 12}, 8)
	ck := l.Frontier()
	if ck.Count != 4 {
		t.Fatalf("frontier count = %d, want 4", ck.Count)
	}
	pre := l.AllView()
	preExtract := pre.Extract(3)
	if !l.PruneTo(ck) {
		t.Fatal("PruneTo refused a fully-vouched checkpoint")
	}
	if got := l.PrunedCount(); got != 4 {
		t.Fatalf("PrunedCount = %d, want 4", got)
	}
	if got := l.RetainedLen(); got != 2 {
		t.Fatalf("RetainedLen = %d, want 2", got)
	}
	if got := l.SelfLen(); got != 6 {
		t.Fatalf("SelfLen = %d, want 6 (absolute)", got)
	}
	for j := 0; j < 3; j++ {
		if got := l.Len(j); got != 6 {
			t.Fatalf("Len(%d) = %d, want 6", j, got)
		}
		if got := l.CountLE(j, 8); got != 4 {
			t.Fatalf("CountLE(%d, 8) = %d, want 4", j, got)
		}
	}
	// The pruned checkpoint itself must still be vouchable, and the
	// frontier must be unchanged in absolute terms.
	if !l.Vouches(ck) {
		t.Fatal("log no longer vouches the checkpoint it pruned to")
	}
	if got := l.Frontier(); got != ck {
		t.Fatalf("Frontier changed across prune: %+v vs %+v", got, ck)
	}
	// Extraction must be unchanged: the pre-extract stands in.
	post := l.AllView()
	if got := post.LogicalLen(); got != 6 {
		t.Fatalf("LogicalLen = %d, want 6", got)
	}
	for w, want := range preExtract {
		if got := post.Extract(3)[w]; !bytes.Equal(got, want) {
			t.Fatalf("Extract[%d] = %q, want %q", w, got, want)
		}
	}
	// Standalone must materialize each writer's latest pruned value and
	// extract identically.
	sa := post.Standalone()
	if sa.Pruned() != 0 {
		t.Fatal("Standalone view still depends on a pruned prefix")
	}
	for w, want := range preExtract {
		if got := sa.Extract(3)[w]; !bytes.Equal(got, want) {
			t.Fatalf("Standalone Extract[%d] = %q, want %q", w, got, want)
		}
	}
	// Delta round-trip across the prune point.
	if delta, ok := l.DeltaAbove(post, ck); !ok {
		t.Fatal("DeltaAbove refused the pruned checkpoint")
	} else if len(delta) != 2 {
		t.Fatalf("delta has %d values, want 2", len(delta))
	} else if got, ok2 := l.ComposeAt(ck, delta); !ok2 || !got.Equal(post) {
		t.Fatalf("ComposeAt mismatch: %v vs %v", got, post)
	}
}

func TestPruneToRefusals(t *testing.T) {
	// Lagging peer cursor: peer 2 never vouched.
	l := NewValueLog(3, 0)
	for _, tag := range []Tag{2, 4, 6} {
		l.Add(1, diffValue(tag, 1))
	}
	l.AdvanceFrontier(6)
	ck := l.Frontier()
	l.NoteVouch(1, ck)
	if l.PruneTo(ck) {
		t.Fatal("PruneTo succeeded with a lagging peer cursor")
	}
	l.NoteVouch(2, ck)
	if !l.PruneTo(ck) {
		t.Fatal("PruneTo refused after all cursors caught up")
	}
	// Empty and stale checkpoints.
	if l.PruneTo(Checkpoint{}) {
		t.Fatal("PruneTo succeeded on the zero checkpoint")
	}
	if l.PruneTo(Checkpoint{Tag: 6, Count: 3, Digest: 0xbad}) {
		t.Fatal("PruneTo succeeded on a digest mismatch")
	}
}

func TestNoteVouchAbsorbsStragglers(t *testing.T) {
	l := NewValueLog(3, 0)
	for _, tag := range []Tag{2, 4, 6, 8} {
		l.Add(0, diffValue(tag, 0))
	}
	// Peer 1 has only a straggler in the middle of the prefix.
	l.Add(1, diffValue(6, 0))
	if got := l.Len(1); got != 1 {
		t.Fatalf("Len(1) = %d, want 1", got)
	}
	l.AdvanceFrontier(8)
	ck := l.Frontier()
	if !l.NoteVouch(1, ck) {
		t.Fatal("NoteVouch refused own frontier")
	}
	if got := l.Len(1); got != 4 {
		t.Fatalf("Len(1) after vouch = %d, want 4", got)
	}
	// A foreign checkpoint must be refused.
	if l.NoteVouch(1, Checkpoint{Tag: 8, Count: 4, Digest: 0xbad}) {
		t.Fatal("NoteVouch accepted a foreign digest")
	}
}

func TestAddBelowPruneRejected(t *testing.T) {
	l := pruneFixture(t, []Tag{2, 4, 6}, 6)
	if !l.PruneTo(l.Frontier()) {
		t.Fatal("PruneTo refused")
	}
	if newJ, newSelf := l.Add(1, diffValue(3, 1)); newJ || newSelf {
		t.Fatal("Add admitted a new value below the pruned checkpoint tag")
	}
	if got := l.SelfLen(); got != 3 {
		t.Fatalf("SelfLen = %d, want 3", got)
	}
	// Values above the prune tag are unaffected.
	if _, newSelf := l.Add(1, diffValue(9, 1)); !newSelf {
		t.Fatal("Add rejected a value above the pruned checkpoint tag")
	}
}
