// Package core holds the shared data structures of the paper's equivalence
// quorum framework (Section III): tags, timestamps, value sets, views, and
// the EQ predicate (Definition 6). The crash-tolerant ASO
// (internal/eqaso), the SSO (internal/sso), the Byzantine ASO
// (internal/byzaso), and the lattice agreement algorithms (internal/la) are
// all built from these pieces.
package core

import "fmt"

// Tag is the logical tag attached to values and lattice operations.
type Tag int64

// Timestamp identifies a written value: the pair ⟨tag, writer⟩ constructed
// at line 5 of Algorithm 1 (Definition 8). Per-writer tags strictly
// increase, so a Timestamp uniquely identifies an UPDATE operation.
type Timestamp struct {
	Tag    Tag
	Writer int
}

// Less orders timestamps by (tag, writer).
func (t Timestamp) Less(o Timestamp) bool {
	if t.Tag != o.Tag {
		return t.Tag < o.Tag
	}
	return t.Writer < o.Writer
}

func (t Timestamp) String() string { return fmt.Sprintf("⟨%d,%d⟩", t.Tag, t.Writer) }

// Value is a value–timestamp pair as disseminated by "value" messages.
type Value struct {
	TS      Timestamp
	Payload []byte
}
