// Package core holds the shared data structures of the paper's equivalence
// quorum framework (Section III): tags, timestamps, value sets, views, and
// the EQ predicate (Definition 6). The crash-tolerant ASO
// (internal/eqaso), the SSO (internal/sso), the Byzantine ASO
// (internal/byzaso), and the lattice agreement algorithms (internal/la) are
// all built from these pieces.
package core

import (
	"fmt"
	"sort"
)

// Tag is the logical tag attached to values and lattice operations.
type Tag int64

// Timestamp identifies a written value: the pair ⟨tag, writer⟩ constructed
// at line 5 of Algorithm 1 (Definition 8). Per-writer tags strictly
// increase, so a Timestamp uniquely identifies an UPDATE operation.
type Timestamp struct {
	Tag    Tag
	Writer int
}

// Less orders timestamps by (tag, writer).
func (t Timestamp) Less(o Timestamp) bool {
	if t.Tag != o.Tag {
		return t.Tag < o.Tag
	}
	return t.Writer < o.Writer
}

func (t Timestamp) String() string { return fmt.Sprintf("⟨%d,%d⟩", t.Tag, t.Writer) }

// Value is a value–timestamp pair as disseminated by "value" messages.
type Value struct {
	TS      Timestamp
	Payload []byte
}

// View is an immutable set of values, sorted by timestamp. Views are what
// good lattice operations return and what SCANs extract their vectors from
// (Definition 9).
type View []Value

// Len returns the number of values in the view.
func (v View) Len() int { return len(v) }

// Timestamps returns the view's timestamps, in order.
func (v View) Timestamps() []Timestamp {
	out := make([]Timestamp, len(v))
	for i, val := range v {
		out[i] = val.TS
	}
	return out
}

// Contains reports whether the view holds a value with timestamp ts.
func (v View) Contains(ts Timestamp) bool {
	i := sort.Search(len(v), func(i int) bool { return !v[i].TS.Less(ts) })
	return i < len(v) && v[i].TS == ts
}

// SubsetOf reports v ⊆ o (by timestamp).
func (v View) SubsetOf(o View) bool {
	if len(v) > len(o) {
		return false
	}
	i := 0
	for _, val := range v {
		for i < len(o) && o[i].TS.Less(val.TS) {
			i++
		}
		if i >= len(o) || o[i].TS != val.TS {
			return false
		}
		i++
	}
	return true
}

// ComparableWith reports v ⊆ o or o ⊆ v — the comparability at the heart
// of Lemma 1 and Lemma 2.
func (v View) ComparableWith(o View) bool {
	return v.SubsetOf(o) || o.SubsetOf(v)
}

// Extract implements the extract(S) procedure (lines 31–34 of Algorithm 1):
// for each node j, the payload with the largest tag among j's values in the
// view; nil marks ⊥ (no value).
func (v View) Extract(n int) [][]byte {
	snap := make([][]byte, n)
	best := make([]Tag, n)
	for i := range best {
		best[i] = -1
	}
	for _, val := range v {
		w := val.TS.Writer
		if w < 0 || w >= n {
			continue // defensive: ignore out-of-range writers
		}
		if val.TS.Tag > best[w] {
			best[w] = val.TS.Tag
			snap[w] = val.Payload
		}
	}
	return snap
}

func (v View) String() string {
	s := "{"
	for i, val := range v {
		if i > 0 {
			s += " "
		}
		s += val.TS.String()
	}
	return s + "}"
}
