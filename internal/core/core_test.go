package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func ts(tag Tag, w int) Timestamp { return Timestamp{Tag: tag, Writer: w} }

func val(tag Tag, w int) Value {
	return Value{TS: ts(tag, w), Payload: []byte(fmt.Sprintf("v%d-%d", w, tag))}
}

func TestTimestampOrder(t *testing.T) {
	if !ts(1, 2).Less(ts(2, 1)) {
		t.Fatal("tag dominates")
	}
	if !ts(1, 1).Less(ts(1, 2)) {
		t.Fatal("writer breaks ties")
	}
	if ts(1, 1).Less(ts(1, 1)) {
		t.Fatal("irreflexive")
	}
}

func TestValueSetBasics(t *testing.T) {
	s := NewValueSet()
	if !s.Add(val(1, 0)) || s.Add(val(1, 0)) {
		t.Fatal("Add should report newness exactly once")
	}
	s.Add(val(2, 1))
	s.Add(val(5, 0))
	if s.Len() != 3 || !s.Has(ts(2, 1)) || s.Has(ts(3, 3)) {
		t.Fatal("membership")
	}
	if got := s.CountLE(2); got != 2 {
		t.Fatalf("CountLE(2) = %d", got)
	}
	v := s.ViewLE(2)
	if got := v.Timestamps(); !reflect.DeepEqual(got, []Timestamp{ts(1, 0), ts(2, 1)}) {
		t.Fatalf("ViewLE(2) = %v", got)
	}
	all := s.AllView()
	if all.Len() != 3 || !v.SubsetOf(all) {
		t.Fatal("AllView / SubsetOf")
	}
}

func TestViewSubsetAndComparable(t *testing.T) {
	a := ViewOf(val(1, 0), val(2, 1))
	b := ViewOf(val(1, 0), val(2, 1), val(3, 2))
	c := ViewOf(val(1, 0), val(4, 3))
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("subset")
	}
	if !a.ComparableWith(b) || !b.ComparableWith(a) {
		t.Fatal("comparable")
	}
	if a.ComparableWith(c) {
		t.Fatal("a and c are incomparable")
	}
	if !a.Contains(ts(2, 1)) || a.Contains(ts(3, 2)) {
		t.Fatal("contains")
	}
}

func TestExtract(t *testing.T) {
	v := ViewOf(val(1, 0), val(3, 0), val(2, 1))
	snap := v.Extract(3)
	if string(snap[0]) != "v0-3" {
		t.Fatalf("segment 0 should hold writer 0's largest-tag value, got %q", snap[0])
	}
	if string(snap[1]) != "v1-2" {
		t.Fatalf("segment 1 = %q", snap[1])
	}
	if snap[2] != nil {
		t.Fatalf("segment 2 should be ⊥ (nil), got %q", snap[2])
	}
	// Out-of-range writers are ignored defensively.
	bad := ViewOf(Value{TS: ts(1, 9), Payload: []byte("x")})
	if got := bad.Extract(2); got[0] != nil || got[1] != nil {
		t.Fatalf("out-of-range writer leaked: %v", got)
	}
}

func TestEQPredicate(t *testing.T) {
	// n = 3, quorum 2: the worked example from Section III-C.
	V := []*ValueSet{NewValueSet(), NewValueSet(), NewValueSet()}
	u, v := val(1, 0), val(1, 2)
	// V1[1] = {u,v}, V1[2] = {}, V1[3] = {u,v} (paper's 1-indexed nodes).
	V[0].Add(u)
	V[0].Add(v)
	V[2].Add(u)
	V[2].Add(v)
	ok, view := EQ(V, 0, 2, MaxTag)
	if !ok {
		t.Fatal("EQ(V1,1) should hold: {1,3} is an equivalence quorum")
	}
	if got := view.Timestamps(); !reflect.DeepEqual(got, []Timestamp{u.TS, v.TS}) {
		t.Fatalf("equivalence set = %v, want {u,v}", got)
	}
	// Remove node 3's copy of v: no quorum of 2 now matches node 1.
	V2 := []*ValueSet{NewValueSet(), NewValueSet(), NewValueSet()}
	V2[0].Add(u)
	V2[0].Add(v)
	V2[2].Add(u)
	if ok, _ := EQ(V2, 0, 2, MaxTag); ok {
		t.Fatal("EQ should fail without a matching quorum")
	}
	// Tag bound: values above r are invisible to the predicate.
	V3 := []*ValueSet{NewValueSet(), NewValueSet(), NewValueSet()}
	V3[0].Add(val(5, 1))
	if ok, view := EQ(V3, 0, 2, 4); !ok || view.Len() != 0 {
		t.Fatal("EQ with bound 4 should hold with the empty equivalence set")
	}
}

// TestEQTrackerMatchesEQ: under random insert sequences, the incremental
// tracker agrees with the from-scratch predicate at every step.
func TestEQTrackerMatchesEQ(t *testing.T) {
	prop := func(seed int64, rRaw uint8, startAfter uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		quorum := n - rng.Intn(n/2+1)
		self := rng.Intn(n)
		r := Tag(rRaw%8) + 1
		V := make([]*ValueSet, n)
		for i := range V {
			V[i] = NewValueSet()
		}
		var tracker *EQTracker
		start := int(startAfter % 20)
		for step := 0; step < 60; step++ {
			if step == start {
				tracker = NewEQTracker(V, self, r, quorum)
			}
			j := rng.Intn(n)
			v := val(Tag(rng.Intn(10)+1), rng.Intn(n))
			newToJ := V[j].Add(v)
			newToSelf := newToJ
			if j != self {
				newToSelf = V[self].Add(v)
			}
			if tracker != nil {
				tracker.OnAdd(j, v, newToJ, newToSelf)
				want, _ := EQ(V, self, quorum, r)
				if tracker.Satisfied() != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSubsetInvariant: mimicking the handler discipline (every value added
// to V[j] is added to V[self]), V[j] ⊆ V[self] always holds, which is what
// justifies EQ's cardinality comparison.
func TestSubsetInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3
		self := 0
		V := make([]*ValueSet, n)
		for i := range V {
			V[i] = NewValueSet()
		}
		for step := 0; step < 50; step++ {
			j := rng.Intn(n)
			v := val(Tag(rng.Intn(6)+1), rng.Intn(n))
			V[j].Add(v)
			if j != self {
				V[self].Add(v)
			}
		}
		for j := 1; j < n; j++ {
			if !V[j].AllView().SubsetOf(V[self].AllView()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestViewComparabilityOfPrefixes: views formed as prefixes of a common
// stream (what FIFO channels deliver) are always comparable (Observation 1).
func TestViewComparabilityOfPrefixes(t *testing.T) {
	prop := func(seed int64, cut1, cut2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]Value, 30)
		for i := range stream {
			stream[i] = val(Tag(i+1), rng.Intn(4))
		}
		a, b := NewValueSet(), NewValueSet()
		for i := 0; i < int(cut1%31); i++ {
			a.Add(stream[i])
		}
		for i := 0; i < int(cut2%31); i++ {
			b.Add(stream[i])
		}
		return a.AllView().ComparableWith(b.AllView())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
