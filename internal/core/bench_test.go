package core

import (
	"testing"
)

// Micro-benchmarks comparing the reference map engine (ValueSet) with the
// history-independent log engine (ValueLog) on the four hot-path
// operations of Algorithm 1: value insertion, cardinality queries,
// view materialization, and EQ-tracker setup. Run with
//
//	go test ./internal/core -bench . -benchmem   (or: make bench-core)
//
// The interesting column is allocs/op: the log engine's queries are
// allocation-free at or below the frontier regardless of history length,
// while the map engine rescans and reallocates O(H) state per view.
const (
	benchNodes = 8
	benchH     = 16384 // prefilled history length for query benchmarks
)

func benchValue(i int) Value {
	return Value{
		TS:      Timestamp{Tag: Tag(i + 1), Writer: i % benchNodes},
		Payload: []byte("payload-01234567"),
	}
}

// prefillSets builds the map engine's state after H values: every value
// is in V[src] and V[self] (the containment invariant of line 40).
func prefillSets(h int) []*ValueSet {
	V := make([]*ValueSet, benchNodes)
	for j := range V {
		V[j] = NewValueSet()
	}
	for i := 0; i < h; i++ {
		v := benchValue(i)
		V[i%benchNodes].Add(v)
		V[0].Add(v)
	}
	return V
}

// prefillLog builds the log engine's state after H values, with the
// frontier advanced over the first half (steady state: the node keeps
// performing good lattice operations as history grows).
func prefillLog(h int) *ValueLog {
	l := NewValueLog(benchNodes, 0)
	for i := 0; i < h; i++ {
		l.Add(i%benchNodes, benchValue(i))
	}
	l.AdvanceFrontier(Tag(h / 2))
	return l
}

func BenchmarkValueSetAdd(b *testing.B) {
	b.Run("map", func(b *testing.B) {
		V := make([]*ValueSet, benchNodes)
		for j := range V {
			V[j] = NewValueSet()
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := benchValue(i)
			V[i%benchNodes].Add(v)
			V[0].Add(v)
		}
	})
	b.Run("log", func(b *testing.B) {
		l := NewValueLog(benchNodes, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Add(i%benchNodes, benchValue(i))
		}
	})
}

func BenchmarkCountLE(b *testing.B) {
	b.Run("map", func(b *testing.B) {
		V := prefillSets(benchH)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			V[i%benchNodes].CountLE(Tag(i % benchH))
		}
	})
	b.Run("log", func(b *testing.B) {
		l := prefillLog(benchH)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.CountLE(i%benchNodes, Tag(i%benchH))
		}
	})
}

func BenchmarkViewLE(b *testing.B) {
	r := Tag(benchH / 2) // at the log's frontier: the zero-copy fast path
	b.Run("map", func(b *testing.B) {
		V := prefillSets(benchH)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			V[0].ViewLE(r)
		}
	})
	b.Run("log", func(b *testing.B) {
		l := prefillLog(benchH)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.ViewLE(r)
		}
	})
}

func BenchmarkEQTrackerSetup(b *testing.B) {
	r := Tag(benchH / 2)
	quorum := benchNodes - 1
	b.Run("map", func(b *testing.B) {
		V := prefillSets(benchH)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			NewEQTracker(V, 0, r, quorum)
		}
	})
	b.Run("log", func(b *testing.B) {
		l := prefillLog(benchH)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			NewEQTrackerFromLog(l, r, quorum)
		}
	})
}
