package core

import "sort"

// ValueLog is the history-independent replacement for an array of per-peer
// ValueSets. One timestamp-sorted backing array holds each value the node
// knows exactly once; per-peer membership (V[j] in the paper) is tracked as
// a prefix cursor plus a small straggler set, which is sound because the
// algorithms maintain V[j] ⊆ V[self] (every value received from any j is
// also added to V[self], line 40 of Algorithm 1).
//
// The log additionally maintains a stable frontier: when the node performs
// a good lattice operation at tag r — so the prefix with tags ≤ r is known
// good at n−f nodes — AdvanceFrontier(r) freezes that prefix. The frozen
// region is immutable in place: views returned by ViewLE/AllView alias it
// zero-copy, and a straggler insert below the frontier reallocates the
// backing array (copy-on-write) so already-published views never change.
// A digest prefix-sum array summarizes every log prefix, so a frontier
// Checkpoint (count + order-independent digest) advertised by a peer can
// be vouched for in O(1); borrow replies then ship only the delta above
// the checkpoint instead of the full history.
//
// Per-operation costs with H total values and n nodes: Add is O(log H)
// amortized (appends dominate in tag order; a mid-tail insert memmoves
// only the unfrozen tail), CountLE is O(log H), NewEQTrackerFromLog is
// O(n log H), and ViewLE at or below the frontier is O(1).
type ValueLog struct {
	n, self  int
	vals     []Value  // sorted by timestamp, no duplicates
	digsum   []uint64 // digsum[i] = Σ digestValue(vals[:i]); len = len(vals)+1
	frozen   int      // vals[:frozen] is immutable in place
	frontier Tag      // largest tag passed to AdvanceFrontier
	peers    []peerSet

	// Master per-writer extract over the frozen prefix, republished as an
	// immutable snapshot (ext) at each freeze so views can cache it.
	extTags  []Tag
	extPays  [][]byte
	ext      *baseExtract
	extOK    bool // false once a writer outside [0,n) is seen
	extStale bool // master differs from published snapshot

	stats LogStats
}

// peerSet is node j's membership in the shared log: j holds every value in
// vals[:prefix) plus the timestamps in strag. Invariant: every straggler's
// position in vals is ≥ prefix (so all straggler timestamps are greater
// than all prefix timestamps, and strag is sorted).
type peerSet struct {
	prefix int
	strag  []Timestamp
}

// Checkpoint summarizes a log prefix: every held value with tag ≤ Tag, how
// many there are, and an order-independent digest over them. Two nodes
// whose prefixes carry equal Count and Digest hold the same value sequence
// below that point (up to checksum collisions; the digest is an integrity
// check for the crash model, not cryptographic).
type Checkpoint struct {
	Tag    Tag
	Count  int
	Digest uint64
}

// LogStats counts structural events, exposed for benchmarks and tests.
type LogStats struct {
	Appends     int64 // new value appended at the end of the log
	TailInserts int64 // new value memmoved into the unfrozen tail
	COWInserts  int64 // new value below the frontier forced a reallocation
	Demotions   int64 // peer prefix values demoted to stragglers
	Freezes     int64 // AdvanceFrontier calls that grew the frozen prefix
}

// NewValueLog returns an empty log for node self of n.
func NewValueLog(n, self int) *ValueLog {
	l := &ValueLog{
		n:       n,
		self:    self,
		digsum:  make([]uint64, 1, 16),
		peers:   make([]peerSet, n),
		extTags: make([]Tag, n),
		extPays: make([][]byte, n),
		extOK:   true,
	}
	for i := range l.extTags {
		l.extTags[i] = -1
	}
	return l
}

// N returns the cluster size the log was built for.
func (l *ValueLog) N() int { return l.n }

// Stats returns the structural counters.
func (l *ValueLog) Stats() LogStats { return l.stats }

// upperBound returns the number of values with tag ≤ r.
func (l *ValueLog) upperBound(r Tag) int {
	return sort.Search(len(l.vals), func(i int) bool { return l.vals[i].TS.Tag > r })
}

// locate returns the insertion position for ts and whether it is present.
func (l *ValueLog) locate(ts Timestamp) (int, bool) {
	p := searchSeg(l.vals, ts)
	return p, p < len(l.vals) && l.vals[p].TS == ts
}

// Has reports whether the node holds a value with timestamp ts.
func (l *ValueLog) Has(ts Timestamp) bool {
	_, ok := l.locate(ts)
	return ok
}

// Get returns the payload stored under ts.
func (l *ValueLog) Get(ts Timestamp) ([]byte, bool) {
	p, ok := l.locate(ts)
	if !ok {
		return nil, false
	}
	return l.vals[p].Payload, true
}

// SelfLen returns |V[self]|: the total number of values held.
func (l *ValueLog) SelfLen() int { return len(l.vals) }

// Len returns |V[j]|.
func (l *ValueLog) Len(j int) int {
	if j == l.self {
		return len(l.vals)
	}
	ps := &l.peers[j]
	return ps.prefix + len(ps.strag)
}

// CountLE returns |V[j]^{≤r}| in O(log H + log |strag|).
func (l *ValueLog) CountLE(j int, r Tag) int {
	ub := l.upperBound(r)
	if j == l.self {
		return ub
	}
	ps := &l.peers[j]
	c := ps.prefix
	if ub < c {
		c = ub
	}
	c += sort.Search(len(ps.strag), func(i int) bool { return ps.strag[i].Tag > r })
	return c
}

// Add records that value v was received from node j, inserting it into
// V[self] too (the containment invariant). It reports whether v was new to
// V[j] and new to V[self], matching ValueSet.Add semantics for EQTracker.
func (l *ValueLog) Add(j int, v Value) (newToJ, newToSelf bool) {
	p, present := l.locate(v.TS)
	if !present {
		l.insert(p, v)
		newToSelf = true
	}
	if j == l.self {
		return newToSelf, newToSelf
	}
	ps := &l.peers[j]
	if p < ps.prefix {
		// insert() demotes any prefix spanning the insertion point first,
		// so p < prefix means the value pre-existed inside j's prefix.
		return false, newToSelf
	}
	if p == ps.prefix {
		ps.prefix++
		l.absorb(ps)
		return true, newToSelf
	}
	k := sort.Search(len(ps.strag), func(i int) bool { return !ps.strag[i].Less(v.TS) })
	if k < len(ps.strag) && ps.strag[k] == v.TS {
		return false, newToSelf
	}
	ps.strag = append(ps.strag, Timestamp{})
	copy(ps.strag[k+1:], ps.strag[k:])
	ps.strag[k] = v.TS
	return true, newToSelf
}

// AddSelf records the node's own value: Add(self, v).
func (l *ValueLog) AddSelf(v Value) bool {
	n, _ := l.Add(l.self, v)
	return n
}

// absorb advances a peer prefix over stragglers that have become
// contiguous with it.
func (l *ValueLog) absorb(ps *peerSet) {
	for len(ps.strag) > 0 && ps.prefix < len(l.vals) && ps.strag[0] == l.vals[ps.prefix].TS {
		ps.prefix++
		ps.strag = ps.strag[1:]
	}
}

// insert places v at position p, demoting any peer prefix that spans p
// (its values at positions ≥ p become stragglers, keeping the position
// invariant; Add re-absorbs them right away when j is receiving v itself).
// Below the frontier the backing array is reallocated so published views
// stay immutable; inside the unfrozen tail a memmove suffices because no
// view references those positions.
func (l *ValueLog) insert(p int, v Value) {
	for j := range l.peers {
		if j == l.self {
			continue
		}
		ps := &l.peers[j]
		if ps.prefix <= p {
			continue
		}
		demoted := l.vals[p:ps.prefix]
		ns := make([]Timestamp, 0, len(demoted)+len(ps.strag))
		for i := range demoted {
			ns = append(ns, demoted[i].TS)
		}
		ps.strag = append(ns, ps.strag...)
		ps.prefix = p
		l.stats.Demotions += int64(len(demoted))
	}
	switch {
	case p < l.frozen:
		nv := make([]Value, len(l.vals)+1)
		copy(nv, l.vals[:p])
		nv[p] = v
		copy(nv[p+1:], l.vals[p:])
		l.vals = nv
		l.frozen++
		l.noteFrozen(v)
		l.publishExt()
		l.stats.COWInserts++
	case p == len(l.vals):
		l.vals = append(l.vals, v)
		l.stats.Appends++
	default:
		l.vals = append(l.vals, Value{})
		copy(l.vals[p+1:], l.vals[p:])
		l.vals[p] = v
		l.stats.TailInserts++
	}
	// Extend/repair the digest prefix sums from p on.
	l.digsum = append(l.digsum, 0)
	for i := p; i < len(l.vals); i++ {
		l.digsum[i+1] = l.digsum[i] + digestValue(l.vals[i])
	}
}

// noteFrozen folds a newly frozen value into the master per-writer extract.
func (l *ValueLog) noteFrozen(v Value) {
	w := v.TS.Writer
	if w < 0 || w >= l.n {
		l.extOK = false
		return
	}
	if v.TS.Tag > l.extTags[w] {
		l.extTags[w] = v.TS.Tag
		l.extPays[w] = v.Payload
		l.extStale = true
	}
}

// publishExt snapshots the master extract for attachment to views.
func (l *ValueLog) publishExt() {
	if !l.extOK {
		l.ext = nil
		return
	}
	if !l.extStale && l.ext != nil {
		return
	}
	l.ext = &baseExtract{
		tags: append([]Tag(nil), l.extTags...),
		pays: append([][]byte(nil), l.extPays...),
	}
	l.extStale = false
}

// AdvanceFrontier marks every value with tag ≤ r stable: the node learned
// that the prefix V^{≤r} is an equivalence set held by n−f nodes (its own
// good lattice operation at r). The prefix is frozen in place; later
// views at or below r are zero-copy. MaxTag is ignored — freezing at the
// one-shot pseudo-tag would make every later insert a copy-on-write.
func (l *ValueLog) AdvanceFrontier(r Tag) {
	if r <= l.frontier || r == MaxTag {
		return
	}
	l.frontier = r
	nf := l.upperBound(r)
	if nf > l.frozen {
		for i := l.frozen; i < nf; i++ {
			l.noteFrozen(l.vals[i])
		}
		l.frozen = nf
		l.publishExt()
		l.stats.Freezes++
	}
}

// Frontier returns the checkpoint of the current frozen prefix (the zero
// Checkpoint when nothing is frozen yet).
func (l *ValueLog) Frontier() Checkpoint {
	return Checkpoint{Tag: l.frontier, Count: l.frozen, Digest: l.digsum[l.frozen]}
}

// Vouches reports whether this log's own prefix of ck.Count values matches
// the checkpoint digest — i.e. both nodes hold the exact same value
// sequence below that point. O(1) via the digest prefix sums.
func (l *ValueLog) Vouches(ck Checkpoint) bool {
	return ck.Count >= 0 && ck.Count < len(l.digsum) && l.digsum[ck.Count] == ck.Digest
}

// ViewLE returns V[self]^{≤r}. At or below the frozen prefix this is a
// zero-copy alias of the log; above it, the base aliases the frozen prefix
// and only the unfrozen tail portion is copied.
func (l *ValueLog) ViewLE(r Tag) View {
	ub := l.upperBound(r)
	if ub <= l.frozen {
		var ext *baseExtract
		if ub == l.frozen {
			ext = l.ext
		}
		return View{base: l.vals[:ub:ub], ext: ext}
	}
	tail := make([]Value, ub-l.frozen)
	copy(tail, l.vals[l.frozen:ub])
	return View{base: l.vals[:l.frozen:l.frozen], tail: tail, ext: l.ext}
}

// AllView returns a view of every value held.
func (l *ValueLog) AllView() View { return l.ViewLE(MaxTag) }

// PeerViewLE materializes V[j]^{≤r} from j's cursor state: the shared
// prefix (zero-copy up to the frozen boundary) plus j's stragglers with
// tag ≤ r. The straggler-position invariant guarantees the concatenation
// is sorted.
func (l *ValueLog) PeerViewLE(j int, r Tag) View {
	if j == l.self {
		return l.ViewLE(r)
	}
	ps := &l.peers[j]
	ub := l.upperBound(r)
	limit := ps.prefix
	if ub < limit {
		limit = ub
	}
	baseN := limit
	if l.frozen < baseN {
		baseN = l.frozen
	}
	var tail []Value
	if m := limit - baseN; m > 0 {
		tail = make([]Value, m, m+len(ps.strag))
		copy(tail, l.vals[baseN:limit])
	}
	for _, ts := range ps.strag {
		if ts.Tag > r {
			break
		}
		if p, ok := l.locate(ts); ok {
			tail = append(tail, l.vals[p])
		}
	}
	var ext *baseExtract
	if baseN == l.frozen {
		ext = l.ext
	}
	return View{base: l.vals[:baseN:baseN], tail: tail, ext: ext}
}

// DeltaAbove splits view into (ck, delta): when this log vouches for ck
// and the view literally extends this log's prefix (its base aliases the
// backing array), the caller may ship only delta — the values above
// ck.Count — and the receiver reconstructs the view with ComposeAt.
// Returns false when the prefixes disagree or the view was not cut from
// this log; callers fall back to sending the full view.
func (l *ValueLog) DeltaAbove(view View, ck Checkpoint) ([]Value, bool) {
	if ck.Count < 0 || ck.Count > view.Len() || !l.Vouches(ck) {
		return nil, false
	}
	if ck.Count > 0 {
		// The view's base must alias this log's array so that
		// view[:Count] == vals[:Count] without comparing elements.
		if len(view.base) < ck.Count || !sameBacking(view.base, l.vals) {
			return nil, false
		}
	}
	delta := make([]Value, 0, view.Len()-ck.Count)
	for i := ck.Count; i < view.Len(); i++ {
		delta = append(delta, view.At(i))
	}
	return delta, true
}

// ComposeAt rebuilds a view from a checkpoint this log vouches for and the
// delta above it. The base aliases the local frozen prefix (zero-copy);
// the delta may contain values this node does not hold. Returns false
// when the checkpoint no longer matches local state (the prefix changed
// under a copy-on-write insert) or the delta is not a sorted extension —
// callers escalate to a full-view borrow.
func (l *ValueLog) ComposeAt(ck Checkpoint, delta []Value) (View, bool) {
	if ck.Count < 0 || ck.Count > l.frozen || !l.Vouches(ck) {
		return View{}, false
	}
	base := l.vals[:ck.Count:ck.Count]
	last := Timestamp{Tag: -1}
	if ck.Count > 0 {
		last = base[ck.Count-1].TS
	}
	for i := range delta {
		if !last.Less(delta[i].TS) {
			return View{}, false
		}
		last = delta[i].TS
	}
	var ext *baseExtract
	if ck.Count == l.frozen {
		ext = l.ext
	}
	return View{base: base, tail: delta, ext: ext}, true
}

// NewEQTrackerFromLog returns an incremental tracker for EQ(V^{≤r}, self)
// over a log, set up in O(n log H) via the per-peer cursors.
func NewEQTrackerFromLog(l *ValueLog, r Tag, quorum int) *EQTracker {
	t := &EQTracker{R: r, self: l.self, quorum: quorum, cnt: make([]int, l.n)}
	for j := 0; j < l.n; j++ {
		t.cnt[j] = l.CountLE(j, r)
	}
	t.cntSelf = t.cnt[l.self]
	return t
}

// digestValue hashes one value (FNV-1a over timestamp and payload, then an
// avalanche mix so additive combination distributes well). Prefix digests
// are sums of these, hence order-independent and cheap to maintain.
func digestValue(v Value) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix8 := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix8(uint64(v.TS.Tag))
	mix8(uint64(int64(v.TS.Writer)))
	for _, b := range v.Payload {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
