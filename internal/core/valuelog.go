package core

import "sort"

// ValueLog is the history-independent replacement for an array of per-peer
// ValueSets. One timestamp-sorted backing array holds each value the node
// knows exactly once; per-peer membership (V[j] in the paper) is tracked as
// a prefix cursor plus a small straggler set, which is sound because the
// algorithms maintain V[j] ⊆ V[self] (every value received from any j is
// also added to V[self], line 40 of Algorithm 1).
//
// The log additionally maintains a stable frontier: when the node performs
// a good lattice operation at tag r — so the prefix with tags ≤ r is known
// good at n−f nodes — AdvanceFrontier(r) freezes that prefix. The frozen
// region is immutable in place: views returned by ViewLE/AllView alias it
// zero-copy, and a straggler insert below the frontier reallocates the
// backing array (copy-on-write) so already-published views never change.
// A digest prefix-sum array summarizes every log prefix, so a frontier
// Checkpoint (count + order-independent digest) advertised by a peer can
// be vouched for in O(1); borrow replies then ship only the delta above
// the checkpoint instead of the full history.
//
// Per-operation costs with H total values and n nodes: Add is O(log H)
// amortized (appends dominate in tag order; a mid-tail insert memmoves
// only the unfrozen tail), CountLE is O(log H), NewEQTrackerFromLog is
// O(n log H), and ViewLE at or below the frontier is O(1).
// Garbage collection: once a checkpoint has been vouched by every node
// (each peer's NoteVouch recorded), PruneTo drops the value prefix below
// it. Counts stay absolute across pruning — off is the number of pruned
// values, and SelfLen/Len/CountLE/Frontier all report off + physical —
// while digsum is re-based so digsum[i] remains the absolute digest of
// pruned ∪ vals[:i] exactly (the digests are order-independent sums).
// The pruned prefix survives as a per-writer extract (preExt) attached to
// views, so SCAN extraction still sees every writer's latest value.
type ValueLog struct {
	n, self  int
	vals     []Value  // sorted by timestamp, no duplicates (above the pruned prefix)
	digsum   []uint64 // digsum[i] = digest of pruned prefix ∪ vals[:i]; len = len(vals)+1
	frozen   int      // vals[:frozen] is immutable in place
	frontier Tag      // largest tag passed to AdvanceFrontier
	peers    []peerSet

	off       int // values pruned below the globally-vouched checkpoint
	prunedTag Tag // tag of the last checkpoint pruned to

	// Per-writer extract over the pruned prefix (cumulative across prunes),
	// published as preExt and attached to views so extracts stay exact.
	preTags []Tag
	prePays [][]byte
	preExt  *baseExtract

	// Master per-writer extract over the frozen prefix, republished as an
	// immutable snapshot (ext) at each freeze so views can cache it.
	extTags  []Tag
	extPays  [][]byte
	ext      *baseExtract
	extOK    bool // false once a writer outside [0,n) is seen
	extStale bool // master differs from published snapshot

	stats LogStats
}

// peerSet is node j's membership in the shared log: j holds every value in
// vals[:prefix) plus the timestamps in strag. Invariant: every straggler's
// position in vals is ≥ prefix (so all straggler timestamps are greater
// than all prefix timestamps, and strag is sorted).
type peerSet struct {
	prefix int
	strag  []Timestamp
}

// Checkpoint summarizes a log prefix: every held value with tag ≤ Tag, how
// many there are, and an order-independent digest over them. Two nodes
// whose prefixes carry equal Count and Digest hold the same value sequence
// below that point (up to checksum collisions; the digest is an integrity
// check for the crash model, not cryptographic).
type Checkpoint struct {
	Tag    Tag
	Count  int
	Digest uint64
}

// LogStats counts structural events, exposed for benchmarks and tests.
type LogStats struct {
	Appends     int64 // new value appended at the end of the log
	TailInserts int64 // new value memmoved into the unfrozen tail
	COWInserts  int64 // new value below the frontier forced a reallocation
	Demotions   int64 // peer prefix values demoted to stragglers
	Freezes     int64 // AdvanceFrontier calls that grew the frozen prefix
	Prunes      int64 // PruneTo calls that dropped a prefix
	PrunedVals  int64 // total values garbage-collected by PruneTo
}

// NewValueLog returns an empty log for node self of n.
func NewValueLog(n, self int) *ValueLog {
	l := &ValueLog{
		n:       n,
		self:    self,
		digsum:  make([]uint64, 1, 16),
		peers:   make([]peerSet, n),
		extTags: make([]Tag, n),
		extPays: make([][]byte, n),
		preTags: make([]Tag, n),
		prePays: make([][]byte, n),
		extOK:   true,
	}
	for i := range l.extTags {
		l.extTags[i] = -1
		l.preTags[i] = -1
	}
	return l
}

// N returns the cluster size the log was built for.
func (l *ValueLog) N() int { return l.n }

// Stats returns the structural counters.
func (l *ValueLog) Stats() LogStats { return l.stats }

// upperBound returns the number of values with tag ≤ r.
func (l *ValueLog) upperBound(r Tag) int {
	return sort.Search(len(l.vals), func(i int) bool { return l.vals[i].TS.Tag > r })
}

// locate returns the insertion position for ts and whether it is present.
func (l *ValueLog) locate(ts Timestamp) (int, bool) {
	p := searchSeg(l.vals, ts)
	return p, p < len(l.vals) && l.vals[p].TS == ts
}

// Has reports whether the node holds a value with timestamp ts.
func (l *ValueLog) Has(ts Timestamp) bool {
	_, ok := l.locate(ts)
	return ok
}

// Get returns the payload stored under ts.
func (l *ValueLog) Get(ts Timestamp) ([]byte, bool) {
	p, ok := l.locate(ts)
	if !ok {
		return nil, false
	}
	return l.vals[p].Payload, true
}

// SelfLen returns |V[self]|: the total number of values held, counting
// the pruned prefix.
func (l *ValueLog) SelfLen() int { return l.off + len(l.vals) }

// RetainedLen returns the number of values held physically (after GC).
func (l *ValueLog) RetainedLen() int { return len(l.vals) }

// PrunedCount returns how many values have been garbage-collected.
func (l *ValueLog) PrunedCount() int { return l.off }

// PrunedTag returns the frontier tag of the last prune (0 when none).
func (l *ValueLog) PrunedTag() Tag { return l.prunedTag }

// Len returns |V[j]|, counting the pruned prefix (a prune requires every
// peer's cursor to cover it).
func (l *ValueLog) Len(j int) int {
	if j == l.self {
		return l.off + len(l.vals)
	}
	ps := &l.peers[j]
	return l.off + ps.prefix + len(ps.strag)
}

// CountLE returns |V[j]^{≤r}| in O(log H + log |strag|). Exact for
// r ≥ PrunedTag (every pruned value has tag ≤ PrunedTag, so the pruned
// prefix is entirely below any such bound); below the prune point the
// count degrades to the prune-inclusive upper bound, which no protocol
// query hits — operation tags only grow past vouched frontiers.
func (l *ValueLog) CountLE(j int, r Tag) int {
	ub := l.upperBound(r)
	if j == l.self {
		return l.off + ub
	}
	ps := &l.peers[j]
	c := ps.prefix
	if ub < c {
		c = ub
	}
	c += sort.Search(len(ps.strag), func(i int) bool { return ps.strag[i].Tag > r })
	return l.off + c
}

// Add records that value v was received from node j, inserting it into
// V[self] too (the containment invariant). It reports whether v was new to
// V[j] and new to V[self], matching ValueSet.Add semantics for EQTracker.
func (l *ValueLog) Add(j int, v Value) (newToJ, newToSelf bool) {
	p, present := l.locate(v.TS)
	if !present {
		if l.off > 0 && v.TS.Tag <= l.prunedTag {
			// Presumed already pruned: re-admitting a value at or below the
			// pruned checkpoint tag would double-count it in the absolute
			// counts and diverge the digests. In-protocol this loses
			// nothing — a genuinely new value always carries a tag above
			// any globally-vouched frontier (its writeTag quorum intersects
			// the vouching lattice operation's readTag quorum).
			return false, false
		}
		l.insert(p, v)
		newToSelf = true
	}
	if j == l.self {
		return newToSelf, newToSelf
	}
	ps := &l.peers[j]
	if p < ps.prefix {
		// insert() demotes any prefix spanning the insertion point first,
		// so p < prefix means the value pre-existed inside j's prefix.
		return false, newToSelf
	}
	if p == ps.prefix {
		ps.prefix++
		l.absorb(ps)
		return true, newToSelf
	}
	k := sort.Search(len(ps.strag), func(i int) bool { return !ps.strag[i].Less(v.TS) })
	if k < len(ps.strag) && ps.strag[k] == v.TS {
		return false, newToSelf
	}
	ps.strag = append(ps.strag, Timestamp{})
	copy(ps.strag[k+1:], ps.strag[k:])
	ps.strag[k] = v.TS
	return true, newToSelf
}

// AddSelf records the node's own value: Add(self, v).
func (l *ValueLog) AddSelf(v Value) bool {
	n, _ := l.Add(l.self, v)
	return n
}

// absorb advances a peer prefix over stragglers that have become
// contiguous with it.
func (l *ValueLog) absorb(ps *peerSet) {
	for len(ps.strag) > 0 && ps.prefix < len(l.vals) && ps.strag[0] == l.vals[ps.prefix].TS {
		ps.prefix++
		ps.strag = ps.strag[1:]
	}
}

// insert places v at position p, demoting any peer prefix that spans p
// (its values at positions ≥ p become stragglers, keeping the position
// invariant; Add re-absorbs them right away when j is receiving v itself).
// Below the frontier the backing array is reallocated so published views
// stay immutable; inside the unfrozen tail a memmove suffices because no
// view references those positions.
func (l *ValueLog) insert(p int, v Value) {
	for j := range l.peers {
		if j == l.self {
			continue
		}
		ps := &l.peers[j]
		if ps.prefix <= p {
			continue
		}
		demoted := l.vals[p:ps.prefix]
		ns := make([]Timestamp, 0, len(demoted)+len(ps.strag))
		for i := range demoted {
			ns = append(ns, demoted[i].TS)
		}
		ps.strag = append(ns, ps.strag...)
		ps.prefix = p
		l.stats.Demotions += int64(len(demoted))
	}
	switch {
	case p < l.frozen:
		nv := make([]Value, len(l.vals)+1)
		copy(nv, l.vals[:p])
		nv[p] = v
		copy(nv[p+1:], l.vals[p:])
		l.vals = nv
		l.frozen++
		l.noteFrozen(v)
		l.publishExt()
		l.stats.COWInserts++
	case p == len(l.vals):
		l.vals = append(l.vals, v)
		l.stats.Appends++
	default:
		l.vals = append(l.vals, Value{})
		copy(l.vals[p+1:], l.vals[p:])
		l.vals[p] = v
		l.stats.TailInserts++
	}
	// Extend/repair the digest prefix sums from p on.
	l.digsum = append(l.digsum, 0)
	for i := p; i < len(l.vals); i++ {
		l.digsum[i+1] = l.digsum[i] + digestValue(l.vals[i])
	}
}

// noteFrozen folds a newly frozen value into the master per-writer extract.
func (l *ValueLog) noteFrozen(v Value) {
	w := v.TS.Writer
	if w < 0 || w >= l.n {
		l.extOK = false
		return
	}
	if v.TS.Tag > l.extTags[w] {
		l.extTags[w] = v.TS.Tag
		l.extPays[w] = v.Payload
		l.extStale = true
	}
}

// publishExt snapshots the master extract for attachment to views.
func (l *ValueLog) publishExt() {
	if !l.extOK {
		l.ext = nil
		return
	}
	if !l.extStale && l.ext != nil {
		return
	}
	l.ext = &baseExtract{
		tags: append([]Tag(nil), l.extTags...),
		pays: append([][]byte(nil), l.extPays...),
	}
	l.extStale = false
}

// AdvanceFrontier marks every value with tag ≤ r stable: the node learned
// that the prefix V^{≤r} is an equivalence set held by n−f nodes (its own
// good lattice operation at r). The prefix is frozen in place; later
// views at or below r are zero-copy. MaxTag is ignored — freezing at the
// one-shot pseudo-tag would make every later insert a copy-on-write.
func (l *ValueLog) AdvanceFrontier(r Tag) {
	if r <= l.frontier || r == MaxTag {
		return
	}
	l.frontier = r
	nf := l.upperBound(r)
	if nf > l.frozen {
		for i := l.frozen; i < nf; i++ {
			l.noteFrozen(l.vals[i])
		}
		l.frozen = nf
		l.publishExt()
		l.stats.Freezes++
	}
}

// Frontier returns the checkpoint of the current frozen prefix (the zero
// Checkpoint when nothing is frozen yet). Count is absolute: it includes
// the pruned prefix, so checkpoints stay comparable across nodes with
// different prune points.
func (l *ValueLog) Frontier() Checkpoint {
	return Checkpoint{Tag: l.frontier, Count: l.off + l.frozen, Digest: l.digsum[l.frozen]}
}

// Vouches reports whether this log's own prefix of ck.Count values matches
// the checkpoint digest — i.e. both nodes hold the exact same value
// sequence below that point. O(1) via the digest prefix sums. Checkpoints
// strictly below this log's prune point cannot be vouched (their digest
// is no longer reconstructible), which is fine: the prune point itself
// was globally vouched, so every live checkpoint is at or above it.
func (l *ValueLog) Vouches(ck Checkpoint) bool {
	idx := ck.Count - l.off
	return idx >= 0 && idx < len(l.digsum) && l.digsum[idx] == ck.Digest
}

// withPre attaches the pruned-prefix summary to a view cut from this log.
func (l *ValueLog) withPre(v View) View {
	if l.off > 0 {
		v.pre = l.preExt
		v.pruned = l.off
	}
	return v
}

// ViewLE returns V[self]^{≤r}. At or below the frozen prefix this is a
// zero-copy alias of the log; above it, the base aliases the frozen prefix
// and only the unfrozen tail portion is copied.
func (l *ValueLog) ViewLE(r Tag) View {
	ub := l.upperBound(r)
	if ub <= l.frozen {
		var ext *baseExtract
		if ub == l.frozen {
			ext = l.ext
		}
		return l.withPre(View{base: l.vals[:ub:ub], ext: ext})
	}
	tail := make([]Value, ub-l.frozen)
	copy(tail, l.vals[l.frozen:ub])
	return l.withPre(View{base: l.vals[:l.frozen:l.frozen], tail: tail, ext: l.ext})
}

// AllView returns a view of every value held.
func (l *ValueLog) AllView() View { return l.ViewLE(MaxTag) }

// PeerViewLE materializes V[j]^{≤r} from j's cursor state: the shared
// prefix (zero-copy up to the frozen boundary) plus j's stragglers with
// tag ≤ r. The straggler-position invariant guarantees the concatenation
// is sorted.
func (l *ValueLog) PeerViewLE(j int, r Tag) View {
	if j == l.self {
		return l.ViewLE(r)
	}
	ps := &l.peers[j]
	ub := l.upperBound(r)
	limit := ps.prefix
	if ub < limit {
		limit = ub
	}
	baseN := limit
	if l.frozen < baseN {
		baseN = l.frozen
	}
	var tail []Value
	if m := limit - baseN; m > 0 {
		tail = make([]Value, m, m+len(ps.strag))
		copy(tail, l.vals[baseN:limit])
	}
	for _, ts := range ps.strag {
		if ts.Tag > r {
			break
		}
		if p, ok := l.locate(ts); ok {
			tail = append(tail, l.vals[p])
		}
	}
	var ext *baseExtract
	if baseN == l.frozen {
		ext = l.ext
	}
	return l.withPre(View{base: l.vals[:baseN:baseN], tail: tail, ext: ext})
}

// DeltaAbove splits view into (ck, delta): when this log vouches for ck
// and the view literally extends this log's prefix (its base aliases the
// backing array), the caller may ship only delta — the values above
// ck.Count — and the receiver reconstructs the view with ComposeAt.
// Returns false when the prefixes disagree or the view was not cut from
// this log; callers fall back to sending the full view.
func (l *ValueLog) DeltaAbove(view View, ck Checkpoint) ([]Value, bool) {
	idx := ck.Count - l.off
	if idx < 0 || idx > view.Len() || view.pruned != l.off || !l.Vouches(ck) {
		return nil, false
	}
	if idx > 0 {
		// The view's base must alias this log's array so that
		// view[:idx] == vals[:idx] without comparing elements.
		if len(view.base) < idx || !sameBacking(view.base, l.vals) {
			return nil, false
		}
	}
	delta := make([]Value, 0, view.Len()-idx)
	for i := idx; i < view.Len(); i++ {
		delta = append(delta, view.At(i))
	}
	return delta, true
}

// ComposeAt rebuilds a view from a checkpoint this log vouches for and the
// delta above it. The base aliases the local frozen prefix (zero-copy);
// the delta may contain values this node does not hold. Returns false
// when the checkpoint no longer matches local state (the prefix changed
// under a copy-on-write insert) or the delta is not a sorted extension —
// callers escalate to a full-view borrow.
func (l *ValueLog) ComposeAt(ck Checkpoint, delta []Value) (View, bool) {
	idx := ck.Count - l.off
	if idx < 0 || idx > l.frozen || !l.Vouches(ck) {
		return View{}, false
	}
	base := l.vals[:idx:idx]
	last := Timestamp{Tag: -1}
	if idx > 0 {
		last = base[idx-1].TS
	}
	for i := range delta {
		if !last.Less(delta[i].TS) {
			return View{}, false
		}
		last = delta[i].TS
	}
	var ext *baseExtract
	if idx == l.frozen {
		ext = l.ext
	}
	return l.withPre(View{base: base, tail: delta, ext: ext}), true
}

// NoteVouch records that node j vouched for checkpoint ck: j attests it
// holds exactly this log's first ck.Count values. When this log vouches
// for ck too, j's cursor is advanced to cover that prefix (stragglers the
// prefix absorbs are folded in), which is what makes the PruneTo
// precondition — every peer's cursor covers the prune point — reachable
// without j re-sending its history. Returns false for an unverifiable or
// foreign checkpoint. Callers that hold an active EQTracker must note
// that cursor jumps bypass OnAdd; the tracker then undercounts j, which
// can only delay EQ, never falsely satisfy it.
func (l *ValueLog) NoteVouch(j int, ck Checkpoint) bool {
	if j == l.self || j < 0 || j >= l.n || !l.Vouches(ck) {
		return false
	}
	idx := ck.Count - l.off
	if idx <= 0 {
		return true // vouches (part of) the already-pruned prefix
	}
	ps := &l.peers[j]
	if idx <= ps.prefix {
		return true
	}
	cut := l.vals[idx-1].TS
	keep := ps.strag[:0]
	for _, ts := range ps.strag {
		if cut.Less(ts) {
			keep = append(keep, ts)
		}
	}
	ps.strag = keep
	ps.prefix = idx
	l.absorb(ps)
	return true
}

// PruneTo garbage-collects the value prefix below ck, a checkpoint every
// node has vouched for (the caller establishes global agreement; this log
// re-verifies its own digest and that every peer cursor covers the
// prefix). The pruned values are folded into the cumulative per-writer
// pre-extract so extracts stay exact, the retained values move to a fresh
// backing array so the dropped prefix becomes collectable, and all
// absolute counts (SelfLen, CountLE, Frontier.Count, checkpoint digests)
// are preserved via the base offset. Must not be called while an
// EQTracker from this log is live — prune between lattice operations.
func (l *ValueLog) PruneTo(ck Checkpoint) bool {
	idx := ck.Count - l.off
	if idx <= 0 || idx > len(l.vals) || !l.Vouches(ck) {
		return false
	}
	for j := range l.peers {
		if j != l.self && l.peers[j].prefix < idx {
			return false
		}
	}
	for i := 0; i < idx; i++ {
		if w := l.vals[i].TS.Writer; w < 0 || w >= l.n {
			return false // the pre-extract cannot summarize foreign writers
		}
	}
	// Freeze through the prune point first if the local frontier lags: the
	// prefix is globally vouched, a strictly stronger stability guarantee
	// than the n−f a frontier advance needs.
	if idx > l.frozen {
		for i := l.frozen; i < idx; i++ {
			l.noteFrozen(l.vals[i])
		}
		l.frozen = idx
		if ck.Tag > l.frontier && ck.Tag != MaxTag {
			l.frontier = ck.Tag
		}
		l.publishExt()
		l.stats.Freezes++
	}
	for i := 0; i < idx; i++ {
		v := l.vals[i]
		w := v.TS.Writer
		if v.TS.Tag > l.preTags[w] {
			l.preTags[w] = v.TS.Tag
			l.prePays[w] = v.Payload
		}
	}
	l.preExt = &baseExtract{
		tags: append([]Tag(nil), l.preTags...),
		pays: append([][]byte(nil), l.prePays...),
	}
	// Fresh backing arrays: the old ones stay alive only while previously
	// published views still reference them.
	nv := make([]Value, len(l.vals)-idx)
	copy(nv, l.vals[idx:])
	l.vals = nv
	nd := make([]uint64, len(l.digsum)-idx)
	copy(nd, l.digsum[idx:])
	l.digsum = nd
	l.frozen -= idx
	l.off += idx
	if ck.Tag > l.prunedTag {
		l.prunedTag = ck.Tag
	}
	for j := range l.peers {
		if j != l.self {
			l.peers[j].prefix -= idx
		}
	}
	l.stats.Prunes++
	l.stats.PrunedVals += int64(idx)
	return true
}

// HeapBytes estimates the log's resident size in bytes (backing arrays,
// payloads, straggler sets) — deterministic, for benchmarks.
func (l *ValueLog) HeapBytes() int {
	const valHdr = 40 // Timestamp (16) + payload slice header (24)
	b := cap(l.digsum)*8 + cap(l.vals)*valHdr
	for i := range l.vals {
		b += len(l.vals[i].Payload)
	}
	for j := range l.peers {
		b += cap(l.peers[j].strag) * 16
	}
	return b
}

// NewEQTrackerFromLog returns an incremental tracker for EQ(V^{≤r}, self)
// over a log, set up in O(n log H) via the per-peer cursors.
func NewEQTrackerFromLog(l *ValueLog, r Tag, quorum int) *EQTracker {
	t := &EQTracker{R: r, self: l.self, quorum: quorum, cnt: make([]int, l.n)}
	for j := 0; j < l.n; j++ {
		t.cnt[j] = l.CountLE(j, r)
	}
	t.cntSelf = t.cnt[l.self]
	return t
}

// digestValue hashes one value (FNV-1a over timestamp and payload, then an
// avalanche mix so additive combination distributes well). Prefix digests
// are sums of these, hence order-independent and cheap to maintain.
func digestValue(v Value) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix8 := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix8(uint64(v.TS.Tag))
	mix8(uint64(int64(v.TS.Writer)))
	for _, b := range v.Payload {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
