package bench

import "testing"

// TestThroughputBatchingWins: at a CI-sized coordinate the batched service
// clearly outperforms the serialized baseline, and both histories check.
func TestThroughputBatchingWins(t *testing.T) {
	batched, err := RunThroughput(ThroughputConfig{
		N: 8, F: 3, Clients: 16, OpsPerClient: 2, ScanRatio: 0.5, Seed: 1, Batched: true, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunThroughput(ThroughputConfig{
		N: 8, F: 3, Clients: 16, OpsPerClient: 2, ScanRatio: 0.5, Seed: 1, Batched: false, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Ops != serial.Ops {
		t.Errorf("op counts differ: %d vs %d", batched.Ops, serial.Ops)
	}
	if batched.OpsPerD < 3*serial.OpsPerD {
		t.Errorf("batched %.2f ops/D vs serialized %.2f ops/D: want ≥ 3×", batched.OpsPerD, serial.OpsPerD)
	}
	if batched.MaxBatch < 2 {
		t.Errorf("MaxBatch = %d, batching never happened", batched.MaxBatch)
	}
	if batched.ProtoOps >= int64(batched.Ops) {
		t.Errorf("batched issued %d protocol ops for %d client ops", batched.ProtoOps, batched.Ops)
	}
}
