package bench

import (
	"fmt"

	"mpsnap/internal/harness"
	"mpsnap/internal/la"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// Figure2 replays the paper's Figure 2 one-shot execution and returns
// op6's blocking time (in ticks) and its returned snapshot. The same
// scenario is asserted in detail by internal/la.TestFigure2 and printable
// via `asosim -scenario figure2`.
func Figure2() (rt.Ticks, []string, error) {
	delays := sim.SlowLinks{
		Slow:      map[[2]int]bool{{0, 1}: true, {2, 1}: true, {1, 0}: true},
		SlowDelay: 800,
		FastDelay: 50,
	}
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 1, Delay: delays})
	objs := make([]*la.OneShot, 3)
	for i := 0; i < 3; i++ {
		objs[i] = la.NewOneShot(w.Runtime(i))
		w.SetHandler(i, objs[i])
	}
	var op6Wait rt.Ticks
	var op6Snap []string
	w.GoNode("node1", 0, func(p *sim.Proc) {
		if err := objs[0].Update([]byte("u")); err != nil {
			return
		}
		_ = p.Sleep(150 - p.Now())
		_, _ = objs[0].Scan() // op4
	})
	w.GoNode("node2", 1, func(p *sim.Proc) {
		_ = p.Sleep(200)
		_ = objs[1].Update([]byte("w")) // op5
	})
	w.GoNode("node3", 2, func(p *sim.Proc) {
		_, _ = objs[2].Scan() // op1
		if err := objs[2].Update([]byte("v")); err != nil {
			return
		}
		_ = p.Sleep(260 - p.Now())
		inv := p.Now()
		snap, err := objs[2].Scan() // op6
		if err != nil {
			return
		}
		op6Wait = p.Now() - inv
		op6Snap = harness.SnapStrings(snap)
	})
	if err := w.Run(); err != nil {
		return 0, nil, err
	}
	if op6Snap == nil {
		return 0, nil, fmt.Errorf("bench: figure2 op6 did not complete")
	}
	return op6Wait, op6Snap, nil
}
