// Package bench is the harness that regenerates the paper's evaluation
// artifacts: the Table I complexity comparison and the claim-by-claim
// latency experiments (√k scaling, amortized constant time, failure-free
// constant time, Byzantine behaviour, SSO fast scans, lattice agreement).
// All time is virtual, measured in units of the maximum message delay D;
// every run uses the worst-case delay model (every message takes exactly
// D) unless stated otherwise, so measured latencies correspond directly to
// the paper's complexity expressions.
package bench

import (
	"fmt"
	"math/rand"

	"mpsnap/internal/baseline/laaso"
	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all" // register every snapshot engine
	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// Algo names the engines the harness can run (registry names).
type Algo string

// Algorithms.
const (
	EQASO        Algo = "eqaso"
	ByzASO       Algo = "byzaso"
	SSOFast      Algo = "sso"
	Delporte     Algo = "delporte"
	StoreCollect Algo = "storecollect"
	Stacked      Algo = "stacked"
	LAASO        Algo = "laaso"
	ACR          Algo = "acr"
	Fastsnap     Algo = "fastsnap"
)

// TableAlgos is the Table I row order.
func TableAlgos() []Algo {
	return []Algo{Delporte, StoreCollect, Stacked, LAASO, ByzASO, EQASO, SSOFast}
}

// make1 builds one node of the engine via the registry.
func make1(a Algo, r rt.Runtime) (rt.Handler, harness.Object) {
	e, err := engine.New(string(a), r)
	if err != nil {
		panic("bench: " + err.Error())
	}
	return e, e
}

// Faults selects the fault injection of a run.
type Faults struct {
	// Crashes crashes nodes 0..Crashes-1 at staggered times.
	Crashes int
	// Chains, if true, realizes the paper's failure-chain worst case
	// (Definition 11) instead of plain crashes: the crashing nodes form
	// chains of increasing length whose heads issue the exposed values.
	// Only meaningful for algorithms that forward values (EQ-ASO, SSO).
	Chains bool
}

// Config is one measured run.
type Config struct {
	Algo       Algo
	N, F       int
	OpsPerNode int     // operations per live node
	ScanRatio  float64 // fraction of scans (0.5 default-ish; set explicitly)
	Seed       int64
	Faults     Faults
	// UniformDelay uses random delays in (0, D] instead of constant D.
	UniformDelay bool
	// Check verifies the history (linearizability, or sequential
	// consistency for SSO) after the run.
	Check bool
	// Observer, if set, receives message events from the simulator and
	// operation events from every node that supports SetObserver
	// (EQ-ASO, SSO, Byz-ASO). The latency experiment feeds it an
	// obs.Metrics to get per-op histograms in D-units.
	Observer rt.Observer
}

// Result is one run's measurements.
type Result struct {
	Config
	K           int // actual failures injected
	Ops         int
	Msgs        int64
	VirtTimeD   float64
	WorstUpd    float64
	WorstScan   float64
	MeanUpd     float64
	MeanScan    float64
	MeanAll     float64
	P50, P99    float64
	CheckPassed bool
}

// keyOf identifies forwardable value messages for the chain adversary.
func keyOf(a Algo) func(rt.Message) (any, bool) {
	return func(m rt.Message) (any, bool) {
		switch msg := m.(type) {
		case eqaso.MsgValue:
			return msg.Val.TS, true
		case laaso.MsgValue:
			return msg.Val.TS, true
		}
		return nil, false
	}
}

// Run executes one configuration and returns its measurements.
func Run(cfg Config) (Result, error) {
	res := Result{Config: cfg}
	simCfg := sim.Config{N: cfg.N, F: cfg.F, Seed: cfg.Seed, Observer: cfg.Observer}
	if !cfg.UniformDelay {
		simCfg.Delay = sim.Constant{Ticks: rt.TicksPerD}
	}

	liveFrom := 0 // first live (non-fault-designated) node
	var chains []sim.ChainSpec
	if cfg.Faults.Chains && cfg.Faults.Crashes > 0 {
		pool := make([]int, cfg.Faults.Crashes)
		for i := range pool {
			pool[i] = i
		}
		var used int
		chains, used = sim.BuildChains(pool, cfg.Faults.Crashes, cfg.N-1)
		res.K = used
		liveFrom = used
		simCfg.Adversary = sim.NewFailureChains(keyOf(cfg.Algo), chains...)
	} else {
		res.K = cfg.Faults.Crashes
		liveFrom = cfg.Faults.Crashes
	}

	c := harness.Build(simCfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		return make1(cfg.Algo, r)
	})
	if cfg.Observer != nil {
		for _, o := range c.Objects {
			if so, ok := o.(interface{ SetObserver(rt.Observer) }); ok {
				so.SetObserver(cfg.Observer)
			}
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Faults.Chains {
		// Chain heads invoke one update each; the adversary crashes
		// them mid-broadcast, creating the exposed values.
		for _, ch := range chains {
			head := ch.Nodes[0]
			c.Client(head, func(o *harness.OpRunner) {
				_, _ = o.Update()
			})
		}
	} else {
		for victim := 0; victim < cfg.Faults.Crashes; victim++ {
			c.W.CrashAt(victim, rt.Ticks(rng.Int63n(int64(10*rt.TicksPerD)))+1)
		}
		// Crashing nodes still run clients until they die.
		for victim := 0; victim < cfg.Faults.Crashes; victim++ {
			victim := victim
			c.Client(victim, func(o *harness.OpRunner) {
				for k := 0; k < cfg.OpsPerNode; k++ {
					if _, err := o.Update(); err != nil {
						return
					}
				}
			})
		}
	}

	// Live nodes: staggered mixed workloads. Their latencies are what we
	// report (pending ops of crashed nodes have no response event).
	for i := liveFrom; i < cfg.N; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(i)))
			_ = o.P.Sleep(rt.Ticks(rng.Int63n(int64(2 * rt.TicksPerD))))
			for k := 0; k < cfg.OpsPerNode; k++ {
				var err error
				if rng.Float64() < cfg.ScanRatio {
					_, err = o.Scan()
				} else {
					_, err = o.Update()
				}
				if err != nil {
					return
				}
			}
		})
	}

	h, err := c.Run()
	if err != nil {
		return res, fmt.Errorf("bench %s: %w", cfg.Algo, err)
	}
	st := harness.Latencies(h)
	ws := c.W.Stats()
	res.Ops = st.Count
	res.Msgs = ws.MsgsTotal
	res.VirtTimeD = ws.Now.DUnits()
	res.WorstUpd, res.WorstScan = st.WorstUpdate, st.WorstScan
	res.MeanUpd, res.MeanScan = st.MeanUpdate, st.MeanScan
	res.MeanAll = st.MeanAll
	res.P50, res.P99 = st.P50All, st.P99All
	if cfg.Check {
		if engine.MustLookup(string(cfg.Algo)).Sequential {
			res.CheckPassed = h.CheckSequentiallyConsistent().OK
		} else {
			res.CheckPassed = h.CheckLinearizable().OK
		}
		if !res.CheckPassed {
			return res, fmt.Errorf("bench %s: history check failed", cfg.Algo)
		}
	} else {
		res.CheckPassed = true
	}
	return res, nil
}
