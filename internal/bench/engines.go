package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"mpsnap/internal/engine"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// The engine bake-off runs every registered engine through one identical
// two-phase workload on the fault-free constant-D simulator: first every
// node issues opsPerNode updates (staggered), then the cluster quiesces
// (all writes fully replicated everywhere), then every node issues
// opsPerNode scans. The scan phase is therefore contention-free — the
// regime where fastsnap's one-round fast path and acr's committed-cache
// hit must beat EQ-ASO's multi-round scan, which is the acceptance gate
// Check enforces. Latencies are computed from the recorded history, so
// engines without op-event instrumentation are measured identically.

// EnginePoint is one engine's measurements in the bake-off.
type EnginePoint struct {
	Engine string `json:"engine"`
	N      int    `json:"n"`
	F      int    `json:"f"`
	Unit   string `json:"unit"` // always "d" (sim backend)

	UpdateCount int     `json:"updateCount"`
	UpdateP50   float64 `json:"updateP50"`
	UpdateP99   float64 `json:"updateP99"`
	UpdateMax   float64 `json:"updateMax"`

	ScanCount int     `json:"scanCount"`
	ScanP50   float64 `json:"scanP50"`
	ScanP99   float64 `json:"scanP99"`
	ScanMax   float64 `json:"scanMax"`

	Msgs        int64 `json:"msgs"`
	CheckPassed bool  `json:"checkPassed"`
}

// Engines is the full bake-off result, serialized to BENCH_engines.json
// by cmd/asobench -e engines.
type Engines struct {
	Env        Env           `json:"env"`
	N          int           `json:"n"`
	OpsPerNode int           `json:"opsPerNode"`
	Seed       int64         `json:"seed"`
	Points     []EnginePoint `json:"points"`
}

// RunEngines executes the bake-off over every registered engine.
func RunEngines(n, opsPerNode int, seed int64) (Engines, error) {
	out := Engines{Env: CaptureEnv(), N: n, OpsPerNode: opsPerNode, Seed: seed}
	for _, name := range engine.Names() {
		p, err := engineSweep(name, n, opsPerNode, seed)
		if err != nil {
			return out, fmt.Errorf("engines %s: %w", name, err)
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// engineSweep runs the two-phase workload on one engine.
func engineSweep(name string, n, opsPerNode int, seed int64) (EnginePoint, error) {
	in := engine.MustLookup(name)
	f := (n - 1) / 2
	if in.Byzantine {
		f = (n - 1) / 3
	}
	pt := EnginePoint{Engine: name, N: n, F: f, Unit: "d"}

	c := harness.Build(sim.Config{
		N: n, F: f, Seed: seed, Delay: sim.Constant{Ticks: rt.TicksPerD},
	}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		e := in.New(r)
		return e, e
	})

	// Quiescence point: by this virtual time every update has completed
	// AND its writes have reached all n servers (fault-free, delay ≤ D),
	// so the scan phase sees a stable, fully-replicated state. Generous:
	// worst fault-free update latency across the engines is ~6D plus the
	// 2D stagger.
	quiesce := rt.Ticks(10*opsPerNode+20) * rt.TicksPerD
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			// Stagger the nodes so the update phase has real interleaving.
			_ = o.P.Sleep(rt.Ticks(i) * rt.TicksPerD / 4)
			for k := 0; k < opsPerNode; k++ {
				if _, err := o.Update(); err != nil {
					return
				}
			}
			if wait := quiesce - o.P.Now(); wait > 0 {
				if err := o.P.Sleep(wait); err != nil {
					return
				}
			}
			for k := 0; k < opsPerNode; k++ {
				if _, err := o.Scan(); err != nil {
					return
				}
			}
		})
	}

	h, err := c.Run()
	if err != nil {
		return pt, err
	}
	if in.Sequential {
		pt.CheckPassed = h.CheckSequentiallyConsistent().OK
	} else {
		pt.CheckPassed = h.CheckLinearizable().OK
	}
	if !pt.CheckPassed {
		return pt, fmt.Errorf("history check failed")
	}
	ws := c.W.Stats()
	pt.Msgs = ws.MsgsTotal

	var upd, scan []float64
	for _, op := range h.Ops {
		if op.Pending() {
			continue
		}
		l := (op.Resp - op.Inv).DUnits()
		if op.Type == history.Update {
			upd = append(upd, l)
		} else {
			scan = append(scan, l)
		}
	}
	pt.UpdateCount, pt.ScanCount = len(upd), len(scan)
	pt.UpdateP50, pt.UpdateP99, pt.UpdateMax = quantiles(upd)
	pt.ScanP50, pt.ScanP99, pt.ScanMax = quantiles(scan)
	return pt, nil
}

func quantiles(vals []float64) (p50, p99, max float64) {
	if len(vals) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(vals)
	return percentile(vals, 0.50), percentile(vals, 0.99), vals[len(vals)-1]
}

func percentile(sorted []float64, p float64) float64 {
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Point returns the named engine's row.
func (e Engines) Point(name string) (EnginePoint, bool) {
	for _, p := range e.Points {
		if p.Engine == name {
			return p, true
		}
	}
	return EnginePoint{}, false
}

// Check enforces the bake-off acceptance criteria: every engine's history
// check passed, and fastsnap's contention-free SCAN p50 is strictly below
// EQ-ASO's.
func (e Engines) Check() error {
	for _, p := range e.Points {
		if !p.CheckPassed {
			return fmt.Errorf("engines: %s failed its history check", p.Engine)
		}
	}
	fs, ok1 := e.Point("fastsnap")
	eq, ok2 := e.Point("eqaso")
	if !ok1 || !ok2 {
		return fmt.Errorf("engines: bake-off missing fastsnap or eqaso row")
	}
	if fs.ScanP50 >= eq.ScanP50 {
		return fmt.Errorf("engines: fastsnap scan p50 %.2fD is not below eqaso's %.2fD under the contention-free workload",
			fs.ScanP50, eq.ScanP50)
	}
	return nil
}

// JSON renders the result for BENCH_engines.json.
func (e Engines) JSON() ([]byte, error) { return json.MarshalIndent(e, "", "  ") }

// Render formats the bake-off as the human-readable table printed by
// cmd/asobench -e engines.
func (e Engines) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Engine bake-off: n=%d (byzantine engines use f=%d), %d updates + %d scans per node,\n",
		e.N, (e.N-1)/3, e.OpsPerNode, e.OpsPerNode)
	sb.WriteString("constant-D delays, scans issued after full quiescence (contention-free)\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "engine\tupd p50\tupd p99\tupd max\tscan p50\tscan p99\tscan max\tmsgs\tcheck\n")
	for _, p := range e.Points {
		check := "ok"
		if !p.CheckPassed {
			check = "FAIL"
		}
		fmt.Fprintf(w, "%s\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%d\t%s\n",
			p.Engine, p.UpdateP50, p.UpdateP99, p.UpdateMax,
			p.ScanP50, p.ScanP99, p.ScanMax, p.Msgs, check)
	}
	w.Flush()
	sb.WriteString("shape: with no scan/update contention, fastsnap's one-collect fast path and\n")
	sb.WriteString("acr's committed-cache hit finish in ~2D — below eqaso's multi-round scan —\n")
	sb.WriteString("while sso stays ~0 (local reads, sequential consistency only).\n")
	return sb.String()
}
