package bench

import "testing"

func TestLatencyKs(t *testing.T) {
	ks := LatencyKs(16) // {0, 1, 4, 7}
	want := []int{0, 1, 4, 7}
	if len(ks) != len(want) {
		t.Fatalf("ks: got %v want %v", ks, want)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("ks: got %v want %v", ks, want)
		}
	}
	// Small n deduplicates and clamps.
	for _, k := range LatencyKs(5) {
		if k > 1 {
			t.Fatalf("n=5 ks out of range: %v", LatencyKs(5))
		}
	}
}

func TestRunLatencySmall(t *testing.T) {
	l, err := RunLatency(8, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Points) != len(l.Ks)*3 {
		t.Fatalf("points: got %d want %d", len(l.Points), len(l.Ks)*3)
	}
	byAlgoK := map[Algo]map[int]LatencyPoint{}
	for _, p := range l.Points {
		if p.Unit != "d" {
			t.Fatalf("unit: got %q want d", p.Unit)
		}
		if p.UpdateCount == 0 || p.ScanCount == 0 {
			t.Fatalf("%s k=%d recorded no ops: %+v", p.Algo, p.K, p)
		}
		if p.UpdateP50 <= 0 && p.Algo != SSOFast {
			t.Fatalf("%s k=%d zero update p50", p.Algo, p.K)
		}
		if m := byAlgoK[p.Algo]; m == nil {
			byAlgoK[p.Algo] = map[int]LatencyPoint{}
		}
		byAlgoK[p.Algo][p.K] = p
	}
	// The paper's amortized claim: EQ-ASO's p50 stays O(D) — within a
	// small constant factor of its failure-free p50 — at every k, even
	// though the worst case grows with k.
	free := byAlgoK[EQASO][0]
	for k, p := range byAlgoK[EQASO] {
		if k == 0 {
			continue
		}
		if p.UpdateP50 > 6*free.UpdateP50+6 {
			t.Errorf("eqaso k=%d update p50 %.1fD not O(D) (free %.1fD)", k, p.UpdateP50, free.UpdateP50)
		}
	}
	// SSO scans are local: p50 pinned at ~0 regardless of k.
	for k, p := range byAlgoK[SSOFast] {
		if p.ScanP50 > 0.5 {
			t.Errorf("sso k=%d scan p50 %.2fD, want ~0 (local scans)", k, p.ScanP50)
		}
	}
	if out := l.Render(); len(out) == 0 {
		t.Fatal("empty render")
	}
	if _, err := l.JSON(); err != nil {
		t.Fatal(err)
	}
}
