package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"text/tabwriter"

	"mpsnap/internal/obs"
)

// LatencyPoint is one cell of the latency-vs-k experiment: the latency
// distribution (in D units, from obs histograms) of one algorithm under k
// injected crashes.
type LatencyPoint struct {
	Algo Algo   `json:"algo"`
	N    int    `json:"n"`
	F    int    `json:"f"`
	K    int    `json:"k"`
	Unit string `json:"unit"` // always "d" (sim backend)

	UpdateCount uint64  `json:"updateCount"`
	UpdateP50   float64 `json:"updateP50"`
	UpdateP99   float64 `json:"updateP99"`
	UpdateMax   float64 `json:"updateMax"`

	ScanCount uint64  `json:"scanCount"`
	ScanP50   float64 `json:"scanP50"`
	ScanP99   float64 `json:"scanP99"`
	ScanMax   float64 `json:"scanMax"`

	Msgs int64 `json:"msgs"`
}

// Latency is the full experiment result, serialized to BENCH_latency.json
// by cmd/asobench -e latency.
type Latency struct {
	Env        Env            `json:"env"`
	N          int            `json:"n"`
	OpsPerNode int            `json:"opsPerNode"`
	Seed       int64          `json:"seed"`
	Ks         []int          `json:"ks"`
	Points     []LatencyPoint `json:"points"`
}

// LatencyKs is the crash-count ladder of the experiment: k ∈ {0, 1, √n,
// n/2−1}, deduplicated and capped at n/2−1 (the crash-resilience bound).
func LatencyKs(n int) []int {
	cand := []int{0, 1, int(math.Sqrt(float64(n))), n/2 - 1}
	var ks []int
	for _, k := range cand {
		if k < 0 {
			k = 0
		}
		if max := n/2 - 1; k > max {
			k = max
		}
		dup := false
		for _, seen := range ks {
			if seen == k {
				dup = true
			}
		}
		if !dup {
			ks = append(ks, k)
		}
	}
	return ks
}

// latencyAlgos are the instrumented algorithms the experiment covers.
func latencyAlgos() []Algo { return []Algo{EQASO, SSOFast, ByzASO} }

// RunLatency measures per-algorithm UPDATE/SCAN latency distributions in
// D units for each k in LatencyKs(n). EQ-ASO and the SSO face the
// failure-chain adversary (their analytical √k·D worst case); the
// Byzantine ASO faces plain crashes with k clamped to its f=(n−1)/3
// bound. Latencies come from obs.Metrics histograms recorded by the
// algorithms' own op events — the same numbers /metrics would export.
func RunLatency(n, opsPerNode int, seed int64) (Latency, error) {
	out := Latency{Env: CaptureEnv(), N: n, OpsPerNode: opsPerNode, Seed: seed, Ks: LatencyKs(n)}
	for _, a := range latencyAlgos() {
		f := (n - 1) / 2
		if a == ByzASO {
			f = (n - 1) / 3
		}
		for _, k := range out.Ks {
			ka := k
			if ka > f {
				ka = f
			}
			m := obs.NewSimMetrics()
			chains := a == EQASO || a == SSOFast
			res, err := Run(Config{
				Algo: a, N: n, F: f, OpsPerNode: opsPerNode, ScanRatio: 0.5,
				Seed: seed + int64(k)*101, Faults: Faults{Crashes: ka, Chains: chains},
				Check: false, Observer: m,
			})
			if err != nil {
				return out, fmt.Errorf("latency %s k=%d: %w", a, k, err)
			}
			upd, scan := m.Op("update"), m.Op("scan")
			p := LatencyPoint{
				Algo: a, N: n, F: f, K: res.K, Unit: m.Unit,
				UpdateCount: upd.Count, ScanCount: scan.Count,
				Msgs: res.Msgs,
			}
			p.UpdateP50, _, p.UpdateP99, p.UpdateMax = upd.Summary()
			p.ScanP50, _, p.ScanP99, p.ScanMax = scan.Summary()
			out.Points = append(out.Points, p)
		}
	}
	return out, nil
}

// JSON renders the result for BENCH_latency.json.
func (l Latency) JSON() ([]byte, error) { return json.MarshalIndent(l, "", "  ") }

// Render formats the experiment as the human-readable table printed by
// cmd/asobench -e latency.
func (l Latency) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Latency vs crash count k: n=%d, %d ops/node, constant-D delays, latencies in D units\n", l.N, l.OpsPerNode)
	sb.WriteString("(eqaso/sso face failure chains; byzaso plain crashes, k clamped to its f)\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "algorithm\tk\tupd p50\tupd p99\tupd max\tscan p50\tscan p99\tscan max\tops\n")
	for _, p := range l.Points {
		fmt.Fprintf(w, "%s\t%d\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%d\n",
			p.Algo, p.K, p.UpdateP50, p.UpdateP99, p.UpdateMax,
			p.ScanP50, p.ScanP99, p.ScanMax, p.UpdateCount+p.ScanCount)
	}
	w.Flush()
	sb.WriteString("shape: p50 stays O(D) for eqaso/sso at every k (amortized bound) while\n")
	sb.WriteString("max grows with k (≈√k·D under chains); sso scan columns stay ~0 (local).\n")
	return sb.String()
}
