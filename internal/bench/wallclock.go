package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"mpsnap/internal/loadgen"
)

// The wallclock experiment is the repository's first real-socket
// throughput number: loadgen meshes (TCP loopback, svc batching, closed
// loop) swept over engines × client counts, plus a tuned-vs-legacy
// bake-off at one saturating client count. Everything else in this
// package measures virtual time (ops per D on the simulator); this one
// measures what a deployment would: wall-clock ops/sec and client-visible
// latency percentiles.

// WallclockConfig parameterizes the sweep.
type WallclockConfig struct {
	// Engines and Clients span the sweep grid (tuned path).
	Engines []string
	Clients []int
	// N is the mesh size, Duration/Warmup the per-run windows.
	N                int
	Duration, Warmup time.Duration
	// ScanPct is the operation mix (see loadgen.Config).
	ScanPct int
	Seed    int64
	// BakeoffClients is the client count at which every engine is
	// additionally measured on the legacy (pre-optimization) path for the
	// tuned/legacy ratio; 0 means the largest entry of Clients.
	BakeoffClients int
}

// Wallclock is the full experiment result, serialized to
// BENCH_wallclock.json by cmd/asobench -e wallclock.
type Wallclock struct {
	Env      Env              `json:"env"`
	N        int              `json:"n"`
	Duration float64          `json:"durationSec"`
	Warmup   float64          `json:"warmupSec"`
	ScanPct  int              `json:"scanPct"`
	Seed     int64            `json:"seed"`
	Bakeoff  int              `json:"bakeoffClients"`
	Points   []loadgen.Result `json:"points"`
}

// RunWallclock sweeps engines × client counts on the tuned stack, then
// re-measures every engine at the bake-off client count on the legacy
// stack. Runs are sequential (each run owns the machine; overlapping
// meshes would measure scheduler contention, not the transport).
func RunWallclock(cfg WallclockConfig) (Wallclock, error) {
	if cfg.BakeoffClients == 0 {
		for _, c := range cfg.Clients {
			if c > cfg.BakeoffClients {
				cfg.BakeoffClients = c
			}
		}
	}
	out := Wallclock{
		Env: CaptureEnv(), N: cfg.N,
		Duration: cfg.Duration.Seconds(), Warmup: cfg.Warmup.Seconds(),
		ScanPct: cfg.ScanPct, Seed: cfg.Seed, Bakeoff: cfg.BakeoffClients,
	}
	run := func(engine string, clients int, legacy bool) error {
		res, err := loadgen.Run(loadgen.Config{
			Engine: engine, N: cfg.N, Clients: clients,
			Duration: cfg.Duration, Warmup: cfg.Warmup,
			ScanPct: cfg.ScanPct, Seed: cfg.Seed, Legacy: legacy,
		})
		if err != nil {
			return fmt.Errorf("wallclock %s clients=%d legacy=%v: %w", engine, clients, legacy, err)
		}
		out.Points = append(out.Points, res)
		return nil
	}
	for _, eng := range cfg.Engines {
		for _, c := range cfg.Clients {
			if err := run(eng, c, false); err != nil {
				return out, err
			}
		}
		if err := run(eng, cfg.BakeoffClients, true); err != nil {
			return out, err
		}
	}
	return out, nil
}

// point finds the sweep point for (engine, clients, path); nil if absent.
func (w Wallclock) point(engine string, clients int, path string) *loadgen.Result {
	for i := range w.Points {
		p := &w.Points[i]
		if p.Engine == engine && p.Clients == clients && p.Path == path {
			return p
		}
	}
	return nil
}

// Ratios returns each engine's tuned/legacy ops-per-sec ratio at the
// bake-off client count (engines without both measurements are skipped).
func (w Wallclock) Ratios() map[string]float64 {
	out := map[string]float64{}
	for i := range w.Points {
		p := &w.Points[i]
		if p.Clients != w.Bakeoff || p.Path != "tuned" {
			continue
		}
		if l := w.point(p.Engine, w.Bakeoff, "legacy"); l != nil && l.OpsPerSec > 0 {
			out[p.Engine] = p.OpsPerSec / l.OpsPerSec
		}
	}
	return out
}

// Check enforces the transport-optimization acceptance criterion: at the
// bake-off client count, the tuned stack must reach at least minRatio×
// the legacy stack's ops/sec on some engine. The gate takes the best
// engine because the ratio only measures the transport where the
// transport is the bottleneck: eqaso saturates its own O(history) view
// maintenance long before the socket path, while the acr and fastsnap
// challengers push the transport hard enough to expose it.
func (w Wallclock) Check(minRatio float64) error {
	ratios := w.Ratios()
	if len(ratios) == 0 {
		return fmt.Errorf("wallclock: no tuned/legacy pairs at %d clients", w.Bakeoff)
	}
	best, bestEng := 0.0, ""
	for eng, r := range ratios {
		if r > best {
			best, bestEng = r, eng
		}
	}
	if best < minRatio {
		return fmt.Errorf("wallclock: best tuned/legacy ratio %.2f× (%s) at %d clients, need >= %.2f×",
			best, bestEng, w.Bakeoff, minRatio)
	}
	return nil
}

// JSON renders the result for BENCH_wallclock.json.
func (w Wallclock) JSON() ([]byte, error) { return json.MarshalIndent(w, "", "  ") }

// Render formats the experiment as the human-readable table printed by
// cmd/asobench -e wallclock.
func (w Wallclock) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Wall-clock saturation: %d-node TCP loopback mesh, closed loop, %d%% scans, %.1fs window (%s, %d cpus)\n",
		w.N, w.ScanPct, w.Duration, w.Env.GoVersion, w.Env.NumCPU)
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tpath\tclients\tops/s\tupd p50\tupd p99\tscan p50\tscan p99\tamort\tallocs/op")
	for _, p := range w.Points {
		amort := 0.0
		if p.SvcProtoUpdates+p.SvcProtoScans > 0 {
			amort = float64(p.SvcUpdates+p.SvcScans) / float64(p.SvcProtoUpdates+p.SvcProtoScans)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.1fms\t%.1fms\t%.1fms\t%.1fms\t%.1fx\t%.0f\n",
			p.Engine, p.Path, p.Clients, p.OpsPerSec,
			p.Update.P50/1e3, p.Update.P99/1e3, p.Scan.P50/1e3, p.Scan.P99/1e3,
			amort, p.AllocsPerOp)
	}
	tw.Flush()
	for eng, r := range w.Ratios() {
		fmt.Fprintf(&sb, "bake-off @ %d clients: %s tuned is %.2fx legacy ops/s\n", w.Bakeoff, eng, r)
	}
	return sb.String()
}
