package bench

import (
	"strings"
	"testing"
)

func TestRunClusterSmall(t *testing.T) {
	// Shipped keys/scans parameters: the 1.2× gate is measured on means,
	// and smaller samples are noisy enough to sit right at the limit.
	c, err := RunCluster(3, 1, []int{1, 2}, 8, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 2 {
		t.Fatalf("points: got %d want 2", len(c.Points))
	}
	if c.BaselineScanD <= 0 {
		t.Fatalf("baseline scan %.2fD, want > 0", c.BaselineScanD)
	}
	for _, p := range c.Points {
		if p.ScanMeanD <= 0 || p.ScanWorstD < p.ScanMeanD {
			t.Errorf("shards=%d: implausible scan latency %+v", p.Shards, p)
		}
		if p.SkewMaxD < p.SkewMeanD {
			t.Errorf("shards=%d: skew max %.2fD below mean %.2fD", p.Shards, p.SkewMaxD, p.SkewMeanD)
		}
		if p.Nodes != p.Shards*3 || p.Keys != p.Shards*8 {
			t.Errorf("shards=%d: wrong topology in point %+v", p.Shards, p)
		}
	}
	if c.OneShardRatio <= 0 {
		t.Fatalf("one-shard ratio %.2f, want > 0", c.OneShardRatio)
	}
	// The acceptance gate the bench-smoke run enforces.
	if err := c.Check(1.2); err != nil {
		t.Errorf("shards=1 overhead gate: %v", err)
	}
	if out := c.Render(); !strings.Contains(out, "baseline") {
		t.Fatalf("render missing baseline line:\n%s", out)
	}
	if _, err := c.JSON(); err != nil {
		t.Fatal(err)
	}
}
