// The codec micro-benchmark: typed internal/wire vs the encoding/gob
// baseline it replaced, over the EQ-ASO hot messages.
//
// Both sides come from running internal/wire's external benchmark file
// (gob is banned from non-test sources) and parsing the output of
// `go test -bench 'BenchmarkWireCodec|BenchmarkGobCodec' ./internal/wire`
// — one process, one corpus, directly comparable numbers. This is why the
// experiment needs the go toolchain and the repository root as working
// directory (how make and CI invoke it).
package bench

import (
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"text/tabwriter"
)

// CodecPoint is one codec's measurement, for the JSON perf artifact.
type CodecPoint struct {
	Codec       string  `json:"codec"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"allocBytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	WireBytes   float64 `json:"wireBytesPerOp,omitempty"`
}

// CodecReport is the experiment's JSON artifact: both measurements plus
// the headline ratio.
type CodecReport struct {
	Env     Env        `json:"env"`
	Wire    CodecPoint `json:"wire"`
	Gob     CodecPoint `json:"gob"`
	Speedup float64    `json:"speedup"`
}

// Codec measures wire-vs-gob encode+decode cost per message and reports
// the speedup.
func Codec() (string, CodecReport, error) {
	out, err := exec.Command("go", "test", "-run", "^$",
		"-bench", "^(BenchmarkWireCodec|BenchmarkGobCodec)$",
		"-benchmem", "./internal/wire").CombinedOutput()
	if err != nil {
		return "", CodecReport{}, fmt.Errorf("codec: benchmarks (run from the repository root): %v\n%s", err, out)
	}
	wirePoint, err := parseBenchLine(string(out), "Wire")
	if err != nil {
		return "", CodecReport{}, err
	}
	gobPoint, err := parseBenchLine(string(out), "Gob")
	if err != nil {
		return "", CodecReport{}, err
	}

	speedup := 0.0
	if wirePoint.NsPerOp > 0 {
		speedup = gobPoint.NsPerOp / wirePoint.NsPerOp
	}

	var sb strings.Builder
	sb.WriteString("Codec round trip (encode+decode), EQ-ASO hot messages\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "codec\tns/op\twire bytes/op\talloc B/op\tallocs/op")
	for _, p := range []CodecPoint{wirePoint, gobPoint} {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%d\t%d\n", p.Codec, p.NsPerOp, p.WireBytes, p.BytesPerOp, p.AllocsPerOp)
	}
	w.Flush()
	fmt.Fprintf(&sb, "speedup: wire is %.1fx faster than gob\n", speedup)

	return sb.String(), CodecReport{Env: CaptureEnv(), Wire: wirePoint, Gob: gobPoint, Speedup: speedup}, nil
}

// parseBenchLine extracts one `go test -bench` result line, e.g.
// BenchmarkGobCodec  20223  17363 ns/op  77.24 wirebytes/op  8386 B/op  179 allocs/op
func parseBenchLine(out, which string) (CodecPoint, error) {
	re := regexp.MustCompile(
		`Benchmark` + which + `Codec\S*\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) wirebytes/op\s+(\d+) B/op\s+(\d+) allocs/op`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		return CodecPoint{}, fmt.Errorf("codec: no Benchmark%sCodec line in benchmark output:\n%s", which, out)
	}
	ns, _ := strconv.ParseFloat(m[1], 64)
	wb, _ := strconv.ParseFloat(m[2], 64)
	ab, _ := strconv.ParseInt(m[3], 10, 64)
	ac, _ := strconv.ParseInt(m[4], 10, 64)
	return CodecPoint{Codec: strings.ToLower(which), NsPerOp: ns, BytesPerOp: ab, AllocsPerOp: ac, WireBytes: wb}, nil
}
