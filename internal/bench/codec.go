// The codec micro-benchmark: typed internal/wire vs the encoding/gob
// baseline it replaced, over the EQ-ASO hot messages.
//
// The wire side is measured in-process with testing.Benchmark. The gob
// baseline lives in internal/wire's external benchmark file (gob is banned
// from non-test sources), so its numbers come from running
// `go test -bench BenchmarkGobCodec ./internal/wire` and parsing the
// output — which is why this experiment needs the go toolchain and the
// repository root as working directory (how make and CI invoke it).
package bench

import (
	"fmt"
	"math/rand"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"text/tabwriter"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"

	// Registers the EQ-ASO message codecs the corpus generates.
	_ "mpsnap/internal/eqaso"
)

// CodecPoint is one codec's measurement, for the JSON perf artifact.
type CodecPoint struct {
	Codec       string  `json:"codec"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"allocBytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	WireBytes   float64 `json:"wireBytesPerOp,omitempty"`
}

// CodecReport is the experiment's JSON artifact: both measurements plus
// the headline ratio.
type CodecReport struct {
	Wire    CodecPoint `json:"wire"`
	Gob     CodecPoint `json:"gob"`
	Speedup float64    `json:"speedup"`
}

// codecCorpus mirrors the corpus of internal/wire's benchmarks: the
// EQ-ASO hot messages (tags 16–24), generated from one fixed seed.
func codecCorpus() []rt.Message {
	rng := rand.New(rand.NewSource(1))
	var msgs []rt.Message
	for _, c := range wire.Registered() {
		if c.Tag < 16 || c.Tag > 24 {
			continue
		}
		for k := 0; k < 4; k++ {
			msgs = append(msgs, c.Gen(rng))
		}
	}
	return msgs
}

// Codec measures wire-vs-gob encode+decode cost per message and reports
// the speedup.
func Codec() (string, CodecReport, error) {
	msgs := codecCorpus()
	if len(msgs) == 0 {
		return "", CodecReport{}, fmt.Errorf("codec: no eqaso codecs registered")
	}

	var buf wire.Buffer
	wireBytes := 0
	ops := 0
	res := testing.Benchmark(func(b *testing.B) {
		wireBytes, ops = 0, b.N
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			msg := msgs[i%len(msgs)]
			buf.Reset()
			if err := wire.AppendMessage(&buf, msg); err != nil {
				b.Fatal(err)
			}
			wireBytes += buf.Len()
			if _, err := wire.Unmarshal(buf.Bytes()); err != nil {
				b.Fatal(err)
			}
		}
	})
	wirePoint := CodecPoint{
		Codec:       "wire",
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		WireBytes:   float64(wireBytes) / float64(ops),
	}

	gobPoint, err := gobBaseline()
	if err != nil {
		return "", CodecReport{}, err
	}

	speedup := 0.0
	if wirePoint.NsPerOp > 0 {
		speedup = gobPoint.NsPerOp / wirePoint.NsPerOp
	}

	var sb strings.Builder
	sb.WriteString("Codec round trip (encode+decode), EQ-ASO hot messages\n")
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "codec\tns/op\twire bytes/op\talloc B/op\tallocs/op")
	for _, p := range []CodecPoint{wirePoint, gobPoint} {
		fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%d\t%d\n", p.Codec, p.NsPerOp, p.WireBytes, p.BytesPerOp, p.AllocsPerOp)
	}
	w.Flush()
	fmt.Fprintf(&sb, "speedup: wire is %.1fx faster than gob\n", speedup)

	return sb.String(), CodecReport{Wire: wirePoint, Gob: gobPoint, Speedup: speedup}, nil
}

// benchLine matches one `go test -bench` result line, e.g.
// BenchmarkGobCodec  20223  17363 ns/op  77.24 wirebytes/op  8386 B/op  179 allocs/op
var benchLine = regexp.MustCompile(
	`BenchmarkGobCodec\S*\s+\d+\s+([\d.]+) ns/op\s+([\d.]+) wirebytes/op\s+(\d+) B/op\s+(\d+) allocs/op`)

func gobBaseline() (CodecPoint, error) {
	out, err := exec.Command("go", "test", "-run", "^$",
		"-bench", "^BenchmarkGobCodec$", "-benchmem", "./internal/wire").CombinedOutput()
	if err != nil {
		return CodecPoint{}, fmt.Errorf("codec: gob baseline (run from the repository root): %v\n%s", err, out)
	}
	m := benchLine.FindStringSubmatch(string(out))
	if m == nil {
		return CodecPoint{}, fmt.Errorf("codec: no benchmark line in gob baseline output:\n%s", out)
	}
	ns, _ := strconv.ParseFloat(m[1], 64)
	wb, _ := strconv.ParseFloat(m[2], 64)
	ab, _ := strconv.ParseInt(m[3], 10, 64)
	ac, _ := strconv.ParseInt(m[4], 10, 64)
	return CodecPoint{Codec: "gob", NsPerOp: ns, BytesPerOp: ab, AllocsPerOp: ac, WireBytes: wb}, nil
}
