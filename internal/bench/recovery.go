package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"mpsnap/internal/core"
	"mpsnap/internal/wal"
)

// The recovery experiment measures crash-recovery at the WAL/value-log
// level: a node lives through H value arrivals under the protocol's
// durability discipline (every value appended, a checkpoint every window,
// and — with GC — a prune record once the previous checkpoint is globally
// vouched), then crashes and replays its durable image with wal.Recover.
//
// Two claims are on trial as H grows:
//   - recovery latency tracks the WAL size (replay is one linear pass —
//     no index rebuild, no quadratic rescans);
//   - with GC on, the recovered log's resident bytes stay flat (the prune
//     records replay too, so a restarted node holds the active window,
//     not the whole history); with GC off they grow linearly in H.

// RecoveryPoint is the cost of one crash-recovery at one history length.
type RecoveryPoint struct {
	GC        bool    `json:"gc"`
	H         int     `json:"h"`        // values written before the crash
	WALBytes  int     `json:"walBytes"` // durable image size
	Records   int     `json:"records"`  // intact records replayed
	RecoverNs float64 `json:"recoverNs"`
	HeapBytes int     `json:"heapBytes"` // recovered value log resident size
	Retained  int     `json:"retained"`  // values held physically after replay
	Pruned    int     `json:"pruned"`    // values below the replayed prune point
}

// Recovery is the full experiment result, serialized to
// BENCH_recovery.json by cmd/asobench -e recovery.
type Recovery struct {
	Env    Env   `json:"env"`
	N      int   `json:"n"`      // cluster size
	Window int   `json:"window"` // values per checkpoint window
	Hs     []int `json:"hs"`

	Points []RecoveryPoint `json:"points"`

	// Heap growth ratios from the smallest to the largest H. The GC-on
	// ratio is the flatness criterion; the GC-off ratio documents the
	// O(H) residency being pruned away.
	GCHeapGrowth   float64 `json:"gcHeapGrowth"`
	NoGCHeapGrowth float64 `json:"noGCHeapGrowth"`
}

// recoveryValue deterministically derives the i-th arriving value.
func recoveryValue(i, n int) core.Value {
	return core.Value{
		TS:      core.Timestamp{Tag: core.Tag(i + 1), Writer: i % n},
		Payload: []byte("recovery-payload-0123456789abcdef"),
	}
}

// recoveryWAL writes the durable image of a node that lived through h
// values with a checkpoint every window (and, with gc, a prune of each
// checkpoint one window after it was taken, mirroring the vouch lag a
// live cluster has).
func recoveryWAL(n, h, window int, gc bool) *wal.MemFile {
	f := wal.NewMemFile()
	w := wal.NewWriter(f, 64)
	l := core.NewValueLog(n, 0)
	var lastCk core.Checkpoint
	for i := 0; i < h; i++ {
		v := recoveryValue(i, n)
		if src := v.TS.Writer; src == 0 {
			l.AddSelf(v)
			w.AppendValue(src, v)
			w.Sync() // own values sync before dissemination
		} else {
			l.Add(src, v)
			w.AppendValue(src, v)
		}
		if (i+1)%window != 0 {
			continue
		}
		l.AdvanceFrontier(core.Tag(i + 1))
		ck := l.Frontier()
		w.AppendCheckpoint(ck)
		w.Sync() // checkpoints sync before vouching
		if gc && lastCk.Count > 0 {
			for j := 1; j < n; j++ {
				l.NoteVouch(j, lastCk)
			}
			w.AppendPrune(lastCk)
			w.Sync() // prunes sync before executing
			l.PruneTo(lastCk)
		}
		lastCk = ck
	}
	w.Sync()
	return f
}

// RunRecovery sweeps history lengths hs for GC off and on, measuring the
// WAL replay latency and the recovered log's residency with n nodes and
// `window` values per checkpoint, averaging the timed replay over reps.
func RunRecovery(n, window, reps int, hs []int) Recovery {
	out := Recovery{Env: CaptureEnv(), N: n, Window: window, Hs: hs}
	for _, gc := range []bool{false, true} {
		for _, h := range hs {
			f := recoveryWAL(n, h, window, gc)
			data := f.Durable()
			var st *wal.State
			start := time.Now()
			for r := 0; r < reps; r++ {
				st = wal.Recover(data, n, 0)
			}
			elapsed := time.Since(start)
			out.Points = append(out.Points, RecoveryPoint{
				GC:        gc,
				H:         h,
				WALBytes:  len(data),
				Records:   st.Records,
				RecoverNs: float64(elapsed.Nanoseconds()) / float64(reps),
				HeapBytes: st.Log.HeapBytes(),
				Retained:  st.Log.RetainedLen(),
				Pruned:    st.Log.PrunedCount(),
			})
		}
	}
	out.GCHeapGrowth = out.heapGrowth(true)
	out.NoGCHeapGrowth = out.heapGrowth(false)
	return out
}

// heapGrowth returns HeapBytes(largest H) / HeapBytes(smallest H) for one
// GC setting.
func (r Recovery) heapGrowth(gc bool) float64 {
	var first, last float64
	seen := false
	for _, p := range r.Points {
		if p.GC != gc {
			continue
		}
		if !seen {
			first = float64(p.HeapBytes)
			seen = true
		}
		last = float64(p.HeapBytes)
	}
	if !seen || first == 0 {
		return 0
	}
	return last / first
}

// Check enforces the flat-residency acceptance criterion: with GC on, the
// recovered log's heap bytes may grow at most `limit`× across the whole H
// sweep (replay latency is too noisy to gate on; residency is a
// deterministic function of the WAL contents).
func (r Recovery) Check(limit float64) error {
	if r.GCHeapGrowth > limit {
		return fmt.Errorf("recovery: GC-on recovered heap grew %.2f× from H=%d to H=%d (limit %.2f×)",
			r.GCHeapGrowth, r.Hs[0], r.Hs[len(r.Hs)-1], limit)
	}
	return nil
}

// JSON renders the result for BENCH_recovery.json.
func (r Recovery) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Render formats the experiment as the human-readable table printed by
// cmd/asobench -e recovery.
func (r Recovery) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Crash-recovery: WAL replay and recovered residency, n=%d, checkpoint every %d values\n",
		r.N, r.Window)
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "gc\tH\tWAL KB\trecords\trecover µs\theap KB\tretained\tpruned\n")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%v\t%d\t%.0f\t%d\t%.0f\t%.0f\t%d\t%d\n",
			p.GC, p.H, float64(p.WALBytes)/1024, p.Records, p.RecoverNs/1e3,
			float64(p.HeapBytes)/1024, p.Retained, p.Pruned)
	}
	w.Flush()
	fmt.Fprintf(&sb, "recovered heap growth %d→%d: GC on %.2f× (must stay ≤2.0×), GC off %.2f× (linear in H)\n",
		r.Hs[0], r.Hs[len(r.Hs)-1], r.GCHeapGrowth, r.NoGCHeapGrowth)
	return sb.String()
}
