package bench

import (
	"fmt"
	"math"
	mrand "math/rand"
	"strings"
	"text/tabwriter"

	"mpsnap/internal/engine"
	"mpsnap/internal/harness"
	"mpsnap/internal/la"
	"mpsnap/internal/rbc"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// Table1 regenerates the shape of the paper's Table I: per-algorithm worst
// and amortized (mean) UPDATE/SCAN latency in D units, failure-free and
// with k failures. Forwarding algorithms (EQ-ASO, SSO, LAASO) face the
// failure-chain adversary — their analytical worst case — while the
// others face random crash times.
func Table1(n, f, k, opsPerNode int, seed int64) (string, error) {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(&sb, "Table I reproduction: n=%d, f=%d (byzantine rows use f=%d), k=%d, %d ops/node, all delays = D\n",
		n, f, (n-1)/3, k, opsPerNode)
	fmt.Fprintf(w, "algorithm\tUPDATE worst\tUPDATE amort\tSCAN worst\tSCAN amort\tworst(k=%d)\tamort(k=%d)\tmsgs\n", k, k)
	for _, a := range TableAlgos() {
		af := f
		if a == ByzASO {
			af = (n - 1) / 3
		}
		free, err := Run(Config{Algo: a, N: n, F: af, OpsPerNode: opsPerNode, ScanRatio: 0.5, Seed: seed, Check: true})
		if err != nil {
			return "", err
		}
		chains := a == EQASO || a == SSOFast || a == LAASO
		faulty, err := Run(Config{Algo: a, N: n, F: af, OpsPerNode: opsPerNode, ScanRatio: 0.5, Seed: seed + 1,
			Faults: Faults{Crashes: min(k, af), Chains: chains}, Check: true})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%s\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%d\n",
			a, free.WorstUpd, free.MeanUpd, free.WorstScan, free.MeanScan,
			math.Max(faulty.WorstUpd, faulty.WorstScan), faulty.MeanAll, free.Msgs)
	}
	w.Flush()
	sb.WriteString("paper's shapes: [19] O(D)/O(nD); [12] O(nD)/O(nD); stacking O(n²D); LA-ASO O(nD);\n")
	sb.WriteString("Byz O(kD); EQ-ASO O(√kD) worst + O(D) amortized; SSO scans O(1).\n")
	return sb.String(), nil
}

// SqrtK regenerates the √k worst-case experiment (Lemma 8). The failure
// chains of Definition 11 expose one value per interval: chain ℓ's value
// first reaches a correct node at ~(ℓ+1)·D and perturbs every equivalence
// quorum for the following ~D. A probe UPDATE invoked at t=0 — whose
// LatticeRenewal must stabilize EQ(V^{≤1}) — is therefore delayed until
// the last chain drains: ~(L+4)·D where L ≈ √(2k) is the longest chain.
// The pull-based LAASO baseline pays roughly a pull round (2D) per
// exposure instead.
func SqrtK(ks []int, _ int, seed int64) (string, error) {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	sb.WriteString("Probe UPDATE latency under failure chains (constant-D delays)\n")
	fmt.Fprintf(w, "k\tn\tL=longest chain\teqaso probe\t(probe-4D)/L\tlaaso probe\n")
	for _, k := range ks {
		n := 2*k + 3
		if n < 5 {
			n = 5
		}
		eq, L, err := SqrtKProbe(EQASO, n, k, seed)
		if err != nil {
			return "", err
		}
		lb, _, err := SqrtKProbe(LAASO, n, k, seed)
		if err != nil {
			return "", err
		}
		norm := (eq - 4) / float64(max(L, 1))
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1fD\t%.2f\t%.1fD\n", k, n, L, eq, norm, lb)
	}
	w.Flush()
	sb.WriteString("shape: the eqaso probe grows like the longest chain L ≈ √(2k)·D (the\n")
	sb.WriteString("normalized column settles ~constant once L dominates the fixed 4-6D base\n")
	sb.WriteString("cost). The pull-based laaso runs the same workload for reference; chains\n")
	sb.WriteString("cannot form against it (it never forwards), so its column reflects pull\n")
	sb.WriteString("contention with the concurrent head updates instead.\n")
	return sb.String(), nil
}

// SqrtKProbe runs chain heads' updates plus one probe update on a live
// node and returns the probe's latency in D units and the longest chain.
//
// Chain hops take D-δ while every other message takes exactly D: the
// paper's adversary controls sub-D timing, and this offset is what makes
// chain m+1's exposure land strictly inside chain m's settlement window,
// keeping the equivalence quorum perturbed continuously (with exact ties,
// the predicate can slip through between two same-instant deliveries).
func SqrtKProbe(a Algo, n, k int, seed int64) (float64, int, error) {
	f := (n - 1) / 2
	pool := make([]int, k)
	for i := range pool {
		pool[i] = i
	}
	chains, used := sim.BuildChains(pool, k, n-1)
	longest := 1
	for _, ch := range chains {
		if len(ch.Nodes) > longest {
			longest = len(ch.Nodes)
		}
	}
	faulty := make(map[int]bool, used)
	for _, ch := range chains {
		for _, nd := range ch.Nodes[:len(ch.Nodes)-1] {
			faulty[nd] = true
		}
	}
	const delta = rt.TicksPerD / 20
	delay := sim.DelayFunc(func(src, dst int, kind string, now rt.Ticks, _ *mrand.Rand) rt.Ticks {
		if faulty[src] && kind == "value" {
			return rt.TicksPerD - delta
		}
		return rt.TicksPerD
	})
	cfg := sim.Config{N: n, F: f, Seed: seed, Delay: delay}
	if used > 0 {
		cfg.Adversary = sim.NewFailureChains(keyOf(a), chains...)
	}
	c := harnessBuild(cfg, a)
	for _, ch := range chains {
		head := ch.Nodes[0]
		c.Client(head, func(o *harness.OpRunner) { _, _ = o.Update() })
	}
	probe := used // first live node
	var latency rt.Ticks
	c.Client(probe, func(o *harness.OpRunner) {
		start := o.P.Now()
		if _, err := o.Update(); err != nil {
			return
		}
		latency = o.P.Now() - start
	})
	if _, err := c.Run(); err != nil {
		return 0, longest, fmt.Errorf("sqrtk %s k=%d: %w", a, k, err)
	}
	return latency.DUnits(), longest, nil
}

func harnessBuild(cfg sim.Config, a Algo) *harness.Cluster {
	return harness.Build(cfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		return make1(a, r)
	})
}

// Amortized regenerates the amortized-constant-time claim: with k fixed
// and the number of operations growing past √k, the mean per-operation
// latency flattens to a constant.
func Amortized(k int, opsList []int, seed int64) (string, error) {
	n := 2*k + 3
	f := (n - 1) / 2
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(&sb, "Amortized time, EQ-ASO, k=%d failure-chain faults, n=%d\n", k, n)
	fmt.Fprintf(w, "ops/node\ttotal ops\tmean\tp50\tp99\tworst\n")
	for _, ops := range opsList {
		res, err := Run(Config{Algo: EQASO, N: n, F: f, OpsPerNode: ops, ScanRatio: 0.5,
			Seed: seed, Faults: Faults{Crashes: k, Chains: true}, Check: ops <= 8})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%d\t%d\t%.2fD\t%.1fD\t%.1fD\t%.1fD\n", ops, res.Ops, res.MeanAll,
			res.P50, res.P99, math.Max(res.WorstUpd, res.WorstScan))
	}
	w.Flush()
	sb.WriteString("shape: mean latency approaches a constant as operations exceed √k.\n")
	return sb.String(), nil
}

// FailureFree regenerates the unconditional failure-free constant-time
// claim and the baselines' growth with n: every message takes exactly D,
// every node runs a contended mixed workload.
func FailureFree(ns []int, opsPerNode int, seed int64) (string, error) {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	sb.WriteString("Failure-free worst op latency vs n (constant-D delays, contended)\n")
	header := "n"
	for _, a := range TableAlgos() {
		header += "\t" + string(a)
	}
	fmt.Fprintln(w, header)
	for _, n := range ns {
		row := fmt.Sprintf("%d", n)
		for _, a := range TableAlgos() {
			if a == Stacked && n > 16 {
				row += "\t(skip)"
				continue
			}
			f := (n - 1) / 2
			if a == ByzASO {
				f = (n - 1) / 3
			}
			res, err := Run(Config{Algo: a, N: n, F: f, OpsPerNode: opsPerNode, ScanRatio: 0.5, Seed: seed, Check: n <= 16})
			if err != nil {
				return "", err
			}
			row += fmt.Sprintf("\t%.1fD", math.Max(res.WorstUpd, res.WorstScan))
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	sb.WriteString("shape: eqaso/sso stay flat; delporte's scans, storecollect, and the stacked\n")
	sb.WriteString("construction grow with n (stacking grows ~n² and is skipped past n=16).\n")
	return sb.String(), nil
}

// Byzantine regenerates the Byzantine ASO behaviour under two strategies:
// silent cohorts of size k (crash-like; the algorithm absorbs them at
// near-constant latency), and the tag-ratchet attack, where Byzantine
// nodes keep announcing maxTag+1 — the corroboration ladder limits them to
// one step per round trip, so a victim operation is stretched by ~one
// lattice iteration per ratchet step (the k-proportional interference
// behind the paper's O(k·D) bound).
func Byzantine(fs []int, opsPerNode int, seed int64) (string, error) {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	sb.WriteString("Byzantine ASO, n = 3f+1 (constant-D delays)\n")
	fmt.Fprintln(w, "f\tn\tstrategy\tworst\tmean\tmsgs")
	for _, f := range fs {
		n := 3*f + 1
		for _, k := range []int{0, f} {
			res, err := Run(Config{Algo: ByzASO, N: n, F: f, OpsPerNode: opsPerNode, ScanRatio: 0.5,
				Seed: seed, Faults: Faults{Crashes: k}, Check: true})
			if err != nil {
				return "", err
			}
			strat := "honest"
			if k > 0 {
				strat = fmt.Sprintf("%d silent", res.K)
			}
			fmt.Fprintf(w, "%d\t%d\t%s\t%.1fD\t%.2fD\t%d\n", f, n, strat,
				math.Max(res.WorstUpd, res.WorstScan), res.MeanAll, res.Msgs)
		}
	}
	// Tag-ratchet rows: probe scan latency while the attack is running.
	for _, steps := range []int{0, 4, 8, 16} {
		lat, err := byzRatchetProbe(2, steps, seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "2\t7\tratchet ×%d\t%.1fD\t\t\n", steps, lat)
	}
	w.Flush()
	sb.WriteString("shape: silent cohorts cost ~nothing. The tag-ratchet attack (Byzantine\n")
	sb.WriteString("nodes perpetually announcing maxTag+1) cannot starve operations either:\n")
	sb.WriteString("the corroboration ladder needs a full RBC round (≥3D) per step while a\n")
	sb.WriteString("victim's lattice retry takes 2D, so interference is bounded by a couple\n")
	sb.WriteString("of extra iterations regardless of attack depth — within the paper's\n")
	sb.WriteString("O(k·D) bound.\n")
	return sb.String(), nil
}

// byzRatchetProbe measures one scan's latency at a live node while f
// Byzantine nodes ratchet tags upward `steps` times.
func byzRatchetProbe(f, steps int, seed int64) (float64, error) {
	n := 3*f + 1
	w := sim.New(sim.Config{N: n, F: f, Seed: seed, Delay: sim.Constant{Ticks: rt.TicksPerD}})
	nodes := make([]engine.Engine, n)
	for i := 0; i < n; i++ {
		nodes[i] = engine.MustLookup("byzaso").New(w.Runtime(i))
		w.SetHandler(i, nodes[i])
	}
	// Byzantine ratchet: raw RBC instances announcing growing tags.
	for b := 0; b < f; b++ {
		layer := rbc.New(w.Runtime(b), nil)
		w.Go(fmt.Sprintf("ratchet-%d", b), func(p *sim.Proc) {
			for s := 1; s <= steps; s++ {
				layer.Broadcast(encodeByzTag(rt.Ticks(s)))
				if err := p.Sleep(2 * rt.TicksPerD); err != nil {
					return
				}
			}
		})
	}
	probe := f
	var latency rt.Ticks
	w.GoNode("probe", probe, func(p *sim.Proc) {
		// Scan in the middle of the attack, when the ratchet pipeline
		// is warm — the adversary's best window.
		_ = p.Sleep(6 * rt.TicksPerD)
		start := p.Now()
		if _, err := nodes[probe].Scan(); err != nil {
			return
		}
		latency = p.Now() - start
	})
	if err := w.Run(); err != nil {
		return 0, err
	}
	return latency.DUnits(), nil
}

// encodeByzTag mirrors byzaso's tag payload encoding (kind byte 2 + 8-byte
// big-endian tag).
func encodeByzTag(tag rt.Ticks) []byte {
	buf := make([]byte, 9)
	buf[0] = 2
	for i := 0; i < 8; i++ {
		buf[8-i] = byte(uint64(tag) >> (8 * i))
	}
	return buf
}

// SSOScan regenerates the fast-scan rows: the SSO's scans complete in zero
// time with zero messages while its updates match EQ-ASO's.
func SSOScan(n, opsPerNode int, seed int64) (string, error) {
	f := (n - 1) / 2
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(&sb, "SSO-Fast-Scan vs EQ-ASO, n=%d, scan-heavy workload (constant-D delays)\n", n)
	fmt.Fprintln(w, "algorithm\tscan worst\tscan mean\tupdate worst\tmsgs total")
	for _, a := range []Algo{EQASO, SSOFast} {
		res, err := Run(Config{Algo: a, N: n, F: f, OpsPerNode: opsPerNode, ScanRatio: 0.75, Seed: seed, Check: true})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%s\t%.2fD\t%.2fD\t%.1fD\t%d\n", a, res.WorstScan, res.MeanScan, res.WorstUpd, res.Msgs)
	}
	w.Flush()
	sb.WriteString("shape: SSO scans take 0D and send 0 messages; updates match EQ-ASO.\n")
	return sb.String(), nil
}

// Messages reports per-operation message complexity: total messages sent
// divided by completed operations, per algorithm, on the same contended
// failure-free workload. The paper optimizes time; this table records the
// message price each design pays for it (EQ-ASO's proactive forwarding is
// O(n²) messages per new value; Bracha RBC costs another factor).
func Messages(n, opsPerNode int, seed int64) (string, error) {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(&sb, "Message complexity, n=%d, %d ops/node (constant-D delays)\n", n, opsPerNode)
	fmt.Fprintln(w, "algorithm\tmsgs total\tmsgs/op\tworst op")
	for _, a := range TableAlgos() {
		if a == Stacked && n > 16 {
			continue
		}
		f := (n - 1) / 2
		if a == ByzASO {
			f = (n - 1) / 3
		}
		res, err := Run(Config{Algo: a, N: n, F: f, OpsPerNode: opsPerNode, ScanRatio: 0.5, Seed: seed, Check: true})
		if err != nil {
			return "", err
		}
		perOp := float64(res.Msgs) / float64(max(res.Ops, 1))
		worst := math.Max(res.WorstUpd, res.WorstScan)
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1fD\n", a, res.Msgs, perOp, worst)
	}
	w.Flush()
	sb.WriteString("shape: eqaso trades O(n²) value-forwarding messages for its flat latency;\n")
	sb.WriteString("byzaso pays the additional Bracha amplification; the double-collect family\n")
	sb.WriteString("sends fewer messages per op but many more ops' worth of rounds.\n")
	return sb.String(), nil
}

// Lattice regenerates the early-stopping lattice agreement comparison:
// EQ-LA vs the pull-based baseline under failure chains of size k.
func Lattice(ks []int, seed int64) (string, error) {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	sb.WriteString("One-shot lattice agreement under failure chains (constant-D delays)\n")
	fmt.Fprintln(w, "k\tn\teqla worst\troundla worst")
	for _, k := range ks {
		n := 2*k + 3
		if n < 5 {
			n = 5
		}
		eq, err := RunLAProbe(true, n, k, seed)
		if err != nil {
			return "", err
		}
		rl, err := RunLAProbe(false, n, k, seed)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(w, "%d\t%d\t%.1fD\t%.1fD\n", k, n, eq, rl)
	}
	w.Flush()
	sb.WriteString("shape: EQ-LA's worst decision grows ~√k under its own worst-case adversary.\n")
	sb.WriteString("The failure-chain adversary exploits proactive forwarding, so it cannot\n")
	sb.WriteString("attack the pull baseline at all (that column is failure-free); the pull\n")
	sb.WriteString("baseline's Θ(n·D) weakness under proposal storms is shown separately in\n")
	sb.WriteString("the staggered-proposal comparison (internal/la tests, examples).\n")
	return sb.String(), nil
}

// RunLAProbe measures the worst decision latency of live proposers under
// chain faults (EQ-LA when eq is true, the pull baseline otherwise).
func RunLAProbe(eq bool, n, k int, seed int64) (float64, error) {
	f := (n - 1) / 2
	keyOf := func(m rt.Message) (any, bool) {
		if mv, ok := m.(la.OSValue); ok {
			return mv.Val.TS, true
		}
		return nil, false
	}
	pool := make([]int, k)
	for i := range pool {
		pool[i] = i
	}
	chains, used := sim.BuildChains(pool, k, n-1)
	cfg := sim.Config{N: n, F: f, Seed: seed, Delay: sim.Constant{Ticks: rt.TicksPerD}}
	if used > 0 {
		cfg.Adversary = sim.NewFailureChains(keyOf, chains...)
	}
	w := sim.New(cfg)
	propose := make([]func([]byte) (interface{ Len() int }, error), n)
	for i := 0; i < n; i++ {
		if eq {
			nd := la.NewEQLA(w.Runtime(i))
			w.SetHandler(i, nd)
			p := nd.Propose
			propose[i] = func(b []byte) (interface{ Len() int }, error) { return p(b) }
		} else {
			nd := la.NewRoundLA(w.Runtime(i))
			w.SetHandler(i, nd)
			p := nd.Propose
			propose[i] = func(b []byte) (interface{ Len() int }, error) { return p(b) }
		}
	}
	// Chain heads propose (their value broadcast triggers the chain).
	for _, ch := range chains {
		head := ch.Nodes[0]
		w.GoNode(fmt.Sprintf("head-%d", head), head, func(p *sim.Proc) {
			_, _ = propose[head]([]byte(fmt.Sprintf("x%d", head)))
		})
	}
	var worst rt.Ticks
	for i := used; i < n; i++ {
		i := i
		w.GoNode(fmt.Sprintf("live-%d", i), i, func(p *sim.Proc) {
			_ = p.Sleep(rt.TicksPerD / 2)
			start := p.Now()
			if _, err := propose[i]([]byte(fmt.Sprintf("x%d", i))); err != nil {
				return
			}
			if l := p.Now() - start; l > worst {
				worst = l
			}
		})
	}
	if err := w.Run(); err != nil {
		return 0, err
	}
	return worst.DUnits(), nil
}
