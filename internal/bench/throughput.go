package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
)

// ThroughputConfig is one throughput measurement: Clients concurrent
// client threads per node drive the object through the svc layer, either
// batched (UPDATE coalescing + SCAN sharing) or serialized (the classic
// one-operation-at-a-time client, the baseline).
type ThroughputConfig struct {
	N, F         int
	Clients      int // concurrent client threads per node
	OpsPerClient int
	ScanRatio    float64
	Seed         int64
	Batched      bool // false = serialize (one protocol op per client op)
	Check        bool
}

// ThroughputResult is one measured throughput run. Throughput is reported
// in completed operations per D of virtual time (the simulator's unit of
// maximum message delay); ratios between runs are delay-model-free.
type ThroughputResult struct {
	ThroughputConfig
	Ops         int     // completed operations
	VirtTimeD   float64 // virtual makespan in D units
	OpsPerD     float64 // Ops / VirtTimeD — the throughput figure
	ProtoOps    int64   // protocol operations issued by the services
	MaxBatch    int     // largest coalesced update batch
	CheckPassed bool
}

// RunThroughput executes one throughput configuration on the simulator
// with the constant-D delay model.
func RunThroughput(cfg ThroughputConfig) (ThroughputResult, error) {
	res := ThroughputResult{ThroughputConfig: cfg}
	c := harness.Build(sim.Config{N: cfg.N, F: cfg.F, Seed: cfg.Seed, Delay: sim.Constant{Ticks: rt.TicksPerD}},
		func(r rt.Runtime) (rt.Handler, harness.Object) {
			return make1(EQASO, r)
		})

	opts := svc.Options{Serialize: !cfg.Batched}
	services := make([]*svc.Service, cfg.N)
	for i := 0; i < cfg.N; i++ {
		s := svc.New(c.W.Runtime(i), c.Objects[i], opts)
		services[i] = s
		c.W.GoNode(fmt.Sprintf("svc-%d", i), i, func(p *sim.Proc) { _ = s.Serve() })
	}

	total := cfg.N * cfg.Clients
	done := 0
	for i := 0; i < cfg.N; i++ {
		for cid := 0; cid < cfg.Clients; cid++ {
			seed := cfg.Seed*7919 + int64(i*cfg.Clients+cid)
			c.ClientOn(i, services[i], func(o *harness.OpRunner) {
				defer func() { done++ }()
				rng := rand.New(rand.NewSource(seed))
				for k := 0; k < cfg.OpsPerClient; k++ {
					var err error
					if rng.Float64() < cfg.ScanRatio {
						_, err = o.Scan()
					} else {
						_, err = o.Update()
					}
					if err != nil {
						return
					}
				}
			})
		}
	}
	c.W.Go("svc-closer", func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("all clients done", func() bool { return done == total })
		for _, s := range services {
			s.Close()
		}
	})

	h, err := c.Run()
	if err != nil {
		return res, fmt.Errorf("throughput n=%d clients=%d batched=%v: %w", cfg.N, cfg.Clients, cfg.Batched, err)
	}
	st := harness.Latencies(h)
	res.Ops = st.Count
	res.VirtTimeD = c.W.Stats().Now.DUnits()
	if res.VirtTimeD > 0 {
		res.OpsPerD = float64(res.Ops) / res.VirtTimeD
	}
	for _, s := range services {
		sst := s.Stats()
		res.ProtoOps += sst.ProtoUpdates + sst.ProtoScans
		if sst.MaxBatch > res.MaxBatch {
			res.MaxBatch = sst.MaxBatch
		}
	}
	res.CheckPassed = true
	if cfg.Check {
		if rep := h.CheckLinearizable(); !rep.OK {
			res.CheckPassed = false
			return res, fmt.Errorf("throughput n=%d clients=%d batched=%v: history check failed: %s",
				cfg.N, cfg.Clients, cfg.Batched, rep.Violations[0])
		}
	}
	return res, nil
}

// ThroughputReport wraps the sweep's points with the runtime environment
// for BENCH_throughput.json.
type ThroughputReport struct {
	Env    Env               `json:"env"`
	Points []ThroughputPoint `json:"points"`
}

// ThroughputPoint pairs the batched and serialized measurements at one
// (n, clients) coordinate, for the JSON perf artifact.
type ThroughputPoint struct {
	N          int     `json:"n"`
	Clients    int     `json:"clientsPerNode"`
	Ops        int     `json:"ops"`
	BatchedOps float64 `json:"batchedOpsPerD"`
	SerialOps  float64 `json:"serializedOpsPerD"`
	Speedup    float64 `json:"speedup"`
	MaxBatch   int     `json:"maxBatch"`
	ProtoOps   int64   `json:"batchedProtoOps"`
}

// Throughput measures service-layer throughput (ops per D of virtual
// time) against the one-op-at-a-time baseline across cluster sizes and
// client counts. Histories are checked at the smaller client counts
// (checking 4096-op histories is the run's dominant cost, the protocol
// behaviour is identical).
func Throughput(ns []int, clientCounts []int, opsPerClient int, seed int64) (string, []ThroughputPoint, error) {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	sb.WriteString("Service-layer throughput vs concurrent clients (EQ-ASO, constant-D delays, 50/50 mix)\n")
	fmt.Fprintln(w, "n\tclients/node\tops\tbatched ops/D\tserialized ops/D\tspeedup\tmax batch")
	var points []ThroughputPoint
	for _, n := range ns {
		f := (n - 1) / 2
		for _, clients := range clientCounts {
			check := n*clients*opsPerClient <= 512
			batched, err := RunThroughput(ThroughputConfig{
				N: n, F: f, Clients: clients, OpsPerClient: opsPerClient,
				ScanRatio: 0.5, Seed: seed, Batched: true, Check: check,
			})
			if err != nil {
				return "", nil, err
			}
			serial, err := RunThroughput(ThroughputConfig{
				N: n, F: f, Clients: clients, OpsPerClient: opsPerClient,
				ScanRatio: 0.5, Seed: seed, Batched: false, Check: check,
			})
			if err != nil {
				return "", nil, err
			}
			speedup := 0.0
			if serial.OpsPerD > 0 {
				speedup = batched.OpsPerD / serial.OpsPerD
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%.2f\t%.1f×\t%d\n",
				n, clients, batched.Ops, batched.OpsPerD, serial.OpsPerD, speedup, batched.MaxBatch)
			points = append(points, ThroughputPoint{
				N: n, Clients: clients, Ops: batched.Ops,
				BatchedOps: round2(batched.OpsPerD), SerialOps: round2(serial.OpsPerD),
				Speedup: round2(speedup), MaxBatch: batched.MaxBatch, ProtoOps: batched.ProtoOps,
			})
		}
	}
	w.Flush()
	sb.WriteString("shape: batched throughput grows with the client count (two protocol ops serve a whole queue drain);\nserialized throughput stays flat — the gap is the amortization win.\n")
	return sb.String(), points, nil
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
