package bench

import (
	"strings"
	"testing"
)

// TestExperimentDriversProduceTables: every experiment driver runs with
// CI-sized parameters, errors nowhere, and emits its table with the
// expected rows.
func TestExperimentDriversProduceTables(t *testing.T) {
	t.Run("table1", func(t *testing.T) {
		out, err := Table1(7, 3, 2, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range TableAlgos() {
			if !strings.Contains(out, string(a)) {
				t.Fatalf("missing row %s:\n%s", a, out)
			}
		}
	})
	t.Run("sqrtk", func(t *testing.T) {
		out, err := SqrtK([]int{0, 2}, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "eqaso probe") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})
	t.Run("amortized", func(t *testing.T) {
		out, err := Amortized(4, []int{1, 2}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "mean latency") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})
	t.Run("failurefree", func(t *testing.T) {
		out, err := FailureFree([]int{4}, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "eqaso") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})
	t.Run("byzantine", func(t *testing.T) {
		out, err := Byzantine([]int{1}, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "ratchet") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})
	t.Run("sso", func(t *testing.T) {
		out, err := SSOScan(5, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "sso") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})
	t.Run("lattice", func(t *testing.T) {
		out, err := Lattice([]int{0, 2}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "eqla worst") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})
}

// TestSqrtKProbeGrows: the probe latency under chains is nondecreasing-ish
// in k (allowing 1D slack for base-cost noise) — the experiment's core
// claim in test form.
func TestSqrtKProbeGrows(t *testing.T) {
	small, _, err := SqrtKProbe(EQASO, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, L, err := SqrtKProbe(EQASO, 35, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if L < 5 {
		t.Fatalf("expected a long chain for k=16, got L=%d", L)
	}
	if big < small+1.5 {
		t.Fatalf("chains should stretch the probe: k=0 %.1fD vs k=16 %.1fD", small, big)
	}
}

// TestSSOScanIsFree: the SSO run reports exactly zero scan latency.
func TestSSOScanIsFree(t *testing.T) {
	res, err := Run(Config{Algo: SSOFast, N: 5, F: 2, OpsPerNode: 3, ScanRatio: 0.6, Seed: 2, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstScan != 0 || res.MeanScan != 0 {
		t.Fatalf("sso scans must be free: %+v", res)
	}
	if res.WorstUpd <= 0 {
		t.Fatalf("updates must cost something: %+v", res)
	}
}

// TestFigure2Driver: the bench replay returns the paper's op6 outcome.
func TestFigure2Driver(t *testing.T) {
	wait, snap, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if wait < 80 {
		t.Fatalf("op6 should have blocked, waited only %d ticks", wait)
	}
	if len(snap) != 3 || snap[0] != "u" || snap[1] != "w" || snap[2] != "v" {
		t.Fatalf("op6 snapshot = %v, want [u w v]", snap)
	}
}

// TestRunChecksHistories: Check:true actually validates (a healthy run
// passes; the flag is what the drivers rely on).
func TestRunChecksHistories(t *testing.T) {
	for _, a := range []Algo{EQASO, Delporte} {
		res, err := Run(Config{Algo: a, N: 5, F: 2, OpsPerNode: 2, ScanRatio: 0.5, Seed: 3, Check: true})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if !res.CheckPassed || res.Ops == 0 || res.Msgs == 0 {
			t.Fatalf("%s: %+v", a, res)
		}
	}
}

// TestRunWithRandomDelays: the UniformDelay path works too.
func TestRunWithRandomDelays(t *testing.T) {
	res, err := Run(Config{Algo: EQASO, N: 5, F: 2, OpsPerNode: 2, ScanRatio: 0.5, Seed: 4,
		UniformDelay: true, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatalf("no ops: %+v", res)
	}
}

// TestRunLAProbeBothKinds covers the lattice-agreement probe runner.
func TestRunLAProbeBothKinds(t *testing.T) {
	for _, eq := range []bool{true, false} {
		worst, err := RunLAProbe(eq, 7, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if worst <= 0 {
			t.Fatalf("eq=%v: probe latency %f", eq, worst)
		}
	}
}
