package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"text/tabwriter"

	"mpsnap/internal/cluster"
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
)

// The cluster experiment measures the price of cross-shard consistency:
// a GlobalScan must coordinate a cut across every shard at one timestamp
// frontier and validate it, where a single-cluster scan only pays one
// EQ-ASO scan. Two questions, swept over shard counts on a fault-free
// simulator with per-shard data held constant:
//
//   - overhead at shards=1: the routed, validated GlobalScan against a
//     plain svc.Service scan on an identical cluster (the acceptance
//     gate — coordination machinery may cost at most a small factor);
//   - growth with shards: scan latency and cut skew (how far individual
//     shard scans land past the common frontier) as shards multiply.

// ClusterPoint is the GlobalScan cost at one shard count.
type ClusterPoint struct {
	Shards     int     `json:"shards"`
	Nodes      int     `json:"nodes"`
	Keys       int     `json:"keys"`  // mark-chain keys written before scanning
	Scans      int     `json:"scans"` // validated GlobalScans measured
	ScanMeanD  float64 `json:"scanMeanD"`
	ScanWorstD float64 `json:"scanWorstD"`
	SkewMeanD  float64 `json:"skewMeanD"`
	SkewMaxD   float64 `json:"skewMaxD"`
	Repairs    int     `json:"repairs"` // closure-repair rounds beyond the first
}

// ClusterBench is the full experiment result, serialized to
// BENCH_cluster.json by cmd/asobench -e cluster.
type ClusterBench struct {
	Env          Env   `json:"env"`
	N            int   `json:"n"` // nodes per shard
	F            int   `json:"f"` // crash bound per shard
	ShardCounts  []int `json:"shardCounts"`
	KeysPerShard int   `json:"keysPerShard"`
	Scans        int   `json:"scans"`
	Seed         int64 `json:"seed"`

	// BaselineScanD is the mean svc.Service scan latency on one plain
	// n-node cluster (same engine, same service front, no cluster layer).
	BaselineScanD float64 `json:"baselineScanD"`

	Points []ClusterPoint `json:"points"`

	// OneShardRatio is ScanMeanD at shards=1 over BaselineScanD: the
	// multiplicative cost of routing + cut assembly + validation when
	// there is nothing to coordinate across.
	OneShardRatio float64 `json:"oneShardRatio"`
}

// RunCluster sweeps shard counts, measuring validated GlobalScan latency
// and cut skew with keysPerShard mark-chain keys per shard, plus the
// single-cluster svc baseline for the shards=1 ratio.
func RunCluster(n, f int, shardCounts []int, keysPerShard, scans int, seed int64) (ClusterBench, error) {
	out := ClusterBench{
		Env: CaptureEnv(),
		N:   n, F: f, ShardCounts: shardCounts,
		KeysPerShard: keysPerShard, Scans: scans, Seed: seed,
	}
	base, err := baselineSvcScan(n, f, keysPerShard, scans, seed)
	if err != nil {
		return out, fmt.Errorf("cluster baseline: %w", err)
	}
	out.BaselineScanD = base
	for _, s := range shardCounts {
		p, err := clusterScanPoint(s, n, f, keysPerShard, scans, seed+int64(s)*131)
		if err != nil {
			return out, fmt.Errorf("cluster shards=%d: %w", s, err)
		}
		out.Points = append(out.Points, p)
		if s == 1 && base > 0 {
			out.OneShardRatio = p.ScanMeanD / base
		}
	}
	return out, nil
}

// baselineSvcScan times svc.Service.Scan on one plain n-node EQ-ASO
// cluster after keys sequential updates — the exact scan path a
// single-shard deployment without the cluster layer would use.
func baselineSvcScan(n, f, keys, scans int, seed int64) (float64, error) {
	w := sim.New(sim.Config{N: n, F: f, Seed: seed})
	services := make([]*svc.Service, n)
	for i := 0; i < n; i++ {
		nd := engine.MustLookup("eqaso").New(w.Runtime(i))
		w.SetHandler(i, nd)
		s := svc.New(w.Runtime(i), nd, svc.Options{})
		services[i] = s
		w.GoNode(fmt.Sprintf("svc-%d", i), i, func(p *sim.Proc) { _ = s.Serve() })
	}
	var total rt.Ticks
	var failed error
	probeDone := false
	// Closing from a node-unbound driver (not the probe's defer) makes
	// every node's idle waiter re-evaluate and drain; a node-0 proc only
	// wakes node 0's.
	w.Go("closer", func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("probe done", func() bool { return probeDone })
		for _, s := range services {
			s.Close()
		}
	})
	w.GoNode("probe", 0, func(p *sim.Proc) {
		defer func() { probeDone = true }()
		for i := 0; i < keys; i++ {
			if err := services[0].Update([]byte(fmt.Sprintf("bench/k%d", i))); err != nil {
				failed = fmt.Errorf("update %d: %w", i, err)
				return
			}
		}
		for i := 0; i < scans; i++ {
			start := p.Now()
			if _, err := services[0].Scan(); err != nil {
				failed = fmt.Errorf("scan %d: %w", i, err)
				return
			}
			total += p.Now() - start
		}
	})
	if err := w.Run(); err != nil {
		return 0, err
	}
	if failed != nil {
		return 0, failed
	}
	return total.DUnits() / float64(scans), nil
}

// clusterScanPoint brings up a shards×n cluster topology on the
// simulator, writes one cross-shard mark chain of shards*keysPerShard
// keys, then times `scans` closure-repaired, validated GlobalScans from
// a node of shard 0.
func clusterScanPoint(shards, n, f, keysPerShard, scans int, seed int64) (ClusterPoint, error) {
	m := cluster.ContiguousMap(shards, n, f, 0)
	total := m.NumNodes()
	health := cluster.NewHealth(total)
	w := sim.New(sim.Config{N: total, F: f, Seed: seed, Observer: health})
	nodes := make([]*cluster.Node, total)
	for id := 0; id < total; id++ {
		nd, err := cluster.NewNode(w.Runtime(id), cluster.Config{
			Map:    m,
			Health: health,
			NewEngine: func(shard int, r rt.Runtime) (rt.Handler, svc.Object) {
				e := engine.MustLookup("eqaso").New(r)
				return e, e
			},
		})
		if err != nil {
			return ClusterPoint{}, err
		}
		nodes[id] = nd
		w.SetHandler(id, nd.Handler())
	}
	for id := 0; id < total; id++ {
		id := id
		for si, s := range nodes[id].Services() {
			s := s
			w.GoNode(fmt.Sprintf("svc-%d.%d", id, si), id, func(p *sim.Proc) { _ = s.Serve() })
		}
		w.GoNode(fmt.Sprintf("router-%d", id), id, func(p *sim.Proc) { _ = nodes[id].ServeRouter() })
	}

	keys := shards * keysPerShard
	pt := ClusterPoint{Shards: shards, Nodes: total, Keys: keys, Scans: scans}
	v := cluster.NewCutValidator(cluster.ValidatorOptions{CheckPlacement: true, RequireMarks: true})
	var scanTotal, scanWorst, skewTotal, skewMax rt.Ticks
	var failed error
	probeDone := false
	// See baselineSvcScan: the close must run node-unbound so every
	// node's idle router and shard worker re-evaluates and drains.
	w.Go("closer", func(p *sim.Proc) {
		_ = p.WaitUntilGlobal("probe done", func() bool { return probeDone })
		for _, nd := range nodes {
			nd.Close()
		}
	})
	w.GoNode("probe", 0, func(p *sim.Proc) {
		defer func() { probeDone = true }()
		nd := nodes[0]
		// One mark chain across all shards: the ring spreads the keys, so
		// successive marks usually cross shard boundaries and every cut's
		// closure check has real cross-shard predecessors to verify.
		var lastKey string
		var lastSeq int64
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("bench/k%d", i)
			mk := cluster.Mark{Writer: "bench", Seq: int64(i + 1), PrevKey: lastKey, PrevSeq: lastSeq}
			if err := nd.Update(key, mk.Encode()); err != nil {
				failed = fmt.Errorf("update %d: %w", i, err)
				return
			}
			lastKey, lastSeq = key, int64(i+1)
		}
		for i := 0; i < scans; i++ {
			start := p.Now()
			cut, err := nd.GlobalScanClosed(v, 0)
			if err != nil {
				failed = fmt.Errorf("global scan %d: %w", i, err)
				return
			}
			lat := p.Now() - start
			scanTotal += lat
			if lat > scanWorst {
				scanWorst = lat
			}
			skew := cut.Skew()
			skewTotal += skew
			if skew > skewMax {
				skewMax = skew
			}
			pt.Repairs += cut.Rounds - 1
		}
	})
	if err := w.Run(); err != nil {
		return pt, err
	}
	if failed != nil {
		return pt, failed
	}
	pt.ScanMeanD = scanTotal.DUnits() / float64(scans)
	pt.ScanWorstD = scanWorst.DUnits()
	pt.SkewMeanD = skewTotal.DUnits() / float64(scans)
	pt.SkewMaxD = skewMax.DUnits()
	return pt, nil
}

// Check enforces the shards=1 acceptance criterion: the full GlobalScan
// machinery over one shard may cost at most `limit`× the plain
// single-cluster svc scan path (growth with shard count is reported, not
// gated — it measures coordination, not overhead).
func (c ClusterBench) Check(limit float64) error {
	if c.OneShardRatio > limit {
		return fmt.Errorf("cluster: shards=1 GlobalScan is %.2f× the svc scan baseline (%.2fD vs %.2fD, limit %.2f×)",
			c.OneShardRatio, c.OneShardRatio*c.BaselineScanD, c.BaselineScanD, limit)
	}
	return nil
}

// JSON renders the result for BENCH_cluster.json.
func (c ClusterBench) JSON() ([]byte, error) { return json.MarshalIndent(c, "", "  ") }

// Render formats the experiment as the human-readable table printed by
// cmd/asobench -e cluster.
func (c ClusterBench) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Cross-shard GlobalScan vs shard count: n=%d f=%d per shard, %d keys/shard, %d scans, fault-free\n",
		c.N, c.F, c.KeysPerShard, c.Scans)
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "shards\tnodes\tkeys\tscan mean\tscan worst\tskew mean\tskew max\trepairs\n")
	for _, p := range c.Points {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1fD\t%.1fD\t%.1fD\t%.1fD\t%d\n",
			p.Shards, p.Nodes, p.Keys, p.ScanMeanD, p.ScanWorstD, p.SkewMeanD, p.SkewMaxD, p.Repairs)
	}
	w.Flush()
	fmt.Fprintf(&sb, "baseline: plain svc scan on one %d-node cluster = %.1fD; shards=1 ratio %.2f× (must stay ≤1.2×)\n",
		c.N, c.BaselineScanD, c.OneShardRatio)
	sb.WriteString("shape: scan latency stays ~flat in shard count (shards are scanned in\n")
	sb.WriteString("parallel; the cut waits for the slowest shard, not the sum), while skew\n")
	sb.WriteString("grows mildly — more shards give the frontier more chances to land mid-op.\n")
	return sb.String()
}
