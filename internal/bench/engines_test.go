package bench

import (
	"encoding/json"
	"testing"
)

// TestRunEngines runs the full bake-off at CI scale and enforces the
// acceptance gate: every engine's history check passes and fastsnap's
// contention-free scan p50 beats EQ-ASO's.
func TestRunEngines(t *testing.T) {
	e, err := RunEngines(5, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Check(); err != nil {
		t.Fatal(err)
	}
	if len(e.Points) < 10 {
		t.Fatalf("bake-off covered %d engines, want all registered (≥10)", len(e.Points))
	}
	fs, _ := e.Point("fastsnap")
	if fs.ScanCount == 0 || fs.UpdateCount == 0 {
		t.Fatalf("fastsnap measured no ops: %+v", fs)
	}
	// Contention-free fastsnap scans must all take the one-round fast
	// path: one collect broadcast + replies = 2D under constant-D delays.
	if fs.ScanMax > 2.0 {
		t.Errorf("fastsnap contention-free scan max = %.1fD, want ≤ 2D (fast path)", fs.ScanMax)
	}
	blob, err := e.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Engines
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("BENCH_engines.json round-trip: %v", err)
	}
	if len(back.Points) != len(e.Points) {
		t.Fatalf("JSON round-trip lost points: %d vs %d", len(back.Points), len(e.Points))
	}
}

// TestEnginesCheckDetectsRegression ensures the gate actually fires.
func TestEnginesCheckDetectsRegression(t *testing.T) {
	e := Engines{Points: []EnginePoint{
		{Engine: "eqaso", ScanP50: 4, CheckPassed: true},
		{Engine: "fastsnap", ScanP50: 4, CheckPassed: true},
	}}
	if err := e.Check(); err == nil {
		t.Fatal("Check accepted fastsnap scan p50 == eqaso's")
	}
	e.Points[1].ScanP50 = 2
	if err := e.Check(); err != nil {
		t.Fatalf("Check rejected a passing bake-off: %v", err)
	}
	e.Points[0].CheckPassed = false
	if err := e.Check(); err == nil {
		t.Fatal("Check accepted a failed history check")
	}
}
