package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"mpsnap/internal/core"
)

// The hotpath experiment measures history independence directly at the
// data-structure level: the steady-state cost of one "operation window"
// (W value arrivals followed by one good lattice cycle: EQ-tracker setup,
// view materialization, frontier freeze) as the total history H grows.
// The paper's protocols run exactly this cycle per UPDATE/SCAN, so a
// per-window cost that is flat in H is what makes long-running nodes
// sustainable.
//
// Two engines run the same workload: the reference map engine (per-peer
// ValueSets, rescanned per cycle) and the shared value-log engine
// (per-peer cursors, prefix index, zero-copy frozen views). The log
// engine's allocations per window must stay flat as H grows 64×; the map
// engine's bytes per window grow linearly (each view copies the whole
// history), which is the regression the experiment guards against.

// HotpathPoint is the steady-state cost of one operation window for one
// engine at one history length.
type HotpathPoint struct {
	Engine          string  `json:"engine"` // "map" or "log"
	H               int     `json:"h"`      // prefilled history length
	NsPerWindow     float64 `json:"nsPerWindow"`
	AllocsPerWindow float64 `json:"allocsPerWindow"`
	BytesPerWindow  float64 `json:"bytesPerWindow"`
}

// Hotpath is the full experiment result, serialized to
// BENCH_hotpath.json by cmd/asobench -e hotpath.
type Hotpath struct {
	Env     Env   `json:"env"`
	N       int   `json:"n"`       // cluster size
	Window  int   `json:"window"`  // value arrivals per operation window
	Windows int   `json:"windows"` // measured windows per point
	Hs      []int `json:"hs"`

	Points []HotpathPoint `json:"points"`

	// Growth ratios from the smallest to the largest H. The log engine's
	// allocation growth is the flatness criterion (deterministic, unlike
	// wall time); the map engine's byte growth documents the O(H) per-op
	// behavior being replaced.
	LogAllocGrowth float64 `json:"logAllocGrowth"`
	MapBytesGrowth float64 `json:"mapBytesGrowth"`
}

// hotpathEngine is one implementation of the per-window protocol cycle.
type hotpathEngine interface {
	name() string
	// add records the arrival of v from node src.
	add(src int, v core.Value)
	// goodOp runs one good lattice cycle at tag r: EQ-tracker setup over
	// all peers, then materializing the decided view (and, for the log,
	// freezing the now-stable prefix).
	goodOp(r core.Tag, quorum int)
	// stabilize is the prefill-time frontier advance: it has a state
	// effect only on the log engine (the map engine rebuilds views from
	// scratch every time, so running full cycles during prefill would
	// only burn time without changing what is measured).
	stabilize(r core.Tag)
}

type mapEngine struct{ V []*core.ValueSet }

func newMapEngine(n int) *mapEngine {
	e := &mapEngine{V: make([]*core.ValueSet, n)}
	for j := range e.V {
		e.V[j] = core.NewValueSet()
	}
	return e
}

func (e *mapEngine) name() string { return "map" }

func (e *mapEngine) add(src int, v core.Value) {
	e.V[src].Add(v)
	e.V[0].Add(v)
}

func (e *mapEngine) goodOp(r core.Tag, quorum int) {
	t := core.NewEQTracker(e.V, 0, r, quorum)
	_ = t.Satisfied()
	_ = e.V[0].ViewLE(r)
}

func (e *mapEngine) stabilize(core.Tag) {}

type logEngine struct{ l *core.ValueLog }

func newLogEngine(n int) *logEngine { return &logEngine{l: core.NewValueLog(n, 0)} }

func (e *logEngine) name() string { return "log" }

func (e *logEngine) add(src int, v core.Value) { e.l.Add(src, v) }

func (e *logEngine) goodOp(r core.Tag, quorum int) {
	t := core.NewEQTrackerFromLog(e.l, r, quorum)
	_ = t.Satisfied()
	e.l.AdvanceFrontier(r)
	_ = e.l.ViewLE(r)
}

func (e *logEngine) stabilize(r core.Tag) { e.l.AdvanceFrontier(r) }

// hotpathValue deterministically derives the i-th arriving value.
func hotpathValue(i, n int) core.Value {
	return core.Value{
		TS:      core.Timestamp{Tag: core.Tag(i + 1), Writer: i % n},
		Payload: []byte("hotpath-payload-0123456789abcdef"),
	}
}

// RunHotpath sweeps history lengths hs for both engines, measuring the
// steady-state per-window cost with n nodes and `window` arrivals per
// window, averaged over `windows` measured windows.
func RunHotpath(n, window, windows int, hs []int) Hotpath {
	out := Hotpath{Env: CaptureEnv(), N: n, Window: window, Windows: windows, Hs: hs}
	quorum := n - (n-1)/2
	for _, mk := range []func(int) hotpathEngine{
		func(n int) hotpathEngine { return newMapEngine(n) },
		func(n int) hotpathEngine { return newLogEngine(n) },
	} {
		for _, h := range hs {
			e := mk(n)
			// Prefill H values; keep the log's frontier tracking its
			// history the way a live node's good operations would.
			for i := 0; i < h; i++ {
				e.add(i%n, hotpathValue(i, n))
				if (i+1)%window == 0 {
					e.stabilize(core.Tag(i + 1))
				}
			}
			// Pre-build the measured values so the timed region contains
			// only engine work.
			vals := make([]core.Value, windows*window)
			for i := range vals {
				vals[i] = hotpathValue(h+i, n)
			}
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for w := 0; w < windows; w++ {
				for i := 0; i < window; i++ {
					k := w*window + i
					e.add((h+k)%n, vals[k])
				}
				e.goodOp(core.Tag(h+(w+1)*window), quorum)
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			out.Points = append(out.Points, HotpathPoint{
				Engine:          e.name(),
				H:               h,
				NsPerWindow:     float64(elapsed.Nanoseconds()) / float64(windows),
				AllocsPerWindow: float64(after.Mallocs-before.Mallocs) / float64(windows),
				BytesPerWindow:  float64(after.TotalAlloc-before.TotalAlloc) / float64(windows),
			})
		}
	}
	out.LogAllocGrowth = out.growth("log", func(p HotpathPoint) float64 { return p.AllocsPerWindow })
	out.MapBytesGrowth = out.growth("map", func(p HotpathPoint) float64 { return p.BytesPerWindow })
	return out
}

// growth returns metric(largest H) / metric(smallest H) for one engine.
func (h Hotpath) growth(engine string, metric func(HotpathPoint) float64) float64 {
	var first, last float64
	seen := false
	for _, p := range h.Points {
		if p.Engine != engine {
			continue
		}
		if !seen {
			first = metric(p)
			seen = true
		}
		last = metric(p)
	}
	if !seen || first == 0 {
		return 0
	}
	return last / first
}

// Check enforces the flat-growth acceptance criterion: the log engine's
// allocations per window may grow at most `limit`× across the whole H
// sweep (wall time is too noisy to gate on; allocation counts are
// deterministic for this single-goroutine workload).
func (h Hotpath) Check(limit float64) error {
	if h.LogAllocGrowth > limit {
		return fmt.Errorf("hotpath: log engine allocs/window grew %.2f× from H=%d to H=%d (limit %.2f×)",
			h.LogAllocGrowth, h.Hs[0], h.Hs[len(h.Hs)-1], limit)
	}
	return nil
}

// JSON renders the result for BENCH_hotpath.json.
func (h Hotpath) JSON() ([]byte, error) { return json.MarshalIndent(h, "", "  ") }

// Render formats the experiment as the human-readable table printed by
// cmd/asobench -e hotpath.
func (h Hotpath) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "History-independent hot path: per-window cost (%d arrivals + 1 good lattice cycle), n=%d, %d windows/point\n",
		h.Window, h.N, h.Windows)
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "engine\tH\tns/window\tallocs/window\tKB/window\n")
	for _, p := range h.Points {
		fmt.Fprintf(w, "%s\t%d\t%.0f\t%.1f\t%.1f\n",
			p.Engine, p.H, p.NsPerWindow, p.AllocsPerWindow, p.BytesPerWindow/1024)
	}
	w.Flush()
	fmt.Fprintf(&sb, "growth %d→%d: log allocs %.2f× (must stay ≤1.5×), map bytes %.2f× (linear in H)\n",
		h.Hs[0], h.Hs[len(h.Hs)-1], h.LogAllocGrowth, h.MapBytesGrowth)
	return sb.String()
}
