package bench

import "runtime"

// Env records the runtime environment a benchmark ran in. Every
// BENCH_*.json artifact embeds one, so numbers tracked across commits can
// be separated from numbers tracked across machines.
type Env struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CaptureEnv snapshots the current process's runtime environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
