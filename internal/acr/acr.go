// Package acr implements an atomic snapshot object with amortized
// constant-round scans, in the style of the constructions of
// "Amortized Constant Round Atomic Snapshot in Message-Passing Systems"
// (arXiv 2008.11837).
//
// Servers hold one register per writer — the writer's latest (seq,
// payload) pair, merged componentwise by maximum sequence number — plus a
// *committed cache*: the componentwise maximum of every committed
// snapshot vector they have seen. Committed vectors are folded into the
// registers before the cache, so the cache is always covered by the
// register vector on the same server.
//
// UPDATE replicates the writer's new register state to a quorum of n−f
// servers (one round). SCAN broadcasts a collect; each reply carries the
// server's register vector and its committed cache. Let M be the merge of
// the reply vectors and C the componentwise maximum of the reply caches.
// If C == M (by sequence numbers), the scanner returns C in one round:
// C is a committed vector — unanimously quorum-held when it was first
// returned — and it covers M, which covers every update completed before
// the scan started (quorum intersection). This is the amortized fast
// path: once any scan commits a vector covering the current registers,
// every subsequent scan with no concurrent updates is one round.
//
// Otherwise the scanner enters the propose loop: broadcast PROPOSE(M);
// receivers merge M into their registers and reply with their full
// vectors. If a quorum of replies is identical, that vector is announced
// with a fire-and-forget COMMIT — refreshing the caches — and returned;
// it is then unanimously quorum-held, so any two returned vectors are
// comparable (quorum intersection plus register monotonicity) and scans
// are totally ordered. If not, the scanner merges the replies and
// proposes again. A proposer that sees its own committed cache grow to
// cover M0 — the merge of its first collect — adopts that committed
// vector and finishes: the adopted vector contains every update completed
// before the scan started and is comparable with every returned vector.
//
// Fidelity note: this is a documented reconstruction of the paper's
// amortization idea (cache the last committed snapshot; scans pay the
// multi-round synchronization only when the cache is stale) on this
// repository's runtime model, not a transcription of its pseudocode.
// Validated against the (A1)-(A4) linearizability checker under fuzzed
// schedules and chaos fault mixes.
package acr

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

// Entry is one writer's register: the latest sequence number and payload.
// Seq 0 with nil Val is the initial ⊥.
type Entry struct {
	Seq int64
	Val []byte
}

// Stats counts operations and scan paths taken.
type Stats struct {
	Updates      int64
	Scans        int64
	FastScans    int64 // one-round scans: committed cache covered the collect
	SlowScans    int64 // scans that needed propose rounds
	AdoptedScans int64 // slow scans finished by adopting a committed vector
	Rounds       int64 // total collect + propose rounds across scans
}

// Node is one acr node: the server registers and committed cache plus the
// client operations. One server thread (HandleMessage) and one client
// thread (Update/Scan), per the rt contract.
type Node struct {
	rtm    rt.Runtime
	id     int
	n      int
	quorum int

	// Server state, touched by the handler and under rtm.Atomic only.
	regs      []Entry // per-writer maxima
	committed []Entry // componentwise max of all committed vectors seen
	acks      map[int64]int
	colls     map[int64]*collectState

	mySeq   int64 // this node's own sequence counter (client thread, under Atomic)
	nextReq int64
	stats   Stats

	// Operation instrumentation; owned by the client thread.
	obs   rt.Observer
	opSeq int64
	curOp opCtx
}

func init() {
	engine.Register(engine.Info{
		Name: "acr",
		Doc:  "amortized constant-round scans via a committed-snapshot cache (arXiv 2008.11837)",
		New:  func(r rt.Runtime) engine.Engine { return New(r) },
	})
}

// New creates an acr node on a runtime; install it as the node's message
// handler before operating on it.
func New(r rt.Runtime) *Node {
	n := r.N()
	return &Node{
		rtm:       r,
		id:        r.ID(),
		n:         n,
		quorum:    n - r.F(),
		regs:      make([]Entry, n),
		committed: make([]Entry, n),
		acks:      make(map[int64]int),
		colls:     make(map[int64]*collectState),
	}
}

// Stats returns a snapshot of the node's counters.
func (nd *Node) Stats() Stats {
	var st Stats
	nd.rtm.Atomic(func() { st = nd.stats })
	return st
}

// collectState accumulates one collect or propose round's replies.
type collectState struct {
	count   int
	uniform bool    // all replies so far carry identical seq vectors
	first   []Entry // the first reply — the unanimity candidate
	merge   []Entry // componentwise max of all reply vectors
	com     []Entry // componentwise max of all reply committed caches
	adopted []Entry // set at capture time when the round ends by adoption
}

func cloneVec(vec []Entry) []Entry { return append([]Entry(nil), vec...) }

// sameSeqs reports componentwise sequence equality (payloads are
// determined by (writer, seq): a writer never reuses a sequence number).
func sameSeqs(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq {
			return false
		}
	}
	return true
}

// covers reports a ⊇ b componentwise.
func covers(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq < b[i].Seq {
			return false
		}
	}
	return true
}

// mergeInto folds src into dst componentwise by maximum seq.
func (nd *Node) mergeInto(dst []Entry, src []Entry) {
	for i := 0; i < len(src) && i < len(dst); i++ {
		if src[i].Seq > dst[i].Seq {
			dst[i] = src[i]
		}
	}
}

// HandleMessage implements rt.Handler (server thread; the runtime
// serializes it with Atomic sections).
func (nd *Node) HandleMessage(src int, m rt.Message) {
	switch msg := m.(type) {
	case MsgWrite:
		if src >= 0 && src < nd.n && msg.Seq > nd.regs[src].Seq {
			nd.regs[src] = Entry{Seq: msg.Seq, Val: msg.Val}
		}
		nd.rtm.Send(src, MsgWriteAck{ReqID: msg.ReqID})
	case MsgWriteAck:
		if _, ok := nd.acks[msg.ReqID]; ok {
			nd.acks[msg.ReqID]++
		}
	case MsgCollect:
		nd.rtm.Send(src, MsgCollectAck{
			ReqID: msg.ReqID, Vec: cloneVec(nd.regs), Com: cloneVec(nd.committed),
		})
	case MsgPropose:
		nd.mergeInto(nd.regs, msg.Vec)
		nd.rtm.Send(src, MsgProposeAck{ReqID: msg.ReqID, Vec: cloneVec(nd.regs)})
	case MsgCollectAck:
		st, ok := nd.colls[msg.ReqID]
		if !ok || len(msg.Vec) != nd.n || len(msg.Com) != nd.n {
			return
		}
		nd.capture(st, msg.Vec)
		nd.mergeInto(st.com, msg.Com)
		// Spread commit knowledge: reply caches refresh this node's too.
		nd.mergeInto(nd.regs, msg.Com)
		nd.mergeInto(nd.committed, msg.Com)
	case MsgProposeAck:
		st, ok := nd.colls[msg.ReqID]
		if !ok || len(msg.Vec) != nd.n {
			return
		}
		nd.capture(st, msg.Vec)
	case MsgCommit:
		if len(msg.Vec) != nd.n {
			return
		}
		// Registers first: the cache must stay covered by the registers.
		nd.mergeInto(nd.regs, msg.Vec)
		nd.mergeInto(nd.committed, msg.Vec)
	}
}

// capture folds one reply vector into a round's accumulated state.
func (nd *Node) capture(st *collectState, vec []Entry) {
	if st.count == 0 {
		st.first = cloneVec(vec)
		st.merge = cloneVec(vec)
		st.uniform = true
	} else {
		if !sameSeqs(vec, st.first) {
			st.uniform = false
		}
		nd.mergeInto(st.merge, vec)
	}
	st.count++
}

// Update writes payload into this node's own segment: one write round to
// a quorum.
func (nd *Node) Update(payload []byte) error {
	return nd.UpdateBatch([][]byte{payload})
}

// UpdateBatch folds a batch of this node's payloads into one write round.
// Only the last payload is replicated: the earlier ones are superseded
// within the batch, so no scan can return them — they linearize
// consecutively right before the final write, exactly as consecutive
// single updates whose values were overwritten before any scan.
func (nd *Node) UpdateBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	if nd.rtm.Crashed() {
		return rt.ErrCrashed
	}
	c := nd.opStart("update")
	err := nd.write(payloads[len(payloads)-1])
	nd.opEnd(c, err)
	return err
}

func (nd *Node) write(payload []byte) error {
	var req, seq int64
	nd.rtm.Atomic(func() {
		nd.mySeq++
		seq = nd.mySeq
		nd.nextReq++
		req = nd.nextReq
		nd.acks[req] = 0
		nd.stats.Updates++
	})
	nd.rtm.Broadcast(MsgWrite{ReqID: req, Seq: seq, Val: payload})
	return nd.rtm.WaitUntilThen("acr write quorum",
		func() bool { return nd.acks[req] >= nd.quorum },
		func() { delete(nd.acks, req) })
}

// Scan returns an atomic snapshot of all n segments. Fast path: one
// collect round whose committed caches cover its register merge. Slow
// path: propose rounds until unanimity (then commit), or adoption of a
// committed vector covering the first collect's merge.
func (nd *Node) Scan() ([][]byte, error) {
	if nd.rtm.Crashed() {
		return nil, rt.ErrCrashed
	}
	c := nd.opStart("scan")
	vec, err := nd.scan()
	nd.opEnd(c, err)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, nd.n)
	for i, e := range vec {
		if e.Seq > 0 {
			out[i] = e.Val
		}
	}
	return out, nil
}

func (nd *Node) scan() ([]Entry, error) {
	nd.rtm.Atomic(func() { nd.stats.Scans++ })
	nd.phase("collect")
	st, err := nd.round(nil, nil)
	if err != nil {
		return nil, err
	}
	if sameSeqs(st.com, st.merge) {
		// The largest committed vector already covers every register the
		// collect saw: return it in one round.
		nd.rtm.Atomic(func() { nd.stats.FastScans++; nd.stats.Rounds++ })
		return st.com, nil
	}
	// Slow path. m0 — the merge of the first collect — contains every
	// update that completed before this scan started; any committed
	// vector covering it is an admissible result.
	m0 := st.merge
	cur := st.merge
	rounds := int64(1)
	for {
		nd.phase("propose")
		rounds++
		st, err = nd.round(cur, m0)
		if err != nil {
			return nil, err
		}
		if st.adopted != nil {
			nd.rtm.Atomic(func() { nd.stats.AdoptedScans++; nd.stats.SlowScans++; nd.stats.Rounds += rounds })
			return st.adopted, nil
		}
		if st.uniform {
			nd.rtm.Atomic(func() { nd.stats.SlowScans++; nd.stats.Rounds += rounds })
			nd.rtm.Broadcast(MsgCommit{Vec: st.first})
			return st.first, nil
		}
		cur = st.merge
	}
}

// round runs one collect (propose == nil) or propose round and captures
// its replies. With want set, the wait also completes as soon as the
// node's committed cache covers want (adoption).
func (nd *Node) round(propose, want []Entry) (*collectState, error) {
	var req int64
	var st *collectState
	nd.rtm.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		st = &collectState{com: make([]Entry, nd.n)}
		nd.colls[req] = st
	})
	if propose == nil {
		nd.rtm.Broadcast(MsgCollect{ReqID: req})
	} else {
		nd.rtm.Broadcast(MsgPropose{ReqID: req, Vec: propose})
	}
	var out collectState
	err := nd.rtm.WaitUntilThen("acr collect quorum",
		func() bool {
			if st.count >= nd.quorum {
				return true
			}
			return want != nil && covers(nd.committed, want)
		},
		func() {
			if want != nil && covers(nd.committed, want) && !(st.count >= nd.quorum && st.uniform) {
				out.adopted = cloneVec(nd.committed)
			} else {
				out = *st
			}
			delete(nd.colls, req)
		})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Operation instrumentation (same shape as eqaso's: one client thread, so
// the current-op fields need no synchronization).

type opCtx struct {
	id    int64
	op    string
	start rt.Ticks
}

// SetObserver installs an operation observer. Events emitted: "update"
// and "scan" lifecycles with phases "collect" and "propose" in between.
func (nd *Node) SetObserver(o rt.Observer) { nd.obs = o }

func (nd *Node) opStart(op string) opCtx {
	nd.opSeq++
	c := opCtx{id: nd.opSeq, op: op, start: nd.rtm.Now()}
	nd.curOp = c
	if nd.obs != nil {
		nd.obs.OnOp(rt.OpEvent{T: c.start, Node: nd.id, ID: c.id, Op: c.op, Phase: rt.PhaseStart})
	}
	return c
}

func (nd *Node) phase(name string) {
	if nd.obs == nil || nd.curOp.op == "" {
		return
	}
	nd.obs.OnOp(rt.OpEvent{T: nd.rtm.Now(), Node: nd.id, ID: nd.curOp.id, Op: nd.curOp.op, Phase: name})
}

func (nd *Node) opEnd(c opCtx, err error) {
	nd.curOp = opCtx{}
	if nd.obs == nil {
		return
	}
	now := nd.rtm.Now()
	nd.obs.OnOp(rt.OpEvent{
		T: now, Node: nd.id, ID: c.id, Op: c.op,
		Phase: rt.PhaseEnd, Dur: now - c.start, Err: err != nil,
	})
}
