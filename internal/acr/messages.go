package acr

import (
	"math/rand"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// MsgWrite replicates the writer's latest register state (its new
// sequence number and payload) to all servers.
type MsgWrite struct {
	ReqID int64
	Seq   int64
	Val   []byte
}

// Kind implements rt.Message.
func (MsgWrite) Kind() string { return "acrWrite" }

// MsgWriteAck acknowledges a MsgWrite.
type MsgWriteAck struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgWriteAck) Kind() string { return "acrWriteAck" }

// MsgCollect asks for the receiver's register vector and its largest
// known committed vector.
type MsgCollect struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgCollect) Kind() string { return "acrCollect" }

// MsgCollectAck returns the receiver's register vector plus its largest
// known committed vector (the amortization cache).
type MsgCollectAck struct {
	ReqID int64
	Vec   []Entry
	Com   []Entry
}

// Kind implements rt.Message.
func (MsgCollectAck) Kind() string { return "acrCollectAck" }

// MsgPropose pushes a slow-path scanner's merged vector; each receiver
// merges it into its registers and replies with its full vector.
type MsgPropose struct {
	ReqID int64
	Vec   []Entry
}

// Kind implements rt.Message.
func (MsgPropose) Kind() string { return "acrPropose" }

// MsgProposeAck returns the receiver's full register vector after the
// propose merge.
type MsgProposeAck struct {
	ReqID int64
	Vec   []Entry
}

// Kind implements rt.Message.
func (MsgProposeAck) Kind() string { return "acrProposeAck" }

// MsgCommit announces a returned (unanimously quorum-held) snapshot
// vector, fire-and-forget: receivers fold it into their registers and
// their committed cache, making the next contention-free scan one round.
type MsgCommit struct{ Vec []Entry }

// Kind implements rt.Message.
func (MsgCommit) Kind() string { return "acrCommit" }

func putVec(b *wire.Buffer, vec []Entry) {
	b.PutUvarint(uint64(len(vec)))
	for _, e := range vec {
		b.PutVarint(e.Seq)
		b.PutBytes(e.Val)
	}
}

func getVec(d *wire.Decoder) []Entry {
	// A serialized entry is at least 2 bytes (seq, val length).
	n := d.Count(2)
	if n == 0 {
		return nil
	}
	vec := make([]Entry, n)
	for i := range vec {
		vec[i] = Entry{Seq: d.Varint(), Val: d.Bytes()}
	}
	return vec
}

func genVec(rng *rand.Rand) []Entry {
	n := rng.Intn(5)
	if n == 0 {
		return nil
	}
	vec := make([]Entry, n)
	for i := range vec {
		vec[i] = Entry{Seq: rng.Int63n(1 << 30), Val: wire.GenPayload(rng)}
	}
	return vec
}

// Wire tags 128–143 (see ALGORITHMS.md, wire-tag tables).
func init() {
	wire.Register(wire.Codec{
		Tag: 128, Proto: MsgWrite{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgWrite)
			b.PutVarint(msg.ReqID)
			b.PutVarint(msg.Seq)
			b.PutBytes(msg.Val)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgWrite{ReqID: d.Varint(), Seq: d.Varint(), Val: d.Bytes()}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgWrite{ReqID: rng.Int63(), Seq: rng.Int63n(1 << 30), Val: wire.GenPayload(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 129, Proto: MsgWriteAck{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgWriteAck).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgWriteAck{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgWriteAck{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 130, Proto: MsgCollect{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgCollect).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgCollect{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgCollect{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 131, Proto: MsgCollectAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgCollectAck)
			b.PutVarint(msg.ReqID)
			putVec(b, msg.Vec)
			putVec(b, msg.Com)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgCollectAck{ReqID: d.Varint(), Vec: getVec(d), Com: getVec(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgCollectAck{ReqID: rng.Int63(), Vec: genVec(rng), Com: genVec(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 132, Proto: MsgPropose{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgPropose)
			b.PutVarint(msg.ReqID)
			putVec(b, msg.Vec)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgPropose{ReqID: d.Varint(), Vec: getVec(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgPropose{ReqID: rng.Int63(), Vec: genVec(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 133, Proto: MsgProposeAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgProposeAck)
			b.PutVarint(msg.ReqID)
			putVec(b, msg.Vec)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgProposeAck{ReqID: d.Varint(), Vec: getVec(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgProposeAck{ReqID: rng.Int63(), Vec: genVec(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 134, Proto: MsgCommit{},
		Encode: func(b *wire.Buffer, m rt.Message) { putVec(b, m.(MsgCommit).Vec) },
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgCommit{Vec: getVec(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message { return MsgCommit{Vec: genVec(rng)} },
	})
}
