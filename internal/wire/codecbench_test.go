package wire_test

import (
	"bytes"
	"encoding/gob"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// benchCorpus generates the EQ-ASO hot messages (tags 16–24): the values,
// acks, and view messages that dominate UPDATE/SCAN traffic. One fixed
// seed keeps the corpus identical across the wire and gob benchmarks, so
// their ns/op are directly comparable. Messages gob cannot encode at all
// (core.View's zero-copy representation has no exported fields) are
// dropped from both sides so the two benchmarks measure the same corpus.
func benchCorpus() []rt.Message {
	rng := rand.New(rand.NewSource(1))
	var msgs []rt.Message
	for _, c := range wire.Registered() {
		if c.Tag < 16 || c.Tag > 24 {
			continue
		}
		for k := 0; k < 4; k++ {
			msg := c.Gen(rng)
			if gob.NewEncoder(io.Discard).Encode(msg) != nil {
				break
			}
			msgs = append(msgs, msg)
		}
	}
	if len(msgs) == 0 {
		panic("benchCorpus: no eqaso codecs registered")
	}
	return msgs
}

// BenchmarkWireCodec round-trips the corpus through the typed codec: one
// self-contained encode plus decode per message, the unit of work a
// framed transport performs. cmd/asobench -e codec parses this output.
func BenchmarkWireCodec(b *testing.B) {
	msgs := benchCorpus()
	var buf wire.Buffer
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := msgs[i%len(msgs)]
		buf.Reset()
		if err := wire.AppendMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		total += buf.Len()
		if _, err := wire.Unmarshal(buf.Bytes()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "wirebytes/op")
}

// BenchmarkGobCodec is the baseline the wire codec replaced: the same
// corpus through encoding/gob, one self-contained stream per message (a
// length-prefixed framed transport cannot amortize gob's type descriptors
// across messages that must each decode independently).
func BenchmarkGobCodec(b *testing.B) {
	msgs := benchCorpus()
	var buf bytes.Buffer
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg := msgs[i%len(msgs)]
		buf.Reset()
		if err := gob.NewEncoder(&buf).Encode(msg); err != nil {
			b.Fatal(err)
		}
		total += buf.Len()
		out := reflect.New(reflect.TypeOf(msg))
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(out.Interface()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "wirebytes/op")
}
