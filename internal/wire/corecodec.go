package wire

import (
	"math/rand"

	"mpsnap/internal/core"
)

// Shared field codecs for the core framework types (tags, timestamps,
// values, views) so every algorithm package encodes them identically.
// Views and value sets are encoded in their in-memory order — which the
// owning packages keep sorted by timestamp — so equal views produce equal
// bytes.

// PutTag appends a core.Tag.
func PutTag(b *Buffer, t core.Tag) { b.PutVarint(int64(t)) }

// GetTag reads a core.Tag.
func GetTag(d *Decoder) core.Tag { return core.Tag(d.Varint()) }

// PutTimestamp appends a core.Timestamp.
func PutTimestamp(b *Buffer, ts core.Timestamp) {
	PutTag(b, ts.Tag)
	b.PutInt(ts.Writer)
}

// GetTimestamp reads a core.Timestamp.
func GetTimestamp(d *Decoder) core.Timestamp {
	return core.Timestamp{Tag: GetTag(d), Writer: d.Int()}
}

// PutValue appends a core.Value.
func PutValue(b *Buffer, v core.Value) {
	PutTimestamp(b, v.TS)
	b.PutBytes(v.Payload)
}

// GetValue reads a core.Value.
func GetValue(d *Decoder) core.Value {
	return core.Value{TS: GetTimestamp(d), Payload: d.Bytes()}
}

// PutValues appends a length-prefixed value list.
func PutValues(b *Buffer, vs []core.Value) {
	b.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		PutValue(b, v)
	}
}

// GetValues reads a length-prefixed value list (nil when empty).
func GetValues(d *Decoder) []core.Value {
	// A serialized value is at least 3 bytes (tag, writer, payload len).
	n := d.Count(3)
	if n == 0 {
		return nil
	}
	vs := make([]core.Value, n)
	for i := range vs {
		vs[i] = GetValue(d)
	}
	return vs
}

// PutView appends a core.View in timestamp order (the view's two segments
// flatten to one sorted value list on the wire).
func PutView(b *Buffer, v core.View) {
	b.PutUvarint(uint64(v.Len()))
	v.Each(func(val core.Value) { PutValue(b, val) })
}

// GetView reads a core.View.
func GetView(d *Decoder) core.View { return core.ViewOf(GetValues(d)...) }

// PutCheckpoint appends a core.Checkpoint (frontier tag, prefix length,
// prefix digest).
func PutCheckpoint(b *Buffer, ck core.Checkpoint) {
	PutTag(b, ck.Tag)
	b.PutUvarint(uint64(ck.Count))
	b.PutUint64(ck.Digest)
}

// GetCheckpoint reads a core.Checkpoint.
func GetCheckpoint(d *Decoder) core.Checkpoint {
	return core.Checkpoint{Tag: GetTag(d), Count: int(d.Uvarint()), Digest: d.Uint64()}
}

// Pseudo-random generators for fuzzing and benchmarks.

// GenPayload builds a random short payload (nil ~1/4 of the time, the
// same nil/empty folding the codec performs).
func GenPayload(rng *rand.Rand) []byte {
	if rng.Intn(4) == 0 {
		return nil
	}
	p := make([]byte, 1+rng.Intn(24))
	rng.Read(p)
	return p
}

// GenTimestamp builds a random timestamp with a small writer id.
func GenTimestamp(rng *rand.Rand) core.Timestamp {
	return core.Timestamp{Tag: core.Tag(rng.Int63n(1 << 20)), Writer: rng.Intn(16)}
}

// GenValue builds a random value.
func GenValue(rng *rand.Rand) core.Value {
	return core.Value{TS: GenTimestamp(rng), Payload: GenPayload(rng)}
}

// GenValues builds a random value list (sorted by timestamp, matching
// the invariant the owning packages maintain).
func GenValues(rng *rand.Rand) []core.Value {
	n := rng.Intn(6)
	if n == 0 {
		return nil
	}
	vs := make([]core.Value, n)
	for i := range vs {
		vs[i] = GenValue(rng)
	}
	sortValues(vs)
	return vs
}

// GenCheckpoint builds a random checkpoint.
func GenCheckpoint(rng *rand.Rand) core.Checkpoint {
	return core.Checkpoint{
		Tag:    core.Tag(rng.Int63n(1 << 20)),
		Count:  rng.Intn(1 << 12),
		Digest: rng.Uint64(),
	}
}

// GenView builds a random view.
func GenView(rng *rand.Rand) core.View { return core.ViewOf(GenValues(rng)...) }

func sortValues(vs []core.Value) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j].TS.Less(vs[j-1].TS); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
