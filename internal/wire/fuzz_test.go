package wire_test

import (
	"math/rand"
	"testing"

	"mpsnap/internal/wire"

	// Blank imports pull in every package that registers message codecs,
	// so the fuzz targets and benchmarks exercise the full registry.
	_ "mpsnap/internal/abd"
	_ "mpsnap/internal/baseline/laaso"
	_ "mpsnap/internal/byzaso"
	_ "mpsnap/internal/eqaso"
	_ "mpsnap/internal/la"
	_ "mpsnap/internal/mux"
	_ "mpsnap/internal/rbc"
	_ "mpsnap/internal/transport"
)

// FuzzWireRoundTrip: for every registered codec, a generated message must
// survive encode→decode→re-encode with byte-identical output (canonical
// encodings are what make the copy-through simulator deterministic).
func FuzzWireRoundTrip(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for _, c := range wire.Registered() {
			msg := c.Gen(rng)
			if _, err := wire.Roundtrip(msg); err != nil {
				t.Fatalf("tag %d (%T): %v", c.Tag, c.Proto, err)
			}
			frame, err := wire.MarshalFrame(msg, 0)
			if err != nil {
				t.Fatalf("tag %d (%T): frame: %v", c.Tag, c.Proto, err)
			}
			if _, err := wire.UnmarshalFrame(frame, 0); err != nil {
				t.Fatalf("tag %d (%T): unframe: %v", c.Tag, c.Proto, err)
			}
		}
	})
}

// FuzzWireDecode: arbitrary bytes fed to the payload and frame decoders
// must produce either a message or an error — never a panic, and never an
// allocation beyond the input in hand.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{wire.Version, 0, 0, 0, 0})
	rng := rand.New(rand.NewSource(1))
	for _, c := range wire.Registered() {
		payload, err := wire.Marshal(c.Gen(rng))
		if err != nil {
			continue // composite over an unregistered nested type: impossible here
		}
		f.Add(payload)
		frame, err := wire.MarshalFrame(c.Gen(rng), 0)
		if err == nil {
			f.Add(frame)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if msg, err := wire.Unmarshal(data); err == nil {
			// Whatever decoded must re-encode cleanly (it is a registered
			// type by construction).
			if _, err := wire.Marshal(msg); err != nil {
				t.Fatalf("decoded %T but re-encode failed: %v", msg, err)
			}
		}
		_, _ = wire.UnmarshalFrame(data, 0)
	})
}
