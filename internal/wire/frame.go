package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mpsnap/internal/rt"
)

// Framing errors. Transports treat any of them as a fatal condition for
// the connection that produced the bytes (close it, surface the error);
// the chaos harness counts them as corrupt frames.
var (
	// ErrFrameTooLarge reports a frame whose payload exceeds the cap —
	// on decode, before any allocation is attempted.
	ErrFrameTooLarge = errors.New("wire: frame exceeds max frame size")
	// ErrBadVersion reports a frame with an unknown version byte.
	ErrBadVersion = errors.New("wire: unknown frame version")
	// ErrShortFrame reports a frame truncated below its declared length.
	ErrShortFrame = errors.New("wire: truncated frame")
)

// maxOrDefault resolves the configurable cap.
func maxOrDefault(max int) int {
	if max <= 0 {
		return DefaultMaxFrame
	}
	return max
}

// AppendFrame appends a frame (header + payload) to dst and returns the
// extended slice. The cap is enforced on the encode side too: a payload
// over max is refused here, not discovered by the peer.
func AppendFrame(dst, payload []byte, max int) ([]byte, error) {
	max = maxOrDefault(max)
	if len(payload) > max {
		return dst, fmt.Errorf("%w: %d > %d bytes (encode)", ErrFrameTooLarge, len(payload), max)
	}
	dst = append(dst, Version)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// ReadFrame reads one frame from r and returns its payload. buf, if large
// enough, is reused for the payload (steady-state framed reads allocate
// nothing); pass nil to always allocate. io.EOF is returned untouched
// when the stream ends cleanly at a frame boundary, so callers can
// distinguish a closed peer from a corrupt one.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	max = maxOrDefault(max)
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF: clean close before a frame
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, hdr[0], Version)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w: header cut short: %w", ErrShortFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: %d > %d bytes (decode)", ErrFrameTooLarge, n, max)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: payload cut short: %w", ErrShortFrame, err)
	}
	return buf, nil
}

// ParseFrame parses one frame from the front of b, returning its payload
// (aliasing b) and the bytes after the frame.
func ParseFrame(b []byte, max int) (payload, rest []byte, err error) {
	max = maxOrDefault(max)
	if len(b) < HeaderLen {
		return nil, nil, fmt.Errorf("%w: %d header bytes of %d", ErrShortFrame, len(b), HeaderLen)
	}
	if b[0] != Version {
		return nil, nil, fmt.Errorf("%w: %d (want %d)", ErrBadVersion, b[0], Version)
	}
	n := binary.BigEndian.Uint32(b[1:])
	if n > uint32(max) {
		return nil, nil, fmt.Errorf("%w: %d > %d bytes (decode)", ErrFrameTooLarge, n, max)
	}
	if uint64(len(b)-HeaderLen) < uint64(n) {
		return nil, nil, fmt.Errorf("%w: %d payload bytes of %d", ErrShortFrame, len(b)-HeaderLen, n)
	}
	return b[HeaderLen : HeaderLen+int(n)], b[HeaderLen+int(n):], nil
}

// MarshalFrame encodes msg as one complete frame (the unit the chaos
// harness corrupts and a replay log would store).
func MarshalFrame(msg rt.Message, max int) ([]byte, error) {
	var b Buffer
	if err := AppendMessage(&b, msg); err != nil {
		return nil, err
	}
	return AppendFrame(nil, b.Bytes(), max)
}

// UnmarshalFrame parses one complete frame and decodes its message,
// rejecting trailing bytes after the frame.
func UnmarshalFrame(b []byte, max int) (rt.Message, error) {
	payload, rest, err := ParseFrame(b, max)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d after frame", ErrTrailingBytes, len(rest))
	}
	return Unmarshal(payload)
}
