package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is the zero-alloc append-side of the codec: a growable byte
// slice with typed append methods. A Buffer is reused across messages by
// calling Reset; steady-state encoding performs no allocations once the
// underlying slice has grown to the working-set size.
//
// All integer encodings are minimal varints (unsigned, or zigzag for
// signed), so a given value has exactly one encoding and encoders are
// deterministic by construction.
type Buffer struct {
	buf []byte
}

// Reset empties the buffer, keeping its capacity.
func (b *Buffer) Reset() { b.buf = b.buf[:0] }

// Bytes returns the encoded bytes. The slice aliases the buffer and is
// invalidated by the next Put or Reset.
func (b *Buffer) Bytes() []byte { return b.buf }

// Len returns the number of encoded bytes.
func (b *Buffer) Len() int { return len(b.buf) }

// PutByte appends one raw byte.
func (b *Buffer) PutByte(v byte) { b.buf = append(b.buf, v) }

// PutUvarint appends an unsigned varint.
func (b *Buffer) PutUvarint(v uint64) { b.buf = binary.AppendUvarint(b.buf, v) }

// PutVarint appends a zigzag-encoded signed varint.
func (b *Buffer) PutVarint(v int64) { b.buf = binary.AppendVarint(b.buf, v) }

// PutInt appends an int as a signed varint.
func (b *Buffer) PutInt(v int) { b.PutVarint(int64(v)) }

// PutBool appends a bool as one byte (0 or 1).
func (b *Buffer) PutBool(v bool) {
	if v {
		b.PutByte(1)
	} else {
		b.PutByte(0)
	}
}

// PutUint64 appends a fixed-width big-endian uint64 (used for float
// bits, where varint encoding would be counterproductive).
func (b *Buffer) PutUint64(v uint64) { b.buf = binary.BigEndian.AppendUint64(b.buf, v) }

// PutFloat64 appends a float64 as its IEEE-754 bits, big-endian.
func (b *Buffer) PutFloat64(v float64) { b.PutUint64(math.Float64bits(v)) }

// PutBytes appends a length-prefixed byte string. A nil slice and an
// empty slice encode identically (length 0); decoders return nil.
func (b *Buffer) PutBytes(v []byte) {
	b.PutUvarint(uint64(len(v)))
	b.buf = append(b.buf, v...)
}

// PutString appends a length-prefixed string.
func (b *Buffer) PutString(v string) {
	b.PutUvarint(uint64(len(v)))
	b.buf = append(b.buf, v...)
}

// Decoder is the decode-side cursor over one message payload. Errors
// latch: after the first malformed read every subsequent read returns the
// zero value and Err reports the first failure, so decode functions can
// read all fields and check Err once.
//
// Decoders never trust embedded lengths beyond the remaining input: a
// corrupt or malicious length prefix cannot trigger an allocation larger
// than the buffer actually in hand.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b. The decoder never mutates b, but
// byte-string reads copy out of it, so b may be reused afterwards.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated input (byte at offset %d)", d.off)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("malformed uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed varint as an int.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a bool; any byte other than 0 or 1 is an error (keeps the
// encoding canonical).
func (d *Decoder) Bool() bool {
	v := d.Byte()
	if v > 1 {
		d.fail("malformed bool byte %d", v)
		return false
	}
	return v == 1
}

// Uint64 reads a fixed-width big-endian uint64.
func (d *Decoder) Uint64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated input (uint64 at offset %d)", d.off)
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Float64 reads an IEEE-754 big-endian float64.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bytes reads a length-prefixed byte string into a fresh slice (never
// aliasing the input, which callers typically reuse). Length 0 returns
// nil.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("byte string length %d exceeds %d remaining bytes", n, d.Remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	v := make([]byte, n)
	copy(v, d.buf[d.off:])
	d.off += int(n)
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds %d remaining bytes", n, d.Remaining())
		return ""
	}
	v := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return v
}

// Count reads a collection length and validates it against the remaining
// input, assuming each element occupies at least elemMin bytes. This
// bounds the allocation a corrupt count can cause to the input actually
// present.
func (d *Decoder) Count(elemMin int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(d.Remaining()/elemMin) {
		d.fail("collection count %d exceeds remaining input (%d bytes, >=%d per element)",
			n, d.Remaining(), elemMin)
		return 0
	}
	return int(n)
}
