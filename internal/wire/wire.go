// Package wire is the typed codec layer every protocol message crosses
// on its way to a transport: a central registry mapping each concrete
// rt.Message type to a stable numeric tag with hand-written Encode/Decode
// functions, plus a length-prefixed, version-byte framed wire format with
// a configurable maximum frame size.
//
// Compared to the reflection-based encoding/gob layer it replaces, the
// codec is:
//
//   - deterministic: a message value has exactly one encoding (minimal
//     varints, fixed field order, no type descriptors), so simulator runs
//     stay byte-identical per seed and frames can later be hashed,
//     deduplicated, or replayed byte-exactly;
//   - fast and allocation-free on the encode path: a reused Buffer and
//     hand-written field writes, with no reflection;
//   - hostile-input safe: decoders validate every length against the
//     bytes actually present, frames are capped on both encode and
//     decode, and arbitrary input can never panic — malformed frames
//     surface as errors for the transport (close the connection) or the
//     chaos harness (count a corrupt frame) to handle.
//
// # Frame layout
//
//	offset 0      version byte (Version)
//	offset 1..4   payload length, uint32 big-endian (<= max frame)
//	offset 5..    payload
//
// # Payload layout
//
//	uvarint tag   the registered message tag
//	body          the message's registered encoding, to end of payload
//
// Tag assignments are listed in DESIGN.md (wire format section) and next
// to each message table in ALGORITHMS.md. Tags are forever: a message
// type may evolve only by appending optional fields its decoder defaults
// when absent, or by registering a new tag; tags are never reused.
package wire

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"

	"mpsnap/internal/rt"
)

// Version is the current wire-format version byte. A frame with any
// other version is rejected (decode error), which is what makes future
// format evolution detectable instead of silently misparsed.
const Version byte = 1

// HeaderLen is the frame header size: version byte + uint32 length.
const HeaderLen = 5

// DefaultMaxFrame is the frame cap applied when a transport or tool
// passes max <= 0: large enough for any view a realistic workload
// produces, small enough that a corrupt length prefix cannot cause an
// unbounded allocation.
const DefaultMaxFrame = 4 << 20

// TestTagBase is the start of the tag range reserved for test-local
// message types; production packages must register below it.
const TestTagBase uint16 = 0xF000

// Registry errors.
var (
	// ErrUnknownTag reports a payload whose tag has no registered codec.
	ErrUnknownTag = errors.New("wire: unknown message tag")
	// ErrNotRegistered reports an encode of an unregistered message type.
	ErrNotRegistered = errors.New("wire: message type not registered")
	// ErrTrailingBytes reports a payload with bytes left over after the
	// message body — every byte of a frame must be accounted for.
	ErrTrailingBytes = errors.New("wire: trailing bytes after message body")
)

// Codec describes one registered message type.
type Codec struct {
	// Tag is the stable numeric identity of the type on the wire.
	Tag uint16
	// Proto is a zero value of the concrete message type.
	Proto rt.Message
	// Encode appends the message body (everything after the tag) to b.
	// It is called only with messages of Proto's dynamic type.
	Encode func(b *Buffer, m rt.Message)
	// Decode parses a message body. It must consume exactly the bytes
	// Encode produced and must never panic on malformed input (the
	// Decoder's latched error discipline gives this for free).
	Decode func(d *Decoder) (rt.Message, error)
	// Gen builds a pseudo-random instance for fuzzing and benchmarks.
	Gen func(rng *rand.Rand) rt.Message
	// Composite marks codecs that nest other registered messages
	// (mux.Envelope); GenLeaf skips them to bound generator recursion.
	Composite bool
	// Encodable optionally reports whether this particular value can be
	// encoded. Composite codecs use it to check that their nested content
	// is registered too; nil means any value of the type encodes.
	Encodable func(m rt.Message) bool
}

var (
	regMu     sync.RWMutex
	byTag     = make(map[uint16]*Codec)
	byType    = make(map[reflect.Type]*Codec)
	tagByType = make(map[reflect.Type]uint16)
)

// Register installs a codec. It panics on a duplicate tag or type and on
// missing fields: registration happens in package init blocks, where a
// collision is always a programming error that must not reach the wire.
func Register(c Codec) {
	if c.Proto == nil || c.Encode == nil || c.Decode == nil {
		panic(fmt.Sprintf("wire: incomplete codec registration for tag %d", c.Tag))
	}
	t := reflect.TypeOf(c.Proto)
	regMu.Lock()
	defer regMu.Unlock()
	if prev, dup := byTag[c.Tag]; dup {
		panic(fmt.Sprintf("wire: tag %d registered twice (%T and %T)", c.Tag, prev.Proto, c.Proto))
	}
	if prevTag, dup := tagByType[t]; dup {
		panic(fmt.Sprintf("wire: type %T registered twice (tags %d and %d)", c.Proto, prevTag, c.Tag))
	}
	cc := c
	byTag[c.Tag] = &cc
	byType[t] = &cc
	tagByType[t] = c.Tag
}

// Lookup returns the codec registered for tag.
func Lookup(tag uint16) (*Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byTag[tag]
	return c, ok
}

// CodecFor returns the codec registered for msg's concrete type.
func CodecFor(msg rt.Message) (*Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byType[reflect.TypeOf(msg)]
	return c, ok
}

// Marshalable reports whether msg can actually be encoded: its concrete
// type is registered and, for composite messages, so is everything it
// nests. Copy-through layers use it to let test-local unregistered
// payloads pass through untouched instead of failing mid-send.
func Marshalable(msg rt.Message) bool {
	c, ok := CodecFor(msg)
	if !ok {
		return false
	}
	return c.Encodable == nil || c.Encodable(msg)
}

// Registered returns every registered codec, sorted by tag (tooling,
// fuzzing, and the codec benchmarks iterate it).
func Registered() []Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Codec, 0, len(byTag))
	for _, c := range byTag {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// GenLeaf builds a pseudo-random instance of a random registered
// non-composite type (composite codecs use it to fill their nested
// message without unbounded recursion). It panics if no generator-backed
// leaf codec is registered, which cannot happen once any algorithm
// package is linked in.
func GenLeaf(rng *rand.Rand) rt.Message {
	regMu.RLock()
	var leaves []*Codec
	for _, c := range byTag {
		if c.Gen != nil && !c.Composite {
			leaves = append(leaves, c)
		}
	}
	regMu.RUnlock()
	if len(leaves) == 0 {
		panic("wire: no leaf codecs with generators registered")
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].Tag < leaves[j].Tag })
	return leaves[rng.Intn(len(leaves))].Gen(rng)
}

// AppendMessage appends msg's payload encoding (tag + body) to b.
func AppendMessage(b *Buffer, msg rt.Message) error {
	c, ok := CodecFor(msg)
	if !ok {
		return fmt.Errorf("%w: %T (kind %q)", ErrNotRegistered, msg, msg.Kind())
	}
	b.PutUvarint(uint64(c.Tag))
	c.Encode(b, msg)
	return nil
}

// DecodeMessageFrom parses one message (tag + body) from d, leaving the
// cursor after the body. Used directly by composite codecs; top-level
// payloads go through Unmarshal, which additionally rejects trailing
// bytes.
func DecodeMessageFrom(d *Decoder) (rt.Message, error) {
	tag := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if tag > uint64(^uint16(0)) {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	c, ok := Lookup(uint16(tag))
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	msg, err := c.Decode(d)
	if err != nil {
		return nil, fmt.Errorf("wire: decode %T (tag %d): %w", c.Proto, c.Tag, err)
	}
	return msg, nil
}

// sizeBufs pools encode buffers for EncodedSize, so per-message byte
// accounting adds no steady-state allocations to backend hot paths.
var sizeBufs = sync.Pool{New: func() any { return new(Buffer) }}

// EncodedSize returns the encoded payload size (tag + body) of msg in
// bytes, or 0 when msg — or something it nests — is not marshalable.
// In-memory backends use it to attribute wire bytes to message kinds
// without actually shipping frames.
func EncodedSize(msg rt.Message) int {
	if !Marshalable(msg) {
		return 0
	}
	b := sizeBufs.Get().(*Buffer)
	b.Reset()
	n := 0
	if AppendMessage(b, msg) == nil {
		n = b.Len()
	}
	sizeBufs.Put(b)
	return n
}

// Marshal encodes msg as a standalone payload (tag + body).
func Marshal(msg rt.Message) ([]byte, error) {
	var b Buffer
	if err := AppendMessage(&b, msg); err != nil {
		return nil, err
	}
	return append([]byte(nil), b.Bytes()...), nil
}

// decoders pools the per-payload Decoder cursors Unmarshal uses, so the
// transport receive path does not allocate one per frame. Safe because
// decoded messages copy every byte-string field out of the input (see
// Decoder.Bytes) and so never alias the cursor or its buffer.
var decoders = sync.Pool{New: func() any { return new(Decoder) }}

// Unmarshal decodes a standalone payload, requiring every byte to be
// consumed.
func Unmarshal(p []byte) (rt.Message, error) {
	d := decoders.Get().(*Decoder)
	*d = Decoder{buf: p}
	msg, err := DecodeMessageFrom(d)
	rem := d.Remaining()
	*d = Decoder{} // drop the reference to p before pooling
	decoders.Put(d)
	if err != nil {
		return nil, err
	}
	if rem != 0 {
		return nil, fmt.Errorf("%w: %d of %d", ErrTrailingBytes, rem, len(p))
	}
	return msg, nil
}

// Roundtrip encodes msg and decodes the result, verifying that re-encoding
// the decoded message reproduces the same bytes. It is the engine of the
// simulator's copy-through mode: the returned message shares no memory
// with msg, and any encoder/decoder disagreement or non-canonical
// encoding surfaces as an error.
func Roundtrip(msg rt.Message) (rt.Message, error) {
	p, err := Marshal(msg)
	if err != nil {
		return nil, err
	}
	out, err := Unmarshal(p)
	if err != nil {
		return nil, fmt.Errorf("wire: roundtrip decode of %T: %w", msg, err)
	}
	p2, err := Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("wire: roundtrip re-encode of %T: %w", msg, err)
	}
	if !bytes.Equal(p, p2) {
		return nil, fmt.Errorf("wire: non-canonical encoding of %T: re-encode differs (%d vs %d bytes)", msg, len(p), len(p2))
	}
	return out, nil
}
