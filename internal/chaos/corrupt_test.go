package chaos

import (
	"math/rand"
	"reflect"
	"testing"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// corruptProbe is a registered test-local message so corrupter behaviour
// is observable without depending on any algorithm's message shapes.
type corruptProbe struct {
	Seq     int
	Payload []byte
}

func (corruptProbe) Kind() string { return "corruptProbe" }

func init() {
	wire.Register(wire.Codec{
		Tag: wire.TestTagBase + 1, Proto: corruptProbe{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(corruptProbe)
			b.PutInt(msg.Seq)
			b.PutBytes(msg.Payload)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return corruptProbe{Seq: d.Int(), Payload: d.Bytes()}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return corruptProbe{Seq: rng.Intn(1 << 16), Payload: wire.GenPayload(rng)}
		},
	})
}

// TestGenerateCorruptBackwardCompat: enabling corrupt windows must not
// perturb any other fault's RNG draws — a seed's crash, partition, drop,
// and spike events are identical with and without CorruptWindows.
func TestGenerateCorruptBackwardCompat(t *testing.T) {
	base := DefaultMix()
	withCorrupt := base
	withCorrupt.CorruptWindows = 3
	for seed := int64(1); seed <= 5; seed++ {
		plain := Generate(seed, 5, 2, 60*rt.TicksPerD, base)
		mixed := Generate(seed, 5, 2, 60*rt.TicksPerD, withCorrupt)
		var kept []Event
		corrupt := 0
		srcs := map[int]bool{}
		for _, ev := range mixed.Events {
			if ev.Kind == EvCorruptOn || ev.Kind == EvCorruptOff {
				corrupt++
				srcs[ev.Src] = true
				continue
			}
			kept = append(kept, ev)
		}
		if corrupt != 2*withCorrupt.CorruptWindows {
			t.Fatalf("seed %d: %d corrupt events, want %d", seed, corrupt, 2*withCorrupt.CorruptWindows)
		}
		if len(srcs) > 2 {
			t.Fatalf("seed %d: corrupt sources %v exceed the f=2 budget", seed, srcs)
		}
		if !reflect.DeepEqual(kept, plain.Events) {
			t.Fatalf("seed %d: non-corrupt events changed when corruption was enabled:\nplain: %+v\nmixed: %+v",
				seed, plain.Events, kept)
		}
	}
}

// TestGenerateCorruptNeedsFaultBudget: with f=0 there is no fault budget
// to attribute Byzantine bytes to, so no corrupt events are generated.
func TestGenerateCorruptNeedsFaultBudget(t *testing.T) {
	mix := DefaultMix()
	mix.CorruptWindows = 3
	s := Generate(1, 5, 0, 60*rt.TicksPerD, mix)
	for _, ev := range s.Events {
		if ev.Kind == EvCorruptOn || ev.Kind == EvCorruptOff {
			t.Fatalf("f=0 schedule contains %s", ev)
		}
	}
}

// TestCorrupterOutcomes: every message hit by a window is either killed
// or delivered as a decodable mutant; crash-only mode never delivers.
func TestCorrupterOutcomes(t *testing.T) {
	gen := rand.New(rand.NewSource(7))
	probe := func() rt.Message {
		return corruptProbe{Seq: gen.Intn(1 << 16), Payload: wire.GenPayload(gen)}
	}

	crashOnly := newCorrupter(1, false)
	crashOnly.windows[[2]int{0, 1}] = 1.0
	for i := 0; i < 300; i++ {
		m, drop := crashOnly.OnWire(0, 0, 1, probe())
		if !drop || m != nil {
			t.Fatalf("crash-only corrupter delivered a mutant (m=%v drop=%v)", m, drop)
		}
	}
	if crashOnly.attempted != 300 || crashOnly.killed != 300 || crashOnly.mutated != 0 {
		t.Fatalf("crash-only counters attempted=%d killed=%d mutated=%d, want 300/300/0",
			crashOnly.attempted, crashOnly.killed, crashOnly.mutated)
	}

	byz := newCorrupter(1, true)
	byz.windows[[2]int{0, 1}] = 1.0
	delivered := 0
	for i := 0; i < 300; i++ {
		if m, drop := byz.OnWire(0, 0, 1, probe()); !drop {
			delivered++
			if _, ok := m.(corruptProbe); !ok {
				t.Fatalf("mutant decoded to %T, want corruptProbe", m)
			}
		}
	}
	if byz.attempted != 300 || byz.killed+byz.mutated != 300 {
		t.Fatalf("byz counters attempted=%d killed=%d mutated=%d do not add up",
			byz.attempted, byz.killed, byz.mutated)
	}
	if delivered == 0 {
		t.Fatal("no decodable mutant in 300 corruptions — bit flips should sometimes survive decode")
	}
	if int64(delivered) != byz.mutated {
		t.Fatalf("delivered %d but mutated counter says %d", delivered, byz.mutated)
	}

	// Outside any window the corrupter is a no-op.
	if m, drop := byz.OnWire(0, 1, 0, probe()); m != nil || drop {
		t.Fatalf("corruption outside a window (m=%v drop=%v)", m, drop)
	}
}

// TestRunSimWithCorruption: both the crash-only and the Byzantine object
// keep their consistency condition under active corrupt windows, and the
// sim's corruption counter proves the windows actually fired.
func TestRunSimWithCorruption(t *testing.T) {
	mix := DefaultMix()
	mix.CorruptWindows = 3
	mix.CorruptProb = 0.5
	for _, tc := range []struct {
		alg  string
		n, f int
	}{
		{"eqaso", 5, 2},
		{"byzaso", 7, 2},
	} {
		t.Run(tc.alg, func(t *testing.T) {
			res, err := RunSim(Config{N: tc.n, F: tc.f, Engine: tc.alg, Seed: 9, Duration: 60 * rt.TicksPerD, Mix: mix})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Check.OK {
				t.Fatalf("check failed under corruption: %v", res.Check.Violations)
			}
			if res.Stats.MsgsCorrupt == 0 {
				t.Fatal("MsgsCorrupt = 0: corrupt windows never hit a message")
			}
		})
	}
}

// TestRunTransportChanWithCorruption: the corrupter also rides the real
// transport path through Net.
func TestRunTransportChanWithCorruption(t *testing.T) {
	mix := DefaultMix()
	mix.CorruptWindows = 3
	mix.CorruptProb = 0.5
	res, err := RunTransport(Config{N: 5, F: 2, Seed: 9, Duration: 30 * rt.TicksPerD, Mix: mix}, "chan")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Check.OK {
		t.Fatalf("check failed under corruption: %v", res.Check.Violations)
	}
	if res.NetCorrupt == 0 {
		t.Fatal("NetCorrupt = 0: corrupt windows never hit a message")
	}
}
