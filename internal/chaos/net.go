package chaos

import (
	"math/rand"
	"sync"
	"time"

	"mpsnap/internal/rt"
)

// Net injects a chaos Schedule into a real transport: it wraps each
// node's rt.Runtime so every outgoing Send/Broadcast passes through the
// shared fault state (partition cut, per-link drop probability, per-link
// spike hold, crash flags). The same Schedule that drives the simulator
// drives a ChanNet or TCP loopback cluster through this wrapper.
//
// Partitioned and spiked links hold messages (in send order) and release
// them when the cut heals or the window closes, preserving per-link FIFO
// — a partition is indistinguishable from a long delay, exactly as on
// the simulator. Dropped messages are lost for good.
type Net struct {
	mu     sync.Mutex
	n      int
	rng    *rand.Rand
	unders []rt.Runtime
	// crash crash-stops a node of the underlying transport so blocked
	// waits release with rt.ErrCrashed.
	crashFn func(id int)

	cutOn   bool
	cut     [][]bool
	drop    map[[2]int]float64
	spike   map[[2]int]bool
	held    []heldNetMsg
	crashed []bool
	armed   []bool
	// onRestart, if set, handles EvRestart events from Apply: it restores
	// the backing transport and node (WAL replay, handler reinstall,
	// client respawn) and finishes by calling ClearCrashed.
	onRestart func(id int)
	// corr, if set, mutates messages at the wire layer inside corrupt
	// windows (see corrupter); accessed under mu.
	corr *corrupter

	drops, holds, corrupts int64
}

type heldNetMsg struct {
	src, dst int
	msg      rt.Message
}

// NewNet wraps the underlying per-node runtimes. crashFn must crash-stop
// node id on the backing transport.
func NewNet(seed int64, unders []rt.Runtime, crashFn func(id int)) *Net {
	n := len(unders)
	nt := &Net{
		n:       n,
		rng:     rand.New(rand.NewSource(seed)),
		unders:  unders,
		crashFn: crashFn,
		cut:     make([][]bool, n),
		drop:    make(map[[2]int]float64),
		spike:   make(map[[2]int]bool),
		crashed: make([]bool, n),
		armed:   make([]bool, n),
	}
	for i := range nt.cut {
		nt.cut[i] = make([]bool, n)
	}
	return nt
}

// Runtime returns node id's fault-injected runtime; install the
// algorithm node against this, not the underlying transport runtime.
func (nt *Net) Runtime(id int) rt.Runtime {
	return &faultyRuntime{nt: nt, id: id, under: nt.unders[id]}
}

// Crashed reports whether the chaos controller crashed node id.
func (nt *Net) Crashed(id int) bool {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	return nt.crashed[id]
}

// Drops returns how many messages the loss windows discarded.
func (nt *Net) Drops() int64 {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	return nt.drops
}

// Holds returns how many messages were parked at a cut or spike.
func (nt *Net) Holds() int64 {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	return nt.holds
}

// SetCorrupter installs the wire-corruption fault; call before traffic
// flows.
func (nt *Net) SetCorrupter(c *corrupter) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	nt.corr = c
}

// Corrupts returns how many messages the corrupt windows hit.
func (nt *Net) Corrupts() int64 {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	return nt.corrupts
}

// CorruptOn starts a wire-corruption window on the src→dst link.
func (nt *Net) CorruptOn(src, dst int, prob float64) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	if nt.corr != nil {
		nt.corr.windows[[2]int{src, dst}] = prob
	}
}

// CorruptOff ends the wire-corruption window on the src→dst link.
func (nt *Net) CorruptOff(src, dst int) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	if nt.corr != nil {
		delete(nt.corr.windows, [2]int{src, dst})
	}
}

// Crash crash-stops node id: its sends are suppressed and the backing
// transport releases its blocked waits with rt.ErrCrashed.
func (nt *Net) Crash(id int) {
	nt.mu.Lock()
	if nt.crashed[id] {
		nt.mu.Unlock()
		return
	}
	nt.crashed[id] = true
	nt.mu.Unlock()
	if nt.crashFn != nil {
		nt.crashFn(id)
	}
}

// OnRestart registers the crash-recovery callback invoked for EvRestart
// events during Apply; set it before traffic flows.
func (nt *Net) OnRestart(fn func(id int)) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	nt.onRestart = fn
}

// ClearCrashed unmarks a crash-stopped node so its sends flow again. The
// caller must have restored the backing transport (and reinstalled the
// recovered handler) first.
func (nt *Net) ClearCrashed(id int) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	nt.crashed[id] = false
	nt.armed[id] = false
}

// CrashAll crash-stops every node (end-of-run abort of stuck clients).
func (nt *Net) CrashAll() {
	for id := 0; id < nt.n; id++ {
		nt.Crash(id)
	}
}

// Arm makes node id's next broadcast reach only a random prefix of the
// destinations before the node crashes (mid-broadcast crash).
func (nt *Net) Arm(id int) {
	nt.mu.Lock()
	nt.armed[id] = true
	nt.mu.Unlock()
}

// Partition isolates the given islands (nodes in no group form one
// implicit extra island), holding cross-cut messages until Heal.
func (nt *Net) Partition(groups ...[]int) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	island := make([]int, nt.n)
	for i := range island {
		island[i] = -1
	}
	for g, nodes := range groups {
		for _, id := range nodes {
			island[id] = g
		}
	}
	for s := 0; s < nt.n; s++ {
		for d := 0; d < nt.n; d++ {
			nt.cut[s][d] = s != d && island[s] != island[d]
		}
	}
	nt.cutOn = true
}

// Heal removes the partition and releases every releasable held message
// in send order.
func (nt *Net) Heal() {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	nt.cutOn = false
	for i := range nt.cut {
		for j := range nt.cut[i] {
			nt.cut[i][j] = false
		}
	}
	nt.flushLocked()
}

// DropOn starts a loss window on the src→dst link.
func (nt *Net) DropOn(src, dst int, prob float64) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	nt.drop[[2]int{src, dst}] = prob
}

// DropOff ends the loss window on the src→dst link.
func (nt *Net) DropOff(src, dst int) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	delete(nt.drop, [2]int{src, dst})
}

// SpikeOn starts a delay spike on the src→dst link: the link holds its
// messages until SpikeOff, delaying them by up to the window length.
func (nt *Net) SpikeOn(src, dst int) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	nt.spike[[2]int{src, dst}] = true
}

// SpikeOff ends the delay spike and releases the link's held messages.
func (nt *Net) SpikeOff(src, dst int) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	delete(nt.spike, [2]int{src, dst})
	nt.flushLocked()
}

// flushLocked re-sends every held message whose link is clear, keeping
// the rest parked. Held messages survive a sender crash (they were
// in flight), though a crash-stop backing transport may still discard
// them on the sender side.
func (nt *Net) flushLocked() {
	var keep []heldNetMsg
	for _, hm := range nt.held {
		if (nt.cutOn && nt.cut[hm.src][hm.dst]) || nt.spike[[2]int{hm.src, hm.dst}] {
			keep = append(keep, hm)
			continue
		}
		nt.unders[hm.src].Send(hm.dst, hm.msg)
	}
	nt.held = keep
}

func (nt *Net) send(src, dst int, msg rt.Message) {
	nt.mu.Lock()
	defer nt.mu.Unlock()
	nt.sendLocked(src, dst, msg)
}

func (nt *Net) sendLocked(src, dst int, msg rt.Message) {
	if nt.crashed[src] {
		return
	}
	if src != dst {
		key := [2]int{src, dst}
		if p := nt.drop[key]; p > 0 && nt.rng.Float64() < p {
			nt.drops++
			return
		}
		if nt.corr != nil {
			if m, drop := nt.corr.OnWire(0, src, dst, msg); drop {
				nt.corrupts++
				nt.drops++
				return
			} else if m != nil {
				nt.corrupts++
				msg = m
			}
		}
		if (nt.cutOn && nt.cut[src][dst]) || nt.spike[key] {
			nt.holds++
			nt.held = append(nt.held, heldNetMsg{src: src, dst: dst, msg: msg})
			return
		}
	}
	nt.unders[src].Send(dst, msg)
}

func (nt *Net) broadcast(src int, msg rt.Message) {
	nt.mu.Lock()
	if nt.crashed[src] {
		nt.mu.Unlock()
		return
	}
	if nt.armed[src] {
		nt.armed[src] = false
		prefix := nt.rng.Intn(nt.n)
		for dst := 0; dst < prefix; dst++ {
			nt.sendLocked(src, dst, msg)
		}
		// Crash the victim without re-entering the transport from this
		// goroutine: the broadcaster holds its own node lock (transports
		// run protocol sections under it), so a synchronous crashFn
		// would self-deadlock. Marking crashed here already suppresses
		// every later send; the transport-level crash — which releases
		// the victim's blocked waits — lands as soon as the in-progress
		// critical section ends.
		nt.crashed[src] = true
		fn := nt.crashFn
		nt.mu.Unlock()
		if fn != nil {
			go fn(src)
		}
		return
	}
	for dst := 0; dst < nt.n; dst++ {
		nt.sendLocked(src, dst, msg)
	}
	nt.mu.Unlock()
}

// Apply spawns a driver that replays the schedule against this Net,
// mapping ev.At ticks to wall time via tick (the real duration of one
// virtual tick). It returns immediately; close done to stop early.
func (nt *Net) Apply(sched Schedule, tick time.Duration, done <-chan struct{}) {
	go func() {
		start := time.Now()
		for _, ev := range sched.Events {
			if wait := time.Duration(ev.At)*tick - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-done:
					return
				}
			}
			select {
			case <-done:
				return
			default:
			}
			switch ev.Kind {
			case EvCrash:
				if ev.Mid {
					nt.Arm(ev.Node)
					// Hard-crash fallback if the victim never
					// broadcasts (mirrors the sim runner).
					node := ev.Node
					time.AfterFunc(time.Duration(2*rt.TicksPerD)*tick, func() { nt.Crash(node) })
				} else {
					nt.Crash(ev.Node)
				}
			case EvPartition:
				nt.Partition(ev.Groups...)
			case EvHeal:
				nt.Heal()
			case EvDropOn:
				nt.DropOn(ev.Src, ev.Dst, ev.Prob)
			case EvDropOff:
				nt.DropOff(ev.Src, ev.Dst)
			case EvSpikeOn:
				nt.SpikeOn(ev.Src, ev.Dst)
			case EvSpikeOff:
				nt.SpikeOff(ev.Src, ev.Dst)
			case EvCorruptOn:
				nt.CorruptOn(ev.Src, ev.Dst, ev.Prob)
			case EvCorruptOff:
				nt.CorruptOff(ev.Src, ev.Dst)
			case EvRestart:
				nt.mu.Lock()
				cb := nt.onRestart
				nt.mu.Unlock()
				if cb != nil {
					cb(ev.Node)
				}
			}
		}
	}()
}

// faultyRuntime is a node's fault-injected view of the transport.
type faultyRuntime struct {
	nt    *Net
	id    int
	under rt.Runtime
}

var _ rt.Runtime = (*faultyRuntime)(nil)

func (r *faultyRuntime) ID() int { return r.under.ID() }
func (r *faultyRuntime) N() int  { return r.under.N() }
func (r *faultyRuntime) F() int  { return r.under.F() }

func (r *faultyRuntime) Send(dst int, msg rt.Message) { r.nt.send(r.id, dst, msg) }
func (r *faultyRuntime) Broadcast(msg rt.Message)     { r.nt.broadcast(r.id, msg) }

func (r *faultyRuntime) Atomic(fn func()) { r.under.Atomic(fn) }
func (r *faultyRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	return r.under.WaitUntilThen(label, pred, then)
}
func (r *faultyRuntime) Now() rt.Ticks { return r.under.Now() }
func (r *faultyRuntime) Crashed() bool { return r.under.Crashed() }
