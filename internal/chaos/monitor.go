package chaos

import (
	"fmt"
	"path/filepath"
	"sync"

	"mpsnap/internal/history"
	"mpsnap/internal/monitor"
	"mpsnap/internal/obs"
	"mpsnap/internal/rt"
)

// attachMonitor builds the run's streaming invariant monitor and attaches
// it to rec (through the corrupting test sink when that hook is armed).
// The first violation triggers the capture path: the monitor dumps its
// window transcript — and the obs trace ring, when tracing is armed — into
// cfg.TraceDir at the moment of the violation, so the dump shows the
// run's state then, not whatever survives until the end. Returns nil when
// the monitor is off.
func attachMonitor(cfg *Config, sched Schedule, rec *history.Recorder, tr *obs.Trace, res *Result) *monitor.Monitor {
	if !cfg.Monitor {
		return nil
	}
	var mon *monitor.Monitor
	var once sync.Once
	window := cfg.MonitorWindow
	if window == 0 {
		window = monitor.DefaultWindow
	}
	mcfg := monitor.Config{N: cfg.N, Window: window}
	mcfg.OnViolation = func(monitor.Violation) {
		once.Do(func() {
			if cfg.TraceDir == "" {
				return
			}
			stem := fmt.Sprintf("monitor-%s-seed%d-%s", cfg.Engine, cfg.Seed, sched.Hash())
			path := filepath.Join(cfg.TraceDir, stem+".json")
			if err := mon.DumpFile(path); err == nil {
				res.MonitorPath = path
			}
			if tr != nil {
				tpath := filepath.Join(cfg.TraceDir, stem+"-trace.jsonl")
				if err := tr.DumpJSONL(tpath); err == nil {
					res.MonitorTracePath = tpath
				}
			}
		})
	}
	mon = monitor.New(mcfg)
	var sink history.Sink = mon
	if cfg.monitorCorrupt {
		sink = newCorruptSink(mon, cfg.N)
	}
	rec.SetSink(sink)
	return mon
}

// harvestMonitor copies the monitor's verdict into the result.
func harvestMonitor(mon *monitor.Monitor, res *Result) {
	if mon == nil {
		return
	}
	st := mon.Stats()
	res.MonitorStats = &st
	for _, v := range mon.Violations() {
		res.MonitorViolations = append(res.MonitorViolations, v.String())
	}
}

// corruptSink forwards the recorder stream to the monitor, mutating
// exactly one scan completion on the way: the first completing scan that
// was invoked after some writer finished an update gets that writer's
// segment blanked to ⊥ — a containment violation the monitor must flag
// within its window. The recorded history is untouched; only the
// monitor's view lies.
type corruptSink struct {
	inner history.Sink

	mu       sync.Mutex
	lastResp []rt.Ticks  // per-writer newest update completion time
	victim   map[int]int // eligible scan op ID → segment to blank
	done     bool
}

func newCorruptSink(inner history.Sink, n int) *corruptSink {
	return &corruptSink{inner: inner, lastResp: make([]rt.Ticks, n), victim: make(map[int]int)}
}

// OpBegan implements history.Sink.
func (s *corruptSink) OpBegan(op history.Op) {
	s.mu.Lock()
	if !s.done && op.Type == history.Scan {
		for j, r := range s.lastResp {
			if r > 0 && r < op.Inv {
				s.victim[op.ID] = j
				break
			}
		}
	}
	s.mu.Unlock()
	s.inner.OpBegan(op)
}

// OpCompleted implements history.Sink.
func (s *corruptSink) OpCompleted(op history.Op) {
	s.mu.Lock()
	switch op.Type {
	case history.Update:
		if op.Node >= 0 && op.Node < len(s.lastResp) && op.Resp > s.lastResp[op.Node] {
			s.lastResp[op.Node] = op.Resp
		}
	case history.Scan:
		if j, ok := s.victim[op.ID]; ok {
			delete(s.victim, op.ID)
			if !s.done && j < len(op.Snap) {
				s.done = true
				snap := append([]string(nil), op.Snap...)
				snap[j] = history.NoValue
				op.Snap = snap
			}
		}
	}
	s.mu.Unlock()
	s.inner.OpCompleted(op)
}
