package chaos

import (
	"bytes"
	"reflect"
	"testing"

	"mpsnap/internal/engine"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// TestSeedDeterminism: the sim backend is a pure function of the seed —
// two runs produce byte-identical history JSON and the same schedule.
func TestSeedDeterminism(t *testing.T) {
	cfg := Config{N: 5, F: 2, Seed: 42, Duration: 60 * rt.TicksPerD}
	run := func() ([]byte, Schedule) {
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Check.OK {
			t.Fatalf("not linearizable: %v", res.Check.Violations)
		}
		var buf bytes.Buffer
		if err := res.Hist.DumpJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res.Schedule
	}
	b1, s1 := run()
	b2, s2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("schedules differ:\n%+v\n%+v", s1, s2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different histories (%d vs %d bytes)", len(b1), len(b2))
	}
	// And a different seed actually changes the faults.
	cfg.Seed = 43
	if _, s3 := run(); s3.Hash() == s1.Hash() {
		t.Fatalf("seeds 42 and 43 generated the same schedule %s", s1.Hash())
	}
}

// TestScanSpansPartition is the harness's reason to exist in miniature: a
// SCAN invoked just before a partition cuts its node into the minority
// island must block across the partition, complete after heal, and the
// whole history — including updates completed inside the majority island
// while the cut was up — must linearize.
func TestScanSpansPartition(t *testing.T) {
	const healAt = 15 * rt.TicksPerD
	c := harness.Build(sim.Config{N: 5, F: 2, Seed: 11}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := engine.MustLookup("eqaso").New(r)
		return nd, nd
	})
	w := c.W
	// The partition lands at t=1: the scan's outgoing requests (sent at
	// t=0) are already in flight and still delivered, but every response
	// from the majority island is sent after the cut and held.
	w.After(1, func() { w.Partition([]int{0, 1}, []int{2, 3, 4}) })
	w.After(healAt, func() { w.Heal() })
	c.Client(0, func(o *harness.OpRunner) {
		if _, err := o.Scan(); err != nil {
			t.Errorf("scan: %v", err)
		}
	})
	for i := 2; i < 5; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 2; k++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update node %d: %v", o.Node(), err)
				}
			}
		})
	}
	h, err := c.MustLinearizable()
	if err != nil {
		t.Fatal(err)
	}
	var scan *history.Op
	duringCut := 0
	for _, op := range h.Ops {
		if op.Type == history.Scan && op.Node == 0 {
			scan = op
		}
		if op.Type == history.Update && !op.Pending() && op.Resp < healAt {
			duringCut++
		}
	}
	if scan == nil || scan.Pending() {
		t.Fatal("node 0's scan did not complete")
	}
	if scan.Resp < healAt {
		t.Fatalf("scan completed at t=%d, before the heal at t=%d — the minority island answered it", scan.Resp, healAt)
	}
	if duringCut == 0 {
		t.Fatal("no update completed inside the majority island while the partition was up")
	}
}

// TestRunSimAllAlgs: every supported object survives the default fault
// mix with its consistency condition intact.
func TestRunSimAllAlgs(t *testing.T) {
	for _, tc := range []struct {
		alg  string
		n, f int
	}{
		{"eqaso", 5, 2},
		{"byzaso", 7, 2},
		{"sso", 5, 2},
	} {
		t.Run(tc.alg, func(t *testing.T) {
			res, err := RunSim(Config{N: tc.n, F: tc.f, Engine: tc.alg, Seed: 5, Duration: 50 * rt.TicksPerD})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Check.OK {
				t.Fatalf("check failed: %v", res.Check.Violations)
			}
			if len(res.Hist.Ops) == 0 {
				t.Fatal("empty history")
			}
		})
	}
}

// TestRunTransportChan: the same schedule machinery drives the real
// channel transport; the verdict (not the exact history) must hold.
func TestRunTransportChan(t *testing.T) {
	res, err := RunTransport(Config{N: 5, F: 2, Seed: 3, Duration: 30 * rt.TicksPerD}, "chan")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Check.OK {
		t.Fatalf("check failed: %v", res.Check.Violations)
	}
	if len(res.Hist.Ops) == 0 {
		t.Fatal("empty history")
	}
}

// TestRunTransportTCP: a real TCP loopback cluster under the same faults.
func TestRunTransportTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp loopback cluster is slow in -short mode")
	}
	res, err := RunTransport(Config{N: 5, F: 2, Seed: 3, Duration: 30 * rt.TicksPerD}, "tcp")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Check.OK {
		t.Fatalf("check failed: %v", res.Check.Violations)
	}
}

// TestConfigValidation rejects the classic mistakes.
func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{N: 4, F: 2, Duration: 1000},                   // n ≤ 2f
		{N: 6, F: 2, Engine: "byzaso", Duration: 1000}, // n ≤ 3f
		{N: 5, F: 2, Engine: "paxos", Duration: 1000},  // unknown alg
		{N: 5, F: 2}, // no duration
	} {
		if _, err := RunSim(cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}
