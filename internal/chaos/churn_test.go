package chaos

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"mpsnap/internal/monitor"
	"mpsnap/internal/rt"
)

// TestChurnSimEngines runs churn on the simulator across the atomic
// engine matrix: the history must stay linearizable and the armed
// streaming monitor must agree (zero violations). Durable engines get the
// rolling-restart lane; the challengers run flap-only.
func TestChurnSimEngines(t *testing.T) {
	for _, eng := range []string{"eqaso", "acr", "fastsnap"} {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			res, err := RunSim(Config{N: 5, F: 2, Engine: eng, Seed: 11, Duration: 150 * rt.TicksPerD, Churn: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Check.OK {
				t.Fatalf("consistency: %v", res.Check.Violations)
			}
			if res.MonitorStats == nil {
				t.Fatal("churn must arm the monitor")
			}
			if len(res.MonitorViolations) != 0 {
				t.Fatalf("monitor: %v", res.MonitorViolations)
			}
			if res.MonitorStats.Scans == 0 || res.MonitorStats.Updates == 0 {
				t.Fatalf("monitor consumed nothing: %+v", res.MonitorStats)
			}
			durable := eng == "eqaso"
			if res.Schedule.HasRestarts() != durable {
				t.Fatalf("restart lane with %s: got %v, want %v", eng, res.Schedule.HasRestarts(), durable)
			}
		})
	}
}

// TestChurnSimDeterministic: the whole churn run — schedule, bursty
// workload, recorded history — replays byte-identically per seed, with
// the monitor attached.
func TestChurnSimDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := RunSim(Config{N: 5, F: 2, Seed: 5, Duration: 120 * rt.TicksPerD, Churn: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dump := func(r *Result) string {
		var buf bytes.Buffer
		if err := r.Hist.DumpJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if dump(a) != dump(b) {
		t.Fatal("churn sim runs with one seed must be byte-identical")
	}
	if a.MonitorStats.Scans != b.MonitorStats.Scans || a.MonitorStats.Violations != b.MonitorStats.Violations {
		t.Fatalf("monitor verdict differs across identical runs: %+v vs %+v", a.MonitorStats, b.MonitorStats)
	}
}

// TestChurnMonitorCatchesInjectedCorruption drives the falsifiability
// requirement end to end: a corrupted scan completion (blanked segment
// whose writer finished before the scan was invoked) must be flagged as a
// containment violation within the window, the first violation must dump
// the monitor transcript and the obs trace ring, and the report must turn
// failed — while the recorded history itself stays linearizable, proving
// the corruption never left the monitor's view.
func TestChurnMonitorCatchesInjectedCorruption(t *testing.T) {
	dir := t.TempDir()
	res, err := RunSim(Config{
		N: 5, F: 2, Seed: 11, Duration: 150 * rt.TicksPerD,
		Churn: true, TraceDir: dir, monitorCorrupt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Check.OK {
		t.Fatalf("recorded history must stay intact: %v", res.Check.Violations)
	}
	if len(res.MonitorViolations) == 0 {
		t.Fatal("monitor missed the injected corruption")
	}
	if res.MonitorStats.ByClass[monitor.ClassContainment] == 0 {
		t.Fatalf("want a containment violation, got %v", res.MonitorViolations)
	}
	if res.MonitorPath == "" {
		t.Fatal("first violation must dump the monitor transcript")
	}
	raw, err := os.ReadFile(res.MonitorPath)
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Violations []struct {
			Class string `json:"class"`
		} `json:"violations"`
		Transcript []json.RawMessage `json:"transcript"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("monitor dump does not parse: %v", err)
	}
	if len(d.Violations) == 0 || len(d.Transcript) == 0 {
		t.Fatalf("monitor dump missing violations (%d) or transcript (%d)", len(d.Violations), len(d.Transcript))
	}
	if res.MonitorTracePath == "" {
		t.Fatal("first violation must dump the obs trace ring")
	}
	if st, err := os.Stat(res.MonitorTracePath); err != nil || st.Size() == 0 {
		t.Fatalf("obs trace dump unusable: %v", err)
	}
	if rep := NewReport("sim", "eqaso", res); rep.OK {
		t.Fatal("a monitor violation must fail the report")
	}
}

// TestChurnConfigRules pins the churn-mode gates: no Service layer, no
// restart lane off the chan/sim backends, and the monitor usable on its
// own outside churn mode.
func TestChurnConfigRules(t *testing.T) {
	if _, err := RunSim(Config{N: 5, F: 2, Seed: 1, Duration: 10 * rt.TicksPerD, Churn: true, Service: true}); err == nil || !strings.Contains(err.Error(), "Service") {
		t.Fatalf("churn with Service must be rejected, got %v", err)
	}
	if _, err := RunTransport(Config{N: 3, F: 1, Seed: 1, Duration: 10 * rt.TicksPerD, Churn: true}, "tcp"); err == nil || !strings.Contains(err.Error(), "chan") {
		t.Fatalf("churn restarts on tcp must be rejected, got %v", err)
	}
	res, err := RunSim(Config{N: 3, F: 1, Seed: 2, Duration: 60 * rt.TicksPerD, Monitor: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MonitorStats == nil || len(res.MonitorViolations) != 0 {
		t.Fatalf("standalone monitor run: %+v %v", res.MonitorStats, res.MonitorViolations)
	}
}

// TestChurnChan runs churn — restart lane included — against the chan
// transport for a short wall-clock stretch.
func TestChurnChan(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock churn run")
	}
	res, err := RunTransport(Config{N: 5, F: 2, Seed: 6, Duration: TicksOf(1500 * time.Millisecond), Churn: true}, "chan")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Check.OK {
		t.Fatalf("consistency: %v", res.Check.Violations)
	}
	if res.MonitorStats == nil || len(res.MonitorViolations) != 0 {
		t.Fatalf("monitor: %+v %v", res.MonitorStats, res.MonitorViolations)
	}
}
