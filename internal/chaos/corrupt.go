package chaos

import (
	"encoding/binary"
	"math/rand"

	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/wire"
)

// corrupter realizes the schedule's wire-corruption windows on both
// backends: inside an active window it frames the victim message through
// internal/wire, mutates the frame bytes (a bit flip, a truncation, or an
// oversized length prefix), and decodes the result.
//
//   - Mutants that fail to decode are dropped: on a real deployment the
//     receiver closes the connection, so the message is lost — the same
//     failure envelope as a loss window, which the harness already
//     absorbs (completed operations must still check; stuck ones are
//     crash-aborted and recorded as pending).
//   - Mutants that still decode are delivered only when deliverMutants
//     is set (the Byzantine algorithm, whose checker budget covers ≤ f
//     misbehaving sources); for crash-only algorithms a decodable mutant
//     is Byzantine behaviour the model excludes, so it is dropped too.
//
// Both backends serialize calls (the sim on its scheduler goroutine, the
// Net under its mutex), so the corrupter does no locking of its own.
type corrupter struct {
	rng            *rand.Rand
	deliverMutants bool
	windows        map[[2]int]float64

	attempted int64 // messages hit by a window
	killed    int64 // mutants that failed to decode (dropped)
	mutated   int64 // decodable mutants delivered
}

func newCorrupter(seed int64, deliverMutants bool) *corrupter {
	return &corrupter{
		rng:            rand.New(rand.NewSource(seed)),
		deliverMutants: deliverMutants,
		windows:        make(map[[2]int]float64),
	}
}

var _ sim.WireFault = (*corrupter)(nil)

// OnWire implements sim.WireFault.
func (c *corrupter) OnWire(now rt.Ticks, src, dst int, msg rt.Message) (rt.Message, bool) {
	p := c.windows[[2]int{src, dst}]
	if p == 0 || c.rng.Float64() >= p {
		return nil, false
	}
	return c.corrupt(msg)
}

// corrupt mutates one message at the frame level and classifies the
// outcome. Messages of unregistered types cannot be framed; treat them
// as killed (they could never have crossed a real wire anyway).
func (c *corrupter) corrupt(msg rt.Message) (rt.Message, bool) {
	c.attempted++
	frame, err := wire.MarshalFrame(msg, 0)
	if err != nil {
		c.killed++
		return nil, true
	}
	switch c.rng.Intn(3) {
	case 0: // flip 1–4 bits anywhere in the frame
		for k := c.rng.Intn(4); k >= 0; k-- {
			i := c.rng.Intn(len(frame))
			frame[i] ^= 1 << uint(c.rng.Intn(8))
		}
	case 1: // truncate below the declared length
		frame = frame[:c.rng.Intn(len(frame))]
	case 2: // corrupt length prefix far beyond the cap
		binary.BigEndian.PutUint32(frame[1:], uint32(wire.DefaultMaxFrame+1+c.rng.Intn(1<<16)))
	}
	m, err := wire.UnmarshalFrame(frame, 0)
	if err != nil || !c.deliverMutants {
		c.killed++
		return nil, true
	}
	c.mutated++
	return m, false
}
