package chaos

import (
	"testing"

	"mpsnap/internal/rt"
)

// engineSeeds is the chaos matrix for the challenger engines: four seeds,
// each generating a distinct crash/partition/drop/spike schedule.
var engineSeeds = []int64{42, 1337, 90210, 4242}

// TestChallengerEnginesUnderChaosSim runs acr and fastsnap through the
// full default fault mix (crashes, partitions, drop and spike windows) on
// the deterministic sim backend across the seed matrix, checking
// linearizability (A1)-(A4) on every history. This is the satellite
// acceptance gate: the new engines must survive the same chaos diet as
// EQ-ASO.
func TestChallengerEnginesUnderChaosSim(t *testing.T) {
	for _, eng := range []string{"acr", "fastsnap"} {
		for _, seed := range engineSeeds {
			eng, seed := eng, seed
			t.Run(eng+"/seed="+itoa(seed), func(t *testing.T) {
				t.Parallel()
				res, err := RunSim(Config{
					N: 5, F: 2, Engine: eng, Seed: seed,
					Duration: 60 * rt.TicksPerD, Mix: DefaultMix(),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Check.OK {
					t.Fatalf("%s seed %d: not linearizable: %v", eng, seed, res.Check.Violations)
				}
				if len(res.Hist.Ops) == 0 {
					t.Fatalf("%s seed %d: no operations completed", eng, seed)
				}
			})
		}
	}
}

// TestChallengerEnginesUnderChaosChan exercises the same engines on the
// real-goroutine chan transport (run with -race in CI); a seed subset
// keeps the wall-clock cost down, and -short skips it entirely.
func TestChallengerEnginesUnderChaosChan(t *testing.T) {
	if testing.Short() {
		t.Skip("chan backend runs in wall-clock time")
	}
	for _, eng := range []string{"acr", "fastsnap"} {
		for _, seed := range engineSeeds[:2] {
			eng, seed := eng, seed
			t.Run(eng+"/seed="+itoa(seed), func(t *testing.T) {
				res, err := RunTransport(Config{
					N: 5, F: 2, Engine: eng, Seed: seed,
					Duration: 30 * rt.TicksPerD, Mix: DefaultMix(),
				}, "chan")
				if err != nil {
					t.Fatal(err)
				}
				if !res.Check.OK {
					t.Fatalf("%s seed %d: not linearizable: %v", eng, seed, res.Check.Violations)
				}
			})
		}
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
