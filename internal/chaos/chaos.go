package chaos

import (
	"fmt"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all" // register every snapshot engine
	"mpsnap/internal/history"
	"mpsnap/internal/monitor"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/wal"
)

// object is the client face of every snapshot object under test.
type object interface {
	Update(payload []byte) error
	Scan() ([][]byte, error)
}

// Config parameterizes one chaos run.
type Config struct {
	// N nodes with resilience bound F (n > 2f; n > 3f for Byzantine
	// engines).
	N, F int
	// Engine selects the snapshot engine by registry name ("eqaso",
	// "byzaso", "sso", "acr", "fastsnap", ...; default "eqaso").
	Engine string
	// Seed drives schedule generation, fault randomness, and the
	// workload. On the sim backend the entire run is a deterministic
	// function of the seed.
	Seed int64
	// Duration is the workload length in virtual ticks (rt.TicksPerD
	// ticks per D). Clients stop invoking new operations past it.
	Duration rt.Ticks
	// Mix is the fault mix; zero value means DefaultMix.
	Mix Mix
	// Churn switches the run to the churn schedule (GenerateChurn):
	// sustained rolling crash→restart cycles over the WAL recovery path
	// (durable engines; flap-only otherwise), single-node membership
	// flaps, lagging-node delay windows, and a bursty hot-segment /
	// scan-storm workload. Mix is ignored, and the streaming invariant
	// monitor is armed automatically. Not compatible with Service.
	Churn bool
	// ChurnMix tunes the churn schedule; zero fields take defaults.
	ChurnMix ChurnMix
	// Monitor arms the streaming invariant monitor (internal/monitor): it
	// consumes operations as they complete and checks validity, scan
	// containment, base comparability, frontier non-regression, prefix
	// closure, and per-client self-inclusion on a sliding window. On the
	// first violation it dumps its window transcript (and the obs trace,
	// when TraceDir is armed) for post-mortem. Implied by Churn.
	Monitor bool
	// MonitorWindow overrides the monitor's sliding window in ticks
	// (default monitor.DefaultWindow; negative means unbounded).
	MonitorWindow rt.Ticks
	// ScanRatio is the fraction of scans in the workload (default 0.5).
	ScanRatio float64
	// MaxSleep is the maximum client think time between operations, in
	// ticks (default 1.5·D).
	MaxSleep rt.Ticks
	// Service routes all client operations through the internal/svc
	// concurrent service layer (UPDATE coalescing + SCAN sharing)
	// instead of calling the object directly. Sim backend only.
	Service bool
	// Clients is the number of concurrent client threads per node
	// (default 1). Values above 1 require Service: the raw protocol
	// objects admit one operation at a time.
	Clients int
	// TraceDir, if non-empty, arms the observability trace (sim backend):
	// the run records operation lifecycles, protocol phases, and
	// fault-injection events into a ring buffer, and dumps them as JSONL
	// into this directory when the consistency check fails (always, with
	// TraceAlways). Result.TracePath names the dump. The dump is a
	// deterministic function of the seed, so a failing nightly run can be
	// replayed and diffed byte-for-byte.
	TraceDir string
	// TraceCap bounds the trace ring buffer (default 8192 events; oldest
	// events are evicted first).
	TraceCap int
	// TraceAlways dumps the trace even when the check passes.
	TraceAlways bool
	// forceCheckFail (test hook) overrides the checker verdict to
	// exercise the failure path: correct algorithms never fail the check,
	// so the dump-on-failure plumbing needs a forced failure to be
	// testable.
	forceCheckFail bool
	// monitorCorrupt (test hook) corrupts one scan completion on its way
	// to the monitor — blanks a segment whose writer completed an update
	// before the scan was invoked, a containment violation the monitor
	// must flag. The recorded history itself stays intact; only the
	// monitor's view lies, so the dump-on-violation plumbing is testable
	// against engines that never misbehave.
	monitorCorrupt bool

	// info is the resolved registry entry, filled by normalize.
	info engine.Info
}

func (cfg *Config) normalize() error {
	if cfg.Engine == "" {
		cfg.Engine = "eqaso"
	}
	in, err := engine.Lookup(cfg.Engine)
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	cfg.info = in
	if cfg.Mix == (Mix{}) {
		cfg.Mix = DefaultMix()
	}
	if cfg.ScanRatio == 0 {
		cfg.ScanRatio = 0.5
	}
	if cfg.MaxSleep == 0 {
		cfg.MaxSleep = 3 * rt.TicksPerD / 2
	}
	if cfg.Clients == 0 {
		cfg.Clients = 1
	}
	if cfg.Clients < 0 {
		return fmt.Errorf("chaos: Clients must be positive, got %d", cfg.Clients)
	}
	if cfg.Clients > 1 && !cfg.Service {
		return fmt.Errorf("chaos: Clients=%d needs Service (raw objects admit one operation at a time)", cfg.Clients)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("chaos: Duration must be positive")
	}
	if err := in.Validate(cfg.N, cfg.F); err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	if cfg.Mix.Restarts > 0 {
		if !in.Durable() {
			return fmt.Errorf("chaos: restarts need a WAL-capable engine (%s), not %q", durableNames(), cfg.Engine)
		}
		if cfg.Service {
			return fmt.Errorf("chaos: restarts drive direct clients; Service mode is not supported")
		}
	}
	if cfg.Churn {
		if cfg.Service {
			return fmt.Errorf("chaos: churn drives direct clients; Service mode is not supported")
		}
		cfg.Monitor = true
	}
	if cfg.monitorCorrupt && !cfg.Monitor {
		return fmt.Errorf("chaos: monitorCorrupt needs the monitor armed")
	}
	return nil
}

// schedule generates the run's fault schedule: churn when armed, the Mix
// schedule otherwise. Churn restarts ride the rolling-restart lane only
// when the engine can recover from a WAL; other engines get flap-only
// churn.
func (cfg *Config) schedule() Schedule {
	if cfg.Churn {
		return GenerateChurn(cfg.Seed, cfg.N, cfg.F, cfg.Duration, cfg.ChurnMix, cfg.info.Durable())
	}
	return Generate(cfg.Seed, cfg.N, cfg.F, cfg.Duration, cfg.Mix)
}

// durableNames lists the registered engines that can recover from a WAL.
func durableNames() string {
	out := ""
	for _, name := range engine.Names() {
		if engine.MustLookup(name).Durable() {
			if out != "" {
				out += " or "
			}
			out += name
		}
	}
	return out
}

// newNode constructs the engine node for one runtime.
func (cfg *Config) newNode(r rt.Runtime) (rt.Handler, object) {
	e := cfg.info.New(r)
	return e, e
}

// recoverNode rebuilds the engine node of a restarted process from its
// replayed WAL (GC stays enabled — recovery under pruning is the point).
// normalize already guaranteed the engine is durable, and durable engines
// rejoin after recovery.
func (cfg *Config) recoverNode(r rt.Runtime, st *wal.State, w *wal.Writer) (rt.Handler, object, engine.Rejoiner) {
	e := cfg.info.Recover(r, st, w, true)
	return e, e, e.(engine.Rejoiner)
}

// checker returns the consistency check for the engine: linearizability
// for the atomic objects, sequential consistency for the SSO family.
func (cfg *Config) checker() func(*history.History) *history.Report {
	if cfg.info.Sequential {
		return (*history.History).CheckSequentiallyConsistent
	}
	return (*history.History).CheckLinearizable
}

// Result is the outcome of one chaos run.
type Result struct {
	// Schedule is the fault schedule that was injected.
	Schedule Schedule
	// Hist is the recorded operation history (pending operations mark
	// crashed or force-aborted clients).
	Hist *history.History
	// Check is the consistency verdict: linearizability for the atomic
	// engines, sequential consistency for the SSO family.
	Check *history.Report
	// Blocked lists operations that were still stuck at the end of the
	// run (their nodes were crash-aborted so the run could terminate);
	// each entry names the node and the blocked wait predicate.
	Blocked []string
	// Stats holds simulator counters (sim backend only).
	Stats *sim.Stats
	// NetDrops / NetHeld count messages dropped and parked by the
	// transport fault injector (transport backends only).
	NetDrops, NetHeld int64
	// NetCorrupt counts messages hit by a wire-corruption window
	// (transport backends only; the sim counts these in Stats).
	NetCorrupt int64
	// TracePath is the JSONL trace dump written for this run ("" when
	// tracing was off or the run passed without TraceAlways).
	TracePath string
	// TraceDropped counts trace events evicted by ring wraparound (the
	// dump holds the most recent TraceCap events).
	TraceDropped uint64
	// MonitorStats summarizes the streaming invariant monitor (nil when
	// the monitor was off); MonitorViolations lists its findings.
	MonitorStats      *monitor.Stats
	MonitorViolations []string
	// MonitorPath / MonitorTracePath name the first-violation dumps: the
	// monitor's window transcript JSON and the obs trace ring captured at
	// the moment of the violation ("" when no violation or no TraceDir).
	MonitorPath      string
	MonitorTracePath string
}

// graceTicks is how long past the workload deadline an in-flight
// operation may take before it is considered stuck: generous against the
// worst measured op latencies (≤ ~10D) plus spike delays.
const graceTicks = 30 * rt.TicksPerD
