// Package chaos is a randomized fault-schedule harness for the snapshot
// objects: it drives concurrent UPDATE/SCAN clients against EQ-ASO,
// Byz-ASO, or SSO while injecting a seeded schedule of node crashes
// (including mid-broadcast), transient network partitions with heal, and
// per-link message-loss / delay-spike windows, then records every
// operation with internal/history and checks the resulting history
// against the appropriate consistency condition.
//
// The same Schedule runs on two backends: the deterministic virtual-time
// simulator (internal/sim — byte-identical histories per seed) and the
// real transports (internal/transport — ChanNet or a TCP loopback
// cluster), where one D of virtual time maps to DReal of wall clock.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"mpsnap/internal/rt"
)

// Mix sets how many faults of each kind a schedule contains.
type Mix struct {
	// Crashes is the number of crash events; clamped to F at generation
	// (every other crash strikes mid-broadcast, truncating the victim's
	// last broadcast to a prefix of the destinations — the paper's
	// failure-chain mechanism).
	Crashes int `json:"crashes"`
	// Partitions is the number of partition→heal episodes. Each episode
	// isolates a random island of at most F nodes (so a quorum survives
	// on the majority side) and always heals before the run ends.
	Partitions int `json:"partitions"`
	// DropWindows is the number of per-link message-loss windows.
	DropWindows int `json:"dropWindows"`
	// DropProb is the loss probability inside a drop window (default
	// 0.25). Loss violates the reliable-channel model: completed
	// operations must still linearize, but stuck ones are crashed at the
	// end of the run and recorded as pending.
	DropProb float64 `json:"dropProb"`
	// SpikeWindows is the number of per-link delay-spike windows.
	SpikeWindows int `json:"spikeWindows"`
	// SpikeExtraD is the extra per-message delay inside a spike window,
	// in units of D (default 3).
	SpikeExtraD float64 `json:"spikeExtraD"`
	// CorruptWindows is the number of per-link wire-corruption windows:
	// inside a window, each message on the link is (with CorruptProb)
	// framed through internal/wire and mutated — a flipped bit, a
	// truncation, or an oversized length prefix. Mutants that no longer
	// decode are dropped (the receiver would close the connection);
	// mutants that still decode are delivered only to the Byzantine
	// algorithm, from sources drawn from the ≤ f fault budget (crash
	// victims first). Requires f > 0; ignored otherwise.
	CorruptWindows int `json:"corruptWindows,omitempty"`
	// CorruptProb is the per-message corruption probability inside a
	// corrupt window (default 0.2).
	CorruptProb float64 `json:"corruptProb,omitempty"`
	// Restarts is how many crash victims later recover: each replays its
	// write-ahead log, rejoins via the checkpoint-delta path, and resumes
	// the workload as a fresh client. Clamped to the number of crashes.
	// Requires a WAL-capable algorithm (eqaso or sso) without the Service
	// layer; rejected otherwise.
	Restarts int `json:"restarts,omitempty"`
	// RestartDelayD is the crash-to-recovery delay in units of D (default
	// 5, minimum 3 so the mid-broadcast fallback crash at +2D always
	// precedes the restart).
	RestartDelayD float64 `json:"restartDelayD,omitempty"`
}

// DefaultMix is the standard chaotic diet: one crash, two partition
// episodes, two loss windows, two delay spikes.
func DefaultMix() Mix {
	return Mix{Crashes: 1, Partitions: 2, DropWindows: 2, DropProb: 0.25, SpikeWindows: 2, SpikeExtraD: 3}
}

// EventKind names a fault event.
type EventKind string

// Fault event kinds.
const (
	EvCrash      EventKind = "crash"
	EvPartition  EventKind = "partition"
	EvHeal       EventKind = "heal"
	EvDropOn     EventKind = "drop-on"
	EvDropOff    EventKind = "drop-off"
	EvSpikeOn    EventKind = "spike-on"
	EvSpikeOff   EventKind = "spike-off"
	EvCorruptOn  EventKind = "corrupt-on"
	EvCorruptOff EventKind = "corrupt-off"
	EvRestart    EventKind = "restart"
)

// Event is one fault injection at virtual time At.
type Event struct {
	At   rt.Ticks  `json:"at"`
	Kind EventKind `json:"kind"`
	// Node is the crash victim; Mid selects a mid-broadcast crash.
	Node int  `json:"node,omitempty"`
	Mid  bool `json:"mid,omitempty"`
	// Groups are the partition islands (nodes in no group form one
	// implicit extra island).
	Groups [][]int `json:"groups,omitempty"`
	// Src/Dst identify the link of a drop or spike window.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// Prob is the loss probability of a drop window.
	Prob float64 `json:"prob,omitempty"`
	// Extra is the added delay of a spike window, in ticks.
	Extra rt.Ticks `json:"extra,omitempty"`
}

func (e Event) String() string {
	switch e.Kind {
	case EvCrash:
		mid := ""
		if e.Mid {
			mid = " (mid-broadcast)"
		}
		return fmt.Sprintf("t=%-8d crash node %d%s", e.At, e.Node, mid)
	case EvPartition:
		return fmt.Sprintf("t=%-8d partition islands=%v", e.At, e.Groups)
	case EvHeal:
		return fmt.Sprintf("t=%-8d heal", e.At)
	case EvDropOn:
		return fmt.Sprintf("t=%-8d drop-on  %d->%d p=%.2f", e.At, e.Src, e.Dst, e.Prob)
	case EvDropOff:
		return fmt.Sprintf("t=%-8d drop-off %d->%d", e.At, e.Src, e.Dst)
	case EvSpikeOn:
		return fmt.Sprintf("t=%-8d spike-on  %d->%d extra=%d", e.At, e.Src, e.Dst, e.Extra)
	case EvSpikeOff:
		return fmt.Sprintf("t=%-8d spike-off %d->%d", e.At, e.Src, e.Dst)
	case EvCorruptOn:
		return fmt.Sprintf("t=%-8d corrupt-on  %d->%d p=%.2f", e.At, e.Src, e.Dst, e.Prob)
	case EvCorruptOff:
		return fmt.Sprintf("t=%-8d corrupt-off %d->%d", e.At, e.Src, e.Dst)
	case EvRestart:
		return fmt.Sprintf("t=%-8d restart node %d", e.At, e.Node)
	}
	return fmt.Sprintf("t=%-8d %s", e.At, e.Kind)
}

// Schedule is a deterministic fault schedule: the same (seed, n, f,
// duration, mix) always generates the same event list, on every backend.
type Schedule struct {
	Seed     int64    `json:"seed"`
	N        int      `json:"n"`
	F        int      `json:"f"`
	Duration rt.Ticks `json:"duration"`
	Mix      Mix      `json:"mix"`
	// Churn is set on schedules produced by GenerateChurn (Mix is then
	// zero); it participates in Hash, so churn and plain schedules with
	// the same seed never collide.
	Churn  *ChurnMix `json:"churn,omitempty"`
	Events []Event   `json:"events"`
}

// HasRestarts reports whether the schedule contains any restart event —
// the runners use it to decide whether nodes need WAL files attached.
func (s Schedule) HasRestarts() bool {
	for _, e := range s.Events {
		if e.Kind == EvRestart {
			return true
		}
	}
	return false
}

// Generate derives the fault schedule from the seed. All randomness comes
// from one private RNG consumed in a fixed order, so schedules reproduce
// exactly; events are sorted by time (generation order breaks ties).
func Generate(seed int64, n, f int, duration rt.Ticks, mix Mix) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if mix.DropProb == 0 {
		mix.DropProb = 0.25
	}
	if mix.SpikeExtraD == 0 {
		mix.SpikeExtraD = 3
	}
	var evs []Event

	// Crashes: distinct victims, times in the middle [0.15, 0.8) of the
	// run so operations exist both before and after.
	crashes := mix.Crashes
	if crashes > f {
		crashes = f
	}
	var victims []int
	if crashes > 0 {
		victims = rng.Perm(n)[:crashes]
		for i, v := range victims {
			at := duration * rt.Ticks(15+rng.Intn(65)) / 100
			evs = append(evs, Event{At: at, Kind: EvCrash, Node: v, Mid: i%2 == 1})
		}
	}

	// Partition episodes: serialized into disjoint slots of [0.1, 0.9) of
	// the run, each isolating an island small enough that the majority
	// side keeps an n-f quorum, and each healing within its slot.
	if mix.Partitions > 0 && n > 1 {
		maxIsland := f
		if maxIsland < 1 {
			maxIsland = 1
		}
		if maxIsland > n-1 {
			maxIsland = n - 1
		}
		span := duration * 8 / 10
		slot := span / rt.Ticks(mix.Partitions)
		for i := 0; i < mix.Partitions; i++ {
			base := duration/10 + rt.Ticks(i)*slot
			start := base + rt.Ticks(rng.Int63n(int64(slot/4)+1))
			heal := start + slot/2
			m := 1 + rng.Intn(maxIsland)
			island := append([]int(nil), rng.Perm(n)[:m]...)
			sort.Ints(island)
			evs = append(evs,
				Event{At: start, Kind: EvPartition, Groups: [][]int{island}},
				Event{At: heal, Kind: EvHeal})
		}
	}

	// Per-link drop and spike windows, anywhere in [0.1, 0.85) of the run.
	window := func() (rt.Ticks, rt.Ticks) {
		start := duration/10 + rt.Ticks(rng.Int63n(int64(duration*6/10)+1))
		length := duration/20 + rt.Ticks(rng.Int63n(int64(duration/10)+1))
		return start, start + length
	}
	link := func() (int, int) {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}
	for i := 0; i < mix.DropWindows && n > 1; i++ {
		start, end := window()
		src, dst := link()
		evs = append(evs,
			Event{At: start, Kind: EvDropOn, Src: src, Dst: dst, Prob: mix.DropProb},
			Event{At: end, Kind: EvDropOff, Src: src, Dst: dst})
	}
	extra := rt.Ticks(mix.SpikeExtraD * float64(rt.TicksPerD))
	for i := 0; i < mix.SpikeWindows && n > 1; i++ {
		start, end := window()
		src, dst := link()
		evs = append(evs,
			Event{At: start, Kind: EvSpikeOn, Src: src, Dst: dst, Extra: extra},
			Event{At: end, Kind: EvSpikeOff, Src: src, Dst: dst})
	}

	// Wire-corruption windows. Generated last so enabling them never
	// perturbs the RNG draws of the fault kinds above — a seed's crash,
	// partition, drop, and spike events stay identical with or without
	// corruption. Corrupt sources come from a fixed budget of at most f
	// nodes (crash victims first, then fresh picks), so a mutant that
	// still decodes attributes all Byzantine behaviour to ≤ f nodes.
	if mix.CorruptWindows > 0 && n > 1 && f > 0 {
		if mix.CorruptProb == 0 {
			mix.CorruptProb = 0.2
		}
		srcs := append([]int(nil), victims...)
		for _, cand := range rng.Perm(n) {
			if len(srcs) >= f {
				break
			}
			taken := false
			for _, s := range srcs {
				if s == cand {
					taken = true
					break
				}
			}
			if !taken {
				srcs = append(srcs, cand)
			}
		}
		for i := 0; i < mix.CorruptWindows; i++ {
			start, end := window()
			src := srcs[rng.Intn(len(srcs))]
			dst := rng.Intn(n - 1)
			if dst >= src {
				dst++
			}
			evs = append(evs,
				Event{At: start, Kind: EvCorruptOn, Src: src, Dst: dst, Prob: mix.CorruptProb},
				Event{At: end, Kind: EvCorruptOff, Src: src, Dst: dst})
		}
	}

	// Restarts. Generated last (like corruption) so enabling them never
	// perturbs the RNG draws of any fault kind above: a seed's crash,
	// partition, drop, spike, and corrupt events are identical with or
	// without recovery. The first Restarts crash victims come back a
	// randomized delay after their crash — at least 3D, so the
	// mid-broadcast fallback crash (armed victim + 2D) has always fired
	// by the time the node restarts.
	if mix.Restarts > 0 && len(victims) > 0 {
		delayD := mix.RestartDelayD
		if delayD == 0 {
			delayD = 5
		}
		if delayD < 3 {
			delayD = 3
		}
		k := mix.Restarts
		if k > len(victims) {
			k = len(victims)
		}
		for i := 0; i < k; i++ {
			v := victims[i]
			var crashAt rt.Ticks
			for _, e := range evs {
				if e.Kind == EvCrash && e.Node == v {
					crashAt = e.At
				}
			}
			delay := rt.Ticks(delayD*float64(rt.TicksPerD)) + rt.Ticks(rng.Int63n(int64(rt.TicksPerD)))
			evs = append(evs, Event{At: crashAt + delay, Kind: EvRestart, Node: v})
		}
	}

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return Schedule{Seed: seed, N: n, F: f, Duration: duration, Mix: mix, Events: evs}
}

// ChurnMix parameterizes the churn schedule: sustained lanes of rolling
// crash→restart cycles, single-node membership flaps, and lagging-node
// delay windows running for the whole duration, instead of the handful of
// one-shot faults of Mix. Zero fields take defaults. All durations are in
// units of D.
type ChurnMix struct {
	// RestartPeriodD is the target gap between crash starts of the rolling
	// restart lane (default 40).
	RestartPeriodD float64 `json:"restartPeriodD,omitempty"`
	// RestartDownD is each cycle's downtime (default 8, minimum 3 so the
	// mid-broadcast fallback crash at +2D always precedes the restart).
	RestartDownD float64 `json:"restartDownD,omitempty"`
	// FlapPeriodD is the target gap between membership flaps (default 25).
	FlapPeriodD float64 `json:"flapPeriodD,omitempty"`
	// FlapDownD is how long a flapped node stays isolated (default 6).
	FlapDownD float64 `json:"flapDownD,omitempty"`
	// SlowNodes is how many lagging-node lanes run (default 1).
	SlowNodes int `json:"slowNodes,omitempty"`
	// SlowExtraD is the added delay on a lagging node's links (default 2).
	SlowExtraD float64 `json:"slowExtraD,omitempty"`
	// SlowPeriodD is the gap between lag windows (default 15).
	SlowPeriodD float64 `json:"slowPeriodD,omitempty"`
	// SlowOnD is each lag window's length (default 5). Keep it short: the
	// transport fault injector parks spiked messages until the window ends.
	SlowOnD float64 `json:"slowOnD,omitempty"`
}

// withDefaults fills zero fields and enforces the floor on downtime.
func (cm ChurnMix) withDefaults() ChurnMix {
	if cm.RestartPeriodD == 0 {
		cm.RestartPeriodD = 40
	}
	if cm.RestartDownD == 0 {
		cm.RestartDownD = 8
	}
	if cm.RestartDownD < 3 {
		cm.RestartDownD = 3
	}
	if cm.FlapPeriodD == 0 {
		cm.FlapPeriodD = 25
	}
	if cm.FlapDownD == 0 {
		cm.FlapDownD = 6
	}
	if cm.SlowNodes == 0 {
		cm.SlowNodes = 1
	}
	if cm.SlowExtraD == 0 {
		cm.SlowExtraD = 2
	}
	if cm.SlowPeriodD == 0 {
		cm.SlowPeriodD = 15
	}
	if cm.SlowOnD == 0 {
		cm.SlowOnD = 5
	}
	return cm
}

// GenerateChurn derives a churn schedule from the seed: round-robin
// crash→restart cycles (when restarts is set — the engine can recover
// from its WAL), single-node partition flaps, and periodic delay windows
// that make one node lag. Like Generate it is a pure function of its
// arguments, and it honors the fault budget at every instant: the number
// of nodes crashed or isolated never exceeds f. With f == 1 the restart
// and flap lanes are serialized into one alternating lane; with f ≥ 2
// they run concurrently (each lane impairs at most one node at a time).
// All faults land in [5D, 0.9·duration), leaving a clean tail to drain.
func GenerateChurn(seed int64, n, f int, duration rt.Ticks, cm ChurnMix, restarts bool) Schedule {
	cm = cm.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	ticksD := func(d float64) rt.Ticks { return rt.Ticks(d * float64(rt.TicksPerD)) }
	jit := func(maxD float64) rt.Ticks {
		t := int64(ticksD(maxD))
		if t <= 0 {
			return 0
		}
		return rt.Ticks(rng.Int63n(t + 1))
	}
	warmup := ticksD(5)
	end := duration * 9 / 10
	var evs []Event

	// downSpan records one charged unit of the fault budget: node is
	// crashed or isolated throughout [from, to).
	type downSpan struct {
		node     int
		from, to rt.Ticks
	}
	var downs []downSpan

	restartLane := restarts && f >= 1 && n >= 2
	flapLane := f >= 1 && n >= 2

	crashCycle := func(v int, t, down rt.Ticks, mid bool) {
		evs = append(evs,
			Event{At: t, Kind: EvCrash, Node: v, Mid: mid},
			Event{At: t + down, Kind: EvRestart, Node: v})
		downs = append(downs, downSpan{node: v, from: t, to: t + down})
	}
	flapCycle := func(v int, t, down rt.Ticks) {
		evs = append(evs,
			Event{At: t, Kind: EvPartition, Groups: [][]int{{v}}},
			Event{At: t + down, Kind: EvHeal})
		downs = append(downs, downSpan{node: v, from: t, to: t + down})
	}

	switch {
	case restartLane && f == 1:
		// One unit of fault budget: a restart cycle and a flap may never
		// overlap, so a single serialized lane alternates them.
		rv, fv := rng.Intn(n), rng.Intn(n)
		t := warmup + jit(cm.RestartPeriodD/4)
		for i := 0; ; i++ {
			if i%2 == 0 {
				down := ticksD(cm.RestartDownD) + jit(1)
				if t+down >= end {
					break
				}
				crashCycle(rv, t, down, (i/2)%2 == 1)
				rv = (rv + 1) % n
				t += down + ticksD(cm.RestartPeriodD/2) + jit(cm.RestartPeriodD/4)
			} else {
				down := ticksD(cm.FlapDownD) + jit(1)
				if t+down >= end {
					break
				}
				flapCycle(fv, t, down)
				fv = (fv + 1) % n
				t += down + ticksD(cm.FlapPeriodD/2) + jit(cm.FlapPeriodD/4)
			}
		}
	default:
		// Independent lanes, each internally serialized (the next cycle
		// starts only after the previous downtime ends), so each lane
		// charges at most one budget unit at any instant.
		if restartLane {
			v := rng.Intn(n)
			t := warmup + jit(cm.RestartPeriodD/4)
			for i := 0; ; i++ {
				down := ticksD(cm.RestartDownD) + jit(1)
				if t+down >= end {
					break
				}
				crashCycle(v, t, down, i%2 == 1)
				v = (v + 1) % n
				gap := ticksD(cm.RestartPeriodD) - down
				if gap < ticksD(2) {
					gap = ticksD(2)
				}
				t += down + gap + jit(cm.RestartPeriodD/4)
			}
		}
		// With f == 1 and no restart lane, flapping is the only lane and
		// may run alone; with f ≥ 2 it runs concurrently with restarts.
		if flapLane && (f >= 2 || !restartLane) {
			v := rng.Intn(n)
			t := warmup + ticksD(cm.FlapPeriodD/3) + jit(cm.FlapPeriodD/4)
			for {
				down := ticksD(cm.FlapDownD) + jit(1)
				if t+down >= end {
					break
				}
				// Flap the next node whose restart-lane downtime does not
				// overlap this window, so the two charged units never land
				// on the same node (keeps every flap observable).
				pick := -1
				for k := 0; k < n; k++ {
					cand := (v + k) % n
					busy := false
					for _, d := range downs {
						if d.node == cand && d.from < t+down && t < d.to {
							busy = true
							break
						}
					}
					if !busy {
						pick = cand
						break
					}
				}
				if pick >= 0 {
					flapCycle(pick, t, down)
					v = (pick + 1) % n
				}
				gap := ticksD(cm.FlapPeriodD) - down
				if gap < ticksD(2) {
					gap = ticksD(2)
				}
				t += down + gap + jit(cm.FlapPeriodD/4)
			}
		}
	}

	// Lagging-node lanes: periodic windows where one node's links (both
	// directions) carry extra delay. Delay charges no fault budget. The
	// lagging node rotates window to window.
	if cm.SlowNodes > 0 && cm.SlowExtraD > 0 && n > 1 {
		extra := ticksD(cm.SlowExtraD)
		for s := 0; s < cm.SlowNodes; s++ {
			v := rng.Intn(n)
			t := warmup + jit(cm.SlowPeriodD)
			for {
				on := ticksD(cm.SlowOnD) + jit(1)
				if t+on >= end {
					break
				}
				for j := 0; j < n; j++ {
					if j == v {
						continue
					}
					evs = append(evs,
						Event{At: t, Kind: EvSpikeOn, Src: v, Dst: j, Extra: extra},
						Event{At: t + on, Kind: EvSpikeOff, Src: v, Dst: j},
						Event{At: t, Kind: EvSpikeOn, Src: j, Dst: v, Extra: extra},
						Event{At: t + on, Kind: EvSpikeOff, Src: j, Dst: v})
				}
				v = (v + 1) % n
				t += on + ticksD(cm.SlowPeriodD) + jit(cm.SlowPeriodD/2)
			}
		}
	}

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return Schedule{Seed: seed, N: n, F: f, Duration: duration, Churn: &cm, Events: evs}
}
