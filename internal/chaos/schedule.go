// Package chaos is a randomized fault-schedule harness for the snapshot
// objects: it drives concurrent UPDATE/SCAN clients against EQ-ASO,
// Byz-ASO, or SSO while injecting a seeded schedule of node crashes
// (including mid-broadcast), transient network partitions with heal, and
// per-link message-loss / delay-spike windows, then records every
// operation with internal/history and checks the resulting history
// against the appropriate consistency condition.
//
// The same Schedule runs on two backends: the deterministic virtual-time
// simulator (internal/sim — byte-identical histories per seed) and the
// real transports (internal/transport — ChanNet or a TCP loopback
// cluster), where one D of virtual time maps to DReal of wall clock.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"mpsnap/internal/rt"
)

// Mix sets how many faults of each kind a schedule contains.
type Mix struct {
	// Crashes is the number of crash events; clamped to F at generation
	// (every other crash strikes mid-broadcast, truncating the victim's
	// last broadcast to a prefix of the destinations — the paper's
	// failure-chain mechanism).
	Crashes int `json:"crashes"`
	// Partitions is the number of partition→heal episodes. Each episode
	// isolates a random island of at most F nodes (so a quorum survives
	// on the majority side) and always heals before the run ends.
	Partitions int `json:"partitions"`
	// DropWindows is the number of per-link message-loss windows.
	DropWindows int `json:"dropWindows"`
	// DropProb is the loss probability inside a drop window (default
	// 0.25). Loss violates the reliable-channel model: completed
	// operations must still linearize, but stuck ones are crashed at the
	// end of the run and recorded as pending.
	DropProb float64 `json:"dropProb"`
	// SpikeWindows is the number of per-link delay-spike windows.
	SpikeWindows int `json:"spikeWindows"`
	// SpikeExtraD is the extra per-message delay inside a spike window,
	// in units of D (default 3).
	SpikeExtraD float64 `json:"spikeExtraD"`
	// CorruptWindows is the number of per-link wire-corruption windows:
	// inside a window, each message on the link is (with CorruptProb)
	// framed through internal/wire and mutated — a flipped bit, a
	// truncation, or an oversized length prefix. Mutants that no longer
	// decode are dropped (the receiver would close the connection);
	// mutants that still decode are delivered only to the Byzantine
	// algorithm, from sources drawn from the ≤ f fault budget (crash
	// victims first). Requires f > 0; ignored otherwise.
	CorruptWindows int `json:"corruptWindows,omitempty"`
	// CorruptProb is the per-message corruption probability inside a
	// corrupt window (default 0.2).
	CorruptProb float64 `json:"corruptProb,omitempty"`
	// Restarts is how many crash victims later recover: each replays its
	// write-ahead log, rejoins via the checkpoint-delta path, and resumes
	// the workload as a fresh client. Clamped to the number of crashes.
	// Requires a WAL-capable algorithm (eqaso or sso) without the Service
	// layer; rejected otherwise.
	Restarts int `json:"restarts,omitempty"`
	// RestartDelayD is the crash-to-recovery delay in units of D (default
	// 5, minimum 3 so the mid-broadcast fallback crash at +2D always
	// precedes the restart).
	RestartDelayD float64 `json:"restartDelayD,omitempty"`
}

// DefaultMix is the standard chaotic diet: one crash, two partition
// episodes, two loss windows, two delay spikes.
func DefaultMix() Mix {
	return Mix{Crashes: 1, Partitions: 2, DropWindows: 2, DropProb: 0.25, SpikeWindows: 2, SpikeExtraD: 3}
}

// EventKind names a fault event.
type EventKind string

// Fault event kinds.
const (
	EvCrash      EventKind = "crash"
	EvPartition  EventKind = "partition"
	EvHeal       EventKind = "heal"
	EvDropOn     EventKind = "drop-on"
	EvDropOff    EventKind = "drop-off"
	EvSpikeOn    EventKind = "spike-on"
	EvSpikeOff   EventKind = "spike-off"
	EvCorruptOn  EventKind = "corrupt-on"
	EvCorruptOff EventKind = "corrupt-off"
	EvRestart    EventKind = "restart"
)

// Event is one fault injection at virtual time At.
type Event struct {
	At   rt.Ticks  `json:"at"`
	Kind EventKind `json:"kind"`
	// Node is the crash victim; Mid selects a mid-broadcast crash.
	Node int  `json:"node,omitempty"`
	Mid  bool `json:"mid,omitempty"`
	// Groups are the partition islands (nodes in no group form one
	// implicit extra island).
	Groups [][]int `json:"groups,omitempty"`
	// Src/Dst identify the link of a drop or spike window.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
	// Prob is the loss probability of a drop window.
	Prob float64 `json:"prob,omitempty"`
	// Extra is the added delay of a spike window, in ticks.
	Extra rt.Ticks `json:"extra,omitempty"`
}

func (e Event) String() string {
	switch e.Kind {
	case EvCrash:
		mid := ""
		if e.Mid {
			mid = " (mid-broadcast)"
		}
		return fmt.Sprintf("t=%-8d crash node %d%s", e.At, e.Node, mid)
	case EvPartition:
		return fmt.Sprintf("t=%-8d partition islands=%v", e.At, e.Groups)
	case EvHeal:
		return fmt.Sprintf("t=%-8d heal", e.At)
	case EvDropOn:
		return fmt.Sprintf("t=%-8d drop-on  %d->%d p=%.2f", e.At, e.Src, e.Dst, e.Prob)
	case EvDropOff:
		return fmt.Sprintf("t=%-8d drop-off %d->%d", e.At, e.Src, e.Dst)
	case EvSpikeOn:
		return fmt.Sprintf("t=%-8d spike-on  %d->%d extra=%d", e.At, e.Src, e.Dst, e.Extra)
	case EvSpikeOff:
		return fmt.Sprintf("t=%-8d spike-off %d->%d", e.At, e.Src, e.Dst)
	case EvCorruptOn:
		return fmt.Sprintf("t=%-8d corrupt-on  %d->%d p=%.2f", e.At, e.Src, e.Dst, e.Prob)
	case EvCorruptOff:
		return fmt.Sprintf("t=%-8d corrupt-off %d->%d", e.At, e.Src, e.Dst)
	case EvRestart:
		return fmt.Sprintf("t=%-8d restart node %d", e.At, e.Node)
	}
	return fmt.Sprintf("t=%-8d %s", e.At, e.Kind)
}

// Schedule is a deterministic fault schedule: the same (seed, n, f,
// duration, mix) always generates the same event list, on every backend.
type Schedule struct {
	Seed     int64    `json:"seed"`
	N        int      `json:"n"`
	F        int      `json:"f"`
	Duration rt.Ticks `json:"duration"`
	Mix      Mix      `json:"mix"`
	Events   []Event  `json:"events"`
}

// Generate derives the fault schedule from the seed. All randomness comes
// from one private RNG consumed in a fixed order, so schedules reproduce
// exactly; events are sorted by time (generation order breaks ties).
func Generate(seed int64, n, f int, duration rt.Ticks, mix Mix) Schedule {
	rng := rand.New(rand.NewSource(seed))
	if mix.DropProb == 0 {
		mix.DropProb = 0.25
	}
	if mix.SpikeExtraD == 0 {
		mix.SpikeExtraD = 3
	}
	var evs []Event

	// Crashes: distinct victims, times in the middle [0.15, 0.8) of the
	// run so operations exist both before and after.
	crashes := mix.Crashes
	if crashes > f {
		crashes = f
	}
	var victims []int
	if crashes > 0 {
		victims = rng.Perm(n)[:crashes]
		for i, v := range victims {
			at := duration * rt.Ticks(15+rng.Intn(65)) / 100
			evs = append(evs, Event{At: at, Kind: EvCrash, Node: v, Mid: i%2 == 1})
		}
	}

	// Partition episodes: serialized into disjoint slots of [0.1, 0.9) of
	// the run, each isolating an island small enough that the majority
	// side keeps an n-f quorum, and each healing within its slot.
	if mix.Partitions > 0 && n > 1 {
		maxIsland := f
		if maxIsland < 1 {
			maxIsland = 1
		}
		if maxIsland > n-1 {
			maxIsland = n - 1
		}
		span := duration * 8 / 10
		slot := span / rt.Ticks(mix.Partitions)
		for i := 0; i < mix.Partitions; i++ {
			base := duration/10 + rt.Ticks(i)*slot
			start := base + rt.Ticks(rng.Int63n(int64(slot/4)+1))
			heal := start + slot/2
			m := 1 + rng.Intn(maxIsland)
			island := append([]int(nil), rng.Perm(n)[:m]...)
			sort.Ints(island)
			evs = append(evs,
				Event{At: start, Kind: EvPartition, Groups: [][]int{island}},
				Event{At: heal, Kind: EvHeal})
		}
	}

	// Per-link drop and spike windows, anywhere in [0.1, 0.85) of the run.
	window := func() (rt.Ticks, rt.Ticks) {
		start := duration/10 + rt.Ticks(rng.Int63n(int64(duration*6/10)+1))
		length := duration/20 + rt.Ticks(rng.Int63n(int64(duration/10)+1))
		return start, start + length
	}
	link := func() (int, int) {
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		return src, dst
	}
	for i := 0; i < mix.DropWindows && n > 1; i++ {
		start, end := window()
		src, dst := link()
		evs = append(evs,
			Event{At: start, Kind: EvDropOn, Src: src, Dst: dst, Prob: mix.DropProb},
			Event{At: end, Kind: EvDropOff, Src: src, Dst: dst})
	}
	extra := rt.Ticks(mix.SpikeExtraD * float64(rt.TicksPerD))
	for i := 0; i < mix.SpikeWindows && n > 1; i++ {
		start, end := window()
		src, dst := link()
		evs = append(evs,
			Event{At: start, Kind: EvSpikeOn, Src: src, Dst: dst, Extra: extra},
			Event{At: end, Kind: EvSpikeOff, Src: src, Dst: dst})
	}

	// Wire-corruption windows. Generated last so enabling them never
	// perturbs the RNG draws of the fault kinds above — a seed's crash,
	// partition, drop, and spike events stay identical with or without
	// corruption. Corrupt sources come from a fixed budget of at most f
	// nodes (crash victims first, then fresh picks), so a mutant that
	// still decodes attributes all Byzantine behaviour to ≤ f nodes.
	if mix.CorruptWindows > 0 && n > 1 && f > 0 {
		if mix.CorruptProb == 0 {
			mix.CorruptProb = 0.2
		}
		srcs := append([]int(nil), victims...)
		for _, cand := range rng.Perm(n) {
			if len(srcs) >= f {
				break
			}
			taken := false
			for _, s := range srcs {
				if s == cand {
					taken = true
					break
				}
			}
			if !taken {
				srcs = append(srcs, cand)
			}
		}
		for i := 0; i < mix.CorruptWindows; i++ {
			start, end := window()
			src := srcs[rng.Intn(len(srcs))]
			dst := rng.Intn(n - 1)
			if dst >= src {
				dst++
			}
			evs = append(evs,
				Event{At: start, Kind: EvCorruptOn, Src: src, Dst: dst, Prob: mix.CorruptProb},
				Event{At: end, Kind: EvCorruptOff, Src: src, Dst: dst})
		}
	}

	// Restarts. Generated last (like corruption) so enabling them never
	// perturbs the RNG draws of any fault kind above: a seed's crash,
	// partition, drop, spike, and corrupt events are identical with or
	// without recovery. The first Restarts crash victims come back a
	// randomized delay after their crash — at least 3D, so the
	// mid-broadcast fallback crash (armed victim + 2D) has always fired
	// by the time the node restarts.
	if mix.Restarts > 0 && len(victims) > 0 {
		delayD := mix.RestartDelayD
		if delayD == 0 {
			delayD = 5
		}
		if delayD < 3 {
			delayD = 3
		}
		k := mix.Restarts
		if k > len(victims) {
			k = len(victims)
		}
		for i := 0; i < k; i++ {
			v := victims[i]
			var crashAt rt.Ticks
			for _, e := range evs {
				if e.Kind == EvCrash && e.Node == v {
					crashAt = e.At
				}
			}
			delay := rt.Ticks(delayD*float64(rt.TicksPerD)) + rt.Ticks(rng.Int63n(int64(rt.TicksPerD)))
			evs = append(evs, Event{At: crashAt + delay, Kind: EvRestart, Node: v})
		}
	}

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return Schedule{Seed: seed, N: n, F: f, Duration: duration, Mix: mix, Events: evs}
}
