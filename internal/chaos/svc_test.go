package chaos

import (
	"fmt"
	"testing"

	"mpsnap/internal/rt"
)

// TestServiceConcurrentClientsUnderChaos: N concurrent clients per node
// drive the object through the svc layer while crashes (including
// mid-broadcast, i.e. mid-batch for coalesced updates), partitions, drops,
// and delay spikes are injected. Across several seeds the recorded
// histories must still pass the consistency checker — linearizability for
// eqaso, sequential consistency for sso.
func TestServiceConcurrentClientsUnderChaos(t *testing.T) {
	// Two crashes (the second always strikes mid-broadcast) plus two
	// partition episodes per run: every seed exercises both crash-mid-batch
	// and partition recovery.
	mix := Mix{Crashes: 2, Partitions: 2, DropWindows: 1, DropProb: 0.2, SpikeWindows: 1, SpikeExtraD: 3}
	seeds := []int64{101, 202, 303, 404}
	for _, alg := range []string{"eqaso", "sso"} {
		for _, seed := range seeds {
			res, err := RunSim(Config{
				N: 5, F: 2, Engine: alg, Seed: seed,
				Duration: 40 * rt.TicksPerD,
				Mix:      mix,
				Service:  true,
				Clients:  4,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", alg, seed, err)
			}
			var crashes, mid, partitions int
			for _, ev := range res.Schedule.Events {
				switch ev.Kind {
				case EvCrash:
					crashes++
					if ev.Mid {
						mid++
					}
				case EvPartition:
					partitions++
				}
			}
			if crashes == 0 || mid == 0 || partitions == 0 {
				t.Fatalf("%s seed %d: schedule lacks faults (crashes=%d mid=%d partitions=%d)", alg, seed, crashes, mid, partitions)
			}
			if !res.Check.OK {
				t.Errorf("%s seed %d: check failed: %v", alg, seed, res.Check.Violations)
			}
			if res.Hist == nil || len(res.Hist.Ops) == 0 {
				t.Errorf("%s seed %d: empty history", alg, seed)
			}
		}
	}
}

// TestServiceRequiresSimBackend: service mode is rejected on transports
// and multi-client runs require the service.
func TestServiceRequiresSimBackend(t *testing.T) {
	if _, err := RunTransport(Config{N: 3, F: 1, Seed: 1, Duration: 1000, Service: true}, "chan"); err == nil {
		t.Error("transport + Service must error")
	}
	if _, err := RunSim(Config{N: 3, F: 1, Seed: 1, Duration: 1000, Clients: 2}); err == nil {
		t.Error("Clients > 1 without Service must error")
	}
	if _, err := RunSim(Config{N: 3, F: 1, Seed: 1, Duration: 1000, Clients: -1}); err == nil {
		t.Error("negative Clients must error")
	}
}

// TestServiceSingleClientDeterminism: service-mode runs replay exactly.
func TestServiceSingleClientDeterminism(t *testing.T) {
	cfg := Config{N: 5, F: 2, Seed: 55, Duration: 30 * rt.TicksPerD, Service: true, Clients: 2}
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hist.Ops) != len(b.Hist.Ops) {
		t.Fatalf("replay diverged: %d vs %d ops", len(a.Hist.Ops), len(b.Hist.Ops))
	}
	for i := range a.Hist.Ops {
		oa, ob := fmt.Sprintf("%+v", a.Hist.Ops[i]), fmt.Sprintf("%+v", b.Hist.Ops[i])
		if oa != ob {
			t.Fatalf("op %d diverged: %s vs %s", i, oa, ob)
		}
	}
}
