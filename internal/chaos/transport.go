package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"mpsnap/internal/engine"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/rt"
	"mpsnap/internal/transport"
	"mpsnap/internal/wal"
)

// DReal is the wall-clock duration standing in for one maximum message
// delay D on the real transports, so a Schedule's virtual times map to
// wall time uniformly across backends: ev.At ticks → ev.At·(DReal/TicksPerD).
const DReal = 10 * time.Millisecond

// tickReal is the wall-clock duration of one virtual tick.
const tickReal = DReal / time.Duration(rt.TicksPerD)

// TicksOf converts a wall-clock duration into virtual ticks under the
// DReal mapping, so "-duration 5s" means the same schedule on every
// backend.
func TicksOf(d time.Duration) rt.Ticks { return rt.Ticks(d / tickReal) }

// RunTransport executes one chaos run over a real transport backend:
// "chan" (in-process goroutine links) or "tcp" (a TCP loopback cluster,
// all n nodes in this process). The same seeded Schedule as RunSim is
// injected through a Net wrapper; operation times are recorded against
// one shared wall clock so the history's real-time order is meaningful
// across nodes. Real scheduling is not deterministic — only the fault
// schedule is — so the check verdict, not the exact history, is the
// reproducible artifact here.
func RunTransport(cfg Config, backend string) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Service {
		return nil, fmt.Errorf("chaos: Service mode runs on the sim backend only (use RunSim)")
	}
	if cfg.Mix.Restarts > 0 && backend != "chan" {
		return nil, fmt.Errorf("chaos: restarts run on the sim and chan backends only (a tcp restart is a process restart)")
	}
	if cfg.Churn && cfg.info.Durable() && backend != "chan" {
		return nil, fmt.Errorf("chaos: churn on a durable engine includes restarts, which run on the sim and chan backends only")
	}
	check := cfg.checker()
	sched := cfg.schedule()
	res := &Result{Schedule: sched}

	unders := make([]rt.Runtime, cfg.N)
	var crashFn func(id int)
	var setHandler func(id int, h rt.Handler)
	var restartFn func(id int, h rt.Handler)
	var closeAll func()
	switch backend {
	case "chan":
		cn := transport.NewChanNet(transport.ChanConfig{N: cfg.N, F: cfg.F, D: DReal, Seed: cfg.Seed})
		for i := 0; i < cfg.N; i++ {
			unders[i] = cn.Runtime(i)
		}
		crashFn = cn.Crash
		setHandler = cn.SetHandler
		restartFn = cn.Restart
		closeAll = cn.Close
	case "tcp":
		nodes, err := dialLoopback(cfg.N, cfg.F)
		if err != nil {
			return nil, err
		}
		for i, nd := range nodes {
			unders[i] = nd.Runtime()
		}
		crashFn = func(id int) { nodes[id].Crash() }
		setHandler = func(id int, h rt.Handler) { nodes[id].SetHandler(h) }
		closeAll = func() {
			for _, nd := range nodes {
				nd.Close()
			}
		}
	default:
		return nil, fmt.Errorf("chaos: unknown backend %q (want chan|tcp)", backend)
	}
	defer closeAll()

	nt := NewNet(cfg.Seed+3, unders, crashFn)
	nt.SetCorrupter(newCorrupter(cfg.Seed+4, cfg.info.Byzantine))
	objs := make([]object, cfg.N)
	var walFiles []*wal.MemFile
	if sched.HasRestarts() {
		walFiles = make([]*wal.MemFile, cfg.N)
	}
	for i := 0; i < cfg.N; i++ {
		h, obj := cfg.newNode(nt.Runtime(i))
		if walFiles != nil {
			walFiles[i] = wal.NewMemFile()
			obj.(engine.Durable).AttachWAL(wal.NewWriter(walFiles[i], chaosWALBatch), true)
		}
		setHandler(i, h)
		objs[i] = obj
	}

	// One shared wall clock for all history events: per-node Now() values
	// are offset by each node's start time and would order concurrent
	// events inconsistently across nodes, producing false violations.
	rec := history.NewRecorder(cfg.N)
	mon := attachMonitor(&cfg, sched, rec, nil, res)
	start := time.Now()
	now := func() rt.Ticks { return rt.Ticks(time.Since(start) / tickReal) }

	// Client accounting is a guarded counter rather than a WaitGroup:
	// restarts spawn clients mid-run, and WaitGroup.Add concurrent with
	// Wait is undefined. The counter only reaches zero once no respawn can
	// reserve a slot (reservations are refused after it hits zero).
	finished := make(chan struct{})
	var cliMu sync.Mutex
	activeClients := cfg.N
	clientDone := func() {
		cliMu.Lock()
		activeClients--
		if activeClients == 0 {
			close(finished)
		}
		cliMu.Unlock()
	}
	// client is one node's workload loop. cid distinguishes a restarted
	// incarnation's values ("v<id>.<cid>-<seq>") from pre-crash ones;
	// rejoin, when set, runs before the first operation.
	client := func(i, cid int, obj object, rejoin engine.Rejoiner) {
		defer clientDone()
		if rejoin != nil {
			rejoin.Rejoin()
		}
		rng := rand.New(rand.NewSource(cfg.Seed*1009 + int64(i) + 104729*int64(cid)))
		// Churn's adversarial workload, mirroring RunSim: hot-segment
		// writers on every third node, scan storms elsewhere, bursts of
		// back-to-back operations with halved think time.
		scanP, maxSleep := cfg.ScanRatio, cfg.MaxSleep
		if cfg.Churn {
			if i%3 == 0 {
				scanP = cfg.ScanRatio / 3
			} else {
				scanP = 1 - (1-cfg.ScanRatio)/3
			}
			maxSleep = cfg.MaxSleep / 2
		}
		seq := 0
		for now() < cfg.Duration {
			scans := rng.Float64() < scanP
			burst := 1
			if cfg.Churn {
				burst = 1 + rng.Intn(6)
			}
			for b := 0; b < burst; b++ {
				if scans {
					p := rec.BeginScanAs(i, cid, now())
					snap, err := obj.Scan()
					if err != nil {
						return // crashed: op stays pending
					}
					p.EndScan(harness.SnapStrings(snap), now())
				} else {
					seq++
					v := fmt.Sprintf("v%d-%d", i, seq)
					if cid > 0 {
						v = fmt.Sprintf("v%d.%d-%d", i, cid, seq)
					}
					p := rec.BeginUpdateAs(i, cid, v, now())
					if err := obj.Update([]byte(v)); err != nil {
						return
					}
					p.End(now())
				}
				if now() >= cfg.Duration {
					return
				}
			}
			time.Sleep(time.Duration(rng.Int63n(int64(maxSleep)+1)) * tickReal)
		}
	}

	// Crash-recovery: replay the victim's durable WAL prefix, rebuild the
	// node, swap it into the transport (crash flag and handler change under
	// one lock), and respawn its client — which rejoins before resuming the
	// workload. Runs on the Apply goroutine, so restarts are serialized.
	// Each incarnation gets its own cid so repeated restarts of one node
	// neither replay the same RNG stream nor reuse value names.
	if walFiles != nil {
		incarnation := make([]int, cfg.N)
		nt.OnRestart(func(id int) {
			if !nt.Crashed(id) || now() >= cfg.Duration {
				return
			}
			// Reserve a client slot up front so the run cannot be declared
			// finished while the node is being rebuilt.
			cliMu.Lock()
			if activeClients == 0 {
				cliMu.Unlock()
				return
			}
			activeClients++
			cliMu.Unlock()
			// Lock-step with the dead incarnation's last critical section
			// before touching its WAL file (all appends run under the
			// transport node's mutex; the node is crashed, so no new ones).
			unders[id].Atomic(func() {})
			f := walFiles[id]
			f.Crash()
			st := wal.Recover(f.Durable(), cfg.N, id)
			h, obj, rj := cfg.recoverNode(nt.Runtime(id), st, wal.NewWriter(f, chaosWALBatch))
			restartFn(id, h)
			nt.ClearCrashed(id)
			incarnation[id]++
			go client(id, incarnation[id], obj, rj)
		})
	}

	done := make(chan struct{})
	defer close(done)
	nt.Apply(sched, tickReal, done)

	for i := 0; i < cfg.N; i++ {
		go client(i, 0, objs[i], nil)
	}

	abortAt := start.Add(time.Duration(cfg.Duration+graceTicks) * tickReal)
	select {
	case <-finished:
	case <-time.After(time.Until(abortAt)):
		// An operation lost its quorum (drops, excess crashes): crash
		// every node so blocked waits release with rt.ErrCrashed and the
		// stuck operations end the run as pending.
		res.Blocked = append(res.Blocked,
			fmt.Sprintf("transport/%s: clients still blocked %v past deadline; crash-aborted all nodes", backend, time.Duration(graceTicks)*tickReal))
		nt.CrashAll()
		<-finished
	}

	h := rec.History()
	res.Hist = h
	res.NetDrops = nt.Drops()
	res.NetHeld = nt.Holds()
	res.NetCorrupt = nt.Corrupts()
	res.Check = check(h)
	harvestMonitor(mon, res)
	return res, nil
}

// dialLoopback brings up an n-node TCP full mesh in this process: every
// listener binds 127.0.0.1:0 first so the real addresses are known before
// any node starts dialing.
func dialLoopback(n, f int) ([]*transport.TCPNode, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("chaos: listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*transport.TCPNode, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			nodes[i], errs[i] = transport.NewTCPNode(transport.TCPConfig{
				ID: i, Addrs: addrs, F: f, D: DReal, Listener: lns[i],
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, nd := range nodes {
				if nd != nil {
					nd.Close()
				}
			}
			return nil, fmt.Errorf("chaos: tcp node %d: %w", i, err)
		}
	}
	return nodes, nil
}
