package chaos

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mpsnap/internal/obs"
	"mpsnap/internal/rt"
)

// TestTraceDumpOnForcedFailure: with tracing armed and the checker verdict
// forced to fail, RunSim dumps a JSONL trace whose path encodes alg, seed,
// and schedule hash, and whose events cover both op lifecycles and
// injected faults.
func TestTraceDumpOnForcedFailure(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		N: 5, F: 2, Seed: 42, Duration: 60 * rt.TicksPerD,
		TraceDir: dir, forceCheckFail: true,
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Check.OK {
		t.Fatal("forceCheckFail did not force a failing verdict")
	}
	if res.TracePath == "" {
		t.Fatal("failing run with TraceDir set produced no trace dump")
	}
	want := filepath.Join(dir, "chaos-eqaso-seed42-"+res.Schedule.Hash()+".jsonl")
	if res.TracePath != want {
		t.Fatalf("trace path: got %q want %q", res.TracePath, want)
	}
	data, err := os.ReadFile(res.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("empty trace dump")
	}
	cats := map[string]int{}
	for _, ln := range lines {
		var ev obs.Event
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		cats[ev.Cat]++
	}
	if cats[obs.CatOp] == 0 {
		t.Fatalf("trace has no op events (cats: %v)", cats)
	}
	if cats[obs.CatSys] == 0 {
		t.Fatalf("trace has no fault-injection events (cats: %v)", cats)
	}
	if cats[obs.CatMsg] != 0 {
		t.Fatalf("chaos trace recorded %d raw message events; should record none", cats[obs.CatMsg])
	}
}

// TestTraceDeterministic: the trace dump is a deterministic function of
// the seed — two runs write byte-identical files.
func TestTraceDeterministic(t *testing.T) {
	run := func(dir string) []byte {
		res, err := RunSim(Config{
			N: 5, F: 2, Seed: 7, Duration: 40 * rt.TicksPerD,
			TraceDir: dir, TraceAlways: true, Service: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Check.OK {
			t.Fatalf("check failed: %v", res.Check.Violations)
		}
		if res.TracePath == "" {
			t.Fatal("TraceAlways run produced no dump")
		}
		data, err := os.ReadFile(res.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	b1 := run(t.TempDir())
	b2 := run(t.TempDir())
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(b1), len(b2))
	}
	if len(b1) == 0 {
		t.Fatal("empty trace")
	}
	// Service runs route ops through svc: its client-visible op events
	// must be present alongside the protocol's own.
	if !bytes.Contains(b1, []byte(`"op":"svc.`)) {
		t.Fatal("service-mode trace has no svc.* op events")
	}
}

// TestTracePassingRunNoDump: without TraceAlways, a passing run leaves no
// file behind.
func TestTracePassingRunNoDump(t *testing.T) {
	dir := t.TempDir()
	res, err := RunSim(Config{
		N: 5, F: 2, Seed: 42, Duration: 40 * rt.TicksPerD, TraceDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Check.OK {
		t.Fatalf("check failed: %v", res.Check.Violations)
	}
	if res.TracePath != "" {
		t.Fatalf("passing run dumped a trace: %s", res.TracePath)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("trace dir not empty after passing run: %v", entries)
	}
}
