package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"mpsnap/internal/monitor"
	"mpsnap/internal/sim"
)

// Report is the machine-readable outcome of one chaos run, emitted by
// cmd/asochaos -json.
type Report struct {
	Backend  string   `json:"backend"`
	Engine   string   `json:"engine"`
	OK       bool     `json:"ok"`
	Schedule Schedule `json:"schedule"`
	// ScheduleHash fingerprints the fault schedule: two runs with equal
	// hashes injected the exact same faults.
	ScheduleHash string `json:"scheduleHash"`
	Ops          int    `json:"ops"`
	Pending      int    `json:"pending"`
	// Violations are the checker's complaints (empty when OK).
	Violations []string `json:"violations,omitempty"`
	// Blocked lists operations crash-aborted at the end of the run.
	Blocked []string `json:"blocked,omitempty"`
	// HistoryHash fingerprints the recorded history JSON; on the sim
	// backend it is identical across runs with the same seed.
	HistoryHash string     `json:"historyHash,omitempty"`
	Stats       *sim.Stats `json:"stats,omitempty"`
	NetDrops    int64      `json:"netDrops,omitempty"`
	NetHeld     int64      `json:"netHeld,omitempty"`
	NetCorrupt  int64      `json:"netCorrupt,omitempty"`
	// TracePath names the JSONL observability trace dumped for this run
	// (set on failures when tracing is armed, or always with TraceAlways).
	TracePath    string `json:"tracePath,omitempty"`
	TraceDropped uint64 `json:"traceDropped,omitempty"`
	// MonitorStats / MonitorViolations are the streaming invariant
	// monitor's verdict (monitor armed in churn mode or via Config.
	// Monitor); a monitor violation fails the report like a checker one.
	MonitorStats      *monitor.Stats `json:"monitor,omitempty"`
	MonitorViolations []string       `json:"monitorViolations,omitempty"`
	// MonitorPath / MonitorTracePath name the first-violation dumps.
	MonitorPath      string `json:"monitorPath,omitempty"`
	MonitorTracePath string `json:"monitorTracePath,omitempty"`
}

// NewReport condenses a Result.
func NewReport(backend, eng string, res *Result) Report {
	rep := Report{
		Backend:      backend,
		Engine:       eng,
		Schedule:     res.Schedule,
		ScheduleHash: res.Schedule.Hash(),
		Blocked:      res.Blocked,
		Stats:        res.Stats,
		NetDrops:     res.NetDrops,
		NetHeld:      res.NetHeld,
		NetCorrupt:   res.NetCorrupt,
		TracePath:    res.TracePath,
		TraceDropped: res.TraceDropped,
	}
	if res.Hist != nil {
		rep.Ops = len(res.Hist.Ops)
		for _, op := range res.Hist.Ops {
			if op.Pending() {
				rep.Pending++
			}
		}
		var buf bytes.Buffer
		if err := res.Hist.DumpJSON(&buf); err == nil {
			rep.HistoryHash = hashBytes(buf.Bytes())
		}
	}
	if res.Check != nil {
		rep.OK = res.Check.OK
		rep.Violations = append(rep.Violations, res.Check.Violations...)
	}
	rep.MonitorStats = res.MonitorStats
	rep.MonitorViolations = append(rep.MonitorViolations, res.MonitorViolations...)
	rep.MonitorPath = res.MonitorPath
	rep.MonitorTracePath = res.MonitorTracePath
	if len(res.MonitorViolations) > 0 {
		rep.OK = false
	}
	return rep
}

// Hash fingerprints the schedule (first 16 hex digits of SHA-256 over its
// canonical JSON).
func (s Schedule) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		return "unhashable"
	}
	return hashBytes(b)
}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}
