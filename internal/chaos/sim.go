package chaos

import (
	"fmt"
	"math/rand"
	"path/filepath"

	"mpsnap/internal/engine"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/obs"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
	"mpsnap/internal/wal"
)

// chaosWALBatch is the WAL fsync batch for chaos runs: foreign values may
// ride a batch, while the protocol's critical points (own values before
// dissemination, checkpoints before vouches, prunes before execution)
// force explicit syncs regardless.
const chaosWALBatch = 8

// simLink realizes the schedule's drop and spike windows as a
// sim.LinkAdversary. State is mutated by scheduled events; the RNG is
// consulted only for links inside an active drop window, in send order,
// so runs replay exactly.
type simLink struct {
	rng   *rand.Rand
	drop  map[[2]int]float64
	extra map[[2]int]rt.Ticks
}

func newSimLink(seed int64) *simLink {
	return &simLink{
		rng:   rand.New(rand.NewSource(seed)),
		drop:  make(map[[2]int]float64),
		extra: make(map[[2]int]rt.Ticks),
	}
}

// OnSend implements sim.LinkAdversary.
func (l *simLink) OnSend(now rt.Ticks, src, dst int, kind string) sim.LinkFate {
	key := [2]int{src, dst}
	fate := sim.LinkFate{Extra: l.extra[key]}
	if p := l.drop[key]; p > 0 && l.rng.Float64() < p {
		fate.Drop = true
	}
	return fate
}

// midCrash arms scheduled mid-broadcast crashes: an armed node's next
// broadcast reaches only a random prefix of the destinations, then the
// node crashes — the paper's "crash while sending" failure mode.
type midCrash struct {
	rng   *rand.Rand
	armed map[int]bool
}

func newMidCrash(seed int64) *midCrash {
	return &midCrash{rng: rand.New(rand.NewSource(seed)), armed: make(map[int]bool)}
}

// OnBroadcast implements sim.Adversary.
func (a *midCrash) OnBroadcast(now rt.Ticks, src int, msg rt.Message, dsts []int) ([]int, bool) {
	if !a.armed[src] {
		return dsts, false
	}
	delete(a.armed, src)
	return dsts[:a.rng.Intn(len(dsts))], true
}

// RunSim executes one chaos run on the deterministic simulator. The
// entire run — schedule, workload, recorded history — is a function of
// cfg alone, so a failing seed replays byte-identically.
func RunSim(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	check := cfg.checker()
	sched := cfg.schedule()
	res := &Result{Schedule: sched}
	link := newSimLink(cfg.Seed + 1)
	adv := newMidCrash(cfg.Seed + 2)
	corr := newCorrupter(cfg.Seed+4, cfg.info.Byzantine)

	c := harness.Build(sim.Config{N: cfg.N, F: cfg.F, Seed: cfg.Seed, Adversary: adv, Link: link, Wire: corr},
		func(r rt.Runtime) (rt.Handler, harness.Object) {
			return cfg.newNode(r)
		})

	// Crash-recovery: each node persists to an in-memory WAL (with GC of
	// the value log below the globally-vouched checkpoint); a restart
	// event replays the durable prefix, rejoins, and respawns the client.
	var walFiles []*wal.MemFile
	if sched.HasRestarts() {
		walFiles = make([]*wal.MemFile, cfg.N)
		for i, o := range c.Objects {
			walFiles[i] = wal.NewMemFile()
			o.(engine.Durable).AttachWAL(wal.NewWriter(walFiles[i], chaosWALBatch), true)
		}
	}

	// Observability trace: op/phase events from the objects (and service
	// fronts), fault events from the simulator's tracer. Raw send/deliver
	// traffic is deliberately NOT recorded — it would evict the op events
	// a failure post-mortem actually needs from the ring.
	var tr *obs.Trace
	if cfg.TraceDir != "" {
		capacity := cfg.TraceCap
		if capacity <= 0 {
			capacity = 8192
		}
		tr = obs.NewTrace(capacity)
		c.W.SetTracer(func(ev sim.TraceEvent) {
			switch ev.Kind {
			case "crash", "restart", "partition", "heal", "drop", "corrupt", "hold":
				tr.Sys(ev.T, ev.Kind, ev.Src, ev.Dst, ev.Msg)
			}
		})
		for _, o := range c.Objects {
			if so, ok := o.(interface{ SetObserver(rt.Observer) }); ok {
				so.SetObserver(tr)
			}
		}
	}

	// Streaming invariant monitor: consumes completions as the recorder
	// produces them; the first violation dumps the monitor transcript and
	// the obs ring as they stand at that moment.
	mon := attachMonitor(&cfg, sched, c.Rec, tr, res)

	// Inject the schedule. restartNode is assigned below (it closes over
	// the workload script); the scheduled callbacks only run inside Run,
	// long after the assignment.
	w := c.W
	var restartNode func(id int)
	for _, ev := range sched.Events {
		ev := ev
		switch ev.Kind {
		case EvCrash:
			if ev.Mid {
				// Arm the mid-broadcast crash; if the victim broadcasts
				// nothing within 2D, crash it outright (idempotent).
				w.After(ev.At, func() { adv.armed[ev.Node] = true })
				w.After(ev.At+2*rt.TicksPerD, func() { w.Crash(ev.Node) })
			} else {
				w.CrashAt(ev.Node, ev.At)
			}
		case EvPartition:
			w.After(ev.At, func() { w.Partition(ev.Groups...) })
		case EvHeal:
			w.After(ev.At, func() { w.Heal() })
		case EvDropOn:
			w.After(ev.At, func() { link.drop[[2]int{ev.Src, ev.Dst}] = ev.Prob })
		case EvDropOff:
			w.After(ev.At, func() { delete(link.drop, [2]int{ev.Src, ev.Dst}) })
		case EvSpikeOn:
			w.After(ev.At, func() { link.extra[[2]int{ev.Src, ev.Dst}] = ev.Extra })
		case EvSpikeOff:
			w.After(ev.At, func() { delete(link.extra, [2]int{ev.Src, ev.Dst}) })
		case EvCorruptOn:
			w.After(ev.At, func() { corr.windows[[2]int{ev.Src, ev.Dst}] = ev.Prob })
		case EvCorruptOff:
			w.After(ev.At, func() { delete(corr.windows, [2]int{ev.Src, ev.Dst}) })
		case EvRestart:
			w.After(ev.At, func() { restartNode(ev.Node) })
		}
	}

	deadline := cfg.Duration

	// Service layer (optional): wrap each node's object in a svc.Service
	// whose worker runs on a dedicated node thread; all of the node's
	// clients then share it. Services close shortly past the deadline —
	// strictly before the first unblock sweep — so drained workers exit
	// cleanly instead of being mistaken for stuck operations and
	// crash-aborted.
	fronts := make([]harness.Object, cfg.N)
	for i := range fronts {
		fronts[i] = c.Objects[i]
	}
	if cfg.Service {
		services := make([]*svc.Service, cfg.N)
		for i := 0; i < cfg.N; i++ {
			opts := svc.Options{Mode: svc.ModeFor(cfg.Engine)}
			if tr != nil {
				opts.Observer = tr
			}
			s := svc.New(w.Runtime(i), c.Objects[i], opts)
			services[i] = s
			fronts[i] = s
			w.GoNode(fmt.Sprintf("svc-%d", i), i, func(p *sim.Proc) {
				_ = s.Serve() // returns on drain (nil) or node crash
			})
		}
		w.After(deadline+graceTicks/2, func() {
			for _, s := range services {
				s.Close()
			}
		})
	}

	// Workload: every client thread alternates seeded updates/scans with
	// think time until the deadline. Restarted nodes respawn the same
	// script (after rejoining) under a fresh client id, so their post-
	// recovery values stay distinct from pre-crash ones.
	script := func(seed int64, rejoin engine.Rejoiner) func(o *harness.OpRunner) {
		return func(o *harness.OpRunner) {
			if rejoin != nil {
				rejoin.Rejoin()
			}
			rng := rand.New(rand.NewSource(seed))
			// Churn's adversarial workload: every third node hammers its
			// own segment (hot-segment update storms), the rest lean into
			// scan storms; all clients fire bursts of back-to-back
			// operations with halved think time.
			scanP, maxSleep := cfg.ScanRatio, cfg.MaxSleep
			if cfg.Churn {
				if o.Node()%3 == 0 {
					scanP = cfg.ScanRatio / 3
				} else {
					scanP = 1 - (1-cfg.ScanRatio)/3
				}
				maxSleep = cfg.MaxSleep / 2
			}
			for o.P.Now() < deadline {
				scans := rng.Float64() < scanP
				burst := 1
				if cfg.Churn {
					burst = 1 + rng.Intn(6)
				}
				for b := 0; b < burst; b++ {
					var err error
					if scans {
						_, err = o.Scan()
					} else {
						_, err = o.Update()
					}
					if err != nil {
						return // node crashed: op stays pending
					}
					if o.P.Now() >= deadline {
						return
					}
				}
				if err := o.P.Sleep(rt.Ticks(rng.Int63n(int64(maxSleep) + 1))); err != nil {
					return
				}
			}
		}
	}
	for i := 0; i < cfg.N; i++ {
		for cid := 0; cid < cfg.Clients; cid++ {
			seed := cfg.Seed*1009 + int64(i) + 7919*int64(cid)
			c.ClientOn(i, fronts[i], script(seed, nil))
		}
	}

	// Crash-recovery: replay the victim's durable WAL prefix (the unsynced
	// tail died with the process), rebuild the node on the same runtime,
	// un-crash it, and respawn its client — which first rejoins (re-
	// disseminating retained values above the recovered frontier and
	// requesting the delta it missed) and then resumes the workload. The
	// respawn seed mixes the node's incarnation count so a node restarted
	// twice does not replay the same RNG stream (op mix and sleeps) in
	// every incarnation.
	incarnation := make([]int64, cfg.N)
	restartNode = func(id int) {
		if !w.Crashed(id) || walFiles == nil {
			return
		}
		f := walFiles[id]
		f.Crash()
		st := wal.Recover(f.Durable(), cfg.N, id)
		h, obj, rj := cfg.recoverNode(w.Runtime(id), st, wal.NewWriter(f, chaosWALBatch))
		if tr != nil {
			if so, ok := obj.(interface{ SetObserver(rt.Observer) }); ok {
				so.SetObserver(tr)
			}
		}
		w.SetHandler(id, h)
		w.Restart(id)
		incarnation[id]++
		c.ClientOn(id, obj, script(cfg.Seed*1009+int64(id)+104729*incarnation[id], rj))
	}

	// Unblock sweeps: past the deadline plus grace, any operation still
	// blocked (its quorum lost to drops or excess crashes) has its node
	// crash-aborted so the run terminates with the op recorded as
	// pending. Each sweep either finds nothing or crashes at least one
	// node, so n+1 sweeps always suffice.
	for k := 1; k <= cfg.N+1; k++ {
		w.After(deadline+graceTicks*rt.Ticks(k), func() {
			for _, bw := range w.Blocked() {
				if bw.Node >= 0 && !w.Crashed(bw.Node) {
					res.Blocked = append(res.Blocked, bw.String())
					w.Crash(bw.Node)
				}
			}
		})
	}

	h, err := c.Run()
	res.Hist = h
	if err != nil {
		return res, err
	}
	st := w.Stats()
	res.Stats = &st
	res.Check = check(h)
	if cfg.forceCheckFail {
		res.Check = &history.Report{OK: false, Violations: []string{"forced failure (chaos test hook)"}}
	}
	harvestMonitor(mon, res)
	if tr != nil && (!res.Check.OK || cfg.TraceAlways || len(res.MonitorViolations) > 0) {
		path := filepath.Join(cfg.TraceDir,
			fmt.Sprintf("chaos-%s-seed%d-%s.jsonl", cfg.Engine, cfg.Seed, sched.Hash()))
		if err := tr.DumpJSONL(path); err != nil {
			return res, fmt.Errorf("chaos: %w", err)
		}
		res.TracePath = path
		res.TraceDropped = tr.Dropped()
	}
	return res, nil
}
