package chaos

import (
	"bytes"
	"strings"
	"testing"

	"mpsnap/internal/history"
	"mpsnap/internal/rt"
)

// restartMix is the standard crash-recovery diet: two crash victims both
// come back, with the usual partition/loss/spike background noise.
func restartMix() Mix {
	m := DefaultMix()
	m.Crashes = 2
	m.Restarts = 2
	m.Partitions = 1
	m.DropWindows = 1
	m.SpikeWindows = 1
	return m
}

// requireRecovery asserts the run actually exercised crash-recovery: the
// schedule fired restart events, and at least one restarted incarnation
// (client id 1, values "v<node>.1-<seq>") completed an update afterwards.
func requireRecovery(t *testing.T, res *Result) {
	t.Helper()
	restarts := 0
	for _, ev := range res.Schedule.Events {
		if ev.Kind == EvRestart {
			restarts++
		}
	}
	if restarts == 0 {
		t.Fatal("schedule contains no restart events")
	}
	recovered := 0
	for _, op := range res.Hist.Ops {
		if op.Type == history.Update && op.Resp >= 0 && strings.Contains(op.Arg, ".1-") {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatal("no restarted incarnation completed an update")
	}
	t.Logf("%d restarts, %d post-recovery updates, %d ops total", restarts, recovered, len(res.Hist.Ops))
}

// TestRestartRecoverySim: crashed nodes replay their WAL, rejoin via the
// checkpoint-delta path, and resume the workload — and the complete
// history (pre-crash, concurrent, and post-recovery operations) still
// passes the consistency checker, across algorithms and seeds.
func TestRestartRecoverySim(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	if !testing.Short() {
		seeds = append(seeds, 5, 6)
	}
	for _, alg := range []string{"eqaso", "sso"} {
		for _, seed := range seeds {
			res, err := RunSim(Config{
				N: 5, F: 2, Engine: alg, Seed: seed,
				Duration: 60 * rt.TicksPerD, Mix: restartMix(),
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", alg, seed, err)
			}
			if !res.Check.OK {
				t.Fatalf("%s seed %d: check failed: %v", alg, seed, res.Check.Violations)
			}
			requireRecovery(t, res)
		}
	}
}

// TestRestartDeterminism: restart schedules and recovery replay are as
// deterministic as everything else on the sim backend — same seed, byte-
// identical history. (Restart RNG draws are appended after all other
// fault draws precisely so enabling them cannot perturb the rest.)
func TestRestartDeterminism(t *testing.T) {
	cfg := Config{N: 5, F: 2, Engine: "eqaso", Seed: 9, Duration: 60 * rt.TicksPerD, Mix: restartMix()}
	run := func() []byte {
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Check.OK {
			t.Fatalf("check failed: %v", res.Check.Violations)
		}
		var buf bytes.Buffer
		if err := res.Hist.DumpJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if b1, b2 := run(), run(); !bytes.Equal(b1, b2) {
		t.Fatalf("same seed produced different histories (%d vs %d bytes)", len(b1), len(b2))
	}
}

// TestRestartRecoveryChan: the same crash-recovery flow on the real
// channel transport — the WAL replay races real goroutines instead of
// virtual time, so this is the -race job's main recovery workout.
func TestRestartRecoveryChan(t *testing.T) {
	for _, alg := range []string{"eqaso", "sso"} {
		t.Run(alg, func(t *testing.T) {
			res, err := RunTransport(Config{
				N: 5, F: 2, Engine: alg, Seed: 7,
				Duration: 40 * rt.TicksPerD, Mix: restartMix(),
			}, "chan")
			if err != nil {
				t.Fatal(err)
			}
			if !res.Check.OK {
				t.Fatalf("check failed: %v", res.Check.Violations)
			}
			requireRecovery(t, res)
		})
	}
}

// TestRestartConfigValidation: restarts need a WAL-capable algorithm,
// direct clients, and an in-process backend.
func TestRestartConfigValidation(t *testing.T) {
	mix := Mix{Crashes: 1, Restarts: 1}
	if _, err := RunSim(Config{N: 7, F: 2, Engine: "byzaso", Duration: 1000, Mix: mix}); err == nil {
		t.Error("byzaso with restarts accepted, want error")
	}
	if _, err := RunSim(Config{N: 5, F: 2, Engine: "sso", Service: true, Duration: 1000, Mix: mix}); err == nil {
		t.Error("service mode with restarts accepted, want error")
	}
	if _, err := RunTransport(Config{N: 5, F: 2, Duration: 1000, Mix: mix}, "tcp"); err == nil {
		t.Error("tcp backend with restarts accepted, want error")
	}
}
