package chaos

import (
	"reflect"
	"testing"

	"mpsnap/internal/rt"
)

// TestGenerateChurnDeterministic pins the churn generator as a pure
// function of its arguments: equal inputs give byte-identical schedules
// (and hashes), and varying any of seed, restarts, or generator kind
// gives a distinct hash.
func TestGenerateChurnDeterministic(t *testing.T) {
	dur := 400 * rt.TicksPerD
	a := GenerateChurn(7, 5, 2, dur, ChurnMix{}, true)
	b := GenerateChurn(7, 5, 2, dur, ChurnMix{}, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same inputs must generate identical schedules")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("same inputs must hash identically")
	}
	if len(a.Events) == 0 {
		t.Fatal("churn schedule has no events")
	}
	if !a.HasRestarts() {
		t.Fatal("restart lane missing with restarts enabled")
	}
	c := GenerateChurn(8, 5, 2, dur, ChurnMix{}, true)
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds must hash apart")
	}
	d := GenerateChurn(7, 5, 2, dur, ChurnMix{}, false)
	if d.HasRestarts() {
		t.Fatal("restart lane must be off for non-durable engines")
	}
	if a.Hash() == d.Hash() {
		t.Fatal("restart-lane toggle must hash apart")
	}
	m := Generate(7, 5, 2, dur, DefaultMix())
	if a.Hash() == m.Hash() {
		t.Fatal("churn and mix schedules of the same seed must hash apart")
	}
}

// TestChurnScheduleBudget is the property test over the churn generator:
// for many (seed, n, f, restarts, duration) combinations, replaying the
// event list must show the fault budget honored at every instant — the
// number of nodes crashed or isolated never exceeds f — along with the
// structural invariants: sorted events inside the run, restarts only for
// crashed nodes at least 3D after their crash (the mid-broadcast fallback
// fires at +2D), single-node islands never landing on a crashed node,
// properly nested partition/heal and spike windows, and nothing left
// crashed, isolated, or lagging at the end.
func TestChurnScheduleBudget(t *testing.T) {
	cases := []struct {
		n, f     int
		restarts bool
	}{
		{3, 1, true}, {3, 1, false}, {5, 2, true}, {5, 2, false},
		{7, 3, true}, {7, 1, true}, {9, 4, false},
	}
	for seed := int64(1); seed <= 25; seed++ {
		for _, tc := range cases {
			dur := rt.Ticks(200+17*seed) * rt.TicksPerD
			s := GenerateChurn(seed, tc.n, tc.f, dur, ChurnMix{}, tc.restarts)
			validateChurn(t, s, tc.restarts)
		}
	}
}

func validateChurn(t *testing.T, s Schedule, restarts bool) {
	t.Helper()
	crashed := make(map[int]bool)
	crashAt := make(map[int]rt.Ticks)
	spikes := make(map[[2]int]bool)
	isolated := -1
	var last rt.Ticks
	ctx := func(ev Event) string {
		return "seed=" + s.Hash() + ": " + ev.String()
	}
	for _, ev := range s.Events {
		if ev.At < last {
			t.Fatalf("%s: events not sorted", ctx(ev))
		}
		last = ev.At
		if ev.At < 0 || ev.At >= s.Duration {
			t.Fatalf("%s: event outside the run", ctx(ev))
		}
		switch ev.Kind {
		case EvCrash:
			if !restarts {
				t.Fatalf("%s: crash without restart lane", ctx(ev))
			}
			if crashed[ev.Node] {
				t.Fatalf("%s: crash of an already-crashed node", ctx(ev))
			}
			if ev.Node == isolated {
				t.Fatalf("%s: crash of the isolated node", ctx(ev))
			}
			crashed[ev.Node] = true
			crashAt[ev.Node] = ev.At
		case EvRestart:
			if !crashed[ev.Node] {
				t.Fatalf("%s: restart of a live node", ctx(ev))
			}
			if ev.At-crashAt[ev.Node] < 3*rt.TicksPerD {
				t.Fatalf("%s: restart %d ticks after crash, before the +2D mid-broadcast fallback",
					ctx(ev), ev.At-crashAt[ev.Node])
			}
			delete(crashed, ev.Node)
		case EvPartition:
			if isolated >= 0 {
				t.Fatalf("%s: overlapping partitions", ctx(ev))
			}
			if len(ev.Groups) != 1 || len(ev.Groups[0]) != 1 {
				t.Fatalf("%s: churn flaps isolate exactly one node, got %v", ctx(ev), ev.Groups)
			}
			isolated = ev.Groups[0][0]
			if crashed[isolated] {
				t.Fatalf("%s: flap landed on a crashed node", ctx(ev))
			}
		case EvHeal:
			if isolated < 0 {
				t.Fatalf("%s: heal without partition", ctx(ev))
			}
			isolated = -1
		case EvSpikeOn:
			spikes[[2]int{ev.Src, ev.Dst}] = true
		case EvSpikeOff:
			if !spikes[[2]int{ev.Src, ev.Dst}] {
				t.Fatalf("%s: spike-off without spike-on", ctx(ev))
			}
			delete(spikes, [2]int{ev.Src, ev.Dst})
		default:
			t.Fatalf("%s: unexpected kind in a churn schedule", ctx(ev))
		}
		charged := len(crashed)
		if isolated >= 0 {
			charged++
		}
		if charged > s.F {
			t.Fatalf("%s: fault budget exceeded: %d nodes charged, f=%d", ctx(ev), charged, s.F)
		}
	}
	if len(crashed) > 0 {
		t.Fatalf("schedule %s leaves nodes crashed: %v", s.Hash(), crashed)
	}
	if isolated >= 0 {
		t.Fatalf("schedule %s leaves node %d isolated", s.Hash(), isolated)
	}
	if len(spikes) > 0 {
		t.Fatalf("schedule %s leaves links lagging: %v", s.Hash(), spikes)
	}
}
