// Package explore is a bounded-exhaustive schedule explorer (a stateless
// model checker) for the simulator: it systematically enumerates the
// message-delivery orders of a scenario's first Depth scheduling decisions
// — rather than sampling them with random delays — and re-verifies the
// scenario under every schedule.
//
// Exploration is replay-based: each execution rebuilds the scenario from
// scratch with a sequencer that forces a chosen prefix of decisions and
// takes the first eligible event afterwards. Because the simulator is
// deterministic given the choice sequence, the search walks the schedule
// tree depth-first with an odometer over recorded branching widths.
//
// This is how the repository demonstrates, for small configurations, that
// EQ-ASO's guarantees hold under *every* early schedule — and that the
// paper's one-shot warm-up sketch (Section III-C) genuinely needs the
// "typical quorum techniques": the explorer finds its counterexample
// schedule in milliseconds (see the tests).
package explore

import (
	"fmt"

	"mpsnap/internal/sim"
)

// Options bounds the search.
type Options struct {
	// Depth is the number of initial scheduling decisions explored
	// exhaustively; later decisions take the default (first eligible).
	Depth int
	// MaxRuns caps the number of executions (0 = 1,000,000).
	MaxRuns int
}

// Result summarizes a completed exploration.
type Result struct {
	// Runs is the number of schedules executed.
	Runs int
	// Truncated is true if MaxRuns stopped the search early.
	Truncated bool
}

// Violation is returned when a schedule falsifies the scenario.
type Violation struct {
	// Schedule is the choice prefix that reproduces the failure.
	Schedule []int
	// Err is the scenario's verification error.
	Err error
}

func (v *Violation) Error() string {
	return fmt.Sprintf("explore: schedule %v: %v", v.Schedule, v.Err)
}

func (v *Violation) Unwrap() error { return v.Err }

// Sequencer is the controlled sim.Sequencer handed to each execution.
type Sequencer struct {
	prefix []int
	widths []int
	step   int
}

// Next implements sim.Sequencer.
func (s *Sequencer) Next(eligible []sim.EventInfo) int {
	w := len(eligible)
	s.widths = append(s.widths, w)
	i := s.step
	s.step++
	if i < len(s.prefix) {
		ch := s.prefix[i]
		if ch >= w {
			// Should not happen for deterministic scenarios; clamp
			// defensively so replay cannot panic.
			ch = w - 1
		}
		return ch
	}
	return 0
}

// Replay returns a sequencer that forces the given schedule prefix and
// takes defaults afterwards — reproducing a Violation deterministically.
func Replay(schedule []int) *Sequencer {
	return &Sequencer{prefix: append([]int(nil), schedule...)}
}

// Run executes the scenario under every schedule of the bounded tree.
// runOne must build a fresh scenario each call, install the given
// sequencer via sim.Config.Sequencer, execute it, and return a non-nil
// error if verification fails. Run returns a *Violation for the first
// failing schedule, or the exploration result.
func Run(opts Options, runOne func(s sim.Sequencer) error) (Result, error) {
	if opts.Depth <= 0 {
		opts.Depth = 6
	}
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = 1_000_000
	}
	var res Result
	prefix := []int{}
	for {
		if res.Runs >= opts.MaxRuns {
			res.Truncated = true
			return res, nil
		}
		seq := &Sequencer{prefix: prefix}
		err := runOne(seq)
		res.Runs++
		if err != nil {
			return res, &Violation{Schedule: append([]int(nil), prefix...), Err: err}
		}
		// Odometer step over the explored depth: find the deepest
		// position whose choice can be incremented given this run's
		// observed branching widths.
		limit := opts.Depth
		if len(seq.widths) < limit {
			limit = len(seq.widths)
		}
		v := make([]int, limit)
		copy(v, prefix)
		i := limit - 1
		for i >= 0 {
			if v[i]+1 < seq.widths[i] {
				v[i]++
				v = v[:i+1]
				break
			}
			i--
		}
		if i < 0 {
			return res, nil // tree exhausted
		}
		prefix = v
	}
}
