package explore_test

import (
	"fmt"
	"testing"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/explore"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/la"
	"mpsnap/internal/sim"
)

// concurrentScenario: nodes 0 and 1 update concurrently while node 2
// scans twice in sequence — the shape that stresses condition (A1)
// (comparable bases) and (A3) (same-node scan monotonicity) under every
// delivery order.
func concurrentScenario(mk func(w *sim.World, i int) harness.Object) func(s sim.Sequencer) error {
	return func(s sim.Sequencer) error {
		const n, f = 3, 1
		w := sim.New(sim.Config{N: n, F: f, Seed: 1, Sequencer: s})
		objs := make([]harness.Object, n)
		for i := 0; i < n; i++ {
			objs[i] = mk(w, i)
		}
		rec := history.NewRecorder(n)
		for _, u := range []int{0, 1} {
			u := u
			w.GoNode(fmt.Sprintf("u%d", u), u, func(p *sim.Proc) {
				pend := rec.BeginUpdate(u, fmt.Sprintf("v%d", u), w.Now())
				if err := objs[u].Update([]byte(fmt.Sprintf("v%d", u))); err != nil {
					return
				}
				pend.End(w.Now())
			})
		}
		w.GoNode("s2", 2, func(p *sim.Proc) {
			for k := 0; k < 2; k++ {
				pend := rec.BeginScan(2, w.Now())
				snap, err := objs[2].Scan()
				if err != nil {
					return
				}
				pend.EndScan(harness.SnapStrings(snap), w.Now())
				if err := p.Sleep(1); err != nil {
					return
				}
			}
		})
		if err := w.Run(); err != nil {
			return fmt.Errorf("run: %w", err)
		}
		if rep := rec.History().CheckLinearizable(); !rep.OK {
			return fmt.Errorf("%s", rep.Violations[0])
		}
		return nil
	}
}

func TestConcurrentUpdatesAllSchedulesEQASO(t *testing.T) {
	res, err := explore.Run(explore.Options{Depth: 4, MaxRuns: 400000},
		concurrentScenario(func(w *sim.World, i int) harness.Object {
			nd := eqaso.New(w.Runtime(i))
			w.SetHandler(i, nd)
			return nd
		}))
	if err != nil {
		t.Fatalf("after %d runs: %v", res.Runs, err)
	}
	if res.Truncated {
		t.Fatalf("truncated at %d runs", res.Runs)
	}
	t.Logf("verified %d schedules", res.Runs)
}

func TestConcurrentUpdatesAllSchedulesOneShotAtomic(t *testing.T) {
	res, err := explore.Run(explore.Options{Depth: 5, MaxRuns: 400000},
		concurrentScenario(func(w *sim.World, i int) harness.Object {
			o := la.NewOneShotAtomic(w.Runtime(i))
			w.SetHandler(i, o)
			return o
		}))
	if err != nil {
		t.Fatalf("after %d runs: %v", res.Runs, err)
	}
	if res.Truncated {
		t.Fatalf("truncated at %d runs", res.Runs)
	}
	t.Logf("verified %d schedules", res.Runs)
}

// crashScenario: like the update-then-scan scenario, but one node's crash
// is an explorable event — its position in the schedule (including
// whether it interrupts the update's quorum gathering) is part of the
// search space. n=5/f=2 keeps a quorum alive.
func crashScenario() func(s sim.Sequencer) error {
	return func(s sim.Sequencer) error {
		const n, f = 5, 2
		w := sim.New(sim.Config{N: n, F: f, Seed: 1, Sequencer: s})
		objs := make([]harness.Object, n)
		for i := 0; i < n; i++ {
			nd := eqaso.New(w.Runtime(i))
			w.SetHandler(i, nd)
			objs[i] = nd
		}
		// The crash is a scheduled (non-message) event: the sequencer
		// decides when it fires relative to everything else.
		w.CrashAt(1, 1)
		rec := history.NewRecorder(n)
		var updDone bool
		w.GoNode("u0", 0, func(p *sim.Proc) {
			pend := rec.BeginUpdate(0, "a", w.Now())
			if err := objs[0].Update([]byte("a")); err != nil {
				return
			}
			pend.End(w.Now())
			updDone = true
		})
		w.GoNode("s4", 4, func(p *sim.Proc) {
			if err := p.WaitUntilGlobal("update done", func() bool { return updDone }); err != nil {
				return
			}
			if err := p.Sleep(1); err != nil {
				return
			}
			pend := rec.BeginScan(4, w.Now())
			snap, err := objs[4].Scan()
			if err != nil {
				return
			}
			pend.EndScan(harness.SnapStrings(snap), w.Now())
		})
		if err := w.Run(); err != nil {
			return fmt.Errorf("run: %w", err)
		}
		if rep := rec.History().CheckLinearizable(); !rep.OK {
			return fmt.Errorf("%s", rep.Violations[0])
		}
		return nil
	}
}

func TestCrashTimingAllSchedules(t *testing.T) {
	res, err := explore.Run(explore.Options{Depth: 4, MaxRuns: 400000}, crashScenario())
	if err != nil {
		t.Fatalf("after %d runs: %v", res.Runs, err)
	}
	if res.Truncated {
		t.Fatalf("truncated at %d runs", res.Runs)
	}
	t.Logf("verified %d schedules (crash position explored)", res.Runs)
}
