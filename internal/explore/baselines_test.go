package explore_test

import (
	"testing"

	"mpsnap/internal/baseline/delporte"
	"mpsnap/internal/baseline/laaso"
	"mpsnap/internal/baseline/storecollect"
	"mpsnap/internal/explore"
	"mpsnap/internal/harness"
	"mpsnap/internal/sim"
)

// TestBaselinesUnderExploration: the Table I baselines also survive
// bounded-exhaustive schedule exploration of the update-then-scan
// scenario — the same harness that catches the warm-up sketch's gap.
func TestBaselinesUnderExploration(t *testing.T) {
	cases := []struct {
		name  string
		depth int
		mk    func(w *sim.World, i int) harness.Object
	}{
		{"delporte", 5, func(w *sim.World, i int) harness.Object {
			nd := delporte.New(w.Runtime(i))
			w.SetHandler(i, nd)
			return nd
		}},
		{"storecollect", 4, func(w *sim.World, i int) harness.Object {
			nd := storecollect.New(w.Runtime(i))
			w.SetHandler(i, nd)
			return nd
		}},
		{"laaso", 4, func(w *sim.World, i int) harness.Object {
			nd := laaso.New(w.Runtime(i))
			w.SetHandler(i, nd)
			return nd
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := explore.Run(explore.Options{Depth: tc.depth, MaxRuns: 300000},
				oneShotScenario(tc.mk))
			if err != nil {
				t.Fatalf("after %d runs: %v", res.Runs, err)
			}
			if res.Truncated {
				t.Fatalf("truncated at %d runs", res.Runs)
			}
			t.Logf("verified %d schedules at depth %d", res.Runs, tc.depth)
		})
	}
}
