package explore_test

import (
	"errors"
	"fmt"
	"testing"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/explore"
	"mpsnap/internal/harness"
	"mpsnap/internal/history"
	"mpsnap/internal/la"
	"mpsnap/internal/sim"
)

// oneShotScenario builds the canonical two-operation scenario: node 0
// updates; after the update completes, node 2 scans. A linearizable
// object must make the scan see the update under EVERY schedule.
func oneShotScenario(mk func(w *sim.World, i int) harness.Object) func(s sim.Sequencer) error {
	return func(s sim.Sequencer) error {
		const n, f = 3, 1
		w := sim.New(sim.Config{N: n, F: f, Seed: 1, Sequencer: s})
		objs := make([]harness.Object, n)
		for i := 0; i < n; i++ {
			objs[i] = mk(w, i)
		}
		rec := history.NewRecorder(n)
		var updDone bool
		w.GoNode("u0", 0, func(p *sim.Proc) {
			pend := rec.BeginUpdate(0, "a", w.Now())
			if err := objs[0].Update([]byte("a")); err != nil {
				return
			}
			pend.End(w.Now())
			updDone = true
		})
		w.GoNode("s2", 2, func(p *sim.Proc) {
			if err := p.WaitUntilGlobal("update done", func() bool { return updDone }); err != nil {
				return
			}
			// Advance the clock so the scan strictly follows the update
			// in real time (equal timestamps would make them concurrent
			// and mask violations).
			if err := p.Sleep(1); err != nil {
				return
			}
			pend := rec.BeginScan(2, w.Now())
			snap, err := objs[2].Scan()
			if err != nil {
				return
			}
			pend.EndScan(harness.SnapStrings(snap), w.Now())
		})
		if err := w.Run(); err != nil {
			return fmt.Errorf("run: %w", err)
		}
		if rep := rec.History().CheckLinearizable(); !rep.OK {
			return fmt.Errorf("%s", rep.Violations[0])
		}
		return nil
	}
}

// TestSketchCounterexampleFound: the paper's one-shot warm-up sketch
// (Section III-C) guarantees only (A1); the explorer must find a schedule
// where a scan misses a completed update — the counterexample motivating
// the "typical quorum techniques" of Section III-B.
func TestSketchCounterexampleFound(t *testing.T) {
	res, err := explore.Run(explore.Options{Depth: 8, MaxRuns: 200000},
		oneShotScenario(func(w *sim.World, i int) harness.Object {
			o := la.NewOneShot(w.Runtime(i))
			w.SetHandler(i, o)
			return o
		}))
	var v *explore.Violation
	if !errors.As(err, &v) {
		t.Fatalf("expected a violation, got err=%v after %d runs", err, res.Runs)
	}
	t.Logf("counterexample schedule %v found after %d runs: %v", v.Schedule, res.Runs, v.Err)

	// The violation must replay deterministically.
	replay := oneShotScenario(func(w *sim.World, i int) harness.Object {
		o := la.NewOneShot(w.Runtime(i))
		w.SetHandler(i, o)
		return o
	})
	if err := replay(explore.Replay(v.Schedule)); err == nil {
		t.Fatal("violating schedule did not replay")
	}
}

// TestOneShotAtomicSurvivesAllSchedules: with the quorum collect round
// added, every schedule of the bounded tree is linearizable.
func TestOneShotAtomicSurvivesAllSchedules(t *testing.T) {
	res, err := explore.Run(explore.Options{Depth: 6, MaxRuns: 300000},
		oneShotScenario(func(w *sim.World, i int) harness.Object {
			o := la.NewOneShotAtomic(w.Runtime(i))
			w.SetHandler(i, o)
			return o
		}))
	if err != nil {
		t.Fatalf("after %d runs: %v", res.Runs, err)
	}
	if res.Truncated {
		t.Fatalf("search truncated at %d runs; raise MaxRuns", res.Runs)
	}
	if res.Runs < 100 {
		t.Fatalf("suspiciously small schedule tree: %d runs", res.Runs)
	}
	t.Logf("verified %d schedules", res.Runs)
}

// TestEQASOSurvivesAllSchedules: the full multi-shot EQ-ASO under the same
// bounded-exhaustive exploration.
func TestEQASOSurvivesAllSchedules(t *testing.T) {
	res, err := explore.Run(explore.Options{Depth: 5, MaxRuns: 300000},
		oneShotScenario(func(w *sim.World, i int) harness.Object {
			nd := eqaso.New(w.Runtime(i))
			w.SetHandler(i, nd)
			return nd
		}))
	if err != nil {
		t.Fatalf("after %d runs: %v", res.Runs, err)
	}
	if res.Truncated {
		t.Fatalf("search truncated at %d runs", res.Runs)
	}
	t.Logf("verified %d schedules", res.Runs)
}

// TestOdometerEnumeratesFullTree: with synthetic branching (width 2 at
// every one of the first 3 steps, then width 1), the explorer runs
// exactly 2^3 schedules.
func TestOdometerEnumeratesFullTree(t *testing.T) {
	var schedules [][]int
	res, err := explore.Run(explore.Options{Depth: 3, MaxRuns: 100}, func(s sim.Sequencer) error {
		eligible2 := []sim.EventInfo{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}
		eligible1 := []sim.EventInfo{{Src: 0, Dst: 1}}
		var trace []int
		for step := 0; step < 5; step++ {
			e := eligible1
			if step < 3 {
				e = eligible2
			}
			trace = append(trace, s.Next(e))
		}
		schedules = append(schedules, trace)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 8 {
		t.Fatalf("runs = %d, want 8", res.Runs)
	}
	seen := map[string]bool{}
	for _, tr := range schedules {
		key := fmt.Sprint(tr[:3])
		if seen[key] {
			t.Fatalf("schedule %v explored twice", tr)
		}
		seen[key] = true
		if tr[3] != 0 || tr[4] != 0 {
			t.Fatalf("beyond-depth choices must default to 0: %v", tr)
		}
	}
}
