package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"mpsnap/internal/rt"
)

// Event categories for Event.Cat.
const (
	CatOp  = "op"  // operation lifecycle (from rt.OpEvent)
	CatMsg = "msg" // message lifecycle (from rt.MsgEvent)
	CatSys = "sys" // system/chaos events (crash, partition, heal, ...)
)

// Event is one trace record. It is the union of the three categories;
// unused fields are omitted from the JSON encoding, so a JSONL dump stays
// compact and diff-friendly.
type Event struct {
	// Seq is the trace-global sequence number (assigned by Trace in
	// arrival order; ties in T are broken by Seq).
	Seq uint64 `json:"seq"`
	// T is the event time in ticks.
	T rt.Ticks `json:"t"`
	// Cat is CatOp, CatMsg, or CatSys.
	Cat string `json:"cat"`

	// Op-category fields (see rt.OpEvent).
	Node  int      `json:"node,omitempty"`
	ID    int64    `json:"id,omitempty"`
	Op    string   `json:"op,omitempty"`
	Phase string   `json:"phase,omitempty"`
	Dur   rt.Ticks `json:"dur,omitempty"`
	Err   bool     `json:"err,omitempty"`

	// Msg-category fields (see rt.MsgEvent). Src/Dst also carry the
	// affected node(s) of sys events.
	Event string `json:"event,omitempty"`
	Src   int    `json:"src,omitempty"`
	Dst   int    `json:"dst,omitempty"`
	Kind  string `json:"kind,omitempty"`

	// Detail is free-form context for sys events ("partition {0,1}|{2,3}").
	Detail string `json:"detail,omitempty"`
}

// Trace is a fixed-capacity ring buffer of Events. When full, the oldest
// events are overwritten; Dropped reports how many were lost. It is safe
// for concurrent writers and implements rt.Observer, so it can be
// installed directly on a backend (alone or via Multi alongside Metrics).
type Trace struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever appended
}

var _ rt.Observer = (*Trace)(nil)

// NewTrace creates a trace holding the most recent cap events (min 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// append assigns the sequence number and stores e, evicting the oldest
// event when the ring is full.
func (t *Trace) append(e Event) {
	t.mu.Lock()
	e.Seq = t.n
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.n%uint64(cap(t.buf))] = e
	}
	t.n++
	t.mu.Unlock()
}

// OnOp records an operation event (rt.Observer).
func (t *Trace) OnOp(e rt.OpEvent) {
	t.append(Event{
		T: e.T, Cat: CatOp,
		Node: e.Node, ID: e.ID, Op: e.Op, Phase: e.Phase, Dur: e.Dur, Err: e.Err,
	})
}

// OnMsg records a message event (rt.Observer).
func (t *Trace) OnMsg(e rt.MsgEvent) {
	t.append(Event{
		T: e.T, Cat: CatMsg,
		Event: e.Event, Src: e.Src, Dst: e.Dst, Kind: e.Kind,
	})
}

// Sys records a system/chaos event ("crash", "partition", "heal",
// "corrupt", "drop", "hold") affecting nodes src->dst (use the same node
// twice, or -1, when only one or neither side applies).
func (t *Trace) Sys(at rt.Ticks, event string, src, dst int, detail string) {
	t.append(Event{T: at, Cat: CatSys, Event: event, Src: src, Dst: dst, Detail: detail})
}

// Events returns the buffered events oldest-first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	head := int(t.n % uint64(cap(t.buf)))
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// Len returns the number of buffered events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events were evicted by ring wraparound.
func (t *Trace) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n - uint64(len(t.buf))
}

// WriteJSONL writes the buffered events oldest-first, one JSON object per
// line. The encoding is deterministic (struct field order), so two runs
// with the same seed produce byte-identical dumps.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpJSONL writes the trace to path (creating parent-less path as a
// plain file), returning the path for inclusion in failure reports.
func (t *Trace) DumpJSONL(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace dump: %w", err)
	}
	if err := t.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: trace dump: %w", err)
	}
	return nil
}
