package obs

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"mpsnap/internal/rt"
)

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Sys(rt.Ticks(i), "crash", i, -1, "")
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("len: got %d want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped: got %d want 6", got)
	}
	ev := tr.Events()
	for i, e := range ev {
		wantSeq := uint64(6 + i) // oldest surviving event is #6
		if e.Seq != wantSeq || e.T != rt.Ticks(6+i) {
			t.Errorf("event %d: seq=%d t=%d, want seq=%d t=%d", i, e.Seq, e.T, wantSeq, 6+i)
		}
	}
}

func TestTraceUnderCapacity(t *testing.T) {
	tr := NewTrace(8)
	tr.OnOp(rt.OpEvent{T: 1, Node: 2, ID: 7, Op: "scan", Phase: rt.PhaseStart})
	tr.OnMsg(rt.MsgEvent{T: 2, Event: rt.MsgSend, Src: 0, Dst: 1, Kind: "value"})
	if tr.Dropped() != 0 {
		t.Fatalf("dropped: got %d want 0", tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("len: got %d want 2", len(ev))
	}
	if ev[0].Cat != CatOp || ev[0].Op != "scan" || ev[0].Node != 2 || ev[0].ID != 7 {
		t.Errorf("op event mangled: %+v", ev[0])
	}
	if ev[1].Cat != CatMsg || ev[1].Event != rt.MsgSend || ev[1].Kind != "value" {
		t.Errorf("msg event mangled: %+v", ev[1])
	}
}

// TestTraceConcurrentWriters exercises the ring under -race: many
// goroutines appending through all three entry points while a reader
// snapshots.
func TestTraceConcurrentWriters(t *testing.T) {
	tr := NewTrace(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				switch i % 3 {
				case 0:
					tr.OnOp(rt.OpEvent{T: rt.Ticks(i), Node: w, Op: "update", Phase: rt.PhaseEnd, Dur: 1})
				case 1:
					tr.OnMsg(rt.MsgEvent{T: rt.Ticks(i), Event: rt.MsgDeliver, Src: w, Dst: 0, Kind: "k"})
				default:
					tr.Sys(rt.Ticks(i), "heal", w, -1, "")
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Events()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if total := tr.Dropped() + uint64(tr.Len()); total != workers*per {
		t.Fatalf("total events: got %d want %d", total, workers*per)
	}
	// Seq numbers in the buffer must be the most recent contiguous run.
	ev := tr.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d after %d", i, ev[i].Seq, ev[i-1].Seq)
		}
	}
}

func TestTraceWriteJSONLDeterministic(t *testing.T) {
	mk := func() *Trace {
		tr := NewTrace(8)
		tr.OnOp(rt.OpEvent{T: 5, Node: 1, ID: 3, Op: "scan", Phase: rt.PhaseEnd, Dur: 1200})
		tr.Sys(7, "partition", 0, 2, "{0,1}|{2,3}")
		tr.OnMsg(rt.MsgEvent{T: 9, Event: rt.MsgCorrupt, Src: 2, Dst: -1, Kind: ""})
		return tr
	}
	var a, b bytes.Buffer
	if err := mk().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if lines := bytes.Count(a.Bytes(), []byte("\n")); lines != 3 {
		t.Fatalf("lines: got %d want 3", lines)
	}
}

func TestTraceDumpJSONL(t *testing.T) {
	tr := NewTrace(4)
	tr.Sys(1, "crash", 3, -1, "")
	path := t.TempDir() + "/trace.jsonl"
	if err := tr.DumpJSONL(path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, buf.Bytes()) {
		t.Fatalf("dump differs from WriteJSONL:\n%s\nvs\n%s", onDisk, buf.String())
	}
	if buf.Len() == 0 {
		t.Fatal("empty dump")
	}
}
