// Package obs is the zero-dependency observability layer: fixed-bucket
// latency histograms, per-kind message counters, and a ring-buffer
// structured event trace, all fed through the rt.Observer interface that
// the simulator and the real transports expose.
//
// Units: every histogram carries the unit its values are recorded in.
// On the simulator latencies are recorded in units of D (virtual time,
// rt.Ticks.DUnits); on the chan/TCP backends they are recorded in
// wall-clock microseconds. The unit is part of the metric name in the
// Prometheus exposition (mpsnap_op_latency_d vs mpsnap_op_latency_us),
// so the two can never be confused or aggregated across backends.
package obs

import (
	"fmt"
	"math"
	"sync"
)

// histShards is the number of independently locked histogram shards.
// Writers hash to a shard, so concurrent recorders rarely contend; reads
// (Snapshot) sum across shards.
const histShards = 8

// DefaultDBuckets are histogram bounds for latencies in units of D:
// fine-grained around the O(D) amortized region, geometric past it so the
// √k·D worst cases land in resolvable buckets.
func DefaultDBuckets() []float64 {
	return []float64{
		0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3, 4, 5, 6, 8, 10,
		12, 16, 20, 24, 32, 48, 64, 96, 128, 192, 256,
	}
}

// DefaultMicrosBuckets are histogram bounds for wall-clock latencies in
// microseconds (50µs .. 10s, roughly geometric).
func DefaultMicrosBuckets() []float64 {
	return []float64{
		50, 100, 250, 500, 1000, 2500, 5000, 10_000, 25_000, 50_000,
		100_000, 250_000, 500_000, 1e6, 2.5e6, 5e6, 1e7,
	}
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// recording: values hash to one of histShards independently locked
// shards, so the hot path takes one uncontended mutex and touches one
// cache line's worth of counters. Values must be >= 0.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf implicit
	shards [histShards]histShard
}

type histShard struct {
	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    float64
	max    float64
}

// NewHistogram creates a histogram with the given strictly increasing
// bucket upper bounds (an overflow bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing at %d: %g <= %g",
				i, bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	for i := range h.shards {
		h.shards[i].counts = make([]uint64, len(bounds)+1)
	}
	return h
}

// Observe records one value (>= 0; negative values are clamped to 0).
func (h *Histogram) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	// Cheap multiplicative hash of the value bits spreads concurrent
	// recorders over the shards deterministically.
	s := &h.shards[(math.Float64bits(v)*0x9E3779B97F4A7C15)>>61%histShards]
	b := h.bucketOf(v)
	s.mu.Lock()
	s.counts[b]++
	s.count++
	s.sum += v
	if v > s.max {
		s.max = v
	}
	s.mu.Unlock()
}

// bucketOf returns the index of the first bucket whose bound is >= v
// (binary search; the overflow bucket is len(bounds)).
func (h *Histogram) bucketOf(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// HistSnap is a consistent point-in-time copy of a histogram.
type HistSnap struct {
	// Bounds are the bucket upper bounds (the overflow bucket is
	// implicit: Counts has one more entry than Bounds).
	Bounds []float64 `json:"bounds"`
	// Counts are per-bucket (non-cumulative) observation counts.
	Counts []uint64 `json:"counts"`
	// Count/Sum/Max summarize all observations.
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
}

// Snapshot sums the shards into one consistent-enough view (each shard is
// copied atomically; cross-shard skew is bounded by in-flight Observes).
func (h *Histogram) Snapshot() HistSnap {
	s := HistSnap{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		for b, c := range sh.counts {
			s.Counts[b] += c
		}
		s.Count += sh.count
		s.Sum += sh.sum
		if sh.max > s.Max {
			s.Max = sh.max
		}
		sh.mu.Unlock()
	}
	return s
}

// Merge combines two snapshots with identical bounds (e.g. the same op's
// histogram from every node of a cluster).
func (s HistSnap) Merge(o HistSnap) (HistSnap, error) {
	if len(s.Bounds) != len(o.Bounds) {
		return HistSnap{}, fmt.Errorf("obs: merge of mismatched histograms (%d vs %d buckets)", len(s.Bounds), len(o.Bounds))
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			return HistSnap{}, fmt.Errorf("obs: merge of mismatched histograms (bound %d: %g vs %g)", i, s.Bounds[i], o.Bounds[i])
		}
	}
	out := HistSnap{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Max:    math.Max(s.Max, o.Max),
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out, nil
}

// Mean returns the average observed value (0 when empty).
func (s HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the containing bucket. Values in the overflow bucket report Max.
// Returns 0 when the histogram is empty.
func (s HistSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c < target {
			cum += c
			continue
		}
		if b == len(s.Bounds) {
			return s.Max // overflow bucket
		}
		lower := 0.0
		if b > 0 {
			lower = s.Bounds[b-1]
		}
		upper := s.Bounds[b]
		// Position of the target rank within this bucket.
		frac := float64(target-cum) / float64(c)
		v := lower + (upper-lower)*frac
		return math.Min(v, s.Max)
	}
	return s.Max
}

// Summary returns the p50/p90/p99/max digest used by reports.
func (s HistSnap) Summary() (p50, p90, p99, max float64) {
	return s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Max
}
