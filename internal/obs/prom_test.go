package obs

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"

	"mpsnap/internal/rt"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// promFixture builds a small, fully deterministic metrics population.
func promFixture() Snap {
	m := &Metrics{
		Unit:   "d",
		bounds: []float64{0.5, 1, 2, 4},
		toUnit: func(t rt.Ticks) float64 { return t.DUnits() },
	}
	for _, d := range []rt.Ticks{400, 900, 1100, 2500, 9000} {
		m.OnOp(rt.OpEvent{Op: "scan", Phase: rt.PhaseEnd, Dur: d})
	}
	for _, d := range []rt.Ticks{700, 1800} {
		m.OnOp(rt.OpEvent{Op: "update", Phase: rt.PhaseEnd, Dur: d})
	}
	m.OnOp(rt.OpEvent{Op: "update", Phase: rt.PhaseEnd, Dur: 50_000, Err: true})
	for i := 0; i < 12; i++ {
		m.OnMsg(rt.MsgEvent{Event: rt.MsgSend, Kind: "value", Bytes: 24})
	}
	for i := 0; i < 11; i++ {
		m.OnMsg(rt.MsgEvent{Event: rt.MsgDeliver, Kind: "value", Bytes: 24})
	}
	m.OnMsg(rt.MsgEvent{Event: rt.MsgDrop, Kind: "value", Bytes: 24})
	m.OnMsg(rt.MsgEvent{Event: rt.MsgCorrupt, Kind: ""})
	return m.Snapshot()
}

func TestWritePrometheusGolden(t *testing.T) {
	got := PrometheusString(promFixture())
	const path = "testdata/metrics.prom"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	a := PrometheusString(promFixture())
	b := PrometheusString(promFixture())
	if a != b {
		t.Fatalf("exposition not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestWritePrometheusEmpty(t *testing.T) {
	if out := PrometheusString(Snap{Unit: "d"}); out != "" {
		t.Fatalf("empty snapshot should render nothing, got:\n%s", out)
	}
}

func TestWritePrometheusWallUnit(t *testing.T) {
	m := NewWallMetrics(2 * time.Millisecond)
	m.OnOp(rt.OpEvent{Op: "scan", Phase: rt.PhaseEnd, Dur: rt.TicksPerD})
	out := PrometheusString(m.Snapshot())
	for _, want := range []string{
		"mpsnap_op_latency_us_bucket{op=\"scan\",le=\"+Inf\"} 1",
		"mpsnap_op_latency_us_count{op=\"scan\"} 1",
		"wall-clock microseconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
