package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic: ops and
// counter keys are already sorted in the snapshot, buckets are emitted
// cumulative in bound order with a final +Inf bucket, and floats use the
// shortest round-trip encoding.
//
// Metric names embed the latency unit so sim (units of D) and wall-clock
// (µs) deployments can never be confused:
//
//	mpsnap_op_latency_<unit>_bucket{op="scan",le="1.5"}  cumulative count
//	mpsnap_op_latency_<unit>_sum{op="scan"}              sum of latencies
//	mpsnap_op_latency_<unit>_count{op="scan"}            completions
//	mpsnap_op_failed_total{op="scan"}                    Err completions
//	mpsnap_messages_total{event="send",kind="value"}     per-kind counters
//	mpsnap_message_bytes_total{event="send",kind="value"} per-kind bytes
func WritePrometheus(w io.Writer, s Snap) error {
	bw := &promWriter{w: w}
	if len(s.Ops) > 0 {
		name := "mpsnap_op_latency_" + s.Unit
		unitHelp := "units of D (virtual time)"
		if s.Unit == "us" {
			unitHelp = "wall-clock microseconds"
		}
		bw.printf("# HELP %s Operation latency in %s.\n", name, unitHelp)
		bw.printf("# TYPE %s histogram\n", name)
		for _, op := range s.Ops {
			var cum uint64
			for i, bound := range op.Hist.Bounds {
				cum += op.Hist.Counts[i]
				bw.printf("%s_bucket{op=%q,le=\"%s\"} %d\n", name, op.Op, formatFloat(bound), cum)
			}
			cum += op.Hist.Counts[len(op.Hist.Bounds)]
			bw.printf("%s_bucket{op=%q,le=\"+Inf\"} %d\n", name, op.Op, cum)
			bw.printf("%s_sum{op=%q} %s\n", name, op.Op, formatFloat(op.Hist.Sum))
			bw.printf("%s_count{op=%q} %d\n", name, op.Op, op.Hist.Count)
		}
		failed := false
		for _, op := range s.Ops {
			if op.Failed > 0 {
				failed = true
				break
			}
		}
		if failed {
			bw.printf("# HELP mpsnap_op_failed_total Operations that ended in error (node crashed mid-op).\n")
			bw.printf("# TYPE mpsnap_op_failed_total counter\n")
			for _, op := range s.Ops {
				if op.Failed > 0 {
					bw.printf("mpsnap_op_failed_total{op=%q} %d\n", op.Op, op.Failed)
				}
			}
		}
	}
	if len(s.Msgs) > 0 {
		bw.printf("# HELP mpsnap_messages_total Message lifecycle events per kind.\n")
		bw.printf("# TYPE mpsnap_messages_total counter\n")
		for _, m := range s.Msgs {
			bw.printf("mpsnap_messages_total{event=%q,kind=%q} %d\n", m.Event, m.Kind, m.Count)
		}
		sized := false
		for _, m := range s.Msgs {
			if m.Bytes > 0 {
				sized = true
				break
			}
		}
		if sized {
			bw.printf("# HELP mpsnap_message_bytes_total Encoded payload bytes per message lifecycle event and kind.\n")
			bw.printf("# TYPE mpsnap_message_bytes_total counter\n")
			for _, m := range s.Msgs {
				if m.Bytes > 0 {
					bw.printf("mpsnap_message_bytes_total{event=%q,kind=%q} %d\n", m.Event, m.Kind, m.Bytes)
				}
			}
		}
	}
	return bw.err
}

// PrometheusString is WritePrometheus into a string (tests, debugging).
func PrometheusString(s Snap) string {
	var b strings.Builder
	_ = WritePrometheus(&b, s)
	return b.String()
}

// formatFloat is the shortest exact decimal encoding (matches what the
// Prometheus client library emits for bucket bounds).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promWriter latches the first write error so the emit loop stays linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}
