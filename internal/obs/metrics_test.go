package obs

import (
	"sync"
	"testing"
	"time"

	"mpsnap/internal/rt"
)

func TestSimMetricsRecordsDUnits(t *testing.T) {
	m := NewSimMetrics()
	// A 1.5·D update and a 3·D update.
	m.OnOp(rt.OpEvent{Op: "update", Phase: rt.PhaseStart})
	m.OnOp(rt.OpEvent{Op: "update", Phase: rt.PhaseEnd, Dur: 3 * rt.TicksPerD / 2})
	m.OnOp(rt.OpEvent{Op: "update", Phase: rt.PhaseEnd, Dur: 3 * rt.TicksPerD})
	s := m.Op("update")
	if s.Count != 2 {
		t.Fatalf("count: got %d want 2", s.Count)
	}
	if s.Max != 3 {
		t.Fatalf("max: got %g want 3 (D-units)", s.Max)
	}
	if s.Sum != 4.5 {
		t.Fatalf("sum: got %g want 4.5", s.Sum)
	}
	// Phase events other than end must not be recorded.
	m.OnOp(rt.OpEvent{Op: "update", Phase: "eqWait"})
	if got := m.Op("update").Count; got != 2 {
		t.Fatalf("phase event was recorded: count %d", got)
	}
}

func TestWallMetricsRecordsMicros(t *testing.T) {
	m := NewWallMetrics(10 * time.Millisecond)                            // 1 tick = 10µs
	m.OnOp(rt.OpEvent{Op: "scan", Phase: rt.PhaseEnd, Dur: rt.TicksPerD}) // 1·D = 10ms
	s := m.Op("scan")
	if s.Max != 10_000 {
		t.Fatalf("max: got %gµs want 10000µs", s.Max)
	}
	if m.Unit != "us" {
		t.Fatalf("unit: got %q", m.Unit)
	}
}

func TestMetricsErrCompletions(t *testing.T) {
	m := NewSimMetrics()
	m.OnOp(rt.OpEvent{Op: "scan", Phase: rt.PhaseEnd, Dur: rt.TicksPerD})
	m.OnOp(rt.OpEvent{Op: "scan", Phase: rt.PhaseEnd, Dur: 99 * rt.TicksPerD, Err: true})
	s := m.Snapshot()
	if len(s.Ops) != 1 {
		t.Fatalf("ops: got %d", len(s.Ops))
	}
	// Errored ops are counted as failures, not latencies.
	if s.Ops[0].Hist.Count != 1 || s.Ops[0].Failed != 1 {
		t.Fatalf("got count=%d failed=%d, want 1/1", s.Ops[0].Hist.Count, s.Ops[0].Failed)
	}
}

func TestMetricsMsgCounters(t *testing.T) {
	m := NewSimMetrics()
	for i := 0; i < 3; i++ {
		m.OnMsg(rt.MsgEvent{Event: rt.MsgSend, Kind: "value", Bytes: 10})
	}
	m.OnMsg(rt.MsgEvent{Event: rt.MsgDeliver, Kind: "value", Bytes: 10})
	m.OnMsg(rt.MsgEvent{Event: rt.MsgCorrupt, Kind: ""})
	s := m.Snapshot()
	want := []MsgSnap{
		{Event: rt.MsgCorrupt, Kind: "", Count: 1},
		{Event: rt.MsgDeliver, Kind: "value", Count: 1, Bytes: 10},
		{Event: rt.MsgSend, Kind: "value", Count: 3, Bytes: 30},
	}
	if len(s.Msgs) != len(want) {
		t.Fatalf("msgs: got %v", s.Msgs)
	}
	for i, w := range want {
		if s.Msgs[i] != w {
			t.Errorf("msg %d: got %+v want %+v", i, s.Msgs[i], w)
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewSimMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.OnOp(rt.OpEvent{Op: "update", Phase: rt.PhaseEnd, Dur: rt.Ticks(i)})
				m.OnMsg(rt.MsgEvent{Event: rt.MsgSend, Kind: "k"})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = m.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := m.Snapshot()
	if s.Ops[0].Hist.Count != 4000 {
		t.Fatalf("op count: got %d want 4000", s.Ops[0].Hist.Count)
	}
	if s.Msgs[0].Count != 4000 {
		t.Fatalf("msg count: got %d want 4000", s.Msgs[0].Count)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewSimMetrics(), NewTrace(8)
	mo := Multi{a, b}
	mo.OnOp(rt.OpEvent{Op: "scan", Phase: rt.PhaseEnd, Dur: rt.TicksPerD})
	mo.OnMsg(rt.MsgEvent{Event: rt.MsgSend, Kind: "k"})
	if a.Op("scan").Count != 1 {
		t.Error("metrics missed the op")
	}
	if b.Len() != 2 {
		t.Errorf("trace len: got %d want 2", b.Len())
	}
}
