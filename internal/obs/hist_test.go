package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // upper bounds are inclusive
		{1.0001, 1}, {2, 1},
		{3, 2}, {4, 2},
		{4.0001, 3}, {100, 3}, // overflow bucket
		{-5, 0}, // clamped
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.Snapshot()
	wantCounts := make([]uint64, 4)
	for _, c := range cases {
		wantCounts[c.want]++
	}
	for i, want := range wantCounts {
		if snap.Counts[i] != want {
			t.Errorf("bucket %d: got %d want %d", i, snap.Counts[i], want)
		}
	}
	if snap.Count != uint64(len(cases)) {
		t.Errorf("count: got %d want %d", snap.Count, len(cases))
	}
	if snap.Max != 100 {
		t.Errorf("max: got %g want 100", snap.Max)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 values uniform in (0,1]: all land in the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); math.Abs(p50-0.5) > 0.02 {
		t.Errorf("p50: got %g want ~0.5", p50)
	}
	if p99 := s.Quantile(0.99); math.Abs(p99-0.99) > 0.02 {
		t.Errorf("p99: got %g want ~0.99", p99)
	}
	// Quantile never exceeds the observed max even with interpolation.
	if q := s.Quantile(1); q > s.Max {
		t.Errorf("q100 %g exceeds max %g", q, s.Max)
	}

	// Overflow values report Max.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	h2.Observe(70)
	if q := h2.Snapshot().Quantile(0.99); q != 70 {
		t.Errorf("overflow quantile: got %g want 70", q)
	}

	// Empty histogram.
	if q := NewHistogram([]float64{1}).Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty quantile: got %g want 0", q)
	}
}

func TestHistogramQuantileAcrossBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4})
	// One observation per bucket: ranks 1..4 at ~1,2,3,4.
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// p50 -> rank 2 -> second bucket (1,2], interpolated to its upper bound.
	if p50 := s.Quantile(0.5); p50 < 1 || p50 > 2 {
		t.Errorf("p50: got %g want in (1,2]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 3 || p99 > 3.5 {
		t.Errorf("p99: got %g want in (3,3.5]", p99)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(1.5)
	b.Observe(9)
	m, err := a.Snapshot().Merge(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 4 || m.Max != 9 {
		t.Errorf("merge: count=%d max=%g, want 4/9", m.Count, m.Max)
	}
	if got := []uint64{m.Counts[0], m.Counts[1], m.Counts[2]}; got[0] != 1 || got[1] != 2 || got[2] != 1 {
		t.Errorf("merge counts: got %v want [1 2 1]", got)
	}
	if math.Abs(m.Sum-12.5) > 1e-9 {
		t.Errorf("merge sum: got %g want 12.5", m.Sum)
	}

	c := NewHistogram([]float64{1, 3})
	if _, err := a.Snapshot().Merge(c.Snapshot()); err == nil {
		t.Error("merge of mismatched bounds should fail")
	}
	d := NewHistogram([]float64{1})
	if _, err := a.Snapshot().Merge(d.Snapshot()); err == nil {
		t.Error("merge of different bucket counts should fail")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram([]float64{10})
	if m := h.Snapshot().Mean(); m != 0 {
		t.Errorf("empty mean: got %g", m)
	}
	h.Observe(2)
	h.Observe(4)
	if m := h.Snapshot().Mean(); m != 3 {
		t.Errorf("mean: got %g want 3", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(DefaultDBuckets())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per+i) / 100)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count: got %d want %d", s.Count, workers*per)
	}
	var inBuckets uint64
	for _, c := range s.Counts {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Errorf("bucket sum %d != count %d", inBuckets, s.Count)
	}
}

func TestNewHistogramPanics(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
