package obs

import (
	"sort"
	"sync"
	"time"

	"mpsnap/internal/rt"
)

// Metrics implements rt.Observer by recording operation latencies into
// per-op histograms and counting message lifecycle events per Kind.
// Phase events and op starts are counted but not timed (the trace is the
// tool for phase-level timing); PhaseEnd events feed the histograms.
type Metrics struct {
	// Unit names the latency unit: "d" (units of D, sim backend) or
	// "us" (wall-clock microseconds, chan/TCP backends).
	Unit string

	bounds []float64
	toUnit func(rt.Ticks) float64

	mu    sync.Mutex
	ops   map[string]*Histogram // op name -> latency histogram
	fails map[string]uint64     // op name -> failed (Err) completions

	msgMu sync.Mutex
	msgs  map[msgKey]*msgCounter
}

type msgKey struct {
	event string // rt.MsgSend / MsgDeliver / MsgDrop / MsgCorrupt
	kind  string
}

// msgCounter accumulates one (lifecycle, kind) cell: how many events and
// how many encoded payload bytes they carried.
type msgCounter struct {
	count uint64
	bytes uint64
}

var _ rt.Observer = (*Metrics)(nil)

// NewSimMetrics builds Metrics for the simulator backend: latencies are
// recorded in units of D (virtual time) with the default D-bucket bounds.
func NewSimMetrics() *Metrics {
	return &Metrics{
		Unit:   "d",
		bounds: DefaultDBuckets(),
		toUnit: func(t rt.Ticks) float64 { return t.DUnits() },
	}
}

// NewWallMetrics builds Metrics for a wall-clock backend configured with
// maximum message delay d: tick durations (which those backends derive
// from wall time as elapsed·TicksPerD/d) convert back to microseconds.
func NewWallMetrics(d time.Duration) *Metrics {
	usPerTick := float64(d.Microseconds()) / float64(rt.TicksPerD)
	return &Metrics{
		Unit:   "us",
		bounds: DefaultMicrosBuckets(),
		toUnit: func(t rt.Ticks) float64 { return float64(t) * usPerTick },
	}
}

// OnOp records PhaseEnd latencies; other phases are ignored here.
func (m *Metrics) OnOp(e rt.OpEvent) {
	if e.Phase != rt.PhaseEnd {
		return
	}
	m.mu.Lock()
	if m.ops == nil {
		m.ops = make(map[string]*Histogram)
		m.fails = make(map[string]uint64)
	}
	h := m.ops[e.Op]
	if h == nil {
		h = NewHistogram(m.bounds)
		m.ops[e.Op] = h
	}
	if e.Err {
		m.fails[e.Op]++
	}
	m.mu.Unlock()
	if !e.Err {
		h.Observe(m.toUnit(e.Dur))
	}
}

// OnMsg counts the event and its encoded payload bytes per (lifecycle,
// kind).
func (m *Metrics) OnMsg(e rt.MsgEvent) {
	k := msgKey{event: e.Event, kind: e.Kind}
	m.msgMu.Lock()
	if m.msgs == nil {
		m.msgs = make(map[msgKey]*msgCounter)
	}
	c := m.msgs[k]
	if c == nil {
		c = &msgCounter{}
		m.msgs[k] = c
	}
	c.count++
	c.bytes += uint64(e.Bytes)
	m.msgMu.Unlock()
}

// OpSnap is the snapshot of one operation's latency distribution.
type OpSnap struct {
	Op     string   `json:"op"`
	Unit   string   `json:"unit"`
	Hist   HistSnap `json:"hist"`
	Failed uint64   `json:"failed,omitempty"`
}

// MsgSnap is one (lifecycle event, kind) counter: event count and total
// encoded payload bytes (0 when the backend could not size the messages).
type MsgSnap struct {
	Event string `json:"event"`
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
	Bytes uint64 `json:"bytes,omitempty"`
}

// Snap is a consistent point-in-time copy of all metrics.
type Snap struct {
	Unit string    `json:"unit"`
	Ops  []OpSnap  `json:"ops"`
	Msgs []MsgSnap `json:"msgs"`
}

// Snapshot copies every histogram and counter, sorted by name so output
// is deterministic.
func (m *Metrics) Snapshot() Snap {
	s := Snap{Unit: m.Unit}
	m.mu.Lock()
	names := make([]string, 0, len(m.ops))
	for op := range m.ops {
		names = append(names, op)
	}
	sort.Strings(names)
	hists := make([]*Histogram, len(names))
	for i, op := range names {
		hists[i] = m.ops[op]
	}
	fails := make([]uint64, len(names))
	for i, op := range names {
		fails[i] = m.fails[op]
	}
	m.mu.Unlock()
	for i, op := range names {
		s.Ops = append(s.Ops, OpSnap{Op: op, Unit: m.Unit, Hist: hists[i].Snapshot(), Failed: fails[i]})
	}
	m.msgMu.Lock()
	keys := make([]msgKey, 0, len(m.msgs))
	for k := range m.msgs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].event != keys[j].event {
			return keys[i].event < keys[j].event
		}
		return keys[i].kind < keys[j].kind
	})
	for _, k := range keys {
		c := m.msgs[k]
		s.Msgs = append(s.Msgs, MsgSnap{Event: k.event, Kind: k.kind, Count: c.count, Bytes: c.bytes})
	}
	m.msgMu.Unlock()
	return s
}

// Op returns the snapshot of a single op's histogram (zero value when the
// op was never completed).
func (m *Metrics) Op(op string) HistSnap {
	m.mu.Lock()
	h := m.ops[op]
	m.mu.Unlock()
	if h == nil {
		return HistSnap{}
	}
	return h.Snapshot()
}

// Multi fans every event out to each observer in order. Use it to run a
// Metrics and a Trace off the same backend hook.
type Multi []rt.Observer

var _ rt.Observer = Multi(nil)

// OnOp forwards to every observer.
func (m Multi) OnOp(e rt.OpEvent) {
	for _, o := range m {
		o.OnOp(e)
	}
}

// OnMsg forwards to every observer.
func (m Multi) OnMsg(e rt.MsgEvent) {
	for _, o := range m {
		o.OnMsg(e)
	}
}
