package rt

import "testing"

type msg struct{}

func (msg) Kind() string { return "m" }

func TestHandlerFunc(t *testing.T) {
	var gotSrc int
	var gotMsg Message
	h := HandlerFunc(func(src int, m Message) { gotSrc, gotMsg = src, m })
	h.HandleMessage(7, msg{})
	if gotSrc != 7 || gotMsg == nil {
		t.Fatalf("handler func: src=%d msg=%v", gotSrc, gotMsg)
	}
}

func TestDUnits(t *testing.T) {
	if got := (2 * TicksPerD).DUnits(); got != 2.0 {
		t.Fatalf("2D = %f", got)
	}
	if got := (TicksPerD / 2).DUnits(); got != 0.5 {
		t.Fatalf("0.5D = %f", got)
	}
	if got := Ticks(0).DUnits(); got != 0 {
		t.Fatalf("0D = %f", got)
	}
}

// fakeRuntime exercises the WaitUntil helper.
type fakeRuntime struct {
	ranThen bool
}

func (f *fakeRuntime) ID() int                 { return 0 }
func (f *fakeRuntime) N() int                  { return 1 }
func (f *fakeRuntime) F() int                  { return 0 }
func (f *fakeRuntime) Send(dst int, m Message) {}
func (f *fakeRuntime) Broadcast(m Message)     {}
func (f *fakeRuntime) Atomic(fn func())        { fn() }
func (f *fakeRuntime) Now() Ticks              { return 0 }
func (f *fakeRuntime) Crashed() bool           { return false }
func (f *fakeRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	for !pred() {
	}
	then()
	f.ranThen = true
	return nil
}

func TestWaitUntilHelper(t *testing.T) {
	f := &fakeRuntime{}
	if err := WaitUntil(f, "x", func() bool { return true }); err != nil {
		t.Fatal(err)
	}
	if !f.ranThen {
		t.Fatal("WaitUntil must call WaitUntilThen")
	}
}

func TestErrCrashed(t *testing.T) {
	if ErrCrashed.Error() == "" {
		t.Fatal("ErrCrashed must have a message")
	}
}
