// Package rt defines the abstract node runtime that every algorithm in this
// repository is written against.
//
// The model mirrors the paper's system model (Section II-A): each node has
// one server thread that handles incoming messages atomically, and one
// sequential client thread that invokes operations. Operations alternate
// between sending messages and blocking on local predicates ("wait until"
// in the pseudocode). The same algorithm code runs unchanged on the
// deterministic virtual-time simulator (internal/sim) and on the real-time
// transports (internal/transport).
package rt

import "errors"

// Ticks is a point in (or duration of) virtual time. Real-time runtimes
// convert wall-clock durations into ticks using their configured D.
type Ticks int64

// TicksPerD is the number of virtual-time ticks that make up one maximum
// message delay D. All experiment output is reported in units of D.
const TicksPerD Ticks = 1000

// DUnits converts a tick count into (fractional) units of D.
func (t Ticks) DUnits() float64 { return float64(t) / float64(TicksPerD) }

// ErrCrashed is returned from a blocking wait when the local node has
// crashed. Operations must propagate it; the operation is considered to
// have no response event.
var ErrCrashed = errors.New("rt: node crashed")

// Message is a protocol message. Concrete message types live next to the
// algorithm that owns them and must be registered with internal/wire
// (a stable tag plus Encode/Decode) to cross a transport or the
// simulator's copy-through mode.
type Message interface {
	// Kind returns a short stable name used for tracing, metrics, and
	// delay-model matching (e.g. "value", "writeTag", "goodLA").
	Kind() string
}

// Handler is the server thread of a node: it processes one message at a
// time. The runtime guarantees that HandleMessage executions are atomic
// with respect to each other and to Atomic/WaitUntilThen critical sections
// on the same node. Handlers must not block; they may mutate node state and
// send messages.
type Handler interface {
	HandleMessage(src int, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(src int, msg Message)

// HandleMessage calls f(src, msg).
func (f HandlerFunc) HandleMessage(src int, msg Message) { f(src, msg) }

// Runtime is the per-node execution environment handed to an algorithm.
//
// Channel semantics (Section II-A of the paper): point-to-point channels
// are reliable and FIFO. Once Send returns, delivery is guaranteed even if
// the sender subsequently crashes. Messages from a crashed node that were
// never sent are lost; a crashed node stops sending and handling.
type Runtime interface {
	// ID is this node's identifier in [0, N).
	ID() int
	// N is the total number of nodes.
	N() int
	// F is the resilience bound (maximum number of faulty nodes).
	F() int

	// Send transmits msg to dst over the reliable FIFO channel. It never
	// blocks; it may be called from handlers and from critical sections.
	Send(dst int, msg Message)
	// Broadcast sends msg to all nodes, including the sender itself.
	// It is equivalent to a loop of Sends and is NOT atomic with respect
	// to crashes: a node may crash partway through, reaching only a
	// prefix of the destinations (this is how failure chains form).
	Broadcast(msg Message)

	// Atomic runs fn mutually exclusive with the node's message handler
	// and any other critical section on this node.
	Atomic(fn func())

	// WaitUntilThen blocks the calling client thread until pred() holds,
	// then runs then() in the same critical section in which pred was
	// observed true. pred must be side-effect free; it is evaluated under
	// the node's atomicity guarantee. label is used for deadlock
	// diagnostics. Returns ErrCrashed if the node crashes before or
	// while waiting.
	WaitUntilThen(label string, pred func() bool, then func()) error

	// Now returns the current time in ticks (virtual time under the
	// simulator, scaled wall-clock time on real transports).
	Now() Ticks

	// Crashed reports whether this node has crashed.
	Crashed() bool
}

// WaitUntil blocks until pred() holds (see Runtime.WaitUntilThen).
func WaitUntil(r Runtime, label string, pred func() bool) error {
	return r.WaitUntilThen(label, pred, func() {})
}

// Op phase markers common to every operation event stream. Algorithm-
// specific phase names ("readTag", "eqWait", "borrow", ...) appear between
// a PhaseStart and a PhaseEnd of the same (Node, ID) pair.
const (
	PhaseStart = "start"
	PhaseEnd   = "end"
)

// OpEvent is one operation-lifecycle event: an UPDATE/SCAN starting,
// finishing, or crossing an internal protocol phase. Events of one
// operation share (Node, ID); IDs are per-node sequence numbers.
type OpEvent struct {
	// T is the event time in ticks (virtual on sim, scaled wall-clock on
	// real transports).
	T Ticks
	// Node is the node running the operation.
	Node int
	// ID is the per-node operation sequence number.
	ID int64
	// Op names the operation ("update", "scan", "svc.update", ...).
	Op string
	// Phase is PhaseStart, PhaseEnd, or a protocol phase name.
	Phase string
	// Dur is the operation latency in ticks (PhaseEnd events only).
	Dur Ticks
	// Err marks a failed operation (PhaseEnd events only; the node
	// crashed while the operation was in flight).
	Err bool
}

// Message lifecycle event names for MsgEvent.Event.
const (
	MsgSend    = "send"
	MsgDeliver = "deliver"
	MsgDrop    = "drop"
	MsgCorrupt = "corrupt"
)

// MsgEvent is one message-lifecycle event at a backend.
type MsgEvent struct {
	// T is the event time in ticks.
	T Ticks
	// Event is MsgSend, MsgDeliver, MsgDrop, or MsgCorrupt.
	Event string
	// Src and Dst are the channel endpoints (Dst is -1 when unknown,
	// e.g. a corrupt inbound frame that never identified its stream).
	Src, Dst int
	// Kind is the message kind ("" when the message never decoded).
	Kind string
	// Bytes is the encoded payload size (wire tag + body, excluding
	// framing). 0 when unknown: a frame that never decoded, or an
	// unmarshalable test-local message on an in-memory backend.
	Bytes int
}

// Observer receives runtime events: operation lifecycles from algorithms
// and message lifecycles from backends. Implementations must be safe for
// concurrent use (real transports call them from multiple goroutines) and
// must not block or re-enter the runtime — both methods are invoked on hot
// paths. internal/obs provides the standard implementations (latency
// histograms, per-kind message counters, and a ring-buffer event trace).
type Observer interface {
	OnOp(OpEvent)
	OnMsg(MsgEvent)
}
