package mux_test

import (
	"fmt"
	"strings"
	"testing"

	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/mux"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/sso"
)

// TestTwoObjectsOverOneCluster: an EQ-ASO and an SSO share the same nodes
// through the multiplexer; both behave correctly and independently.
func TestTwoObjectsOverOneCluster(t *testing.T) {
	const n, f = 5, 2
	w := sim.New(sim.Config{N: n, F: f, Seed: 1})
	asos := make([]*eqaso.Node, n)
	ssos := make([]*sso.Node, n)
	for i := 0; i < n; i++ {
		m := mux.New(w.Runtime(i))
		w.SetHandler(i, m)
		asos[i] = eqaso.New(m.Channel("aso"))
		m.Bind("aso", asos[i])
		ssos[i] = sso.New(m.Channel("sso"))
		m.Bind("sso", ssos[i])
		if got := m.Channels(); len(got) != 2 || got[0] != "aso" || got[1] != "sso" {
			t.Fatalf("channels = %v", got)
		}
	}
	for i := 0; i < n; i++ {
		i := i
		w.GoNode(fmt.Sprintf("client-%d", i), i, func(p *sim.Proc) {
			// Write DIFFERENT values to the two objects.
			if err := asos[i].Update([]byte(fmt.Sprintf("aso-%d", i))); err != nil {
				t.Errorf("aso update: %v", err)
				return
			}
			if err := ssos[i].Update([]byte(fmt.Sprintf("sso-%d", i))); err != nil {
				t.Errorf("sso update: %v", err)
				return
			}
			_ = p.Sleep(30 * rt.TicksPerD)
			snapA, err := asos[i].Scan()
			if err != nil {
				t.Errorf("aso scan: %v", err)
				return
			}
			snapS, err := ssos[i].Scan()
			if err != nil {
				t.Errorf("sso scan: %v", err)
				return
			}
			for j := 0; j < n; j++ {
				if string(snapA[j]) != fmt.Sprintf("aso-%d", j) {
					t.Errorf("aso segment %d = %q (cross-object leak?)", j, snapA[j])
				}
				if string(snapS[j]) != fmt.Sprintf("sso-%d", j) {
					t.Errorf("sso segment %d = %q (cross-object leak?)", j, snapS[j])
				}
			}
		})
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMuxedHistoriesStayLinearizable: the multiplexed ASO still passes the
// checker with a recorded workload.
func TestMuxedHistoriesStayLinearizable(t *testing.T) {
	const n, f = 4, 1
	var muxes []*mux.Mux
	c := harness.Build(sim.Config{N: n, F: f, Seed: 3}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		m := mux.New(r)
		muxes = append(muxes, m)
		nd := eqaso.New(m.Channel("main"))
		m.Bind("main", nd)
		// A second, unrelated object generating background traffic.
		aux := eqaso.New(m.Channel("aux"))
		m.Bind("aux", aux)
		return m, nd
	})
	for i := 0; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 3; k++ {
				if _, err := o.Update(); err != nil {
					return
				}
				if _, err := o.Scan(); err != nil {
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestBindTwicePanics(t *testing.T) {
	w := sim.New(sim.Config{N: 1, F: 0, Seed: 1})
	m := mux.New(w.Runtime(0))
	m.Bind("x", rt.HandlerFunc(func(int, rt.Message) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("double bind must panic")
		}
	}()
	m.Bind("x", rt.HandlerFunc(func(int, rt.Message) {}))
}

// TestBindErrReportsDuplicate: the non-panicking registration reports a
// duplicate channel name descriptively and leaves the original handler in
// place (components that assemble channels dynamically, like svc.Store,
// depend on both properties).
func TestBindErrReportsDuplicate(t *testing.T) {
	w := sim.New(sim.Config{N: 1, F: 0, Seed: 1})
	m := mux.New(w.Runtime(0))
	var got []string
	first := rt.HandlerFunc(func(int, rt.Message) { got = append(got, "first") })
	if err := m.BindErr("x", first); err != nil {
		t.Fatalf("first BindErr: %v", err)
	}
	err := m.BindErr("x", rt.HandlerFunc(func(int, rt.Message) { got = append(got, "second") }))
	if err == nil {
		t.Fatal("duplicate BindErr must error")
	}
	for _, want := range []string{"x", "bound twice"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// The original binding must be untouched.
	m.HandleMessage(0, mux.Envelope{Channel: "x", Msg: plainMsg{}})
	if len(got) != 1 || got[0] != "first" {
		t.Errorf("after duplicate BindErr, delivery went to %v (want [first])", got)
	}
	if ch := m.Channels(); len(ch) != 1 || ch[0] != "x" {
		t.Errorf("channels = %v", ch)
	}
}

type plainMsg struct{}

func (plainMsg) Kind() string { return "plain" }

func TestUnknownChannelAndNonEnvelopeDropped(t *testing.T) {
	w := sim.New(sim.Config{N: 2, F: 0, Seed: 1})
	m := mux.New(w.Runtime(0))
	w.SetHandler(0, m)
	w.Go("d", func(p *sim.Proc) {
		// Non-envelope and unknown-channel traffic must be ignored
		// without panicking.
		w.Runtime(1).Send(0, plainMsg{})
		w.Runtime(1).Send(0, mux.Envelope{Channel: "ghost", Msg: plainMsg{}})
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeKind(t *testing.T) {
	e := mux.Envelope{Channel: "aso", Msg: plainMsg{}}
	if e.Kind() != "aso/plain" {
		t.Fatalf("kind = %q", e.Kind())
	}
}

// TestUnbindRemovesChannel: Unbind detaches a handler (reporting whether
// one was bound), later traffic on the channel is dropped like any
// unknown channel, and the name can be bound again.
func TestUnbindRemovesChannel(t *testing.T) {
	w := sim.New(sim.Config{N: 1, F: 0, Seed: 1})
	m := mux.New(w.Runtime(0))
	var got int
	m.Bind("x", rt.HandlerFunc(func(int, rt.Message) { got++ }))
	m.HandleMessage(0, mux.Envelope{Channel: "x", Msg: plainMsg{}})
	if got != 1 {
		t.Fatalf("delivery before unbind: got = %d, want 1", got)
	}
	if !m.Unbind("x") {
		t.Error("Unbind of a bound channel reported false")
	}
	if m.Unbind("x") {
		t.Error("second Unbind reported a handler")
	}
	m.HandleMessage(0, mux.Envelope{Channel: "x", Msg: plainMsg{}})
	if got != 1 {
		t.Errorf("delivery after unbind: got = %d, want 1", got)
	}
	if ch := m.Channels(); len(ch) != 0 {
		t.Errorf("channels after unbind = %v, want none", ch)
	}
	if err := m.BindErr("x", rt.HandlerFunc(func(int, rt.Message) { got += 10 })); err != nil {
		t.Fatalf("rebind after unbind: %v", err)
	}
	m.HandleMessage(0, mux.Envelope{Channel: "x", Msg: plainMsg{}})
	if got != 11 {
		t.Errorf("delivery after rebind: got = %d, want 11", got)
	}
}

// TestUnbindUnderConcurrentShardTeardown: shard channels are torn down
// one by one while a remote sender keeps a steady envelope stream on all
// of them (the cluster-layer teardown pattern). Every unbound channel
// stops delivering — in-flight envelopes at most one delay bound later —
// and late traffic is dropped without panicking.
func TestUnbindUnderConcurrentShardTeardown(t *testing.T) {
	const shards = 4
	w := sim.New(sim.Config{N: 2, F: 0, Seed: 9})
	m0 := mux.New(w.Runtime(0))
	m1 := mux.New(w.Runtime(1))
	w.SetHandler(0, m0)
	w.SetHandler(1, m1)
	counts := make([]int, shards)
	name := func(k int) string { return fmt.Sprintf("shard/%d", k) }
	for k := 0; k < shards; k++ {
		k := k
		m1.Bind(name(k), rt.HandlerFunc(func(int, rt.Message) { counts[k]++ }))
	}
	chans := make([]rt.Runtime, shards)
	for k := range chans {
		chans[k] = m0.Channel(name(k))
	}
	stop := rt.Ticks(100 * rt.TicksPerD)
	w.GoNode("sender", 0, func(p *sim.Proc) {
		for p.Now() < stop {
			for k := 0; k < shards; k++ {
				chans[k].Send(1, plainMsg{})
			}
			if err := p.Sleep(rt.TicksPerD); err != nil {
				return
			}
		}
	})
	frozen := make([]int, shards)
	w.GoNode("teardown", 1, func(p *sim.Proc) {
		for k := 0; k < shards; k++ {
			_ = p.Sleep(10 * rt.TicksPerD)
			if !m1.Unbind(name(k)) {
				t.Errorf("Unbind(%s) reported no handler", name(k))
			}
			_ = p.Sleep(2 * rt.TicksPerD) // in-flight envelopes drain within D
			frozen[k] = counts[k]
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < shards; k++ {
		if counts[k] == 0 {
			t.Errorf("shard %d saw no traffic before teardown", k)
		}
		if counts[k] != frozen[k] {
			t.Errorf("shard %d delivered %d envelopes after unbind (count %d, frozen %d)",
				k, counts[k]-frozen[k], counts[k], frozen[k])
		}
	}
	if ch := m1.Channels(); len(ch) != 0 {
		t.Errorf("channels after teardown = %v, want none", ch)
	}
}
