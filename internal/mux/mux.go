// Package mux multiplexes several independent protocol instances over one
// rt.Runtime. Each instance gets a channel name; its messages are wrapped
// in an envelope and only delivered to the same-named instance on the
// receiving node. This is how applications run multiple snapshot objects
// (say, a CRDT store and a termination detector) over a single cluster
// without their segments or protocol messages colliding.
//
// All instances of a node share the node's atomicity domain (the
// underlying runtime's handler lock), so cross-instance state remains
// consistent with the paper's one-server-thread model. Each instance must
// still be driven by at most one client operation at a time.
package mux

import (
	"fmt"
	"math/rand"
	"sort"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// Envelope wraps an instance's message with its channel name.
type Envelope struct {
	Channel string
	Msg     rt.Message
}

// Kind implements rt.Message.
func (e Envelope) Kind() string { return e.Channel + "/" + e.Msg.Kind() }

// Wire tag 1 (see DESIGN.md, wire format section). The envelope is the
// one composite codec: its body is the channel name followed by the
// nested message's own (tag + body) encoding.
func init() {
	wire.Register(wire.Codec{
		Tag: 1, Proto: Envelope{}, Composite: true,
		Encode: func(b *wire.Buffer, m rt.Message) {
			env := m.(Envelope)
			b.PutString(env.Channel)
			if err := wire.AppendMessage(b, env.Msg); err != nil {
				// Sending an unregistered type over a channel is a setup
				// bug, caught the first time the instance sends anything.
				panic(fmt.Sprintf("mux: envelope on channel %q: %v", env.Channel, err))
			}
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			ch := d.String()
			if err := d.Err(); err != nil {
				return nil, err
			}
			inner, err := wire.DecodeMessageFrom(d)
			if err != nil {
				return nil, err
			}
			return Envelope{Channel: ch, Msg: inner}, nil
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return Envelope{Channel: fmt.Sprintf("ch%d", rng.Intn(4)), Msg: wire.GenLeaf(rng)}
		},
		Encodable: func(m rt.Message) bool {
			return wire.Marshalable(m.(Envelope).Msg)
		},
	})
}

// Mux is one node's multiplexer. Create it, register it as the node's
// handler, then create named channels and build one protocol instance per
// channel.
type Mux struct {
	rt       rt.Runtime
	handlers map[string]rt.Handler
}

// New creates the multiplexer for a node.
func New(r rt.Runtime) *Mux {
	return &Mux{rt: r, handlers: make(map[string]rt.Handler)}
}

// HandleMessage implements rt.Handler: it unwraps envelopes and routes
// them to the named instance. Unknown channels are dropped (a node that
// doesn't host an instance ignores its traffic).
func (m *Mux) HandleMessage(src int, msg rt.Message) {
	env, ok := msg.(Envelope)
	if !ok {
		return
	}
	if h := m.handlers[env.Channel]; h != nil {
		h.HandleMessage(src, env.Msg)
	}
}

// Channel returns the sub-runtime for name. Build the protocol instance
// on it, then register the instance with Bind. The same name must be used
// on every node.
func (m *Mux) Channel(name string) rt.Runtime {
	return &chanRuntime{mux: m, name: name}
}

// Bind installs the handler of the named instance. Must be called before
// traffic flows on that channel (instances created at setup time).
// Registering the same name twice is always a setup bug — two instances
// would steal each other's protocol messages — so it panics; components
// that assemble channels dynamically should use BindErr instead.
func (m *Mux) Bind(name string, h rt.Handler) {
	if err := m.BindErr(name, h); err != nil {
		panic(err)
	}
}

// BindErr is Bind returning a descriptive error instead of panicking when
// the channel name is already taken. The registration is atomic: on error
// the existing handler is untouched.
func (m *Mux) BindErr(name string, h rt.Handler) error {
	var err error
	m.rt.Atomic(func() {
		if _, dup := m.handlers[name]; dup {
			err = fmt.Errorf("mux: channel %q bound twice (each protocol instance needs a unique channel name)", name)
			return
		}
		m.handlers[name] = h
	})
	return err
}

// Unbind removes the named instance's handler and reports whether it was
// bound. Traffic arriving on an unbound channel is dropped, exactly like a
// channel that never existed — so tearing an instance down while peers are
// still sending to it is safe. The removal is atomic with the node's
// handler: a message being dispatched concurrently is either routed to the
// old handler or dropped, never delivered half-torn-down. The name becomes
// available for BindErr again (dynamic shard placement binds, unbinds, and
// rebinds channels as shard maps change).
func (m *Mux) Unbind(name string) bool {
	var had bool
	m.rt.Atomic(func() {
		_, had = m.handlers[name]
		delete(m.handlers, name)
	})
	return had
}

// Channels lists the bound channel names (sorted; for tooling).
func (m *Mux) Channels() []string {
	var out []string
	m.rt.Atomic(func() {
		for name := range m.handlers {
			out = append(out, name)
		}
	})
	sort.Strings(out)
	return out
}

// chanRuntime is the per-channel view of the underlying runtime: sends
// wrap messages in the channel's envelope; everything else passes through,
// sharing the node's atomicity and clock.
type chanRuntime struct {
	mux  *Mux
	name string
}

var _ rt.Runtime = (*chanRuntime)(nil)

func (c *chanRuntime) ID() int { return c.mux.rt.ID() }
func (c *chanRuntime) N() int  { return c.mux.rt.N() }
func (c *chanRuntime) F() int  { return c.mux.rt.F() }

func (c *chanRuntime) Send(dst int, msg rt.Message) {
	c.mux.rt.Send(dst, Envelope{Channel: c.name, Msg: msg})
}

func (c *chanRuntime) Broadcast(msg rt.Message) {
	c.mux.rt.Broadcast(Envelope{Channel: c.name, Msg: msg})
}

func (c *chanRuntime) Atomic(fn func()) { c.mux.rt.Atomic(fn) }

func (c *chanRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	return c.mux.rt.WaitUntilThen(c.name+": "+label, pred, then)
}

func (c *chanRuntime) Now() rt.Ticks { return c.mux.rt.Now() }

func (c *chanRuntime) Crashed() bool { return c.mux.rt.Crashed() }
