package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mpsnap/internal/chaos"
	"mpsnap/internal/rt"
	"mpsnap/internal/transport"
)

// RunChan executes one cluster chaos run over the in-process channel
// transport: the same topology, fault stream, marked workload, and
// validated GlobalScans as RunSim, but on real goroutine scheduling with
// wall-clock delays (one virtual D = chaos.DReal). Real scheduling is
// not deterministic — the reproducible artifact is the fault schedule
// and the validator verdict, not the exact op counts.
func RunChan(cfg RunConfig) (*Report, error) { return runWall(cfg, "chan") }

// RunTCP executes one cluster chaos run over a TCP loopback mesh (all
// nodes in this process), with the fault stream injected through the
// same chaos.Net wrapper as the chan backend. Restarts — including the
// whole-shard crash scenario, whose victims recover — are chan/sim only:
// a TCP restart is a process restart.
func RunTCP(cfg RunConfig) (*Report, error) { return runWall(cfg, "tcp") }

// runWall is the shared wall-clock runner behind RunChan and RunTCP.
func runWall(cfg RunConfig, backend string) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	tickReal := chaos.DReal / time.Duration(rt.TicksPerD)
	m := ContiguousMap(cfg.Shards, cfg.N, cfg.F, cfg.VNodes)
	total := m.NumNodes()
	health := NewHealth(total)

	unders := make([]rt.Runtime, total)
	var crashFn func(id int)
	var setHandler func(id int, h rt.Handler)
	var restartFn func(id int, h rt.Handler)
	var closeNet func()
	switch backend {
	case "chan":
		cn := transport.NewChanNet(transport.ChanConfig{
			N: total, F: cfg.F, D: chaos.DReal, Seed: cfg.Seed, Observer: health,
		})
		for i := 0; i < total; i++ {
			unders[i] = cn.Runtime(i)
		}
		crashFn = cn.Crash
		setHandler = cn.SetHandler
		restartFn = cn.Restart
		closeNet = cn.Close
	case "tcp":
		if cfg.Mix.Restarts > 0 || cfg.CrashShard >= 0 {
			return nil, fmt.Errorf("cluster: restarts (incl. the recovering whole-shard crash) run on sim and chan only (a tcp restart is a process restart)")
		}
		tns, err := dialLoopback(total, cfg.F, health)
		if err != nil {
			return nil, err
		}
		for i, tn := range tns {
			unders[i] = tn.Runtime()
		}
		crashFn = func(id int) { tns[id].Crash() }
		setHandler = func(id int, h rt.Handler) { tns[id].SetHandler(h) }
		closeNet = func() {
			for _, tn := range tns {
				tn.Close()
			}
		}
	default:
		return nil, fmt.Errorf("cluster: unknown backend %q (want chan|tcp)", backend)
	}
	defer closeNet()
	nt := chaos.NewNet(cfg.Seed+3, unders, crashFn)

	scheds := shardSchedules(cfg)
	events := globalEvents(cfg, m, scheds)
	b := newNodeBuilder(cfg, m, health)
	validator := NewCutValidator(ValidatorOptions{CheckPlacement: true, RequireMarks: true})
	rep := &Report{Shards: cfg.Shards, Nodes: total}

	var mu sync.Mutex
	lock := func(fn func()) { mu.Lock(); fn(); mu.Unlock() }
	nodes := make([]*Node, total)
	getNode := func(id int) *Node { mu.Lock(); defer mu.Unlock(); return nodes[id] }
	setNode := func(id int, nd *Node) { mu.Lock(); nodes[id] = nd; mu.Unlock() }

	start := time.Now()
	now := func() rt.Ticks { return rt.Ticks(time.Since(start) / tickReal) }

	// Guarded counter instead of a WaitGroup: restarts spawn clients
	// mid-run, and WaitGroup.Add concurrent with Wait is undefined.
	finished := make(chan struct{})
	var cliMu sync.Mutex
	active := 0
	reserve := func(k int) bool {
		cliMu.Lock()
		defer cliMu.Unlock()
		if active < 0 { // already drained to zero once; run is over
			return false
		}
		active += k
		return true
	}
	release := func() {
		cliMu.Lock()
		active--
		if active == 0 {
			active = -1
			close(finished)
		}
		cliMu.Unlock()
	}

	spawnServe := func(nd *Node) {
		for _, s := range nd.Services() {
			s := s
			go func() { _ = s.Serve() }()
		}
		go func() { _ = nd.ServeRouter() }()
	}
	isCoordinator := func(id int) bool { return id == m.Members[id/cfg.N][cfg.N-1] }
	clientLoop := func(id, cid int, inc int64) {
		defer release()
		writer := fmt.Sprintf("w%dc%d", id, cid)
		if inc > 0 {
			writer = fmt.Sprintf("w%dc%d.%d", id, cid, inc)
		}
		mc := newMarkClient(writer, cfg.Seed*1009+int64(id)+7919*int64(cid)+104729*inc, cfg.KeysPerClient)
		for now() < cfg.Duration {
			if !mc.step(getNode(id), cfg.ScanRatio, rep, lock) {
				return
			}
			if now() >= cfg.Duration {
				return
			}
			time.Sleep(time.Duration(mc.rng.Int63n(int64(cfg.MaxSleep)+1)) * tickReal)
		}
	}
	coordLoop := func(id int, inc int64) {
		defer release()
		period := time.Duration(cfg.GlobalScanEvery) * tickReal
		for now() < cfg.Duration {
			time.Sleep(period)
			if now() >= cfg.Duration {
				return
			}
			cut, err := getNode(id).GlobalScanClosed(validator, 0)
			if err != nil && errors.Is(err, rt.ErrCrashed) {
				return
			}
			recordCut(rep, validator, cut, err, lock)
		}
	}
	spawnClients := func(id int, inc int64) {
		k := cfg.Clients
		if isCoordinator(id) {
			k++
		}
		if !reserve(k) {
			return
		}
		for cid := 0; cid < cfg.Clients; cid++ {
			go clientLoop(id, cid, inc)
		}
		if isCoordinator(id) {
			go coordLoop(id, inc)
		}
	}

	for id := 0; id < total; id++ {
		nd, err := NewNode(nt.Runtime(id), b.nodeConfig(id, false))
		if err != nil {
			return nil, err
		}
		nodes[id] = nd
		setHandler(id, nd.Handler())
	}

	if restartFn != nil {
		incarnation := make([]int64, total)
		nt.OnRestart(func(id int) {
			if !nt.Crashed(id) || now() >= cfg.Duration {
				return
			}
			// Lock-step with the dead incarnation's last critical section
			// before touching its WAL (appends run under the node's mutex).
			unders[id].Atomic(func() {})
			b.files[id].Crash()
			nd, err := NewNode(nt.Runtime(id), b.nodeConfig(id, true))
			if err != nil {
				return
			}
			setNode(id, nd)
			restartFn(id, nd.Handler())
			nt.ClearCrashed(id)
			incarnation[id]++
			inc := incarnation[id]
			rj := b.rejoins[id]
			go func() {
				if rj != nil {
					rj.Rejoin()
				}
				spawnServe(nd)
				spawnClients(id, inc)
			}()
		})
	}

	done := make(chan struct{})
	defer close(done)
	nt.Apply(chaos.Schedule{Seed: cfg.Seed, N: total, F: cfg.F, Duration: cfg.Duration, Events: events}, tickReal, done)

	for id := 0; id < total; id++ {
		spawnServe(nodes[id])
	}
	for id := 0; id < total; id++ {
		spawnClients(id, 0)
	}

	abortAt := start.Add(time.Duration(cfg.Duration+clusterGrace) * tickReal)
	select {
	case <-finished:
	case <-time.After(time.Until(abortAt)):
		// An operation lost its quorum (drops, excess crashes): crash
		// every node so blocked waits release with rt.ErrCrashed.
		lock(func() {
			rep.Blocked = append(rep.Blocked, fmt.Sprintf(
				"%s: clients still blocked %v past deadline; crash-aborted all nodes",
				backend, time.Duration(clusterGrace)*tickReal))
		})
		nt.CrashAll()
		<-finished
	}
	for id := 0; id < total; id++ {
		getNode(id).Close()
	}
	rep.finishSkew()
	return rep, nil
}

// dialLoopback brings up a total-node TCP full mesh in this process:
// every listener binds 127.0.0.1:0 first so the real addresses are known
// before any node starts dialing.
func dialLoopback(total, f int, obs rt.Observer) ([]*transport.TCPNode, error) {
	lns := make([]net.Listener, total)
	addrs := make([]string, total)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tns := make([]*transport.TCPNode, total)
	errs := make([]error, total)
	// One shared epoch: cut frontiers compare Now() across nodes, so
	// per-node construction skew must not show up as clock skew.
	epoch := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tns[i], errs[i] = transport.NewTCPNode(transport.TCPConfig{
				ID: i, Addrs: addrs, F: f, D: chaos.DReal, Listener: lns[i], Observer: obs, Epoch: epoch,
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, tn := range tns {
				if tn != nil {
					tn.Close()
				}
			}
			return nil, fmt.Errorf("cluster: tcp node %d: %w", i, err)
		}
	}
	return tns, nil
}
