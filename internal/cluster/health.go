package cluster

import (
	"sync"

	"mpsnap/internal/rt"
)

// Health tracks per-node liveness across the whole topology, fed from two
// sources: the backend's message stream (it implements rt.Observer —
// install it as the sim/transport observer, and every delivered message
// refreshes its sender) and explicit suspicion from the routing layer (a
// routed request that times out marks its contact suspect, steering later
// requests to other shard members until the suspect is heard from again).
//
// Health is advisory: routing never *requires* a node to look alive, it
// only orders contacts healthy-first. Safe for concurrent use.
type Health struct {
	mu        sync.Mutex
	lastHeard []rt.Ticks
	heard     []bool
	suspect   []bool
}

// NewHealth tracks n global nodes.
func NewHealth(n int) *Health {
	return &Health{
		lastHeard: make([]rt.Ticks, n),
		heard:     make([]bool, n),
		suspect:   make([]bool, n),
	}
}

// OnMsg implements rt.Observer: a delivered message is proof its sender
// was alive at send time, clearing suspicion.
func (h *Health) OnMsg(e rt.MsgEvent) {
	if e.Event != rt.MsgDeliver || e.Src < 0 {
		return
	}
	h.mu.Lock()
	if e.Src < len(h.lastHeard) {
		if e.T > h.lastHeard[e.Src] {
			h.lastHeard[e.Src] = e.T
		}
		h.heard[e.Src] = true
		h.suspect[e.Src] = false
	}
	h.mu.Unlock()
}

// OnOp implements rt.Observer (operation events are not health signals).
func (h *Health) OnOp(rt.OpEvent) {}

// Suspect marks a node unresponsive (a routed request to it timed out).
// The mark clears on the next delivered message from the node.
func (h *Health) Suspect(id int) {
	h.mu.Lock()
	if id >= 0 && id < len(h.suspect) {
		h.suspect[id] = true
	}
	h.mu.Unlock()
}

// Suspected reports whether the node is currently suspect.
func (h *Health) Suspected(id int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return id >= 0 && id < len(h.suspect) && h.suspect[id]
}

// LastHeard returns when the node was last heard from (0, false if never).
func (h *Health) LastHeard(id int) (rt.Ticks, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id < 0 || id >= len(h.lastHeard) {
		return 0, false
	}
	return h.lastHeard[id], h.heard[id]
}
