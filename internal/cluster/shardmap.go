package cluster

import "fmt"

// ShardMap is the versioned placement document: which global nodes form
// each shard's cluster, and how keys hash onto shards. Every node serves
// its current map to clients; a request carrying an older version is
// rejected with StatusStaleMap plus the newer map, so stale clients
// converge by refetch instead of writing through dead placement.
//
// Versions are totally ordered and only ever move forward. A map change
// (a split moving part of the keyspace, a membership change) installs a
// strictly larger Version everywhere it lands; two maps with the same
// Version must be identical.
type ShardMap struct {
	// Version orders maps; 0 is "no map" (never served).
	Version uint64
	// VNodes is the per-shard virtual-node count of the placement ring.
	VNodes int
	// F is the per-shard resilience bound (each shard tolerates F of its
	// members crashing; len(Members[s]) > 2F).
	F int
	// Members lists each shard's cluster as global node IDs, in shard-
	// local ID order: Members[s][l] is shard s's local node l.
	Members [][]int
}

// Shards returns the shard count.
func (m ShardMap) Shards() int { return len(m.Members) }

// NumNodes returns the number of distinct global nodes the map spans
// (max member ID + 1).
func (m ShardMap) NumNodes() int {
	max := -1
	for _, ms := range m.Members {
		for _, id := range ms {
			if id > max {
				max = id
			}
		}
	}
	return max + 1
}

// Ring builds the map's placement ring. Callers that route per-operation
// should cache it per Version (Node does).
func (m ShardMap) Ring() *Ring { return NewRing(m.Shards(), m.VNodes) }

// OwnedBy returns the shards node id is a member of, in shard order.
func (m ShardMap) OwnedBy(id int) []int {
	var out []int
	for s, ms := range m.Members {
		for _, g := range ms {
			if g == id {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// LocalID returns node id's shard-local index in shard s, or -1.
func (m ShardMap) LocalID(s, id int) int {
	for l, g := range m.Members[s] {
		if g == id {
			return l
		}
	}
	return -1
}

// Validate checks the map's structural invariants.
func (m ShardMap) Validate() error {
	if m.Version == 0 {
		return fmt.Errorf("cluster: shard map version 0 (unversioned maps are never served)")
	}
	if len(m.Members) == 0 {
		return fmt.Errorf("cluster: shard map has no shards")
	}
	if m.VNodes <= 0 {
		return fmt.Errorf("cluster: shard map needs VNodes > 0, got %d", m.VNodes)
	}
	for s, ms := range m.Members {
		if len(ms) <= 2*m.F {
			return fmt.Errorf("cluster: shard %d has %d members, need > 2f = %d", s, len(ms), 2*m.F)
		}
		seen := make(map[int]bool, len(ms))
		for _, g := range ms {
			if g < 0 {
				return fmt.Errorf("cluster: shard %d has negative member %d", s, g)
			}
			if seen[g] {
				return fmt.Errorf("cluster: shard %d lists member %d twice", s, g)
			}
			seen[g] = true
		}
	}
	return nil
}

// ContiguousMap builds the standard topology: shards × n nodes, shard s
// owning global IDs [s·n, (s+1)·n), at map version 1.
func ContiguousMap(shards, n, f, vnodes int) ShardMap {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	m := ShardMap{Version: 1, VNodes: vnodes, F: f, Members: make([][]int, shards)}
	for s := 0; s < shards; s++ {
		ms := make([]int, n)
		for l := 0; l < n; l++ {
			ms[l] = s*n + l
		}
		m.Members[s] = ms
	}
	return m
}
