package cluster

import "mpsnap/internal/rt"

// shardRuntime is a shard member's view of its shard cluster: an
// rt.Runtime restricted to the shard's member list, with shard-local node
// IDs. It sits on top of a mux channel runtime ("shard/<s>"), so the
// engine built on it sees an n-member cluster with IDs [0, n) while its
// messages actually travel between global nodes inside mux envelopes.
//
// Broadcast is realized as a loop of Sends over the member list — exactly
// the equivalence rt.Runtime documents — so a mid-loop crash reaches a
// prefix of the members, preserving the paper's failure-chain mechanism
// at shard scope (a plain pass-through Broadcast would leak the envelope
// to every node of every shard).
type shardRuntime struct {
	under   rt.Runtime // mux channel runtime (global IDs)
	members []int      // members[local] = global node ID
	local   int        // this node's shard-local ID
	f       int
}

var _ rt.Runtime = (*shardRuntime)(nil)

// newShardRuntime builds the member view. The caller guarantees the
// node is a member (LocalID >= 0).
func newShardRuntime(under rt.Runtime, members []int, local, f int) *shardRuntime {
	return &shardRuntime{under: under, members: members, local: local, f: f}
}

func (r *shardRuntime) ID() int { return r.local }
func (r *shardRuntime) N() int  { return len(r.members) }
func (r *shardRuntime) F() int  { return r.f }

func (r *shardRuntime) Send(dst int, msg rt.Message) {
	r.under.Send(r.members[dst], msg)
}

func (r *shardRuntime) Broadcast(msg rt.Message) {
	for _, g := range r.members {
		r.under.Send(g, msg)
	}
}

func (r *shardRuntime) Atomic(fn func()) { r.under.Atomic(fn) }

func (r *shardRuntime) WaitUntilThen(label string, pred func() bool, then func()) error {
	return r.under.WaitUntilThen(label, pred, then)
}

func (r *shardRuntime) Now() rt.Ticks { return r.under.Now() }

func (r *shardRuntime) Crashed() bool { return r.under.Crashed() }

// remapHandler translates inbound shard traffic from global to shard-
// local source IDs before handing it to the engine, and drops messages
// from non-members (a stale or misrouted envelope must not be attributed
// to a random local ID).
type remapHandler struct {
	members []int
	inner   rt.Handler
}

func (h remapHandler) HandleMessage(src int, msg rt.Message) {
	for l, g := range h.members {
		if g == src {
			h.inner.HandleMessage(l, msg)
			return
		}
	}
}
