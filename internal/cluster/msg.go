package cluster

import (
	"math/rand"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// Routing status codes carried by response messages.
const (
	// StatusOK: the request was served.
	StatusOK byte = iota
	// StatusStaleMap: the request's MapVer is older than the responder's
	// shard map; the response carries the newer map, and the client must
	// re-route under it.
	StatusStaleMap
	// StatusWrongShard: the named shard is not hosted by the responder
	// under the responder's (same-version) map — a placement bug, or a
	// racing map the responder has not adopted yet. Clients refetch.
	StatusWrongShard
	// StatusErr: the shard engine failed the operation (e.g. the service
	// is draining for shutdown).
	StatusErr
)

// Wire tags 112–119: the cluster routing block (see DESIGN.md §10 and the
// ALGORITHMS.md cluster table). All cluster messages travel inside mux
// envelopes on the "cluster" channel.
const (
	tagUpdateReq  = 112
	tagUpdateResp = 113
	tagScanReq    = 114
	tagScanResp   = 115
	tagMapReq     = 116
	tagMapResp    = 117
	tagCutReq     = 118
	tagCutResp    = 119
)

// MsgUpdateReq routes one keyed UPDATE to a member of the owning shard.
type MsgUpdateReq struct {
	Req    uint64 // caller-local request ID, echoed by the response
	MapVer uint64 // shard-map version the caller routed under
	Shard  int    // owning shard under that map
	Key    string
	Val    []byte
}

// Kind implements rt.Message.
func (MsgUpdateReq) Kind() string { return "cl.updateReq" }

// MsgUpdateResp answers an MsgUpdateReq.
type MsgUpdateResp struct {
	Req    uint64
	Status byte
	Map    ShardMap // the newer map, when Status == StatusStaleMap
}

// Kind implements rt.Message.
func (MsgUpdateResp) Kind() string { return "cl.updateResp" }

// MsgScanReq routes one keyed SCAN to a member of the owning shard.
type MsgScanReq struct {
	Req    uint64
	MapVer uint64
	Shard  int
	Key    string
}

// Kind implements rt.Message.
func (MsgScanReq) Kind() string { return "cl.scanReq" }

// MsgScanResp answers an MsgScanReq with the key's per-member value
// vector from one linearizable shard snapshot (nil = that member's
// segment never wrote the key).
type MsgScanResp struct {
	Req    uint64
	Status byte
	Map    ShardMap
	Vals   [][]byte
}

// Kind implements rt.Message.
func (MsgScanResp) Kind() string { return "cl.scanResp" }

// MsgMapReq fetches the responder's current shard map.
type MsgMapReq struct {
	Req uint64
}

// Kind implements rt.Message.
func (MsgMapReq) Kind() string { return "cl.mapReq" }

// MsgMapResp serves the responder's current shard map.
type MsgMapResp struct {
	Req uint64
	Map ShardMap
}

// Kind implements rt.Message.
func (MsgMapResp) Kind() string { return "cl.mapResp" }

// MsgCutReq asks a shard member for the shard's contribution to a
// coordinated cut: a full shard snapshot linearized at-or-after Frontier
// (guaranteed by causality — the scan starts after this message arrives,
// which is after the coordinator recorded Frontier).
type MsgCutReq struct {
	Req      uint64
	MapVer   uint64
	Shard    int
	Frontier rt.Ticks
}

// Kind implements rt.Message.
func (MsgCutReq) Kind() string { return "cl.cutReq" }

// MsgCutResp is one shard's cut contribution: the shard snapshot (one
// segment per shard member, nil = ⊥) plus the scan's local interval and
// the number of updates still in flight (admitted but uncommitted) at the
// contact when the scan was issued.
type MsgCutResp struct {
	Req       uint64
	Status    byte
	Map       ShardMap
	Shard     int
	Frontier  rt.Ticks
	ScanStart rt.Ticks
	ScanEnd   rt.Ticks
	Pending   int
	Segments  [][]byte
}

// Kind implements rt.Message.
func (MsgCutResp) Kind() string { return "cl.cutResp" }

func encodeMap(b *wire.Buffer, m ShardMap) {
	b.PutUvarint(m.Version)
	b.PutInt(m.VNodes)
	b.PutInt(m.F)
	b.PutUvarint(uint64(len(m.Members)))
	for _, ms := range m.Members {
		b.PutUvarint(uint64(len(ms)))
		for _, id := range ms {
			b.PutInt(id)
		}
	}
}

func decodeMap(d *wire.Decoder) ShardMap {
	var m ShardMap
	m.Version = d.Uvarint()
	m.VNodes = d.Int()
	m.F = d.Int()
	shards := d.Count(1)
	for s := 0; s < shards; s++ {
		n := d.Count(1)
		ms := make([]int, 0, n)
		for l := 0; l < n; l++ {
			ms = append(ms, d.Int())
		}
		m.Members = append(m.Members, ms)
	}
	return m
}

// encodeSegs writes a per-member payload vector, preserving nil (⊥) vs
// present via an explicit flag (a present-but-empty payload stays
// distinguishable from ⊥).
func encodeSegs(b *wire.Buffer, segs [][]byte) {
	b.PutUvarint(uint64(len(segs)))
	for _, seg := range segs {
		b.PutBool(seg != nil)
		if seg != nil {
			b.PutBytes(seg)
		}
	}
}

func decodeSegs(d *wire.Decoder) [][]byte {
	n := d.Count(1)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if d.Bool() {
			seg := d.Bytes()
			if seg == nil {
				seg = []byte{}
			}
			out = append(out, seg)
		} else {
			out = append(out, nil)
		}
	}
	if d.Err() != nil {
		return nil
	}
	return out
}

func genMap(rng *rand.Rand) ShardMap {
	m := ShardMap{Version: uint64(rng.Intn(8) + 1), VNodes: rng.Intn(16) + 1, F: rng.Intn(2)}
	shards := rng.Intn(3) + 1
	next := 0
	for s := 0; s < shards; s++ {
		n := rng.Intn(3) + 1
		ms := make([]int, 0, n)
		for l := 0; l < n; l++ {
			ms = append(ms, next)
			next++
		}
		m.Members = append(m.Members, ms)
	}
	return m
}

func genSegs(rng *rand.Rand) [][]byte {
	n := rng.Intn(4)
	if n == 0 {
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			out = append(out, nil)
			continue
		}
		seg := make([]byte, rng.Intn(12))
		rng.Read(seg)
		out = append(out, seg)
	}
	return out
}

func init() {
	wire.Register(wire.Codec{
		Tag: tagUpdateReq, Proto: MsgUpdateReq{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			v := m.(MsgUpdateReq)
			b.PutUvarint(v.Req)
			b.PutUvarint(v.MapVer)
			b.PutInt(v.Shard)
			b.PutString(v.Key)
			b.PutBytes(v.Val)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgUpdateReq{Req: d.Uvarint(), MapVer: d.Uvarint(), Shard: d.Int(), Key: d.String(), Val: d.Bytes()}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			val := make([]byte, rng.Intn(16))
			rng.Read(val)
			return MsgUpdateReq{Req: rng.Uint64() >> 1, MapVer: uint64(rng.Intn(9)), Shard: rng.Intn(8), Key: genKey(rng), Val: val}
		},
	})
	wire.Register(wire.Codec{
		Tag: tagUpdateResp, Proto: MsgUpdateResp{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			v := m.(MsgUpdateResp)
			b.PutUvarint(v.Req)
			b.PutByte(v.Status)
			encodeMap(b, v.Map)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgUpdateResp{Req: d.Uvarint(), Status: d.Byte(), Map: decodeMap(d)}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgUpdateResp{Req: rng.Uint64() >> 1, Status: byte(rng.Intn(4)), Map: genMap(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: tagScanReq, Proto: MsgScanReq{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			v := m.(MsgScanReq)
			b.PutUvarint(v.Req)
			b.PutUvarint(v.MapVer)
			b.PutInt(v.Shard)
			b.PutString(v.Key)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgScanReq{Req: d.Uvarint(), MapVer: d.Uvarint(), Shard: d.Int(), Key: d.String()}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgScanReq{Req: rng.Uint64() >> 1, MapVer: uint64(rng.Intn(9)), Shard: rng.Intn(8), Key: genKey(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: tagScanResp, Proto: MsgScanResp{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			v := m.(MsgScanResp)
			b.PutUvarint(v.Req)
			b.PutByte(v.Status)
			encodeMap(b, v.Map)
			encodeSegs(b, v.Vals)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgScanResp{Req: d.Uvarint(), Status: d.Byte(), Map: decodeMap(d), Vals: decodeSegs(d)}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgScanResp{Req: rng.Uint64() >> 1, Status: byte(rng.Intn(4)), Map: genMap(rng), Vals: genSegs(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: tagMapReq, Proto: MsgMapReq{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutUvarint(m.(MsgMapReq).Req) },
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgMapReq{Req: d.Uvarint()}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message { return MsgMapReq{Req: rng.Uint64() >> 1} },
	})
	wire.Register(wire.Codec{
		Tag: tagMapResp, Proto: MsgMapResp{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			v := m.(MsgMapResp)
			b.PutUvarint(v.Req)
			encodeMap(b, v.Map)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgMapResp{Req: d.Uvarint(), Map: decodeMap(d)}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgMapResp{Req: rng.Uint64() >> 1, Map: genMap(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: tagCutReq, Proto: MsgCutReq{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			v := m.(MsgCutReq)
			b.PutUvarint(v.Req)
			b.PutUvarint(v.MapVer)
			b.PutInt(v.Shard)
			b.PutVarint(int64(v.Frontier))
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgCutReq{Req: d.Uvarint(), MapVer: d.Uvarint(), Shard: d.Int(), Frontier: rt.Ticks(d.Varint())}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgCutReq{Req: rng.Uint64() >> 1, MapVer: uint64(rng.Intn(9)), Shard: rng.Intn(8), Frontier: rt.Ticks(rng.Int63n(1 << 30))}
		},
	})
	wire.Register(wire.Codec{
		Tag: tagCutResp, Proto: MsgCutResp{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			v := m.(MsgCutResp)
			b.PutUvarint(v.Req)
			b.PutByte(v.Status)
			encodeMap(b, v.Map)
			b.PutInt(v.Shard)
			b.PutVarint(int64(v.Frontier))
			b.PutVarint(int64(v.ScanStart))
			b.PutVarint(int64(v.ScanEnd))
			b.PutInt(v.Pending)
			encodeSegs(b, v.Segments)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			v := MsgCutResp{
				Req: d.Uvarint(), Status: d.Byte(), Map: decodeMap(d), Shard: d.Int(),
				Frontier: rt.Ticks(d.Varint()), ScanStart: rt.Ticks(d.Varint()), ScanEnd: rt.Ticks(d.Varint()),
				Pending: d.Int(), Segments: decodeSegs(d),
			}
			return v, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			t := rt.Ticks(rng.Int63n(1 << 30))
			return MsgCutResp{
				Req: rng.Uint64() >> 1, Status: byte(rng.Intn(4)), Map: genMap(rng), Shard: rng.Intn(8),
				Frontier: t, ScanStart: t + rt.Ticks(rng.Intn(1000)), ScanEnd: t + rt.Ticks(1000+rng.Intn(1000)),
				Pending: rng.Intn(8), Segments: genSegs(rng),
			}
		},
	})
}

func genKey(rng *rand.Rand) string {
	return "w" + string(rune('0'+rng.Intn(10))) + "/k" + string(rune('0'+rng.Intn(8)))
}
