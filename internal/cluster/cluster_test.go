package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
)

// buildWorld brings up a Shards×N topology on the simulator: every node
// runs the full cluster stack with eqaso engines, serving threads
// spawned. Returns the world and the nodes.
func buildWorld(t *testing.T, shards, n, f int, seed int64) (*sim.World, []*Node) {
	t.Helper()
	m := ContiguousMap(shards, n, f, 0)
	total := m.NumNodes()
	health := NewHealth(total)
	w := sim.New(sim.Config{N: total, F: f, Seed: seed, Observer: health})
	nodes := make([]*Node, total)
	for id := 0; id < total; id++ {
		nd, err := NewNode(w.Runtime(id), Config{
			Map:    m,
			Health: health,
			NewEngine: func(shard int, r rt.Runtime) (rt.Handler, svc.Object) {
				e := engine.MustLookup("eqaso").New(r)
				return e, e
			},
		})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", id, err)
		}
		nodes[id] = nd
		w.SetHandler(id, nd.Handler())
	}
	for id := 0; id < total; id++ {
		id := id
		for si, s := range nodes[id].Services() {
			s := s
			w.GoNode(fmt.Sprintf("svc-%d.%d", id, si), id, func(p *sim.Proc) { _ = s.Serve() })
		}
		w.GoNode(fmt.Sprintf("router-%d", id), id, func(p *sim.Proc) { _ = nodes[id].ServeRouter() })
	}
	return w, nodes
}

// closeAll shuts down every node so serving procs drain and exit.
func closeAll(w *sim.World, nodes []*Node, after rt.Ticks) {
	w.After(after, func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
}

// TestUpdateScanAcrossShards routes writes from one client node to every
// shard and reads them back through keyed scans.
func TestUpdateScanAcrossShards(t *testing.T) {
	w, nodes := buildWorld(t, 4, 3, 1, 42)
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	w.GoNode("writer", 0, func(p *sim.Proc) {
		nd := nodes[0]
		for i, k := range keys {
			if err := nd.Update(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("update %q: %v", k, err)
			}
		}
		for i, k := range keys {
			vals, err := nd.Scan(k)
			if err != nil {
				t.Errorf("scan %q: %v", k, err)
				continue
			}
			want := []byte(fmt.Sprintf("v%d", i))
			found := false
			for _, v := range vals {
				if bytes.Equal(v, want) {
					found = true
				}
			}
			if !found {
				t.Errorf("scan %q: value %q not in %q", k, want, vals)
			}
		}
	})
	closeAll(w, nodes, 400*rt.TicksPerD)
	if err := w.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// TestGlobalScanClosed writes a cross-shard mark chain, then takes a
// closure-repaired GlobalScan and validates it.
func TestGlobalScanClosed(t *testing.T) {
	w, nodes := buildWorld(t, 3, 3, 1, 7)
	v := NewCutValidator(ValidatorOptions{CheckPlacement: true, RequireMarks: true})
	w.GoNode("writer", 1, func(p *sim.Proc) {
		mc := newMarkClient("w1", 99, 8)
		nd := nodes[1]
		for i := 0; i < 20; i++ {
			mc.seq++
			key := mc.key()
			mk := Mark{Writer: mc.writer, Seq: mc.seq, PrevKey: mc.lastKey, PrevSeq: mc.lastSeq}
			if err := nd.Update(key, mk.Encode()); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			mc.lastKey, mc.lastSeq = key, mc.seq
		}
		cut, err := nodes[1].GlobalScanClosed(v, 0)
		if err != nil {
			t.Errorf("GlobalScanClosed: %v", err)
			return
		}
		if vio := v.Validate(cut); len(vio) > 0 {
			t.Errorf("cut violations: %v", vio)
		}
		if cut.Skew() <= 0 {
			t.Errorf("cut skew = %d, want > 0", cut.Skew())
		}
		if got := cut.DumpString(); got != cut.DumpString() {
			t.Errorf("DumpString not deterministic")
		}
	})
	closeAll(w, nodes, 400*rt.TicksPerD)
	if err := w.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// TestValidatorRejectsInjectedInconsistency corrupts a valid cut in
// several ways and checks the validator flags each one.
func TestValidatorRejectsInjectedInconsistency(t *testing.T) {
	m := ContiguousMap(2, 3, 1, 0)
	ring := m.Ring()
	// Find two keys on different shards.
	keyOn := func(shard int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("w0/k%d", i)
			if ring.ShardFor(k) == shard {
				return k
			}
		}
	}
	k0, k1 := keyOn(0), keyOn(1)
	seg := func(marks map[string]Mark) []byte {
		var recs []svc.Record
		for k, mk := range marks {
			recs = append(recs, svc.Record{K: k, V: mk.Encode()})
		}
		return svc.EncodeRecords(recs)
	}
	mk1 := Mark{Writer: "w0", Seq: 1}                          // first write, on k0 / shard 0
	mk2 := Mark{Writer: "w0", Seq: 2, PrevKey: k0, PrevSeq: 1} // second write, on k1 / shard 1
	valid := func() *Cut {
		return &Cut{
			Frontier: 100, Map: m, Rounds: 1,
			Shards: []ShardCut{
				{Shard: 0, ScanStart: 110, ScanEnd: 120, Segments: [][]byte{seg(map[string]Mark{k0: mk1}), nil, nil}, Rounds: 1},
				{Shard: 1, ScanStart: 112, ScanEnd: 125, Segments: [][]byte{seg(map[string]Mark{k1: mk2}), nil, nil}, Rounds: 1},
			},
		}
	}
	v := NewCutValidator(ValidatorOptions{CheckPlacement: true, RequireMarks: true})
	if vio := v.Validate(valid()); len(vio) != 0 {
		t.Fatalf("valid cut flagged: %v", vio)
	}

	// Missing predecessor: drop k0 from shard 0's cut.
	c := valid()
	c.Shards[0].Segments = [][]byte{nil, nil, nil}
	if vio := v.Validate(c); len(vio) == 0 {
		t.Errorf("missing predecessor not flagged")
	}
	if miss := v.MissingClosure(c); len(miss) != 1 || miss[0] != 0 {
		t.Errorf("MissingClosure = %v, want [0]", miss)
	}

	// Frontier violation: shard scan linearized before the frontier.
	c = valid()
	c.Shards[1].ScanStart = 90
	if vio := v.Validate(c); len(vio) == 0 {
		t.Errorf("pre-frontier scan not flagged")
	}

	// Cross-writer collision on one key.
	c = valid()
	alien := Mark{Writer: "intruder", Seq: 9}
	c.Shards[0].Segments[1] = seg(map[string]Mark{k0: alien})
	if vio := v.Validate(c); len(vio) == 0 {
		t.Errorf("cross-writer collision not flagged")
	}

	// Placement violation: k1 planted on shard 0.
	c = valid()
	c.Shards[0].Segments[2] = seg(map[string]Mark{k1: {Writer: "w1", Seq: 1}})
	if vio := v.Validate(c); len(vio) == 0 {
		t.Errorf("misplaced key not flagged")
	}
}

// TestShardMapVersionRace splits a 1-shard map into 2 shards while a
// client still holds v1: the client's stale write is rejected with the
// newer map piggybacked, adopted, and re-routed under v2.
func TestShardMapVersionRace(t *testing.T) {
	v1 := ShardMap{Version: 1, VNodes: DefaultVNodes, F: 1, Members: [][]int{{0, 1, 2}}}
	v2 := ShardMap{Version: 2, VNodes: DefaultVNodes, F: 1, Members: [][]int{{0, 1, 2}, {3, 4, 5}}}
	total := 6
	w := sim.New(sim.Config{N: total, F: 1, Seed: 11})
	nodes := make([]*Node, total)
	for id := 0; id < total; id++ {
		nd, err := NewNode(w.Runtime(id), Config{
			Map:       v1,
			Provision: []ShardMap{v2},
			NewEngine: func(shard int, r rt.Runtime) (rt.Handler, svc.Object) {
				e := engine.MustLookup("eqaso").New(r)
				return e, e
			},
		})
		if err != nil {
			t.Fatalf("NewNode(%d): %v", id, err)
		}
		nodes[id] = nd
		w.SetHandler(id, nd.Handler())
	}
	for id := 0; id < total; id++ {
		id := id
		for si, s := range nodes[id].Services() {
			s := s
			w.GoNode(fmt.Sprintf("svc-%d.%d", id, si), id, func(p *sim.Proc) { _ = s.Serve() })
		}
		w.GoNode(fmt.Sprintf("router-%d", id), id, func(p *sim.Proc) { _ = nodes[id].ServeRouter() })
	}

	// A key that moves to shard 1 under v2.
	r2 := v2.Ring()
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("moved/k%d", i)
		if r2.ShardFor(key) == 1 {
			break
		}
	}

	w.GoNode("client", 3, func(p *sim.Proc) {
		// Servers of shard 0 adopt the split; client node 3 still holds v1.
		for id := 0; id < 3; id++ {
			if ok, err := nodes[id].InstallMap(v2); err != nil || !ok {
				t.Errorf("InstallMap on %d: ok=%v err=%v", id, ok, err)
			}
		}
		if got := nodes[3].Map().Version; got != 1 {
			t.Fatalf("client map version = %d, want 1", got)
		}
		// The stale write routes to shard 0 (v1 has only shard 0), gets a
		// StaleMap rejection carrying v2, adopts it, and lands on shard 1
		// — which node 3 owns, so it commits through the local fast path.
		if err := nodes[3].Update(key, []byte("val")); err != nil {
			t.Fatalf("update: %v", err)
		}
		if got := nodes[3].Map().Version; got != 2 {
			t.Errorf("client map version after update = %d, want 2 (adopted from rejection)", got)
		}
		vals, err := nodes[3].Scan(key)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		found := false
		for _, v := range vals {
			if bytes.Equal(v, []byte("val")) {
				found = true
			}
		}
		if !found {
			t.Errorf("value not found on shard 1 after re-route: %q", vals)
		}
	})
	closeAll(w, nodes, 400*rt.TicksPerD)
	if err := w.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}
