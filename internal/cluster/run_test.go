package cluster

import (
	"testing"

	"mpsnap/internal/chaos"
	"mpsnap/internal/rt"
)

// testRunConfig is a chaos run small enough for the test suite: 2 shards
// of 3, crashes with WAL restarts, a partition episode, and loss/delay
// windows per shard.
func testRunConfig(seed int64) RunConfig {
	cfg := DefaultRunConfig()
	cfg.Seed = seed
	cfg.Duration = 150 * rt.TicksPerD
	cfg.Mix = chaos.Mix{Crashes: 1, Partitions: 1, DropWindows: 1, SpikeWindows: 1, Restarts: 1}
	cfg.GlobalScanEvery = 15 * rt.TicksPerD
	return cfg
}

// TestRunSimSeeds runs the cluster chaos harness across several seeds:
// every validated cut must be consistent (no violations), and each run
// must produce at least one validated cut and real traffic.
func TestRunSimSeeds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		cfg := testRunConfig(seed)
		rep, err := RunSim(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v (report: %v)", seed, err, rep)
		}
		if len(rep.Violations) > 0 {
			t.Errorf("seed %d: cut violations: %v", seed, rep.Violations)
		}
		if rep.CutsOK == 0 {
			t.Errorf("seed %d: no validated cuts (report: %v)", seed, rep)
		}
		if rep.Updates == 0 || rep.Scans == 0 {
			t.Errorf("seed %d: no traffic (report: %v)", seed, rep)
		}
		t.Logf("seed %d: %v", seed, rep)
	}
}

// TestRunSimShardCrash crashes all of shard 1 mid-run and restarts it
// from WALs; cuts must stay consistent throughout (failures to assemble
// a cut while the shard is down are availability, not violations).
func TestRunSimShardCrash(t *testing.T) {
	cfg := testRunConfig(5)
	cfg.Duration = 200 * rt.TicksPerD
	cfg.Mix = chaos.Mix{} // the whole-shard fault is the event under test
	cfg.CrashShard = 1
	rep, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v (report: %v)", err, rep)
	}
	if len(rep.Violations) > 0 {
		t.Errorf("violations under shard crash: %v", rep.Violations)
	}
	if rep.CutsOK == 0 {
		t.Errorf("no validated cuts (report: %v)", rep)
	}
	t.Logf("%v", rep)
}

// TestRunSimShardPartition isolates all of shard 0 from the rest of the
// topology for a window; cross-shard cuts fail during the window and
// recover after heal, always consistently.
func TestRunSimShardPartition(t *testing.T) {
	cfg := testRunConfig(6)
	cfg.Duration = 200 * rt.TicksPerD
	cfg.Mix = chaos.Mix{}
	cfg.PartitionShard = 0
	rep, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim: %v (report: %v)", err, rep)
	}
	if len(rep.Violations) > 0 {
		t.Errorf("violations under shard partition: %v", rep.Violations)
	}
	if rep.CutsOK == 0 {
		t.Errorf("no validated cuts (report: %v)", rep)
	}
	t.Logf("%v", rep)
}
