package cluster

import (
	"testing"

	"mpsnap/internal/chaos"
	"mpsnap/internal/rt"
)

// TestRunChanSeeds runs the cluster chaos harness on the channel
// transport across several seeds (fewer and shorter than sim — these
// burn wall clock at DReal per virtual D).
func TestRunChanSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("chan chaos runs burn wall clock; skipped with -short")
	}
	seeds := []int64{1, 2, 3, 4}
	for _, seed := range seeds {
		cfg := DefaultRunConfig()
		cfg.Seed = seed
		cfg.Duration = 120 * rt.TicksPerD
		cfg.Mix = chaos.Mix{Crashes: 1, Partitions: 1, DropWindows: 1, SpikeWindows: 1, Restarts: 1}
		cfg.GlobalScanEvery = 15 * rt.TicksPerD
		rep, err := RunChan(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v (report: %v)", seed, err, rep)
		}
		if len(rep.Violations) > 0 {
			t.Errorf("seed %d: cut violations: %v", seed, rep.Violations)
		}
		if rep.CutsOK == 0 {
			t.Errorf("seed %d: no validated cuts (report: %v)", seed, rep)
		}
		t.Logf("seed %d: %v", seed, rep)
	}
}

// TestRunTCPSmoke runs one cluster chaos run over the TCP loopback mesh:
// partitions and loss windows only (restarts are chan/sim-only — a TCP
// restart is a process restart, which RunTCP rejects).
func TestRunTCPSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos runs burn wall clock; skipped with -short")
	}
	cfg := DefaultRunConfig()
	cfg.Seed = 11
	cfg.Duration = 100 * rt.TicksPerD
	cfg.Mix = chaos.Mix{Partitions: 1, DropWindows: 1}
	cfg.GlobalScanEvery = 15 * rt.TicksPerD
	rep, err := RunTCP(cfg)
	if err != nil {
		t.Fatalf("RunTCP: %v (report: %v)", err, rep)
	}
	if len(rep.Violations) > 0 {
		t.Errorf("cut violations: %v", rep.Violations)
	}
	if rep.CutsOK == 0 {
		t.Errorf("no validated cuts (report: %v)", rep)
	}
	t.Logf("%v", rep)

	cfg.Mix = chaos.Mix{Crashes: 1, Restarts: 1}
	if _, err := RunTCP(cfg); err == nil {
		t.Error("RunTCP accepted a restarting mix")
	}
	cfg.Mix = chaos.Mix{}
	cfg.CrashShard = 0
	if _, err := RunTCP(cfg); err == nil {
		t.Error("RunTCP accepted a whole-shard crash (restarting) scenario")
	}
}
