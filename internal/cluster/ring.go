// Package cluster is the multi-cluster placement and routing layer: it
// runs many independent snapshot clusters ("shards", each an n-node EQ-ASO
// instance with its own svc front) behind one keyed client API, places
// keys on shards with a consistent-hash ring, serves a versioned shard map
// to clients (stale-map requests are rejected with the newer map), routes
// UPDATE/SCAN over the existing mux/transport stack, and implements
// GlobalScan — a coordinated timestamp-frontier cut across all shards,
// checked by CutValidator against cross-shard invariants derived from the
// paper's (A1)–(A4) conditions.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per shard when a map is built
// with VNodes = 0. More vnodes smooth the key distribution; the count is
// part of the shard map (placement must be identical on every node).
const DefaultVNodes = 64

// Ring is a consistent-hash ring: each shard owns VNodes points on a
// 64-bit hash circle, and a key belongs to the shard owning the first
// point at or clockwise of the key's hash. Placement is a pure function
// of (shards, vnodes, key) — identical on every node and across runs.
type Ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for a shard count and per-shard vnode count.
func NewRing(shards, vnodes int) *Ring {
	if shards <= 0 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.shard < b.shard // full-hash collision: deterministic owner
	})
	return r
}

// ShardFor returns the shard a key is placed on.
func (r *Ring) ShardFor(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the top of the circle
	}
	return r.points[i].shard
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
