package cluster

import (
	"fmt"
	"sort"
	"strings"

	"mpsnap/internal/rt"
	"mpsnap/internal/svc"
	"mpsnap/internal/wire"
)

// markMagic tags encoded Marks so the validator can tell marked workload
// values from arbitrary bytes.
const markMagic byte = 0xA7

// Mark is the cross-shard workload value: each write records its writer,
// its per-writer sequence number, and the key + sequence number of the
// writer's immediately preceding write (PrevKey == "" for the first).
// Because a writer issues writes one at a time, any consistent cut that
// contains write (Writer, Seq) must also reflect its predecessor at
// sequence ≥ PrevSeq on whichever shard owns PrevKey — the per-writer
// prefix-closure invariant the CutValidator checks, derived from (A1)
// order-consistency and (A4) snapshot containment stretched across
// shards.
type Mark struct {
	Writer  string
	Seq     int64
	PrevKey string
	PrevSeq int64
}

// Encode serializes the mark.
func (mk Mark) Encode() []byte {
	var b wire.Buffer
	b.PutByte(markMagic)
	b.PutString(mk.Writer)
	b.PutVarint(mk.Seq)
	b.PutString(mk.PrevKey)
	b.PutVarint(mk.PrevSeq)
	return b.Bytes()
}

// ParseMark decodes a mark, reporting false for non-mark values.
func ParseMark(p []byte) (Mark, bool) {
	if len(p) == 0 || p[0] != markMagic {
		return Mark{}, false
	}
	d := wire.NewDecoder(p)
	d.Byte()
	mk := Mark{Writer: d.String(), Seq: d.Varint(), PrevKey: d.String(), PrevSeq: d.Varint()}
	if d.Err() != nil || d.Remaining() != 0 {
		return Mark{}, false
	}
	return mk, true
}

// ShardCut is one shard's slice of a global cut: the shard snapshot (one
// cumulative segment per shard member) plus the timing of the scan that
// produced it.
type ShardCut struct {
	Shard     int
	Contact   int      // global node that served the scan (-1: local fast path)
	ScanStart rt.Ticks // admission time at the serving node (≥ Frontier)
	ScanEnd   rt.Ticks // completion time at the serving node
	Pending   int      // updates queued behind the scan at admission
	Segments  [][]byte // per-member cumulative key segments
	Rounds    int      // times this shard was (re-)scanned for the cut
}

// Cut is a coordinated cross-shard snapshot: every shard scanned at or
// after one timestamp frontier. Each per-shard scan is individually
// linearizable (the EQ-ASO guarantee); the frontier plus closure repair
// extend that to a consistent global cut, certified by CutValidator.
type Cut struct {
	Frontier rt.Ticks
	Map      ShardMap
	Shards   []ShardCut
	Rounds   int // total coordination rounds (1 + closure repairs)
}

// Skew is the cut's temporal spread: the latest shard scan completion
// minus the frontier. A perfectly instantaneous cut has skew equal to
// one shard scan's latency.
func (c *Cut) Skew() rt.Ticks {
	var max rt.Ticks
	for _, sc := range c.Shards {
		if d := sc.ScanEnd - c.Frontier; d > max {
			max = d
		}
	}
	return max
}

// DumpString renders the cut deterministically (shards in order, keys
// sorted by svc.MergeKeys), so two dumps of equal cuts are byte-equal.
func (c *Cut) DumpString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cut frontier=%d map=v%d shards=%d rounds=%d\n",
		c.Frontier, c.Map.Version, len(c.Shards), c.Rounds)
	for s, sc := range c.Shards {
		fmt.Fprintf(&sb, "shard %d scan=[%d,%d] pending=%d rounds=%d\n",
			s, sc.ScanStart, sc.ScanEnd, sc.Pending, sc.Rounds)
		best := bestMarks(sc.Segments)
		for _, k := range svc.MergeKeys(sc.Segments) {
			if mk, ok := best[k]; ok {
				fmt.Fprintf(&sb, "  %s = %s@%d prev=%s@%d\n", k, mk.Writer, mk.Seq, mk.PrevKey, mk.PrevSeq)
			} else {
				fmt.Fprintf(&sb, "  %s = <%d members>\n", k, len(sc.Segments))
			}
		}
	}
	return sb.String()
}

// bestMarks indexes a shard snapshot: per key, the highest-sequence mark
// any member segment holds for it.
func bestMarks(segments [][]byte) map[string]Mark {
	best := make(map[string]Mark)
	for _, seg := range segments {
		for _, rec := range svc.DecodeRecords(seg) {
			mk, ok := ParseMark(rec.V)
			if !ok {
				continue
			}
			if cur, seen := best[rec.K]; !seen || mk.Seq > cur.Seq {
				best[rec.K] = mk
			}
		}
	}
	return best
}

// GlobalScan takes one frontier cut: it stamps the frontier now, then
// scans every shard in parallel (own shards through the local fast path,
// the rest via one contact each, retrying members on timeout). Every
// shard scan linearizes at or after the frontier. The result is NOT yet
// guaranteed prefix-closed — a writer's predecessor can commit between
// two shards' linearization points — use GlobalScanClosed for a
// validated, repaired cut.
func (n *Node) GlobalScan() (*Cut, error) {
	m := n.Map()
	frontier := n.rtm.Now()
	cut := &Cut{Frontier: frontier, Map: m, Shards: make([]ShardCut, m.Shards()), Rounds: 1}
	targets := make([]int, m.Shards())
	for s := range targets {
		targets[s] = s
	}
	if err := n.scanShards(m, frontier, targets, cut.Shards); err != nil {
		return nil, err
	}
	return cut, nil
}

// DefaultCutRounds bounds closure repair. Each repair round re-scans a
// shard strictly after the round that detected the hole, and the missing
// predecessor had already committed before detection, so one round closes
// every detected hole; the cap only guards against a validator fed by a
// non-mark workload.
const DefaultCutRounds = 5

// GlobalScanClosed takes a frontier cut and repairs it to prefix
// closure: while the validator finds an update whose causal predecessor
// is missing from the predecessor's shard, those shards are re-scanned at
// the same frontier and the cut re-checked. The returned cut, when err is
// nil, passes the validator's closure check.
func (n *Node) GlobalScanClosed(v *CutValidator, maxRounds int) (*Cut, error) {
	if maxRounds <= 0 {
		maxRounds = DefaultCutRounds
	}
	cut, err := n.GlobalScan()
	if err != nil {
		return nil, err
	}
	for cut.Rounds < maxRounds {
		missing := v.MissingClosure(cut)
		if len(missing) == 0 {
			return cut, nil
		}
		prev := make(map[int]int, len(missing))
		for _, s := range missing {
			prev[s] = cut.Shards[s].Rounds
		}
		if err := n.scanShards(cut.Map, cut.Frontier, missing, cut.Shards); err != nil {
			return cut, err
		}
		for _, s := range missing {
			cut.Shards[s].Rounds = prev[s] + 1
		}
		cut.Rounds++
	}
	if missing := v.MissingClosure(cut); len(missing) > 0 {
		return cut, fmt.Errorf("cluster: cut not prefix-closed after %d rounds (shards %v)", cut.Rounds, missing)
	}
	return cut, nil
}

// scanShards scans the target shards at the given frontier in parallel,
// writing results into out (indexed by shard). Unresponsive contacts are
// suspected and the shard retried on another member; a stale-map
// rejection aborts the cut (placement moved under it).
func (n *Node) scanShards(m ShardMap, frontier rt.Ticks, targets []int, out []ShardCut) error {
	type slot struct {
		shard   int
		lc      *localCut
		pc      *pendingCall
		id      uint64
		contact int
	}
	remaining := targets
	for attempt := 0; len(remaining) > 0 && attempt < n.maxAttempts(m); attempt++ {
		slots := make([]*slot, 0, len(remaining))
		for _, s := range remaining {
			if n.ownedState(s) != nil {
				lc := &localCut{shard: s, frontier: frontier}
				n.enqueueLocal(lc)
				slots = append(slots, &slot{shard: s, lc: lc, contact: -1})
				continue
			}
			contact := n.pickContact(m, s, attempt)
			shard := s
			id, pc, msg := n.beginCall(func(req uint64) rt.Message {
				return MsgCutReq{Req: req, MapVer: m.Version, Shard: shard, Frontier: frontier}
			})
			n.cl.Send(contact, msg)
			slots = append(slots, &slot{shard: s, pc: pc, id: id, contact: contact})
		}
		deadline := n.rtm.Now() + n.cfg.Timeout
		err := n.rtm.WaitUntilThen("cluster: await cut",
			func() bool {
				if n.rtm.Now() >= deadline {
					return true
				}
				for _, sl := range slots {
					if sl.lc != nil && !sl.lc.done {
						return false
					}
					if sl.pc != nil && !sl.pc.done {
						return false
					}
				}
				return true
			},
			func() {
				for _, sl := range slots {
					if sl.pc != nil && !sl.pc.done {
						delete(n.calls, sl.id)
					}
				}
			})
		if err != nil {
			return err
		}
		var retry []int
		stale := false
		for _, sl := range slots {
			var resp MsgCutResp
			done := false
			n.rtm.Atomic(func() {
				if sl.lc != nil {
					done = sl.lc.done
					resp = sl.lc.resp
				} else if sl.pc.done {
					// Tolerate a mistyped response (a stale-request
					// collision) as a non-answer: the shard is retried.
					resp, done = sl.pc.resp.(MsgCutResp)
				}
			})
			if !done {
				n.suspect(sl.contact)
				retry = append(retry, sl.shard)
				continue
			}
			switch resp.Status {
			case StatusOK:
				out[sl.shard] = ShardCut{
					Shard: sl.shard, Contact: sl.contact,
					ScanStart: resp.ScanStart, ScanEnd: resp.ScanEnd,
					Pending: resp.Pending, Segments: resp.Segments, Rounds: 1,
				}
			case StatusStaleMap:
				stale = true
			default:
				retry = append(retry, sl.shard)
			}
		}
		if stale {
			return fmt.Errorf("cluster: shard map changed during cut (had v%d)", m.Version)
		}
		remaining = retry
	}
	if len(remaining) > 0 {
		return fmt.Errorf("%w: cut shards %v unresponsive", ErrNoContact, remaining)
	}
	return nil
}

// ValidatorOptions tunes the cut checks.
type ValidatorOptions struct {
	// CheckPlacement additionally requires every key to live on the shard
	// the cut map's ring assigns it.
	CheckPlacement bool
	// RequireMarks makes non-mark values violations (set when the
	// workload is known to write only encoded Marks).
	RequireMarks bool
}

// CutValidator checks a Cut against the cross-shard consistency
// invariants derived from the per-shard (A1)–(A4) guarantees:
//
//   - frontier sanity: every shard scan linearized inside the cut's
//     window (Frontier ≤ ScanStart ≤ ScanEnd);
//   - per-key writer ownership: a key is written by exactly one writer
//     (the marked workload's namespace discipline);
//   - per-writer prefix closure: an update in cut(i) implies its causal
//     predecessor — the same writer's previous write — is in cut(j) of
//     the shard owning the predecessor key, at sequence ≥ PrevSeq;
//   - optionally, ring placement of every key.
type CutValidator struct {
	Opts ValidatorOptions
}

// NewCutValidator builds a validator.
func NewCutValidator(opts ValidatorOptions) *CutValidator {
	return &CutValidator{Opts: opts}
}

// Validate returns every invariant violation found in the cut (empty
// slice = the cut is consistent).
func (v *CutValidator) Validate(cut *Cut) []string {
	var out []string
	marks := make([]map[string]Mark, len(cut.Shards))
	writers := make(map[string]string) // key → writer, across all shards
	ring := cut.Map.Ring()
	for s := range cut.Shards {
		sc := &cut.Shards[s]
		if sc.Segments == nil && sc.ScanEnd == 0 {
			out = append(out, fmt.Sprintf("shard %d absent from cut", s))
			marks[s] = map[string]Mark{}
			continue
		}
		if sc.ScanStart < cut.Frontier {
			out = append(out, fmt.Sprintf("shard %d scan linearized at %d, before frontier %d", s, sc.ScanStart, cut.Frontier))
		}
		if sc.ScanEnd < sc.ScanStart {
			out = append(out, fmt.Sprintf("shard %d scan window inverted [%d,%d]", s, sc.ScanStart, sc.ScanEnd))
		}
		marks[s] = bestMarks(sc.Segments)
		for _, seg := range sc.Segments {
			for _, rec := range svc.DecodeRecords(seg) {
				mk, ok := ParseMark(rec.V)
				if !ok {
					if v.Opts.RequireMarks {
						out = append(out, fmt.Sprintf("shard %d key %q holds a non-mark value", s, rec.K))
					}
					continue
				}
				if w, seen := writers[rec.K]; seen && w != mk.Writer {
					out = append(out, fmt.Sprintf("key %q written by two writers (%s, %s)", rec.K, w, mk.Writer))
				} else {
					writers[rec.K] = mk.Writer
				}
				if v.Opts.CheckPlacement {
					if owner := ring.ShardFor(rec.K); owner != s {
						out = append(out, fmt.Sprintf("key %q found in cut(%d) but ring places it on shard %d", rec.K, s, owner))
					}
				}
			}
		}
	}
	out = append(out, v.closureViolations(cut, marks, ring, nil)...)
	return out
}

// MissingClosure returns the shards that must be re-scanned to restore
// per-writer prefix closure: the owner shards of every missing or
// too-old causal predecessor.
func (v *CutValidator) MissingClosure(cut *Cut) []int {
	marks := make([]map[string]Mark, len(cut.Shards))
	for s := range cut.Shards {
		marks[s] = bestMarks(cut.Shards[s].Segments)
	}
	need := make(map[int]bool)
	v.closureViolations(cut, marks, cut.Map.Ring(), need)
	out := make([]int, 0, len(need))
	for s := range need {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// closureViolations runs the prefix-closure check over the indexed cut.
// When need is non-nil, it collects the owner shards of the violated
// predecessors instead of allocating messages for them.
func (v *CutValidator) closureViolations(cut *Cut, marks []map[string]Mark, ring *Ring, need map[int]bool) []string {
	var out []string
	for s := range cut.Shards {
		for k, mk := range marks[s] {
			if mk.PrevKey == "" {
				continue
			}
			owner := ring.ShardFor(mk.PrevKey)
			if owner < 0 || owner >= len(marks) {
				continue
			}
			pm, ok := marks[owner][mk.PrevKey]
			if ok && pm.Seq >= mk.PrevSeq {
				continue
			}
			if need != nil {
				need[owner] = true
				continue
			}
			if !ok {
				out = append(out, fmt.Sprintf(
					"update %s@%d on key %q in cut(%d) but predecessor key %q missing from cut(%d)",
					mk.Writer, mk.Seq, k, s, mk.PrevKey, owner))
			} else {
				out = append(out, fmt.Sprintf(
					"update %s@%d on key %q in cut(%d) but predecessor %q in cut(%d) is at seq %d < %d",
					mk.Writer, mk.Seq, k, s, mk.PrevKey, owner, pm.Seq, mk.PrevSeq))
			}
		}
	}
	return out
}
