package cluster

import (
	"errors"
	"fmt"

	"mpsnap/internal/mux"
	"mpsnap/internal/rt"
	"mpsnap/internal/svc"
)

// ClusterChannel is the mux channel the routing layer runs on; shard
// engines run on ShardChannel(s). Every node of the topology binds both.
const ClusterChannel = "cluster"

// ShardChannel names shard s's engine channel.
func ShardChannel(s int) string { return fmt.Sprintf("shard/%d", s) }

// DefaultTimeout is the per-request routing timeout when Config.Timeout
// is 0: generous against worst measured protocol latencies (≤ ~10D) plus
// chaos delay spikes.
const DefaultTimeout = 20 * rt.TicksPerD

// errTimeout marks a routed request whose contact never answered; the
// router retries the next shard member.
var errTimeout = errors.New("cluster: routed request timed out")

// ErrNoContact is returned when every routing attempt for an operation
// was exhausted (all shard members unresponsive or erroring).
var ErrNoContact = errors.New("cluster: no responsive shard contact")

// Config parameterizes one node of the cluster topology.
type Config struct {
	// Map is the initial shard map (Validate must pass). The node builds
	// an engine + service for every shard it is a member of.
	Map ShardMap
	// Provision lists additional maps whose owned shards are also bound
	// at construction (engines are static; a node that will gain shards
	// at a future map version must pre-provision them). A shard index
	// provisioned twice must have identical membership.
	Provision []ShardMap
	// NewEngine builds one shard engine on its shard-local runtime,
	// returning the engine's message handler and client face. The same
	// constructor must be used on every member. Required.
	NewEngine func(shard int, r rt.Runtime) (rt.Handler, svc.Object)
	// SvcOptions configures each owned shard's service front. Coalesce is
	// reserved (the node installs the cumulative key-map merger).
	SvcOptions svc.Options
	// SeedSegment, if set, returns the node's recovered cumulative key
	// segment for a shard (nil for none). A restarted node must resume
	// its router key map from the last segment it published, or its next
	// routed write would publish a fresh map and erase every key this
	// member served before the crash from the shard snapshot.
	SeedSegment func(shard int) []byte
	// Health, if set, orders routing contacts healthy-first and receives
	// timeout suspicions. Typically one shared Health fed by the
	// backend's message observer.
	Health *Health
	// Timeout bounds each routed request (default DefaultTimeout).
	Timeout rt.Ticks
}

// shardState is one owned shard: its service front plus this node's
// cumulative key map (router-thread-only state, same discipline as
// svc.Store's per-shard merge).
type shardState struct {
	shard int
	svc   *svc.Service
	cum   map[string][]byte
	order []string
}

// merge folds routed key writes into the cumulative map; see
// svc.Store's merge for why the map must be cumulative.
func (st *shardState) merge(payloads [][]byte) []byte {
	for _, p := range payloads {
		for _, rec := range svc.DecodeRecords(p) {
			if _, seen := st.cum[rec.K]; !seen {
				st.order = append(st.order, rec.K)
			}
			st.cum[rec.K] = rec.V
		}
	}
	recs := make([]svc.Record, 0, len(st.order))
	for _, k := range st.order {
		recs = append(recs, svc.Record{K: k, V: st.cum[k]})
	}
	return svc.EncodeRecords(recs)
}

// inbound is one routed request parked for the router thread (handlers
// must not block; the router serves the queue from a dedicated thread).
type inbound struct {
	src   int        // global sender to reply to (-1: local fast path)
	msg   rt.Message // MsgUpdateReq, MsgScanReq, or MsgCutReq
	local *localCut  // local fast-path cut target (src == -1)
}

// localCut is a cut request served without a network hop: GlobalScan on a
// member of the target shard parks it directly in the router queue.
type localCut struct {
	shard    int
	frontier rt.Ticks
	done     bool
	resp     MsgCutResp
}

// pendingCall is one outbound routed request awaiting its response.
type pendingCall struct {
	done bool
	resp rt.Message
}

// Node is one physical node's cluster stack: the mux routing its shard
// engines and the cluster channel, the owned shards' service fronts, the
// router serving routed requests, and the client API (Update/Scan/
// GlobalScan) that routes by the node's current shard map.
//
// Threads: the embedding application must run, per node, one thread per
// owned shard calling Serve on that shard's service (see Services) and
// one thread running ServeRouter. Update/Scan/GlobalScan may then be
// called from any number of client threads.
type Node struct {
	rtm rt.Runtime
	mx  *mux.Mux
	cl  rt.Runtime // the "cluster" channel's runtime (global IDs)
	cfg Config

	// Guarded by the node's atomicity domain.
	smap    ShardMap
	rings   map[uint64]*Ring
	owned   map[int]*shardState
	queue   []*inbound
	calls   map[uint64]*pendingCall
	nextReq uint64
	closed  bool
}

// NewNode builds the node's cluster stack on r and returns it. Register
// Handler() as the node's message handler before traffic flows.
func NewNode(r rt.Runtime, cfg Config) (*Node, error) {
	if err := cfg.Map.Validate(); err != nil {
		return nil, err
	}
	if cfg.NewEngine == nil {
		return nil, fmt.Errorf("cluster: Config.NewEngine is required")
	}
	if cfg.SvcOptions.Coalesce != nil {
		return nil, fmt.Errorf("cluster: Config.SvcOptions.Coalesce is reserved by the node")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	n := &Node{
		rtm:   r,
		mx:    mux.New(r),
		cfg:   cfg,
		smap:  cfg.Map,
		rings: make(map[uint64]*Ring),
		owned: make(map[int]*shardState),
		calls: make(map[uint64]*pendingCall),
		// Seed request IDs from the clock: a restarted incarnation must
		// not reuse IDs the dead one has responses in flight for, or a
		// stale response would complete a fresh call of another type.
		nextReq: uint64(r.Now()) << 24,
	}
	n.cl = n.mx.Channel(ClusterChannel)
	if err := n.mx.BindErr(ClusterChannel, rt.HandlerFunc(n.handleCluster)); err != nil {
		return nil, err
	}
	maps := append([]ShardMap{cfg.Map}, cfg.Provision...)
	bound := make(map[int][]int) // shard → members already bound
	for _, m := range maps {
		for _, s := range m.OwnedBy(r.ID()) {
			if prev, ok := bound[s]; ok {
				if !sameMembers(prev, m.Members[s]) {
					return nil, fmt.Errorf("cluster: shard %d provisioned twice with different members", s)
				}
				continue
			}
			if err := n.bindShard(s, m); err != nil {
				return nil, err
			}
			bound[s] = m.Members[s]
		}
	}
	return n, nil
}

func sameMembers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bindShard builds shard s's engine on its shard-local runtime and its
// service front, binding the shard's mux channel.
func (n *Node) bindShard(s int, m ShardMap) error {
	members := m.Members[s]
	local := m.LocalID(s, n.rtm.ID())
	name := ShardChannel(s)
	srt := newShardRuntime(n.mx.Channel(name), members, local, m.F)
	h, obj := n.cfg.NewEngine(s, srt)
	if err := n.mx.BindErr(name, remapHandler{members: members, inner: h}); err != nil {
		return err
	}
	st := &shardState{shard: s, cum: make(map[string][]byte)}
	if n.cfg.SeedSegment != nil {
		for _, rec := range svc.DecodeRecords(n.cfg.SeedSegment(s)) {
			st.order = append(st.order, rec.K)
			st.cum[rec.K] = rec.V
		}
	}
	opts := n.cfg.SvcOptions
	opts.Coalesce = st.merge
	st.svc = svc.New(srt, obj, opts)
	n.owned[s] = st
	return nil
}

// Handler returns the node's top-level message handler (the mux).
func (n *Node) Handler() rt.Handler { return n.mx }

// Services returns the owned shards' service fronts in shard order; the
// embedding application must run each one's Serve on a dedicated thread.
func (n *Node) Services() []*svc.Service {
	var shards []int
	n.rtm.Atomic(func() {
		for s := range n.owned {
			shards = append(shards, s)
		}
	})
	sortInts(shards)
	out := make([]*svc.Service, 0, len(shards))
	for _, s := range shards {
		out = append(out, n.owned[s].svc)
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// OwnedShards returns the shard indices this node hosts engines for.
func (n *Node) OwnedShards() []int {
	var shards []int
	n.rtm.Atomic(func() {
		for s := range n.owned {
			shards = append(shards, s)
		}
	})
	sortInts(shards)
	return shards
}

// Close stops admission everywhere: owned services drain, the router
// serves what is queued and exits, new routed requests are refused.
func (n *Node) Close() {
	n.rtm.Atomic(func() { n.closed = true })
	for _, st := range n.owned {
		st.svc.Close()
	}
}

// Map returns the node's current shard map.
func (n *Node) Map() ShardMap {
	var m ShardMap
	n.rtm.Atomic(func() { m = n.smap })
	return m
}

// InstallMap adopts m if it is newer than the current map (routing only:
// engines for newly-owned shards must have been provisioned at
// construction). Returns whether the map was adopted.
func (n *Node) InstallMap(m ShardMap) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	adopted := false
	n.rtm.Atomic(func() { adopted = n.adoptLocked(m) })
	return adopted, nil
}

// adoptLocked installs a newer map; must run in the atomicity domain.
func (n *Node) adoptLocked(m ShardMap) bool {
	if m.Version <= n.smap.Version || len(m.Members) == 0 {
		return false
	}
	n.smap = m
	return true
}

// ringLocked returns the cached placement ring of map m.
func (n *Node) ringLocked(m ShardMap) *Ring {
	if r, ok := n.rings[m.Version]; ok {
		return r
	}
	r := m.Ring()
	n.rings[m.Version] = r
	return r
}

// route returns the current map and the key's shard under it.
func (n *Node) route(key string) (ShardMap, int) {
	var m ShardMap
	var s int
	n.rtm.Atomic(func() {
		m = n.smap
		s = n.ringLocked(m).ShardFor(key)
	})
	return m, s
}

// ownedState returns the state of shard s if this node hosts it.
func (n *Node) ownedState(s int) *shardState {
	var st *shardState
	n.rtm.Atomic(func() { st = n.owned[s] })
	return st
}

// pickContact chooses a member of shard s to route to: spread by the
// caller's node ID so different routers load different members, advanced
// by the attempt number on retry, skipping suspects while any member is
// believed healthy.
func (n *Node) pickContact(m ShardMap, s, attempt int) int {
	members := m.Members[s]
	base := n.rtm.ID() + attempt
	if n.cfg.Health != nil {
		for i := 0; i < len(members); i++ {
			cand := members[(base+i)%len(members)]
			if !n.cfg.Health.Suspected(cand) {
				return cand
			}
		}
	}
	return members[base%len(members)]
}

// maxAttempts bounds routing retries for one operation: enough to try
// every member of the largest shard plus a map-refetch round.
func (n *Node) maxAttempts(m ShardMap) int {
	max := 0
	for _, ms := range m.Members {
		if len(ms) > max {
			max = len(ms)
		}
	}
	return max + 2
}

// Update writes key=val, routing to the owning shard (committing through
// this node's own service when it is a member — no network hop). It
// retries across shard members on timeout and re-routes under the newer
// map on a stale-map rejection.
func (n *Node) Update(key string, val []byte) error {
	payload := svc.EncodeRecords([]svc.Record{{K: key, V: val}})
	var lastErr error
	m, _ := n.route(key)
	for attempt := 0; attempt < n.maxAttempts(m); attempt++ {
		var s int
		m, s = n.route(key)
		if st := n.ownedState(s); st != nil {
			return st.svc.Update(payload)
		}
		contact := n.pickContact(m, s, attempt)
		resp, err := n.call(contact, func(req uint64) rt.Message {
			return MsgUpdateReq{Req: req, MapVer: m.Version, Shard: s, Key: key, Val: val}
		})
		if err == errTimeout {
			n.suspect(contact)
			lastErr = err
			continue
		}
		if err != nil {
			return err
		}
		r, ok := resp.(MsgUpdateResp)
		if !ok {
			lastErr = fmt.Errorf("cluster: unexpected %s from node %d", resp.Kind(), contact)
			continue
		}
		switch r.Status {
		case StatusOK:
			return nil
		case StatusStaleMap, StatusWrongShard:
			lastErr = fmt.Errorf("cluster: map v%d stale at node %d", m.Version, contact)
			continue // the adopted newer map re-routes on the next attempt
		default:
			lastErr = fmt.Errorf("cluster: update refused by node %d", contact)
			continue
		}
	}
	return fmt.Errorf("%w: update %q: %v", ErrNoContact, key, lastErr)
}

// Scan snapshots the key's owning shard and returns the key's per-member
// value vector (one entry per shard member, nil = that member's segment
// never wrote the key), from one linearizable shard snapshot.
func (n *Node) Scan(key string) ([][]byte, error) {
	var lastErr error
	m, _ := n.route(key)
	for attempt := 0; attempt < n.maxAttempts(m); attempt++ {
		var s int
		m, s = n.route(key)
		if st := n.ownedState(s); st != nil {
			snap, err := st.svc.Scan()
			if err != nil {
				return nil, err
			}
			return extractKey(snap, key), nil
		}
		contact := n.pickContact(m, s, attempt)
		resp, err := n.call(contact, func(req uint64) rt.Message {
			return MsgScanReq{Req: req, MapVer: m.Version, Shard: s, Key: key}
		})
		if err == errTimeout {
			n.suspect(contact)
			lastErr = err
			continue
		}
		if err != nil {
			return nil, err
		}
		r, ok := resp.(MsgScanResp)
		if !ok {
			lastErr = fmt.Errorf("cluster: unexpected %s from node %d", resp.Kind(), contact)
			continue
		}
		switch r.Status {
		case StatusOK:
			return r.Vals, nil
		case StatusStaleMap, StatusWrongShard:
			lastErr = fmt.Errorf("cluster: map v%d stale at node %d", m.Version, contact)
			continue
		default:
			lastErr = fmt.Errorf("cluster: scan refused by node %d", contact)
			continue
		}
	}
	return nil, fmt.Errorf("%w: scan %q: %v", ErrNoContact, key, lastErr)
}

// extractKey projects a shard snapshot onto one key.
func extractKey(snap [][]byte, key string) [][]byte {
	out := make([][]byte, len(snap))
	for node, seg := range snap {
		for _, rec := range svc.DecodeRecords(seg) {
			if rec.K == key {
				out[node] = rec.V
				break
			}
		}
	}
	return out
}

// FetchMap asks a remote node for its shard map and adopts it if newer
// (the refetch half of stale-map handling; normal operations also adopt
// maps piggybacked on rejections).
func (n *Node) FetchMap(from int) (ShardMap, error) {
	resp, err := n.call(from, func(req uint64) rt.Message { return MsgMapReq{Req: req} })
	if err != nil {
		return ShardMap{}, err
	}
	r, ok := resp.(MsgMapResp)
	if !ok {
		return ShardMap{}, fmt.Errorf("cluster: unexpected %s from node %d", resp.Kind(), from)
	}
	return r.Map, nil
}

// suspect reports a timed-out contact to the health tracker.
func (n *Node) suspect(id int) {
	if n.cfg.Health != nil {
		n.cfg.Health.Suspect(id)
	}
}

// beginCall allocates a pending call and builds its request under the
// atomicity domain.
func (n *Node) beginCall(build func(req uint64) rt.Message) (uint64, *pendingCall, rt.Message) {
	pc := &pendingCall{}
	var id uint64
	var msg rt.Message
	n.rtm.Atomic(func() {
		n.nextReq++
		id = n.nextReq
		n.calls[id] = pc
		msg = build(id)
	})
	return id, pc, msg
}

// call sends one routed request and waits for its response or timeout.
func (n *Node) call(dst int, build func(req uint64) rt.Message) (rt.Message, error) {
	id, pc, msg := n.beginCall(build)
	n.cl.Send(dst, msg)
	deadline := n.rtm.Now() + n.cfg.Timeout
	timedOut := false
	err := n.rtm.WaitUntilThen("cluster: await "+msg.Kind(),
		func() bool { return pc.done || n.rtm.Now() >= deadline },
		func() {
			if !pc.done {
				delete(n.calls, id)
				timedOut = true
			}
		})
	if err != nil {
		return nil, err
	}
	if timedOut {
		return nil, errTimeout
	}
	return pc.resp, nil
}

// handleCluster is the "cluster" channel handler: it parks routed
// requests for the router thread, completes this node's outbound calls,
// serves map fetches inline (they read one field — no blocking), and
// adopts newer maps piggybacked on any response.
func (n *Node) handleCluster(src int, msg rt.Message) {
	switch m := msg.(type) {
	case MsgUpdateReq, MsgScanReq, MsgCutReq:
		if n.closed {
			n.refuse(src, msg)
			return
		}
		n.queue = append(n.queue, &inbound{src: src, msg: msg})
	case MsgMapReq:
		n.cl.Send(src, MsgMapResp{Req: m.Req, Map: n.smap})
	case MsgUpdateResp:
		n.adoptLocked(m.Map)
		n.complete(m.Req, msg)
	case MsgScanResp:
		n.adoptLocked(m.Map)
		n.complete(m.Req, msg)
	case MsgCutResp:
		n.adoptLocked(m.Map)
		n.complete(m.Req, msg)
	case MsgMapResp:
		n.adoptLocked(m.Map)
		n.complete(m.Req, msg)
	}
}

// refuse answers a routed request on a closed node with StatusErr.
func (n *Node) refuse(src int, msg rt.Message) {
	switch m := msg.(type) {
	case MsgUpdateReq:
		n.cl.Send(src, MsgUpdateResp{Req: m.Req, Status: StatusErr})
	case MsgScanReq:
		n.cl.Send(src, MsgScanResp{Req: m.Req, Status: StatusErr})
	case MsgCutReq:
		n.cl.Send(src, MsgCutResp{Req: m.Req, Status: StatusErr, Shard: m.Shard, Frontier: m.Frontier})
	}
}

// complete resolves an outbound call (late responses after a timeout are
// dropped — the call entry is gone).
func (n *Node) complete(id uint64, msg rt.Message) {
	if pc, ok := n.calls[id]; ok {
		pc.resp = msg
		pc.done = true
		delete(n.calls, id)
	}
}

// enqueueLocal parks a local fast-path cut request in the router queue.
func (n *Node) enqueueLocal(lc *localCut) {
	n.rtm.Atomic(func() {
		n.queue = append(n.queue, &inbound{src: -1, local: lc})
	})
}

// ServeRouter runs the routing worker on the calling thread: it drains
// the parked request queue and serves it through the owned shards'
// services, batching scans (all scans and cut requests of one drain share
// one shard snapshot). Returns nil once Close has been called and the
// queue drained, or rt.ErrCrashed when the node crashes.
func (n *Node) ServeRouter() error {
	for {
		var batch []*inbound
		var closed bool
		err := n.rtm.WaitUntilThen("cluster: router idle",
			func() bool { return len(n.queue) > 0 || n.closed },
			func() {
				batch = n.queue
				n.queue = nil
				closed = n.closed
			})
		if err != nil {
			return err
		}
		if len(batch) == 0 {
			if closed {
				return nil
			}
			continue
		}
		n.serveBatch(batch)
	}
}

// servedScan is one shard snapshot shared by a drain's scans and cuts.
type servedScan struct {
	ticket  *svc.Ticket
	start   rt.Ticks
	pending int
	err     error
}

// serveBatch serves one drained router queue: updates are admitted first
// (each key write becomes one service update, coalesced by the service
// into the shard's cumulative segment), then one shared scan per shard
// answers every scan and cut request of the drain.
func (n *Node) serveBatch(batch []*inbound) {
	m := n.Map()
	type pendingUpdate struct {
		in     *inbound
		ticket *svc.Ticket
	}
	var updates []pendingUpdate
	scans := make(map[int]*servedScan)
	var served []*inbound

	// ensureScan admits (at most) one shared scan per shard per drain.
	ensureScan := func(st *shardState) *servedScan {
		sc, ok := scans[st.shard]
		if !ok {
			sc = &servedScan{start: n.rtm.Now(), pending: st.svc.QueueLen()}
			tk, err := st.svc.ScanAsync()
			if err != nil {
				sc.err = err
			} else {
				sc.ticket = tk
			}
			scans[st.shard] = sc
		}
		return sc
	}

	for _, in := range batch {
		shard, mapVer := in.shard()
		st := n.ownedState(shard)
		if st == nil {
			n.reject(in, StatusWrongShard, m)
			continue
		}
		if in.src >= 0 && mapVer < m.Version {
			n.reject(in, StatusStaleMap, m)
			continue
		}
		switch req := in.msg.(type) {
		case MsgUpdateReq:
			payload := svc.EncodeRecords([]svc.Record{{K: req.Key, V: req.Val}})
			tk, err := st.svc.UpdateAsync(payload)
			if err != nil {
				n.reject(in, StatusErr, m)
				continue
			}
			updates = append(updates, pendingUpdate{in: in, ticket: tk})
		default: // MsgScanReq or a (routed or local) cut
			ensureScan(st)
			served = append(served, in)
		}
	}

	// Completion: updates in admission order, then the shared scans.
	for _, pu := range updates {
		req := pu.in.msg.(MsgUpdateReq)
		if err := pu.ticket.Wait(); err != nil {
			n.cl.Send(pu.in.src, MsgUpdateResp{Req: req.Req, Status: StatusErr})
			continue
		}
		n.cl.Send(pu.in.src, MsgUpdateResp{Req: req.Req, Status: StatusOK})
	}
	for _, sc := range scans {
		if sc.ticket == nil {
			continue
		}
		if err := sc.ticket.Wait(); err != nil {
			sc.err = err
		}
	}
	end := n.rtm.Now()
	for _, in := range served {
		shard, _ := in.shard()
		sc := scans[shard]
		if sc.err != nil {
			n.reject(in, StatusErr, m)
			continue
		}
		snap := sc.ticket.Snap()
		switch req := in.msg.(type) {
		case MsgScanReq:
			n.cl.Send(in.src, MsgScanResp{Req: req.Req, Status: StatusOK, Vals: extractKey(snap, req.Key)})
		case MsgCutReq:
			n.cl.Send(in.src, MsgCutResp{
				Req: req.Req, Status: StatusOK, Shard: shard, Frontier: req.Frontier,
				ScanStart: sc.start, ScanEnd: end, Pending: sc.pending, Segments: snap,
			})
		default: // local cut
			n.rtm.Atomic(func() {
				in.local.resp = MsgCutResp{
					Status: StatusOK, Shard: shard, Frontier: in.local.frontier,
					ScanStart: sc.start, ScanEnd: end, Pending: sc.pending, Segments: snap,
				}
				in.local.done = true
			})
		}
	}
}

// shard extracts the target shard and map version of a routed request.
func (in *inbound) shard() (int, uint64) {
	if in.local != nil {
		return in.local.shard, 0
	}
	switch req := in.msg.(type) {
	case MsgUpdateReq:
		return req.Shard, req.MapVer
	case MsgScanReq:
		return req.Shard, req.MapVer
	case MsgCutReq:
		return req.Shard, req.MapVer
	}
	return -1, 0
}

// reject answers a routed request with a non-OK status (carrying the
// responder's map so stale clients converge without a separate fetch).
// Local fast-path cuts cannot be stale or misrouted; a service error is
// reported through the same localCut slot.
func (n *Node) reject(in *inbound, status byte, m ShardMap) {
	if in.local != nil {
		n.rtm.Atomic(func() {
			in.local.resp = MsgCutResp{Status: status, Shard: in.local.shard, Frontier: in.local.frontier}
			in.local.done = true
		})
		return
	}
	switch req := in.msg.(type) {
	case MsgUpdateReq:
		n.cl.Send(in.src, MsgUpdateResp{Req: req.Req, Status: status, Map: m})
	case MsgScanReq:
		n.cl.Send(in.src, MsgScanResp{Req: req.Req, Status: status, Map: m})
	case MsgCutReq:
		n.cl.Send(in.src, MsgCutResp{Req: req.Req, Status: status, Map: m, Shard: req.Shard, Frontier: req.Frontier})
	}
}
