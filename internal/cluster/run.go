package cluster

import (
	"errors"
	"fmt"
	"math/rand"

	"mpsnap/internal/chaos"
	"mpsnap/internal/core"
	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all" // register every snapshot engine
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/svc"
	"mpsnap/internal/wal"
)

// clusterWALBatch is the WAL fsync batch for cluster chaos runs (same
// rationale as the chaos harness: the protocol's critical points force
// explicit syncs regardless of batching).
const clusterWALBatch = 8

// clusterGrace mirrors the chaos harness's post-deadline grace before
// stuck operations are crash-aborted.
const clusterGrace = 30 * rt.TicksPerD

// RunConfig parameterizes one cluster chaos run: Shards independent
// EQ-ASO clusters of N nodes each (contiguous placement), every node
// running the full cluster stack, workload clients writing marked
// causal chains across shards, and one coordinator per shard taking
// validated GlobalScans.
type RunConfig struct {
	// Shards × N topology, each shard tolerating F of its members.
	Shards, N, F int
	// Seed derives everything: per-shard fault schedules, workload RNGs,
	// simulator delays.
	Seed int64
	// Duration of the workload in virtual ticks.
	Duration rt.Ticks
	// Mix is the per-shard fault mix: each shard gets its own
	// chaos.Generate schedule (seed offset by the shard index) remapped
	// onto its members. Mid-broadcast flags are ignored (cluster
	// broadcasts are loops of sends by construction).
	Mix chaos.Mix
	// Clients is the number of workload threads per node (default 1).
	Clients int
	// ScanRatio is each client's probability of scanning instead of
	// updating (default 0.2).
	ScanRatio float64
	// MaxSleep bounds each client's think time (default 2D).
	MaxSleep rt.Ticks
	// GlobalScanEvery is each coordinator's period between validated
	// GlobalScans (default 25D).
	GlobalScanEvery rt.Ticks
	// VNodes is the placement ring's virtual-node count (default
	// DefaultVNodes).
	VNodes int
	// KeysPerClient is each writer's private key-pool size (default 8).
	KeysPerClient int
	// CrashShard, if >= 0, crashes every member of that shard at 40% of
	// the run and restarts them (WAL recovery) at 55%.
	CrashShard int
	// PartitionShard, if >= 0, isolates that whole shard from the rest
	// of the topology during [30%, 60%] of the run (the shard keeps
	// internal quorum; only cross-shard routing is cut).
	PartitionShard int
	// Engine selects the snapshot engine every shard runs, by registry
	// name (default "eqaso"). Sequentially-consistent engines are
	// rejected: the cut validator assumes linearizable shard scans.
	Engine string
	// ShardEngines optionally overrides Engine per shard: entry s
	// applies to shard s, "" falls back to Engine. Shards running
	// restart faults need a durable (WAL-recovering) engine.
	ShardEngines []string

	// engines is the resolved per-shard registry info, filled by
	// normalize.
	engines []engine.Info
}

// DefaultRunConfig returns the standard run shape with the whole-shard
// faults disabled (their zero values would target shard 0).
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Shards: 2, N: 3, F: 1, Duration: 200 * rt.TicksPerD,
		Mix: chaos.DefaultMix(), CrashShard: -1, PartitionShard: -1,
	}
}

func (c *RunConfig) normalize() error {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.N <= 0 {
		c.N = 3
	}
	if c.N <= 2*c.F {
		return fmt.Errorf("cluster: shard size n=%d needs n > 2f (f=%d)", c.N, c.F)
	}
	if c.Duration <= 0 {
		c.Duration = 200 * rt.TicksPerD
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.ScanRatio == 0 {
		c.ScanRatio = 0.2
	}
	if c.MaxSleep <= 0 {
		c.MaxSleep = 2 * rt.TicksPerD
	}
	if c.GlobalScanEvery <= 0 {
		c.GlobalScanEvery = 25 * rt.TicksPerD
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.KeysPerClient <= 0 {
		c.KeysPerClient = 8
	}
	if c.CrashShard >= c.Shards {
		return fmt.Errorf("cluster: -shard-crash %d out of range (shards=%d)", c.CrashShard, c.Shards)
	}
	if c.PartitionShard >= c.Shards {
		return fmt.Errorf("cluster: -shard-partition %d out of range (shards=%d)", c.PartitionShard, c.Shards)
	}
	if c.Engine == "" {
		c.Engine = "eqaso"
	}
	if len(c.ShardEngines) > c.Shards {
		return fmt.Errorf("cluster: %d shard engines for %d shards", len(c.ShardEngines), c.Shards)
	}
	c.engines = make([]engine.Info, c.Shards)
	for s := 0; s < c.Shards; s++ {
		name := c.Engine
		if s < len(c.ShardEngines) && c.ShardEngines[s] != "" {
			name = c.ShardEngines[s]
		}
		in, err := engine.Lookup(name)
		if err != nil {
			return fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		if in.Sequential {
			return fmt.Errorf("cluster: engine %q is sequentially consistent; shards need linearizable scans for cut validation", name)
		}
		if err := in.Validate(c.N, c.F); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", s, err)
		}
		restarts := c.Mix.Restarts > 0 || c.CrashShard == s
		if restarts && !in.Durable() {
			return fmt.Errorf("cluster: shard %d runs restart faults but engine %q has no WAL recovery", s, name)
		}
		c.engines[s] = in
	}
	return nil
}

// engineFor returns the resolved engine of a shard (normalize must have
// run).
func (c *RunConfig) engineFor(shard int) engine.Info { return c.engines[shard] }

// Report is one cluster chaos run's outcome. Violations (consistency)
// must be empty on every seed; CutErrs (availability: a cut that could
// not be assembled while shards were down or unreachable) are expected
// under whole-shard faults.
type Report struct {
	Shards      int   `json:"shards"`
	Nodes       int   `json:"nodes"`
	Updates     int64 `json:"updates"`
	UpdateErrs  int64 `json:"updateErrs"`
	Scans       int64 `json:"scans"`
	ScanErrs    int64 `json:"scanErrs"`
	GlobalScans int64 `json:"globalScans"`
	CutsOK      int64 `json:"cutsOK"`
	// CutRepairs counts cuts that needed at least one closure-repair
	// round before validating.
	CutRepairs int64    `json:"cutRepairs"`
	CutErrs    int64    `json:"cutErrs"`
	SkewMaxD   float64  `json:"skewMaxD"`
	SkewMeanD  float64  `json:"skewMeanD"`
	Violations []string `json:"violations,omitempty"`
	Blocked    []string `json:"blocked,omitempty"`
}

// OK reports whether the run saw no consistency violations and at least
// one validated cut.
func (r *Report) OK() bool { return len(r.Violations) == 0 && r.CutsOK > 0 }

func (r *Report) String() string {
	return fmt.Sprintf("shards=%d nodes=%d updates=%d(+%d err) scans=%d(+%d err) cuts=%d ok=%d repaired=%d err=%d skew(max=%.1fD mean=%.1fD) violations=%d blocked=%d",
		r.Shards, r.Nodes, r.Updates, r.UpdateErrs, r.Scans, r.ScanErrs,
		r.GlobalScans, r.CutsOK, r.CutRepairs, r.CutErrs, r.SkewMaxD, r.SkewMeanD,
		len(r.Violations), len(r.Blocked))
}

// rejoinable is the recovery face of a WAL-recovered engine.
type rejoinable interface{ Rejoin() }

// shardSchedules generates one fault schedule per shard (each over the
// shard's local IDs) from the run seed.
func shardSchedules(cfg RunConfig) []chaos.Schedule {
	scheds := make([]chaos.Schedule, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		scheds[s] = chaos.Generate(cfg.Seed+int64(s)*9973, cfg.N, cfg.F, cfg.Duration, cfg.Mix)
	}
	return scheds
}

// remapEvents rewrites a shard-local schedule onto the shard's global
// member IDs. Mid-broadcast flags are dropped: the cluster stack never
// issues runtime broadcasts (shard runtimes loop sends), so an armed
// mid-crash would only fire its fallback; a plain crash at the same tick
// is the equivalent fault.
func remapEvents(evs []chaos.Event, members []int) []chaos.Event {
	out := make([]chaos.Event, len(evs))
	for i, ev := range evs {
		ev.Mid = false
		switch ev.Kind {
		case chaos.EvCrash, chaos.EvRestart:
			ev.Node = members[ev.Node]
		case chaos.EvDropOn, chaos.EvDropOff, chaos.EvSpikeOn, chaos.EvSpikeOff,
			chaos.EvCorruptOn, chaos.EvCorruptOff:
			ev.Src, ev.Dst = members[ev.Src], members[ev.Dst]
		case chaos.EvPartition:
			groups := make([][]int, len(ev.Groups))
			for g, island := range ev.Groups {
				mapped := make([]int, len(island))
				for j, l := range island {
					mapped[j] = members[l]
				}
				groups[g] = mapped
			}
			ev.Groups = groups
		}
		out[i] = ev
	}
	return out
}

// mergeSchedules flattens per-source event streams into one global
// stream. Partition state on every backend is replace-not-merge, so
// overlapping per-shard partition episodes would heal each other; the
// merge rewrites every partition/heal event into the union of all
// sources' active islands at that instant (and a heal only when no
// island remains).
func mergeSchedules(sources [][]chaos.Event) []chaos.Event {
	type tagged struct {
		ev  chaos.Event
		src int
	}
	var all []tagged
	for si, evs := range sources {
		for _, ev := range evs {
			all = append(all, tagged{ev: ev, src: si})
		}
	}
	// Stable sort by time (source order breaks ties).
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].ev.At < all[j-1].ev.At; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	active := make(map[int][][]int)
	union := func() [][]int {
		var groups [][]int
		for si := range sources { // deterministic source order
			groups = append(groups, active[si]...)
		}
		return groups
	}
	out := make([]chaos.Event, 0, len(all))
	for _, t := range all {
		switch t.ev.Kind {
		case chaos.EvPartition:
			active[t.src] = t.ev.Groups
			out = append(out, chaos.Event{At: t.ev.At, Kind: chaos.EvPartition, Groups: union()})
		case chaos.EvHeal:
			delete(active, t.src)
			if u := union(); len(u) > 0 {
				out = append(out, chaos.Event{At: t.ev.At, Kind: chaos.EvPartition, Groups: u})
			} else {
				out = append(out, chaos.Event{At: t.ev.At, Kind: chaos.EvHeal})
			}
		default:
			out = append(out, t.ev)
		}
	}
	return out
}

// globalEvents builds the full fault stream for a run: the per-shard
// schedules remapped onto their members, plus the whole-shard crash/
// restart and whole-shard partition knobs, partition-aggregated.
func globalEvents(cfg RunConfig, m ShardMap, scheds []chaos.Schedule) []chaos.Event {
	sources := make([][]chaos.Event, 0, cfg.Shards+2)
	for s := 0; s < cfg.Shards; s++ {
		sources = append(sources, remapEvents(scheds[s].Events, m.Members[s]))
	}
	if cfg.CrashShard >= 0 {
		var evs []chaos.Event
		crashAt := cfg.Duration * 40 / 100
		restartAt := cfg.Duration * 55 / 100
		for _, id := range m.Members[cfg.CrashShard] {
			evs = append(evs,
				chaos.Event{At: crashAt, Kind: chaos.EvCrash, Node: id},
				chaos.Event{At: restartAt, Kind: chaos.EvRestart, Node: id})
		}
		sources = append(sources, evs)
	}
	if cfg.PartitionShard >= 0 {
		island := append([]int(nil), m.Members[cfg.PartitionShard]...)
		sources = append(sources, []chaos.Event{
			{At: cfg.Duration * 30 / 100, Kind: chaos.EvPartition, Groups: [][]int{island}},
			{At: cfg.Duration * 60 / 100, Kind: chaos.EvHeal},
		})
	}
	return mergeSchedules(sources)
}

// runLink realizes drop and spike windows for the sim backend (the
// cluster-topology counterpart of the chaos harness's link adversary).
type runLink struct {
	rng   *rand.Rand
	drop  map[[2]int]float64
	extra map[[2]int]rt.Ticks
}

func newRunLink(seed int64) *runLink {
	return &runLink{
		rng:   rand.New(rand.NewSource(seed)),
		drop:  make(map[[2]int]float64),
		extra: make(map[[2]int]rt.Ticks),
	}
}

// OnSend implements sim.LinkAdversary.
func (l *runLink) OnSend(now rt.Ticks, src, dst int, kind string) sim.LinkFate {
	key := [2]int{src, dst}
	fate := sim.LinkFate{Extra: l.extra[key]}
	if p := l.drop[key]; p > 0 && l.rng.Float64() < p {
		fate.Drop = true
	}
	return fate
}

// nodeBuilder wires one node's engine construction for both fresh boot
// and WAL recovery, capturing the rejoin handle and recovered segment.
type nodeBuilder struct {
	cfg     RunConfig
	m       ShardMap
	health  *Health
	files   []*wal.MemFile
	rejoins []rejoinable
}

func newNodeBuilder(cfg RunConfig, m ShardMap, health *Health) *nodeBuilder {
	total := m.NumNodes()
	b := &nodeBuilder{cfg: cfg, m: m, health: health,
		files: make([]*wal.MemFile, total), rejoins: make([]rejoinable, total)}
	for i := range b.files {
		b.files[i] = wal.NewMemFile()
	}
	return b
}

// nodeConfig builds the cluster Config for node id. On recovery the
// engine replays the durable WAL prefix and the router key map is
// re-seeded from the last segment the dead incarnation published.
func (b *nodeBuilder) nodeConfig(id int, recover bool) Config {
	var seed []byte
	c := Config{Map: b.m, Health: b.health}
	c.NewEngine = func(shard int, r rt.Runtime) (rt.Handler, svc.Object) {
		in := b.cfg.engineFor(shard)
		if !recover {
			nd := in.New(r)
			if d, ok := nd.(engine.Durable); ok {
				d.AttachWAL(wal.NewWriter(b.files[id], clusterWALBatch), true)
			}
			b.rejoins[id] = nil
			return nd, nd
		}
		f := b.files[id]
		st := wal.Recover(f.Durable(), r.N(), r.ID())
		if st.OwnTag != 0 {
			if v, ok := st.Log.Get(core.Timestamp{Tag: st.OwnTag, Writer: r.ID()}); ok {
				seed = v
			}
		}
		nd := in.Recover(r, st, wal.NewWriter(f, clusterWALBatch), true)
		b.rejoins[id] = nd.(rejoinable)
		return nd, nd
	}
	c.SeedSegment = func(shard int) []byte { return seed }
	return c
}

// markClient is the cross-shard workload: a writer issuing marked
// updates over a private key pool, each mark chaining to the writer's
// previous acked write, interleaved with keyed scans.
type markClient struct {
	writer  string
	rng     *rand.Rand
	keys    int
	lastKey string
	lastSeq int64
	seq     int64
}

func newMarkClient(writer string, seed int64, keys int) *markClient {
	return &markClient{writer: writer, rng: rand.New(rand.NewSource(seed)), keys: keys}
}

func (c *markClient) key() string {
	return fmt.Sprintf("%s/k%d", c.writer, c.rng.Intn(c.keys))
}

// step performs one workload operation; it returns false when the node
// died under the client (stop the loop).
func (c *markClient) step(nd *Node, scanRatio float64, rep *Report, lock func(func())) bool {
	if c.rng.Float64() < scanRatio {
		_, err := nd.Scan(c.key())
		lock(func() {
			if err != nil {
				rep.ScanErrs++
			} else {
				rep.Scans++
			}
		})
		return err == nil || !errors.Is(err, rt.ErrCrashed)
	}
	c.seq++
	mk := Mark{Writer: c.writer, Seq: c.seq, PrevKey: c.lastKey, PrevSeq: c.lastSeq}
	key := c.key()
	err := nd.Update(key, mk.Encode())
	lock(func() {
		if err != nil {
			rep.UpdateErrs++
		} else {
			rep.Updates++
		}
	})
	if err != nil {
		// The write may still have committed (lost ack); reusing the
		// sequence number for a different key is safe — both marks chain
		// to the same already-committed predecessor.
		c.seq--
		return !errors.Is(err, rt.ErrCrashed)
	}
	c.lastKey, c.lastSeq = key, c.seq
	return true
}

// recordCut folds one coordinator GlobalScan outcome into the report.
func recordCut(rep *Report, v *CutValidator, cut *Cut, err error, lock func(func())) {
	lock(func() {
		rep.GlobalScans++
		if err != nil {
			rep.CutErrs++
			return
		}
		if cut.Rounds > 1 {
			rep.CutRepairs++
		}
		if vio := v.Validate(cut); len(vio) > 0 {
			rep.Violations = append(rep.Violations, vio...)
			return
		}
		rep.CutsOK++
		skew := float64(cut.Skew()) / float64(rt.TicksPerD)
		if skew > rep.SkewMaxD {
			rep.SkewMaxD = skew
		}
		rep.SkewMeanD += skew // sum; finalized by the runner
	})
}

// finishSkew converts the accumulated skew sum into a mean.
func (r *Report) finishSkew() {
	if r.CutsOK > 0 {
		r.SkewMeanD /= float64(r.CutsOK)
	}
}

// RunSim executes one cluster chaos run on the deterministic simulator:
// Shards×N nodes, per-shard fault schedules (plus the whole-shard
// knobs), marked cross-shard workload, and per-shard coordinators taking
// closure-repaired GlobalScans checked by the CutValidator.
func RunSim(cfg RunConfig) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	m := ContiguousMap(cfg.Shards, cfg.N, cfg.F, cfg.VNodes)
	total := m.NumNodes()
	health := NewHealth(total)
	link := newRunLink(cfg.Seed + 1)
	w := sim.New(sim.Config{N: total, F: cfg.F, Seed: cfg.Seed, Observer: health, Link: link})
	scheds := shardSchedules(cfg)
	events := globalEvents(cfg, m, scheds)
	b := newNodeBuilder(cfg, m, health)
	validator := NewCutValidator(ValidatorOptions{CheckPlacement: true, RequireMarks: true})
	rep := &Report{Shards: cfg.Shards, Nodes: total}
	deadline := cfg.Duration
	noLock := func(fn func()) { fn() } // sim procs are scheduler-serialized

	nodes := make([]*Node, total)
	incarnation := make([]int64, total)

	spawnServe := func(id int) {
		nd := nodes[id]
		for si, s := range nd.Services() {
			s := s
			w.GoNode(fmt.Sprintf("svc-%d.%d", id, si), id, func(p *sim.Proc) { _ = s.Serve() })
		}
		w.GoNode(fmt.Sprintf("router-%d", id), id, func(p *sim.Proc) { _ = nd.ServeRouter() })
	}
	clientLoop := func(id, cid int, inc int64) func(p *sim.Proc) {
		writer := fmt.Sprintf("w%dc%d", id, cid)
		if inc > 0 {
			writer = fmt.Sprintf("w%dc%d.%d", id, cid, inc)
		}
		mc := newMarkClient(writer, cfg.Seed*1009+int64(id)+7919*int64(cid)+104729*inc, cfg.KeysPerClient)
		return func(p *sim.Proc) {
			nd := nodes[id]
			for p.Now() < deadline {
				if !mc.step(nd, cfg.ScanRatio, rep, noLock) {
					return
				}
				if p.Now() >= deadline {
					return
				}
				if err := p.Sleep(rt.Ticks(mc.rng.Int63n(int64(cfg.MaxSleep) + 1))); err != nil {
					return
				}
			}
		}
	}
	coordLoop := func(id int) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(id)))
			for p.Now() < deadline {
				jitter := rt.Ticks(rng.Int63n(int64(cfg.GlobalScanEvery/4) + 1))
				if err := p.Sleep(cfg.GlobalScanEvery + jitter); err != nil {
					return
				}
				if p.Now() >= deadline {
					return
				}
				cut, err := nodes[id].GlobalScanClosed(validator, 0)
				if err != nil && errors.Is(err, rt.ErrCrashed) {
					return
				}
				recordCut(rep, validator, cut, err, noLock)
			}
		}
	}
	spawnClients := func(id int, inc int64) {
		for cid := 0; cid < cfg.Clients; cid++ {
			w.GoNode(fmt.Sprintf("client-%d.%d", id, cid), id, clientLoop(id, cid, inc))
		}
		s := id / cfg.N
		if id == m.Members[s][cfg.N-1] { // last member coordinates its shard
			w.GoNode(fmt.Sprintf("coord-%d", s), id, coordLoop(id))
		}
	}

	var buildErr error
	for id := 0; id < total; id++ {
		nd, err := NewNode(w.Runtime(id), b.nodeConfig(id, false))
		if err != nil {
			return nil, err
		}
		nodes[id] = nd
		w.SetHandler(id, nd.Handler())
	}
	for id := 0; id < total; id++ {
		spawnServe(id)
		spawnClients(id, 0)
	}

	// Restart: replay the durable WAL prefix into a fresh engine, rebuild
	// the whole node stack (router state dies with the incarnation; the
	// key map is re-seeded from the recovered segment), rejoin, and
	// respawn the serving threads and clients under a new incarnation.
	restartNode := func(id int) {
		if !w.Crashed(id) {
			return
		}
		b.files[id].Crash()
		nd, err := NewNode(w.Runtime(id), b.nodeConfig(id, true))
		if err != nil {
			buildErr = err
			return
		}
		nodes[id] = nd
		w.SetHandler(id, nd.Handler())
		w.Restart(id)
		incarnation[id]++
		inc := incarnation[id]
		rj := b.rejoins[id]
		w.GoNode(fmt.Sprintf("rejoin-%d.%d", id, inc), id, func(p *sim.Proc) {
			if rj != nil {
				rj.Rejoin()
			}
			spawnServe(id)
			if p.Now() < deadline {
				spawnClients(id, inc)
			}
		})
	}

	for _, ev := range events {
		ev := ev
		switch ev.Kind {
		case chaos.EvCrash:
			w.CrashAt(ev.Node, ev.At)
		case chaos.EvPartition:
			w.After(ev.At, func() { w.Partition(ev.Groups...) })
		case chaos.EvHeal:
			w.After(ev.At, func() { w.Heal() })
		case chaos.EvDropOn:
			w.After(ev.At, func() { link.drop[[2]int{ev.Src, ev.Dst}] = ev.Prob })
		case chaos.EvDropOff:
			w.After(ev.At, func() { delete(link.drop, [2]int{ev.Src, ev.Dst}) })
		case chaos.EvSpikeOn:
			w.After(ev.At, func() { link.extra[[2]int{ev.Src, ev.Dst}] = ev.Extra })
		case chaos.EvSpikeOff:
			w.After(ev.At, func() { delete(link.extra, [2]int{ev.Src, ev.Dst}) })
		case chaos.EvRestart:
			w.After(ev.At, func() { restartNode(ev.Node) })
		}
	}

	// Close everything shortly past the deadline — strictly before the
	// first unblock sweep — so drained workers and idle routers exit
	// instead of being mistaken for stuck operations.
	w.After(deadline+clusterGrace/2, func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	// Unblock sweeps: any operation still blocked past deadline + grace
	// lost its quorum to drops or excess crashes; crash-abort its node so
	// the run terminates. Each sweep either finds nothing or crashes at
	// least one node, so total+1 sweeps suffice.
	for k := 1; k <= total+1; k++ {
		w.After(deadline+clusterGrace*rt.Ticks(k), func() {
			for _, bw := range w.Blocked() {
				if bw.Node >= 0 && !w.Crashed(bw.Node) {
					rep.Blocked = append(rep.Blocked, bw.String())
					w.Crash(bw.Node)
				}
			}
		})
	}

	if err := w.Run(); err != nil {
		return rep, err
	}
	if buildErr != nil {
		return rep, buildErr
	}
	rep.finishSkew()
	return rep, nil
}
