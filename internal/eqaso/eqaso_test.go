package eqaso_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"mpsnap/internal/core"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// build constructs an EQ-ASO cluster.
func build(cfg sim.Config) *harness.Cluster {
	return harness.Build(cfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := eqaso.New(r)
		return nd, nd
	})
}

func TestSequentialOps(t *testing.T) {
	c := build(sim.Config{N: 3, F: 1, Seed: 1})
	c.Client(0, func(o *harness.OpRunner) {
		if err := o.UpdateValue("a"); err != nil {
			t.Errorf("update: %v", err)
		}
		snap, err := o.Scan()
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if snap[0] != "a" || snap[1] != "" || snap[2] != "" {
			t.Errorf("snap = %v, want [a ⊥ ⊥]", snap)
		}
		if err := o.UpdateValue("b"); err != nil {
			t.Errorf("update: %v", err)
		}
		snap, err = o.Scan()
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if snap[0] != "b" {
			t.Errorf("snap = %v, want segment 0 = b", snap)
		}
	})
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestScanSeesPrecedingUpdate(t *testing.T) {
	// Node 0 updates, THEN node 1 scans (driven by virtual time): the
	// scan must include the update (condition A2 observed end-to-end).
	c := build(sim.Config{N: 5, F: 2, Seed: 3})
	done := make(chan string, 1)
	c.Client(0, func(o *harness.OpRunner) {
		if err := o.UpdateValue("x"); err != nil {
			t.Errorf("update: %v", err)
		}
		done <- "done"
	})
	c.Client(1, func(o *harness.OpRunner) {
		// Wait until node 0's update completed (in virtual time).
		if err := o.P.WaitUntil("upd done", func() bool { return len(done) > 0 }); err != nil {
			t.Errorf("wait: %v", err)
			return
		}
		snap, err := o.Scan()
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		if snap[0] != "x" {
			t.Errorf("scan after completed update must see it; snap = %v", snap)
		}
	})
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestFailureFreeConstantTime(t *testing.T) {
	// The paper: with no failures every operation takes constant time
	// unconditionally, even with every message delayed by exactly D and
	// all nodes operating concurrently.
	for _, n := range []int{3, 7, 15, 25} {
		c := build(sim.Config{N: n, F: (n - 1) / 2, Seed: 11, Delay: sim.Constant{Ticks: rt.TicksPerD}})
		for i := 0; i < n; i++ {
			c.Client(i, func(o *harness.OpRunner) {
				for k := 0; k < 3; k++ {
					if _, err := o.Update(); err != nil {
						t.Errorf("update: %v", err)
					}
					if _, err := o.Scan(); err != nil {
						t.Errorf("scan: %v", err)
					}
				}
			})
		}
		h, err := c.MustLinearizable()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		st := harness.Latencies(h)
		// Constant means independent of n: generous fixed budget.
		const maxD = 16.0
		if st.WorstUpdate > maxD || st.WorstScan > maxD {
			t.Errorf("n=%d: worst update %.1fD, worst scan %.1fD exceed the constant budget %vD",
				n, st.WorstUpdate, st.WorstScan, maxD)
		}
	}
}

func TestConcurrentMixedWorkloadLinearizable(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		n := 4 + int(seed)
		c := build(sim.Config{N: n, F: (n - 1) / 2, Seed: seed})
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				rng := rand.New(rand.NewSource(seed*100 + int64(i)))
				for k := 0; k < 6; k++ {
					var err error
					if rng.Intn(2) == 0 {
						_, err = o.Update()
					} else {
						_, err = o.Scan()
					}
					if err != nil {
						t.Errorf("seed %d node %d: %v", seed, i, err)
						return
					}
					_ = o.P.Sleep(rt.Ticks(rng.Intn(2000)))
				}
			})
		}
		if _, err := c.MustLinearizable(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLinearizableUnderCrashes(t *testing.T) {
	// Crash up to f nodes at random times while all nodes run ops.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		f := (n - 1) / 2
		k := 1 + rng.Intn(f)
		c := build(sim.Config{N: n, F: f, Seed: seed})
		for victim := 0; victim < k; victim++ {
			c.W.CrashAt(victim, rt.Ticks(rng.Intn(20000)))
		}
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				rng := rand.New(rand.NewSource(seed*31 + int64(i)))
				for k := 0; k < 5; k++ {
					var err error
					if rng.Intn(2) == 0 {
						_, err = o.Update()
					} else {
						_, err = o.Scan()
					}
					if err != nil {
						return // crashed node: client stops
					}
					_ = o.P.Sleep(rt.Ticks(rng.Intn(3000)))
				}
			})
		}
		h, err := c.Run()
		if err != nil {
			t.Logf("seed %d: run error: %v", seed, err)
			return false
		}
		if rep := h.CheckLinearizable(); !rep.OK {
			t.Logf("seed %d: %v", seed, rep.Violations)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsCompleteWithFNodesDown(t *testing.T) {
	// f nodes are crashed from the very start; the remaining majority
	// must still complete operations (n > 2f resilience).
	n, f := 7, 3
	c := build(sim.Config{N: n, F: f, Seed: 9})
	for i := 0; i < f; i++ {
		c.W.CrashAt(i, 0)
	}
	for i := f; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
			}
			if _, err := o.Scan(); err != nil {
				t.Errorf("scan: %v", err)
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

func TestGoodLatticeViewsComparable(t *testing.T) {
	// Lemma 2: the views of any pair of good lattice operations are
	// comparable. Instrument every node and check all pairs.
	n := 6
	var mu sync.Mutex
	var views []core.View
	c := harness.Build(sim.Config{N: n, F: 2, Seed: 21}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := eqaso.New(r)
		nd.OnGoodLattice = func(tag core.Tag, view core.View) {
			mu.Lock()
			views = append(views, view)
			mu.Unlock()
		}
		return nd, nd
	})
	c.W.CrashAt(5, 4000)
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 4; k++ {
				if _, err := o.Update(); err != nil {
					return
				}
				if _, err := o.Scan(); err != nil {
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	if len(views) == 0 {
		t.Fatal("no good lattice operations observed")
	}
	for i := range views {
		for j := i + 1; j < len(views); j++ {
			if !views[i].ComparableWith(views[j]) {
				t.Fatalf("good views %d and %d incomparable:\n%v\n%v", i, j, views[i], views[j])
			}
		}
	}
}

func TestPerWriterTimestampsIncrease(t *testing.T) {
	// Values of the same writer must carry strictly increasing tags
	// (uniqueness assumption underlying Definition 4).
	n := 5
	var nodes []*eqaso.Node
	c := harness.Build(sim.Config{N: n, F: 2, Seed: 33}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := eqaso.New(r)
		nodes = append(nodes, nd)
		return nd, nd
	})
	for i := 0; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 5; k++ {
				if _, err := o.Update(); err != nil {
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	view := nodes[0].LocalView()
	last := make(map[int]core.Tag)
	count := make(map[int]int)
	for _, v := range view.Values() {
		if prev, ok := last[v.TS.Writer]; ok && v.TS.Tag <= prev {
			t.Fatalf("writer %d tags not increasing: %d then %d", v.TS.Writer, prev, v.TS.Tag)
		}
		last[v.TS.Writer] = v.TS.Tag
		count[v.TS.Writer]++
	}
	for i := 0; i < n; i++ {
		if count[i] != 5 {
			t.Fatalf("node 0 knows %d values from writer %d, want 5", count[i], i)
		}
	}
}

func TestFailureChainDelaysButTerminates(t *testing.T) {
	// Build the paper's worst-case execution: failure chains expose
	// values late. The scan must still terminate, and the history stays
	// linearizable; the latency grows with the chain length.
	n := 12
	f := 5
	keyOf := func(m rt.Message) (any, bool) {
		mv, ok := m.(eqaso.MsgValue)
		if !ok {
			return nil, false
		}
		return mv.Val.TS, true
	}
	chains, used := sim.BuildChains([]int{0, 1, 2, 3, 4}, f, 11)
	if used == 0 {
		t.Fatal("no chains built")
	}
	fc := sim.NewFailureChains(keyOf, chains...)
	c := build(sim.Config{N: n, F: f, Seed: 5, Adversary: fc, Delay: sim.Constant{Ticks: rt.TicksPerD}})
	// Chain heads invoke updates (their crash mid-broadcast starts the chain).
	for _, ch := range chains {
		head := ch.Nodes[0]
		c.Client(head, func(o *harness.OpRunner) {
			_, _ = o.Update() // will crash mid-update
		})
	}
	// A correct node scans concurrently.
	var scanLatency rt.Ticks
	c.Client(6, func(o *harness.OpRunner) {
		start := o.P.Now()
		if _, err := o.Scan(); err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		scanLatency = o.P.Now() - start
	})
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	if scanLatency == 0 {
		t.Fatal("scan did not run")
	}
	t.Logf("scan latency under failure chains: %.1fD", scanLatency.DUnits())
}

func TestCrashedNodeOpsFail(t *testing.T) {
	c := build(sim.Config{N: 3, F: 1, Seed: 2})
	c.W.CrashAt(0, 500)
	var gotErr error
	c.Client(0, func(o *harness.OpRunner) {
		for i := 0; i < 100; i++ {
			if err := o.UpdateValue(fmt.Sprintf("u%d", i)); err != nil {
				gotErr = err
				return
			}
		}
	})
	h, err := c.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(gotErr, rt.ErrCrashed) {
		t.Fatalf("op on crashed node returned %v, want ErrCrashed", gotErr)
	}
	if rep := h.CheckLinearizable(); !rep.OK {
		t.Fatalf("history: %v", rep.Violations)
	}
}

func TestGoodViewCachesStayBounded(t *testing.T) {
	// The value history grows with the execution (inherent to the
	// model), but the good-view caches must stay proportional to
	// in-flight activity thanks to pruneBelow.
	n := 5
	var nodes []*eqaso.Node
	c := harness.Build(sim.Config{N: n, F: 2, Seed: 17}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := eqaso.New(r)
		nodes = append(nodes, nd)
		return nd, nd
	})
	const opsPerNode = 15
	for i := 0; i < n; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < opsPerNode; k++ {
				if _, err := o.Update(); err != nil {
					return
				}
				if _, err := o.Scan(); err != nil {
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	for i, nd := range nodes {
		m := nd.Memory()
		if m.Values != n*opsPerNode {
			t.Errorf("node %d holds %d values, want %d", i, m.Values, n*opsPerNode)
		}
		// Tags used ~ O(total ops); the caches must be far below that.
		cacheBound := 3 * n
		if m.BorrowTags+m.OwnGoodTags > cacheBound {
			t.Errorf("node %d good-view caches unbounded: borrow=%d own=%d (> %d)",
				i, m.BorrowTags, m.OwnGoodTags, cacheBound)
		}
		if m.Forwarded < m.Values {
			t.Errorf("node %d forwarded set %d < values %d", i, m.Forwarded, m.Values)
		}
	}
}

func TestStatsAndDirectViews(t *testing.T) {
	var nd0 *eqaso.Node
	c := harness.Build(sim.Config{N: 3, F: 1, Seed: 4}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := eqaso.New(r)
		if r.ID() == 0 {
			nd0 = nd
		}
		return nd, nd
	})
	c.Client(0, func(o *harness.OpRunner) {
		_, _ = o.Update()
		_, _ = o.Scan()
	})
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := nd0.Stats()
	if st.Updates != 1 || st.Scans != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DirectViews+st.IndirectViews < 2 {
		t.Fatalf("every op must resolve a view: %+v", st)
	}
	if st.LatticeOps < 3 {
		t.Fatalf("update needs ≥2 lattice ops and scan ≥1: %+v", st)
	}
}
