package eqaso

import (
	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wal"
)

// Recover builds an EQ-ASO node from a replayed WAL instead of an empty
// log. The recovered node resumes with:
//
//   - the value log exactly as of the last synced WAL record (values,
//     frontier checkpoints, and prunes replayed in order), so its digests
//     match what live peers computed for the same prefixes;
//   - maxTag at least the largest tag it ever observed durably, so the
//     next readTag can never hand out a timestamp the node already wrote
//     (per-writer timestamps stay strictly increasing across the crash);
//   - every retained value marked forwarded, so re-receiving pre-crash
//     values does not trigger a re-forward of history.
//
// The caller installs the node as the message handler (exactly as with
// New) and then calls Rejoin from the client thread.
func Recover(r rt.Runtime, st *wal.State, w *wal.Writer, gc bool) *Node {
	nd := New(r)
	nd.log = st.Log
	nd.maxTag = st.MaxTag
	if st.OwnTag > nd.maxTag {
		nd.maxTag = st.OwnTag
	}
	for _, v := range st.Log.AllView().Values() {
		nd.forwarded[v.TS] = true
	}
	// The frontier was WAL-synced before any vouch for it was sent, so the
	// node still stands behind it.
	nd.vouched[nd.id] = st.Frontier
	nd.AttachWAL(w, gc)
	return nd
}

// Rejoin re-enters the protocol after Recover: it re-disseminates the
// retained values above the recovered frontier (their pre-crash broadcasts
// may have reached only a prefix of the nodes) and asks all peers for what
// it missed while down. Peers answer MsgRejoinReq with a delta above the
// advertised base when their log vouches it, or a full standalone view
// otherwise; the request also repairs their cursor for this node. Rejoin
// only sends — the acks are absorbed by the message handler — so the
// client thread can start operating immediately after it returns.
func (nd *Node) Rejoin() {
	var vals []core.Value
	var req MsgRejoinReq
	nd.rt.Atomic(func() {
		nd.stats.Rejoins++
		base := nd.log.Frontier()
		if delta, ok := nd.log.DeltaAbove(nd.log.AllView(), base); ok {
			vals = delta
		} else {
			vals = nd.log.AllView().Standalone().Values()
		}
		req = MsgRejoinReq{Base: base}
	})
	for _, v := range vals {
		nd.rt.Broadcast(MsgValue{Val: v})
	}
	nd.rt.Broadcast(req)
}
