package eqaso

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
	"mpsnap/internal/wal"
)

// EQ-ASO registers as the default engine: linearizable, crash-tolerant
// (n > 2f), WAL-durable and recoverable.
func init() {
	engine.Register(engine.Info{
		Name: "eqaso",
		Doc:  "equivalence-quorum atomic snapshot (O(√k·D) worst, O(D) amortized; WAL recovery)",
		New:  func(r rt.Runtime) engine.Engine { return New(r) },
		Recover: func(r rt.Runtime, st *wal.State, w *wal.Writer, gc bool) engine.Engine {
			return Recover(r, st, w, gc)
		},
	})
}
