package eqaso

import (
	"testing"

	"mpsnap/internal/core"
	"mpsnap/internal/sim"
)

// newTestNode builds a node over a throwaway world (white-box tests only
// poke at its local state).
func newTestNode(t *testing.T) *Node {
	t.Helper()
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 1})
	return New(w.Runtime(0))
}

func view(tags ...core.Tag) core.View {
	out := make(core.View, 0, len(tags))
	for _, tg := range tags {
		out = append(out, core.Value{TS: core.Timestamp{Tag: tg, Writer: 0}, Payload: []byte("x")})
	}
	return out
}

func TestBestViewAtLeast(t *testing.T) {
	nd := newTestNode(t)
	if _, _, ok := nd.bestViewAtLeast(1); ok {
		t.Fatal("empty node must have no view")
	}
	nd.ownGood[3] = view(1, 2, 3)
	nd.addBorrow(5, 2, view(1, 2, 3, 4, 5))
	nd.addBorrow(5, 1, view(1, 2, 3, 4))

	tag, v, ok := nd.bestViewAtLeast(1)
	if !ok || tag != 3 || v.Len() != 3 {
		t.Fatalf("want own view at tag 3, got tag=%d len=%d ok=%v", tag, v.Len(), ok)
	}
	tag, v, ok = nd.bestViewAtLeast(4)
	if !ok || tag != 5 {
		t.Fatalf("want borrowed view at tag 5, got tag=%d ok=%v", tag, ok)
	}
	// Deterministic sender choice: smallest node id (1) wins.
	if v.Len() != 4 {
		t.Fatalf("want node 1's view (len 4), got len %d", v.Len())
	}
	if _, _, ok := nd.bestViewAtLeast(6); ok {
		t.Fatal("no view with tag ≥ 6 exists")
	}
}

func TestPruneBelowKeepsLargest(t *testing.T) {
	nd := newTestNode(t)
	nd.ownGood[1] = view(1)
	nd.ownGood[2] = view(1, 2)
	nd.addBorrow(3, 1, view(1, 2, 3))
	nd.pruneBelow(10) // would remove everything — must keep the largest
	if len(nd.ownGood) != 0 {
		t.Fatalf("ownGood should be pruned, have %d", len(nd.ownGood))
	}
	if _, ok := nd.borrow[3]; !ok {
		t.Fatal("largest view (tag 3) must be retained")
	}
	nd2 := newTestNode(t)
	nd2.ownGood[1] = view(1)
	nd2.ownGood[4] = view(1, 2, 3, 4)
	nd2.addBorrow(2, 2, view(1, 2))
	nd2.pruneBelow(3)
	if _, ok := nd2.ownGood[1]; ok {
		t.Fatal("tag 1 must be pruned")
	}
	if _, ok := nd2.borrow[2]; ok {
		t.Fatal("borrowed tag 2 must be pruned")
	}
	if _, ok := nd2.ownGood[4]; !ok {
		t.Fatal("tag 4 must survive")
	}
}

func TestAddBorrowOverwritesPerSender(t *testing.T) {
	nd := newTestNode(t)
	nd.addBorrow(1, 2, view(1))
	nd.addBorrow(1, 2, view(1, 2))
	if got := nd.borrow[1][2].Len(); got != 2 {
		t.Fatalf("latest borrow should win, len=%d", got)
	}
	nd.addBorrow(1, 0, view(1, 2, 3))
	if len(nd.borrow[1]) != 2 {
		t.Fatalf("two senders expected, got %d", len(nd.borrow[1]))
	}
}

func TestSortedTags(t *testing.T) {
	m := map[core.Tag]core.View{5: nil, 1: nil, 3: nil}
	got := sortedTags(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("sortedTags = %v", got)
	}
}

func TestMessageKinds(t *testing.T) {
	kinds := map[string]bool{}
	for _, k := range []string{
		MsgValue{}.Kind(), MsgReadTag{}.Kind(), MsgReadAck{}.Kind(),
		MsgWriteTag{}.Kind(), MsgWriteAck{}.Kind(), MsgEchoTag{}.Kind(),
		MsgGoodLA{}.Kind(), MsgBorrowReq{}.Kind(), MsgGoodView{}.Kind(),
	} {
		if kinds[k] {
			t.Fatalf("duplicate message kind %q", k)
		}
		kinds[k] = true
	}
}
