package eqaso

import (
	"testing"

	"mpsnap/internal/core"
	"mpsnap/internal/sim"
	"mpsnap/internal/wal"
)

// newTestNode builds a node over a throwaway world (white-box tests only
// poke at its local state).
func newTestNode(t *testing.T) *Node {
	t.Helper()
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 1})
	return New(w.Runtime(0))
}

func view(tags ...core.Tag) core.View {
	out := make([]core.Value, 0, len(tags))
	for _, tg := range tags {
		out = append(out, core.Value{TS: core.Timestamp{Tag: tg, Writer: 0}, Payload: []byte("x")})
	}
	return core.ViewOf(out...)
}

func TestBestViewAtLeast(t *testing.T) {
	nd := newTestNode(t)
	if _, _, ok := nd.bestViewAtLeast(1); ok {
		t.Fatal("empty node must have no view")
	}
	nd.ownGood[3] = view(1, 2, 3)
	nd.addBorrow(5, 2, view(1, 2, 3, 4, 5))
	nd.addBorrow(5, 1, view(1, 2, 3, 4))

	tag, v, ok := nd.bestViewAtLeast(1)
	if !ok || tag != 3 || v.Len() != 3 {
		t.Fatalf("want own view at tag 3, got tag=%d len=%d ok=%v", tag, v.Len(), ok)
	}
	tag, v, ok = nd.bestViewAtLeast(4)
	if !ok || tag != 5 {
		t.Fatalf("want borrowed view at tag 5, got tag=%d ok=%v", tag, ok)
	}
	// Deterministic sender choice: smallest node id (1) wins.
	if v.Len() != 4 {
		t.Fatalf("want node 1's view (len 4), got len %d", v.Len())
	}
	if _, _, ok := nd.bestViewAtLeast(6); ok {
		t.Fatal("no view with tag ≥ 6 exists")
	}
}

func TestPruneBelowKeepsLargest(t *testing.T) {
	nd := newTestNode(t)
	nd.ownGood[1] = view(1)
	nd.ownGood[2] = view(1, 2)
	nd.addBorrow(3, 1, view(1, 2, 3))
	nd.pruneBelow(10) // would remove everything — must keep the largest
	if len(nd.ownGood) != 0 {
		t.Fatalf("ownGood should be pruned, have %d", len(nd.ownGood))
	}
	if _, ok := nd.borrow[3]; !ok {
		t.Fatal("largest view (tag 3) must be retained")
	}
	nd2 := newTestNode(t)
	nd2.ownGood[1] = view(1)
	nd2.ownGood[4] = view(1, 2, 3, 4)
	nd2.addBorrow(2, 2, view(1, 2))
	nd2.pruneBelow(3)
	if _, ok := nd2.ownGood[1]; ok {
		t.Fatal("tag 1 must be pruned")
	}
	if _, ok := nd2.borrow[2]; ok {
		t.Fatal("borrowed tag 2 must be pruned")
	}
	if _, ok := nd2.ownGood[4]; !ok {
		t.Fatal("tag 4 must survive")
	}
}

func TestAddBorrowOverwritesPerSender(t *testing.T) {
	nd := newTestNode(t)
	nd.addBorrow(1, 2, view(1))
	nd.addBorrow(1, 2, view(1, 2))
	if got := nd.borrow[1][2].Len(); got != 2 {
		t.Fatalf("latest borrow should win, len=%d", got)
	}
	nd.addBorrow(1, 0, view(1, 2, 3))
	if len(nd.borrow[1]) != 2 {
		t.Fatalf("two senders expected, got %d", len(nd.borrow[1]))
	}
}

func TestSortedTags(t *testing.T) {
	m := map[core.Tag]core.View{5: {}, 1: {}, 3: {}}
	got := sortedTags(m)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("sortedTags = %v", got)
	}
}

// TestNoteVouchBuffersUnverifiable: a vouch that arrives while this
// node's log still lags the vouched prefix must not be dropped — it is
// buffered and applied once the local frontier catches up, so GC cannot
// stall waiting for the peer's next vouch.
func TestNoteVouchBuffersUnverifiable(t *testing.T) {
	nd := newTestNode(t)
	nd.AttachWAL(wal.NewWriter(wal.NewMemFile(), 1), true)
	// The vouching peer's log: two values, frontier advanced.
	peer := core.NewValueLog(3, 1)
	v1 := core.Value{TS: core.Timestamp{Tag: 1, Writer: 1}, Payload: []byte("a")}
	v2 := core.Value{TS: core.Timestamp{Tag: 2, Writer: 1}, Payload: []byte("b")}
	peer.Add(1, v1)
	peer.Add(1, v2)
	peer.AdvanceFrontier(2)
	ck := peer.Frontier()

	// The vouch outruns nd (empty log): not verifiable, must be buffered.
	nd.noteVouch(1, ck)
	if nd.vouched[1].Count != 0 {
		t.Fatalf("unverifiable vouch recorded as verified: %+v", nd.vouched[1])
	}
	if nd.rawVouch[1] != ck {
		t.Fatalf("raw vouch not buffered: %+v", nd.rawVouch[1])
	}

	// nd catches up and its frontier advances (the path a good lattice
	// operation takes): the buffered vouch must apply now.
	nd.log.Add(1, v1)
	nd.log.Add(1, v2)
	nd.log.AdvanceFrontier(2)
	nd.vouchFrontier()
	if nd.vouched[1] != ck {
		t.Fatalf("buffered vouch not applied after catch-up: %+v", nd.vouched[1])
	}
}

func TestMessageKinds(t *testing.T) {
	kinds := map[string]bool{}
	for _, k := range []string{
		MsgValue{}.Kind(), MsgReadTag{}.Kind(), MsgReadAck{}.Kind(),
		MsgWriteTag{}.Kind(), MsgWriteAck{}.Kind(), MsgEchoTag{}.Kind(),
		MsgGoodLA{}.Kind(), MsgBorrowReq{}.Kind(), MsgGoodView{}.Kind(),
		MsgGoodViewDelta{}.Kind(), MsgBorrowNak{}.Kind(),
	} {
		if kinds[k] {
			t.Fatalf("duplicate message kind %q", k)
		}
		kinds[k] = true
	}
}

// newCluster builds n node states over one throwaway world (no scheduler
// runs; white-box tests drive handlers directly).
func newCluster(t *testing.T, n, f int) []*Node {
	t.Helper()
	w := sim.New(sim.Config{N: n, F: f, Seed: 1})
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = New(w.Runtime(i))
	}
	return nodes
}

func TestBorrowSampleSizeAndDeterminism(t *testing.T) {
	nodes := newCluster(t, 5, 2)
	k := 5 - nodes[0].quorum + 1 // f+1
	for src := 0; src < 5; src++ {
		for tag := core.Tag(1); tag <= 40; tag++ {
			count := 0
			for _, nd := range nodes {
				in := nd.inSample(src, tag)
				if in != nd.inSample(src, tag) {
					t.Fatal("inSample must be deterministic")
				}
				if nd.id == src && in {
					t.Fatalf("requester %d sampled itself at tag %d", src, tag)
				}
				if in {
					count++
				}
			}
			if count != k {
				t.Fatalf("src=%d tag=%d: %d sampled responders, want f+1=%d", src, tag, count, k)
			}
		}
	}
	// The rotation must spread load: over many tags, every non-requester
	// should be sampled at least once.
	for _, nd := range nodes[1:] {
		hit := false
		for tag := core.Tag(1); tag <= 40 && !hit; tag++ {
			hit = nd.inSample(0, tag)
		}
		if !hit {
			t.Fatalf("node %d never sampled for src 0 over 40 tags", nd.id)
		}
	}
}

func TestBorrowReqGatingSuppressesOffSampleReplies(t *testing.T) {
	nodes := newCluster(t, 5, 2)
	nd := nodes[1]
	const src = 0
	var sampled, suppressed int
	for tag := core.Tag(1); tag <= 30; tag++ {
		if nd.inSample(src, tag) {
			sampled++
		}
		nd.HandleMessage(src, MsgBorrowReq{Tag: tag, Attempt: 0})
	}
	suppressed = int(nd.stats.BorrowsSuppressed)
	if suppressed == 0 || sampled == 0 {
		t.Fatalf("want both outcomes over 30 tags: sampled=%d suppressed=%d", sampled, suppressed)
	}
	if suppressed+sampled != 30 {
		t.Fatalf("each request either answered or suppressed: %d+%d != 30", sampled, suppressed)
	}
	// Attempt 1 (escalated) requests are never suppressed: all are parked
	// (this node holds no good view) with a nak sent.
	before := nd.stats.BorrowsSuppressed
	nd.HandleMessage(src, MsgBorrowReq{Tag: 99, Attempt: 1})
	if nd.stats.BorrowsSuppressed != before {
		t.Fatal("attempt-1 borrowReq must not be gated")
	}
	if _, ok := nd.pending[src]; !ok {
		t.Fatal("unanswerable borrowReq must be parked as pending")
	}
}

func TestServeBorrowDeltaVsFullReply(t *testing.T) {
	nodes := newCluster(t, 3, 1)
	nd := nodes[0]
	for i := 1; i <= 6; i++ {
		nd.log.AddSelf(core.Value{TS: core.Timestamp{Tag: core.Tag(i), Writer: 0}, Payload: []byte("x")})
	}
	nd.log.AdvanceFrontier(4)
	view := nd.log.ViewLE(6)
	nd.ownGood[6] = view

	// The requester advertises the same frozen prefix: delta reply.
	nd.serveBorrow(1, 5, nd.log.Frontier())
	if nd.stats.BorrowDeltaReplies != 1 || nd.stats.BorrowFullReplies != 0 {
		t.Fatalf("want delta reply for a vouched checkpoint: %+v", nd.stats)
	}
	// A checkpoint this log cannot vouch for: full view.
	nd.serveBorrow(1, 5, core.Checkpoint{Tag: 4, Count: 4, Digest: 12345})
	if nd.stats.BorrowFullReplies != 1 {
		t.Fatalf("want full reply for a foreign checkpoint: %+v", nd.stats)
	}
	// The empty checkpoint (fresh requester) is always vouched: the delta
	// is the whole view, equivalent to a full reply in size but uniform.
	nd.serveBorrow(2, 5, core.Checkpoint{})
	if nd.stats.BorrowDeltaReplies != 2 {
		t.Fatalf("empty checkpoint should take the delta path: %+v", nd.stats)
	}
}

func TestPendingBorrowServedOnNewView(t *testing.T) {
	nodes := newCluster(t, 3, 1)
	nd := nodes[0]
	nd.serveBorrow(2, 5, core.Checkpoint{})
	if _, ok := nd.pending[2]; !ok {
		t.Fatal("no view yet: request must be parked")
	}
	// A too-small view does not serve the request.
	nd.addBorrow(3, 1, view(1, 2, 3))
	nd.servePending()
	if nd.stats.BorrowPendingServed != 0 {
		t.Fatalf("tag-3 view must not satisfy a tag-5 borrow: %+v", nd.stats)
	}
	// A covering view does.
	nd.addBorrow(6, 1, view(1, 2, 3, 4, 6))
	nd.servePending()
	if nd.stats.BorrowPendingServed != 1 {
		t.Fatalf("pending borrow should be served: %+v", nd.stats)
	}
	if _, ok := nd.pending[2]; ok {
		t.Fatal("served request must leave the pending set")
	}
}

func TestMaybeEscalateOnce(t *testing.T) {
	nodes := newCluster(t, 3, 1)
	nd := nodes[0]
	nd.maybeEscalate(7) // no borrow in flight: no-op
	if nd.stats.BorrowsEscalated != 0 {
		t.Fatal("escalation without an in-flight borrow")
	}
	nd.curBorrow = &borrowWait{tag: 7}
	nd.maybeEscalate(5) // stale tag: no-op
	nd.maybeEscalate(7)
	nd.maybeEscalate(7) // second nak: already escalated
	if nd.stats.BorrowsEscalated != 1 || !nd.curBorrow.escalated {
		t.Fatalf("want exactly one escalation: %+v", nd.stats)
	}
}
