// Package eqaso implements EQ-ASO (Algorithm 1 of the paper): the
// crash-tolerant atomic snapshot object based on equivalence quorums, with
// O(√k·D) worst-case and amortized O(D) time for UPDATE and SCAN given
// n > 2f.
//
// Two deliberate deviations from the pseudocode, both required for
// liveness and documented in DESIGN.md:
//
//  1. The "writeTag" handler acknowledges every request; only the maxTag
//     adoption and the "echoTag" broadcast are guarded by tag > maxTag.
//     (Acknowledging only larger tags would block a writeTag quorum wait
//     forever once the tag is stale.)
//
//  2. The borrow phase (line 29) accepts a good view with any tag ≥ r and
//     additionally broadcasts a "borrowReq", answered by peers with an
//     explicit "goodView". This keeps LatticeRenewal live even when the
//     original goodLA broadcast was truncated by the sender's crash. Any
//     good view with tag ≥ r preserves conditions (A1)-(A4): good views
//     are pairwise comparable (Lemma 2), and larger views only grow bases.
//
// Local state lives in a core.ValueLog (one shared timestamp-sorted array
// with per-peer cursors) rather than n separate value maps, which makes
// the per-operation cost independent of the history length: EQ tracker
// setup is O(n log H), good views are zero-copy prefixes of the frozen
// log, and borrow replies ship only the delta above the requester's
// stable frontier (see DESIGN.md §8).
package eqaso

import (
	"sort"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wal"
)

// Stats counts a node's operations and lattice activity.
type Stats struct {
	Updates       int64 // values written (a k-batch counts k)
	Batches       int64 // update round sequences (single updates count 1)
	Scans         int64
	LatticeOps    int64
	DirectViews   int64
	IndirectViews int64

	// Borrow-protocol counters (see the borrowReq gating in node.go).
	BorrowsSuppressed   int64 // borrowReq received but not in the sample → no reply
	BorrowsEscalated    int64 // borrow attempts rebroadcast to everyone
	BorrowDeltaReplies  int64 // goodViewDelta replies sent (frontier matched)
	BorrowFullReplies   int64 // full goodView replies sent
	BorrowPendingServed int64 // replies sent late, once a view became known
	BorrowDeltaRejects  int64 // received deltas whose checkpoint no longer matched

	// Durability and garbage-collection counters (WAL mode only).
	VouchesSent        int64 // checkpoint vouches broadcast after a durable frontier advance
	LogPrunes          int64 // value-log prefixes garbage-collected
	RejoinDeltaReplies int64 // rejoinReq answered with a delta above the base
	RejoinFullReplies  int64 // rejoinReq answered with a full standalone view
	Rejoins            int64 // crash-recovery rejoins performed by this node
}

type readState struct {
	count int
	max   core.Tag
}

// pendingBorrow is a borrowReq this node could not answer yet: it is
// served as soon as a covering good view becomes known (the requester was
// told to wait with a borrowNak).
type pendingBorrow struct {
	tag  core.Tag
	base core.Checkpoint
}

// borrowWait is the client thread's in-flight borrow, visible to the
// server thread so a borrowNak or a stale delta can trigger the one-time
// escalation from the sampled request to a full broadcast.
type borrowWait struct {
	tag       core.Tag
	base      core.Checkpoint
	escalated bool
}

// Node is one EQ-ASO node: the server-thread state of Algorithm 1 plus the
// client-thread operations Update and Scan. Install it as the node's
// message handler and invoke operations from the node's client thread.
type Node struct {
	rt     rt.Runtime
	id     int
	n      int
	quorum int // n - f

	// Algorithm 1 local variables. log holds V[0..n-1] (the per-peer value
	// sets) as one shared value log.
	log       *core.ValueLog
	maxTag    core.Tag                       // largest tag seen via writeTag/echoTag
	borrow    map[core.Tag]map[int]core.View // D, kept per (tag, sender)
	ownGood   map[core.Tag]core.View         // this node's good-lattice views
	forwarded map[core.Timestamp]bool        // values already sent to all

	// In-flight quorum calls and the active EQ wait.
	nextReq   int64
	readAcks  map[int64]*readState
	writeAcks map[int64]int
	wait      *core.EQTracker

	// Borrow protocol state.
	pending   map[int]pendingBorrow // requester id → unanswered borrowReq
	curBorrow *borrowWait

	// Crash-recovery state (nil/zero when the node runs without a WAL).
	// wal is the durability sink: own values are synced before they are
	// disseminated, frontier checkpoints before they are vouched, prunes
	// before they execute. vouched[j] is the largest checkpoint node j has
	// durably vouched AND this log can verify; rawVouch[j] is the largest
	// vouch received from j regardless of local verifiability (re-checked
	// when the local frontier catches up); gc enables pruning below the
	// global minimum.
	wal      *wal.Writer
	gc       bool
	vouched  []core.Checkpoint
	rawVouch []core.Checkpoint

	stats Stats

	// Operation instrumentation (see obs.go); owned by the client thread.
	obs   rt.Observer
	opSeq int64
	curOp opCtx

	// OnGoodLattice, if set, observes every good lattice operation
	// completed by this node (used by invariant-checking tests and by
	// the SSO's passive view adoption).
	OnGoodLattice func(tag core.Tag, view core.View)
	// OnGoodLAView, if set, observes every good view learned from a peer
	// ("goodLA" FIFO-derived views and explicit "goodView" replies).
	OnGoodLAView func(tag core.Tag, from int, view core.View)
}

// New creates the EQ-ASO node for the given runtime. The caller must
// register it as the node's message handler.
func New(r rt.Runtime) *Node {
	n := r.N()
	nd := &Node{
		rt:        r,
		id:        r.ID(),
		n:         n,
		quorum:    n - r.F(),
		log:       core.NewValueLog(n, r.ID()),
		borrow:    make(map[core.Tag]map[int]core.View),
		ownGood:   make(map[core.Tag]core.View),
		forwarded: make(map[core.Timestamp]bool),
		readAcks:  make(map[int64]*readState),
		writeAcks: make(map[int64]int),
		pending:   make(map[int]pendingBorrow),
		vouched:   make([]core.Checkpoint, n),
		rawVouch:  make([]core.Checkpoint, n),
	}
	return nd
}

// AttachWAL makes the node durable: every value admitted to V[self] is
// appended to w (own values synced before dissemination), frontier
// checkpoints are synced and then vouched to peers, and — when gc is set
// — the value log is pruned below the globally-vouched checkpoint. Must
// be called before the node is installed as a message handler.
func (nd *Node) AttachWAL(w *wal.Writer, gc bool) {
	nd.wal = w
	nd.gc = gc
}

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats {
	var s Stats
	nd.rt.Atomic(func() { s = nd.stats })
	return s
}

// MemoryStats reports the node's state sizes: the number of values held
// (the snapshot's full value history — growth is inherent to the paper's
// model, which never discards segment history) and the good-view caches,
// which pruneBelow keeps proportional to in-flight activity rather than
// to the execution's length.
type MemoryStats struct {
	// Values is the size of V[id] (every value ever learned).
	Values int
	// Retained is the number of values held physically; with GC enabled
	// it tracks the active window instead of the whole history.
	Retained int
	// Pruned is the number of values garbage-collected below the
	// globally-vouched checkpoint.
	Pruned int
	// LogBytes estimates the value log's resident size.
	LogBytes int
	// Frozen is the stable-frontier prefix length: values in zero-copy,
	// immutable log positions.
	Frozen int
	// BorrowTags / OwnGoodTags count cached good views.
	BorrowTags, OwnGoodTags int
	// Forwarded is the size of the forwarding dedup set.
	Forwarded int
}

// Memory returns current state sizes (for tests and capacity planning).
func (nd *Node) Memory() MemoryStats {
	var m MemoryStats
	nd.rt.Atomic(func() {
		m.Values = nd.log.SelfLen()
		m.Retained = nd.log.RetainedLen()
		m.Pruned = nd.log.PrunedCount()
		m.LogBytes = nd.log.HeapBytes()
		m.Frozen = nd.log.Frontier().Count
		m.BorrowTags = len(nd.borrow)
		m.OwnGoodTags = len(nd.ownGood)
		m.Forwarded = len(nd.forwarded)
	})
	return m
}

// LogStats returns the value log's structural counters (for tests and
// benchmarks).
func (nd *Node) LogStats() core.LogStats {
	var s core.LogStats
	nd.rt.Atomic(func() { s = nd.log.Stats() })
	return s
}

// MaxTag returns the node's current maxTag (for tests and tooling).
func (nd *Node) MaxTag() core.Tag {
	var t core.Tag
	nd.rt.Atomic(func() { t = nd.maxTag })
	return t
}

// LocalView returns a snapshot of everything the node has received
// (V[id]); the SSO built on this package serves scans from it.
func (nd *Node) LocalView() core.View {
	var v core.View
	nd.rt.Atomic(func() { v = nd.log.AllView() })
	return v
}

// HandleMessage implements rt.Handler (the event handlers of Algorithm 1,
// lines 40-49). The runtime guarantees atomic execution.
func (nd *Node) HandleMessage(src int, m rt.Message) {
	switch msg := m.(type) {
	case MsgValue:
		nd.addValue(src, msg.Val)
	case MsgReadTag:
		nd.rt.Send(src, MsgReadAck{ReqID: msg.ReqID, Tag: nd.maxTag})
	case MsgReadAck:
		if st, ok := nd.readAcks[msg.ReqID]; ok {
			st.count++
			if msg.Tag > st.max {
				st.max = msg.Tag
			}
		}
	case MsgWriteTag:
		if msg.Tag > nd.maxTag {
			nd.maxTag = msg.Tag
			nd.rt.Broadcast(MsgEchoTag{Tag: msg.Tag})
		}
		nd.rt.Send(src, MsgWriteAck{ReqID: msg.ReqID, Tag: msg.Tag})
	case MsgWriteAck:
		if _, ok := nd.writeAcks[msg.ReqID]; ok {
			nd.writeAcks[msg.ReqID]++
		}
	case MsgEchoTag:
		if msg.Tag > nd.maxTag {
			nd.maxTag = msg.Tag
		}
	case MsgGoodLA:
		// By FIFO, V[src]^{≤Tag} now equals src's equivalence set.
		view := nd.log.PeerViewLE(src, msg.Tag)
		nd.addBorrow(msg.Tag, src, view)
		if nd.OnGoodLAView != nil {
			nd.OnGoodLAView(msg.Tag, src, view)
		}
		nd.servePending()
	case MsgBorrowReq:
		if msg.Attempt == 0 && !nd.inSample(src, msg.Tag) {
			// Reply amplification gate: on the first attempt only f+1
			// deterministically sampled responders answer; the requester
			// escalates (attempt 1, everyone answers) if a sampled
			// responder naks.
			nd.stats.BorrowsSuppressed++
			return
		}
		nd.serveBorrow(src, msg.Tag, msg.Base)
	case MsgBorrowNak:
		nd.maybeEscalate(msg.Tag)
	case MsgGoodView:
		nd.adoptBorrowed(msg.Tag, src, msg.View)
	case MsgGoodViewDelta:
		if view, ok := nd.log.ComposeAt(msg.Base, msg.Delta); ok {
			nd.adoptBorrowed(msg.Tag, src, view)
		} else {
			// Our frozen prefix changed under the in-flight borrow (a
			// straggler forced a copy-on-write) — ask for full views.
			nd.stats.BorrowDeltaRejects++
			nd.maybeEscalate(msg.Tag)
		}
	case MsgCkptVouch:
		nd.noteVouch(src, msg.Ck)
	case MsgRejoinReq:
		// src recovered with durable state through Base: that prefix
		// survived the crash, so credit src's cursor with it — this also
		// repairs goodLA FIFO reconstruction for values src received but
		// whose broadcasts were cut short pre-crash.
		nd.noteVouch(src, msg.Base)
		all := nd.log.AllView()
		if delta, ok := nd.log.DeltaAbove(all, msg.Base); ok {
			nd.stats.RejoinDeltaReplies++
			nd.rt.Send(src, MsgRejoinAck{Base: msg.Base, Vals: delta})
		} else {
			nd.stats.RejoinFullReplies++
			nd.rt.Send(src, MsgRejoinAck{Full: true, Vals: all.Standalone().Values()})
		}
	case MsgRejoinAck:
		if !msg.Full {
			// src vouched our recovered base implicitly by replying with a
			// delta above it.
			nd.log.NoteVouch(src, msg.Base)
		}
		for _, v := range msg.Vals {
			nd.addValue(src, v)
		}
	}
}

// addValue admits a value received from src (the "value" handler, line 40
// of Algorithm 1): into the log, the active EQ wait, the WAL, and —
// once per timestamp — back out to everyone (reliable broadcast).
func (nd *Node) addValue(src int, v core.Value) {
	newToJ, newToSelf := nd.log.Add(src, v)
	if nd.wait != nil {
		nd.wait.OnAdd(src, v, newToJ, newToSelf)
	}
	if newToSelf && nd.wal != nil {
		nd.wal.AppendValue(src, v)
	}
	if !nd.forwarded[v.TS] {
		nd.forwarded[v.TS] = true
		nd.rt.Broadcast(MsgValue{Val: v})
	}
}

// vouchFrontier durably checkpoints the current frontier and vouches it to
// all peers. Called (atomically) after a good lattice operation advanced
// the frontier; the checkpoint is WAL-synced BEFORE the vouch broadcast,
// so a peer can only GC below a frontier this node will still hold after
// any crash. The node's own vouch is recorded via the self-delivered
// broadcast.
func (nd *Node) vouchFrontier() {
	if nd.wal == nil {
		return
	}
	ck := nd.log.Frontier()
	if ck.Count <= nd.vouched[nd.id].Count {
		return
	}
	nd.wal.AppendCheckpoint(ck)
	if nd.wal.Sync() != nil {
		return
	}
	nd.stats.VouchesSent++
	nd.rt.Broadcast(MsgCkptVouch{Ck: ck})
	// The frontier just advanced: vouches that outran this log when they
	// arrived may verify now. Without this re-check a peer's vouch received
	// while this node lagged would stay buffered until the peer's NEXT good
	// lattice op, stalling GC indefinitely.
	nd.recheckVouches()
	nd.maybeGC()
}

// noteVouch records j's durable checkpoint: the raw vouch is always
// buffered (latest per peer), and when this log vouches the same prefix
// it advances j's cursor, raises vouched[j], and garbage-collects if a
// new global floor emerged. A vouch this log cannot verify yet — the
// local frontier lags j's — stays in rawVouch and is re-examined by
// recheckVouches once the frontier advances.
func (nd *Node) noteVouch(j int, ck core.Checkpoint) {
	if ck.Count > nd.rawVouch[j].Count {
		nd.rawVouch[j] = ck
	}
	nd.log.NoteVouch(j, ck)
	if nd.log.Vouches(ck) && ck.Count > nd.vouched[j].Count {
		nd.vouched[j] = ck
	}
	nd.maybeGC()
}

// recheckVouches re-applies buffered raw vouches that were not verifiable
// when they arrived. Called after the local frontier advances.
func (nd *Node) recheckVouches() {
	for j, ck := range nd.rawVouch {
		if j == nd.id || ck.Count <= nd.vouched[j].Count {
			continue
		}
		nd.log.NoteVouch(j, ck)
		if nd.log.Vouches(ck) {
			nd.vouched[j] = ck
		}
	}
}

// maybeGC prunes the value log below the smallest checkpoint every node
// has durably vouched. The prune is WAL-logged and synced first so replay
// prunes at the same point and recovered digests match live peers. Never
// runs while an EQ wait is active (the tracker caches absolute counts).
func (nd *Node) maybeGC() {
	if nd.wal == nil || !nd.gc || nd.wait != nil {
		return
	}
	floor := nd.vouched[0]
	for _, ck := range nd.vouched[1:] {
		if ck.Count < floor.Count {
			floor = ck
		}
	}
	if floor.Count <= nd.log.PrunedCount() || !nd.log.Vouches(floor) {
		return
	}
	nd.wal.AppendPrune(floor)
	if nd.wal.Sync() != nil {
		return
	}
	if nd.log.PruneTo(floor) {
		nd.stats.LogPrunes++
	}
}

// adoptBorrowed records a good view received from a peer and serves any
// borrowReq this node had parked (it now holds a view to answer with).
func (nd *Node) adoptBorrowed(tag core.Tag, from int, view core.View) {
	nd.addBorrow(tag, from, view)
	if nd.OnGoodLAView != nil {
		nd.OnGoodLAView(tag, from, view)
	}
	nd.servePending()
}

func (nd *Node) addBorrow(tag core.Tag, from int, view core.View) {
	byNode := nd.borrow[tag]
	if byNode == nil {
		byNode = make(map[int]core.View)
		nd.borrow[tag] = byNode
	}
	byNode[from] = view
}

// inSample reports whether this node is one of the f+1 responders sampled
// for src's borrowReq at the given tag. The sample is a deterministic
// function of (tag, src) — a rotation of the ring starting at a
// tag-and-requester-derived offset — so the requester needs no extra
// coordination and repeated borrows at growing tags spread the load.
func (nd *Node) inSample(src int, tag core.Tag) bool {
	k := nd.n - nd.quorum + 1 // f+1: at least one sampled node is correct
	h := uint64(tag)*0x9e3779b97f4a7c15 + uint64(src)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	start := int(h % uint64(nd.n))
	for i, c := 0, 0; i < nd.n && c < k; i++ {
		id := (start + i) % nd.n
		if id == src {
			continue // the requester answers itself for free
		}
		if id == nd.id {
			return true
		}
		c++
	}
	return false
}

// serveBorrow answers a borrowReq: with the delta above the requester's
// advertised frontier when both sides agree on that prefix, with a full
// view otherwise, or — lacking any view with tag ≥ r — with a borrowNak
// now and a real reply later (servePending) if a view arrives.
func (nd *Node) serveBorrow(src int, r core.Tag, base core.Checkpoint) {
	if tag, view, ok := nd.bestViewAtLeast(r); ok {
		nd.sendView(src, tag, view, base)
		return
	}
	nd.pending[src] = pendingBorrow{tag: r, base: base}
	nd.rt.Send(src, MsgBorrowNak{Tag: r})
}

func (nd *Node) sendView(src int, tag core.Tag, view core.View, base core.Checkpoint) {
	if delta, ok := nd.log.DeltaAbove(view, base); ok {
		nd.stats.BorrowDeltaReplies++
		nd.rt.Send(src, MsgGoodViewDelta{Tag: tag, Base: base, Delta: delta})
		return
	}
	nd.stats.BorrowFullReplies++
	// Full views must not depend on this node's pruned-prefix summary
	// (the wire codec flattens views): materialize it first.
	nd.rt.Send(src, MsgGoodView{Tag: tag, View: view.Standalone()})
}

// servePending answers parked borrowReqs that a newly learned view can now
// satisfy. Iteration is in requester order for determinism.
func (nd *Node) servePending() {
	if len(nd.pending) == 0 {
		return
	}
	reqs := make([]int, 0, len(nd.pending))
	for src := range nd.pending {
		reqs = append(reqs, src)
	}
	sort.Ints(reqs)
	for _, src := range reqs {
		pb := nd.pending[src]
		if tag, view, ok := nd.bestViewAtLeast(pb.tag); ok {
			delete(nd.pending, src)
			nd.stats.BorrowPendingServed++
			nd.sendView(src, tag, view, pb.base)
		}
	}
}

// maybeEscalate rebroadcasts the in-flight borrow to every node, once: a
// sampled responder had nothing to offer (borrowNak) or a delta reply went
// stale. Escalation restores the pre-gating behavior, so liveness matches
// the original always-broadcast protocol.
func (nd *Node) maybeEscalate(tag core.Tag) {
	bw := nd.curBorrow
	if bw == nil || bw.escalated || tag != bw.tag {
		return
	}
	bw.escalated = true
	nd.stats.BorrowsEscalated++
	nd.rt.Broadcast(MsgBorrowReq{Tag: bw.tag, Attempt: 1, Base: bw.base})
}

// bestViewAtLeast returns the smallest-tagged good view this node knows
// with tag ≥ r (its own good views or borrowed ones). Deterministic.
func (nd *Node) bestViewAtLeast(r core.Tag) (core.Tag, core.View, bool) {
	bestTag := core.Tag(-1)
	var bestView core.View
	consider := func(tag core.Tag, view core.View) {
		if tag >= r && (bestTag < 0 || tag < bestTag) {
			bestTag, bestView = tag, view
		}
	}
	for _, tag := range sortedTags(nd.ownGood) {
		consider(tag, nd.ownGood[tag])
	}
	for tag, byNode := range nd.borrow {
		if tag < r {
			continue
		}
		nodes := make([]int, 0, len(byNode))
		for j := range byNode {
			nodes = append(nodes, j)
		}
		sort.Ints(nodes)
		consider(tag, byNode[nodes[0]])
	}
	if bestTag < 0 {
		return 0, core.View{}, false
	}
	return bestTag, bestView, true
}

func sortedTags(m map[core.Tag]core.View) []core.Tag {
	tags := make([]core.Tag, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// pruneBelow discards borrow/ownGood entries with tag < r; every future
// need of this node is for tags ≥ r (tags a node works with never
// decrease), so the memory stays proportional to in-flight activity. The
// largest view held is always retained so the node can keep answering
// peers' borrowReq messages.
func (nd *Node) pruneBelow(r core.Tag) {
	maxHeld := core.Tag(-1)
	for tag := range nd.borrow {
		if tag > maxHeld {
			maxHeld = tag
		}
	}
	for tag := range nd.ownGood {
		if tag > maxHeld {
			maxHeld = tag
		}
	}
	if maxHeld < r {
		r = maxHeld
	}
	for tag := range nd.borrow {
		if tag < r {
			delete(nd.borrow, tag)
		}
	}
	for tag := range nd.ownGood {
		if tag < r {
			delete(nd.ownGood, tag)
		}
	}
}
