// Package eqaso implements EQ-ASO (Algorithm 1 of the paper): the
// crash-tolerant atomic snapshot object based on equivalence quorums, with
// O(√k·D) worst-case and amortized O(D) time for UPDATE and SCAN given
// n > 2f.
//
// Two deliberate deviations from the pseudocode, both required for
// liveness and documented in DESIGN.md:
//
//  1. The "writeTag" handler acknowledges every request; only the maxTag
//     adoption and the "echoTag" broadcast are guarded by tag > maxTag.
//     (Acknowledging only larger tags would block a writeTag quorum wait
//     forever once the tag is stale.)
//
//  2. The borrow phase (line 29) accepts a good view with any tag ≥ r and
//     additionally broadcasts a "borrowReq", answered by peers with an
//     explicit "goodView". This keeps LatticeRenewal live even when the
//     original goodLA broadcast was truncated by the sender's crash. Any
//     good view with tag ≥ r preserves conditions (A1)-(A4): good views
//     are pairwise comparable (Lemma 2), and larger views only grow bases.
package eqaso

import (
	"sort"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
)

// Stats counts a node's operations and lattice activity.
type Stats struct {
	Updates       int64 // values written (a k-batch counts k)
	Batches       int64 // update round sequences (single updates count 1)
	Scans         int64
	LatticeOps    int64
	DirectViews   int64
	IndirectViews int64
}

type readState struct {
	count int
	max   core.Tag
}

// Node is one EQ-ASO node: the server-thread state of Algorithm 1 plus the
// client-thread operations Update and Scan. Install it as the node's
// message handler and invoke operations from the node's client thread.
type Node struct {
	rt     rt.Runtime
	id     int
	n      int
	quorum int // n - f

	// Algorithm 1 local variables.
	V         []*core.ValueSet               // V[j]: values received from j
	maxTag    core.Tag                       // largest tag seen via writeTag/echoTag
	borrow    map[core.Tag]map[int]core.View // D, kept per (tag, sender)
	ownGood   map[core.Tag]core.View         // this node's good-lattice views
	forwarded map[core.Timestamp]bool        // values already sent to all

	// In-flight quorum calls and the active EQ wait.
	nextReq   int64
	readAcks  map[int64]*readState
	writeAcks map[int64]int
	wait      *core.EQTracker

	stats Stats

	// Operation instrumentation (see obs.go); owned by the client thread.
	obs   rt.Observer
	opSeq int64
	curOp opCtx

	// OnGoodLattice, if set, observes every good lattice operation
	// completed by this node (used by invariant-checking tests and by
	// the SSO's passive view adoption).
	OnGoodLattice func(tag core.Tag, view core.View)
	// OnGoodLAView, if set, observes every good view learned from a peer
	// ("goodLA" FIFO-derived views and explicit "goodView" replies).
	OnGoodLAView func(tag core.Tag, from int, view core.View)
}

// New creates the EQ-ASO node for the given runtime. The caller must
// register it as the node's message handler.
func New(r rt.Runtime) *Node {
	n := r.N()
	nd := &Node{
		rt:        r,
		id:        r.ID(),
		n:         n,
		quorum:    n - r.F(),
		V:         make([]*core.ValueSet, n),
		borrow:    make(map[core.Tag]map[int]core.View),
		ownGood:   make(map[core.Tag]core.View),
		forwarded: make(map[core.Timestamp]bool),
		readAcks:  make(map[int64]*readState),
		writeAcks: make(map[int64]int),
	}
	for i := range nd.V {
		nd.V[i] = core.NewValueSet()
	}
	return nd
}

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats {
	var s Stats
	nd.rt.Atomic(func() { s = nd.stats })
	return s
}

// MemoryStats reports the node's state sizes: the number of values held
// (the snapshot's full value history — growth is inherent to the paper's
// model, which never discards segment history) and the good-view caches,
// which pruneBelow keeps proportional to in-flight activity rather than
// to the execution's length.
type MemoryStats struct {
	// Values is the size of V[id] (every value ever learned).
	Values int
	// BorrowTags / OwnGoodTags count cached good views.
	BorrowTags, OwnGoodTags int
	// Forwarded is the size of the forwarding dedup set.
	Forwarded int
}

// Memory returns current state sizes (for tests and capacity planning).
func (nd *Node) Memory() MemoryStats {
	var m MemoryStats
	nd.rt.Atomic(func() {
		m.Values = nd.V[nd.id].Len()
		m.BorrowTags = len(nd.borrow)
		m.OwnGoodTags = len(nd.ownGood)
		m.Forwarded = len(nd.forwarded)
	})
	return m
}

// MaxTag returns the node's current maxTag (for tests and tooling).
func (nd *Node) MaxTag() core.Tag {
	var t core.Tag
	nd.rt.Atomic(func() { t = nd.maxTag })
	return t
}

// LocalView returns a snapshot of everything the node has received
// (V[id]); the SSO built on this package serves scans from it.
func (nd *Node) LocalView() core.View {
	var v core.View
	nd.rt.Atomic(func() { v = nd.V[nd.id].AllView() })
	return v
}

// HandleMessage implements rt.Handler (the event handlers of Algorithm 1,
// lines 40-49). The runtime guarantees atomic execution.
func (nd *Node) HandleMessage(src int, m rt.Message) {
	switch msg := m.(type) {
	case MsgValue:
		newToJ := nd.V[src].Add(msg.Val)
		newToSelf := newToJ
		if src != nd.id {
			newToSelf = nd.V[nd.id].Add(msg.Val)
		}
		if nd.wait != nil {
			nd.wait.OnAdd(src, msg.Val, newToJ, newToSelf)
		}
		if !nd.forwarded[msg.Val.TS] {
			nd.forwarded[msg.Val.TS] = true
			nd.rt.Broadcast(MsgValue{Val: msg.Val})
		}
	case MsgReadTag:
		nd.rt.Send(src, MsgReadAck{ReqID: msg.ReqID, Tag: nd.maxTag})
	case MsgReadAck:
		if st, ok := nd.readAcks[msg.ReqID]; ok {
			st.count++
			if msg.Tag > st.max {
				st.max = msg.Tag
			}
		}
	case MsgWriteTag:
		if msg.Tag > nd.maxTag {
			nd.maxTag = msg.Tag
			nd.rt.Broadcast(MsgEchoTag{Tag: msg.Tag})
		}
		nd.rt.Send(src, MsgWriteAck{ReqID: msg.ReqID, Tag: msg.Tag})
	case MsgWriteAck:
		if _, ok := nd.writeAcks[msg.ReqID]; ok {
			nd.writeAcks[msg.ReqID]++
		}
	case MsgEchoTag:
		if msg.Tag > nd.maxTag {
			nd.maxTag = msg.Tag
		}
	case MsgGoodLA:
		// By FIFO, V[src]^{≤Tag} now equals src's equivalence set.
		view := nd.V[src].ViewLE(msg.Tag)
		nd.addBorrow(msg.Tag, src, view)
		if nd.OnGoodLAView != nil {
			nd.OnGoodLAView(msg.Tag, src, view)
		}
	case MsgBorrowReq:
		if tag, view, ok := nd.bestViewAtLeast(msg.Tag); ok {
			nd.rt.Send(src, MsgGoodView{Tag: tag, View: view})
		}
	case MsgGoodView:
		nd.addBorrow(msg.Tag, src, msg.View)
		if nd.OnGoodLAView != nil {
			nd.OnGoodLAView(msg.Tag, src, msg.View)
		}
	}
}

func (nd *Node) addBorrow(tag core.Tag, from int, view core.View) {
	byNode := nd.borrow[tag]
	if byNode == nil {
		byNode = make(map[int]core.View)
		nd.borrow[tag] = byNode
	}
	byNode[from] = view
}

// bestViewAtLeast returns the smallest-tagged good view this node knows
// with tag ≥ r (its own good views or borrowed ones). Deterministic.
func (nd *Node) bestViewAtLeast(r core.Tag) (core.Tag, core.View, bool) {
	bestTag := core.Tag(-1)
	var bestView core.View
	consider := func(tag core.Tag, view core.View) {
		if tag >= r && (bestTag < 0 || tag < bestTag) {
			bestTag, bestView = tag, view
		}
	}
	for _, tag := range sortedTags(nd.ownGood) {
		consider(tag, nd.ownGood[tag])
	}
	for tag, byNode := range nd.borrow {
		if tag < r {
			continue
		}
		nodes := make([]int, 0, len(byNode))
		for j := range byNode {
			nodes = append(nodes, j)
		}
		sort.Ints(nodes)
		consider(tag, byNode[nodes[0]])
	}
	if bestTag < 0 {
		return 0, nil, false
	}
	return bestTag, bestView, true
}

func sortedTags(m map[core.Tag]core.View) []core.Tag {
	tags := make([]core.Tag, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// pruneBelow discards borrow/ownGood entries with tag < r; every future
// need of this node is for tags ≥ r (tags a node works with never
// decrease), so the memory stays proportional to in-flight activity. The
// largest view held is always retained so the node can keep answering
// peers' borrowReq messages.
func (nd *Node) pruneBelow(r core.Tag) {
	maxHeld := core.Tag(-1)
	for tag := range nd.borrow {
		if tag > maxHeld {
			maxHeld = tag
		}
	}
	for tag := range nd.ownGood {
		if tag > maxHeld {
			maxHeld = tag
		}
	}
	if maxHeld < r {
		r = maxHeld
	}
	for tag := range nd.borrow {
		if tag < r {
			delete(nd.borrow, tag)
		}
	}
	for tag := range nd.ownGood {
		if tag < r {
			delete(nd.ownGood, tag)
		}
	}
}
