package eqaso

import "mpsnap/internal/rt"

// Operation instrumentation. Each node has one sequential client thread
// (the rt model), so the current-op fields need no synchronization: only
// that thread starts ops, crosses phases, and ends ops. The observer
// itself must be concurrency-safe (events from different nodes interleave).

type opCtx struct {
	id    int64
	op    string
	start rt.Ticks
}

// SetObserver installs an operation observer. Events emitted: "update"
// and "scan" lifecycles, with protocol phases "readTag", "disseminate",
// "writeTag", "eqWait", "eqGood"/"eqNotGood", "renewal:<1..3>", and
// "borrow" in between. Ops run on behalf of a wrapping layer (the SSO's
// RefreshView) emit phases only when that layer started an op here, which
// it does not — each layer reports its own latencies.
func (nd *Node) SetObserver(o rt.Observer) { nd.obs = o }

// opStart opens an op event stream and makes it current for phase marks.
func (nd *Node) opStart(op string) opCtx {
	nd.opSeq++
	c := opCtx{id: nd.opSeq, op: op, start: nd.rt.Now()}
	nd.curOp = c
	if nd.obs != nil {
		nd.obs.OnOp(rt.OpEvent{T: c.start, Node: nd.id, ID: c.id, Op: c.op, Phase: rt.PhaseStart})
	}
	return c
}

// phase marks a protocol phase of the current op (no-op outside an op,
// e.g. RefreshView called by the SSO).
func (nd *Node) phase(name string) {
	if nd.obs == nil || nd.curOp.op == "" {
		return
	}
	nd.obs.OnOp(rt.OpEvent{T: nd.rt.Now(), Node: nd.id, ID: nd.curOp.id, Op: nd.curOp.op, Phase: name})
}

// opEnd closes the op event stream with its latency.
func (nd *Node) opEnd(c opCtx, err error) {
	nd.curOp = opCtx{}
	if nd.obs == nil {
		return
	}
	now := nd.rt.Now()
	nd.obs.OnOp(rt.OpEvent{
		T: now, Node: nd.id, ID: c.id, Op: c.op,
		Phase: rt.PhaseEnd, Dur: now - c.start, Err: err != nil,
	})
}

// renewalPhases are precomputed so the hot path allocates nothing.
var renewalPhases = [...]string{"renewal:1", "renewal:2", "renewal:3"}
