package eqaso_test

import (
	"testing"

	"mpsnap/internal/core"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// TestUpdateBatchTimestampsAndVisibility: a k-batch takes k consecutive
// timestamps with one round sequence; a later single update takes a
// strictly larger timestamp; readers observe the batch's last value.
func TestUpdateBatchTimestampsAndVisibility(t *testing.T) {
	const n, f = 4, 1
	w := sim.New(sim.Config{N: n, F: f, Seed: 7})
	nodes := make([]*eqaso.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = eqaso.New(w.Runtime(i))
		w.SetHandler(i, nodes[i])
	}
	batchDone := false
	w.GoNode("writer", 0, func(p *sim.Proc) {
		view, tss, err := nodes[0].UpdateBatchWithView([][]byte{[]byte("a"), []byte("b"), []byte("c")})
		if err != nil {
			t.Errorf("batch: %v", err)
			return
		}
		if len(tss) != 3 {
			t.Fatalf("got %d timestamps, want 3", len(tss))
		}
		for i, ts := range tss {
			if ts.Writer != 0 || ts.Tag != tss[0].Tag+core.Tag(i) {
				t.Errorf("timestamps not consecutive: %v", tss)
				break
			}
		}
		if !view.Contains(tss[2]) {
			t.Errorf("renewal view misses the batch's last value")
		}
		batchDone = true
		// A later single update must take a strictly larger timestamp
		// (the renewal wrote tag r+k to a quorum).
		_, ts, err := nodes[0].UpdateWithView([]byte("d"))
		if err != nil {
			t.Errorf("update after batch: %v", err)
			return
		}
		if ts.Tag <= tss[2].Tag {
			t.Errorf("post-batch timestamp %v not above batch's %v", ts, tss[2])
		}
	})
	w.GoNode("reader", 1, func(p *sim.Proc) {
		if err := p.WaitUntilGlobal("batch done", func() bool { return batchDone }); err != nil {
			return
		}
		snap, err := nodes[1].Scan()
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		// The batch committed before batchDone was set, so segment 0
		// shows its last value — or "d" if the follow-up update already
		// landed.
		if got := string(snap[0]); got != "c" && got != "d" {
			t.Errorf("segment 0 = %q, want batch tail %q (or later %q)", got, "c", "d")
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	st := nodes[0].Stats()
	if st.Updates != 4 || st.Batches != 2 {
		t.Errorf("stats = %+v, want Updates=4 Batches=2", st)
	}
}

// TestUpdateBatchEmptyAndSingle: the empty batch is a no-op; a 1-batch is
// exactly one classic update.
func TestUpdateBatchEmptyAndSingle(t *testing.T) {
	const n, f = 3, 1
	w := sim.New(sim.Config{N: n, F: f, Seed: 8})
	nodes := make([]*eqaso.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = eqaso.New(w.Runtime(i))
		w.SetHandler(i, nodes[i])
	}
	w.GoNode("writer", 0, func(p *sim.Proc) {
		if err := nodes[0].UpdateBatch(nil); err != nil {
			t.Errorf("empty batch: %v", err)
		}
		if st := nodes[0].Stats(); st.Updates != 0 || st.Batches != 0 {
			t.Errorf("empty batch counted: %+v", st)
		}
		if err := nodes[0].UpdateBatch([][]byte{[]byte("solo")}); err != nil {
			t.Errorf("1-batch: %v", err)
		}
		snap, err := nodes[0].Scan()
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if string(snap[0]) != "solo" {
			t.Errorf("segment 0 = %q", snap[0])
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateBatchCrashed: a crashed node refuses batches.
func TestUpdateBatchCrashed(t *testing.T) {
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 9})
	nodes := make([]*eqaso.Node, 3)
	for i := 0; i < 3; i++ {
		nodes[i] = eqaso.New(w.Runtime(i))
		w.SetHandler(i, nodes[i])
	}
	w.Crash(0)
	w.GoNode("writer", 1, func(p *sim.Proc) {
		// Peer 0 is down but quorum 2/3 remains: batches still commit.
		if err := nodes[1].UpdateBatch([][]byte{[]byte("x"), []byte("y")}); err != nil {
			t.Errorf("batch with one peer down: %v", err)
		}
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].UpdateBatch([][]byte{[]byte("z")}); err != rt.ErrCrashed {
		t.Errorf("crashed node batch = %v, want ErrCrashed", err)
	}
}
