package eqaso

import (
	"mpsnap/internal/core"
	"mpsnap/internal/rt"
)

// readTag implements readTag() (lines 35-37): read the largest maxTag from
// at least n-f nodes.
func (nd *Node) readTag() (core.Tag, error) {
	nd.phase("readTag")
	var req int64
	var st *readState
	nd.rt.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		// Seed with the local maxTag: the quorum maximum can only raise it,
		// and a node recovering from its WAL must never pick a timestamp at
		// or below one it already wrote durably.
		st = &readState{max: nd.maxTag}
		nd.readAcks[req] = st
	})
	nd.rt.Broadcast(MsgReadTag{ReqID: req})
	var r core.Tag
	err := nd.rt.WaitUntilThen("readTag quorum",
		func() bool { return st.count >= nd.quorum },
		func() {
			r = st.max
			delete(nd.readAcks, req)
		})
	return r, err
}

// writeTag implements writeTag(tag) (lines 38-39): write the tag to at
// least n-f nodes.
func (nd *Node) writeTag(tag core.Tag) error {
	nd.phase("writeTag")
	var req int64
	nd.rt.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		nd.writeAcks[req] = 0
	})
	nd.rt.Broadcast(MsgWriteTag{ReqID: req, Tag: tag})
	return nd.rt.WaitUntilThen("writeTag quorum",
		func() bool { return nd.writeAcks[req] >= nd.quorum },
		func() { delete(nd.writeAcks, req) })
}

// lattice implements Lattice(r) (lines 14-21): write the tag, wait for the
// equivalence quorum predicate EQ(V^{≤r}, i), and atomically decide whether
// the operation is good (maxTag ≤ r).
func (nd *Node) lattice(r core.Tag) (good bool, view core.View, err error) {
	nd.rt.Atomic(func() { nd.stats.LatticeOps++ })
	if err := nd.writeTag(r); err != nil {
		return false, core.View{}, err
	}
	var tracker *core.EQTracker
	nd.rt.Atomic(func() {
		// This node will never need a view with tag < r again (its tags
		// are nondecreasing), so keep the good-view caches bounded by
		// in-flight activity.
		nd.pruneBelow(r)
		tracker = core.NewEQTrackerFromLog(nd.log, r, nd.quorum)
		nd.wait = tracker
	})
	nd.phase("eqWait")
	err = nd.rt.WaitUntilThen("EQ predicate",
		tracker.Satisfied,
		func() {
			// Lines 16-21, executed atomically.
			nd.wait = nil
			if nd.maxTag <= r {
				good = true
				// The prefix ≤ r is an equivalence set held by n−f
				// nodes: freeze it first, so the view below is a
				// zero-copy alias of the frozen log.
				nd.log.AdvanceFrontier(r)
				view = nd.log.ViewLE(r)
				nd.ownGood[r] = view
				if nd.OnGoodLattice != nil {
					nd.OnGoodLattice(r, view)
				}
				nd.rt.Broadcast(MsgGoodLA{Tag: r})
				nd.vouchFrontier()
				nd.servePending()
			}
		})
	if err != nil {
		return false, core.View{}, err
	}
	if good {
		nd.phase("eqGood")
	} else {
		nd.phase("eqNotGood")
	}
	return good, view, nil
}

// latticeRenewal implements LatticeRenewal(r) (lines 22-30): at most three
// lattice operations; a good one yields a direct view, otherwise the node
// borrows an indirect view from a peer's good lattice operation.
func (nd *Node) latticeRenewal(r core.Tag) (core.View, error) {
	for phase := 1; phase <= 3; phase++ {
		nd.phase(renewalPhases[phase-1])
		good, view, err := nd.lattice(r)
		if err != nil {
			return core.View{}, err
		}
		if good {
			nd.rt.Atomic(func() { nd.stats.DirectViews++ })
			return view, nil // direct view
		}
		if phase == 3 {
			break
		}
		nd.rt.Atomic(func() { r = nd.maxTag })
	}
	// Borrow an indirect view for tag ≥ r (see the package comment for
	// why ≥ rather than = preserves correctness and improves liveness).
	// The request advertises the stable frontier so holders can reply
	// with a delta, and is answered by a sampled subset of nodes first
	// (escalated to everyone on a borrowNak — see maybeEscalate).
	nd.phase("borrow")
	var req MsgBorrowReq
	nd.rt.Atomic(func() {
		nd.pruneBelow(r)
		base := nd.log.Frontier()
		nd.curBorrow = &borrowWait{tag: r, base: base}
		req = MsgBorrowReq{Tag: r, Attempt: 0, Base: base}
	})
	nd.rt.Broadcast(req)
	var view core.View
	err := nd.rt.WaitUntilThen("borrow goodLA view",
		func() bool { _, _, ok := nd.bestViewAtLeast(r); return ok },
		func() {
			_, view, _ = nd.bestViewAtLeast(r)
			nd.curBorrow = nil
			nd.stats.IndirectViews++
		})
	return view, err
}

// Update implements UPDATE(v) (lines 4-10): obtain a fresh timestamp,
// disseminate the value, run the phase-0 lattice operation, then a
// LatticeRenewal whose view is discarded.
func (nd *Node) Update(payload []byte) error {
	_, _, err := nd.UpdateWithView(payload)
	return err
}

// UpdateWithView is Update, additionally returning the view obtained by
// the operation's final LatticeRenewal and the written value's timestamp.
// EQ-ASO itself discards that view (line 9's comment); the SSO built on
// this package stores it.
func (nd *Node) UpdateWithView(payload []byte) (core.View, core.Timestamp, error) {
	view, tss, err := nd.UpdateBatchWithView([][]byte{payload})
	var ts core.Timestamp
	if len(tss) > 0 {
		ts = tss[0]
	}
	return view, ts, err
}

// UpdateBatch writes the payloads, in order, as successive values of this
// node's segment with ONE protocol update's round sequence. This is the
// amortization lever behind the paper's O(D) amortized bound: k pending
// writes share a single readTag, phase-0 lattice operation, and
// LatticeRenewal, so the whole batch costs what one UPDATE costs. The
// service layer (internal/svc) uses it to coalesce concurrent clients.
func (nd *Node) UpdateBatch(payloads [][]byte) error {
	_, _, err := nd.UpdateBatchWithView(payloads)
	return err
}

// UpdateBatchWithView is UpdateBatch, additionally returning the final
// renewal's view and the written timestamps (in payload order). With one
// payload it produces exactly the message sequence of UpdateWithView.
//
// The batch takes timestamps r+1..r+k: all values are disseminated before
// the phase-0 lattice operation, and the renewal runs at max(r+k, maxTag),
// which writeTags ≥ r+k to a quorum — so any later readTag (whose quorum
// intersects it) returns ≥ r+k and per-writer timestamps stay strictly
// increasing, exactly as in the single-value protocol.
func (nd *Node) UpdateBatchWithView(payloads [][]byte) (view core.View, tss []core.Timestamp, err error) {
	if nd.rt.Crashed() {
		return core.View{}, nil, rt.ErrCrashed
	}
	if len(payloads) == 0 {
		return core.View{}, nil, nil
	}
	c := nd.opStart("update")
	defer func() { nd.opEnd(c, err) }()
	k := core.Tag(len(payloads))
	nd.rt.Atomic(func() {
		nd.stats.Updates += int64(k)
		nd.stats.Batches++
	})
	r, err := nd.readTag()
	if err != nil {
		return core.View{}, nil, err
	}
	tss = make([]core.Timestamp, len(payloads))
	var walErr error
	nd.rt.Atomic(func() {
		for i := range payloads {
			tss[i] = core.Timestamp{Tag: r + 1 + core.Tag(i), Writer: nd.id}
			nd.forwarded[tss[i]] = true
		}
		if nd.wal != nil {
			// Durable-before-disseminate: admit the batch to V[self] and
			// sync it BEFORE any peer can observe a value, so no value a
			// survivor holds can be lost by this node's crash. Without a
			// WAL the values enter the log through the self-delivered
			// broadcast below, exactly as before.
			for i := range payloads {
				v := core.Value{TS: tss[i], Payload: payloads[i]}
				if nd.log.AddSelf(v) {
					nd.wal.AppendValue(nd.id, v)
				}
			}
			walErr = nd.wal.Sync()
		}
	})
	if walErr != nil {
		// The batch is not durable: disseminating it would let peers act on
		// (and GC behind) values this node cannot reconstruct after a crash.
		// Writer errors latch, so every subsequent update fails here too —
		// the node is write-fenced until the operator intervenes.
		return core.View{}, nil, walErr
	}
	nd.phase("disseminate")
	for i, payload := range payloads {
		nd.rt.Broadcast(MsgValue{Val: core.Value{TS: tss[i], Payload: payload}})
	}
	if _, _, err = nd.lattice(r); err != nil { // phase 0
		return core.View{}, tss, err
	}
	var r2 core.Tag
	nd.rt.Atomic(func() {
		r2 = r + k
		if nd.maxTag > r2 {
			r2 = nd.maxTag
		}
	})
	view, err = nd.latticeRenewal(r2)
	return view, tss, err
}

// RefreshView runs one readTag + LatticeRenewal and returns the obtained
// view (used by the SSO to catch up until its own value is visible).
func (nd *Node) RefreshView() (core.View, error) {
	r, err := nd.readTag()
	if err != nil {
		return core.View{}, err
	}
	return nd.latticeRenewal(r)
}

// Scan implements SCAN() (lines 11-13). The returned vector has one entry
// per node; nil marks a segment never written (⊥). It delegates to
// ScanView, which holds the protocol logic.
func (nd *Node) Scan() ([][]byte, error) {
	view, err := nd.ScanView()
	if err != nil {
		return nil, err
	}
	return view.Extract(nd.n), nil
}

// ScanView is Scan but returns the underlying view (used by tests and by
// the lattice-agreement adapter).
func (nd *Node) ScanView() (view core.View, err error) {
	if nd.rt.Crashed() {
		return core.View{}, rt.ErrCrashed
	}
	c := nd.opStart("scan")
	defer func() { nd.opEnd(c, err) }()
	nd.rt.Atomic(func() { nd.stats.Scans++ })
	r, err := nd.readTag()
	if err != nil {
		return core.View{}, err
	}
	return nd.latticeRenewal(r)
}
