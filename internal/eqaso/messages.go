package eqaso

import (
	"math/rand"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// Message types of Algorithm 1 plus two liveness-hardening messages
// ("borrowReq"/"goodView", see the package comment in node.go).

// MsgValue carries a written or forwarded value ("value", ⟨v, ts⟩).
type MsgValue struct{ Val core.Value }

// Kind implements rt.Message.
func (MsgValue) Kind() string { return "value" }

// MsgReadTag requests the receiver's maxTag ("readTag").
type MsgReadTag struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgReadTag) Kind() string { return "readTag" }

// MsgReadAck answers a MsgReadTag with the responder's maxTag ("readAck").
type MsgReadAck struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgReadAck) Kind() string { return "readAck" }

// MsgWriteTag writes a tag to the receiver ("writeTag").
type MsgWriteTag struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgWriteTag) Kind() string { return "writeTag" }

// MsgWriteAck acknowledges a MsgWriteTag ("writeAck").
type MsgWriteAck struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgWriteAck) Kind() string { return "writeAck" }

// MsgEchoTag propagates a newly adopted maxTag ("echoTag").
type MsgEchoTag struct{ Tag core.Tag }

// Kind implements rt.Message.
func (MsgEchoTag) Kind() string { return "echoTag" }

// MsgGoodLA announces that the sender completed a good lattice operation
// with the given tag ("goodLA"); by FIFO, the receiver's V[sender]
// restricted to the tag equals the sender's equivalence set.
type MsgGoodLA struct{ Tag core.Tag }

// Kind implements rt.Message.
func (MsgGoodLA) Kind() string { return "goodLA" }

// MsgBorrowReq asks peers for any good view with tag ≥ Tag. It is sent
// when a LatticeRenewal enters its borrow phase, so that an indirect view
// can be obtained even if the original goodLA broadcast was cut short by a
// crash. Attempt 0 is answered only by a sampled subset of responders
// (reply-amplification gating); attempt 1 — broadcast after a borrowNak —
// by everyone. Base advertises the requester's stable frontier so a
// responder holding the same prefix can reply with just the delta.
type MsgBorrowReq struct {
	Tag     core.Tag
	Attempt uint8
	Base    core.Checkpoint
}

// Kind implements rt.Message.
func (MsgBorrowReq) Kind() string { return "borrowReq" }

// MsgGoodView answers a MsgBorrowReq with an explicit full good view.
type MsgGoodView struct {
	Tag  core.Tag
	View core.View
}

// Kind implements rt.Message.
func (MsgGoodView) Kind() string { return "goodView" }

// MsgGoodViewDelta answers a MsgBorrowReq whose Base checkpoint the
// responder vouches for: the good view equals the requester's own frozen
// prefix of Base.Count values followed by Delta. Message size is bounded
// by activity above the frontier instead of the whole history.
type MsgGoodViewDelta struct {
	Tag   core.Tag
	Base  core.Checkpoint
	Delta []core.Value
}

// Kind implements rt.Message.
func (MsgGoodViewDelta) Kind() string { return "goodViewDelta" }

// MsgBorrowNak tells a borrower that a sampled responder holds no good
// view with tag ≥ Tag yet; the borrower escalates to a full broadcast and
// the responder parks the request, serving it when a view arrives.
type MsgBorrowNak struct{ Tag core.Tag }

// Kind implements rt.Message.
func (MsgBorrowNak) Kind() string { return "borrowNak" }

// MsgCkptVouch announces that the sender's durable frontier reached Ck:
// the sender holds (and has WAL-synced) exactly that prefix and will
// never retract it, even across a crash. A receiver that vouches Ck too
// advances its cursor for the sender over the prefix; once every node
// has vouched a checkpoint, the log below the minimum such checkpoint is
// garbage-collectable.
type MsgCkptVouch struct{ Ck core.Checkpoint }

// Kind implements rt.Message.
func (MsgCkptVouch) Kind() string { return "ckptVouch" }

// MsgRejoinReq announces that the sender recovered from a crash with
// durable state through Base. Receivers repair their cursor for the
// sender (it provably holds that prefix) and reply with the values they
// hold above it.
type MsgRejoinReq struct{ Base core.Checkpoint }

// Kind implements rt.Message.
func (MsgRejoinReq) Kind() string { return "rejoinReq" }

// MsgRejoinAck answers a MsgRejoinReq: when the responder vouches Base,
// Vals is just the delta above it; otherwise Full is set and Vals is the
// responder's whole (standalone) value set.
type MsgRejoinAck struct {
	Base core.Checkpoint
	Full bool
	Vals []core.Value
}

// Kind implements rt.Message.
func (MsgRejoinAck) Kind() string { return "rejoinAck" }

// Wire tags 16–29 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 16, Proto: MsgValue{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutValue(b, m.(MsgValue).Val) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgValue{Val: wire.GetValue(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgValue{Val: wire.GenValue(rng)} },
	})
	wire.Register(wire.Codec{
		Tag: 17, Proto: MsgReadTag{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgReadTag).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgReadTag{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgReadTag{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 18, Proto: MsgReadAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgReadAck)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.Tag)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgReadAck{ReqID: d.Varint(), Tag: wire.GetTag(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgReadAck{ReqID: rng.Int63(), Tag: core.Tag(rng.Int63n(1 << 20))}
		},
	})
	wire.Register(wire.Codec{
		Tag: 19, Proto: MsgWriteTag{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgWriteTag)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.Tag)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgWriteTag{ReqID: d.Varint(), Tag: wire.GetTag(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgWriteTag{ReqID: rng.Int63(), Tag: core.Tag(rng.Int63n(1 << 20))}
		},
	})
	wire.Register(wire.Codec{
		Tag: 20, Proto: MsgWriteAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgWriteAck)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.Tag)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgWriteAck{ReqID: d.Varint(), Tag: wire.GetTag(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgWriteAck{ReqID: rng.Int63(), Tag: core.Tag(rng.Int63n(1 << 20))}
		},
	})
	wire.Register(wire.Codec{
		Tag: 21, Proto: MsgEchoTag{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutTag(b, m.(MsgEchoTag).Tag) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgEchoTag{Tag: wire.GetTag(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgEchoTag{Tag: core.Tag(rng.Int63n(1 << 20))} },
	})
	wire.Register(wire.Codec{
		Tag: 22, Proto: MsgGoodLA{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutTag(b, m.(MsgGoodLA).Tag) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgGoodLA{Tag: wire.GetTag(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgGoodLA{Tag: core.Tag(rng.Int63n(1 << 20))} },
	})
	wire.Register(wire.Codec{
		Tag: 23, Proto: MsgBorrowReq{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgBorrowReq)
			wire.PutTag(b, msg.Tag)
			b.PutByte(msg.Attempt)
			wire.PutCheckpoint(b, msg.Base)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgBorrowReq{Tag: wire.GetTag(d), Attempt: d.Byte(), Base: wire.GetCheckpoint(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgBorrowReq{
				Tag:     core.Tag(rng.Int63n(1 << 20)),
				Attempt: uint8(rng.Intn(2)),
				Base:    wire.GenCheckpoint(rng),
			}
		},
	})
	wire.Register(wire.Codec{
		Tag: 24, Proto: MsgGoodView{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgGoodView)
			wire.PutTag(b, msg.Tag)
			wire.PutView(b, msg.View)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgGoodView{Tag: wire.GetTag(d), View: wire.GetView(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgGoodView{Tag: core.Tag(rng.Int63n(1 << 20)), View: wire.GenView(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 25, Proto: MsgGoodViewDelta{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgGoodViewDelta)
			wire.PutTag(b, msg.Tag)
			wire.PutCheckpoint(b, msg.Base)
			wire.PutValues(b, msg.Delta)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgGoodViewDelta{
				Tag:   wire.GetTag(d),
				Base:  wire.GetCheckpoint(d),
				Delta: wire.GetValues(d),
			}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgGoodViewDelta{
				Tag:   core.Tag(rng.Int63n(1 << 20)),
				Base:  wire.GenCheckpoint(rng),
				Delta: wire.GenValues(rng),
			}
		},
	})
	wire.Register(wire.Codec{
		Tag: 26, Proto: MsgBorrowNak{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutTag(b, m.(MsgBorrowNak).Tag) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgBorrowNak{Tag: wire.GetTag(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgBorrowNak{Tag: core.Tag(rng.Int63n(1 << 20))} },
	})
	wire.Register(wire.Codec{
		Tag: 27, Proto: MsgCkptVouch{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutCheckpoint(b, m.(MsgCkptVouch).Ck) },
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgCkptVouch{Ck: wire.GetCheckpoint(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message { return MsgCkptVouch{Ck: wire.GenCheckpoint(rng)} },
	})
	wire.Register(wire.Codec{
		Tag: 28, Proto: MsgRejoinReq{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutCheckpoint(b, m.(MsgRejoinReq).Base) },
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgRejoinReq{Base: wire.GetCheckpoint(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message { return MsgRejoinReq{Base: wire.GenCheckpoint(rng)} },
	})
	wire.Register(wire.Codec{
		Tag: 29, Proto: MsgRejoinAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgRejoinAck)
			wire.PutCheckpoint(b, msg.Base)
			b.PutBool(msg.Full)
			wire.PutValues(b, msg.Vals)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgRejoinAck{
				Base: wire.GetCheckpoint(d),
				Full: d.Bool(),
				Vals: wire.GetValues(d),
			}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgRejoinAck{Base: wire.GenCheckpoint(rng), Full: rng.Intn(2) == 1, Vals: wire.GenValues(rng)}
		},
	})
}
