package eqaso

import (
	"encoding/gob"

	"mpsnap/internal/core"
)

// Message types of Algorithm 1 plus two liveness-hardening messages
// ("borrowReq"/"goodView", see the package comment in node.go).

// MsgValue carries a written or forwarded value ("value", ⟨v, ts⟩).
type MsgValue struct{ Val core.Value }

// Kind implements rt.Message.
func (MsgValue) Kind() string { return "value" }

// MsgReadTag requests the receiver's maxTag ("readTag").
type MsgReadTag struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgReadTag) Kind() string { return "readTag" }

// MsgReadAck answers a MsgReadTag with the responder's maxTag ("readAck").
type MsgReadAck struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgReadAck) Kind() string { return "readAck" }

// MsgWriteTag writes a tag to the receiver ("writeTag").
type MsgWriteTag struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgWriteTag) Kind() string { return "writeTag" }

// MsgWriteAck acknowledges a MsgWriteTag ("writeAck").
type MsgWriteAck struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgWriteAck) Kind() string { return "writeAck" }

// MsgEchoTag propagates a newly adopted maxTag ("echoTag").
type MsgEchoTag struct{ Tag core.Tag }

// Kind implements rt.Message.
func (MsgEchoTag) Kind() string { return "echoTag" }

// MsgGoodLA announces that the sender completed a good lattice operation
// with the given tag ("goodLA"); by FIFO, the receiver's V[sender]
// restricted to the tag equals the sender's equivalence set.
type MsgGoodLA struct{ Tag core.Tag }

// Kind implements rt.Message.
func (MsgGoodLA) Kind() string { return "goodLA" }

// MsgBorrowReq asks peers for any good view with tag ≥ Tag. It is sent
// when a LatticeRenewal enters its borrow phase, so that an indirect view
// can be obtained even if the original goodLA broadcast was cut short by a
// crash.
type MsgBorrowReq struct{ Tag core.Tag }

// Kind implements rt.Message.
func (MsgBorrowReq) Kind() string { return "borrowReq" }

// MsgGoodView answers a MsgBorrowReq with an explicit good view.
type MsgGoodView struct {
	Tag  core.Tag
	View core.View
}

// Kind implements rt.Message.
func (MsgGoodView) Kind() string { return "goodView" }

func init() {
	gob.Register(MsgValue{})
	gob.Register(MsgReadTag{})
	gob.Register(MsgReadAck{})
	gob.Register(MsgWriteTag{})
	gob.Register(MsgWriteAck{})
	gob.Register(MsgEchoTag{})
	gob.Register(MsgGoodLA{})
	gob.Register(MsgBorrowReq{})
	gob.Register(MsgGoodView{})
}
