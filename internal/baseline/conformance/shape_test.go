package conformance_test

import (
	"testing"

	"mpsnap/internal/baseline/delporte"
	"mpsnap/internal/baseline/laaso"
	"mpsnap/internal/baseline/storecollect"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// TestDelporteUpdateIsOneRound: with constant-D delays and no contention
// the [19]-style update completes in exactly 2D (one store quorum round) —
// the O(D) column of Table I.
func TestDelporteUpdateIsOneRound(t *testing.T) {
	var nd0 *delporte.Node
	c := harness.Build(sim.Config{N: 9, F: 4, Seed: 1, Delay: sim.Constant{Ticks: rt.TicksPerD}},
		func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := delporte.New(r)
			if r.ID() == 0 {
				nd0 = nd
			}
			return nd, nd
		})
	c.Client(0, func(o *harness.OpRunner) {
		start := o.P.Now()
		if _, err := o.Update(); err != nil {
			t.Errorf("update: %v", err)
			return
		}
		if d := (o.P.Now() - start).DUnits(); d != 2.0 {
			t.Errorf("uncontended delporte update took %.1fD, want exactly 2D", d)
		}
	})
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := nd0.Stats()
	if st.Updates != 1 || st.Collects != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDelporteScanCollectCountGrowsWithContention: every concurrent update
// observed mid-scan forces another collect round — the O(n·D) behaviour.
func TestDelporteScanCollectCountGrowsWithContention(t *testing.T) {
	measure := func(updaters int) int64 {
		n := 11
		var scanner *delporte.Node
		c := harness.Build(sim.Config{N: n, F: 5, Seed: 3, Delay: sim.Constant{Ticks: rt.TicksPerD}},
			func(r rt.Runtime) (rt.Handler, harness.Object) {
				nd := delporte.New(r)
				if r.ID() == 0 {
					scanner = nd
				}
				return nd, nd
			})
		for i := 1; i <= updaters; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				// Stagger so the scanner keeps observing movement.
				_ = o.P.Sleep(rt.Ticks(i) * 2 * rt.TicksPerD)
				_, _ = o.Update()
			})
		}
		c.Client(0, func(o *harness.OpRunner) {
			_, _ = o.Scan()
		})
		if _, err := c.MustLinearizable(); err != nil {
			t.Fatal(err)
		}
		return scanner.Stats().Collects
	}
	idle := measure(0)
	busy := measure(8)
	if idle != 2 {
		t.Fatalf("idle scan should double-collect exactly twice, got %d", idle)
	}
	if busy <= idle+2 {
		t.Fatalf("contended scan should need many more collects: idle=%d busy=%d", idle, busy)
	}
}

// TestStoreCollectTracksActivity: the store-collect node's statistics
// reflect its operations (the deterministic helping path is unit-tested
// against a scripted substrate in internal/baseline/afek).
func TestStoreCollectTracksActivity(t *testing.T) {
	n := 5
	var nd0 *storecollect.Node
	c := harness.Build(sim.Config{N: n, F: 2, Seed: 5, Delay: sim.Constant{Ticks: rt.TicksPerD}},
		func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := storecollect.New(r)
			if r.ID() == 0 {
				nd0 = nd
			}
			return nd, nd
		})
	c.Client(0, func(o *harness.OpRunner) {
		if _, err := o.Update(); err != nil {
			t.Errorf("update: %v", err)
		}
		if _, err := o.Scan(); err != nil {
			t.Errorf("scan: %v", err)
		}
	})
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
	st := nd0.Stats()
	if st.Updates != 1 || st.Scans != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The update embeds a scan (2 collects) and the scan double-collects:
	// at least 4 collects in total.
	if st.Collects < 4 {
		t.Fatalf("expected ≥4 collects (embedded + double), got %d", st.Collects)
	}
}

// TestLAASOSlowerThanEQASOUnderContention: the pull-based lattice
// operation pays for every concurrently exposed value, while proactive
// forwarding keeps EQ-ASO's operations flat — Table I's shape as a test.
func TestLAASOSlowerThanEQASOUnderContention(t *testing.T) {
	measure := func(mk func(r rt.Runtime) (rt.Handler, harness.Object)) float64 {
		n := 13
		c := harness.Build(sim.Config{N: n, F: 6, Seed: 7, Delay: sim.Constant{Ticks: rt.TicksPerD}}, mk)
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				_ = o.P.Sleep(rt.Ticks(i) * rt.TicksPerD / 2)
				for k := 0; k < 2; k++ {
					if _, err := o.Update(); err != nil {
						return
					}
					if _, err := o.Scan(); err != nil {
						return
					}
				}
			})
		}
		h, err := c.MustLinearizable()
		if err != nil {
			t.Fatal(err)
		}
		st := harness.Latencies(h)
		worst := st.WorstUpdate
		if st.WorstScan > worst {
			worst = st.WorstScan
		}
		return worst
	}
	la := measure(func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := laaso.New(r)
		return nd, nd
	})
	eq := measure(func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := eqaso.New(r)
		return nd, nd
	})
	t.Logf("contended worst: laaso %.1fD vs eqaso %.1fD", la, eq)
	if la < eq+2 {
		t.Fatalf("pull-based laaso (%.1fD) should be clearly slower than eqaso (%.1fD)", la, eq)
	}
}
