package conformance_test

import (
	"testing"

	"mpsnap/internal/abd"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// partitionSchedule is one transient-partition scenario: islands go up at
// cutAt and the network heals at healAt, well before the workload ends.
type partitionSchedule struct {
	name    string
	islands func(n int) [][]int
	cutAt   rt.Ticks
	healAt  rt.Ticks
}

func partitionSchedules() []partitionSchedule {
	return []partitionSchedule{
		{
			// Node 0 alone behind the cut: its in-flight operation can
			// only complete after heal.
			name:    "isolate-one",
			islands: func(n int) [][]int { return [][]int{{0}} },
			cutAt:   2 * rt.TicksPerD,
			healAt:  20 * rt.TicksPerD,
		},
		{
			// A minority island of f nodes; the majority side keeps its
			// n-f quorum and makes progress throughout.
			name: "minority-island",
			islands: func(n int) [][]int {
				f := (n - 1) / 2
				island := make([]int, f)
				for i := range island {
					island[i] = i
				}
				return [][]int{island}
			},
			cutAt:  5 * rt.TicksPerD,
			healAt: 25 * rt.TicksPerD,
		},
		{
			// A cut at t=0 catches every first operation mid-flight.
			name:    "cut-from-start",
			islands: func(n int) [][]int { return [][]int{{n - 1}} },
			cutAt:   0,
			healAt:  15 * rt.TicksPerD,
		},
	}
}

// TestAllAlgorithmsLinearizableAcrossPartition: every implementation must
// treat a transient partition as what it is under reliable FIFO channels
// — a long message delay — and linearize histories whose operations span
// the cut.
func TestAllAlgorithmsLinearizableAcrossPartition(t *testing.T) {
	for _, fc := range factories() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			for _, ps := range partitionSchedules() {
				ps := ps
				t.Run(ps.name, func(t *testing.T) {
					n, f := 5, 2
					if fc.minNOver3F {
						n, f = 7, 2
					}
					c := harness.Build(sim.Config{N: n, F: f, Seed: 77}, fc.mk)
					w := c.W
					w.After(ps.cutAt, func() { w.Partition(ps.islands(n)...) })
					w.After(ps.healAt, func() { w.Heal() })
					for i := 0; i < n; i++ {
						c.Client(i, func(o *harness.OpRunner) {
							for k := 0; k < 3; k++ {
								if _, err := o.Update(); err != nil {
									return
								}
								if _, err := o.Scan(); err != nil {
									return
								}
							}
						})
					}
					h, err := c.MustLinearizable()
					if err != nil {
						t.Fatalf("%s/%s: %v", fc.name, ps.name, err)
					}
					for _, op := range h.Ops {
						if op.Pending() {
							t.Fatalf("%s/%s: operation %v never completed after heal", fc.name, ps.name, op)
						}
					}
				})
			}
		})
	}
}

// TestABDReadsLinearizeAfterHeal drives the underlying ABD register
// layer directly: a reader isolated in a minority island blocks, and the
// read that completes after heal must return the latest value a quorum
// accepted — never a stale one. (A single collect is NOT a linearizable
// snapshot — the paper's starting point — so this asserts per-register
// read semantics only.)
func TestABDReadsLinearizeAfterHeal(t *testing.T) {
	const (
		n      = 5
		f      = 2
		cutAt  = 1
		healAt = 20 * rt.TicksPerD
	)
	w := sim.New(sim.Config{N: n, F: f, Seed: 9})
	stores := make([]*abd.Store, n)
	for i := 0; i < n; i++ {
		stores[i] = abd.New(w.Runtime(i))
		w.SetHandler(i, stores[i])
	}
	w.After(cutAt, func() { w.Partition([]int{0, 1}, []int{2, 3, 4}) })
	w.After(healAt, func() { w.Heal() })

	// Node 2 writes twice inside the majority island while the cut is up.
	var secondWriteDone rt.Ticks
	w.GoNode("writer", 2, func(p *sim.Proc) {
		if err := stores[2].Write([]byte("w1")); err != nil {
			t.Errorf("write w1: %v", err)
			return
		}
		if err := stores[2].Write([]byte("w2")); err != nil {
			t.Errorf("write w2: %v", err)
			return
		}
		secondWriteDone = p.Now()
	})
	// Node 0 reads register 2 from the minority island: invoked under the
	// cut, it cannot assemble a quorum until heal — and by then the write
	// of "w2" has long completed, so "w2" is the only linearizable answer.
	var readVal string
	var readDone rt.Ticks
	w.GoNode("reader", 0, func(p *sim.Proc) {
		if err := p.Sleep(2 * rt.TicksPerD); err != nil {
			return
		}
		e, err := stores[0].Read(2)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		readVal = string(e.Val)
		readDone = p.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if readDone < healAt {
		t.Fatalf("minority-island read completed at t=%d, before heal at t=%d", readDone, healAt)
	}
	if secondWriteDone >= healAt {
		t.Fatalf("majority-island write blocked until t=%d; partition must not stall a quorum", secondWriteDone)
	}
	if readVal != "w2" {
		t.Fatalf("read after heal returned %q, want %q (latest quorum-accepted value)", readVal, "w2")
	}
}
