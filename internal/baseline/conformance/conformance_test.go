// Package conformance runs a shared correctness battery over every
// snapshot-object implementation in the repository: the paper's algorithms
// and all Table I baselines face the same randomized workloads, crash
// schedules, and the (A1)-(A4) linearizability checker.
package conformance_test

import (
	"math/rand"
	"testing"

	"mpsnap/internal/baseline/delporte"
	"mpsnap/internal/baseline/laaso"
	"mpsnap/internal/baseline/stacked"
	"mpsnap/internal/baseline/storecollect"
	"mpsnap/internal/byzaso"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

type factory struct {
	name string
	// minNOver3F requires n > 3f (Byzantine-resilient algorithms).
	minNOver3F bool
	mk         func(r rt.Runtime) (rt.Handler, harness.Object)
}

func factories() []factory {
	return []factory{
		{name: "eqaso", mk: func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := eqaso.New(r)
			return nd, nd
		}},
		{name: "byzaso", minNOver3F: true, mk: func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := byzaso.New(r)
			return nd, nd
		}},
		{name: "delporte", mk: func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := delporte.New(r)
			return nd, nd
		}},
		{name: "storecollect", mk: func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := storecollect.New(r)
			return nd, nd
		}},
		{name: "stacked", mk: func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := stacked.New(r)
			return nd, nd
		}},
		{name: "laaso", mk: func(r rt.Runtime) (rt.Handler, harness.Object) {
			nd := laaso.New(r)
			return nd, nd
		}},
	}
}

func runMixed(t *testing.T, fc factory, seed int64, crashes bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(3)
	f := (n - 1) / 2
	if fc.minNOver3F {
		n = 7
		f = 2
	}
	c := harness.Build(sim.Config{N: n, F: f, Seed: seed}, fc.mk)
	if crashes {
		k := 1 + rng.Intn(f)
		for victim := 0; victim < k; victim++ {
			c.W.CrashAt(victim, rt.Ticks(rng.Intn(40000)))
		}
	}
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			rng := rand.New(rand.NewSource(seed*1009 + int64(i)))
			for k := 0; k < 4; k++ {
				var err error
				if rng.Intn(2) == 0 {
					_, err = o.Update()
				} else {
					_, err = o.Scan()
				}
				if err != nil {
					return // crashed client
				}
				_ = o.P.Sleep(rt.Ticks(rng.Intn(4000)))
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatalf("%s seed=%d crashes=%v: %v", fc.name, seed, crashes, err)
	}
}

func TestAllAlgorithmsLinearizableFailureFree(t *testing.T) {
	for _, fc := range factories() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				runMixed(t, fc, seed, false)
			}
		})
	}
}

func TestAllAlgorithmsLinearizableUnderCrashes(t *testing.T) {
	for _, fc := range factories() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			for seed := int64(100); seed < 105; seed++ {
				runMixed(t, fc, seed, true)
			}
		})
	}
}

func TestAllAlgorithmsSeeOwnCompletedUpdates(t *testing.T) {
	for _, fc := range factories() {
		fc := fc
		t.Run(fc.name, func(t *testing.T) {
			n, f := 5, 2
			if fc.minNOver3F {
				n, f = 7, 2
			}
			c := harness.Build(sim.Config{N: n, F: f, Seed: 42}, fc.mk)
			for i := 0; i < n; i++ {
				i := i
				c.Client(i, func(o *harness.OpRunner) {
					v, err := o.Update()
					if err != nil {
						t.Errorf("update: %v", err)
						return
					}
					snap, err := o.Scan()
					if err != nil {
						t.Errorf("scan: %v", err)
						return
					}
					if snap[i] != v {
						t.Errorf("%s: node %d scan misses own update %q: %v", fc.name, i, v, snap)
					}
				})
			}
			if _, err := c.MustLinearizable(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
