package laaso

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

func init() {
	engine.Register(engine.Info{
		Name:     "laaso",
		Doc:      "Table I baseline: lattice-agreement-transform atomic snapshot",
		Baseline: true,
		New:      func(r rt.Runtime) engine.Engine { return New(r) },
	})
}
