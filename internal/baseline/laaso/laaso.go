// Package laaso is the Table I baseline built from lattice agreement in
// the style of Attiya–Herlihy–Rachman's transform (reference [11]) applied
// to a message-passing lattice agreement ([41],[42]). It keeps EQ-ASO's
// renewal scaffolding (tags, phase-0 operation, three phases, borrowing)
// but replaces the proactive-forwarding lattice operation with a
// pull-based one: the node repeatedly broadcasts its value set and waits
// for a quorum of matching replies (the double-collect analogue the paper
// contrasts against in Section III-C). Each failed pull discovers at
// least one new value, so a lattice operation costs O(m·D) where m is the
// number of concurrently exposed values — the O(n·D)-flavored behaviour
// of pull-based designs, against EQ-ASO's O(√k·D).
//
// Fidelity note (DESIGN.md): the original row uses an O(log n)-round
// lattice agreement; reconstructing that algorithm faithfully from
// secondary sources was deemed riskier than an honest, provably correct
// pull-based LA, so the row's measured shape is O(n·D) rather than
// O(log n·D). EQ-ASO's advantage shown in the benchmarks is therefore an
// upper bound of the paper's claimed advantage over [41],[42]+[11].
package laaso

import (
	"math/rand"
	"sort"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// MsgValue disseminates a freshly written value (no forwarding: receivers
// only record it; propagation beyond the writer happens through pulls).
type MsgValue struct{ Val core.Value }

// Kind implements rt.Message.
func (MsgValue) Kind() string { return "laValue" }

// MsgPull asks responders to join Set and reply with their set (≤ R).
type MsgPull struct {
	ReqID int64
	R     core.Tag
	Set   []core.Value
}

// Kind implements rt.Message.
func (MsgPull) Kind() string { return "laPull" }

// MsgPullAck carries the responder's set with tags ≤ R.
type MsgPullAck struct {
	ReqID int64
	Set   []core.Value
}

// Kind implements rt.Message.
func (MsgPullAck) Kind() string { return "laPullAck" }

// MsgReadTag requests the responder's maxTag.
type MsgReadTag struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgReadTag) Kind() string { return "laReadTag" }

// MsgReadAck reports the responder's maxTag.
type MsgReadAck struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgReadAck) Kind() string { return "laReadAck" }

// MsgWriteTag writes a tag.
type MsgWriteTag struct {
	ReqID int64
	Tag   core.Tag
}

// Kind implements rt.Message.
func (MsgWriteTag) Kind() string { return "laWriteTag" }

// MsgWriteAck acknowledges a MsgWriteTag.
type MsgWriteAck struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgWriteAck) Kind() string { return "laWriteAck" }

// MsgGoodLA announces a good lattice operation with its explicit view.
type MsgGoodLA struct {
	Tag  core.Tag
	View core.View
}

// Kind implements rt.Message.
func (MsgGoodLA) Kind() string { return "laGoodLA" }

// MsgBorrowReq asks peers for a good view with tag ≥ Tag.
type MsgBorrowReq struct{ Tag core.Tag }

// Kind implements rt.Message.
func (MsgBorrowReq) Kind() string { return "laBorrowReq" }

// Wire tags 48–56 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 48, Proto: MsgValue{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutValue(b, m.(MsgValue).Val) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgValue{Val: wire.GetValue(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgValue{Val: wire.GenValue(rng)} },
	})
	wire.Register(wire.Codec{
		Tag: 49, Proto: MsgPull{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgPull)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.R)
			wire.PutValues(b, msg.Set)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgPull{ReqID: d.Varint(), R: wire.GetTag(d), Set: wire.GetValues(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgPull{ReqID: rng.Int63(), R: core.Tag(rng.Int63n(1 << 20)), Set: wire.GenValues(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 50, Proto: MsgPullAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgPullAck)
			b.PutVarint(msg.ReqID)
			wire.PutValues(b, msg.Set)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgPullAck{ReqID: d.Varint(), Set: wire.GetValues(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgPullAck{ReqID: rng.Int63(), Set: wire.GenValues(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 51, Proto: MsgReadTag{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgReadTag).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgReadTag{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgReadTag{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 52, Proto: MsgReadAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgReadAck)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.Tag)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgReadAck{ReqID: d.Varint(), Tag: wire.GetTag(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgReadAck{ReqID: rng.Int63(), Tag: core.Tag(rng.Int63n(1 << 20))}
		},
	})
	wire.Register(wire.Codec{
		Tag: 53, Proto: MsgWriteTag{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgWriteTag)
			b.PutVarint(msg.ReqID)
			wire.PutTag(b, msg.Tag)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgWriteTag{ReqID: d.Varint(), Tag: wire.GetTag(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgWriteTag{ReqID: rng.Int63(), Tag: core.Tag(rng.Int63n(1 << 20))}
		},
	})
	wire.Register(wire.Codec{
		Tag: 54, Proto: MsgWriteAck{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgWriteAck).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgWriteAck{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgWriteAck{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 55, Proto: MsgGoodLA{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgGoodLA)
			wire.PutTag(b, msg.Tag)
			wire.PutView(b, msg.View)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgGoodLA{Tag: wire.GetTag(d), View: wire.GetView(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgGoodLA{Tag: core.Tag(rng.Int63n(1 << 20)), View: wire.GenView(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 56, Proto: MsgBorrowReq{},
		Encode: func(b *wire.Buffer, m rt.Message) { wire.PutTag(b, m.(MsgBorrowReq).Tag) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgBorrowReq{Tag: wire.GetTag(d)}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgBorrowReq{Tag: core.Tag(rng.Int63n(1 << 20))} },
	})
}

type pullState struct {
	count  int
	stable bool
	sent   int
}

type readState struct {
	count int
	max   core.Tag
}

// Stats counts operations and pull rounds.
type Stats struct {
	Updates    int64
	Scans      int64
	LatticeOps int64
	PullRounds int64
	Borrows    int64
}

// Node is one LA-transform ASO node.
type Node struct {
	rt     rt.Runtime
	id     int
	n      int
	quorum int

	known  *core.ValueSet
	maxTag core.Tag
	good   map[core.Tag]core.View // good views: own and received

	nextReq   int64
	pulls     map[int64]*pullState
	readAcks  map[int64]*readState
	writeAcks map[int64]int

	stats Stats
}

// New creates the node; register it as the node's message handler.
func New(r rt.Runtime) *Node {
	return &Node{
		rt:        r,
		id:        r.ID(),
		n:         r.N(),
		quorum:    r.N() - r.F(),
		known:     core.NewValueSet(),
		good:      make(map[core.Tag]core.View),
		pulls:     make(map[int64]*pullState),
		readAcks:  make(map[int64]*readState),
		writeAcks: make(map[int64]int),
	}
}

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats {
	var s Stats
	nd.rt.Atomic(func() { s = nd.stats })
	return s
}

// HandleMessage implements rt.Handler.
func (nd *Node) HandleMessage(src int, m rt.Message) {
	switch msg := m.(type) {
	case MsgValue:
		nd.known.Add(msg.Val)
	case MsgPull:
		for _, v := range msg.Set {
			nd.known.Add(v)
		}
		nd.rt.Send(src, MsgPullAck{ReqID: msg.ReqID, Set: nd.known.ViewLE(msg.R).Values()})
	case MsgPullAck:
		st, ok := nd.pulls[msg.ReqID]
		if !ok {
			return
		}
		st.count++
		if len(msg.Set) != st.sent {
			st.stable = false
		}
		for _, v := range msg.Set {
			nd.known.Add(v)
		}
	case MsgReadTag:
		nd.rt.Send(src, MsgReadAck{ReqID: msg.ReqID, Tag: nd.maxTag})
	case MsgReadAck:
		if st, ok := nd.readAcks[msg.ReqID]; ok {
			st.count++
			if msg.Tag > st.max {
				st.max = msg.Tag
			}
		}
	case MsgWriteTag:
		if msg.Tag > nd.maxTag {
			nd.maxTag = msg.Tag
		}
		nd.rt.Send(src, MsgWriteAck{ReqID: msg.ReqID})
	case MsgWriteAck:
		if _, ok := nd.writeAcks[msg.ReqID]; ok {
			nd.writeAcks[msg.ReqID]++
		}
	case MsgGoodLA:
		if cur, ok := nd.good[msg.Tag]; !ok || msg.View.Len() > cur.Len() {
			nd.good[msg.Tag] = msg.View
		}
	case MsgBorrowReq:
		if tag, view, ok := nd.bestAtLeast(msg.Tag); ok {
			nd.rt.Send(src, MsgGoodLA{Tag: tag, View: view})
		}
	}
}

func (nd *Node) bestAtLeast(r core.Tag) (core.Tag, core.View, bool) {
	tags := make([]core.Tag, 0, len(nd.good))
	for t := range nd.good {
		if t >= r {
			tags = append(tags, t)
		}
	}
	if len(tags) == 0 {
		return 0, core.View{}, false
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags[0], nd.good[tags[0]], true
}

func (nd *Node) readTag() (core.Tag, error) {
	var req int64
	var st *readState
	nd.rt.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		st = &readState{}
		nd.readAcks[req] = st
	})
	nd.rt.Broadcast(MsgReadTag{ReqID: req})
	var r core.Tag
	err := nd.rt.WaitUntilThen("laaso readTag",
		func() bool { return st.count >= nd.quorum },
		func() {
			r = st.max
			delete(nd.readAcks, req)
		})
	return r, err
}

func (nd *Node) writeTag(tag core.Tag) error {
	var req int64
	nd.rt.Atomic(func() {
		nd.nextReq++
		req = nd.nextReq
		nd.writeAcks[req] = 0
		if tag > nd.maxTag {
			nd.maxTag = tag
		}
	})
	nd.rt.Broadcast(MsgWriteTag{ReqID: req, Tag: tag})
	return nd.rt.WaitUntilThen("laaso writeTag",
		func() bool { return nd.writeAcks[req] >= nd.quorum },
		func() { delete(nd.writeAcks, req) })
}

// lattice is the pull-based lattice operation: stabilize the set of values
// with tag ≤ r by repeated quorum pulls, then check goodness.
func (nd *Node) lattice(r core.Tag) (bool, core.View, error) {
	nd.rt.Atomic(func() { nd.stats.LatticeOps++ })
	if err := nd.writeTag(r); err != nil {
		return false, core.View{}, err
	}
	for {
		var req int64
		var sent []core.Value
		var st *pullState
		nd.rt.Atomic(func() {
			nd.stats.PullRounds++
			nd.nextReq++
			req = nd.nextReq
			sent = nd.known.ViewLE(r).Values()
			st = &pullState{stable: true, sent: len(sent)}
			nd.pulls[req] = st
		})
		nd.rt.Broadcast(MsgPull{ReqID: req, R: r, Set: sent})
		var stable bool
		err := nd.rt.WaitUntilThen("laaso pull quorum",
			func() bool { return st.count >= nd.quorum },
			func() {
				delete(nd.pulls, req)
				stable = st.stable && nd.known.CountLE(r) == len(sent)
			})
		if err != nil {
			return false, core.View{}, err
		}
		if !stable {
			continue
		}
		var good bool
		view := core.ViewOf(sent...)
		nd.rt.Atomic(func() {
			if nd.maxTag <= r {
				good = true
				nd.good[r] = view
				nd.rt.Broadcast(MsgGoodLA{Tag: r, View: view})
			}
		})
		return good, view, nil
	}
}

func (nd *Node) renewal(r core.Tag) (core.View, error) {
	for phase := 1; phase <= 3; phase++ {
		good, view, err := nd.lattice(r)
		if err != nil {
			return core.View{}, err
		}
		if good {
			return view, nil
		}
		if phase == 3 {
			break
		}
		nd.rt.Atomic(func() { r = nd.maxTag })
	}
	nd.rt.Atomic(func() { nd.stats.Borrows++ })
	nd.rt.Broadcast(MsgBorrowReq{Tag: r})
	var view core.View
	err := nd.rt.WaitUntilThen("laaso borrow",
		func() bool { _, _, ok := nd.bestAtLeast(r); return ok },
		func() { _, view, _ = nd.bestAtLeast(r) })
	return view, err
}

// Update writes payload to the caller's segment.
func (nd *Node) Update(payload []byte) error {
	if nd.rt.Crashed() {
		return rt.ErrCrashed
	}
	nd.rt.Atomic(func() { nd.stats.Updates++ })
	r, err := nd.readTag()
	if err != nil {
		return err
	}
	ts := core.Timestamp{Tag: r + 1, Writer: nd.id}
	nd.rt.Atomic(func() { nd.known.Add(core.Value{TS: ts, Payload: payload}) })
	nd.rt.Broadcast(MsgValue{Val: core.Value{TS: ts, Payload: payload}})
	if _, _, err := nd.lattice(r); err != nil { // phase 0
		return err
	}
	var r2 core.Tag
	nd.rt.Atomic(func() {
		r2 = r + 1
		if nd.maxTag > r2 {
			r2 = nd.maxTag
		}
	})
	_, err = nd.renewal(r2)
	return err
}

// Scan returns one entry per segment; nil marks ⊥.
func (nd *Node) Scan() ([][]byte, error) {
	if nd.rt.Crashed() {
		return nil, rt.ErrCrashed
	}
	nd.rt.Atomic(func() { nd.stats.Scans++ })
	r, err := nd.readTag()
	if err != nil {
		return nil, err
	}
	view, err := nd.renewal(r)
	if err != nil {
		return nil, err
	}
	return view.Extract(nd.n), nil
}
