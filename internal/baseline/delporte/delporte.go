// Package delporte implements the Table I baseline in the style of
// Delporte-Gallet, Fauconnier, Rajsbaum and Raynal (reference [19]): the
// first direct message-passing ASO, with O(D) UPDATE and O(n·D) SCAN.
//
//   - UPDATE is a single quorum store of the writer's new value.
//   - SCAN is the double-collect loop: collect-with-write-back twice; if
//     the two vectors coincide, the vector existed instantaneously and can
//     be returned. Each failed iteration is caused by a concurrent update,
//     which is what yields the O(n·D) shape on bounded workloads.
//
// Fidelity note (DESIGN.md): [19]'s helping mechanism for scans running
// concurrently with unboundedly many updates is omitted; under the
// bounded workloads of the benchmarks the double-collect loop terminates
// and exhibits the row's complexity shape.
package delporte

import (
	"mpsnap/internal/abd"
	"mpsnap/internal/rt"
)

// Stats counts operations and collect iterations.
type Stats struct {
	Updates  int64
	Scans    int64
	Collects int64
}

// Node is one baseline-ASO node.
type Node struct {
	rt    rt.Runtime
	store *abd.Store
	stats Stats
}

// New creates the node; register it as the node's message handler.
func New(r rt.Runtime) *Node {
	return &Node{rt: r, store: abd.New(r)}
}

// HandleMessage implements rt.Handler.
func (nd *Node) HandleMessage(src int, m rt.Message) { nd.store.HandleMessage(src, m) }

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats {
	var s Stats
	nd.rt.Atomic(func() { s = nd.stats })
	return s
}

// Update writes payload to the caller's segment in one quorum round.
func (nd *Node) Update(payload []byte) error {
	nd.rt.Atomic(func() { nd.stats.Updates++ })
	return nd.store.Write(payload)
}

// Scan double-collects until two successive collect-with-write-back
// vectors coincide.
func (nd *Node) Scan() ([][]byte, error) {
	nd.rt.Atomic(func() { nd.stats.Scans++ })
	prev, err := nd.collect()
	if err != nil {
		return nil, err
	}
	for {
		cur, err := nd.collect()
		if err != nil {
			return nil, err
		}
		if vectorsEqual(prev, cur) {
			out := make([][]byte, len(cur))
			for i, e := range cur {
				if e.Seq > 0 {
					out[i] = e.Val
				}
			}
			return out, nil
		}
		prev = cur
	}
}

func (nd *Node) collect() ([]abd.Entry, error) {
	nd.rt.Atomic(func() { nd.stats.Collects++ })
	return nd.store.Collect(true)
}

func vectorsEqual(a, b []abd.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Seq != b[i].Seq {
			return false
		}
	}
	return true
}
