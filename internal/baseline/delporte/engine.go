package delporte

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

func init() {
	engine.Register(engine.Info{
		Name:     "delporte",
		Doc:      "Table I baseline: direct ABD-quorum snapshot (O(D) update, double-collect scan)",
		Baseline: true,
		New:      func(r rt.Runtime) engine.Engine { return New(r) },
	})
}
