package stacked

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

func init() {
	engine.Register(engine.Info{
		Name:     "stacked",
		Doc:      "Table I baseline: shared-memory snapshot stacked over emulated ABD registers",
		Baseline: true,
		New:      func(r rt.Runtime) engine.Engine { return New(r) },
	})
}
