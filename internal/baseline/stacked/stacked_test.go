package stacked_test

import (
	"testing"

	"mpsnap/internal/baseline/stacked"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

func build(cfg sim.Config) (*harness.Cluster, []*stacked.Node) {
	nodes := make([]*stacked.Node, 0, cfg.N)
	c := harness.Build(cfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := stacked.New(r)
		nodes = append(nodes, nd)
		return nd, nd
	})
	return c, nodes
}

// TestUpdateVisibleAcrossNodes: a value written on node 0 is returned by a
// later scan on node 1. Stacked collects cost O(n²·D), so the reader waits
// generously.
func TestUpdateVisibleAcrossNodes(t *testing.T) {
	c, _ := build(sim.Config{N: 3, F: 1, Seed: 1})
	c.Client(0, func(o *harness.OpRunner) {
		if _, err := o.Update(); err != nil {
			t.Error(err)
		}
	})
	c.Client(1, func(o *harness.OpRunner) {
		_ = o.P.Sleep(60 * rt.TicksPerD)
		snap, err := o.Scan()
		if err != nil {
			t.Error(err)
			return
		}
		if snap[0] != "v0-1" {
			t.Errorf("snap[0] = %q, want v0-1", snap[0])
		}
	})
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

// TestMixedWorkloadLinearizable: the stacking construction is slow but
// correct — a small concurrent workload linearizes. Kept small because
// every operation costs O(n²·D).
func TestMixedWorkloadLinearizable(t *testing.T) {
	c, _ := build(sim.Config{N: 3, F: 1, Seed: 7})
	for i := 0; i < 3; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 2; k++ {
				if _, err := o.Update(); err != nil {
					t.Error(err)
					return
				}
				if _, err := o.Scan(); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}

// TestStats: the embedded Afek layer counts operations, and a scan runs
// the double-collect loop (≥ 2 collects, each of n sequential reads).
func TestStats(t *testing.T) {
	c, nodes := build(sim.Config{N: 3, F: 1, Seed: 3})
	c.Client(0, func(o *harness.OpRunner) {
		if _, err := o.Update(); err != nil {
			t.Error(err)
		}
		if _, err := o.Scan(); err != nil {
			t.Error(err)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	st := nodes[0].Stats()
	if st.Updates != 1 || st.Scans != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Collects < 2 {
		t.Fatalf("scan ran %d collects, want ≥ 2 (double collect)", st.Collects)
	}
}

// TestSurvivesCrash: with one node crashed (f=1) the survivors still
// complete operations and the history stays linearizable.
func TestSurvivesCrash(t *testing.T) {
	c, _ := build(sim.Config{N: 3, F: 1, Seed: 11})
	c.W.CrashAt(2, 1)
	for i := 0; i < 2; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Error(err)
				return
			}
			if _, err := o.Scan(); err != nil {
				t.Error(err)
			}
		})
	}
	if _, err := c.MustLinearizable(); err != nil {
		t.Fatal(err)
	}
}
