// Package stacked is the "stacking" construction the paper's introduction
// argues against (Section I): emulate n SWMR atomic registers with ABD
// quorum protocols, then run a shared-memory snapshot algorithm on top,
// reading the registers one at a time. Every collect costs n sequential
// atomic reads (each two quorum rounds), so SCAN costs O(n²·D) wall time
// and UPDATE (which embeds a scan) likewise — the overhead that motivates
// direct message-passing implementations like EQ-ASO.
package stacked

import (
	"mpsnap/internal/abd"
	"mpsnap/internal/baseline/afek"
	"mpsnap/internal/rt"
)

// Node is one stacked-snapshot node.
type Node struct {
	*afek.Node
	store *abd.Store
}

type substrate struct {
	store *abd.Store
	n     int
}

func (s substrate) Store(data []byte) error { return s.store.Write(data) }

// Collect reads the n registers one atomic Read at a time — the stacking
// tax.
func (s substrate) Collect() ([]afek.Cell, error) {
	cells := make([]afek.Cell, s.n)
	for owner := 0; owner < s.n; owner++ {
		e, err := s.store.Read(owner)
		if err != nil {
			return nil, err
		}
		cells[owner] = afek.Cell{Owner: owner, Seq: e.Seq, Data: e.Val}
	}
	return cells, nil
}

// New creates the node; register it as the node's message handler.
func New(r rt.Runtime) *Node {
	st := abd.New(r)
	return &Node{Node: afek.New(r, substrate{store: st, n: r.N()}), store: st}
}

// HandleMessage implements rt.Handler.
func (nd *Node) HandleMessage(src int, m rt.Message) { nd.store.HandleMessage(src, m) }
