package afek

import (
	"testing"

	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// scriptedSubstrate replays a fixed sequence of collect results.
type scriptedSubstrate struct {
	collects [][]Cell
	idx      int
	stored   [][]byte
}

func (s *scriptedSubstrate) Store(data []byte) error {
	s.stored = append(s.stored, data)
	return nil
}

func (s *scriptedSubstrate) Collect() ([]Cell, error) {
	c := s.collects[s.idx]
	if s.idx < len(s.collects)-1 {
		s.idx++
	}
	return c, nil
}

func rtFor(t *testing.T, n int) rt.Runtime {
	t.Helper()
	w := sim.New(sim.Config{N: n, F: (n - 1) / 2, Seed: 1})
	return w.Runtime(0)
}

func cellsOf(vals ...[]byte) []Cell {
	out := make([]Cell, len(vals))
	for i, v := range vals {
		out[i] = Cell{Owner: i}
		if v != nil {
			out[i].Seq = 1
			out[i].Data = v
		}
	}
	return out
}

func TestScanStableDoubleCollect(t *testing.T) {
	cell := encodeCell(cellContent{Val: []byte("a"), View: [][]byte{[]byte("a"), nil}})
	stable := []Cell{{Owner: 0, Seq: 1, Data: cell}, {Owner: 1}}
	sub := &scriptedSubstrate{collects: [][]Cell{stable, stable}}
	nd := New(rtFor(t, 2), sub)
	snap, err := nd.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap[0]) != "a" || snap[1] != nil {
		t.Fatalf("snap = %q", snap)
	}
	if st := nd.Stats(); st.Collects != 2 || st.Borrows != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestScanBorrowsFromDoubleMover: writer 1 moves in every collect; after
// its second movement the scan must return writer 1's embedded view
// rather than keep collecting.
func TestScanBorrowsFromDoubleMover(t *testing.T) {
	mk := func(seq int64, val string, view [][]byte) Cell {
		return Cell{Owner: 1, Seq: seq, Data: encodeCell(cellContent{Val: []byte(val), View: view})}
	}
	embedded := [][]byte{[]byte("x"), []byte("v3")}
	c1 := []Cell{{Owner: 0}, mk(1, "v1", nil)}
	c2 := []Cell{{Owner: 0}, mk(2, "v2", [][]byte{nil, []byte("v1")})}
	c3 := []Cell{{Owner: 0}, mk(3, "v3", embedded)}
	sub := &scriptedSubstrate{collects: [][]Cell{c1, c2, c3}}
	nd := New(rtFor(t, 2), sub)
	snap, err := nd.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap[0]) != "x" || string(snap[1]) != "v3" {
		t.Fatalf("borrowed view expected, got %q", snap)
	}
	if st := nd.Stats(); st.Borrows != 1 || st.Collects != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestUpdateEmbedsScan: the stored cell contains the view obtained by the
// update's internal scan.
func TestUpdateEmbedsScan(t *testing.T) {
	other := encodeCell(cellContent{Val: []byte("o"), View: nil})
	stable := []Cell{{Owner: 0}, {Owner: 1, Seq: 4, Data: other}}
	sub := &scriptedSubstrate{collects: [][]Cell{stable, stable}}
	nd := New(rtFor(t, 2), sub)
	if err := nd.Update([]byte("mine")); err != nil {
		t.Fatal(err)
	}
	if len(sub.stored) != 1 {
		t.Fatalf("stored %d cells", len(sub.stored))
	}
	cc, ok := decodeCell(sub.stored[0])
	if !ok || string(cc.Val) != "mine" {
		t.Fatalf("cell: %+v ok=%v", cc, ok)
	}
	if len(cc.View) != 2 || string(cc.View[1]) != "o" {
		t.Fatalf("embedded view: %q", cc.View)
	}
}

func TestDecodeCellGarbage(t *testing.T) {
	if _, ok := decodeCell([]byte("not gob")); ok {
		t.Fatal("garbage must not decode")
	}
	if _, ok := decodeCell(nil); ok {
		t.Fatal("nil must not decode")
	}
}

func TestViewOfSkipsUnwritten(t *testing.T) {
	cells := cellsOf(nil, encodeCell(cellContent{Val: []byte("b")}))
	got := viewOf(cells)
	if got[0] != nil || string(got[1]) != "b" {
		t.Fatalf("viewOf = %q", got)
	}
}
