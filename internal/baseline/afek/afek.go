// Package afek implements the classic shared-memory snapshot algorithm of
// Afek, Attiya, Dolev, Gafni, Merritt and Shavit (reference [2]): double
// collect with embedded-view helping. An UPDATE first performs an internal
// SCAN and stores its value together with the obtained view; a SCAN
// returns when two successive collects coincide, or borrows the embedded
// view of a writer it observed moving twice (that writer's embedded view
// was obtained entirely within the scan's interval).
//
// The algorithm is parameterized by a Substrate so the repository can
// instantiate it two ways:
//
//   - over a quorum store-collect (internal/baseline/storecollect), the
//     shape of Attiya et al.'s store-collect snapshot (Table I row [12]);
//   - over n emulated SWMR atomic registers read one at a time
//     (internal/baseline/stacked), the "stacking" construction whose
//     overhead the paper's introduction criticizes.
package afek

import (
	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// Cell is one segment's stored state.
type Cell struct {
	Owner int
	Seq   int64
	Data  []byte // encoded cellContent; nil when never written
}

// Substrate is the storage layer the snapshot runs over.
type Substrate interface {
	// Store persists the caller's own cell.
	Store(data []byte) error
	// Collect returns the latest known cell of every node. It must
	// reflect every Store that completed before Collect began.
	Collect() ([]Cell, error)
}

type cellContent struct {
	Val  []byte
	View [][]byte
}

// encodeCell serializes a cell; View entries carry a presence flag so a
// nil segment (never written) survives the round trip distinct from an
// empty one.
func encodeCell(c cellContent) []byte {
	var b wire.Buffer
	b.PutBytes(c.Val)
	b.PutUvarint(uint64(len(c.View)))
	for _, seg := range c.View {
		b.PutBool(seg != nil)
		if seg != nil {
			b.PutBytes(seg)
		}
	}
	return b.Bytes()
}

func decodeCell(b []byte) (cellContent, bool) {
	d := wire.NewDecoder(b)
	var c cellContent
	c.Val = d.Bytes()
	n := d.Count(1)
	if n > 0 {
		c.View = make([][]byte, n)
		for i := range c.View {
			if d.Bool() {
				seg := d.Bytes()
				if seg == nil {
					seg = []byte{}
				}
				c.View[i] = seg
			}
		}
	}
	if d.Err() != nil || d.Remaining() != 0 {
		return cellContent{}, false
	}
	return c, true
}

// Stats counts operations and collect iterations.
type Stats struct {
	Updates  int64
	Scans    int64
	Collects int64
	Borrows  int64
}

// Node is one snapshot node over a substrate.
type Node struct {
	rt    rt.Runtime
	sub   Substrate
	n     int
	stats Stats
}

// New builds the snapshot over the substrate.
func New(r rt.Runtime, sub Substrate) *Node {
	return &Node{rt: r, sub: sub, n: r.N()}
}

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats {
	var s Stats
	nd.rt.Atomic(func() { s = nd.stats })
	return s
}

// Update performs the embedded scan and stores (value, view).
func (nd *Node) Update(payload []byte) error {
	nd.rt.Atomic(func() { nd.stats.Updates++ })
	view, err := nd.scan()
	if err != nil {
		return err
	}
	return nd.sub.Store(encodeCell(cellContent{Val: payload, View: view}))
}

// Scan returns one entry per segment; nil marks ⊥.
func (nd *Node) Scan() ([][]byte, error) {
	nd.rt.Atomic(func() { nd.stats.Scans++ })
	return nd.scan()
}

func (nd *Node) scan() ([][]byte, error) {
	moved := make([]int, nd.n)
	c1, err := nd.collect()
	if err != nil {
		return nil, err
	}
	for {
		c2, err := nd.collect()
		if err != nil {
			return nil, err
		}
		if seqsEqual(c1, c2) {
			return viewOf(c2), nil
		}
		for j := range c2 {
			if c1[j].Seq != c2[j].Seq {
				moved[j]++
				if moved[j] >= 2 {
					// Writer j completed an entire update inside
					// this scan: its embedded view is current.
					cc, ok := decodeCell(c2[j].Data)
					if !ok {
						break
					}
					nd.rt.Atomic(func() { nd.stats.Borrows++ })
					return cc.View, nil
				}
			}
		}
		c1 = c2
	}
}

func (nd *Node) collect() ([]Cell, error) {
	nd.rt.Atomic(func() { nd.stats.Collects++ })
	return nd.sub.Collect()
}

func seqsEqual(a, b []Cell) bool {
	for i := range a {
		if a[i].Seq != b[i].Seq {
			return false
		}
	}
	return true
}

// viewOf extracts the value vector from collected cells.
func viewOf(cells []Cell) [][]byte {
	out := make([][]byte, len(cells))
	for i, c := range cells {
		if c.Seq > 0 {
			if cc, ok := decodeCell(c.Data); ok {
				out[i] = cc.Val
			}
		}
	}
	return out
}
