package storecollect

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
)

func init() {
	engine.Register(engine.Info{
		Name:     "storecollect",
		Doc:      "Table I baseline: store-collect object",
		Baseline: true,
		New:      func(r rt.Runtime) engine.Engine { return New(r) },
	})
}
