// Package storecollect is the Table I baseline in the style of Attiya,
// Kumari, Soman and Welch (reference [12]): a snapshot built from a
// quorum store-collect object, with O(n·D) UPDATE and O(n·D) SCAN. The
// snapshot layer is the Afek-style double collect with embedded-view
// helping (internal/baseline/afek); the substrate stores a node's cell in
// one quorum round and collects with a join-and-write-back quorum round
// pair (the write-back is what makes double collects atomic; see
// DESIGN.md).
package storecollect

import (
	"mpsnap/internal/abd"
	"mpsnap/internal/baseline/afek"
	"mpsnap/internal/rt"
)

// Node is one store-collect snapshot node.
type Node struct {
	*afek.Node
	store *abd.Store
}

type substrate struct{ store *abd.Store }

func (s substrate) Store(data []byte) error { return s.store.Write(data) }

func (s substrate) Collect() ([]afek.Cell, error) {
	entries, err := s.store.Collect(true)
	if err != nil {
		return nil, err
	}
	cells := make([]afek.Cell, len(entries))
	for i, e := range entries {
		cells[i] = afek.Cell{Owner: e.Owner, Seq: e.Seq, Data: e.Val}
	}
	return cells, nil
}

// New creates the node; register it as the node's message handler.
func New(r rt.Runtime) *Node {
	st := abd.New(r)
	return &Node{Node: afek.New(r, substrate{store: st}), store: st}
}

// HandleMessage implements rt.Handler.
func (nd *Node) HandleMessage(src int, m rt.Message) { nd.store.HandleMessage(src, m) }
