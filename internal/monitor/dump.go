package monitor

import (
	"encoding/json"
	"io"
	"os"

	"mpsnap/internal/history"
)

// opJSON is the dump representation of one operation, matching the field
// names of the history package's stable JSON format so dump transcripts
// can be eyeballed next to `asochaos -dump` histories.
type opJSON struct {
	ID     int      `json:"id"`
	Node   int      `json:"node"`
	Client int      `json:"client,omitempty"`
	Type   string   `json:"type"`
	Seq    int      `json:"seq,omitempty"`
	Arg    string   `json:"arg,omitempty"`
	Snap   []string `json:"snap,omitempty"`
	Inv    int64    `json:"inv"`
	Resp   int64    `json:"resp"`
}

func opToJSON(op history.Op) opJSON {
	jo := opJSON{
		ID:     op.ID,
		Node:   op.Node,
		Client: op.Client,
		Seq:    op.Seq,
		Inv:    int64(op.Inv),
		Resp:   int64(op.Resp),
	}
	if op.Type == history.Update {
		jo.Type = "update"
		jo.Arg = op.Arg
	} else {
		jo.Type = "scan"
		jo.Snap = op.Snap
	}
	return jo
}

// Dump is the JSON document WriteDump produces: the first violations with
// their evidence, running counters, and the minimized window transcript —
// the most recent completed operations, oldest first, enough to replay
// the window that tripped the check.
type Dump struct {
	N          int         `json:"n"`
	Window     int64       `json:"window"`
	Stats      Stats       `json:"stats"`
	Violations []Violation `json:"violations"`
	Transcript []opJSON    `json:"transcript"`
}

// WriteDump writes the violation dump as indented JSON.
func (m *Monitor) WriteDump(w io.Writer) error {
	m.mu.Lock()
	stats := m.stats
	stats.ByClass = make(map[string]int, len(m.stats.ByClass))
	for k, v := range m.stats.ByClass {
		stats.ByClass[k] = v
	}
	d := Dump{
		N:          m.cfg.N,
		Window:     int64(m.cfg.Window),
		Stats:      stats,
		Violations: append([]Violation(nil), m.violations...),
	}
	for i := 0; i < len(m.transcript); i++ {
		op := m.transcript[(m.trStart+i)%len(m.transcript)]
		d.Transcript = append(d.Transcript, opToJSON(op))
	}
	m.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DumpFile writes the violation dump to path.
func (m *Monitor) DumpFile(path string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteDump(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}
