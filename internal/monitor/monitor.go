// Package monitor is a streaming checker for the paper's (A1)-(A4)
// conditions: it consumes operations as they complete — hooked into a
// history.Recorder as its Sink, no full-history buffering — and validates
// each finished SCAN against a sliding window of recent state. It shares
// the condition machinery (Chain, Frontier, Completions) with the offline
// checker in internal/history, so the two cannot drift; equivalence and
// fuzz tests in this package pin that down.
//
// The monitor trades completeness for boundedness: state older than the
// window is pruned in directions that can only *under*-state what a scan
// must contain, so a violation report is always trustworthy (no false
// positives, proven against the offline checker by FuzzMonitorWindow)
// while a violation whose evidence has aged out of the window may go
// unreported. Section 12 of DESIGN.md spells out what is and is not
// detectable online.
package monitor

import (
	"fmt"
	"sync"

	"mpsnap/internal/history"
	"mpsnap/internal/rt"
)

// Violation classes, one per monitored invariant.
const (
	// ClassValidity: a scan returned a value no registered update wrote.
	ClassValidity = "validity"
	// ClassSelfInclusion: a scan misses an update its own client completed
	// before invoking the scan (per-client program order, immune to
	// cross-node clock skew).
	ClassSelfInclusion = "self-inclusion"
	// ClassContainment: (A2) a scan misses an update that completed,
	// on any node, strictly before the scan was invoked.
	ClassContainment = "containment"
	// ClassComparability: (A1) two scans in the window returned
	// incomparable bases.
	ClassComparability = "comparability"
	// ClassFrontier: (A3) a scan's base regresses below the frontier —
	// the pointwise max of bases of scans completed before it was invoked.
	ClassFrontier = "frontier-regression"
	// ClassPrefixClosure: (A4) a scan includes an update but misses
	// operations that completed before that update was invoked.
	ClassPrefixClosure = "prefix-closure"
)

// Violation is one detected invariant breach.
type Violation struct {
	Class string `json:"class"`
	// Op is the completed scan whose check failed.
	Op opJSON `json:"op"`
	// Base is the scan's resolved base (nil for validity violations).
	Base history.Base `json:"base,omitempty"`
	// Need is the requirement the base failed to meet (A2/A4/self-
	// inclusion: minimum base; frontier: the frontier at invocation).
	Need history.Base `json:"need,omitempty"`
	// Conflict is, for comparability violations, the incomparable base
	// of the earlier scan in the window.
	Conflict history.Base `json:"conflict,omitempty"`
	// Detail is a human-readable one-liner.
	Detail string `json:"detail"`
}

func (v Violation) String() string { return fmt.Sprintf("(%s) %s", v.Class, v.Detail) }

// Config parameterizes a Monitor.
type Config struct {
	// N is the number of nodes (segments).
	N int
	// Window is the sliding-window width in ticks. Completed state older
	// than Window behind the newest completion is pruned (safely: pruning
	// can hide old violations, never invent new ones). 0 means unbounded —
	// the monitor then checks exactly the offline conditions.
	Window rt.Ticks
	// MaxViolations caps the retained violation list (the count in Stats
	// keeps running). 0 means DefaultMaxViolations.
	MaxViolations int
	// TranscriptCap bounds the window transcript retained for dumps.
	// 0 means DefaultTranscriptCap.
	TranscriptCap int
	// OnViolation, when set, is called for each recorded violation, after
	// the monitor's own lock is released (so the callback may call
	// Violations, Stats or WriteDump; it must not call back into the
	// recorder the monitor is attached to).
	OnViolation func(Violation)
}

// Defaults for Config zero values.
const (
	DefaultWindow        = 100 * rt.TicksPerD
	DefaultMaxViolations = 16
	DefaultTranscriptCap = 512
)

// Stats are running counters, readable at any time.
type Stats struct {
	Updates    int            `json:"updates"`    // completed updates consumed
	Scans      int            `json:"scans"`      // completed scans checked
	Pending    int            `json:"pending"`    // begun but not yet completed
	Skipped    int            `json:"skipped"`    // scans skipped (evidence pruned)
	Violations int            `json:"violations"` // total found (not capped)
	Evicted    int            `json:"evicted"`    // scans aged out of the window
	ByClass    map[string]int `json:"byClass,omitempty"`
}

// writerState is the per-writer registry feeding the shared condition
// machinery: which value is which seq, when each seq was invoked, and the
// completion staircase answering (A2)/(A4) requirements.
type writerState struct {
	vals     map[string]int      // value → 1-based seq
	invBySeq map[int]rt.Ticks    // seq → invocation time
	compl    history.Completions // completion staircase (shared with offline)
	pruned   int                 // highest seq whose value/inv were pruned
}

// clientKey identifies one client of one node.
type clientKey struct{ node, client int }

// scanRec is a window entry: a completed scan and its resolved base.
type scanRec struct {
	op   history.Op
	base history.Base
}

// Monitor is the streaming checker. It implements history.Sink; attach
// with rec.SetSink(m). All methods are safe for concurrent use.
type Monitor struct {
	cfg Config

	mu         sync.Mutex
	writers    []*writerState
	own        map[clientKey]*history.Completions // per-client own-update staircases
	chain      history.Chain                      // (A1) over window scans
	frontier   history.Frontier                   // (A3) cumulative scan frontier
	window     []scanRec                          // completed scans in window, completion order
	transcript []history.Op                       // recent completed ops, ring for dumps
	trStart    int                                // ring start index
	latest     rt.Ticks                           // newest completion time seen
	stats      Stats
	violations []Violation
}

// New creates a monitor for an n-node object.
func New(cfg Config) *Monitor {
	if cfg.MaxViolations == 0 {
		cfg.MaxViolations = DefaultMaxViolations
	}
	if cfg.TranscriptCap == 0 {
		cfg.TranscriptCap = DefaultTranscriptCap
	}
	m := &Monitor{
		cfg:     cfg,
		writers: make([]*writerState, cfg.N),
		own:     make(map[clientKey]*history.Completions),
	}
	for i := range m.writers {
		m.writers[i] = &writerState{vals: make(map[string]int), invBySeq: make(map[int]rt.Ticks)}
	}
	m.stats.ByClass = make(map[string]int)
	return m
}

// OpBegan implements history.Sink: updates register their value and
// invocation time immediately (a concurrent scan may legally return a
// still-in-flight update's value); scans register nothing until they
// complete.
func (m *Monitor) OpBegan(op history.Op) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Pending++
	if op.Type != history.Update || op.Node < 0 || op.Node >= len(m.writers) {
		return
	}
	w := m.writers[op.Node]
	w.vals[op.Arg] = op.Seq
	w.invBySeq[op.Seq] = op.Inv
}

// OpCompleted implements history.Sink: updates feed the completion
// staircases; scans are checked against every monitored invariant, then
// join the window. Violation callbacks fire after the lock is released.
func (m *Monitor) OpCompleted(op history.Op) {
	m.mu.Lock()
	var fresh []Violation
	m.stats.Pending--
	if op.Resp > m.latest {
		m.latest = op.Resp
	}
	switch op.Type {
	case history.Update:
		m.stats.Updates++
		if op.Node >= 0 && op.Node < len(m.writers) {
			m.writers[op.Node].compl.Add(op.Resp, op.Seq)
			k := clientKey{op.Node, op.Client}
			oc := m.own[k]
			if oc == nil {
				oc = &history.Completions{}
				m.own[k] = oc
			}
			oc.Add(op.Resp, op.Seq)
		}
	case history.Scan:
		m.stats.Scans++
		fresh = m.checkScan(op)
	}
	m.record(op)
	m.prune()
	cb := m.cfg.OnViolation
	m.mu.Unlock()
	if cb != nil {
		for _, v := range fresh {
			cb(v)
		}
	}
}

// checkScan runs the per-scan invariant battery. Called with m.mu held;
// returns the violations it recorded.
func (m *Monitor) checkScan(op history.Op) []Violation {
	var out []Violation
	add := func(v Violation) {
		out = append(out, v)
		m.stats.Violations++
		m.stats.ByClass[v.Class]++
		if len(m.violations) < m.cfg.MaxViolations {
			m.violations = append(m.violations, v)
		}
	}
	// Resolve the base from the returned vector. An unknown value is a
	// hard validity violation only while the writer's registry is intact;
	// once pruning has dropped old values the scan is skipped instead
	// (the value may be ancient rather than forged).
	base := make(history.Base, len(m.writers))
	for i, w := range m.writers {
		if i >= len(op.Snap) {
			add(Violation{Class: ClassValidity, Op: opToJSON(op),
				Detail: fmt.Sprintf("scan returned %d segments, want %d", len(op.Snap), len(m.writers))})
			return out
		}
		v := op.Snap[i]
		if v == history.NoValue {
			continue
		}
		seq, ok := w.vals[v]
		if !ok {
			if w.pruned > 0 {
				m.stats.Skipped++
				return out
			}
			add(Violation{Class: ClassValidity, Op: opToJSON(op),
				Detail: fmt.Sprintf("segment %d value %q was never written by node %d", i, v, i)})
			return out
		}
		base[i] = seq
	}

	// Self-inclusion: the scanning client's own completed updates (strictly
	// before the scan's invocation, per its own clock) must be included.
	if oc := m.own[clientKey{op.Node, op.Client}]; oc != nil && op.Node < len(base) {
		if need := oc.Before(op.Inv); base[op.Node] < need {
			nb := make(history.Base, len(base))
			nb[op.Node] = need
			add(Violation{Class: ClassSelfInclusion, Op: opToJSON(op), Base: base, Need: nb,
				Detail: fmt.Sprintf("node %d client %d sees %d own updates, completed ≥ %d before invoking", op.Node, op.Client, base[op.Node], need)})
		}
	}

	// (A2) containment: every update completed strictly before the scan's
	// invocation, on any node, must be included.
	need := make(history.Base, len(m.writers))
	for j, w := range m.writers {
		need[j] = w.compl.Before(op.Inv)
	}
	if !need.LE(base) {
		add(Violation{Class: ClassContainment, Op: opToJSON(op), Base: base, Need: append(history.Base(nil), need...),
			Detail: fmt.Sprintf("base %v misses updates completed before invocation (needs ≥ %v)", base, need)})
	}

	// (A1) comparability against every scan in the window.
	if conflict, ok := m.chain.Insert(base); !ok {
		add(Violation{Class: ClassComparability, Op: opToJSON(op), Base: base, Conflict: conflict,
			Detail: fmt.Sprintf("base %v incomparable with base %v of a scan in the window", base, conflict)})
	}

	// (A3) frontier non-regression: the base must dominate the pointwise
	// max of bases of scans completed strictly before this invocation.
	if req := m.frontier.At(op.Inv); req != nil && !req.LE(base) {
		add(Violation{Class: ClassFrontier, Op: opToJSON(op), Base: base, Need: append(history.Base(nil), req...),
			Detail: fmt.Sprintf("base %v regresses below frontier %v of earlier scans", base, req)})
	}
	m.frontier.Add(op.Resp, base)

	// (A4) prefix closure: for each writer's last included update, every
	// operation completed before that update's invocation must be in the
	// base too. Updates whose invocation time aged out are skipped.
	for j, w := range m.writers {
		if base[j] == 0 || base[j] <= w.pruned {
			continue
		}
		uinv, ok := w.invBySeq[base[j]]
		if !ok {
			continue
		}
		un := make(history.Base, len(m.writers))
		for k, wk := range m.writers {
			un[k] = wk.compl.Before(uinv)
		}
		if !un.LE(base) {
			add(Violation{Class: ClassPrefixClosure, Op: opToJSON(op), Base: base, Need: un,
				Detail: fmt.Sprintf("base %v contains update %d of node %d but misses its predecessors (needs ≥ %v)", base, base[j], j, un)})
			break
		}
	}

	m.window = append(m.window, scanRec{op: op, base: base})
	return out
}

// record appends op to the bounded transcript ring.
func (m *Monitor) record(op history.Op) {
	if len(m.transcript) < m.cfg.TranscriptCap {
		m.transcript = append(m.transcript, op)
		return
	}
	m.transcript[m.trStart] = op
	m.trStart = (m.trStart + 1) % len(m.transcript)
}

// prune evicts state older than the window behind the newest completion.
// Every pruning direction under-states future requirements, so stale
// state can only cause missed violations, never spurious ones.
func (m *Monitor) prune() {
	if m.cfg.Window <= 0 || m.latest < m.cfg.Window {
		return
	}
	cutoff := m.latest - m.cfg.Window
	for len(m.window) > 0 && m.window[0].op.Resp < cutoff {
		m.chain.Remove(m.window[0].base)
		m.window = m.window[1:]
		m.stats.Evicted++
	}
	m.frontier.PruneBefore(cutoff)
	for _, w := range m.writers {
		w.compl.PruneBefore(cutoff)
		if floor := w.compl.Before(cutoff); floor > w.pruned {
			for v, seq := range w.vals {
				if seq < floor {
					delete(w.vals, v)
					delete(w.invBySeq, seq)
				}
			}
			w.pruned = floor - 1
		}
	}
	for _, oc := range m.own {
		oc.PruneBefore(cutoff)
	}
}

// Violations returns the recorded violations (capped at MaxViolations;
// Stats().Violations is the uncapped count).
func (m *Monitor) Violations() []Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Violation(nil), m.violations...)
}

// OK reports whether no violation has been found so far.
func (m *Monitor) OK() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats.Violations == 0
}

// Stats returns a snapshot of the running counters.
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.stats
	s.ByClass = make(map[string]int, len(m.stats.ByClass))
	for k, v := range m.stats.ByClass {
		s.ByClass[k] = v
	}
	return s
}
