package monitor

import (
	"sort"

	"mpsnap/internal/history"
)

// Replay feeds a finished history through a fresh monitor in event-time
// order — every invocation and every response becomes one sink callback,
// begins before completions at equal times (an update invoked at the tick
// a scan responds is already registered, matching the offline checker's
// strict real-time order) — and returns the monitor for inspection. With
// cfg.Window == 0 the monitor prunes nothing and its verdict matches the
// offline condition checks; the equivalence and fuzz tests in this
// package rely on that.
func Replay(h *history.History, cfg Config) *Monitor {
	if cfg.N == 0 {
		cfg.N = h.N
	}
	m := New(cfg)
	type event struct {
		at    int64
		begin bool
		op    *history.Op
	}
	var evs []event
	for _, op := range h.Ops {
		evs = append(evs, event{at: int64(op.Inv), begin: true, op: op})
		if !op.Pending() {
			evs = append(evs, event{at: int64(op.Resp), op: op})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		if evs[i].begin != evs[j].begin {
			return evs[i].begin
		}
		return evs[i].op.ID < evs[j].op.ID
	})
	for _, ev := range evs {
		if ev.begin {
			m.OpBegan(*ev.op)
		} else {
			m.OpCompleted(*ev.op)
		}
	}
	return m
}
