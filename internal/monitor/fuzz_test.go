package monitor

import (
	"testing"

	"mpsnap/internal/history"
	"mpsnap/internal/rt"
)

// fuzzSeedCorpus mirrors the seed corpus of the history package's
// FuzzCheckerAgainstBruteForce — including the 0x40 crash and 0x20
// restart shapes — so both fuzzers start from the same interesting
// territory.
func fuzzSeedCorpus() [][]byte {
	return [][]byte{
		{0x00, 1, 2, 0, 0x81, 1, 2, 3, 0x01, 0, 1, 5},
		{0x80, 0, 0, 1, 0x00, 0, 0, 0, 0x81, 0, 0, 2, 0x01, 7, 7, 9},
		{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4},
		{0x40, 1, 2, 0, 0x81, 3, 4, 1, 0x01, 0, 1, 0},
		{0x00, 0, 1, 0, 0x40, 2, 2, 0, 0x81, 0, 6, 2, 0x01, 1, 1, 3},
		{0xc1, 0, 3, 0, 0x00, 1, 1, 0, 0x80, 2, 2, 1},
		{0x40, 0, 7, 0, 0x41, 1, 7, 0, 0x80, 0, 1, 2},
		{0x40, 1, 2, 0, 0x20, 1, 2, 0, 0x80, 2, 2, 1},
		{0x40, 0, 3, 0, 0x01, 1, 1, 0, 0xa0, 2, 2, 2, 0x81, 1, 1, 3},
		{0x40, 0, 2, 0, 0x60, 1, 2, 0, 0x20, 1, 1, 0, 0x80, 1, 1, 1},
	}
}

// FuzzMonitorWindow asserts the monitor's one-sided soundness: on any
// history the offline linearizability checker accepts, the monitor —
// at any window size, including sizes small enough to force mid-replay
// eviction and registry pruning — reports no violation. (The converse
// direction is deliberately weaker: windowing and the recorded-domain
// restriction mean the monitor may miss offline-detectable violations,
// see TestMonitorWindowMissAfterEviction and DESIGN.md §12.)
func FuzzMonitorWindow(f *testing.F) {
	for _, data := range fuzzSeedCorpus() {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h := history.FromFuzzBytes(data)
		if len(h.Ops) == 0 {
			return
		}
		ok := h.CheckLinearizable().OK
		for _, w := range []rt.Ticks{0, 3, 11, 64} {
			m := Replay(h, Config{Window: w})
			if ok && !m.OK() {
				for _, op := range h.Ops {
					t.Logf("  %v", op)
				}
				t.Fatalf("window %d: monitor false positive on offline-accepted history: %v", w, m.Violations())
			}
		}
	})
}
