package monitor

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mpsnap/internal/history"
	"mpsnap/internal/rt"
)

// genHistory produces a linearizable-by-construction recorded history:
// each node issues sequential operations with random gaps and durations,
// every operation takes effect atomically at a random instant within its
// interval, and scans return the state at their effect instant. The
// result is exactly the domain a live recorder produces — scans only
// return values of updates invoked before the scan responds — which is
// the domain on which the monitor's verdict must equal the offline
// condition checker's.
func genHistory(seed int64, n, perNode int) *history.History {
	rng := rand.New(rand.NewSource(seed))
	type planned struct {
		node   int
		scan   bool
		inv    rt.Ticks
		effect rt.Ticks
		resp   rt.Ticks
		val    string
		snap   []string
	}
	var plan []*planned
	for node := 0; node < n; node++ {
		t := rt.Ticks(rng.Intn(5))
		count := 0
		for i := 0; i < perNode; i++ {
			inv := t + rt.Ticks(rng.Intn(6))
			dur := rt.Ticks(1 + rng.Intn(10))
			p := &planned{
				node:   node,
				scan:   rng.Intn(2) == 0,
				inv:    inv,
				effect: inv + rt.Ticks(rng.Int63n(int64(dur)+1)),
				resp:   inv + dur,
			}
			if !p.scan {
				count++
				p.val = fmt.Sprintf("v%d-%d", node, count)
			}
			plan = append(plan, p)
			t = p.resp + 1
		}
	}
	// Apply in effect order against the sequential specification.
	byEffect := append([]*planned(nil), plan...)
	sort.SliceStable(byEffect, func(i, j int) bool { return byEffect[i].effect < byEffect[j].effect })
	state := make([]string, n)
	for _, p := range byEffect {
		if p.scan {
			p.snap = append([]string(nil), state...)
		} else {
			state[p.node] = p.val
		}
	}
	// Record per node in program order so the recorder assigns Seq right.
	rec := history.NewRecorder(n)
	for node := 0; node < n; node++ {
		for _, p := range plan {
			if p.node != node {
				continue
			}
			if p.scan {
				rec.BeginScan(node, p.inv).EndScan(p.snap, p.resp)
			} else {
				rec.BeginUpdate(node, p.val, p.inv).End(p.resp)
			}
		}
	}
	return rec.History()
}

// corrupt returns a mutated copy of h: one random completed scan has one
// segment rolled back to an older value (or ⊥) of that segment's writer.
// The mutation stays inside the recorded domain (the value is real and
// was invoked before the scan responded), so the offline checker and the
// monitor must still agree — on whether it broke anything at all.
func corrupt(h *history.History, rng *rand.Rand) *history.History {
	ops := make([]*history.Op, len(h.Ops))
	var scans []int
	for i, op := range h.Ops {
		c := *op
		if op.Snap != nil {
			c.Snap = append([]string(nil), op.Snap...)
		}
		ops[i] = &c
		if c.Type == history.Scan && !c.Pending() {
			scans = append(scans, i)
		}
	}
	if len(scans) == 0 {
		return nil
	}
	sc := ops[scans[rng.Intn(len(scans))]]
	seg := rng.Intn(h.N)
	cur := sc.Snap[seg]
	if cur == history.NoValue {
		return nil
	}
	// Collect strictly older values of that writer (program order).
	var older []string
	older = append(older, history.NoValue)
	for _, u := range h.UpdatesByNode(seg) {
		if u.Arg == cur {
			break
		}
		older = append(older, u.Arg)
	}
	sc.Snap[seg] = older[rng.Intn(len(older))]
	return history.NewHistory(h.N, ops)
}

// TestMonitorMatchesOfflineOnRecordedHistories is the satellite
// equivalence test: on recorded histories — clean and corrupted — the
// unbounded-window monitor's verdict equals the offline (A1)-(A4)
// checker's, and a windowed monitor never flags what the offline checker
// accepts.
func TestMonitorMatchesOfflineOnRecordedHistories(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		h := genHistory(seed, 3, 8)
		offline := len(h.CheckConditions()) == 0
		if !offline {
			t.Fatalf("seed %d: generator produced a non-conforming history", seed)
		}
		if m := Replay(h, Config{}); !m.OK() {
			t.Fatalf("seed %d: monitor flags a clean recorded history: %v", seed, m.Violations())
		}
		rng := rand.New(rand.NewSource(seed * 977))
		for k := 0; k < 20; k++ {
			ch := corrupt(h, rng)
			if ch == nil {
				continue
			}
			offOK := len(ch.CheckConditions()) == 0
			m := Replay(ch, Config{})
			if m.OK() != offOK {
				t.Fatalf("seed %d corruption %d: offline ok=%v monitor ok=%v\noffline: %v\nmonitor: %v",
					seed, k, offOK, m.OK(), ch.CheckConditions(), m.Violations())
			}
			for _, w := range []rt.Ticks{8, 64} {
				if wm := Replay(ch, Config{Window: w}); offOK && !wm.OK() {
					t.Fatalf("seed %d corruption %d window %d: false positive: %v", seed, k, w, wm.Violations())
				}
			}
		}
	}
}

// TestMonitorEquivalenceOnFuzzCorpus replays the checker fuzz corpus
// shapes through the same comparison, restricted to the recorded domain
// (scan values invoked before the scan responds — FromFuzzBytes can
// synthesize future reads, which a live recorder cannot).
func TestMonitorEquivalenceOnFuzzCorpus(t *testing.T) {
	corpus := fuzzSeedCorpus()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		var data []byte
		if i < len(corpus) {
			data = corpus[i]
		} else {
			data = make([]byte, 4*(1+rng.Intn(7)))
			rng.Read(data)
		}
		h := history.FromFuzzBytes(data)
		if len(h.Ops) == 0 || !recordedDomain(h) {
			continue
		}
		offOK := len(h.CheckConditions()) == 0
		m := Replay(h, Config{})
		if m.OK() != offOK {
			t.Fatalf("bytes %x: offline ok=%v monitor ok=%v\noffline: %v\nmonitor: %v",
				data, offOK, m.OK(), h.CheckConditions(), m.Violations())
		}
	}
}

// recordedDomain reports whether every completed scan returns only values
// of updates invoked at or before the scan's response — what a live
// recorder can produce.
func recordedDomain(h *history.History) bool {
	invOf := make(map[string]rt.Ticks)
	for _, op := range h.Updates() {
		invOf[op.Arg] = op.Inv
	}
	for _, sc := range h.Scans() {
		for _, v := range sc.Snap {
			if v == history.NoValue {
				continue
			}
			inv, ok := invOf[v]
			if !ok || inv > sc.Resp {
				return false
			}
		}
	}
	return true
}
