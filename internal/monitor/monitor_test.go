package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mpsnap/internal/history"
	"mpsnap/internal/rt"
)

// feed is a test helper driving a monitor through a recorder, the same
// attachment path production uses.
type feed struct {
	rec *history.Recorder
	m   *Monitor
}

func newFeed(n int, cfg Config) *feed {
	cfg.N = n
	rec := history.NewRecorder(n)
	m := New(cfg)
	rec.SetSink(m)
	return &feed{rec: rec, m: m}
}

func classes(m *Monitor) map[string]int { return m.Stats().ByClass }

func TestMonitorCleanStream(t *testing.T) {
	f := newFeed(2, Config{})
	// Two writers alternate, a third party scans consistently.
	u1 := f.rec.BeginUpdateAs(0, 0, "a1", 0)
	u1.End(5)
	sc1 := f.rec.BeginScanAs(1, 0, 10)
	sc1.EndScan([]string{"a1", ""}, 15)
	u2 := f.rec.BeginUpdateAs(1, 0, "b1", 20)
	u2.End(25)
	sc2 := f.rec.BeginScanAs(0, 0, 30)
	sc2.EndScan([]string{"a1", "b1"}, 35)
	if !f.m.OK() {
		t.Fatalf("clean stream flagged: %v", f.m.Violations())
	}
	st := f.m.Stats()
	if st.Updates != 2 || st.Scans != 2 || st.Pending != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The offline checker agrees on the same recorded history.
	if rep := f.rec.History().CheckLinearizable(); !rep.OK {
		t.Fatalf("offline checker disagrees: %v", rep.Violations)
	}
}

func TestMonitorValidity(t *testing.T) {
	f := newFeed(2, Config{})
	u := f.rec.BeginUpdateAs(0, 0, "a1", 0)
	u.End(5)
	sc := f.rec.BeginScanAs(1, 0, 10)
	sc.EndScan([]string{"forged", ""}, 15)
	if got := classes(f.m); got[ClassValidity] != 1 {
		t.Fatalf("want one validity violation, got %v (%v)", got, f.m.Violations())
	}
}

func TestMonitorSelfInclusion(t *testing.T) {
	f := newFeed(2, Config{})
	u := f.rec.BeginUpdateAs(0, 3, "a1", 0)
	u.End(5)
	// Same node, same client: the scan was invoked after its own update
	// completed but misses it.
	sc := f.rec.BeginScanAs(0, 3, 10)
	sc.EndScan([]string{"", ""}, 15)
	got := classes(f.m)
	if got[ClassSelfInclusion] != 1 {
		t.Fatalf("want a self-inclusion violation, got %v", got)
	}
	// The global (A2) class necessarily fires too — self-inclusion is its
	// per-client, skew-immune projection.
	if got[ClassContainment] != 1 {
		t.Fatalf("want the containment violation alongside, got %v", got)
	}
}

func TestMonitorContainment(t *testing.T) {
	f := newFeed(2, Config{})
	u := f.rec.BeginUpdateAs(0, 0, "a1", 0)
	u.End(5)
	// A different node's client scans after the update completed; no
	// self-inclusion involvement, pure (A2).
	sc := f.rec.BeginScanAs(1, 0, 10)
	sc.EndScan([]string{"", ""}, 15)
	got := classes(f.m)
	if got[ClassContainment] != 1 {
		t.Fatalf("want exactly one containment violation, got %v", got)
	}
	if len(got) != 1 {
		t.Fatalf("want containment only, got %v", got)
	}
}

func TestMonitorComparability(t *testing.T) {
	f := newFeed(2, Config{})
	// Both updates stay in flight; two overlapping scans return
	// incomparable cuts. Only (A1) can fire: nothing has completed before
	// either invocation, and neither scan precedes the other.
	f.rec.BeginUpdateAs(0, 0, "a1", 0)
	f.rec.BeginUpdateAs(1, 0, "b1", 0)
	sc1 := f.rec.BeginScanAs(0, 1, 10)
	sc2 := f.rec.BeginScanAs(1, 1, 12)
	sc1.EndScan([]string{"a1", ""}, 50)
	sc2.EndScan([]string{"", "b1"}, 52)
	got := classes(f.m)
	if got[ClassComparability] != 1 {
		t.Fatalf("want one comparability violation, got %v", got)
	}
	if len(got) != 1 {
		t.Fatalf("want comparability only, got %v", got)
	}
}

func TestMonitorFrontierRegression(t *testing.T) {
	f := newFeed(2, Config{})
	// The update stays in flight (completes long after both scans), so
	// (A2) never fires; the second scan still must not regress below the
	// first scan's completed cut.
	u := f.rec.BeginUpdateAs(0, 0, "a1", 0)
	sc1 := f.rec.BeginScanAs(1, 0, 5)
	sc1.EndScan([]string{"a1", ""}, 15)
	sc2 := f.rec.BeginScanAs(1, 1, 20)
	sc2.EndScan([]string{"", ""}, 25)
	u.End(100)
	got := classes(f.m)
	if got[ClassFrontier] != 1 {
		t.Fatalf("want one frontier-regression violation, got %v", got)
	}
	if len(got) != 1 {
		t.Fatalf("want frontier-regression only, got %v", got)
	}
}

func TestMonitorPrefixClosure(t *testing.T) {
	f := newFeed(2, Config{})
	// Node 0's update completes, then node 1's update begins (so it is a
	// real-time successor). A slow scan invoked before everything returns
	// node 1's update without node 0's — prefix closure of the included
	// update is broken, but (A2) at the scan's own invocation requires
	// nothing.
	u0 := f.rec.BeginUpdateAs(0, 0, "a1", 0)
	sc := f.rec.BeginScanAs(1, 1, 2)
	u0.End(10)
	f.rec.BeginUpdateAs(1, 0, "b1", 20)
	sc.EndScan([]string{"", "b1"}, 200)
	got := classes(f.m)
	if got[ClassPrefixClosure] != 1 {
		t.Fatalf("want one prefix-closure violation, got %v", got)
	}
	if len(got) != 1 {
		t.Fatalf("want prefix-closure only, got %v", got)
	}
}

func TestMonitorWindowEviction(t *testing.T) {
	const window = 100
	f := newFeed(2, Config{Window: window})
	// An early scan pins an incomparable cut, then ages out; a much later
	// incomparable scan is NOT flagged (the evidence left the window) —
	// the documented detectability limit of the online monitor.
	f.rec.BeginUpdateAs(0, 0, "a1", 0)
	f.rec.BeginUpdateAs(1, 0, "b1", 0)
	sc1 := f.rec.BeginScanAs(0, 1, 10)
	sc1.EndScan([]string{"a1", ""}, 20)
	// Push time forward with scans far beyond the window.
	filler := f.rec.BeginScanAs(1, 1, 500)
	filler.EndScan([]string{"a1", ""}, 505)
	sc2 := f.rec.BeginScanAs(1, 2, 510)
	sc2.EndScan([]string{"", "b1"}, 515)
	st := f.m.Stats()
	if st.Evicted == 0 {
		t.Fatalf("expected evictions, stats = %+v", st)
	}
	// sc2 is incomparable with the evicted sc1 — but also with the
	// in-window filler, so comparability still fires once, against the
	// filler only.
	got := classes(f.m)
	if got[ClassComparability] != 1 {
		t.Fatalf("want one in-window comparability violation, got %v", got)
	}
}

func TestMonitorWindowMissAfterEviction(t *testing.T) {
	const window = 100
	f := newFeed(2, Config{Window: window})
	// Both updates stay in flight; every scan below overlaps every other
	// (all invoked before sc1's response), so the frontier imposes nothing
	// and the only condition at stake is (A1) comparability. sc1's cut
	// [1,0] is incomparable with sc2's [0,1] — a real offline violation —
	// but wedged filler scans completing late push sc1 out of the window
	// before sc2 completes, so the online monitor misses it: the
	// documented detectability limit.
	f.rec.BeginUpdateAs(0, 0, "a1", 0)
	f.rec.BeginUpdateAs(1, 0, "b1", 0)
	fill1 := f.rec.BeginScanAs(0, 2, 5)
	fill2 := f.rec.BeginScanAs(0, 3, 6)
	fill3 := f.rec.BeginScanAs(0, 4, 7)
	sc1 := f.rec.BeginScanAs(0, 1, 10)
	sc2 := f.rec.BeginScanAs(1, 2, 12)
	sc1.EndScan([]string{"a1", ""}, 20)
	fill1.EndScan([]string{"", ""}, 200)
	fill2.EndScan([]string{"", ""}, 300)
	fill3.EndScan([]string{"", ""}, 520)
	sc2.EndScan([]string{"", "b1"}, 615)
	if !f.m.OK() {
		t.Fatalf("violation against evicted scan should be missed (documented), got %v", f.m.Violations())
	}
	if f.m.Stats().Evicted == 0 {
		t.Fatal("expected sc1 to be evicted")
	}
	// The offline checker, with the full history, does catch it.
	if v := f.rec.History().CheckA1(); len(v) == 0 {
		t.Fatal("offline (A1) should flag the incomparable pair")
	}
}

func TestMonitorPrunedValueSkips(t *testing.T) {
	const window = 100
	f := newFeed(1, Config{Window: window})
	// Many completed updates march the window forward until the first
	// value's registry entry is pruned; a wedged scan then returning it is
	// skipped, not flagged — the monitor cannot distinguish ancient from
	// forged once the registry forgot the value.
	for i := 1; i <= 10; i++ {
		u := f.rec.BeginUpdateAs(0, 0, fmt.Sprintf("a%d", i), rt.Ticks(i*100))
		u.End(rt.Ticks(i*100 + 5))
	}
	sc := f.rec.BeginScanAs(0, 1, 90)
	sc.EndScan([]string{"a1"}, 1100)
	st := f.m.Stats()
	if st.Skipped != 1 {
		t.Fatalf("want the wedged scan skipped, stats = %+v violations = %v", st, f.m.Violations())
	}
	if st.Violations != 0 {
		t.Fatalf("skip must not count as violation: %v", f.m.Violations())
	}
}

func TestMonitorOnViolationAndDump(t *testing.T) {
	var fired []Violation
	dir := t.TempDir()
	path := filepath.Join(dir, "monitor-dump.json")
	var m *Monitor
	m = New(Config{N: 2, OnViolation: func(v Violation) {
		fired = append(fired, v)
		if len(fired) == 1 {
			// First violation: dump from inside the callback, the way the
			// chaos harness wires it.
			if err := m.DumpFile(path); err != nil {
				t.Errorf("DumpFile: %v", err)
			}
		}
	}})
	rec := history.NewRecorder(2)
	rec.SetSink(m)
	u := rec.BeginUpdateAs(0, 0, "a1", 0)
	u.End(5)
	sc := rec.BeginScanAs(1, 0, 10)
	sc.EndScan([]string{"", ""}, 15)
	if len(fired) != 1 {
		t.Fatalf("want 1 callback, got %d", len(fired))
	}
	if fired[0].Class != ClassContainment {
		t.Fatalf("want containment, got %v", fired[0])
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.N != 2 || len(d.Violations) != 1 || len(d.Transcript) == 0 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Violations[0].Class != ClassContainment {
		t.Fatalf("dump violation = %+v", d.Violations[0])
	}
	// The transcript holds the window's completed ops, oldest first.
	if d.Transcript[0].Type != "update" || d.Transcript[0].Arg != "a1" {
		t.Fatalf("transcript = %+v", d.Transcript)
	}
}

func TestMonitorMaxViolations(t *testing.T) {
	f := newFeed(2, Config{MaxViolations: 2})
	u := f.rec.BeginUpdateAs(0, 0, "a1", 0)
	u.End(5)
	for i := 0; i < 5; i++ {
		sc := f.rec.BeginScanAs(1, 0, rt.Ticks(10+i))
		sc.EndScan([]string{"", ""}, rt.Ticks(20+i))
	}
	if got := len(f.m.Violations()); got != 2 {
		t.Fatalf("violation list should cap at 2, got %d", got)
	}
	if st := f.m.Stats(); st.Violations != 5 {
		t.Fatalf("uncapped count should keep running, stats = %+v", st)
	}
}

func TestMonitorTranscriptRing(t *testing.T) {
	f := newFeed(1, Config{TranscriptCap: 4})
	for i := 1; i <= 10; i++ {
		u := f.rec.BeginUpdateAs(0, 0, fmt.Sprintf("a%d", i), rt.Ticks(i*10))
		u.End(rt.Ticks(i*10 + 5))
	}
	var buf bytes.Buffer
	if err := f.m.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Transcript) != 4 {
		t.Fatalf("transcript cap 4, got %d", len(d.Transcript))
	}
	if d.Transcript[0].Arg != "a7" || d.Transcript[3].Arg != "a10" {
		t.Fatalf("ring should keep the newest ops oldest-first: %+v", d.Transcript)
	}
}
