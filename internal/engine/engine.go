// Package engine defines the pluggable snapshot-engine abstraction: the
// one interface every snapshot-object protocol implements, optional
// capability surfaces (batching, view-returning batches, observability,
// WAL durability and recovery), and a name-keyed registry through which
// every layer above the protocols — the service front (internal/svc), the
// chaos harness (internal/chaos), the benchmark harness (internal/bench),
// the sharded cluster (internal/cluster), and the cmds — instantiates
// engines without referencing concrete node types.
//
// Protocol packages self-register from an init function (the same pattern
// as the wire codec registry), so a package that is linked in is
// selectable by name. Importing mpsnap/internal/engine/all links every
// engine in the repository.
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mpsnap/internal/core"
	"mpsnap/internal/rt"
	"mpsnap/internal/wal"
)

// Engine is the client+server face of one snapshot-object node: the
// message handler driven by the server thread plus the Update/Scan
// operations driven by the node's single client thread. Construct it on a
// runtime via Info.New (or Info.Recover) and install it as the node's
// handler before operating on it.
type Engine interface {
	rt.Handler
	// Update writes payload into this node's own segment.
	Update(payload []byte) error
	// Scan returns an atomic snapshot of all n segments (nil = never
	// written). For Sequential engines the snapshot is sequentially
	// consistent rather than linearizable.
	Scan() ([][]byte, error)
}

// Observable is implemented by engines that emit operation lifecycle
// events (obs integration). Install the observer before the first
// operation.
type Observable interface {
	SetObserver(o rt.Observer)
}

// Batcher is implemented by engines that can fold several pending
// payloads of their node into one protocol operation (the svc layer's
// UPDATE coalescing fast path).
type Batcher interface {
	UpdateBatch(payloads [][]byte) error
}

// ViewBatcher is the view-returning batch surface of the EQ-ASO family:
// one batched update returning the good view that certified it, for
// layers (SSO adoption, WAL checkpointing) that need the view itself.
type ViewBatcher interface {
	UpdateBatchWithView(payloads [][]byte) (core.View, []core.Timestamp, error)
}

// Durable is implemented by engines that can persist their protocol state
// to a write-ahead log. AttachWAL must be called before the engine is
// installed as a message handler.
type Durable interface {
	AttachWAL(w *wal.Writer, gc bool)
}

// Rejoiner is implemented by recovered engines that re-enter the protocol
// after a crash (call Rejoin from the client thread before resuming the
// workload).
type Rejoiner interface {
	Rejoin()
}

// Info describes one registered engine: its construction entry points and
// the metadata consumers need to validate topologies, pick consistency
// checkers, and route recovery.
type Info struct {
	// Name keys the engine in the registry and the -engine CLI flags.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Sequential marks engines whose scans are sequentially consistent
	// (the paper's Definition 2) rather than linearizable: the service
	// layer serves them in sequential mode and the chaos harness checks
	// sequential consistency instead of (A1)-(A4).
	Sequential bool
	// Byzantine marks engines that tolerate Byzantine faults and
	// therefore require n > 3f instead of the crash bound n > 2f.
	Byzantine bool
	// Baseline marks the Table I baselines kept for comparison runs.
	Baseline bool
	// New constructs a fresh engine on a runtime.
	New func(r rt.Runtime) Engine
	// Recover rebuilds the engine from a replayed WAL; nil when the
	// engine has no durability support. The result implements Rejoiner.
	Recover func(r rt.Runtime, st *wal.State, w *wal.Writer, gc bool) Engine
}

// Durable reports whether the engine can persist to a WAL and recover
// from it.
func (in Info) Durable() bool { return in.Recover != nil }

// MinN is the smallest cluster size that tolerates f faults under the
// engine's fault model.
func (in Info) MinN(f int) int {
	if in.Byzantine {
		return 3*f + 1
	}
	return 2*f + 1
}

// Validate checks an (n, f) topology against the engine's resilience
// requirement.
func (in Info) Validate(n, f int) error {
	if n <= 0 || f < 0 || n <= 2*f {
		return fmt.Errorf("engine %s: need n > 2f, got n=%d f=%d", in.Name, n, f)
	}
	if in.Byzantine && n <= 3*f {
		return fmt.Errorf("engine %s: need n > 3f, got n=%d f=%d", in.Name, n, f)
	}
	return nil
}

// UnknownError is the typed error returned by Lookup for a name that is
// not in the registry.
type UnknownError struct {
	Name string
}

func (e *UnknownError) Error() string {
	return fmt.Sprintf("engine: unknown engine %q (registered: %s)",
		e.Name, strings.Join(Names(), "|"))
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Info)
)

// Register adds an engine to the registry. It panics on an empty name, a
// nil constructor, or a duplicate registration — all are wiring bugs.
func Register(in Info) {
	if in.Name == "" {
		panic("engine: Register with empty name")
	}
	if in.New == nil {
		panic("engine: Register " + in.Name + " with nil constructor")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[in.Name]; dup {
		panic("engine: duplicate registration of " + in.Name)
	}
	registry[in.Name] = in
}

// Lookup resolves a registry name. Unknown names return *UnknownError.
func Lookup(name string) (Info, error) {
	mu.RLock()
	in, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return Info{}, &UnknownError{Name: name}
	}
	return in, nil
}

// MustLookup is Lookup for names that are statically known to be
// registered; it panics otherwise.
func MustLookup(name string) Info {
	in, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return in
}

// New constructs the named engine on a runtime.
func New(name string, r rt.Runtime) (Engine, error) {
	in, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return in.New(r), nil
}

// Names lists every registered engine name, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ProtocolNames lists the non-baseline engines, sorted — the vocabulary
// the -engine CLI flags advertise.
func ProtocolNames() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(registry))
	for name, in := range registry {
		if !in.Baseline {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// FlagHelp renders the -engine flag vocabulary ("eqaso|byzaso|...").
func FlagHelp() string { return strings.Join(ProtocolNames(), "|") }
