package engine_test

import (
	"fmt"
	"testing"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// Differential engine fuzzing: decode the fuzz input into one sequential
// schedule of UPDATE/SCAN operations across the cluster's nodes, run the
// identical schedule on EQ-ASO and on each challenger engine, and compare
// every scan pointwise. Because the schedule is sequential (each operation
// completes before the next is issued), linearizability admits exactly one
// outcome — every segment holds the last value its node wrote — so any
// divergence between engines, or from that trivial oracle, is a bug.

const (
	fuzzN      = 4
	fuzzF      = 1
	fuzzOpsCap = 48
)

// fuzzEngines lists EQ-ASO (the reference) first; every later engine is
// compared against it.
var fuzzEngines = []string{"eqaso", "acr", "fastsnap"}

type fuzzOp struct {
	node int
	scan bool
}

// decodeSchedule maps each input byte to one operation: low bits pick the
// node, and roughly a quarter of the bytes become scans.
func decodeSchedule(data []byte) []fuzzOp {
	ops := make([]fuzzOp, 0, fuzzOpsCap)
	for _, b := range data {
		if len(ops) == fuzzOpsCap {
			break
		}
		ops = append(ops, fuzzOp{node: int(b) % fuzzN, scan: (b>>2)%4 == 0})
	}
	return ops
}

// fuzzSeed mixes the input into a sim seed so message delays vary with the
// schedule, not just the op sequence.
func fuzzSeed(data []byte) int64 {
	h := int64(1469598103934665603)
	for _, b := range data {
		h = (h ^ int64(b)) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h%100000 + 1
}

// runSchedule executes ops one at a time on the named engine and returns
// each scan's result keyed by schedule position.
func runSchedule(t *testing.T, name string, ops []fuzzOp, seed int64) map[int][]string {
	t.Helper()
	in := engine.MustLookup(name)
	c := harness.Build(sim.Config{N: fuzzN, F: fuzzF, Seed: seed}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		e := in.New(r)
		return e, e
	})
	turn := 0
	scans := make(map[int][]string)
	var opErr error
	for i := 0; i < fuzzN; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			for {
				if err := o.P.WaitUntilGlobal("schedule turn", func() bool {
					return turn >= len(ops) || ops[turn].node == i
				}); err != nil {
					return
				}
				if turn >= len(ops) {
					return
				}
				idx := turn
				if ops[idx].scan {
					snap, err := o.Scan()
					if err != nil {
						opErr, turn = err, len(ops)
						return
					}
					scans[idx] = snap
				} else if err := o.UpdateValue(fmt.Sprintf("v%d", idx)); err != nil {
					opErr, turn = err, len(ops)
					return
				}
				turn = idx + 1
			}
		})
	}
	h, err := c.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	if opErr != nil {
		t.Fatalf("%s: fault-free op failed: %v", name, opErr)
	}
	if rep := h.CheckLinearizable(); !rep.OK {
		t.Fatalf("%s: sequential schedule not linearizable: %v", name, rep.Violations)
	}
	return scans
}

// oracle computes the only legal outcome of each scan in a sequential
// schedule: segment j holds node j's last completed update ("" = ⊥).
func oracle(ops []fuzzOp) map[int][]string {
	last := make([]string, fuzzN)
	out := make(map[int][]string)
	for idx, op := range ops {
		if op.scan {
			out[idx] = append([]string(nil), last...)
		} else {
			last[op.node] = fmt.Sprintf("v%d", idx)
		}
	}
	return out
}

func checkSchedule(t *testing.T, data []byte) {
	t.Helper()
	ops := decodeSchedule(data)
	if len(ops) == 0 {
		return
	}
	seed := fuzzSeed(data)
	want := oracle(ops)
	ref := runSchedule(t, fuzzEngines[0], ops, seed)
	for idx, snap := range ref {
		for j := range snap {
			if snap[j] != want[idx][j] {
				t.Fatalf("%s: scan@%d segment %d = %q, oracle says %q (schedule %v)",
					fuzzEngines[0], idx, j, snap[j], want[idx][j], ops)
			}
		}
	}
	for _, name := range fuzzEngines[1:] {
		got := runSchedule(t, name, ops, seed)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d scans completed, reference completed %d", name, len(got), len(ref))
		}
		for idx, snap := range ref {
			for j := range snap {
				if got[idx][j] != snap[j] {
					t.Fatalf("%s diverges from %s: scan@%d segment %d = %q, want %q (schedule %v)",
						name, fuzzEngines[0], idx, j, got[idx][j], snap[j], ops)
				}
			}
		}
	}
}

// FuzzEngineEquivalence is the native fuzz target behind `make
// fuzz-engines`: random operation schedules on EQ-ASO versus the acr and
// fastsnap challengers, scans compared pointwise.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{1, 1, 1, 4, 4, 4, 0, 16, 32, 64, 128, 255})
	f.Add([]byte("interleaved updates and scans across all nodes"))
	f.Add([]byte{16, 17, 18, 19, 16, 17, 18, 19, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		checkSchedule(t, data)
	})
}

// TestEngineEquivalenceCorpus keeps the differential check in the plain
// test suite: a few dozen deterministic random schedules per run.
func TestEngineEquivalenceCorpus(t *testing.T) {
	rng := newPCG(0x9e3779b9)
	for round := 0; round < 24; round++ {
		data := make([]byte, 8+rng()%41)
		for i := range data {
			data[i] = byte(rng())
		}
		checkSchedule(t, data)
	}
}

// newPCG is a tiny deterministic generator so the corpus test needs no
// seed plumbing.
func newPCG(state uint64) func() uint64 {
	return func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		x := state
		x ^= x >> 33
		return x
	}
}
