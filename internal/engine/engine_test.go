package engine_test

import (
	"errors"
	"strings"
	"testing"

	"mpsnap/internal/engine"
	_ "mpsnap/internal/engine/all"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// want is the full expected registry; keeping it literal means a new
// engine must be added here (and so get smoke coverage) to pass.
var wantNames = []string{
	"acr", "byzaso", "delporte", "eqaso", "fastsnap",
	"laaso", "sso", "sso-byz", "stacked", "storecollect",
}

func TestRegistryNames(t *testing.T) {
	got := engine.Names()
	if len(got) != len(wantNames) {
		t.Fatalf("Names() = %v, want %v", got, wantNames)
	}
	for i, n := range wantNames {
		if got[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q (full: %v)", i, got[i], n, got)
		}
	}
	for _, n := range engine.ProtocolNames() {
		in := engine.MustLookup(n)
		if in.Baseline {
			t.Errorf("ProtocolNames() includes baseline %q", n)
		}
	}
	if help := engine.FlagHelp(); !strings.Contains(help, "eqaso") || !strings.Contains(help, "fastsnap") {
		t.Errorf("FlagHelp() = %q, want it to mention eqaso and fastsnap", help)
	}
}

// TestEngineSmoke constructs every registered engine on a small simulated
// cluster and drives one update + scan through it.
func TestEngineSmoke(t *testing.T) {
	for _, name := range engine.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			in, err := engine.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			n, f := 4, 1 // satisfies n > 3f, so valid for every engine
			if err := in.Validate(n, f); err != nil {
				t.Fatalf("Validate(%d, %d): %v", n, f, err)
			}
			c := harness.Build(sim.Config{N: n, F: f, Seed: 11}, func(r rt.Runtime) (rt.Handler, harness.Object) {
				e := in.New(r)
				return e, e
			})
			c.Client(0, func(o *harness.OpRunner) {
				if err := o.UpdateValue("smoke"); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				snap, err := o.Scan()
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if snap[0] != "smoke" {
					t.Errorf("snap = %v, want segment 0 = smoke", snap)
				}
			})
			h, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if in.Sequential {
				if rep := h.CheckSequentiallyConsistent(); !rep.OK {
					t.Fatalf("history not sequentially consistent: %v", rep.Violations)
				}
			} else if rep := h.CheckLinearizable(); !rep.OK {
				t.Fatalf("history not linearizable: %v", rep.Violations)
			}
		})
	}
}

func TestUnknownEngine(t *testing.T) {
	_, err := engine.Lookup("no-such-engine")
	if err == nil {
		t.Fatal("Lookup of unknown engine succeeded")
	}
	var ue *engine.UnknownError
	if !errors.As(err, &ue) {
		t.Fatalf("Lookup error %T is not *engine.UnknownError", err)
	}
	if ue.Name != "no-such-engine" {
		t.Errorf("UnknownError.Name = %q", ue.Name)
	}
	if !strings.Contains(err.Error(), "eqaso") {
		t.Errorf("error %q should list registered engines", err)
	}
	if _, err := engine.New("no-such-engine", nil); err == nil {
		t.Fatal("New of unknown engine succeeded")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		engine string
		n, f   int
		ok     bool
	}{
		{"eqaso", 3, 1, true},
		{"eqaso", 4, 2, false}, // needs n > 2f
		{"fastsnap", 5, 2, true},
		{"acr", 2, 1, false},
		{"byzaso", 4, 1, true},
		{"byzaso", 6, 2, false}, // needs n > 3f
		{"sso-byz", 7, 2, true},
	}
	for _, tc := range cases {
		in := engine.MustLookup(tc.engine)
		err := in.Validate(tc.n, tc.f)
		if (err == nil) != tc.ok {
			t.Errorf("%s.Validate(%d, %d) = %v, want ok=%v", tc.engine, tc.n, tc.f, err, tc.ok)
		}
	}
}

func TestCapabilities(t *testing.T) {
	for _, tc := range []struct {
		name    string
		durable bool
	}{
		{"eqaso", true}, {"sso", true}, {"byzaso", false},
		{"acr", false}, {"fastsnap", false},
	} {
		if got := engine.MustLookup(tc.name).Durable(); got != tc.durable {
			t.Errorf("%s.Durable() = %v, want %v", tc.name, got, tc.durable)
		}
	}
	for _, tc := range []struct {
		name string
		f    int
		minN int
	}{
		{"eqaso", 1, 3}, {"eqaso", 2, 5}, {"byzaso", 1, 4}, {"byzaso", 2, 7},
	} {
		if got := engine.MustLookup(tc.name).MinN(tc.f); got != tc.minN {
			t.Errorf("%s.MinN(%d) = %d, want %d", tc.name, tc.f, got, tc.minN)
		}
	}
}
