// Package all links every in-tree snapshot engine into the binary by
// importing each algorithm package for its engine.Register side effect.
// Consumers that construct engines by name blank-import this package:
//
//	import _ "mpsnap/internal/engine/all"
package all

import (
	_ "mpsnap/internal/acr"
	_ "mpsnap/internal/baseline/delporte"
	_ "mpsnap/internal/baseline/laaso"
	_ "mpsnap/internal/baseline/stacked"
	_ "mpsnap/internal/baseline/storecollect"
	_ "mpsnap/internal/byzaso"
	_ "mpsnap/internal/eqaso"
	_ "mpsnap/internal/fastsnap"
	_ "mpsnap/internal/sso"
)
