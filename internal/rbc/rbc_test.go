package rbc_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"mpsnap/internal/rbc"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
)

// deployment builds an n-node RBC layer over the simulator and returns the
// per-node delivery logs.
type deployment struct {
	w      *sim.World
	layers []*rbc.RBC
	got    []map[rbc.ID]string
}

func deploy(n, f int, seed int64) *deployment {
	d := &deployment{
		w:      sim.New(sim.Config{N: n, F: f, Seed: seed}),
		layers: make([]*rbc.RBC, n),
		got:    make([]map[rbc.ID]string, n),
	}
	for i := 0; i < n; i++ {
		i := i
		d.got[i] = make(map[rbc.ID]string)
		d.layers[i] = rbc.New(d.w.Runtime(i), func(id rbc.ID, payload []byte) {
			if _, dup := d.got[i][id]; dup {
				panic(fmt.Sprintf("node %d delivered %v twice", i, id))
			}
			d.got[i][id] = string(payload)
		})
		d.w.SetHandler(i, rt.HandlerFunc(func(src int, m rt.Message) {
			d.layers[i].Handle(src, m)
		}))
	}
	return d
}

func TestValidity(t *testing.T) {
	d := deploy(4, 1, 1)
	d.w.Go("origin", func(p *sim.Proc) {
		d.w.Runtime(0).ID() // no-op; broadcast below under atomic contract
		d.layers[0].Broadcast([]byte("hello"))
	})
	if err := d.w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if len(d.got[i]) != 1 {
			t.Fatalf("node %d delivered %d messages, want 1", i, len(d.got[i]))
		}
		for _, v := range d.got[i] {
			if v != "hello" {
				t.Fatalf("node %d delivered %q", i, v)
			}
		}
	}
}

func TestValidityWithSilentFaults(t *testing.T) {
	// f nodes crash immediately; correct nodes must still deliver.
	n, f := 7, 2
	d := deploy(n, f, 3)
	for i := n - f; i < n; i++ {
		d.w.CrashAt(i, 0)
	}
	d.w.Go("origin", func(p *sim.Proc) {
		d.layers[0].Broadcast([]byte("m"))
	})
	if err := d.w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-f; i++ {
		if len(d.got[i]) != 1 {
			t.Fatalf("correct node %d delivered %d, want 1", i, len(d.got[i]))
		}
	}
}

func TestAgreementUnderEquivocation(t *testing.T) {
	// A Byzantine origin sends SEND("a") to half the nodes and SEND("b")
	// to the other half. Agreement: all correct nodes that deliver must
	// deliver the same payload; and if any delivers, all deliver.
	prop := func(seed int64) bool {
		n, f := 7, 2
		d := deploy(n, f, seed)
		byz := n - 1
		d.w.Go("equivocator", func(p *sim.Proc) {
			r := d.w.Runtime(byz)
			id := rbc.ID{Origin: byz, Seq: 1}
			for dst := 0; dst < n; dst++ {
				payload := "a"
				if dst%2 == 0 {
					payload = "b"
				}
				r.Send(dst, rbc.MsgSend{ID: id, Payload: []byte(payload)})
			}
		})
		if err := d.w.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var delivered []string
		count := 0
		for i := 0; i < n-1; i++ { // exclude the byzantine node itself
			if v, ok := d.got[i][rbc.ID{Origin: byz, Seq: 1}]; ok {
				delivered = append(delivered, v)
				count++
			}
		}
		if count == 0 {
			return true // nobody delivered: allowed for a Byzantine origin
		}
		if count != n-1 {
			t.Logf("seed %d: only %d of %d correct nodes delivered", seed, count, n-1)
			return false
		}
		for _, v := range delivered {
			if v != delivered[0] {
				t.Logf("seed %d: divergent deliveries %v", seed, delivered)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForgedOriginIgnored(t *testing.T) {
	// A Byzantine node opens a broadcast claiming another origin; the
	// channel authenticates the sender, so the SEND must be ignored.
	n, f := 4, 1
	d := deploy(n, f, 5)
	d.w.Go("forger", func(p *sim.Proc) {
		r := d.w.Runtime(3)
		forged := rbc.ID{Origin: 0, Seq: 99}
		r.Broadcast(rbc.MsgSend{ID: forged, Payload: []byte("fake")})
	})
	if err := d.w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if len(d.got[i]) != 0 {
			t.Fatalf("node %d delivered a forged broadcast: %v", i, d.got[i])
		}
	}
}

func TestManyConcurrentBroadcasts(t *testing.T) {
	n, f := 7, 2
	d := deploy(n, f, 9)
	const each = 5
	for i := 0; i < n; i++ {
		i := i
		d.w.GoNode(fmt.Sprintf("origin-%d", i), i, func(p *sim.Proc) {
			for k := 0; k < each; k++ {
				d.layers[i].Broadcast([]byte(fmt.Sprintf("m%d-%d", i, k)))
				_ = p.Sleep(rt.Ticks(100 * (i + 1)))
			}
		})
	}
	if err := d.w.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if len(d.got[i]) != n*each {
			t.Fatalf("node %d delivered %d, want %d", i, len(d.got[i]), n*each)
		}
	}
	// Agreement on every instance.
	for id, v := range d.got[0] {
		for i := 1; i < n; i++ {
			if d.got[i][id] != v {
				t.Fatalf("instance %v: node %d delivered %q, node 0 %q", id, i, d.got[i][id], v)
			}
		}
	}
}

func TestRequiresNGreaterThan3F(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must reject n <= 3f")
		}
	}()
	w := sim.New(sim.Config{N: 3, F: 1, Seed: 1})
	rbc.New(w.Runtime(0), nil)
}
