// Package rbc implements Bracha's asynchronous reliable broadcast
// (Information and Computation, 1987 — reference [18] of the paper), the
// primitive the Byzantine ASO integrates with the equivalence quorum
// framework (Section V).
//
// With n > 3f nodes of which at most f are Byzantine, every broadcast
// satisfies:
//
//   - Validity: if a correct node broadcasts m, every correct node
//     eventually delivers m.
//   - Agreement: if any correct node delivers m for a broadcast, every
//     correct node delivers m for it.
//   - Integrity: a correct node delivers at most one message per broadcast
//     identifier, and (for correct origins) only a message the origin sent.
//
// Concurrency contract: all methods must be called from the node's handler
// or from inside rt.Runtime.Atomic — the package does no locking of its
// own. The Deliver callback runs in that same atomic context.
package rbc

import (
	"math/rand"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// ID identifies one broadcast instance.
type ID struct {
	Origin int
	Seq    int64
}

// MsgSend is the origin's initial dissemination.
type MsgSend struct {
	ID      ID
	Payload []byte
}

// Kind implements rt.Message.
func (MsgSend) Kind() string { return "rbcSend" }

// MsgEcho is the first-phase witness message.
type MsgEcho struct {
	ID      ID
	Payload []byte
}

// Kind implements rt.Message.
func (MsgEcho) Kind() string { return "rbcEcho" }

// MsgReady is the second-phase commitment message.
type MsgReady struct {
	ID      ID
	Payload []byte
}

// Kind implements rt.Message.
func (MsgReady) Kind() string { return "rbcReady" }

func putIDPayload(b *wire.Buffer, id ID, payload []byte) {
	b.PutInt(id.Origin)
	b.PutVarint(id.Seq)
	b.PutBytes(payload)
}

func getIDPayload(d *wire.Decoder) (ID, []byte) {
	id := ID{Origin: d.Int(), Seq: d.Varint()}
	return id, d.Bytes()
}

func genIDPayload(rng *rand.Rand) (ID, []byte) {
	return ID{Origin: rng.Intn(16), Seq: rng.Int63n(1 << 30)}, wire.GenPayload(rng)
}

// Wire tags 80–82 (see DESIGN.md, wire format section).
func init() {
	wire.Register(wire.Codec{
		Tag: 80, Proto: MsgSend{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgSend)
			putIDPayload(b, msg.ID, msg.Payload)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			id, p := getIDPayload(d)
			return MsgSend{ID: id, Payload: p}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			id, p := genIDPayload(rng)
			return MsgSend{ID: id, Payload: p}
		},
	})
	wire.Register(wire.Codec{
		Tag: 81, Proto: MsgEcho{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgEcho)
			putIDPayload(b, msg.ID, msg.Payload)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			id, p := getIDPayload(d)
			return MsgEcho{ID: id, Payload: p}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			id, p := genIDPayload(rng)
			return MsgEcho{ID: id, Payload: p}
		},
	})
	wire.Register(wire.Codec{
		Tag: 82, Proto: MsgReady{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgReady)
			putIDPayload(b, msg.ID, msg.Payload)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			id, p := getIDPayload(d)
			return MsgReady{ID: id, Payload: p}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			id, p := genIDPayload(rng)
			return MsgReady{ID: id, Payload: p}
		},
	})
}

type bcastState struct {
	sentEcho  bool
	sentReady bool
	delivered bool
	echoes    map[string]map[int]bool // payload -> witnesses
	readies   map[string]map[int]bool
}

// RBC is the per-node reliable broadcast layer.
type RBC struct {
	rt      rt.Runtime
	n, f    int
	nextSeq int64
	st      map[ID]*bcastState

	// Deliver is invoked exactly once per delivered broadcast, in the
	// handler's atomic context.
	Deliver func(id ID, payload []byte)
}

// New creates the layer; the caller routes rbc messages into Handle.
func New(r rt.Runtime, deliver func(id ID, payload []byte)) *RBC {
	if r.N() <= 3*r.F() {
		panic("rbc: requires n > 3f")
	}
	return &RBC{rt: r, n: r.N(), f: r.F(), st: make(map[ID]*bcastState), Deliver: deliver}
}

func (b *RBC) state(id ID) *bcastState {
	s := b.st[id]
	if s == nil {
		s = &bcastState{
			echoes:  make(map[string]map[int]bool),
			readies: make(map[string]map[int]bool),
		}
		b.st[id] = s
	}
	return s
}

// Broadcast reliably broadcasts payload and returns the instance ID.
func (b *RBC) Broadcast(payload []byte) ID {
	b.nextSeq++
	id := ID{Origin: b.rt.ID(), Seq: b.nextSeq}
	b.rt.Broadcast(MsgSend{ID: id, Payload: payload})
	return id
}

// Handle processes a message; it returns false if the message is not an
// rbc message (so callers can multiplex).
func (b *RBC) Handle(src int, m rt.Message) bool {
	switch msg := m.(type) {
	case MsgSend:
		// Only the origin may open its own broadcast.
		if src != msg.ID.Origin {
			return true
		}
		s := b.state(msg.ID)
		if !s.sentEcho {
			s.sentEcho = true
			b.rt.Broadcast(MsgEcho{ID: msg.ID, Payload: msg.Payload})
		}
	case MsgEcho:
		s := b.state(msg.ID)
		key := string(msg.Payload)
		w := s.echoes[key]
		if w == nil {
			w = make(map[int]bool)
			s.echoes[key] = w
		}
		if w[src] {
			return true
		}
		w[src] = true
		if len(w) >= (b.n+b.f)/2+1 && !s.sentReady {
			s.sentReady = true
			b.rt.Broadcast(MsgReady{ID: msg.ID, Payload: msg.Payload})
		}
	case MsgReady:
		s := b.state(msg.ID)
		key := string(msg.Payload)
		w := s.readies[key]
		if w == nil {
			w = make(map[int]bool)
			s.readies[key] = w
		}
		if w[src] {
			return true
		}
		w[src] = true
		if len(w) >= b.f+1 && !s.sentReady {
			s.sentReady = true
			b.rt.Broadcast(MsgReady{ID: msg.ID, Payload: msg.Payload})
		}
		if len(w) >= 2*b.f+1 && !s.delivered {
			s.delivered = true
			if b.Deliver != nil {
				b.Deliver(msg.ID, msg.Payload)
			}
		}
	default:
		return false
	}
	return true
}
