package loadgen

import (
	"testing"
	"time"

	_ "mpsnap/internal/engine/all"
)

// TestClosedLoopSmoke: a short closed-loop run on the tuned stack
// completes operations without errors and reports coherent numbers.
func TestClosedLoopSmoke(t *testing.T) {
	res, err := Run(Config{
		Engine: "fastsnap", N: 3, F: 1, Clients: 16,
		Duration: 400 * time.Millisecond, Warmup: 100 * time.Millisecond,
		ScanPct: 20, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if res.Errors != 0 {
		t.Fatalf("%d operation errors", res.Errors)
	}
	if res.Path != "tuned" {
		t.Errorf("Path = %q, want tuned", res.Path)
	}
	if res.OpsPerSec <= 0 {
		t.Errorf("OpsPerSec = %g", res.OpsPerSec)
	}
	if res.Update.Count+res.Scan.Count != uint64(res.Ops) {
		t.Errorf("histogram counts %d+%d != ops %d", res.Update.Count, res.Scan.Count, res.Ops)
	}
	if res.SvcUpdates == 0 || res.SvcProtoUpdates == 0 {
		t.Errorf("svc counters empty: updates=%d proto=%d", res.SvcUpdates, res.SvcProtoUpdates)
	}
}

// TestOpenLoopLegacySmoke: the open-loop scheduler and the legacy path
// both function end to end (zipf-skewed keys included).
func TestOpenLoopLegacySmoke(t *testing.T) {
	res, err := Run(Config{
		Engine: "eqaso", N: 3, F: 1, Clients: 8,
		Duration: 400 * time.Millisecond, Warmup: 100 * time.Millisecond,
		Rate: 2000, ZipfS: 1.2, Legacy: true, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations recorded")
	}
	if res.Errors != 0 {
		t.Fatalf("%d operation errors", res.Errors)
	}
	if res.Path != "legacy" {
		t.Errorf("Path = %q, want legacy", res.Path)
	}
	// Legacy keeps the unbounded drain: the window must report 0 and
	// never resize.
	if res.SvcWindow != 0 || res.SvcWindowGrows != 0 {
		t.Errorf("legacy run resized the window: window=%d grows=%d", res.SvcWindow, res.SvcWindowGrows)
	}
}

// TestUnknownEngine: a bad engine name fails fast, before any socket is
// bound.
func TestUnknownEngine(t *testing.T) {
	if _, err := Run(Config{Engine: "no-such-engine"}); err == nil {
		t.Fatal("want error for unknown engine")
	}
}
