// Package loadgen drives wall-clock load against an in-process TCP mesh:
// N asonode-equivalent processes (real sockets on loopback, the exact
// transport cmd/asonode deploys) fronted by svc Services, hammered by
// thousands of concurrent client sessions. It is the measurement engine
// behind cmd/asoload and the asobench wallclock experiment.
//
// Two generation disciplines:
//
//   - closed loop (Rate == 0): each client session issues its next
//     operation as soon as the previous one completes — throughput is
//     demand-bound and latency includes only service time + queueing
//     created by the other sessions;
//   - open loop (Rate > 0): operations are issued on a fixed schedule
//     (Rate ops/sec across all sessions) regardless of completions, the
//     discipline that exposes queueing collapse. A session that falls
//     behind its schedule issues immediately (burst catch-up) rather
//     than silently shedding load.
//
// Key-space skew: each operation draws a key from a Zipf distribution
// over Keys keys (ZipfS > 1 skews toward hot keys; 0 means uniform) and
// routes to node key mod N. The snapshot object model is one segment per
// node, so the key only selects the target node and colours the payload —
// but the resulting per-node load imbalance is exactly what the skew knob
// is for.
//
// The tuned/legacy split (Config.Legacy) selects the whole pre- vs
// post-optimization stack in one flag: the transport's serial dispatch,
// per-frame writes and raceful batching, and the service layer's condvar
// completion and unbounded drain, versus pipelined per-source dispatch,
// coalesced flushes, channel completion and the adaptive drain window.
package loadgen

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mpsnap/internal/engine"
	"mpsnap/internal/obs"
	"mpsnap/internal/svc"
	"mpsnap/internal/transport"
)

// Config parameterizes one load run.
type Config struct {
	// Engine is the registered engine name (default "eqaso").
	Engine string
	// N and F size the mesh (defaults 4 and 1).
	N, F int
	// Clients is the number of concurrent client sessions (default 64).
	Clients int
	// Duration is the recording window (default 2s); Warmup runs before
	// it and is excluded from every reported number (default 500ms).
	Duration, Warmup time.Duration
	// ScanPct is the percentage of operations that are scans (0..100,
	// default 10).
	ScanPct int
	// Keys is the virtual key-space size (default 1024); ZipfS > 1 skews
	// key choice (and thus per-node load) Zipf-style, 0 means uniform.
	Keys  int
	ZipfS float64
	// Rate, when > 0, switches to open-loop generation at Rate ops/sec
	// across all sessions.
	Rate float64
	// Payload is the update payload size in bytes (default 16).
	Payload int
	// Seed drives key choice and the op mix.
	Seed int64
	// D is the transport's delay bound passed to the mesh (default 5ms).
	D time.Duration
	// MaxPending bounds each node's service queue (default svc default).
	MaxPending int
	// Legacy selects the pre-optimization transport and service path
	// (TCPConfig.Legacy, condvar completion, unbounded drain window).
	Legacy bool
	// FlushDelay overrides the transport's outbound coalescing window
	// (0 = transport default; negative disables). Ignored under Legacy.
	FlushDelay time.Duration
}

func (c *Config) fill() {
	if c.Engine == "" {
		c.Engine = "eqaso"
	}
	if c.N == 0 {
		c.N = 4
	}
	if c.N > 1 && c.F == 0 {
		c.F = (c.N - 1) / 3
		if c.F == 0 {
			c.F = 1
		}
		if c.F > (c.N-1)/2 {
			c.F = (c.N - 1) / 2
		}
	}
	if c.Clients == 0 {
		c.Clients = 64
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 500 * time.Millisecond
	}
	if c.ScanPct == 0 {
		c.ScanPct = 10
	}
	if c.Keys == 0 {
		c.Keys = 1024
	}
	if c.Payload == 0 {
		c.Payload = 16
	}
	if c.D == 0 {
		c.D = 5 * time.Millisecond
	}
}

// Path names the measured stack variant.
func (c *Config) Path() string {
	if c.Legacy {
		return "legacy"
	}
	return "tuned"
}

// LatencySummary is the client-visible latency digest of one op kind, in
// microseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_us"`
	P90   float64 `json:"p90_us"`
	P99   float64 `json:"p99_us"`
	Max   float64 `json:"max_us"`
}

func summarize(h *obs.Histogram) LatencySummary {
	s := h.Snapshot()
	p50, p90, p99, max := s.Summary()
	return LatencySummary{Count: s.Count, P50: p50, P90: p90, P99: p99, Max: max}
}

// Result is one run's report.
type Result struct {
	Engine  string `json:"engine"`
	Clients int    `json:"clients"`
	N       int    `json:"n"`
	// Path is "tuned" or "legacy" (the pre-optimization stack).
	Path string `json:"path"`
	// Ops and Errors count operations completed inside the recording
	// window; OpsPerSec is Ops over the window's actual wall time.
	Ops       int64   `json:"ops"`
	Errors    int64   `json:"errors"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Update and Scan are client-visible latencies (µs), recording-window
	// operations only.
	Update LatencySummary `json:"update"`
	Scan   LatencySummary `json:"scan"`
	// AllocsPerOp / BytesPerOp are the whole process's allocation deltas
	// across the recording window divided by recorded ops — every layer
	// from client goroutine to socket, not just the transport.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Aggregated service-layer counters across all nodes: amortization is
	// Updates/ProtoUpdates and Scans/ProtoScans.
	SvcUpdates      int64 `json:"svc_updates"`
	SvcScans        int64 `json:"svc_scans"`
	SvcProtoUpdates int64 `json:"svc_proto_updates"`
	SvcProtoScans   int64 `json:"svc_proto_scans"`
	SvcMaxBatch     int   `json:"svc_max_batch"`
	SvcWindow       int   `json:"svc_window"`
	SvcWindowGrows  int64 `json:"svc_window_grows"`
	SvcWindowShr    int64 `json:"svc_window_shrinks"`
}

// Run executes one load run and reports it.
func Run(cfg Config) (Result, error) {
	cfg.fill()
	if _, err := engine.Lookup(cfg.Engine); err != nil {
		return Result{}, err
	}

	// Bind ephemeral loopback ports first so every node knows the mesh.
	listeners := make([]net.Listener, cfg.N)
	addrs := make([]string, cfg.N)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Result{}, err
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*transport.TCPNode, cfg.N)
	services := make([]*svc.Service, cfg.N)
	errs := make(chan error, cfg.N)
	for i := 0; i < cfg.N; i++ {
		i := i
		go func() {
			tn, err := transport.NewTCPNode(transport.TCPConfig{
				ID: i, Addrs: addrs, F: cfg.F, D: cfg.D,
				Listener: listeners[i],
				Legacy:   cfg.Legacy, FlushDelay: cfg.FlushDelay,
			})
			if err != nil {
				errs <- fmt.Errorf("node %d: %w", i, err)
				return
			}
			nodes[i] = tn
			eng := engine.MustLookup(cfg.Engine).New(tn.Runtime())
			tn.SetHandler(eng)
			services[i] = svc.New(tn.Runtime(), eng, svc.Options{
				Mode:       svc.ModeFor(cfg.Engine),
				MaxPending: cfg.MaxPending,
				// The optimized completion/batching path; Legacy keeps the
				// pre-PR condvar wait and unbounded drain.
				DirectWait:     !cfg.Legacy,
				AdaptiveWindow: !cfg.Legacy,
			})
			errs <- nil
		}()
	}
	for i := 0; i < cfg.N; i++ {
		if err := <-errs; err != nil {
			return Result{}, err
		}
	}
	defer func() {
		for _, tn := range nodes {
			if tn != nil {
				tn.Close()
			}
		}
	}()
	var workers sync.WaitGroup
	for _, s := range services {
		workers.Add(1)
		go func(s *svc.Service) {
			defer workers.Done()
			_ = s.Serve()
		}(s)
	}

	updHist := obs.NewHistogram(obs.DefaultMicrosBuckets())
	scanHist := obs.NewHistogram(obs.DefaultMicrosBuckets())
	var ops, errops atomic.Int64
	start := time.Now()
	warmEnd := start.Add(cfg.Warmup)
	deadline := warmEnd.Add(cfg.Duration)

	// Allocation accounting: snapshot at the warmup boundary and at the
	// end, so warmup's pool-filling and connection setup are excluded.
	var m0, m1 runtime.MemStats
	var memOnce sync.Once
	payload := make([]byte, cfg.Payload)

	oneOp := func(rng *rand.Rand, zipf *rand.Zipf, recording bool) {
		var key uint64
		if zipf != nil {
			key = zipf.Uint64()
		} else {
			key = uint64(rng.Intn(cfg.Keys))
		}
		node := int(key % uint64(cfg.N))
		scan := rng.Intn(100) < cfg.ScanPct
		t0 := time.Now()
		var err error
		if scan {
			_, err = services[node].Scan()
		} else {
			err = services[node].Update(payload)
		}
		if !recording {
			return
		}
		if err != nil {
			errops.Add(1)
			return
		}
		us := float64(time.Since(t0)) / float64(time.Microsecond)
		if scan {
			scanHist.Observe(us)
		} else {
			updHist.Observe(us)
		}
		ops.Add(1)
	}

	var clients sync.WaitGroup
	var inflight sync.WaitGroup // open-loop ops outlive their session tick
	for c := 0; c < cfg.Clients; c++ {
		c := c
		clients.Add(1)
		go func() {
			defer clients.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*1_000_003))
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
			}
			if cfg.Rate <= 0 { // closed loop
				for {
					now := time.Now()
					if now.After(deadline) {
						return
					}
					if !now.Before(warmEnd) {
						memOnce.Do(func() { runtime.ReadMemStats(&m0) })
					}
					oneOp(rng, zipf, !now.Before(warmEnd))
				}
			}
			// Open loop: fixed per-session schedule, ops issued
			// asynchronously so a slow completion never delays the next
			// arrival. Each op gets its own rng (and Zipf) because the
			// session's cannot be shared across concurrent ops.
			interval := time.Duration(float64(cfg.Clients) / cfg.Rate * float64(time.Second))
			next := start.Add(time.Duration(c) * interval / time.Duration(cfg.Clients))
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				if wait := next.Sub(now); wait > 0 {
					time.Sleep(wait)
					now = time.Now()
				}
				tick := next
				next = next.Add(interval)
				if !now.Before(warmEnd) {
					memOnce.Do(func() { runtime.ReadMemStats(&m0) })
				}
				recording := !now.Before(warmEnd)
				inflight.Add(1)
				go func() {
					defer inflight.Done()
					r := rng2(cfg.Seed, c, tick)
					var z *rand.Zipf
					if cfg.ZipfS > 1 {
						z = rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Keys-1))
					}
					oneOp(r, z, recording)
				}()
			}
		}()
	}
	clients.Wait()
	inflight.Wait()
	runtime.ReadMemStats(&m1)
	elapsed := time.Since(warmEnd)

	for _, s := range services {
		s.Close()
	}
	workers.Wait()

	res := Result{
		Engine: cfg.Engine, Clients: cfg.Clients, N: cfg.N, Path: cfg.Path(),
		Ops: ops.Load(), Errors: errops.Load(),
		Seconds: elapsed.Seconds(),
		Update:  summarize(updHist), Scan: summarize(scanHist),
	}
	if res.Seconds > 0 {
		res.OpsPerSec = float64(res.Ops) / res.Seconds
	}
	if res.Ops > 0 {
		res.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(res.Ops)
		res.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(res.Ops)
	}
	for _, s := range services {
		st := s.Stats()
		res.SvcUpdates += st.Updates
		res.SvcScans += st.Scans
		res.SvcProtoUpdates += st.ProtoUpdates
		res.SvcProtoScans += st.ProtoScans
		if st.MaxBatch > res.SvcMaxBatch {
			res.SvcMaxBatch = st.MaxBatch
		}
		if st.Window > res.SvcWindow {
			res.SvcWindow = st.Window
		}
		res.SvcWindowGrows += st.WindowGrows
		res.SvcWindowShr += st.WindowShrinks
	}
	return res, nil
}

// rng2 derives a per-op rng for open-loop goroutines (the session's rng
// cannot be shared across concurrent ops).
func rng2(seed int64, client int, next time.Time) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(client)<<32 ^ next.UnixNano()))
}
