package sso

import (
	"mpsnap/internal/engine"
	"mpsnap/internal/rt"
	"mpsnap/internal/wal"
)

// The SSO variants register as sequentially consistent engines: "sso"
// runs its updates through EQ-ASO (WAL-durable), "sso-byz" through the
// Byzantine ASO (n > 3f, no WAL).
func init() {
	engine.Register(engine.Info{
		Name:       "sso",
		Doc:        "sequentially consistent snapshot: EQ-ASO updates, zero-communication local scans",
		Sequential: true,
		New:        func(r rt.Runtime) engine.Engine { return New(r) },
		Recover: func(r rt.Runtime, st *wal.State, w *wal.Writer, gc bool) engine.Engine {
			return Recover(r, st, w, gc)
		},
	})
	engine.Register(engine.Info{
		Name:       "sso-byz",
		Doc:        "sequentially consistent snapshot over the Byzantine ASO (n > 3f)",
		Sequential: true,
		Byzantine:  true,
		New:        func(r rt.Runtime) engine.Engine { return NewByzantine(r) },
	})
}
