package sso_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpsnap/internal/byzaso"
	"mpsnap/internal/core"
	"mpsnap/internal/harness"
	"mpsnap/internal/rt"
	"mpsnap/internal/sim"
	"mpsnap/internal/sso"
)

func build(cfg sim.Config) *harness.Cluster {
	return harness.Build(cfg, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := sso.New(r)
		return nd, nd
	})
}

func TestSequentiallyConsistentMixedWorkload(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		f := (n - 1) / 2
		c := build(sim.Config{N: n, F: f, Seed: seed})
		k := rng.Intn(f + 1)
		for victim := 0; victim < k; victim++ {
			c.W.CrashAt(victim, rt.Ticks(rng.Intn(20000)))
		}
		for i := 0; i < n; i++ {
			i := i
			c.Client(i, func(o *harness.OpRunner) {
				rng := rand.New(rand.NewSource(seed*53 + int64(i)))
				for k := 0; k < 5; k++ {
					var err error
					if rng.Intn(2) == 0 {
						_, err = o.Update()
					} else {
						_, err = o.Scan()
					}
					if err != nil {
						return
					}
					_ = o.P.Sleep(rt.Ticks(rng.Intn(2500)))
				}
			})
		}
		h, err := c.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if rep := h.CheckSequentiallyConsistent(); !rep.OK {
			t.Logf("seed %d: %v", seed, rep.Violations[0])
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestScanSendsNoMessages(t *testing.T) {
	// Quiesce after updates, then scan: the scanning node must send
	// nothing at all (the fast-scan property, Table I's O(1) row).
	n := 5
	c := build(sim.Config{N: n, F: 2, Seed: 7})
	type probe struct {
		before, after int64
		snap          []string
	}
	probes := make([]*probe, n)
	for i := 0; i < n; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			if _, err := o.Update(); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			// Let the system quiesce, then scan.
			_ = o.P.Sleep(50 * rt.TicksPerD)
			p := &probe{before: c.W.SentBy(i)}
			snap, err := o.Scan()
			if err != nil {
				t.Errorf("scan: %v", err)
				return
			}
			p.snap = snap
			p.after = c.W.SentBy(i)
			probes[i] = p
		})
	}
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("history: %v", rep.Violations)
	}
	for i, p := range probes {
		if p == nil {
			t.Fatalf("probe %d missing", i)
		}
		if p.after != p.before {
			t.Fatalf("node %d sent %d messages during a fast scan", i, p.after-p.before)
		}
	}
}

func TestScanIsInstant(t *testing.T) {
	// Scans complete in zero virtual time (O(1), no waiting).
	c := build(sim.Config{N: 3, F: 1, Seed: 9})
	c.Client(0, func(o *harness.OpRunner) {
		if _, err := o.Update(); err != nil {
			t.Errorf("update: %v", err)
			return
		}
		start := o.P.Now()
		if _, err := o.Scan(); err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if d := o.P.Now() - start; d != 0 {
			t.Errorf("scan took %d ticks of virtual time, want 0", d)
		}
	})
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestScanSeesOwnUpdates(t *testing.T) {
	// S2's end-to-end shape: after UPDATE(v) completes, the same node's
	// SCAN must return v — even though the scan is purely local.
	c := build(sim.Config{N: 5, F: 2, Seed: 4})
	for i := 0; i < 5; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 4; k++ {
				v, err := o.Update()
				if err != nil {
					t.Errorf("update: %v", err)
					return
				}
				snap, err := o.Scan()
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if snap[i] != v {
					t.Errorf("node %d scan sees %q in own segment, want %q", i, snap[i], v)
				}
			}
		})
	}
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("history: %v", rep.Violations)
	}
}

func TestSSONotNecessarilyLinearizable(t *testing.T) {
	// SSO trades atomicity for fast scans: a never-updating node's local
	// view can lag behind a completed remote update. Sequential
	// consistency must hold regardless. (We don't assert the history is
	// NOT linearizable — it often is — only that staleness is possible
	// and still sequentially consistent.)
	c := build(sim.Config{N: 3, F: 1, Seed: 5})
	done := make(chan struct{}, 1)
	c.Client(0, func(o *harness.OpRunner) {
		if err := o.UpdateValue("x"); err != nil {
			t.Errorf("update: %v", err)
		}
		done <- struct{}{}
	})
	var sawStale bool
	c.Client(1, func(o *harness.OpRunner) {
		if err := o.P.WaitUntil("update done", func() bool { return len(done) > 0 }); err != nil {
			return
		}
		snap, err := o.Scan()
		if err != nil {
			t.Errorf("scan: %v", err)
			return
		}
		if snap[0] == "" {
			sawStale = true // allowed for SSO, forbidden for ASO
		}
	})
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("history: %v", rep.Violations)
	}
	t.Logf("stale read observed: %v (both outcomes are sequentially consistent)", sawStale)
}

func TestByzantineSSO(t *testing.T) {
	n, f := 7, 2
	c := harness.Build(sim.Config{N: n, F: f, Seed: 6}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := sso.NewByzantine(r)
		return nd, nd
	})
	for i := 0; i < f; i++ {
		c.W.CrashAt(i, 0) // silent Byzantine
	}
	for i := f; i < n; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 3; k++ {
				v, err := o.Update()
				if err != nil {
					t.Errorf("update: %v", err)
					return
				}
				snap, err := o.Scan()
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if snap[i] != v {
					t.Errorf("node %d misses own value", i)
				}
			}
		})
	}
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("history: %v", rep.Violations)
	}
}

// byzLiar wraps an honest Byzantine-SSO node but answers readTag queries
// with absurd tags and sprays HAVEs for nonexistent values.
type byzLiar struct {
	inner rt.Handler
	r     rt.Runtime
	spam  int
}

func (b *byzLiar) HandleMessage(src int, m rt.Message) {
	if q, ok := m.(byzaso.MsgReadTag); ok {
		b.r.Send(src, byzaso.MsgReadAck{ReqID: q.ReqID, Tag: 1 << 40})
		return
	}
	if b.spam < 40 {
		b.spam++
		b.r.Broadcast(byzaso.MsgHave{TS: core.Timestamp{Tag: core.Tag(500 + b.spam), Writer: src}})
	}
	b.inner.HandleMessage(src, m)
}

func TestByzantineSSOUnderActiveAdversary(t *testing.T) {
	n, f := 7, 2
	c := harness.Build(sim.Config{N: n, F: f, Seed: 31}, func(r rt.Runtime) (rt.Handler, harness.Object) {
		nd := sso.NewByzantine(r)
		if r.ID() < f {
			return &byzLiar{inner: nd, r: r}, nd
		}
		return nd, nd
	})
	for i := f; i < n; i++ {
		i := i
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 2; k++ {
				v, err := o.Update()
				if err != nil {
					t.Errorf("update: %v", err)
					return
				}
				snap, err := o.Scan()
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				if snap[i] != v {
					t.Errorf("node %d misses own value under attack", i)
				}
			}
		})
	}
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("history: %v", rep.Violations)
	}
}

func TestUpdateLatencyMatchesASO(t *testing.T) {
	// Table I: SSO-Fast-Scan's UPDATE has the same complexity as EQ-ASO.
	// Failure-free with constant delays the update stays within the same
	// constant budget.
	c := build(sim.Config{N: 9, F: 4, Seed: 8, Delay: sim.Constant{Ticks: rt.TicksPerD}})
	for i := 0; i < 9; i++ {
		c.Client(i, func(o *harness.OpRunner) {
			for k := 0; k < 2; k++ {
				if _, err := o.Update(); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		})
	}
	h, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := harness.Latencies(h)
	if st.WorstUpdate > 20 {
		t.Fatalf("SSO update worst latency %.1fD exceeds constant budget", st.WorstUpdate)
	}
	if rep := h.CheckSequentiallyConsistent(); !rep.OK {
		t.Fatalf("history: %v", rep.Violations)
	}
}
