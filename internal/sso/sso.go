// Package sso implements the sequentially consistent snapshot objects
// (SSO, Definition 2) of the paper's framework: UPDATE operations run the
// same machinery as the corresponding ASO (EQ-ASO for crashes, the RBC
// variant for Byzantine faults) — so UPDATE keeps its O(√k·D) (resp.
// O(k·D)) time — while SCAN completes locally, with zero communication, by
// extracting the node's stored view ("the framework naturally supports an
// efficient SSO, which completes SCAN operations without any communication
// by returning the extracted vector from the view stored locally",
// Section V).
//
// The stored view is maintained so that sequential consistency holds:
//
//   - Only good-lattice views are ever stored (directly obtained or
//     passively adopted from peers' goodLA announcements), so all scan
//     bases are pairwise comparable (condition S1): good views are
//     comparable by Lemma 2, and adopting the larger of two comparable
//     views keeps the stored view a good view.
//   - The stored view only grows (S3): a larger comparable view is a
//     superset.
//   - An UPDATE completes only once the stored view contains the written
//     value, looping lattice renewals if needed (S2: a node's scans see
//     all of its own completed updates; they cannot see its future ones
//     because those values do not exist yet).
//
// Detailed SSO pseudocode lives in the authors' technical report, which is
// not part of the paper text; this construction is the documented
// reconstruction validated against the sequential-consistency checker.
package sso

import (
	"mpsnap/internal/core"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/rt"
)

// Stats counts SSO operations.
type Stats struct {
	Updates      int64
	Scans        int64
	ExtraRenewal int64 // renewals needed beyond the update's own
}

// backend is the ASO machinery an SSO runs its updates through.
type backend interface {
	rt.Handler
	UpdateWithView(payload []byte) (core.View, core.Timestamp, error)
	RefreshView() (core.View, error)
}

// batchBackend is a backend whose updates can be batched into one round
// sequence (EQ-ASO; the Byzantine backend falls back to sequential).
type batchBackend interface {
	UpdateBatchWithView(payloads [][]byte) (core.View, []core.Timestamp, error)
}

// Node is a sequentially consistent snapshot object node.
type Node struct {
	rtm    rt.Runtime
	inner  backend
	stored core.View
	stats  Stats

	// Operation instrumentation; owned by the client thread.
	obs   rt.Observer
	opSeq int64
}

// SetObserver installs an operation observer. The SSO emits its own
// "update" and "scan" lifecycles; it deliberately does NOT install the
// observer on its inner ASO — each layer reports only its own
// operations, so an SSO update is one event, not one per inner renewal.
func (nd *Node) SetObserver(o rt.Observer) { nd.obs = o }

// opStart/opEnd bracket one operation (single client thread; see eqaso).
func (nd *Node) opStart(op string) (int64, rt.Ticks) {
	nd.opSeq++
	start := nd.rtm.Now()
	if nd.obs != nil {
		nd.obs.OnOp(rt.OpEvent{T: start, Node: nd.rtm.ID(), ID: nd.opSeq, Op: op, Phase: rt.PhaseStart})
	}
	return nd.opSeq, start
}

func (nd *Node) opEnd(id int64, op string, start rt.Ticks, err error) {
	if nd.obs == nil {
		return
	}
	now := nd.rtm.Now()
	nd.obs.OnOp(rt.OpEvent{
		T: now, Node: nd.rtm.ID(), ID: id, Op: op,
		Phase: rt.PhaseEnd, Dur: now - start, Err: err != nil,
	})
}

// New creates the crash-tolerant SSO (SSO-Fast-Scan in Table I) on top of
// EQ-ASO. Register the returned node as the node's message handler.
func New(r rt.Runtime) *Node {
	inner := eqaso.New(r)
	nd := &Node{rtm: r, inner: inner}
	// Passive adoption: every good view this node produces or learns
	// about refreshes the stored view (still zero extra messages).
	inner.OnGoodLattice = func(tag core.Tag, view core.View) { nd.adopt(view) }
	inner.OnGoodLAView = func(tag core.Tag, from int, view core.View) { nd.adopt(view) }
	return nd
}

// NewWithBackend builds an SSO over a custom backend (used for the
// Byzantine SSO, see NewByzantine in byz.go).
func NewWithBackend(r rt.Runtime, b backend) *Node {
	return &Node{rtm: r, inner: b}
}

// adopt replaces the stored view if the candidate is larger. Must run in
// an atomic context (it is called from handlers and from Atomic sections).
// Sizes compare logically (counting any garbage-collected prefix): after a
// GC a good view can be physically smaller yet stand for more values, and
// good views remain comparable by their logical lengths.
func (nd *Node) adopt(view core.View) {
	if view.LogicalLen() > nd.stored.LogicalLen() {
		nd.stored = view
	}
}

// HandleMessage implements rt.Handler.
func (nd *Node) HandleMessage(src int, m rt.Message) { nd.inner.HandleMessage(src, m) }

// Update writes payload to the caller's segment. It completes only once
// the node's stored view contains the written value.
func (nd *Node) Update(payload []byte) (err error) {
	if nd.rtm.Crashed() {
		return rt.ErrCrashed
	}
	id, start := nd.opStart("update")
	defer func() { nd.opEnd(id, "update", start, err) }()
	nd.rtm.Atomic(func() { nd.stats.Updates++ })
	view, ts, err := nd.inner.UpdateWithView(payload)
	if err != nil {
		return err
	}
	for {
		var done bool
		nd.rtm.Atomic(func() {
			nd.adopt(view)
			// Covers, not Contains: with GC the written value may already
			// sit inside the stored view's pruned prefix.
			done = nd.stored.Covers(ts)
		})
		if done {
			return nil
		}
		nd.rtm.Atomic(func() { nd.stats.ExtraRenewal++ })
		view, err = nd.inner.RefreshView()
		if err != nil {
			return err
		}
	}
}

// UpdateBatch writes the payloads, in order, as successive values of the
// caller's segment, amortizing one protocol round sequence over the batch
// when the backend supports it. It completes only once the stored view
// contains the LAST written value: the self-channel is FIFO and views are
// tag-closed per writer, so a stored view containing timestamp r+k from
// this node also contains its r+1..r+k-1 — every earlier batch member is
// visible too (condition S2 for all of them at once).
func (nd *Node) UpdateBatch(payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	bb, ok := nd.inner.(batchBackend)
	if !ok {
		// Sequential fallback (Byzantine backend): still correct, no
		// amortization.
		for _, p := range payloads {
			if err := nd.Update(p); err != nil {
				return err
			}
		}
		return nil
	}
	if nd.rtm.Crashed() {
		return rt.ErrCrashed
	}
	id, start := nd.opStart("update")
	var err error
	defer func() { nd.opEnd(id, "update", start, err) }()
	nd.rtm.Atomic(func() { nd.stats.Updates += int64(len(payloads)) })
	view, tss, err := bb.UpdateBatchWithView(payloads)
	if err != nil {
		return err
	}
	last := tss[len(tss)-1]
	for {
		var done bool
		nd.rtm.Atomic(func() {
			nd.adopt(view)
			done = nd.stored.Covers(last)
		})
		if done {
			return nil
		}
		nd.rtm.Atomic(func() { nd.stats.ExtraRenewal++ })
		view, err = nd.inner.RefreshView()
		if err != nil {
			return err
		}
	}
}

// Scan returns the snapshot extracted from the stored view. It sends no
// messages and completes in O(1) local time.
func (nd *Node) Scan() ([][]byte, error) {
	if nd.rtm.Crashed() {
		return nil, rt.ErrCrashed
	}
	id, start := nd.opStart("scan")
	var snap [][]byte
	nd.rtm.Atomic(func() {
		nd.stats.Scans++
		snap = nd.stored.Extract(nd.rtm.N())
	})
	nd.opEnd(id, "scan", start, nil)
	return snap, nil
}

// StoredView returns the current stored view (for tests and tooling).
func (nd *Node) StoredView() core.View {
	var v core.View
	nd.rtm.Atomic(func() { v = nd.stored })
	return v
}

// Stats returns a copy of the node's counters.
func (nd *Node) Stats() Stats {
	var s Stats
	nd.rtm.Atomic(func() { s = nd.stats })
	return s
}
