package sso

import (
	"mpsnap/internal/byzaso"
	"mpsnap/internal/core"
	"mpsnap/internal/rt"
)

// NewByzantine creates the Byzantine-tolerant SSO (n > 3f): updates run
// the Byzantine ASO machinery, scans are local. Passive adoption uses the
// node's own good lattice operations only — peer view announcements cannot
// be authenticated without signatures, so freshness comes from the node's
// own updates (still sequentially consistent: staleness is allowed by
// Definition 2).
func NewByzantine(r rt.Runtime) *Node {
	inner := byzaso.New(r)
	nd := NewWithBackend(r, inner)
	inner.OnGoodLattice = func(tag core.Tag, view core.View) { nd.adopt(view) }
	return nd
}
