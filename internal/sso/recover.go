package sso

import (
	"mpsnap/internal/core"
	"mpsnap/internal/eqaso"
	"mpsnap/internal/rt"
	"mpsnap/internal/wal"
)

// AttachWAL makes the SSO's inner ASO durable (see eqaso.AttachWAL). It
// is a no-op for backends without WAL support (the Byzantine SSO). Must
// be called before the node is installed as a message handler.
func (nd *Node) AttachWAL(w *wal.Writer, gc bool) {
	if aw, ok := nd.inner.(interface {
		AttachWAL(*wal.Writer, bool)
	}); ok {
		aw.AttachWAL(w, gc)
	}
}

// Recover rebuilds the crash-tolerant SSO from a replayed WAL. The inner
// EQ-ASO node resumes from the recovered value log (see eqaso.Recover),
// and the stored view is seeded with the recovered frontier — the largest
// good view the node durably checkpointed. That alone is NOT enough for
// sequential consistency: pre-crash scans may have served from adopted
// good views larger than the last checkpoint (adoptions are not WAL-
// logged), so a post-restart scan from the bare frontier could regress
// (S3) or miss own completed updates (S2). Rejoin closes the gap — call
// it before serving any operation.
func Recover(r rt.Runtime, st *wal.State, w *wal.Writer, gc bool) *Node {
	inner := eqaso.Recover(r, st, w, gc)
	nd := &Node{rtm: r, inner: inner}
	inner.OnGoodLattice = func(tag core.Tag, view core.View) { nd.adopt(view) }
	inner.OnGoodLAView = func(tag core.Tag, from int, view core.View) { nd.adopt(view) }
	nd.stored = st.Log.ViewLE(st.Frontier.Tag)
	return nd
}

// Rejoin re-enters the protocol after Recover (see eqaso.Rejoin) and then
// refreshes the stored view with one readTag + LatticeRenewal. The
// renewal's good view supersets every good view completed before it (the
// same monotonicity that linearizes EQ-ASO scans), in particular whatever
// view the pre-crash incarnation last served a scan from — restoring the
// S2/S3 guarantees before the first post-restart operation. Call it from
// the client thread before resuming the workload.
func (nd *Node) Rejoin() {
	if rj, ok := nd.inner.(interface{ Rejoin() }); ok {
		rj.Rejoin()
	}
	if view, err := nd.inner.RefreshView(); err == nil {
		nd.rtm.Atomic(func() { nd.adopt(view) })
	}
}
