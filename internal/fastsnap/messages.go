package fastsnap

import (
	"math/rand"

	"mpsnap/internal/rt"
	"mpsnap/internal/wire"
)

// MsgWrite replicates the writer's latest register state (its new
// sequence number and payload) to all servers.
type MsgWrite struct {
	ReqID int64
	Seq   int64
	Val   []byte
}

// Kind implements rt.Message.
func (MsgWrite) Kind() string { return "fsWrite" }

// MsgWriteAck acknowledges a MsgWrite.
type MsgWriteAck struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgWriteAck) Kind() string { return "fsWriteAck" }

// MsgCollect asks for the receiver's full register vector (the scan fast
// path is one MsgCollect round whose replies are unanimous).
type MsgCollect struct{ ReqID int64 }

// Kind implements rt.Message.
func (MsgCollect) Kind() string { return "fsCollect" }

// MsgCollectAck returns the receiver's full register vector. It also
// acknowledges MsgWriteBack (the write-back round doubles as the next
// collect).
type MsgCollectAck struct {
	ReqID int64
	Vec   []Entry
}

// Kind implements rt.Message.
func (MsgCollectAck) Kind() string { return "fsCollectAck" }

// MsgWriteBack pushes a slow-path scanner's merged vector to the servers;
// each receiver merges it and replies with its (now at least as large)
// full vector via MsgCollectAck.
type MsgWriteBack struct {
	ReqID int64
	Vec   []Entry
}

// Kind implements rt.Message.
func (MsgWriteBack) Kind() string { return "fsWriteBack" }

// MsgCommit announces a returned (unanimously quorum-held) snapshot
// vector, fire-and-forget: receivers fold it into their registers and
// their largest-known-committed vector, which lets concurrent slow-path
// scanners finish by adoption.
type MsgCommit struct{ Vec []Entry }

// Kind implements rt.Message.
func (MsgCommit) Kind() string { return "fsCommit" }

func putVec(b *wire.Buffer, vec []Entry) {
	b.PutUvarint(uint64(len(vec)))
	for _, e := range vec {
		b.PutVarint(e.Seq)
		b.PutBytes(e.Val)
	}
}

func getVec(d *wire.Decoder) []Entry {
	// A serialized entry is at least 2 bytes (seq, val length).
	n := d.Count(2)
	if n == 0 {
		return nil
	}
	vec := make([]Entry, n)
	for i := range vec {
		vec[i] = Entry{Seq: d.Varint(), Val: d.Bytes()}
	}
	return vec
}

func genVec(rng *rand.Rand) []Entry {
	n := rng.Intn(5)
	if n == 0 {
		return nil
	}
	vec := make([]Entry, n)
	for i := range vec {
		vec[i] = Entry{Seq: rng.Int63n(1 << 30), Val: wire.GenPayload(rng)}
	}
	return vec
}

// Wire tags 144–159 (see ALGORITHMS.md, wire-tag tables).
func init() {
	wire.Register(wire.Codec{
		Tag: 144, Proto: MsgWrite{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgWrite)
			b.PutVarint(msg.ReqID)
			b.PutVarint(msg.Seq)
			b.PutBytes(msg.Val)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgWrite{ReqID: d.Varint(), Seq: d.Varint(), Val: d.Bytes()}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgWrite{ReqID: rng.Int63(), Seq: rng.Int63n(1 << 30), Val: wire.GenPayload(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 145, Proto: MsgWriteAck{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgWriteAck).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgWriteAck{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgWriteAck{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 146, Proto: MsgCollect{},
		Encode: func(b *wire.Buffer, m rt.Message) { b.PutVarint(m.(MsgCollect).ReqID) },
		Decode: func(d *wire.Decoder) (rt.Message, error) { return MsgCollect{ReqID: d.Varint()}, d.Err() },
		Gen:    func(rng *rand.Rand) rt.Message { return MsgCollect{ReqID: rng.Int63()} },
	})
	wire.Register(wire.Codec{
		Tag: 147, Proto: MsgCollectAck{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgCollectAck)
			b.PutVarint(msg.ReqID)
			putVec(b, msg.Vec)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgCollectAck{ReqID: d.Varint(), Vec: getVec(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgCollectAck{ReqID: rng.Int63(), Vec: genVec(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 148, Proto: MsgWriteBack{},
		Encode: func(b *wire.Buffer, m rt.Message) {
			msg := m.(MsgWriteBack)
			b.PutVarint(msg.ReqID)
			putVec(b, msg.Vec)
		},
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgWriteBack{ReqID: d.Varint(), Vec: getVec(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message {
			return MsgWriteBack{ReqID: rng.Int63(), Vec: genVec(rng)}
		},
	})
	wire.Register(wire.Codec{
		Tag: 149, Proto: MsgCommit{},
		Encode: func(b *wire.Buffer, m rt.Message) { putVec(b, m.(MsgCommit).Vec) },
		Decode: func(d *wire.Decoder) (rt.Message, error) {
			return MsgCommit{Vec: getVec(d)}, d.Err()
		},
		Gen: func(rng *rand.Rand) rt.Message { return MsgCommit{Vec: genVec(rng)} },
	})
}
